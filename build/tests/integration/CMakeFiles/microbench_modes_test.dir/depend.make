# Empty dependencies file for microbench_modes_test.
# This may be replaced when dependencies are built.
