file(REMOVE_RECURSE
  "CMakeFiles/microbench_modes_test.dir/microbench_modes_test.cpp.o"
  "CMakeFiles/microbench_modes_test.dir/microbench_modes_test.cpp.o.d"
  "microbench_modes_test"
  "microbench_modes_test.pdb"
  "microbench_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
