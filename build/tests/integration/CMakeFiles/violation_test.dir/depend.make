# Empty dependencies file for violation_test.
# This may be replaced when dependencies are built.
