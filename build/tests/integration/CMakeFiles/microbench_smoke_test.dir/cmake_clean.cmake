file(REMOVE_RECURSE
  "CMakeFiles/microbench_smoke_test.dir/microbench_smoke_test.cpp.o"
  "CMakeFiles/microbench_smoke_test.dir/microbench_smoke_test.cpp.o.d"
  "microbench_smoke_test"
  "microbench_smoke_test.pdb"
  "microbench_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
