# Empty compiler generated dependencies file for microbench_smoke_test.
# This may be replaced when dependencies are built.
