file(REMOVE_RECURSE
  "CMakeFiles/figure_regimes_test.dir/figure_regimes_test.cpp.o"
  "CMakeFiles/figure_regimes_test.dir/figure_regimes_test.cpp.o.d"
  "figure_regimes_test"
  "figure_regimes_test.pdb"
  "figure_regimes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_regimes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
