# Empty compiler generated dependencies file for figure_regimes_test.
# This may be replaced when dependencies are built.
