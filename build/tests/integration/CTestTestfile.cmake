# CMake generated Testfile for 
# Source directory: /root/repo/tests/integration
# Build directory: /root/repo/build/tests/integration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration/microbench_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/integration/figure_regimes_test[1]_include.cmake")
include("/root/repo/build/tests/integration/oracle_test[1]_include.cmake")
include("/root/repo/build/tests/integration/bidirectional_test[1]_include.cmake")
include("/root/repo/build/tests/integration/microbench_modes_test[1]_include.cmake")
include("/root/repo/build/tests/integration/violation_test[1]_include.cmake")
