# CMake generated Testfile for 
# Source directory: /root/repo/tests/simtime
# Build directory: /root/repo/build/tests/simtime
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simtime/virtual_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/simtime/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/simtime/journal_test[1]_include.cmake")
