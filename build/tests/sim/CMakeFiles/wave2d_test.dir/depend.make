# Empty dependencies file for wave2d_test.
# This may be replaced when dependencies are built.
