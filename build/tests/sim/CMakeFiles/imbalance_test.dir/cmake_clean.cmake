file(REMOVE_RECURSE
  "CMakeFiles/imbalance_test.dir/imbalance_test.cpp.o"
  "CMakeFiles/imbalance_test.dir/imbalance_test.cpp.o.d"
  "imbalance_test"
  "imbalance_test.pdb"
  "imbalance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imbalance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
