# Empty dependencies file for imbalance_test.
# This may be replaced when dependencies are built.
