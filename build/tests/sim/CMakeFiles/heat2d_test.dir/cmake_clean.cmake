file(REMOVE_RECURSE
  "CMakeFiles/heat2d_test.dir/heat2d_test.cpp.o"
  "CMakeFiles/heat2d_test.dir/heat2d_test.cpp.o.d"
  "heat2d_test"
  "heat2d_test.pdb"
  "heat2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
