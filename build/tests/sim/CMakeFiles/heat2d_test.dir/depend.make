# Empty dependencies file for heat2d_test.
# This may be replaced when dependencies are built.
