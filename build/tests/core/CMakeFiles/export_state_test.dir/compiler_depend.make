# Empty compiler generated dependencies file for export_state_test.
# This may be replaced when dependencies are built.
