file(REMOVE_RECURSE
  "CMakeFiles/export_state_test.dir/export_state_test.cpp.o"
  "CMakeFiles/export_state_test.dir/export_state_test.cpp.o.d"
  "export_state_test"
  "export_state_test.pdb"
  "export_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
