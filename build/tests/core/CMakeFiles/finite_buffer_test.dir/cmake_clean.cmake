file(REMOVE_RECURSE
  "CMakeFiles/finite_buffer_test.dir/finite_buffer_test.cpp.o"
  "CMakeFiles/finite_buffer_test.dir/finite_buffer_test.cpp.o.d"
  "finite_buffer_test"
  "finite_buffer_test.pdb"
  "finite_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
