# Empty dependencies file for finite_buffer_test.
# This may be replaced when dependencies are built.
