
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/finite_buffer_test.cpp" "tests/core/CMakeFiles/finite_buffer_test.dir/finite_buffer_test.cpp.o" "gcc" "tests/core/CMakeFiles/finite_buffer_test.dir/finite_buffer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ccf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ccf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ccf_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/ccf_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ccf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ccf_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/ccf_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
