file(REMOVE_RECURSE
  "CMakeFiles/async_import_test.dir/async_import_test.cpp.o"
  "CMakeFiles/async_import_test.dir/async_import_test.cpp.o.d"
  "async_import_test"
  "async_import_test.pdb"
  "async_import_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_import_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
