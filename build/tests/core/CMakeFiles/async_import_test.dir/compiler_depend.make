# Empty compiler generated dependencies file for async_import_test.
# This may be replaced when dependencies are built.
