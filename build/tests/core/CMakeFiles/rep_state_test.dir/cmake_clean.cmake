file(REMOVE_RECURSE
  "CMakeFiles/rep_state_test.dir/rep_state_test.cpp.o"
  "CMakeFiles/rep_state_test.dir/rep_state_test.cpp.o.d"
  "rep_state_test"
  "rep_state_test.pdb"
  "rep_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rep_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
