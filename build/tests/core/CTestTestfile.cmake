# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/matcher_test[1]_include.cmake")
include("/root/repo/build/tests/core/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/core/rep_state_test[1]_include.cmake")
include("/root/repo/build/tests/core/config_test[1]_include.cmake")
include("/root/repo/build/tests/core/export_state_test[1]_include.cmake")
include("/root/repo/build/tests/core/trace_test[1]_include.cmake")
include("/root/repo/build/tests/core/system_test[1]_include.cmake")
include("/root/repo/build/tests/core/async_import_test[1]_include.cmake")
include("/root/repo/build/tests/core/finite_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/core/golden_trace_test[1]_include.cmake")
include("/root/repo/build/tests/core/window_test[1]_include.cmake")
include("/root/repo/build/tests/core/rep_test[1]_include.cmake")
include("/root/repo/build/tests/core/protocol_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/core/report_test[1]_include.cmake")
