# Empty dependencies file for boundary_coupling.
# This may be replaced when dependencies are built.
