# Empty compiler generated dependencies file for reservoir_analysis.
# This may be replaced when dependencies are built.
