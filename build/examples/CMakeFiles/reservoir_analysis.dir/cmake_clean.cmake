file(REMOVE_RECURSE
  "CMakeFiles/reservoir_analysis.dir/reservoir_analysis.cpp.o"
  "CMakeFiles/reservoir_analysis.dir/reservoir_analysis.cpp.o.d"
  "reservoir_analysis"
  "reservoir_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservoir_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
