file(REMOVE_RECURSE
  "CMakeFiles/config_driven.dir/config_driven.cpp.o"
  "CMakeFiles/config_driven.dir/config_driven.cpp.o.d"
  "config_driven"
  "config_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
