# Empty compiler generated dependencies file for config_driven.
# This may be replaced when dependencies are built.
