# Empty compiler generated dependencies file for multiscale_coupling.
# This may be replaced when dependencies are built.
