file(REMOVE_RECURSE
  "CMakeFiles/multiscale_coupling.dir/multiscale_coupling.cpp.o"
  "CMakeFiles/multiscale_coupling.dir/multiscale_coupling.cpp.o.d"
  "multiscale_coupling"
  "multiscale_coupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiscale_coupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
