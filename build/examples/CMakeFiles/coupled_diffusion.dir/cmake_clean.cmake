file(REMOVE_RECURSE
  "CMakeFiles/coupled_diffusion.dir/coupled_diffusion.cpp.o"
  "CMakeFiles/coupled_diffusion.dir/coupled_diffusion.cpp.o.d"
  "coupled_diffusion"
  "coupled_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupled_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
