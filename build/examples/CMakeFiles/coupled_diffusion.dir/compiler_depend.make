# Empty compiler generated dependencies file for coupled_diffusion.
# This may be replaced when dependencies are built.
