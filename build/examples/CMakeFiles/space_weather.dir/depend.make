# Empty dependencies file for space_weather.
# This may be replaced when dependencies are built.
