file(REMOVE_RECURSE
  "CMakeFiles/space_weather.dir/space_weather.cpp.o"
  "CMakeFiles/space_weather.dir/space_weather.cpp.o.d"
  "space_weather"
  "space_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
