file(REMOVE_RECURSE
  "../bench/bench_buffer_pool"
  "../bench/bench_buffer_pool.pdb"
  "CMakeFiles/bench_buffer_pool.dir/bench_buffer_pool.cpp.o"
  "CMakeFiles/bench_buffer_pool.dir/bench_buffer_pool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
