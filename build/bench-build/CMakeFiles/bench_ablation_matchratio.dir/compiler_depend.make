# Empty compiler generated dependencies file for bench_ablation_matchratio.
# This may be replaced when dependencies are built.
