file(REMOVE_RECURSE
  "../bench/bench_ablation_matchratio"
  "../bench/bench_ablation_matchratio.pdb"
  "CMakeFiles/bench_ablation_matchratio.dir/bench_ablation_matchratio.cpp.o"
  "CMakeFiles/bench_ablation_matchratio.dir/bench_ablation_matchratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_matchratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
