file(REMOVE_RECURSE
  "../bench/bench_matcher"
  "../bench/bench_matcher.pdb"
  "CMakeFiles/bench_matcher.dir/bench_matcher.cpp.o"
  "CMakeFiles/bench_matcher.dir/bench_matcher.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
