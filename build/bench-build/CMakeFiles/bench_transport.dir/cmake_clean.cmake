file(REMOVE_RECURSE
  "../bench/bench_transport"
  "../bench/bench_transport.pdb"
  "CMakeFiles/bench_transport.dir/bench_transport.cpp.o"
  "CMakeFiles/bench_transport.dir/bench_transport.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
