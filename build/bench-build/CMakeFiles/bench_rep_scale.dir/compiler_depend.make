# Empty compiler generated dependencies file for bench_rep_scale.
# This may be replaced when dependencies are built.
