file(REMOVE_RECURSE
  "../bench/bench_rep_scale"
  "../bench/bench_rep_scale.pdb"
  "CMakeFiles/bench_rep_scale.dir/bench_rep_scale.cpp.o"
  "CMakeFiles/bench_rep_scale.dir/bench_rep_scale.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rep_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
