file(REMOVE_RECURSE
  "../bench/bench_redistribute"
  "../bench/bench_redistribute.pdb"
  "CMakeFiles/bench_redistribute.dir/bench_redistribute.cpp.o"
  "CMakeFiles/bench_redistribute.dir/bench_redistribute.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redistribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
