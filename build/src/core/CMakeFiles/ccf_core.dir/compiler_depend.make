# Empty compiler generated dependencies file for ccf_core.
# This may be replaced when dependencies are built.
