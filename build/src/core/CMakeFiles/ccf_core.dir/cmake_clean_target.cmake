file(REMOVE_RECURSE
  "libccf_core.a"
)
