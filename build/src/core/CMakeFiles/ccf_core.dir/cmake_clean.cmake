file(REMOVE_RECURSE
  "CMakeFiles/ccf_core.dir/buffer_pool.cpp.o"
  "CMakeFiles/ccf_core.dir/buffer_pool.cpp.o.d"
  "CMakeFiles/ccf_core.dir/config.cpp.o"
  "CMakeFiles/ccf_core.dir/config.cpp.o.d"
  "CMakeFiles/ccf_core.dir/coupling_runtime.cpp.o"
  "CMakeFiles/ccf_core.dir/coupling_runtime.cpp.o.d"
  "CMakeFiles/ccf_core.dir/export_state.cpp.o"
  "CMakeFiles/ccf_core.dir/export_state.cpp.o.d"
  "CMakeFiles/ccf_core.dir/layout.cpp.o"
  "CMakeFiles/ccf_core.dir/layout.cpp.o.d"
  "CMakeFiles/ccf_core.dir/match_policy.cpp.o"
  "CMakeFiles/ccf_core.dir/match_policy.cpp.o.d"
  "CMakeFiles/ccf_core.dir/matcher.cpp.o"
  "CMakeFiles/ccf_core.dir/matcher.cpp.o.d"
  "CMakeFiles/ccf_core.dir/protocol.cpp.o"
  "CMakeFiles/ccf_core.dir/protocol.cpp.o.d"
  "CMakeFiles/ccf_core.dir/rep.cpp.o"
  "CMakeFiles/ccf_core.dir/rep.cpp.o.d"
  "CMakeFiles/ccf_core.dir/rep_state.cpp.o"
  "CMakeFiles/ccf_core.dir/rep_state.cpp.o.d"
  "CMakeFiles/ccf_core.dir/report.cpp.o"
  "CMakeFiles/ccf_core.dir/report.cpp.o.d"
  "CMakeFiles/ccf_core.dir/system.cpp.o"
  "CMakeFiles/ccf_core.dir/system.cpp.o.d"
  "CMakeFiles/ccf_core.dir/trace.cpp.o"
  "CMakeFiles/ccf_core.dir/trace.cpp.o.d"
  "libccf_core.a"
  "libccf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
