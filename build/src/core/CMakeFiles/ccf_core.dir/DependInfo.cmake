
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/buffer_pool.cpp" "src/core/CMakeFiles/ccf_core.dir/buffer_pool.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/buffer_pool.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/ccf_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/config.cpp.o.d"
  "/root/repo/src/core/coupling_runtime.cpp" "src/core/CMakeFiles/ccf_core.dir/coupling_runtime.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/coupling_runtime.cpp.o.d"
  "/root/repo/src/core/export_state.cpp" "src/core/CMakeFiles/ccf_core.dir/export_state.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/export_state.cpp.o.d"
  "/root/repo/src/core/layout.cpp" "src/core/CMakeFiles/ccf_core.dir/layout.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/layout.cpp.o.d"
  "/root/repo/src/core/match_policy.cpp" "src/core/CMakeFiles/ccf_core.dir/match_policy.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/match_policy.cpp.o.d"
  "/root/repo/src/core/matcher.cpp" "src/core/CMakeFiles/ccf_core.dir/matcher.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/matcher.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/ccf_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/rep.cpp" "src/core/CMakeFiles/ccf_core.dir/rep.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/rep.cpp.o.d"
  "/root/repo/src/core/rep_state.cpp" "src/core/CMakeFiles/ccf_core.dir/rep_state.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/rep_state.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ccf_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/report.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/ccf_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/system.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/ccf_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/ccf_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/ccf_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/ccf_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ccf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ccf_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/ccf_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
