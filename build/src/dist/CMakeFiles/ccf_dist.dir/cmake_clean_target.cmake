file(REMOVE_RECURSE
  "libccf_dist.a"
)
