# Empty compiler generated dependencies file for ccf_dist.
# This may be replaced when dependencies are built.
