file(REMOVE_RECURSE
  "CMakeFiles/ccf_dist.dir/decomposition.cpp.o"
  "CMakeFiles/ccf_dist.dir/decomposition.cpp.o.d"
  "CMakeFiles/ccf_dist.dir/schedule.cpp.o"
  "CMakeFiles/ccf_dist.dir/schedule.cpp.o.d"
  "libccf_dist.a"
  "libccf_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
