file(REMOVE_RECURSE
  "CMakeFiles/ccf_collectives.dir/communicator.cpp.o"
  "CMakeFiles/ccf_collectives.dir/communicator.cpp.o.d"
  "libccf_collectives.a"
  "libccf_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
