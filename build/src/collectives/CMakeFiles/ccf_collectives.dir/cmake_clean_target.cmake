file(REMOVE_RECURSE
  "libccf_collectives.a"
)
