# Empty dependencies file for ccf_collectives.
# This may be replaced when dependencies are built.
