# Empty dependencies file for ccf_transport.
# This may be replaced when dependencies are built.
