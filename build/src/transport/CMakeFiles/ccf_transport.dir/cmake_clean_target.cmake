file(REMOVE_RECURSE
  "libccf_transport.a"
)
