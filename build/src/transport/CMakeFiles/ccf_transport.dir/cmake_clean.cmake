file(REMOVE_RECURSE
  "CMakeFiles/ccf_transport.dir/latency.cpp.o"
  "CMakeFiles/ccf_transport.dir/latency.cpp.o.d"
  "CMakeFiles/ccf_transport.dir/mailbox.cpp.o"
  "CMakeFiles/ccf_transport.dir/mailbox.cpp.o.d"
  "CMakeFiles/ccf_transport.dir/network.cpp.o"
  "CMakeFiles/ccf_transport.dir/network.cpp.o.d"
  "libccf_transport.a"
  "libccf_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
