file(REMOVE_RECURSE
  "libccf_sim.a"
)
