
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/forcing.cpp" "src/sim/CMakeFiles/ccf_sim.dir/forcing.cpp.o" "gcc" "src/sim/CMakeFiles/ccf_sim.dir/forcing.cpp.o.d"
  "/root/repo/src/sim/heat2d.cpp" "src/sim/CMakeFiles/ccf_sim.dir/heat2d.cpp.o" "gcc" "src/sim/CMakeFiles/ccf_sim.dir/heat2d.cpp.o.d"
  "/root/repo/src/sim/imbalance.cpp" "src/sim/CMakeFiles/ccf_sim.dir/imbalance.cpp.o" "gcc" "src/sim/CMakeFiles/ccf_sim.dir/imbalance.cpp.o.d"
  "/root/repo/src/sim/microbench.cpp" "src/sim/CMakeFiles/ccf_sim.dir/microbench.cpp.o" "gcc" "src/sim/CMakeFiles/ccf_sim.dir/microbench.cpp.o.d"
  "/root/repo/src/sim/wave2d.cpp" "src/sim/CMakeFiles/ccf_sim.dir/wave2d.cpp.o" "gcc" "src/sim/CMakeFiles/ccf_sim.dir/wave2d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ccf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/ccf_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/ccf_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ccf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/ccf_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ccf_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
