file(REMOVE_RECURSE
  "CMakeFiles/ccf_sim.dir/forcing.cpp.o"
  "CMakeFiles/ccf_sim.dir/forcing.cpp.o.d"
  "CMakeFiles/ccf_sim.dir/heat2d.cpp.o"
  "CMakeFiles/ccf_sim.dir/heat2d.cpp.o.d"
  "CMakeFiles/ccf_sim.dir/imbalance.cpp.o"
  "CMakeFiles/ccf_sim.dir/imbalance.cpp.o.d"
  "CMakeFiles/ccf_sim.dir/microbench.cpp.o"
  "CMakeFiles/ccf_sim.dir/microbench.cpp.o.d"
  "CMakeFiles/ccf_sim.dir/wave2d.cpp.o"
  "CMakeFiles/ccf_sim.dir/wave2d.cpp.o.d"
  "libccf_sim.a"
  "libccf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
