file(REMOVE_RECURSE
  "libccf_runtime.a"
)
