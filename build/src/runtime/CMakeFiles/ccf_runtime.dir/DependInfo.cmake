
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cluster.cpp" "src/runtime/CMakeFiles/ccf_runtime.dir/cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/ccf_runtime.dir/cluster.cpp.o.d"
  "/root/repo/src/runtime/thread_cluster.cpp" "src/runtime/CMakeFiles/ccf_runtime.dir/thread_cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/ccf_runtime.dir/thread_cluster.cpp.o.d"
  "/root/repo/src/runtime/virtual_time_cluster.cpp" "src/runtime/CMakeFiles/ccf_runtime.dir/virtual_time_cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/ccf_runtime.dir/virtual_time_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simtime/CMakeFiles/ccf_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/ccf_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ccf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
