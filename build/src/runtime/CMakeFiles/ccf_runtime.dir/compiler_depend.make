# Empty compiler generated dependencies file for ccf_runtime.
# This may be replaced when dependencies are built.
