file(REMOVE_RECURSE
  "CMakeFiles/ccf_runtime.dir/cluster.cpp.o"
  "CMakeFiles/ccf_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/ccf_runtime.dir/thread_cluster.cpp.o"
  "CMakeFiles/ccf_runtime.dir/thread_cluster.cpp.o.d"
  "CMakeFiles/ccf_runtime.dir/virtual_time_cluster.cpp.o"
  "CMakeFiles/ccf_runtime.dir/virtual_time_cluster.cpp.o.d"
  "libccf_runtime.a"
  "libccf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
