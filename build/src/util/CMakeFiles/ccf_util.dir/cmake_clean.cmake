file(REMOVE_RECURSE
  "CMakeFiles/ccf_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/ccf_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/ccf_util.dir/cli.cpp.o"
  "CMakeFiles/ccf_util.dir/cli.cpp.o.d"
  "CMakeFiles/ccf_util.dir/log.cpp.o"
  "CMakeFiles/ccf_util.dir/log.cpp.o.d"
  "CMakeFiles/ccf_util.dir/stats.cpp.o"
  "CMakeFiles/ccf_util.dir/stats.cpp.o.d"
  "CMakeFiles/ccf_util.dir/table.cpp.o"
  "CMakeFiles/ccf_util.dir/table.cpp.o.d"
  "CMakeFiles/ccf_util.dir/work.cpp.o"
  "CMakeFiles/ccf_util.dir/work.cpp.o.d"
  "libccf_util.a"
  "libccf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
