file(REMOVE_RECURSE
  "libccf_util.a"
)
