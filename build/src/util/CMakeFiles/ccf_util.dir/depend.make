# Empty dependencies file for ccf_util.
# This may be replaced when dependencies are built.
