file(REMOVE_RECURSE
  "libccf_simtime.a"
)
