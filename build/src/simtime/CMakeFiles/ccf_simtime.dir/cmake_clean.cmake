file(REMOVE_RECURSE
  "CMakeFiles/ccf_simtime.dir/virtual_cluster.cpp.o"
  "CMakeFiles/ccf_simtime.dir/virtual_cluster.cpp.o.d"
  "libccf_simtime.a"
  "libccf_simtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
