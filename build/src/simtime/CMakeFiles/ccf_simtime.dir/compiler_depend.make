# Empty compiler generated dependencies file for ccf_simtime.
# This may be replaced when dependencies are built.
