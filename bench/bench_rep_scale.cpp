// Substrate scalability: the representative process is a single control
// gateway per program ("a low-overhead control gateway", paper §4). This
// bench scales the number of connections (one exporter program feeding K
// importer programs from K regions) and reports the rep's message volume
// and the end-to-end completion time — the point where the rep would
// become a bottleneck.
#include <cstdio>
#include <iostream>

#include "core/system.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace ccf;
using core::CouplingRuntime;
using dist::BlockDecomposition;
using dist::DistArray2D;

int main(int argc, char** argv) {
  util::CliParser cli("bench_rep_scale",
                      "Scales connection count per exporter rep (control-path load)");
  cli.add_option("connections", "1,2,4,8,16", "connection counts to sweep");
  cli.add_option("exports", "101", "exports per region");
  cli.add_option("rows", "32", "array rows/cols per region");
  if (!cli.parse(argc, argv)) return 0;

  const auto counts = util::parse_int_list(cli.get("connections"));
  const int exports = static_cast<int>(cli.get_int("exports"));
  const auto side = static_cast<dist::Index>(cli.get_int("rows"));

  std::printf("== rep scalability: one exporter program, K regions -> K importers ==\n\n");
  util::TableWriter table({"K conns", "requests", "answers", "helps", "responses",
                           "end time s"});

  for (long long k : counts) {
    core::Config config;
    config.add_program(core::ProgramSpec{"E", "h", "/e", 2, {}});
    for (long long i = 0; i < k; ++i) {
      const std::string importer = "I" + std::to_string(i);
      config.add_program(core::ProgramSpec{importer, "h", "/i", 1, {}});
      config.add_connection(core::ConnectionSpec{"E", "r" + std::to_string(i), importer, "in",
                                                 core::MatchPolicy::REGL, 0.5});
    }

    core::CoupledSystem system(config, runtime::ClusterOptions{}, core::FrameworkOptions{});
    const auto e_decomp = BlockDecomposition::make_grid(side, side, 2);
    const auto i_decomp = BlockDecomposition::make_grid(side, side, 1);

    system.set_program_body("E", [&, k](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
      for (long long i = 0; i < k; ++i) {
        rt.define_export_region("r" + std::to_string(i), e_decomp);
      }
      rt.commit();
      DistArray2D<double> data(e_decomp, rt.rank());
      for (int step = 1; step <= exports; ++step) {
        ctx.compute(1e-5);
        for (long long i = 0; i < k; ++i) {
          rt.export_region("r" + std::to_string(i), step, data);
        }
      }
      rt.finalize();
    });
    for (long long i = 0; i < k; ++i) {
      const std::string importer = "I" + std::to_string(i);
      system.set_program_body(importer, [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
        rt.define_import_region("in", i_decomp);
        rt.commit();
        DistArray2D<double> data(i_decomp, rt.rank());
        for (int x = 10; x <= exports; x += 10) {
          (void)rt.import_region("in", x, data);
          ctx.compute(5e-5);
        }
        rt.finalize();
      });
    }
    system.run();
    const core::RepResult& rep = system.rep_result("E");
    table.add_row({std::to_string(k), std::to_string(rep.requests_forwarded),
                   std::to_string(rep.answers_sent), std::to_string(rep.buddy_helps_sent),
                   std::to_string(rep.responses_received),
                   util::TableWriter::fmt(system.end_time(), 4)});
  }
  table.print(std::cout);
  std::printf("\nnote: control traffic scales linearly with connections; data still flows\n"
              "proc-to-proc, so the rep stays a constant-size gateway per request.\n");
  return 0;
}
