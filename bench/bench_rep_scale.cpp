// Rep scalability suite: rank-count x fan-in sweep over the hierarchical
// representative layer (docs/PROTOCOL.md "Hierarchical representatives").
//
// The flat layout (fan-in 0, the paper's §4 single gateway) funnels every
// per-rank response and conn-done through one process, so rep-inbound
// wire messages grow O(K) in the program width K. With an aggregation
// tree of fan-in F, sub-reps coalesce those messages into batched frames
// and the rep hears O(F) frames per collective wave — O(F·log K) overall
// — while every collective answer stays identical.
//
// Each sweep point runs one wide exporter program feeding a one-rank
// importer over two connections in virtual time, with a fixed per-message
// rep dispatch cost so end-to-end time reflects control-path
// serialization. --json emits one machine-readable object for
// bench/run_benches, which gates on the structural counters only
// (identical answers, flat per-rank inbound, frame books) — never on
// timings.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/system.hpp"
#include "transport/latency.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace ccf;
using core::CouplingRuntime;
using dist::BlockDecomposition;
using dist::DistArray2D;

namespace {

struct Row {
  int ranks = 0;
  int fanin = 0;
  int shards = 1;
  int flush = 0;          ///< tree_flush_count (0 = one frame per wave)
  int requests = 0;       ///< total import calls (both connections)
  int matched = 0;
  double checksum = 0;    ///< order-independent digest of the answers
  core::RepResult rep;    ///< exporter-side rep, summed across shards
  core::SubRepResult subrep;  ///< exporter-side sub-reps, summed
  double end_time = 0;
};

Row run_point(int ranks, int fanin, int shards, int requests_per_conn, int flush_count) {
  core::Config config;
  core::ProgramSpec e_spec{"E", "h", "/e", ranks, {}};
  e_spec.rep_fanin = fanin;
  e_spec.rep_shards = shards;
  e_spec.tree_flush_count = flush_count;
  config.add_program(e_spec);
  config.add_program(core::ProgramSpec{"I", "h", "/i", 1, {}});
  config.add_connection(core::ConnectionSpec{"E", "a", "I", "a", core::MatchPolicy::REGL, 0.5});
  config.add_connection(core::ConnectionSpec{"E", "b", "I", "b", core::MatchPolicy::REG, 2.0});

  // Virtual time: counters and answers are exact and machine-independent.
  runtime::ClusterOptions cluster;
  cluster.mode = runtime::ExecutionMode::VirtualTime;
  cluster.latency = std::make_shared<const transport::FixedLatency>(1e-3);
  core::FrameworkOptions fw;
  fw.rep_dispatch_seconds = 1e-5;  // control-path serialization cost
  core::CoupledSystem system(config, cluster, fw);

  // Smallest power-of-two square wide enough that make_grid can factor
  // `ranks` into a process grid (power-of-two rank counts split evenly).
  dist::Index side = 4;
  while (side * side < ranks) side *= 2;
  const auto e_decomp = BlockDecomposition::make_grid(side, side, ranks);
  const auto i_decomp = BlockDecomposition::make_grid(side, side, 1);

  const int exports = requests_per_conn + 2;
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("a", e_decomp);
    rt.define_export_region("b", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (int step = 1; step <= exports; ++step) {
      ctx.compute(1e-5);
      data.fill([&](dist::Index, dist::Index) { return step; });
      rt.export_region("a", step, data);
      rt.export_region("b", step, data);
    }
    rt.finalize();
  });

  Row row;
  row.ranks = ranks;
  row.fanin = fanin;
  row.shards = shards;
  row.flush = flush_count;
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("a", i_decomp);
    rt.define_import_region("b", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    for (int k = 0; k < requests_per_conn; ++k) {
      ctx.compute(1e-4);
      for (const char* region : {"a", "b"}) {
        const auto status = rt.import_region(region, 0.75 + k, data);
        ++row.requests;
        if (status.ok()) {
          ++row.matched;
          row.checksum += status.matched * 3.0 + data.data()[0];
        } else {
          row.checksum -= 1.0;
        }
      }
    }
    rt.finalize();
  });

  system.run();
  row.rep = system.rep_result("E");
  row.subrep = system.subrep_result("E");
  row.end_time = system.end_time();
  return row;
}

std::string json_row(const Row& row) {
  std::ostringstream os;
  os << "    {\"ranks\": " << row.ranks << ", \"fanin\": " << row.fanin
     << ", \"shards\": " << row.shards << ", \"flush_count\": " << row.flush
     << ", \"requests\": " << row.requests
     << ", \"matched\": " << row.matched << ", \"checksum\": " << row.checksum
     << ", \"rep_wire_in\": " << row.rep.wire_in
     << ", \"rep_inbound_per_rank\": "
     << static_cast<double>(row.rep.wire_in) / static_cast<double>(row.ranks)
     << ", \"rep_frames_in\": " << row.rep.frames_in
     << ", \"rep_frame_entries_in\": " << row.rep.frame_entries_in
     << ", \"rep_frames_out\": " << row.rep.frames_out
     << ", \"rep_frame_entries_out\": " << row.rep.frame_entries_out
     << ", \"rep_requests\": " << row.rep.requests_forwarded
     << ", \"rep_answers\": " << row.rep.answers_sent
     << ", \"rep_helps\": " << row.rep.buddy_helps_sent
     << ", \"subrep_wire_in\": " << row.subrep.wire_in
     << ", \"subrep_frames_up\": " << row.subrep.frames_up
     << ", \"subrep_entries_up\": " << row.subrep.entries_up
     << ", \"subrep_entries_down\": " << row.subrep.entries_down
     << ", \"end_time_seconds\": " << row.end_time << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_rep_scale",
                      "Rank x fan-in sweep over the hierarchical representative layer");
  cli.add_option("ranks", "8,64,512,4096", "exporter rank counts to sweep");
  cli.add_option("fanins", "0,8", "aggregation-tree fan-ins (0 = flat single rep)");
  cli.add_option("requests", "6", "import requests per connection");
  cli.add_option("flushes", "4",
                 "pipelined-aggregation tree_flush_count values added per treed "
                 "fan-in (0, the per-wave baseline, always runs)");
  cli.add_flag("sharded", "add a fanin=max,shards=2 point per rank count");
  cli.add_flag("json", "emit machine-readable JSON instead of the table");
  if (!cli.parse(argc, argv)) return 0;

  const auto ranks = util::parse_int_list(cli.get("ranks"));
  const auto fanins = util::parse_int_list(cli.get("fanins"));
  const auto flushes = util::parse_int_list(cli.get("flushes"));
  const int requests = static_cast<int>(cli.get_int("requests"));
  const bool json = cli.get_bool("json");

  std::vector<Row> rows;
  for (long long n : ranks) {
    for (long long f : fanins) {
      rows.push_back(run_point(static_cast<int>(n), static_cast<int>(f), 1, requests, 0));
      // Pipelined-aggregation dimension: same point with partial frames
      // flushed every `flush` entries instead of once per drained wave.
      if (f >= 2 && n > f) {
        for (long long flush : flushes) {
          if (flush <= 0) continue;
          rows.push_back(run_point(static_cast<int>(n), static_cast<int>(f), 1, requests,
                                   static_cast<int>(flush)));
        }
      }
    }
    if (cli.get_bool("sharded")) {
      long long fmax = 0;
      for (long long f : fanins) fmax = std::max(fmax, f);
      if (fmax >= 2) {
        rows.push_back(
            run_point(static_cast<int>(n), static_cast<int>(fmax), 2, requests, 0));
      }
    }
  }

  if (json) {
    std::printf("{\n  \"suite\": \"rep\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::printf("%s%s\n", json_row(rows[i]).c_str(), i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  std::printf("== rep scalability: rank x fan-in sweep (2 conns -> 1-rank importer) ==\n\n");
  util::TableWriter table({"ranks", "fan-in", "shards", "flush", "rep in", "in/rank",
                           "frames in", "entries", "answers", "matched", "end time s"});
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.ranks),
                   row.fanin == 0 ? "flat" : std::to_string(row.fanin),
                   std::to_string(row.shards),
                   row.flush == 0 ? "wave" : std::to_string(row.flush),
                   std::to_string(row.rep.wire_in),
                   util::TableWriter::fmt(
                       static_cast<double>(row.rep.wire_in) / row.ranks, 2),
                   std::to_string(row.rep.frames_in),
                   std::to_string(row.rep.frame_entries_in),
                   std::to_string(row.rep.answers_sent), std::to_string(row.matched),
                   util::TableWriter::fmt(row.end_time, 4)});
  }
  table.print(std::cout);
  std::printf("\nnote: with fan-in F the rep hears O(F log K) batched frames per\n"
              "collective wave instead of O(K) per-rank messages; the answers are\n"
              "identical at every point (same checksum column upstream in --json).\n");
  return 0;
}
