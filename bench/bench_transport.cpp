// Microbenchmarks of the transport substrate and the virtual-time
// executor: serialization, mailbox matching, network routing, and the
// discrete-event scheduler's event throughput (which bounds how large a
// virtual experiment is practical).
#include <benchmark/benchmark.h>

#include "simtime/virtual_cluster.hpp"
#include "transport/network.hpp"
#include "transport/serialize.hpp"

namespace {

using namespace ccf::transport;

void BM_SerializeDoubles(benchmark::State& state) {
  const std::vector<double> data(static_cast<std::size_t>(state.range(0)), 3.14);
  for (auto _ : state) {
    Writer w;
    w.put_vector(data);
    Reader r(w.take());
    auto out = r.get_vector<double>();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) * 8);
}
BENCHMARK(BM_SerializeDoubles)->Arg(64)->Arg(4096)->Arg(262144);

void BM_MailboxDeliverReceive(benchmark::State& state) {
  Mailbox box;
  Message m;
  m.src = 1;
  m.dst = 0;
  m.tag = 7;
  m.payload = empty_payload();
  for (auto _ : state) {
    box.deliver(m);
    benchmark::DoNotOptimize(box.receive(MatchSpec{1, 7}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxDeliverReceive);

void BM_MailboxTaggedScan(benchmark::State& state) {
  // Receive must scan past non-matching queued messages.
  const auto depth = state.range(0);
  Mailbox box;
  for (int i = 0; i < depth; ++i) {
    Message noise;
    noise.src = 1;
    noise.tag = 1;
    noise.payload = empty_payload();
    box.deliver(std::move(noise));
  }
  Message wanted;
  wanted.src = 2;
  wanted.tag = 2;
  wanted.payload = empty_payload();
  for (auto _ : state) {
    box.deliver(wanted);
    benchmark::DoNotOptimize(box.receive(MatchSpec{2, 2}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxTaggedScan)->Arg(0)->Arg(16)->Arg(256);

/// Fanning one payload out to many mailboxes: with refcounted payload
/// views each enqueue copies a pointer, not the bytes, so cost per
/// delivery is flat in payload size (compare Arg(64) vs Arg(262144)).
void BM_PayloadFanout(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0)) * sizeof(double);
  const Payload payload = make_payload(std::vector<std::byte>(bytes, std::byte{1}));
  constexpr int kDests = 16;
  std::vector<Mailbox> boxes(kDests);
  Message m;
  m.src = 0;
  m.tag = 5;
  for (auto _ : state) {
    for (int d = 0; d < kDests; ++d) {
      m.dst = d;
      m.payload = payload;  // view copy: O(1) regardless of size
      boxes[static_cast<std::size_t>(d)].deliver(m);
    }
    for (int d = 0; d < kDests; ++d) {
      benchmark::DoNotOptimize(boxes[static_cast<std::size_t>(d)].receive(MatchSpec{0, 5}));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kDests);
}
BENCHMARK(BM_PayloadFanout)->Arg(64)->Arg(262144);

/// Forwarding a slice of a received payload (the mailbox/fault/relay
/// pattern): slicing shares the buffer, so this never touches the bytes.
void BM_PayloadSliceForward(benchmark::State& state) {
  const std::size_t bytes = 2 * 1024 * 1024;
  const Payload whole = make_payload(std::vector<std::byte>(bytes, std::byte{2}));
  Mailbox box;
  Message m;
  m.src = 1;
  m.dst = 0;
  m.tag = 9;
  for (auto _ : state) {
    m.payload = whole.slice(bytes / 4, bytes / 2);
    box.deliver(m);
    benchmark::DoNotOptimize(box.receive(MatchSpec{1, 9}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PayloadSliceForward);

void BM_NetworkSend(benchmark::State& state) {
  Network net;
  net.register_process(0);
  auto box = net.register_process(1);
  Message m;
  m.src = 0;
  m.dst = 1;
  m.tag = 3;
  m.payload = empty_payload();
  for (auto _ : state) {
    net.send(m);
    benchmark::DoNotOptimize(box->receive(MatchSpec{}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSend);

void BM_VirtualClusterEvents(benchmark::State& state) {
  // Event throughput of the deterministic scheduler: P processes doing a
  // message ring with per-hop advances.
  const int procs = static_cast<int>(state.range(0));
  const int rounds = 200;
  for (auto _ : state) {
    ccf::simtime::VirtualCluster cluster;
    for (int p = 0; p < procs; ++p) {
      cluster.add_process(p, [&, p](ccf::simtime::SimContext& ctx) {
        for (int i = 0; i < rounds; ++i) {
          ctx.send((p + 1) % procs, 1, empty_payload());
          ctx.advance(0.001);
          (void)ctx.recv(MatchSpec{(p + procs - 1) % procs, 1});
        }
      });
    }
    cluster.run();
    state.counters["events"] = static_cast<double>(cluster.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * procs * rounds * 3);
}
BENCHMARK(BM_VirtualClusterEvents)->Arg(2)->Arg(8)->Arg(38)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
