// Microbenchmarks of the transport substrate and the virtual-time
// executor: serialization, mailbox matching, network routing, and the
// discrete-event scheduler's event throughput (which bounds how large a
// virtual experiment is practical).
#include <benchmark/benchmark.h>

#include "simtime/virtual_cluster.hpp"
#include "transport/network.hpp"
#include "transport/serialize.hpp"

namespace {

using namespace ccf::transport;

void BM_SerializeDoubles(benchmark::State& state) {
  const std::vector<double> data(static_cast<std::size_t>(state.range(0)), 3.14);
  for (auto _ : state) {
    Writer w;
    w.put_vector(data);
    Reader r(w.take());
    auto out = r.get_vector<double>();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0) * 8);
}
BENCHMARK(BM_SerializeDoubles)->Arg(64)->Arg(4096)->Arg(262144);

void BM_MailboxDeliverReceive(benchmark::State& state) {
  Mailbox box;
  Message m;
  m.src = 1;
  m.dst = 0;
  m.tag = 7;
  m.payload = empty_payload();
  for (auto _ : state) {
    box.deliver(m);
    benchmark::DoNotOptimize(box.receive(MatchSpec{1, 7}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxDeliverReceive);

void BM_MailboxTaggedScan(benchmark::State& state) {
  // Receive must scan past non-matching queued messages.
  const auto depth = state.range(0);
  Mailbox box;
  for (int i = 0; i < depth; ++i) {
    Message noise;
    noise.src = 1;
    noise.tag = 1;
    noise.payload = empty_payload();
    box.deliver(std::move(noise));
  }
  Message wanted;
  wanted.src = 2;
  wanted.tag = 2;
  wanted.payload = empty_payload();
  for (auto _ : state) {
    box.deliver(wanted);
    benchmark::DoNotOptimize(box.receive(MatchSpec{2, 2}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxTaggedScan)->Arg(0)->Arg(16)->Arg(256);

void BM_NetworkSend(benchmark::State& state) {
  Network net;
  net.register_process(0);
  auto box = net.register_process(1);
  Message m;
  m.src = 0;
  m.dst = 1;
  m.tag = 3;
  m.payload = empty_payload();
  for (auto _ : state) {
    net.send(m);
    benchmark::DoNotOptimize(box->receive(MatchSpec{}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSend);

void BM_VirtualClusterEvents(benchmark::State& state) {
  // Event throughput of the deterministic scheduler: P processes doing a
  // message ring with per-hop advances.
  const int procs = static_cast<int>(state.range(0));
  const int rounds = 200;
  for (auto _ : state) {
    ccf::simtime::VirtualCluster cluster;
    for (int p = 0; p < procs; ++p) {
      cluster.add_process(p, [&, p](ccf::simtime::SimContext& ctx) {
        for (int i = 0; i < rounds; ++i) {
          ctx.send((p + 1) % procs, 1, empty_payload());
          ctx.advance(0.001);
          (void)ctx.recv(MatchSpec{(p + procs - 1) % procs, 1});
        }
      });
    }
    cluster.run();
    state.counters["events"] = static_cast<double>(cluster.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * procs * rounds * 3);
}
BENCHMARK(BM_VirtualClusterEvents)->Arg(2)->Arg(8)->Arg(38)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
