// Memory-governance bench: buffered-bytes high water vs. budget.
//
// Scenario: the importer is slower than the exporter (the Fig. 4(a)
// regime, where the ungoverned buffer grows without bound). We sweep the
// per-process resident-snapshot budget and report the peak resident
// bytes, eviction/restore traffic, and the end-to-end completion time.
// Unlike the finite-buffer cap (bench_ablation_buffer), the governor
// never stalls the exporter: cold snapshots are demoted to the spill tier
// and restored on a late MATCH, so transfers — and with a lossless
// fabric, the answers — are identical at every budget.
//
// --json emits one machine-readable object for bench/run_benches, which
// gates on the structural counters only (peak <= budget, balanced spill
// books, budget-invariant transfers) — never on timings.
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "dist/decomposition.hpp"
#include "sim/microbench.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

struct Row {
  long long budget_snapshots = 0;
  std::size_t budget_bytes = 0;
  ccf::sim::MicrobenchResult r;
};

std::string json_row(const Row& row) {
  const auto& b = row.r.slow_stats.buffer;
  const auto& g = row.r.slow_governor;
  std::ostringstream os;
  os << "    {\"budget_snapshots\": " << row.budget_snapshots
     << ", \"budget_bytes\": " << row.budget_bytes
     << ", \"peak_bytes\": " << b.peak_bytes
     << ", \"peak_charged_bytes\": " << g.peak_charged_bytes
     << ", \"evictions\": " << b.evictions
     << ", \"restores\": " << b.restores
     << ", \"spill_frees\": " << b.spill_frees
     << ", \"live_spilled_entries\": " << b.live_spilled_entries
     << ", \"live_entries\": " << b.live_entries
     << ", \"spill_bytes\": " << b.spill_bytes
     << ", \"stalls\": " << row.r.slow_stats.stalls
     << ", \"transfers\": " << row.r.slow_stats.transfers
     << ", \"end_time_seconds\": " << row.r.end_time << "}";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  ccf::util::CliParser cli("bench_memory",
                           "Sweeps the resident-snapshot budget under a slower importer");
  cli.add_option("rows", "64", "global array rows/cols");
  cli.add_option("exports", "401", "number of exports");
  cli.add_option("importers", "4", "importer process count (slower-importer regime)");
  cli.add_option("budgets", "0,64,16,8,4,2",
                 "budgets in snapshots of the slow rank's block (0 = ungoverned)");
  cli.add_flag("json", "emit machine-readable JSON instead of the table");
  if (!cli.parse(argc, argv)) return 0;

  const auto budgets = ccf::util::parse_int_list(cli.get("budgets"));
  const bool json = cli.get_bool("json");
  const auto spill_root =
      std::filesystem::temp_directory_path() / "ccf_bench_memory_spill";

  std::vector<Row> rows;
  for (long long budget : budgets) {
    ccf::sim::MicrobenchParams p;
    p.rows = p.cols = cli.get_int("rows");
    p.importer_procs = static_cast<int>(cli.get_int("importers"));
    p.num_exports = static_cast<int>(cli.get_int("exports"));
    p.memory_budget_snapshots = static_cast<std::size_t>(budget);
    const auto spill_dir = spill_root / std::to_string(budget);
    if (budget > 0) p.spill_directory = spill_dir.string();
    Row row;
    row.budget_snapshots = budget;
    row.r = ccf::sim::run_microbench(p);
    // The budget is expressed in snapshots of the slow rank's block, the
    // same unit run_microbench resolves it in.
    const auto decomp =
        ccf::dist::BlockDecomposition::make_grid(p.rows, p.cols, p.exporter_procs);
    row.budget_bytes =
        static_cast<std::size_t>(budget) *
        static_cast<std::size_t>(decomp.box_of(p.exporter_procs - 1).count()) *
        sizeof(double);
    rows.push_back(row);
    std::error_code ec;
    std::filesystem::remove_all(spill_dir, ec);
  }
  std::error_code ec;
  std::filesystem::remove_all(spill_root, ec);

  if (json) {
    std::printf("{\n  \"suite\": \"memory\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::printf("%s%s\n", json_row(rows[i]).c_str(), i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  std::printf("== Memory governance: resident budget sweep (slower importer) ==\n\n");
  ccf::util::TableWriter table({"budget (snapshots)", "peak resident B", "evictions",
                                "restores", "spill frees", "spill B", "stalls",
                                "end time s", "transfers"});
  for (const Row& row : rows) {
    const auto& b = row.r.slow_stats.buffer;
    table.add_row({row.budget_snapshots == 0 ? "unlimited"
                                             : std::to_string(row.budget_snapshots),
                   std::to_string(b.peak_bytes), std::to_string(b.evictions),
                   std::to_string(b.restores), std::to_string(b.spill_frees),
                   std::to_string(b.spill_bytes), std::to_string(row.r.slow_stats.stalls),
                   ccf::util::TableWriter::fmt(row.r.end_time, 4),
                   std::to_string(row.r.slow_stats.transfers)});
  }
  table.print(std::cout);
  std::printf(
      "\nnote: the governor bounds *resident* bytes by demoting cold snapshots to the\n"
      "spill tier, so the exporter keeps running at every budget; transfers (and the\n"
      "answers) are budget-invariant. Compare bench_ablation_buffer, where the cap\n"
      "is enforced by stalling.\n");
  return 0;
}
