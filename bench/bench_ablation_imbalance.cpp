// Ablation: load-imbalance patterns. The paper's micro-benchmark slows one
// fixed process; real components also exhibit jittery, rotating, or bursty
// imbalance ("imperfect load balancing within the component", §1). This
// sweep asks how robust buddy-help's memcpy savings are when the
// straggler identity is noisy or time-varying.
#include <cstdio>
#include <iostream>

#include "sim/microbench.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ccf::util::CliParser cli("bench_ablation_imbalance",
                           "Sweeps load-imbalance models for the exporter program");
  cli.add_option("rows", "64", "global array rows/cols");
  cli.add_option("exports", "601", "number of exports");
  cli.add_option("importers", "32", "importer process count (fast importer regime)");
  cli.add_option("models", "constant,jitter,slowjitter,rotating,burst", "models to sweep");
  if (!cli.parse(argc, argv)) return 0;

  std::printf("== Ablation: exporter load-imbalance models (U=%lld procs) ==\n\n",
              cli.get_int("importers"));
  ccf::util::TableWriter table({"model", "buddy-help", "total copies", "total skips",
                                "helps recvd", "total T_ub ms", "end time s"});

  std::string model_name;
  std::stringstream models(cli.get("models"));
  while (std::getline(models, model_name, ',')) {
    ccf::sim::ImbalanceModel model;
    model.kind = ccf::sim::parse_imbalance(model_name);
    model.slow_factor = 2.5;
    model.amplitude = 1.0;
    model.period = 40;

    for (bool help : {true, false}) {
      ccf::sim::MicrobenchParams p;
      p.rows = p.cols = cli.get_int("rows");
      p.importer_procs = static_cast<int>(cli.get_int("importers"));
      p.num_exports = static_cast<int>(cli.get_int("exports"));
      p.imbalance = model;
      p.buddy_help = help;
      const auto r = ccf::sim::run_microbench(p);

      // Program-wide totals: buddy-help's saving shows up in the lagging
      // processes, whoever they currently are.
      std::uint64_t copies = 0, skips = 0, helps = 0;
      double tub = 0;
      for (const auto& s : r.exporter_stats) {
        copies += s.buffer.stores;
        skips += s.buffer.skips;
        helps += s.buddy_helps_received;
        tub += s.t_ub();
      }
      table.add_row({model_name, help ? "on" : "off", std::to_string(copies),
                     std::to_string(skips), std::to_string(helps),
                     ccf::util::TableWriter::fmt(tub * 1e3, 3),
                     ccf::util::TableWriter::fmt(r.end_time, 4)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nnote: buddy-help needs no knowledge of WHICH process lags — any process whose\n"
      "response is PENDING when the answer forms gets helped, so the savings persist\n"
      "under jittering, rotating, and bursty stragglers alike.\n");
  return 0;
}
