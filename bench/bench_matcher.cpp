// Matcher scaling suite: the interval-indexed batch engine vs the
// preserved linear engine (core/naive_matcher.hpp) on identical
// protocol-shaped workloads, up to 10^5 exports per row.
//
// Workload: a strictly increasing export stream and a request stream that
// fires ahead of the exports (mixed leads, with a long-lead cohort that
// keeps deep candidate windows alive). Both engines consume the exact same
// merged schedule with the exact same FIFO front-first resolution
// discipline (MATCH -> prune_through(matched), NO MATCH ->
// prune_below(region.lo)):
//   * naive — the pre-index protocol loop: after every export, re-evaluate
//     the front outstanding request until it stays PENDING, each
//     evaluation a linear window scan;
//   * indexed — record() sweeps the pending index and evaluate_all()
//     resolves every newly-decidable request; a request that stays
//     pending costs nothing per export.
// Answers are compared element-for-element; any divergence marks the row
// and fails the binary (and bench/run_benches --suite matcher).
//
// Rows carry wall-clock for the headline speedup AND the structural
// counters (evaluations, sweep sizes, inserts) that CI gates on — CI
// never gates on wall-clock (see run_benches).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <iostream>
#include <string>
#include <vector>

#include "core/matcher.hpp"
#include "core/naive_matcher.hpp"
#include "util/rng.hpp"

namespace {

using ccf::core::ExportHistory;
using ccf::core::IntervalIndex;
using ccf::core::MatchAnswer;
using ccf::core::MatchPolicy;
using ccf::core::MatchQuery;
using ccf::core::MatchResult;
using ccf::core::NaiveHistory;
using ccf::core::Timestamp;

struct Workload {
  MatchPolicy policy = MatchPolicy::REG;
  double tolerance = 2.0;
  std::vector<Timestamp> exports;
  std::vector<Timestamp> requests;
  std::vector<double> leads;  ///< request i fires once exports pass x_i - lead_i
};

Workload make_workload(MatchPolicy policy, std::size_t n_exports, std::uint64_t seed) {
  Workload w;
  w.policy = policy;
  ccf::util::Xoshiro256 rng(seed);
  Timestamp t = 0;
  w.exports.reserve(n_exports);
  for (std::size_t i = 0; i < n_exports; ++i) {
    t += rng.uniform(0.5, 1.5);
    w.exports.push_back(t);
  }
  // One request per 8 exports, spanning the same virtual-time range.
  const std::size_t n_requests = n_exports / 8;
  const double mean_step = (t + 4.0) / static_cast<double>(n_requests);
  // The request stream runs ahead of the exports by ~1/16 of its own
  // length (requests fire in x order, so the effective lead of request i
  // is capped by its predecessors' — an isolated long lead cannot deepen
  // the queue; a uniformly leading stream does). The resulting pending
  // queue is ~n_requests/16 deep, so per-request re-evaluation pays
  // depth x window per export while the indexed engine pays one
  // O(log k + covered) sweep regardless of how many requests are pending.
  const double mean_lead = static_cast<double>(n_requests) / 16.0 * mean_step;
  Timestamp x = 0;
  for (std::size_t i = 0; i < n_requests; ++i) {
    x += rng.uniform(0.2 * mean_step, 1.8 * mean_step);
    w.requests.push_back(x);
    w.leads.push_back(rng.uniform(0.5 * mean_lead, 1.5 * mean_lead));
  }
  return w;
}

struct Answer {
  MatchResult result = MatchResult::Pending;
  Timestamp matched = 0;
};

struct RunResult {
  std::vector<Answer> answers;
  double seconds = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t pending_evals = 0;
  std::size_t max_window = 0;   ///< deepest candidate list seen
  std::size_t max_pending = 0;  ///< deepest outstanding queue seen
};

/// Merges the export/request streams and drives one engine through them.
/// `on_request(query, seq)` handles a fresh request; `sweep()` resolves
/// newly-decidable fronts (called after every record and after finalize).
template <class History, class OnRequest, class Sweep>
RunResult drive(const Workload& w, History& h, OnRequest&& on_request, Sweep&& sweep,
                const std::size_t& queue_depth) {
  RunResult r;
  r.answers.resize(w.requests.size());
  const auto start = std::chrono::steady_clock::now();
  std::size_t e = 0, q = 0;
  Timestamp exported = ccf::core::kNeverExported;
  while (e < w.exports.size() || q < w.requests.size()) {
    const bool fire_request = q < w.requests.size() &&
                              (e >= w.exports.size() || w.requests[q] - w.leads[q] <= exported);
    if (fire_request) {
      on_request(MatchQuery{w.requests[q], w.policy, w.tolerance}, q, r.answers);
      ++q;
    } else {
      exported = w.exports[e];
      h.record(exported);
      sweep(r.answers);
      ++e;
    }
    r.max_window = std::max(r.max_window, h.count());
    r.max_pending = std::max(r.max_pending, queue_depth);
  }
  h.finalize();
  sweep(r.answers);
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  r.evaluations = h.eval_counters().evaluations;
  r.pending_evals = h.eval_counters().pending;
  return r;
}

/// Per-request re-evaluation: after every export, resolve decidable
/// fronts, then re-evaluate every remaining outstanding request — without
/// per-entry decidability thresholds that poll is how a batch-resolving
/// engine learns which pending requests an export just decided (FIFO
/// blocks resolution behind a pending front, so the poll buys no early
/// answers — it is pure discovery cost). Every evaluation is a linear
/// window scan (NaiveHistory). The indexed engine replaces the whole poll
/// with one O(log k + covered) index sweep per export.
RunResult run_naive(const Workload& w) {
  NaiveHistory h;
  struct Req {
    MatchQuery query;
    std::size_t seq = 0;
  };
  std::deque<Req> queue;
  std::size_t depth = 0;

  auto resolve = [&](const Req& req, const MatchAnswer& a, std::vector<Answer>& answers) {
    answers[req.seq] = Answer{a.result, a.matched};
    if (a.result == MatchResult::Match) h.prune_through(a.matched);
    else h.prune_below(req.query.region().lo);
  };
  auto sweep = [&](std::vector<Answer>& answers) {
    while (!queue.empty()) {
      const MatchAnswer a = h.evaluate(queue.front().query);
      if (!a.decisive()) break;
      resolve(queue.front(), a, answers);
      queue.pop_front();
      depth = queue.size();
    }
    // The front (index 0) was just evaluated and stayed PENDING; poll the
    // rest of the outstanding queue.
    for (std::size_t i = 1; i < queue.size(); ++i) (void)h.evaluate(queue[i].query);
  };
  return drive(
      w, h,
      [&](const MatchQuery& query, std::size_t seq, std::vector<Answer>& answers) {
        const MatchAnswer a = h.evaluate(query);
        if (a.decisive() && queue.empty()) {
          resolve(Req{query, seq}, a, answers);
        } else {
          queue.push_back(Req{query, seq});
          depth = queue.size();
        }
      },
      sweep, depth);
}

struct IndexedResult {
  RunResult run;
  IntervalIndex::Counters index;
};

/// The indexed engine: record() sweeps the pending index, evaluate_all()
/// resolves every decidable front; still-pending requests cost nothing.
IndexedResult run_indexed(const Workload& w) {
  ExportHistory h;
  std::deque<std::size_t> queue;  ///< seq of each indexed request, FIFO
  std::vector<MatchQuery> queries(w.requests.size());
  std::size_t depth = 0;

  auto resolve = [&](const MatchQuery& query, const MatchAnswer& a, std::size_t seq,
                     std::vector<Answer>& answers) {
    answers[seq] = Answer{a.result, a.matched};
    if (a.result == MatchResult::Match) h.prune_through(a.matched);
    else h.prune_below(query.region().lo);
  };
  auto sweep = [&](std::vector<Answer>& answers) {
    h.evaluate_all([&](std::uint64_t id, const MatchAnswer& a) {
      const std::size_t seq = queue.front();
      queue.pop_front();
      depth = queue.size();
      h.unindex_pending(id);
      resolve(queries[seq], a, seq, answers);
    });
  };
  IndexedResult out;
  out.run = drive(
      w, h,
      [&](const MatchQuery& query, std::size_t seq, std::vector<Answer>& answers) {
        queries[seq] = query;
        const MatchAnswer a = h.evaluate(query);
        if (a.decisive() && queue.empty()) {
          resolve(query, a, seq, answers);
        } else {
          h.index_pending(query);
          queue.push_back(seq);
          depth = queue.size();
        }
      },
      sweep, depth);
  out.index = h.pending().counters();
  return out;
}

struct Row {
  std::string policy;
  std::size_t exports = 0;
  std::size_t requests = 0;
  RunResult naive;
  RunResult indexed;
  IntervalIndex::Counters index;
  bool answers_match = false;
};

Row run_row(MatchPolicy policy, std::size_t n_exports, std::uint64_t seed) {
  const Workload w = make_workload(policy, n_exports, seed);
  Row row;
  row.policy = to_string(policy);
  row.exports = w.exports.size();
  row.requests = w.requests.size();
  row.naive = run_naive(w);
  IndexedResult ir = run_indexed(w);
  row.indexed = std::move(ir.run);
  row.index = ir.index;

  row.answers_match = row.naive.answers.size() == row.indexed.answers.size();
  for (std::size_t i = 0; row.answers_match && i < row.naive.answers.size(); ++i) {
    const Answer& a = row.naive.answers[i];
    const Answer& b = row.indexed.answers[i];
    row.answers_match =
        a.result == b.result && (a.result != MatchResult::Match || a.matched == b.matched);
  }
  return row;
}

double speedup_of(const Row& r) {
  return r.indexed.seconds > 0 ? r.naive.seconds / r.indexed.seconds : 0.0;
}

void print_json(const std::vector<Row>& rows) {
  std::cout << "{\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::cout << "    {\"policy\": \"" << r.policy << "\", \"exports\": " << r.exports
              << ", \"requests\": " << r.requests << ",\n"
              << "     \"naive_seconds\": " << r.naive.seconds
              << ", \"indexed_seconds\": " << r.indexed.seconds
              << ", \"speedup\": " << speedup_of(r) << ",\n"
              << "     \"naive_evaluations\": " << r.naive.evaluations
              << ", \"naive_pending_evals\": " << r.naive.pending_evals
              << ", \"indexed_evaluations\": " << r.indexed.evaluations
              << ", \"indexed_pending_evals\": " << r.indexed.pending_evals << ",\n"
              << "     \"record_sweeps\": " << r.index.record_sweeps
              << ", \"swept_entries\": " << r.index.swept_entries
              << ", \"best_updates\": " << r.index.best_updates
              << ", \"recomputes\": " << r.index.recomputes
              << ", \"inserts\": " << r.index.inserts << ",\n"
              << "     \"max_window\": " << r.indexed.max_window
              << ", \"max_pending\": " << r.indexed.max_pending
              << ", \"answers_match\": " << (r.answers_match ? "true" : "false") << "}"
              << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
}

void print_table(const std::vector<Row>& rows) {
  std::printf("matcher scaling: naive per-request re-evaluation vs interval-indexed batch\n");
  std::printf("%-6s %8s %9s %10s %10s %8s %12s %14s %11s\n", "policy", "exports", "requests",
              "naive_s", "indexed_s", "speedup", "naive_evals", "indexed_evals", "max_window");
  for (const Row& r : rows) {
    std::printf("%-6s %8zu %9zu %10.4f %10.4f %7.1fx %12llu %14llu %11zu%s\n",
                r.policy.c_str(), r.exports, r.requests, r.naive.seconds, r.indexed.seconds,
                speedup_of(r), static_cast<unsigned long long>(r.naive.evaluations),
                static_cast<unsigned long long>(r.indexed.evaluations), r.indexed.max_window,
                r.answers_match ? "" : "  ANSWERS DIVERGE");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::size_t max_exports = 100000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--max-exports=", 0) == 0) {
      max_exports = static_cast<std::size_t>(std::stoul(arg.substr(14)));
    } else {
      std::cerr << "usage: bench_matcher [--json] [--max-exports=N]\n";
      return 2;
    }
  }

  std::vector<Row> rows;
  bool all_match = true;
  for (const std::size_t n : {std::size_t{1000}, std::size_t{10000}, std::size_t{100000}}) {
    if (n > max_exports) continue;
    for (const MatchPolicy policy : {MatchPolicy::REGL, MatchPolicy::REGU, MatchPolicy::REG}) {
      rows.push_back(run_row(policy, n, /*seed=*/n + static_cast<std::size_t>(policy)));
      all_match = all_match && rows.back().answers_match;
    }
  }

  if (json) print_json(rows);
  else print_table(rows);
  return all_match ? 0 : 1;
}
