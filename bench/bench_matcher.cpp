// Microbenchmarks of the approximate-matching engine: record/evaluate
// throughput as the candidate history grows, per policy.
#include <benchmark/benchmark.h>

#include "core/matcher.hpp"

namespace {

using ccf::core::ExportHistory;
using ccf::core::MatchPolicy;
using ccf::core::MatchQuery;

ExportHistory make_history(std::int64_t n) {
  ExportHistory h;
  for (std::int64_t k = 1; k <= n; ++k) h.record(0.6 + static_cast<double>(k));
  return h;
}

void BM_HistoryRecord(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ExportHistory h;
    state.ResumeTiming();
    for (int k = 1; k <= 1000; ++k) h.record(0.6 + k);
    benchmark::DoNotOptimize(h.latest());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_HistoryRecord);

void BM_EvaluateDecisive(benchmark::State& state) {
  const auto n = state.range(0);
  const ExportHistory h = make_history(n);
  const MatchQuery q{static_cast<double>(n) / 2, MatchPolicy::REGL, 2.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.evaluate(q));
  }
}
BENCHMARK(BM_EvaluateDecisive)->Arg(10)->Arg(100)->Arg(1000)->Arg(100000);

void BM_EvaluatePending(benchmark::State& state) {
  const ExportHistory h = make_history(state.range(0));
  const MatchQuery q{1e9, MatchPolicy::REGL, 2.5};  // far future -> pending
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.evaluate(q));
  }
}
BENCHMARK(BM_EvaluatePending)->Arg(1000)->Arg(100000);

void BM_EvaluatePerPolicy(benchmark::State& state) {
  const auto policy = static_cast<MatchPolicy>(state.range(0));
  const ExportHistory h = make_history(10000);
  const MatchQuery q{5000.0, policy, 7.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.evaluate(q));
  }
}
BENCHMARK(BM_EvaluatePerPolicy)
    ->Arg(static_cast<int>(MatchPolicy::REGL))
    ->Arg(static_cast<int>(MatchPolicy::REGU))
    ->Arg(static_cast<int>(MatchPolicy::REG));

void BM_PruneBelowAmortized(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ExportHistory h = make_history(10000);
    state.ResumeTiming();
    for (double t = 100; t <= 10000; t += 100) h.prune_below(t);
    benchmark::DoNotOptimize(h.count());
  }
}
BENCHMARK(BM_PruneBelowAmortized);

}  // namespace

BENCHMARK_MAIN();
