// Ablation: multi-resolution coupling ratio. The paper fixes "one out of
// every twenty exported data objects end up being transferred"; here we
// sweep that ratio (request stride) at fixed tolerance and report the
// buffering behaviour of the slowest exporter process under both arms.
#include <cstdio>
#include <iostream>

#include "sim/microbench.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ccf::util::CliParser cli("bench_ablation_matchratio",
                           "Sweeps the 1-in-N matched-export ratio (time-scale gap)");
  cli.add_option("rows", "64", "global array rows/cols");
  cli.add_option("exports", "601", "number of exports");
  cli.add_option("importers", "32", "importer process count");
  cli.add_option("strides", "2,5,10,20,50", "request strides to sweep");
  cli.add_option("tolerance", "2.5", "REGL tolerance");
  if (!cli.parse(argc, argv)) return 0;

  const auto strides = ccf::util::parse_int_list(cli.get("strides"));
  std::printf("== Ablation: match-ratio sweep (tol %.2f, U=%lld procs) ==\n\n",
              cli.get_double("tolerance"), cli.get_int("importers"));
  ccf::util::TableWriter table({"stride", "matches", "copies (help)", "copies (base)",
                                "skips (help)", "transfers", "helps recvd"});

  for (long long stride : strides) {
    ccf::sim::MicrobenchParams p;
    p.rows = p.cols = cli.get_int("rows");
    p.importer_procs = static_cast<int>(cli.get_int("importers"));
    p.num_exports = static_cast<int>(cli.get_int("exports"));
    p.tolerance = cli.get_double("tolerance");
    p.request_stride = static_cast<double>(stride);
    // Keep the importer's per-request work proportional to the stride so
    // the time-scale gap (stride exporter steps per importer step) holds.
    p.importer_work_factor = 1143.0 * static_cast<double>(stride) / 20.0;
    p.importer_init_factor = p.importer_work_factor;

    p.buddy_help = true;
    const auto with = ccf::sim::run_microbench(p);
    p.buddy_help = false;
    const auto without = ccf::sim::run_microbench(p);

    table.add_row({std::to_string(stride),
                   std::to_string(with.importer_rank0_stats.matches),
                   std::to_string(with.slow_stats.buffer.stores),
                   std::to_string(without.slow_stats.buffer.stores),
                   std::to_string(with.slow_stats.buffer.skips),
                   std::to_string(with.slow_stats.transfers),
                   std::to_string(with.slow_stats.buddy_helps_received)});
  }
  table.print(std::cout);
  std::printf(
      "\nnote: finer coupling (small stride) means more requests and transfers; the\n"
      "skip fraction per block shrinks as the region covers more of each period.\n");
  return 0;
}
