// Microbenchmarks of the export-side buffer pool. BM_StoreAndFree measures
// the real snapshot memcpy — the per-object buffering time t_k of Eq. (1)
// that buddy-help eliminates — across block sizes up to the paper's
// 512x512 doubles (2 MiB).
#include <benchmark/benchmark.h>

#include "core/buffer_pool.hpp"
#include "runtime/scripted_context.hpp"

namespace {

using ccf::core::BufferPool;
using ccf::runtime::ScriptedContext;

void BM_StoreAndFree(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<double> block(count, 1.5);
  ScriptedContext ctx;
  double t = 0;
  for (auto _ : state) {
    BufferPool pool;
    pool.store(++t, block.data(), count, 0b1, ctx);
    benchmark::DoNotOptimize(pool.snapshot(t).data());
    pool.drop(t, 0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(double)));
}
BENCHMARK(BM_StoreAndFree)
    ->Arg(64 * 64)       // 32 KiB
    ->Arg(128 * 128)     // 128 KiB
    ->Arg(256 * 256)     // 512 KiB
    ->Arg(512 * 512);    // 2 MiB — the paper's per-process block

/// Steady-state store/drop against one persistent pool: after the first
/// iteration every frame comes from the arena free list, so the loop does
/// one memcpy and zero heap allocation. allocs_per_store approaches 0.
void BM_StoreRecycleArena(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<double> block(count, 1.5);
  ScriptedContext ctx;
  BufferPool pool;
  double t = 0;
  for (auto _ : state) {
    pool.store(++t, block.data(), count, 0b1, ctx);
    benchmark::DoNotOptimize(pool.snapshot(t).data());
    pool.drop(t, 0);
  }
  const auto& s = pool.stats();
  state.counters["allocs_per_store"] =
      s.stores == 0 ? 0.0 : static_cast<double>(s.arena_allocs) / static_cast<double>(s.stores);
  state.counters["arena_reuses"] = static_cast<double>(s.arena_reuses);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * sizeof(double)));
}
BENCHMARK(BM_StoreRecycleArena)
    ->Arg(64 * 64)
    ->Arg(256 * 256)
    ->Arg(512 * 512);

void BM_DropBelowSweep(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  std::vector<double> block(64, 1.0);
  ScriptedContext ctx;
  for (auto _ : state) {
    state.PauseTiming();
    BufferPool pool;
    for (std::size_t k = 1; k <= entries; ++k) {
      pool.store(static_cast<double>(k), block.data(), block.size(), 0b1, ctx);
    }
    state.ResumeTiming();
    auto freed = pool.drop_below(static_cast<double>(entries + 1), 0);
    benchmark::DoNotOptimize(freed.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(entries));
}
BENCHMARK(BM_DropBelowSweep)->Arg(16)->Arg(256)->Arg(4096);

void BM_MultiConnectionMaskOps(benchmark::State& state) {
  std::vector<double> block(64, 1.0);
  ScriptedContext ctx;
  for (auto _ : state) {
    BufferPool pool;
    for (int k = 1; k <= 64; ++k) {
      pool.store(k, block.data(), block.size(), 0b1111, ctx);
    }
    for (int conn = 0; conn < 4; ++conn) pool.drop_below(65.0, conn);
    benchmark::DoNotOptimize(pool.size());
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MultiConnectionMaskOps);

}  // namespace

BENCHMARK_MAIN();
