// Figure 4 reproduction: per-iteration data-export time of the slowest
// process p_s of exporter program F, for importer program U with 4, 8, 16
// and 32 processes (paper §5).
//
// Prints, per configuration, the block-averaged export-time series (one
// block = one request period = 20 exports) and a summary row with the
// iterations-to-optimal-state knee. Also runs the buddy-help-disabled arm
// so the optimization's contribution is explicit (the paper only plots the
// optimized run).
//
// Expected shape (matching the paper):
//   U=4, U=8 : flat — the importer is slower, every export is buffered;
//   U=16     : gradual decay to the optimal state (knee at ~hundreds);
//   U=32     : optimal state within tens of iterations.
#include <cstdio>
#include <iostream>

#include "sim/microbench.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using ccf::sim::MicrobenchParams;
using ccf::sim::MicrobenchResult;
using ccf::util::TableWriter;

void print_series(const MicrobenchResult& r) {
  std::printf("  per-block mean export time (ms), %zu iterations per block:\n",
              r.block_iterations);
  const auto& blocks = r.block_mean_seconds;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (b % 8 == 0) std::printf("    iter %4zu:", b * r.block_iterations);
    std::printf(" %7.4f", blocks[b] * 1e3);
    if (b % 8 == 7 || b + 1 == blocks.size()) std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  ccf::util::CliParser cli("bench_fig4",
                           "Reproduces Figure 4: export time of the slowest exporter process");
  cli.add_option("rows", "256", "global array rows (paper: 1024)");
  cli.add_option("cols", "256", "global array cols (paper: 1024)");
  cli.add_option("exports", "1001", "number of exports (paper: 1001)");
  cli.add_option("importers", "4,8,16,32", "importer process counts to sweep");
  cli.add_option("tolerance", "2.5", "REGL match tolerance (paper: 2.5)");
  cli.add_option("stride", "20", "request stride: 1-in-N exports matched (paper: 20)");
  cli.add_flag("series", "print the full block-averaged series per configuration");
  cli.add_option("csv", "", "optional CSV output path for the raw series");
  cli.add_option("runs", "1",
                 "runs per configuration (paper: 6). Runs beyond the first add seeded "
                 "compute jitter; the summary then reports knee mean +/- stddev");
  cli.add_option("jitter", "0.3", "jitter amplitude for multi-run mode (fraction of base)");
  if (!cli.parse(argc, argv)) return 0;

  const auto importer_counts = ccf::util::parse_int_list(cli.get("importers"));
  const bool print_full_series = cli.get_bool("series");

  std::printf("== Figure 4: data exporting time for the slowest export process ==\n");
  std::printf("   F: 4 exporter processes, %lldx%lld array, %lld exports, REGL tol %.2f,\n",
              cli.get_int("rows"), cli.get_int("cols"), cli.get_int("exports"),
              cli.get_double("tolerance"));
  std::printf("   1-in-%lld exports matched; importer U sweeps below.\n\n",
              cli.get_int("stride"));

  TableWriter summary({"U procs", "buddy-help", "knee iter", "first-block ms", "plateau ms",
                       "memcpys", "skips", "helps recvd", "T_ub ms"});

  std::unique_ptr<ccf::util::CsvWriter> csv;
  if (!cli.get("csv").empty()) {
    csv = std::make_unique<ccf::util::CsvWriter>(cli.get("csv"));
    csv->write_row({"importer_procs", "buddy_help", "iteration", "export_seconds"});
  }

  const auto runs = static_cast<int>(cli.get_int("runs"));
  for (long long procs : importer_counts) {
    for (bool help : {true, false}) {
      MicrobenchParams p;
      p.rows = cli.get_int("rows");
      p.cols = cli.get_int("cols");
      p.importer_procs = static_cast<int>(procs);
      p.num_exports = static_cast<int>(cli.get_int("exports"));
      p.tolerance = cli.get_double("tolerance");
      p.request_stride = static_cast<double>(cli.get_int("stride"));
      p.buddy_help = help;
      MicrobenchResult r = ccf::sim::run_microbench(p);

      // Paper methodology: several runs per configuration. The executor
      // is deterministic, so extra runs perturb the compute times with
      // seeded jitter around the same straggler profile.
      ccf::util::RunningStats knee_stats;
      knee_stats.add(static_cast<double>(r.settle_iteration));
      for (int run = 1; run < runs; ++run) {
        MicrobenchParams jp = p;
        ccf::sim::ImbalanceModel model;
        model.kind = ccf::sim::ImbalanceKind::SlowJitter;
        model.slow_factor = p.slow_compute_factor / p.fast_compute_factor;
        model.amplitude = cli.get_double("jitter");
        model.seed = static_cast<std::uint64_t>(run);
        jp.imbalance = model;
        const MicrobenchResult jr = ccf::sim::run_microbench(jp);
        knee_stats.add(static_cast<double>(jr.settle_iteration));
      }
      const std::string knee =
          runs > 1 ? TableWriter::fmt(knee_stats.mean(), 0) + "+-" +
                         TableWriter::fmt(knee_stats.stddev(), 0)
                   : std::to_string(r.settle_iteration);

      summary.add_row({std::to_string(procs), help ? "on" : "off", knee,
                       TableWriter::fmt(r.initial_mean * 1e3, 4),
                       TableWriter::fmt(r.plateau_mean * 1e3, 4),
                       std::to_string(r.slow_stats.buffer.stores),
                       std::to_string(r.slow_stats.buffer.skips),
                       std::to_string(r.slow_stats.buddy_helps_received),
                       TableWriter::fmt(r.slow_stats.t_ub() * 1e3, 3)});

      if (help) {
        std::printf("-- U = %lld processes (buddy-help on) --\n", procs);
        std::vector<double> ms;
        ms.reserve(r.block_mean_seconds.size());
        for (double s : r.block_mean_seconds) ms.push_back(s * 1e3);
        ccf::util::AsciiPlotOptions plot;
        plot.y_label = "  export time per iteration [ms], block-averaged";
        plot.x_label = "iteration ->";
        plot.y_auto_min = false;
        std::printf("%s", ccf::util::ascii_plot(ms, plot).c_str());
        if (print_full_series) print_series(r);
      }
      if (csv) {
        for (std::size_t i = 0; i < r.slow_export_seconds.size(); ++i) {
          csv->write_row({std::to_string(procs), help ? "1" : "0", std::to_string(i),
                          TableWriter::fmt(r.slow_export_seconds[i], 9)});
        }
      }
      if (!print_full_series && help) std::printf("\n");
    }
  }

  std::printf("\n== summary (slowest exporter process p_s) ==\n");
  summary.print(std::cout);
  std::printf(
      "\nshape check vs paper: U=4/8 flat & fully buffered; U=16 knee far later than\n"
      "U=32; in the optimal state only the 1-in-%lld matched export is copied.\n",
      cli.get_int("stride"));
  return 0;
}
