// Microbenchmarks of the simulation substrates: stencil-step throughput of
// the wave and heat solvers (including the halo exchange through the
// in-memory transport) and the forcing field's analytic fill.
#include <benchmark/benchmark.h>

#include "runtime/cluster.hpp"
#include "sim/forcing.hpp"
#include "sim/heat2d.hpp"
#include "sim/wave2d.hpp"

namespace {

using ccf::dist::BlockDecomposition;
using ccf::dist::DistArray2D;
using ccf::dist::Index;

void BM_WaveSolverStep(benchmark::State& state) {
  const auto side = static_cast<Index>(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  const auto decomp = BlockDecomposition::make_grid(side, side, procs);
  const int steps_per_run = 10;
  for (auto _ : state) {
    auto cluster = ccf::runtime::make_cluster(ccf::runtime::ClusterOptions{});
    std::vector<ccf::transport::ProcId> peers;
    for (int r = 0; r < procs; ++r) peers.push_back(r);
    for (int rank = 0; rank < procs; ++rank) {
      cluster->add_process(rank, [&, rank](ccf::runtime::ProcessContext& ctx) {
        ccf::sim::WaveSolver2D solver(decomp, rank, peers, 0.1);
        DistArray2D<double> forcing(decomp, rank);
        for (int s = 0; s < steps_per_run; ++s) solver.step(ctx, forcing);
        benchmark::DoNotOptimize(solver.local_energy());
      });
    }
    cluster->run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * steps_per_run *
                          side * side);
}
BENCHMARK(BM_WaveSolverStep)->Args({64, 1})->Args({64, 4})->Args({256, 4})
    ->Unit(benchmark::kMillisecond);

void BM_HeatSolverStep(benchmark::State& state) {
  const auto side = static_cast<Index>(state.range(0));
  const int procs = static_cast<int>(state.range(1));
  const auto decomp = BlockDecomposition::make_grid(side, side, procs);
  const int steps_per_run = 10;
  for (auto _ : state) {
    auto cluster = ccf::runtime::make_cluster(ccf::runtime::ClusterOptions{});
    std::vector<ccf::transport::ProcId> peers;
    for (int r = 0; r < procs; ++r) peers.push_back(r);
    for (int rank = 0; rank < procs; ++rank) {
      cluster->add_process(rank, [&, rank](ccf::runtime::ProcessContext& ctx) {
        ccf::sim::HeatSolver2D solver(decomp, rank, peers, 0.25, 0.5);
        DistArray2D<double> forcing(decomp, rank);
        for (int s = 0; s < steps_per_run; ++s) solver.step(ctx, forcing);
        benchmark::DoNotOptimize(solver.local_sum());
      });
    }
    cluster->run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * steps_per_run *
                          side * side);
}
BENCHMARK(BM_HeatSolverStep)->Args({64, 4})->Args({256, 4})->Unit(benchmark::kMillisecond);

void BM_ForcingFill(benchmark::State& state) {
  const auto side = static_cast<Index>(state.range(0));
  const auto decomp = BlockDecomposition::make_grid(side, side, 1);
  ccf::sim::ForcingField field(decomp, 0);
  double t = 0;
  for (auto _ : state) {
    field.fill(t += 0.1);
    benchmark::DoNotOptimize(field.field().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * side * side);
}
BENCHMARK(BM_ForcingFill)->Arg(64)->Arg(512);

void BM_ForcingTouch(benchmark::State& state) {
  const auto decomp = BlockDecomposition::make_grid(512, 512, 1);
  ccf::sim::ForcingField field(decomp, 0);
  double t = 0;
  for (auto _ : state) {
    field.touch(t += 0.1);
    benchmark::DoNotOptimize(field.field().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForcingTouch);

}  // namespace

BENCHMARK_MAIN();
