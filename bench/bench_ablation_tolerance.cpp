// Ablation: buddy-help benefit vs the ratio of acceptable-region size to
// request inter-arrival time (paper §5, last paragraph: "The performance
// benefits of avoiding unnecessary buffering from the buddy-help
// optimization depend on the ratio of the size of the acceptable region to
// the inter-arrival time between successive importer match requests.").
//
// We sweep the REGL tolerance at a fixed request stride. Larger tolerance
// -> more in-region exports per request -> more candidate copies the
// baseline performs -> bigger buddy-help saving.
#include <cstdio>
#include <iostream>

#include "sim/microbench.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ccf::util::CliParser cli(
      "bench_ablation_tolerance",
      "Sweeps match tolerance: buddy-help saving vs region-size / inter-arrival ratio");
  cli.add_option("rows", "64", "global array rows/cols");
  cli.add_option("exports", "601", "number of exports");
  cli.add_option("importers", "32", "importer process count (fast importer regime)");
  cli.add_option("tolerances", "0.5,1.0,2.5,5.0,10.0,15.0", "REGL tolerances to sweep");
  cli.add_option("stride", "20", "request stride");
  if (!cli.parse(argc, argv)) return 0;

  const auto tolerances = ccf::util::parse_double_list(cli.get("tolerances"));
  const double stride = static_cast<double>(cli.get_int("stride"));

  std::printf("== Ablation: tolerance sweep (stride %.0f, U=%lld procs) ==\n\n", stride,
              cli.get_int("importers"));
  ccf::util::TableWriter table({"tol", "region/stride", "copies (help)", "copies (base)",
                                "copies saved", "T_ub ms (help)", "T_ub ms (base)",
                                "knee (help)"});

  for (double tol : tolerances) {
    ccf::sim::MicrobenchParams p;
    p.rows = p.cols = cli.get_int("rows");
    p.importer_procs = static_cast<int>(cli.get_int("importers"));
    p.num_exports = static_cast<int>(cli.get_int("exports"));
    p.tolerance = tol;
    p.request_stride = stride;

    p.buddy_help = true;
    const auto with = ccf::sim::run_microbench(p);
    p.buddy_help = false;
    const auto without = ccf::sim::run_microbench(p);

    const auto saved = without.slow_stats.buffer.stores >= with.slow_stats.buffer.stores
                           ? without.slow_stats.buffer.stores - with.slow_stats.buffer.stores
                           : 0;
    table.add_row({ccf::util::TableWriter::fmt(tol, 1),
                   ccf::util::TableWriter::fmt(tol / stride, 3),
                   std::to_string(with.slow_stats.buffer.stores),
                   std::to_string(without.slow_stats.buffer.stores), std::to_string(saved),
                   ccf::util::TableWriter::fmt(with.slow_stats.t_ub() * 1e3, 3),
                   ccf::util::TableWriter::fmt(without.slow_stats.t_ub() * 1e3, 3),
                   std::to_string(with.settle_iteration)});
  }
  table.print(std::cout);
  std::printf(
      "\npaper check: the saved-copies column grows with the region/stride ratio — the\n"
      "benefit scales with how much of each request period falls inside the region.\n");
  return 0;
}
