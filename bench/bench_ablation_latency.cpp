// Ablation: control-message latency. Buddy-help's value depends on the
// answer reaching the slow process early; as the rep<->process latency
// grows (relative to the buffering copy cost C), fewer future memcpys can
// be skipped per request period and the knee moves later.
#include <cstdio>
#include <iostream>

#include "sim/microbench.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ccf::util::CliParser cli("bench_ablation_latency",
                           "Sweeps network latency (in units of the copy cost C)");
  cli.add_option("rows", "64", "global array rows/cols");
  cli.add_option("exports", "601", "number of exports");
  cli.add_option("importers", "32", "importer process count");
  cli.add_option("factors", "0.0,0.04,0.5,2.0,5.0,10.0", "latency as multiples of C");
  if (!cli.parse(argc, argv)) return 0;

  const auto factors = ccf::util::parse_double_list(cli.get("factors"));
  std::printf("== Ablation: control-message latency sweep (U=%lld procs) ==\n\n",
              cli.get_int("importers"));
  ccf::util::TableWriter table(
      {"latency/C", "copies", "skips", "knee iter", "plateau ms", "end time s"});

  for (double factor : factors) {
    ccf::sim::MicrobenchParams p;
    p.rows = p.cols = cli.get_int("rows");
    p.importer_procs = static_cast<int>(cli.get_int("importers"));
    p.num_exports = static_cast<int>(cli.get_int("exports"));
    p.net_latency_factor = factor;
    const auto r = ccf::sim::run_microbench(p);
    table.add_row({ccf::util::TableWriter::fmt(factor, 2),
                   std::to_string(r.slow_stats.buffer.stores),
                   std::to_string(r.slow_stats.buffer.skips),
                   std::to_string(r.settle_iteration),
                   ccf::util::TableWriter::fmt(r.plateau_mean * 1e3, 4),
                   ccf::util::TableWriter::fmt(r.end_time, 3)});
  }
  table.print(std::cout);
  std::printf("\nnote: on the paper's testbed latency was ~0.04 C (50 us vs a 1.4 ms copy).\n");
  return 0;
}
