// Figures 7 and 8 reproduction: the exact event listings of an exporter
// process with and without buddy-help, for matching policy REGL and
// precision 5.0 (paper §5, last example).
//
// Scenario (identical in both arms):
//   exports at t = 1.6, 2.6, 3.6;
//   request for D@10.0 arrives (acceptable region [5.0, 10.0]);
//   WITH buddy-help the answer {D@10.0, YES, D@9.6} arrives right after;
//   exports continue 4.6 ... 11.6.
//
// Figure 7 (with): every non-match in the region is *skipped*;
// Figure 8 (without): each in-region export is buffered as the new best
// candidate and the previous candidate freed; the match is only
// identified after D@10.6 crosses the requested timestamp.
#include <cstdio>

#include "core/export_state.hpp"
#include "runtime/scripted_context.hpp"
#include "util/cli.hpp"

namespace {

using namespace ccf;
using core::AnswerMsg;
using core::ExportConnConfig;
using core::ExportRegionState;
using core::MatchResult;
using core::RequestMsg;

std::string run_arm(bool buddy_help) {
  runtime::ScriptedContext ctx(/*id=*/0);
  dist::BlockDecomposition one(16, 16, 1, 1);
  std::vector<ExportConnConfig> conns;
  conns.push_back(ExportConnConfig{0, core::MatchPolicy::REGL, 5.0,
                                   dist::RedistSchedule(one, one, one.domain()),
                                   {/*importer proc*/ 42}});
  core::FrameworkOptions options;
  options.trace = true;
  ExportRegionState state("r1", one.domain(), 0, std::move(conns), options, /*rep=*/99);

  std::vector<double> block(16 * 16, 0.0);
  auto do_export = [&](double t) {
    std::fill(block.begin(), block.end(), t);
    state.on_export(t, block.data(), ctx);
  };

  for (int k = 1; k <= 3; ++k) do_export(0.6 + k);  // 1.6, 2.6, 3.6
  state.on_forwarded_request(RequestMsg{0, 0, 10.0}, ctx);
  if (buddy_help) {
    state.on_buddy_help(AnswerMsg{0, 0, 10.0, MatchResult::Match, 9.6}, ctx);
  }
  for (int k = 4; k <= 11; ++k) do_export(0.6 + k);  // 4.6 ... 11.6
  return state.trace().listing();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_fig7_fig8",
                      "Reproduces the Figure 7 (with buddy-help) and Figure 8 (without) listings");
  if (!cli.parse(argc, argv)) return 0;

  std::printf("== Figure 7: WITH buddy-help (REGL, precision 5.0) ==\n");
  std::printf("%s", run_arm(true).c_str());
  std::printf("\n== Figure 8: WITHOUT buddy-help (same scenario) ==\n");
  std::printf("%s", run_arm(false).c_str());
  std::printf(
      "\npaper check: Fig. 7 skips every non-match inside [5, 10]; Fig. 8 buffers each\n"
      "in-region export as the new best candidate (freeing the previous one) and only\n"
      "sends D@9.6 after D@10.6 crosses the requested timestamp.\n");
  return 0;
}
