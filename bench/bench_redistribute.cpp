// Microbenchmarks of the MxN redistribution machinery: schedule
// construction cost as process counts grow, and pack/unpack throughput.
#include <benchmark/benchmark.h>

#include "dist/dist_array.hpp"
#include "dist/redistribute.hpp"
#include "dist/schedule.hpp"

namespace {

using ccf::dist::BlockDecomposition;
using ccf::dist::Box;
using ccf::dist::DistArray2D;
using ccf::dist::RedistSchedule;

void BM_ScheduleBuild(benchmark::State& state) {
  const int src_p = static_cast<int>(state.range(0));
  const int dst_p = static_cast<int>(state.range(1));
  const auto src = BlockDecomposition::make_grid(1024, 1024, src_p);
  const auto dst = BlockDecomposition::make_grid(1024, 1024, dst_p);
  for (auto _ : state) {
    RedistSchedule sched(src, dst, Box{0, 1024, 0, 1024});
    benchmark::DoNotOptimize(sched.pieces().size());
  }
}
BENCHMARK(BM_ScheduleBuild)
    ->Args({4, 4})
    ->Args({4, 32})
    ->Args({32, 32})
    ->Args({64, 128});

void BM_PackBox(benchmark::State& state) {
  const auto side = state.range(0);
  const BlockDecomposition d(side, side, 1, 1);
  DistArray2D<double> a(d, 0);
  a.fill([](ccf::dist::Index r, ccf::dist::Index c) {
    return static_cast<double>(r + c);
  });
  const Box sub{side / 4, 3 * side / 4, side / 4, 3 * side / 4};
  for (auto _ : state) {
    auto packed = a.pack(sub);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sub.count()) * 8);
}
BENCHMARK(BM_PackBox)->Arg(128)->Arg(512)->Arg(1024);

void BM_UnpackBox(benchmark::State& state) {
  const auto side = state.range(0);
  const BlockDecomposition d(side, side, 1, 1);
  DistArray2D<double> a(d, 0);
  const Box sub{0, side, 0, side};
  const std::vector<double> buf(static_cast<std::size_t>(sub.count()), 2.5);
  for (auto _ : state) {
    a.unpack(sub, buf);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sub.count()) * 8);
}
BENCHMARK(BM_UnpackBox)->Arg(128)->Arg(512);

void BM_PackFromPacked(benchmark::State& state) {
  const Box buf_box{0, 512, 0, 512};
  const std::vector<double> buf(512 * 512, 1.0);
  const Box piece{100, 400, 100, 400};
  for (auto _ : state) {
    auto out = ccf::dist::pack_from_packed(buf_box, buf, piece);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * piece.count() * 8);
}
BENCHMARK(BM_PackFromPacked);

}  // namespace

BENCHMARK_MAIN();
