// Microbenchmarks of the MxN redistribution machinery: schedule
// construction cost as process counts grow, pack/unpack throughput, and
// the data-plane send paths (legacy two-copy vs direct wire pack vs
// zero-copy snapshot aliasing) that BENCH_dataplane.json tracks.
#include <benchmark/benchmark.h>

#include "core/buffer_pool.hpp"
#include "dist/dist_array.hpp"
#include "dist/redistribute.hpp"
#include "dist/schedule.hpp"
#include "runtime/scripted_context.hpp"
#include "transport/serialize.hpp"

namespace {

using ccf::dist::BlockDecomposition;
using ccf::dist::Box;
using ccf::dist::DistArray2D;
using ccf::dist::RedistSchedule;

void BM_ScheduleBuild(benchmark::State& state) {
  const int src_p = static_cast<int>(state.range(0));
  const int dst_p = static_cast<int>(state.range(1));
  const auto src = BlockDecomposition::make_grid(1024, 1024, src_p);
  const auto dst = BlockDecomposition::make_grid(1024, 1024, dst_p);
  for (auto _ : state) {
    RedistSchedule sched(src, dst, Box{0, 1024, 0, 1024});
    benchmark::DoNotOptimize(sched.pieces().size());
  }
}
BENCHMARK(BM_ScheduleBuild)
    ->Args({4, 4})
    ->Args({4, 32})
    ->Args({32, 32})
    ->Args({64, 128});

void BM_PackBox(benchmark::State& state) {
  const auto side = state.range(0);
  const BlockDecomposition d(side, side, 1, 1);
  DistArray2D<double> a(d, 0);
  a.fill([](ccf::dist::Index r, ccf::dist::Index c) {
    return static_cast<double>(r + c);
  });
  const Box sub{side / 4, 3 * side / 4, side / 4, 3 * side / 4};
  for (auto _ : state) {
    auto packed = a.pack(sub);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sub.count()) * 8);
}
BENCHMARK(BM_PackBox)->Arg(128)->Arg(512)->Arg(1024);

void BM_UnpackBox(benchmark::State& state) {
  const auto side = state.range(0);
  const BlockDecomposition d(side, side, 1, 1);
  DistArray2D<double> a(d, 0);
  const Box sub{0, side, 0, side};
  const std::vector<double> buf(static_cast<std::size_t>(sub.count()), 2.5);
  for (auto _ : state) {
    a.unpack(sub, buf);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sub.count()) * 8);
}
BENCHMARK(BM_UnpackBox)->Arg(128)->Arg(512);

void BM_PackFromPacked(benchmark::State& state) {
  const Box buf_box{0, 512, 0, 512};
  const std::vector<double> buf(512 * 512, 1.0);
  const Box piece{100, 400, 100, 400};
  for (auto _ : state) {
    auto out = ccf::dist::pack_from_packed(buf_box, buf, piece);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * piece.count() * 8);
}
BENCHMARK(BM_PackFromPacked);

// ---------------------------------------------------------------------------
// Data-plane send paths. A "large piece" is 512x512 doubles (2 MiB) out of
// a 1024x1024 snapshot — the paper's per-process block size.

const Box kSnapshotBox{0, 1024, 0, 1024};
const Box kLargePiece{256, 768, 256, 768};

/// The pre-PR data path: pack the piece into an element vector, then
/// serialize that vector into a second buffer (two full copies).
void BM_SendPayloadLegacy(benchmark::State& state) {
  const std::vector<double> snapshot(1024 * 1024, 1.0);
  for (auto _ : state) {
    auto packed = ccf::dist::pack_from_packed(kSnapshotBox, snapshot, kLargePiece);
    ccf::transport::Writer w;
    w.put_vector(packed);
    auto payload = w.take();
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kLargePiece.count() *
                          8);
}
BENCHMARK(BM_SendPayloadLegacy);

/// The current path for a partial piece: one strided copy straight into an
/// exact-size wire frame.
void BM_SendPayloadWire(benchmark::State& state) {
  const std::vector<double> snapshot(1024 * 1024, 1.0);
  for (auto _ : state) {
    auto payload =
        ccf::dist::pack_wire_payload(kSnapshotBox, snapshot.data(), kLargePiece);
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kLargePiece.count() *
                          8);
}
BENCHMARK(BM_SendPayloadWire);

/// The full export transfer path through BufferPool + execute_sends_packed:
/// a 1->1 full-box schedule, so every send aliases the pooled frame
/// (zero copies beyond the snapshot memcpy). copies_per_delivered_byte is
/// exported as a counter so run_benches can assert the steady-state value.
void BM_ExportTransferFullBoxAliased(benchmark::State& state) {
  const auto decomp = BlockDecomposition::make_grid(512, 512, 1);
  const RedistSchedule sched(decomp, decomp, Box{0, 512, 0, 512});
  const std::vector<double> block(512 * 512, 1.0);
  ccf::runtime::ScriptedContext ctx(0);
  ccf::core::BufferPool pool;
  ccf::dist::TransferStats stats;
  double t = 0;
  for (auto _ : state) {
    pool.store(++t, block.data(), block.size(), 0b1, ctx);
    ccf::dist::execute_sends_packed(ctx, sched, 0, {100}, 77, Box{0, 512, 0, 512},
                                    pool.snapshot(t).data(), &stats, pool.wire_payload(t));
    ctx.sent().clear();  // release the in-flight alias so the frame recycles
    pool.drop(t, 0);
  }
  state.counters["copies_per_delivered_byte"] = stats.copies_per_delivered_byte();
  state.counters["arena_reuses"] = static_cast<double>(pool.stats().arena_reuses);
  state.counters["arena_allocs"] = static_cast<double>(pool.stats().arena_allocs);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512 * 512 * 8);
}
BENCHMARK(BM_ExportTransferFullBoxAliased);

/// Same transfer path when the schedule splits the box across 4 importers:
/// every piece is partial, so each costs exactly one pack copy.
void BM_ExportTransferPartialPieces(benchmark::State& state) {
  const auto src = BlockDecomposition::make_grid(512, 512, 1);
  const auto dst = BlockDecomposition::make_grid(512, 512, 4);
  const RedistSchedule sched(src, dst, Box{0, 512, 0, 512});
  const std::vector<double> block(512 * 512, 1.0);
  ccf::runtime::ScriptedContext ctx(0);
  ccf::core::BufferPool pool;
  ccf::dist::TransferStats stats;
  double t = 0;
  for (auto _ : state) {
    pool.store(++t, block.data(), block.size(), 0b1, ctx);
    ccf::dist::execute_sends_packed(ctx, sched, 0, {100, 101, 102, 103}, 77,
                                    Box{0, 512, 0, 512}, pool.snapshot(t).data(), &stats,
                                    pool.wire_payload(t));
    ctx.sent().clear();
    pool.drop(t, 0);
  }
  state.counters["copies_per_delivered_byte"] = stats.copies_per_delivered_byte();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 512 * 512 * 8);
}
BENCHMARK(BM_ExportTransferPartialPieces);

/// Receive-side strided unpack straight from payload bytes.
void BM_UnpackBytes(benchmark::State& state) {
  const auto side = state.range(0);
  const BlockDecomposition d(side, side, 1, 1);
  DistArray2D<double> a(d, 0);
  const Box sub{0, side, 0, side};
  const std::vector<double> buf(static_cast<std::size_t>(sub.count()), 2.5);
  const auto* bytes = reinterpret_cast<const std::byte*>(buf.data());
  for (auto _ : state) {
    a.unpack_bytes(sub, bytes);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sub.count()) * 8);
}
BENCHMARK(BM_UnpackBytes)->Arg(128)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
