// Real-transport calibration: measures the one-way frame cost of the SHM
// ring path (both peers on one node) and the loopback TCP path (peers on
// nodes 0/1 of one host) over a payload-size sweep, then least-squares
// fits the LogP-style model `seconds = per_message + bytes / bandwidth`
// for each path. The fitted constants are recorded in
// BENCH_transport.json and mirrored by the virtual-time presets
// transport::shm_calibrated_model() / tcp_calibrated_model().
//
// Alongside the timings every row reports the transport's structural
// counters; bench/run_benches --suite transport gates on those only
// (exact frame/byte books, zero-copy SHM deliveries, clean decodes) —
// never on the wall-clock numbers.
//
// A second sweep drives each path at pipeline depth 1 and 8 (a window of
// messages in flight instead of strict ping-pong). At depth the batched
// data plane shows its syscall coalescing: several frames ride one
// writev/read on the TCP path, and SHM doorbells fire only on the
// consumer's idle edge. Every reply payload is verified byte-for-byte
// against what was sent, and a receive-order digest proves depth changes
// the schedule but never the bytes.
//
// Usage: bench_transport_cal [--json] [--messages=N]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "transport/real/wire.hpp"
#include "transport/transport.hpp"

namespace {

using namespace ccf;

struct Row {
  std::string path;  // "shm" | "tcp"
  std::size_t payload_bytes = 0;
  int messages = 0;
  double seconds_per_message = 0;  // one-way, timed over the ping-pong
  transport::TransportCounters counters;
};

Row run_pingpong(bool cross_node, std::size_t payload_bytes, int messages) {
  transport::TransportOptions opt;
  opt.kind = transport::TransportKind::Real;
  if (cross_node) opt.node_of[1] = 1;
  auto fabric = transport::make_transport(opt, {0, 1});

  const int warmup = std::max(8, messages / 10);
  const int total = warmup + messages;

  std::thread echo([&fabric, total] {
    auto ep = fabric->attach(1);
    for (int i = 0; i < total; ++i) {
      transport::Message m = ep->inbox().receive({});
      transport::Message reply;
      reply.src = 1;
      reply.dst = 0;
      reply.tag = m.tag;
      reply.payload = m.payload;  // zero-copy forward of the received view
      ep->send(std::move(reply));
    }
  });

  double elapsed = 0;
  {
    auto ep = fabric->attach(0);
    const auto payload =
        transport::make_payload(std::vector<std::byte>(payload_bytes, std::byte{0x5A}));
    auto round_trip = [&](int i) {
      transport::Message m;
      m.src = 0;
      m.dst = 1;
      m.tag = i;
      m.payload = payload;
      ep->send(std::move(m));
      (void)ep->inbox().receive({});
    };
    for (int i = 0; i < warmup; ++i) round_trip(i);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < messages; ++i) round_trip(warmup + i);
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  echo.join();

  Row row;
  row.path = cross_node ? "tcp" : "shm";
  row.payload_bytes = payload_bytes;
  row.messages = messages;
  row.seconds_per_message = elapsed / (2.0 * messages);
  row.counters = fabric->counters();
  return row;
}

struct PipeRow {
  std::string path;  // "shm" | "tcp"
  std::size_t payload_bytes = 0;
  int depth = 0;     // messages kept in flight
  int messages = 0;
  double msgs_per_second = 0;
  std::uint64_t digest = 0;  // FNV-1a over (tag, payload bytes) in receive order
  transport::TransportCounters counters;
};

/// Keeps `depth` messages in flight against the same echo peer. Depth 1
/// degenerates to the ping-pong above; at depth >= 8 the wire batches:
/// several frames per writev/read block, doorbells only on idle edges.
PipeRow run_pipelined(bool cross_node, std::size_t payload_bytes, int messages, int depth) {
  transport::TransportOptions opt;
  opt.kind = transport::TransportKind::Real;
  if (cross_node) opt.node_of[1] = 1;
  auto fabric = transport::make_transport(opt, {0, 1});

  const int warmup = std::max(depth, messages / 10);
  const int total = warmup + messages;

  std::thread echo([&fabric, total] {
    auto ep = fabric->attach(1);
    for (int i = 0; i < total; ++i) {
      transport::Message m = ep->inbox().receive({});
      transport::Message reply;
      reply.src = 1;
      reply.dst = 0;
      reply.tag = m.tag;
      reply.payload = m.payload;  // zero-copy forward of the received view
      ep->send(std::move(reply));
    }
  });

  PipeRow row;
  row.path = cross_node ? "tcp" : "shm";
  row.payload_bytes = payload_bytes;
  row.depth = depth;
  row.messages = messages;
  {
    auto ep = fabric->attach(0);
    std::vector<std::byte> pattern(payload_bytes);
    for (std::size_t i = 0; i < payload_bytes; ++i) {
      pattern[i] = static_cast<std::byte>(i * 131u + 7u);
    }
    const auto payload = transport::make_payload(std::vector<std::byte>(pattern));
    auto send_one = [&](int i) {
      transport::Message m;
      m.src = 0;
      m.dst = 1;
      m.tag = i;
      m.payload = payload;
      ep->send(std::move(m));
    };
    std::uint64_t digest = 1469598103934665603ull;  // FNV offset basis
    auto fold = [&digest](const void* data, std::size_t n) {
      const auto* p = static_cast<const std::byte*>(data);
      for (std::size_t i = 0; i < n; ++i) {
        digest = (digest ^ static_cast<std::uint64_t>(p[i])) * 1099511628211ull;
      }
    };
    int sent = 0, received = 0;
    bool timed = false;
    auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0;
    while (received < total) {
      while (sent < total && sent - received < depth) send_one(sent++);
      transport::Message m = ep->inbox().receive({});
      if (m.payload.size() != payload_bytes ||
          (payload_bytes != 0 &&
           std::memcmp(m.payload.data(), pattern.data(), payload_bytes) != 0)) {
        std::cerr << "pipelined reply " << received << " corrupt on " << row.path << "\n";
        std::abort();
      }
      if (received >= warmup) {
        // Byte identity is enforced by the memcmp above; the digest only
        // witnesses the receive schedule (tag order + payload edges), so
        // fold a bounded sample to keep it off the critical path.
        const std::int64_t tag64 = m.tag;
        fold(&tag64, sizeof tag64);
        const std::size_t n = m.payload.size();
        const std::size_t edge = std::min<std::size_t>(n, 32);
        fold(&n, sizeof n);
        fold(m.payload.data(), edge);
        fold(m.payload.data() + (n - edge), edge);
      }
      ++received;
      if (received == warmup && !timed) {
        timed = true;
        t0 = std::chrono::steady_clock::now();
      }
    }
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    row.msgs_per_second = elapsed > 0 ? messages / elapsed : 0;
    row.digest = digest;
  }
  echo.join();
  row.counters = fabric->counters();
  return row;
}

struct Fit {
  double per_message_seconds = 0;
  double bytes_per_second = 0;
};

/// LogP-style fit of `seconds = per_message + bytes / bandwidth`: the
/// per-message cost comes from the smallest-payload row, the bandwidth
/// from the slope between the extreme sizes. (A plain least-squares
/// intercept goes negative on the TCP path because mid-size rows ride
/// the socket autotuning knee below the large-message asymptote.)
Fit fit_rows(const std::vector<Row>& rows) {
  Fit fit;
  if (rows.empty()) return fit;
  const Row& small = rows.front();
  const Row& large = rows.back();
  const double dx =
      static_cast<double>(large.payload_bytes) - static_cast<double>(small.payload_bytes);
  const double dy = large.seconds_per_message - small.seconds_per_message;
  const double slope = dx > 0 && dy > 0 ? dy / dx : 0;
  fit.bytes_per_second = slope > 0 ? 1.0 / slope : 0;
  fit.per_message_seconds = std::max(
      0.0, small.seconds_per_message - static_cast<double>(small.payload_bytes) * slope);
  return fit;
}

void emit_counters(std::ostringstream& os, const transport::TransportCounters& c) {
  os << "\"frames_sent\": " << c.frames_sent
     << ", \"frames_received\": " << c.frames_received
     << ", \"bytes_framed\": " << c.bytes_framed << ", \"shm_frames\": " << c.shm_frames
     << ", \"shm_zero_copy_deliveries\": " << c.shm_zero_copy_deliveries
     << ", \"shm_inline_copies\": " << c.shm_inline_copies
     << ", \"shm_producer_stalls\": " << c.shm_producer_stalls
     << ", \"shm_doorbell_writes\": " << c.shm_doorbell_writes
     << ", \"tcp_frames\": " << c.tcp_frames << ", \"tcp_bytes\": " << c.tcp_bytes
     << ", \"tcp_read_syscalls\": " << c.tcp_read_syscalls
     << ", \"tcp_write_syscalls\": " << c.tcp_write_syscalls
     << ", \"tcp_rx_blocks\": " << c.tcp_rx_blocks
     << ", \"tcp_zero_copy_deliveries\": " << c.tcp_zero_copy_deliveries
     << ", \"tcp_connections\": " << c.tcp_connections
     << ", \"decode_errors\": " << c.decode_errors << ", \"doorbells\": " << c.doorbells;
}

void emit_json(const std::vector<Row>& rows, const std::vector<PipeRow>& pipes,
               const Fit& shm, const Fit& tcp, std::size_t inline_bytes) {
  std::ostringstream os;
  os << "{\n  \"frame_header_bytes\": " << transport::real::kFrameHeaderBytes
     << ",\n  \"shm_inline_bytes\": " << inline_bytes << ",\n  \"fit\": {\n";
  auto fit_obj = [&os](const char* name, const Fit& f, bool last) {
    os << "    \"" << name << "\": {\"per_message_seconds\": " << f.per_message_seconds
       << ", \"bytes_per_second\": " << f.bytes_per_second << "}" << (last ? "\n" : ",\n");
  };
  fit_obj("shm", shm, false);
  fit_obj("tcp", tcp, true);
  os << "  },\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"path\": \"" << r.path << "\", \"payload_bytes\": " << r.payload_bytes
       << ", \"messages\": " << r.messages
       << ", \"seconds_per_message\": " << r.seconds_per_message << ", ";
    emit_counters(os, r.counters);
    os << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "  ],\n  \"pipeline\": [\n";
  for (std::size_t i = 0; i < pipes.size(); ++i) {
    const PipeRow& r = pipes[i];
    os << "    {\"path\": \"" << r.path << "\", \"payload_bytes\": " << r.payload_bytes
       << ", \"depth\": " << r.depth << ", \"messages\": " << r.messages
       << ", \"msgs_per_second\": " << r.msgs_per_second << ", \"digest\": " << r.digest
       << ", ";
    emit_counters(os, r.counters);
    os << "}" << (i + 1 < pipes.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
  std::cout << os.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  int messages_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--messages=", 0) == 0) {
      messages_override = std::stoi(arg.substr(11));
    } else {
      std::cerr << "usage: bench_transport_cal [--json] [--messages=N]\n";
      return 2;
    }
  }

  const std::vector<std::size_t> sizes = {64, 4096, 65536, 524288};
  std::vector<Row> rows;
  for (const bool cross_node : {false, true}) {
    for (const std::size_t bytes : sizes) {
      // Fewer iterations for large payloads so the sweep stays quick.
      int messages = static_cast<int>(std::max<std::size_t>(128, (8u << 20) / (bytes + 1)));
      messages = std::min(messages, 4096);
      if (messages_override > 0) messages = messages_override;
      rows.push_back(run_pingpong(cross_node, bytes, messages));
    }
  }

  // Pipelined sweep: same echo workload with a window of messages in
  // flight. 4 KiB payloads keep the paths latency-bound (not bandwidth-
  // bound), so depth >= 8 exposes the syscall coalescing: dozens of
  // frames fit one receive block, and doorbells ring only on idle edges.
  const std::size_t pipe_payload = 4096;
  std::vector<PipeRow> pipes;
  for (const bool cross_node : {false, true}) {
    for (const int depth : {1, 8}) {
      int messages = messages_override > 0 ? messages_override : 4096;
      pipes.push_back(run_pipelined(cross_node, pipe_payload, messages, depth));
    }
  }

  std::vector<Row> shm_rows, tcp_rows;
  for (const Row& r : rows) (r.path == "shm" ? shm_rows : tcp_rows).push_back(r);
  const Fit shm = fit_rows(shm_rows);
  const Fit tcp = fit_rows(tcp_rows);

  const std::size_t inline_bytes = transport::TransportOptions{}.shm_inline_bytes;
  if (json) {
    emit_json(rows, pipes, shm, tcp, inline_bytes);
    return 0;
  }
  std::cout << "path  payload  msgs  us/msg   frames  zero-copy  inline  tcp-frames\n";
  for (const Row& r : rows) {
    std::printf("%-4s %8zu %5d %8.2f %8llu %10llu %7llu %11llu\n", r.path.c_str(),
                r.payload_bytes, r.messages, r.seconds_per_message * 1e6,
                static_cast<unsigned long long>(r.counters.frames_sent),
                static_cast<unsigned long long>(r.counters.shm_zero_copy_deliveries),
                static_cast<unsigned long long>(r.counters.shm_inline_copies),
                static_cast<unsigned long long>(r.counters.tcp_frames));
  }
  std::printf("fit shm: %.2f us/msg, %.2f GB/s\n", shm.per_message_seconds * 1e6,
              shm.bytes_per_second / 1e9);
  std::printf("fit tcp: %.2f us/msg, %.2f GB/s\n", tcp.per_message_seconds * 1e6,
              tcp.bytes_per_second / 1e9);
  std::printf("\npath  depth  msgs/s   syscalls/frame  doorbells/frame\n");
  for (const PipeRow& p : pipes) {
    const auto& c = p.counters;
    const double sys_per_frame =
        c.tcp_frames ? static_cast<double>(c.tcp_read_syscalls + c.tcp_write_syscalls) /
                           static_cast<double>(c.tcp_frames)
                     : 0.0;
    const double bell_per_frame =
        c.shm_frames ? static_cast<double>(c.shm_doorbell_writes) /
                           static_cast<double>(c.shm_frames)
                     : 0.0;
    std::printf("%-4s %6d %8.0f %15.2f %16.2f\n", p.path.c_str(), p.depth,
                p.msgs_per_second, sys_per_frame, bell_per_frame);
  }
  return 0;
}
