// Ablation: finite buffer space (paper §6 raises "the performance effects
// of finite buffer space in a coupled component" as an open question).
//
// Scenario: the importer is slower than the exporter (the Fig. 4(a)
// regime, where the buffer grows without bound). We sweep the per-process
// snapshot cap and report peak occupancy, backpressure stalls, and the
// end-to-end completion time — the buffer/throughput trade-off.
#include <cstdio>
#include <iostream>

#include "sim/microbench.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ccf::util::CliParser cli("bench_ablation_buffer",
                           "Sweeps the finite buffer-space cap under a slower importer");
  cli.add_option("rows", "64", "global array rows/cols");
  cli.add_option("exports", "401", "number of exports");
  cli.add_option("importers", "4", "importer process count (slower-importer regime)");
  cli.add_option("caps", "0,200,100,50,25,10", "caps in snapshots (0 = unlimited)");
  if (!cli.parse(argc, argv)) return 0;

  const auto caps = ccf::util::parse_int_list(cli.get("caps"));
  std::printf("== Ablation: finite buffer space (U=%lld procs, slower importer) ==\n\n",
              cli.get_int("importers"));
  ccf::util::TableWriter table({"cap (snapshots)", "peak (snapshots)", "stalls",
                                "stall time s", "end time s", "transfers"});

  for (long long cap : caps) {
    ccf::sim::MicrobenchParams p;
    p.rows = p.cols = cli.get_int("rows");
    p.importer_procs = static_cast<int>(cli.get_int("importers"));
    p.num_exports = static_cast<int>(cli.get_int("exports"));
    p.buffer_cap_snapshots = static_cast<std::size_t>(cap);
    const auto r = ccf::sim::run_microbench(p);
    const std::size_t snapshot_bytes =
        r.slow_stats.buffer.peak_entries > 0 && r.slow_stats.buffer.peak_bytes > 0
            ? r.slow_stats.buffer.peak_bytes / r.slow_stats.buffer.peak_entries
            : 1;
    table.add_row({cap == 0 ? "unlimited" : std::to_string(cap),
                   std::to_string(r.slow_stats.buffer.peak_bytes / snapshot_bytes),
                   std::to_string(r.slow_stats.stalls),
                   ccf::util::TableWriter::fmt(r.slow_stats.stall_seconds, 4),
                   ccf::util::TableWriter::fmt(r.end_time, 4),
                   std::to_string(r.slow_stats.transfers)});
  }
  table.print(std::cout);
  std::printf(
      "\nnote: with a slower importer the exporter stalls once the cap is reached and\n"
      "thereafter advances at the importer's pace; transfers (correctness) are\n"
      "unaffected. The stall time is the price of the bounded memory footprint.\n");
  return 0;
}
