// Microbenchmarks of the collective-operations library over the
// deterministic virtual-time executor: host-side cost per collective as
// group size and payload grow (log-depth trees keep rounds low — the
// property that makes collectives cheap relative to data transfers).
#include <benchmark/benchmark.h>

#include <numeric>

#include "collectives/communicator.hpp"
#include "collectives/reduce_ops.hpp"
#include "runtime/cluster.hpp"

namespace {

using ccf::collectives::Communicator;
using ccf::runtime::ClusterOptions;
using ccf::runtime::ProcessContext;

/// Runs `ops` collectives of the given kind on a P-process virtual
/// cluster; reports time per collective call.
template <typename Body>
void run_collective_bench(benchmark::State& state, int procs, int ops, Body&& body) {
  std::vector<ccf::transport::ProcId> members(static_cast<std::size_t>(procs));
  std::iota(members.begin(), members.end(), 0);
  for (auto _ : state) {
    auto cluster = ccf::runtime::make_cluster(ClusterOptions{});
    for (auto id : members) {
      cluster->add_process(id, [&, members](ProcessContext& ctx) {
        Communicator comm(ctx, members);
        for (int i = 0; i < ops; ++i) body(comm);
      });
    }
    cluster->run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * ops);
}

void BM_Barrier(benchmark::State& state) {
  run_collective_bench(state, static_cast<int>(state.range(0)), 50,
                       [](Communicator& comm) { comm.barrier(); });
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_Broadcast(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(1));
  run_collective_bench(state, static_cast<int>(state.range(0)), 50, [count](Communicator& comm) {
    std::vector<double> data(comm.rank() == 0 ? count : 0, 1.0);
    comm.broadcast(data, 0);
    benchmark::DoNotOptimize(data.data());
  });
}
BENCHMARK(BM_Broadcast)->Args({8, 64})->Args({8, 65536})->Args({32, 64})
    ->Unit(benchmark::kMillisecond);

void BM_AllReduce(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(1));
  run_collective_bench(state, static_cast<int>(state.range(0)), 50, [count](Communicator& comm) {
    std::vector<double> data(count, static_cast<double>(comm.rank()));
    comm.all_reduce(data, ccf::collectives::Sum{});
    benchmark::DoNotOptimize(data.data());
  });
}
BENCHMARK(BM_AllReduce)->Args({8, 64})->Args({32, 64})->Unit(benchmark::kMillisecond);

void BM_AllToAll(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  run_collective_bench(state, procs, 20, [procs](Communicator& comm) {
    std::vector<std::vector<double>> send(static_cast<std::size_t>(procs),
                                          std::vector<double>(16, 1.0));
    auto recv = comm.all_to_all(send);
    benchmark::DoNotOptimize(recv.data());
  });
}
BENCHMARK(BM_AllToAll)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
