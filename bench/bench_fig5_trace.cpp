// Figures 5 and 6 reproduction: the typical buddy-help event sequence at
// the slowest exporter process, and the optimal steady state.
//
// Figure 5 (paper): p_s exports with memcpys until the first request
// arrives; the PENDING reply frees everything below the acceptable region;
// the buddy-help answer lets it skip memcpys for exports it has not yet
// produced; the skip run grows block over block until (Figure 6) only the
// matched export of each block is buffered.
#include <cstdio>
#include <sstream>

#include "sim/microbench.hpp"
#include "util/cli.hpp"

namespace {

/// Prints the first `head` and last `tail` lines of a listing.
void print_clipped(const std::string& listing, std::size_t head, std::size_t tail) {
  std::vector<std::string> lines;
  std::istringstream in(listing);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  if (lines.size() <= head + tail + 1) {
    for (const auto& l : lines) std::printf("  %s\n", l.c_str());
    return;
  }
  for (std::size_t i = 0; i < head; ++i) std::printf("  %s\n", lines[i].c_str());
  std::printf("  ... (%zu lines elided) ...\n", lines.size() - head - tail);
  for (std::size_t i = lines.size() - tail; i < lines.size(); ++i) {
    std::printf("  %s\n", lines[i].c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ccf::util::CliParser cli("bench_fig5_trace",
                           "Reproduces Figures 5/6: the buddy-help event trace of p_s");
  cli.add_option("rows", "64", "global array rows");
  cli.add_option("importers", "16", "importer process count (paper Fig. 5 context: 16)");
  cli.add_option("exports", "201", "number of exports");
  cli.add_option("head", "45", "trace lines to print from the start");
  cli.add_option("tail", "30", "trace lines to print from the end");
  if (!cli.parse(argc, argv)) return 0;

  ccf::sim::MicrobenchParams p;
  p.rows = cli.get_int("rows");
  p.cols = p.rows;
  p.importer_procs = static_cast<int>(cli.get_int("importers"));
  p.num_exports = static_cast<int>(cli.get_int("exports"));
  p.trace = true;
  const auto r = ccf::sim::run_microbench(p);

  std::printf("== Figure 5: typical buddy-help scenario at the slowest process p_s ==\n");
  std::printf("   (U = %d processes, REGL tol %.1f, requests every %.0f time units)\n\n",
              p.importer_procs, p.tolerance, p.request_stride);
  print_clipped(r.slow_trace, static_cast<std::size_t>(cli.get_int("head")),
                static_cast<std::size_t>(cli.get_int("tail")));

  std::printf("\n== Figure 6: optimal state ==\n");
  std::printf("   last 5 requests' unnecessary buffering time T_i (seconds):");
  const auto& ti = r.slow_stats.t_i;
  for (std::size_t i = ti.size() >= 5 ? ti.size() - 5 : 0; i < ti.size(); ++i) {
    std::printf(" %.6f", ti[i]);
  }
  std::printf("\n   (all-zero T_i == only matched data are buffered, paper Fig. 6)\n");
  std::printf("   memcpys performed: %llu of %llu exports; buddy-helps received: %llu\n",
              static_cast<unsigned long long>(r.slow_stats.buffer.stores),
              static_cast<unsigned long long>(r.slow_stats.exports),
              static_cast<unsigned long long>(r.slow_stats.buddy_helps_received));
  return 0;
}
