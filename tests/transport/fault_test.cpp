// Fault-injection tests: deterministic replay, eligibility scoping, fault
// caps, network-level drop/duplicate/reorder semantics, and the mailbox
// drop accounting the liveness machinery depends on.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "transport/fault.hpp"
#include "transport/mailbox.hpp"
#include "transport/network.hpp"

namespace ccf::transport {
namespace {

Message make_msg(ProcId src, ProcId dst, Tag tag) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.payload = empty_payload();
  return m;
}

FaultPlan lossy_plan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.2;
  plan.duplicate_prob = 0.2;
  plan.delay_prob = 0.2;
  plan.delay_min_seconds = 0.001;
  plan.delay_max_seconds = 0.01;
  return plan;
}

TEST(FaultInjector, SameSeedSameLinkTrafficReplaysIdentically) {
  FaultInjector a(lossy_plan(1234));
  FaultInjector b(lossy_plan(1234));
  for (int i = 0; i < 500; ++i) {
    const ProcId src = i % 3;
    const ProcId dst = 3 + i % 2;
    const FaultDecision da = a.decide(src, dst, 7);
    const FaultDecision db = b.decide(src, dst, 7);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_DOUBLE_EQ(da.extra_delay_seconds, db.extra_delay_seconds);
  }
}

TEST(FaultInjector, DecisionsDependOnlyOnPerLinkIndexNotInterleaving) {
  // Feed the same per-link traffic in two different global interleavings;
  // the decision sequence per link must be identical.
  FaultInjector a(lossy_plan(99));
  FaultInjector b(lossy_plan(99));
  std::vector<FaultDecision> a01, a23, b01, b23;
  for (std::size_t i = 0; i < 100; ++i) {
    a01.push_back(a.decide(0, 1, 0));
    a23.push_back(a.decide(2, 3, 0));
  }
  for (std::size_t i = 0; i < 100; ++i) b23.push_back(b.decide(2, 3, 0));
  for (std::size_t i = 0; i < 100; ++i) b01.push_back(b.decide(0, 1, 0));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a01[i].drop, b01[i].drop);
    EXPECT_EQ(a01[i].duplicate, b01[i].duplicate);
    EXPECT_DOUBLE_EQ(a01[i].extra_delay_seconds, b01[i].extra_delay_seconds);
    EXPECT_EQ(a23[i].drop, b23[i].drop);
    EXPECT_DOUBLE_EQ(a23[i].extra_delay_seconds, b23[i].extra_delay_seconds);
  }
}

TEST(FaultInjector, DifferentSeedsDisagree) {
  FaultInjector a(lossy_plan(1));
  FaultInjector b(lossy_plan(2));
  int disagreements = 0;
  for (int i = 0; i < 300; ++i) {
    const FaultDecision da = a.decide(0, 1, 0);
    const FaultDecision db = b.decide(0, 1, 0);
    if (da.drop != db.drop || da.duplicate != db.duplicate ||
        da.extra_delay_seconds != db.extra_delay_seconds) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjector, RatesRoughlyMatchProbabilities) {
  FaultInjector inj(lossy_plan(42));
  for (int i = 0; i < 10'000; ++i) (void)inj.decide(0, 1, 0);
  const FaultStats s = inj.stats();
  EXPECT_EQ(s.eligible, 10'000u);
  // 20% each with generous slack.
  EXPECT_GT(s.dropped, 1500u);
  EXPECT_LT(s.dropped, 2500u);
  EXPECT_GT(s.duplicated, 1000u);
  EXPECT_GT(s.delayed, 1000u);
}

TEST(FaultInjector, DelayIsWithinConfiguredBounds) {
  FaultInjector inj(lossy_plan(7));
  for (int i = 0; i < 2000; ++i) {
    const FaultDecision d = inj.decide(0, 1, 0);
    if (d.extra_delay_seconds > 0) {
      EXPECT_GE(d.extra_delay_seconds, 0.001);
      EXPECT_LE(d.extra_delay_seconds, 0.01);
    }
  }
  EXPECT_GT(inj.stats().delayed, 0u);
}

TEST(FaultInjector, EligibilityPredicateScopesFaults) {
  FaultPlan plan = lossy_plan(5);
  plan.drop_prob = 1.0;
  plan.duplicate_prob = 0;
  plan.delay_prob = 0;
  plan.eligible = [](ProcId, ProcId, Tag tag) { return tag == 1; };
  FaultInjector inj(std::move(plan));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(inj.decide(0, 1, 1).drop);
    EXPECT_FALSE(inj.decide(0, 1, 2).faulted());
  }
  EXPECT_EQ(inj.stats().eligible, 10u);
  EXPECT_EQ(inj.stats().dropped, 10u);
}

TEST(FaultInjector, MaxFaultsCapsInjectedDamage) {
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_prob = 1.0;
  plan.max_faults = 3;
  FaultInjector inj(std::move(plan));
  int drops = 0;
  for (int i = 0; i < 20; ++i) drops += inj.decide(0, 1, 0).drop ? 1 : 0;
  EXPECT_EQ(drops, 3);
  EXPECT_EQ(inj.stats().dropped, 3u);
  EXPECT_EQ(inj.stats().eligible, 20u);
}

TEST(FaultInjector, RejectsInvalidPlans) {
  FaultPlan bad;
  bad.drop_prob = 1.5;
  EXPECT_THROW(FaultInjector{bad}, util::InvalidArgument);
  FaultPlan bounds;
  bounds.delay_prob = 0.5;
  bounds.delay_min_seconds = 2;
  bounds.delay_max_seconds = 1;
  EXPECT_THROW(FaultInjector{bounds}, util::InvalidArgument);
}

TEST(NetworkFaults, DropsVanishAndAreCounted) {
  Network net;
  net.register_process(1);
  auto box = net.register_process(2);
  FaultPlan plan;
  plan.drop_prob = 1.0;
  net.set_fault_injector(std::make_shared<FaultInjector>(plan));
  for (int i = 0; i < 5; ++i) net.send(make_msg(1, 2, 0));
  EXPECT_EQ(box->pending(), 0u);
  EXPECT_EQ(net.stats().faults_dropped, 5u);
  // messages_sent counts deliveries; dropped messages never deliver.
  EXPECT_EQ(net.stats().messages_sent, 0u);
}

TEST(NetworkFaults, DuplicatesDeliverTwice) {
  Network net;
  net.register_process(1);
  auto box = net.register_process(2);
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  net.set_fault_injector(std::make_shared<FaultInjector>(plan));
  net.send(make_msg(1, 2, 9));
  EXPECT_EQ(box->pending(), 2u);
  EXPECT_EQ(net.stats().faults_duplicated, 1u);
}

TEST(NetworkFaults, DelayHoldsBackUntilNextSendToSameDst) {
  Network net;
  net.register_process(1);
  auto box = net.register_process(2);
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay_min_seconds = 0.001;
  plan.delay_max_seconds = 0.001;
  plan.max_faults = 1;  // only the first message is held back
  net.set_fault_injector(std::make_shared<FaultInjector>(plan));
  net.send(make_msg(1, 2, 100));
  EXPECT_EQ(box->pending(), 0u);  // held
  net.send(make_msg(1, 2, 200));
  EXPECT_EQ(box->pending(), 2u);
  // The second message now precedes the held-back first: a reordering.
  EXPECT_EQ(box->receive(MatchSpec{}).tag, 200);
  EXPECT_EQ(box->receive(MatchSpec{}).tag, 100);
  EXPECT_EQ(net.stats().faults_reordered, 1u);
}

TEST(NetworkFaults, ShutdownFlushesHeldMessages) {
  Network net;
  net.register_process(1);
  auto box = net.register_process(2);
  FaultPlan plan;
  plan.delay_prob = 1.0;
  plan.delay_min_seconds = 0.001;
  plan.delay_max_seconds = 0.001;
  net.set_fault_injector(std::make_shared<FaultInjector>(plan));
  net.send(make_msg(1, 2, 7));
  EXPECT_EQ(box->pending(), 0u);
  net.shutdown();
  // Flushed before the close, so the message is queued, not lost.
  EXPECT_EQ(box->pending(), 1u);
}

TEST(NetworkFaults, ClosedMailboxDropsAreCounted) {
  Network net;
  net.register_process(1);
  auto box = net.register_process(2);
  box->close();
  net.send(make_msg(1, 2, 0));
  net.send(make_msg(1, 2, 0));
  EXPECT_EQ(net.stats().closed_box_drops, 2u);
  EXPECT_EQ(box->dropped(), 2u);
}

TEST(MailboxDrops, DeliverToClosedBoxCountsEachDrop) {
  Mailbox box;
  EXPECT_EQ(box.dropped(), 0u);
  EXPECT_TRUE(box.deliver(make_msg(1, 0, 1)));
  box.close();
  EXPECT_FALSE(box.deliver(make_msg(1, 0, 2)));
  EXPECT_FALSE(box.deliver(make_msg(1, 0, 3)));
  EXPECT_EQ(box.dropped(), 2u);
  EXPECT_EQ(box.pending(), 1u);  // pre-close mail stays readable
}

TEST(MailboxDrops, ReceiveUntilExpiresWithOnlyNonMatchingMail) {
  Mailbox box;
  box.deliver(make_msg(1, 0, 5));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  // A queued message with the wrong tag must not satisfy the wait.
  EXPECT_FALSE(box.receive_until(MatchSpec{kAnyProc, 6}, deadline).has_value());
  EXPECT_EQ(box.pending(), 1u);
}

TEST(MailboxDrops, CloseDuringBlockedReceiveUntilThrows) {
  Mailbox box;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.close();
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  EXPECT_THROW(box.receive_until(MatchSpec{}, deadline), MailboxClosed);
  closer.join();
}

}  // namespace
}  // namespace ccf::transport
