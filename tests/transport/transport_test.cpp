// Transport substrate tests: serialization, mailbox matching semantics,
// network routing, latency models.
#include <gtest/gtest.h>

#include <thread>

#include "transport/latency.hpp"
#include "transport/mailbox.hpp"
#include "transport/network.hpp"
#include "transport/serialize.hpp"

namespace ccf::transport {
namespace {

TEST(Serialize, RoundTripsScalarsStringsVectors) {
  Writer w;
  w.put<std::int32_t>(-7);
  w.put<double>(3.25);
  w.put_string("hello world");
  w.put_vector<std::uint16_t>({1, 2, 3});
  Reader r(w.take());
  EXPECT_EQ(r.get<std::int32_t>(), -7);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.25);
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_vector<std::uint16_t>(), (std::vector<std::uint16_t>{1, 2, 3}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, EmptyContainers) {
  Writer w;
  w.put_string("");
  w.put_vector<double>({});
  Reader r(w.take());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.get_vector<double>().empty());
}

TEST(Serialize, UnderflowThrows) {
  Writer w;
  w.put<std::uint8_t>(1);
  Reader r(w.take());
  EXPECT_THROW(r.get<std::uint64_t>(), util::InvalidArgument);
}

TEST(Serialize, MalformedVectorLengthThrowsBeforeAllocating) {
  // A corrupt length prefix like 2^61 makes n * sizeof(double) wrap to a
  // small number; the count must be validated against the remaining bytes
  // before any allocation, so this throws instead of attempting a huge
  // vector (or worse, passing a wrapped bounds check and reading OOB).
  Writer w;
  w.put<std::uint64_t>(std::uint64_t{1} << 61);
  w.put<double>(1.0);  // far fewer bytes than the prefix claims
  Reader r(w.take());
  EXPECT_THROW(r.get_vector<double>(), util::InvalidArgument);
}

TEST(Serialize, MalformedStringLengthThrows) {
  Writer w;
  w.put<std::uint64_t>(std::uint64_t{1} << 61);
  Reader r(w.take());
  EXPECT_THROW(r.get_string(), util::InvalidArgument);
}

TEST(Serialize, WriterReservesUpFront) {
  // put_vector must reserve prefix + data in one step, not grow twice.
  const std::vector<double> v(1000, 1.5);
  Writer w;
  w.put_vector(v);
  EXPECT_EQ(w.size(), kLengthPrefixBytes + v.size() * sizeof(double));

  // The exact-reserve constructor makes the allocation count exactly one.
  Writer sized(kLengthPrefixBytes + v.size() * sizeof(double));
  const std::size_t cap = sized.capacity();
  sized.put_vector(v);
  EXPECT_EQ(sized.capacity(), cap) << "put_vector reallocated a pre-sized writer";
}

TEST(PayloadView, NullVersusValidEmpty) {
  const Payload null_payload;
  EXPECT_FALSE(null_payload);
  const Payload empty = empty_payload();
  EXPECT_TRUE(empty);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.empty());
}

TEST(PayloadView, SliceSharesBufferWithoutCopy) {
  std::vector<std::byte> bytes(16);
  for (std::size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<std::byte>(i);
  const Payload whole = make_payload(std::move(bytes));
  const Payload mid = whole.slice(4, 8);
  EXPECT_EQ(mid.size(), 8u);
  EXPECT_EQ(mid.data(), whole.data() + 4) << "slice must alias, not copy";
  EXPECT_EQ(static_cast<unsigned>(mid.data()[0]), 4u);
  // A slice of a slice still aliases the original buffer.
  const Payload inner = mid.slice(2, 2);
  EXPECT_EQ(inner.data(), whole.data() + 6);
}

TEST(PayloadView, SliceBoundsChecked) {
  const Payload p = make_payload(std::vector<std::byte>(8));
  EXPECT_THROW(p.slice(9, 0), util::InvalidArgument);
  EXPECT_THROW(p.slice(4, 5), util::InvalidArgument);
  EXPECT_THROW(Payload{}.slice(0, 0), util::InvalidArgument);
  EXPECT_NO_THROW(p.slice(8, 0));
}

TEST(PayloadView, SliceKeepsBufferAliveAfterParentDies) {
  Payload tail;
  {
    std::vector<std::byte> bytes(32, std::byte{7});
    Payload whole = make_payload(std::move(bytes));
    tail = whole.slice(16, 16);
  }
  ASSERT_TRUE(tail);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(static_cast<unsigned>(tail.data()[i]), 7u);
  }
}

TEST(PayloadView, ReaderViewIsZeroCopy) {
  Writer w;
  w.put_vector<double>({1.0, 2.0, 3.0});
  const Payload frame = w.take();
  Reader r(frame);
  EXPECT_EQ(r.get<std::uint64_t>(), 3u);
  const Payload body = r.view(3 * sizeof(double));
  EXPECT_EQ(body.data(), frame.data() + kLengthPrefixBytes) << "view must alias the frame";
  EXPECT_TRUE(r.exhausted());
  EXPECT_THROW(r.view(1), util::InvalidArgument);
}

TEST(Serialize, RawBytes) {
  Writer w;
  const char data[] = "abcd";
  w.put_raw(data, 4);
  Reader r(w.take());
  char out[4];
  r.get_raw(out, 4);
  EXPECT_EQ(std::string(out, 4), "abcd");
}

Message make_msg(ProcId src, ProcId dst, Tag tag) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.payload = empty_payload();
  return m;
}

TEST(MailboxTest, TagMatchingSkipsNonMatching) {
  Mailbox box;
  box.deliver(make_msg(1, 0, 10));
  box.deliver(make_msg(2, 0, 20));
  // Matching tag 20 takes the second message, leaving the first queued.
  Message m = box.receive(MatchSpec{kAnyProc, 20});
  EXPECT_EQ(m.src, 2);
  EXPECT_EQ(box.pending(), 1u);
  m = box.receive(MatchSpec{kAnyProc, kAnyTag});
  EXPECT_EQ(m.src, 1);
}

TEST(MailboxTest, SourceMatching) {
  Mailbox box;
  box.deliver(make_msg(5, 0, 1));
  box.deliver(make_msg(6, 0, 1));
  Message m = box.receive(MatchSpec{6, 1});
  EXPECT_EQ(m.src, 6);
}

TEST(MailboxTest, FifoAmongMatching) {
  Mailbox box;
  for (int i = 0; i < 5; ++i) {
    Message m = make_msg(1, 0, 7);
    m.seq = static_cast<std::uint64_t>(i);
    box.deliver(std::move(m));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(box.receive(MatchSpec{1, 7}).seq, static_cast<std::uint64_t>(i));
  }
}

TEST(MailboxTest, TryReceiveAndProbe) {
  Mailbox box;
  EXPECT_FALSE(box.try_receive(MatchSpec{}).has_value());
  EXPECT_FALSE(box.probe(MatchSpec{}));
  box.deliver(make_msg(1, 0, 3));
  EXPECT_TRUE(box.probe(MatchSpec{1, 3}));
  EXPECT_FALSE(box.probe(MatchSpec{1, 4}));
  EXPECT_TRUE(box.try_receive(MatchSpec{1, 3}).has_value());
  EXPECT_EQ(box.pending(), 0u);
}

TEST(MailboxTest, BlockingReceiveWakesOnDeliver) {
  Mailbox box;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.deliver(make_msg(9, 0, 42));
  });
  Message m = box.receive(MatchSpec{9, 42});
  EXPECT_EQ(m.tag, 42);
  producer.join();
}

TEST(MailboxTest, CloseWakesBlockedReceiver) {
  Mailbox box;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.close();
  });
  EXPECT_THROW(box.receive(MatchSpec{}), MailboxClosed);
  closer.join();
  EXPECT_TRUE(box.closed());
}

TEST(MailboxTest, DeliverAfterCloseIsDropped) {
  Mailbox box;
  box.close();
  box.deliver(make_msg(1, 0, 1));
  EXPECT_EQ(box.pending(), 0u);
}

TEST(MailboxTest, ReceiveUntilTimesOut) {
  Mailbox box;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  EXPECT_FALSE(box.receive_until(MatchSpec{}, deadline).has_value());
}

TEST(MailboxTest, ReceiveUntilGetsMessage) {
  Mailbox box;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.deliver(make_msg(1, 0, 5));
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  auto m = box.receive_until(MatchSpec{1, 5}, deadline);
  ASSERT_TRUE(m.has_value());
  producer.join();
}

TEST(NetworkTest, RoutesByDestination) {
  Network net;
  auto box1 = net.register_process(1);
  auto box2 = net.register_process(2);
  net.send(make_msg(1, 2, 0));
  EXPECT_EQ(box2->pending(), 1u);
  EXPECT_EQ(box1->pending(), 0u);
}

TEST(NetworkTest, SequencesPerSender) {
  Network net;
  net.register_process(1);
  auto box = net.register_process(2);
  net.send(make_msg(1, 2, 0));
  net.send(make_msg(1, 2, 0));
  EXPECT_EQ(box->receive(MatchSpec{}).seq, 0u);
  EXPECT_EQ(box->receive(MatchSpec{}).seq, 1u);
}

TEST(NetworkTest, RejectsDuplicateAndUnknownIds) {
  Network net;
  net.register_process(3);
  EXPECT_THROW(net.register_process(3), util::InvalidArgument);
  EXPECT_THROW(net.register_process(-1), util::InvalidArgument);
  EXPECT_THROW(net.send(make_msg(3, 99, 0)), util::InvalidArgument);
  EXPECT_THROW(net.mailbox(99), util::InvalidArgument);
  EXPECT_TRUE(net.has_process(3));
  EXPECT_FALSE(net.has_process(4));
}

TEST(NetworkTest, StatsCountMessagesAndBytes) {
  Network net;
  net.register_process(1);
  net.register_process(2);
  Message m = make_msg(1, 2, 0);
  std::vector<std::byte> bytes(100);
  m.payload = make_payload(std::move(bytes));
  net.send(std::move(m));
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().bytes_sent, 100u);
}

TEST(NetworkTest, ShutdownClosesAllMailboxes) {
  Network net;
  auto box = net.register_process(1);
  net.shutdown();
  EXPECT_TRUE(box->closed());
}

TEST(LatencyModels, ZeroAndFixed) {
  ZeroLatency zero;
  EXPECT_EQ(zero.delay_seconds(1 << 20), 0.0);
  FixedLatency fixed(1e-3);
  EXPECT_DOUBLE_EQ(fixed.delay_seconds(0), 1e-3);
  EXPECT_DOUBLE_EQ(fixed.delay_seconds(1 << 20), 1e-3);
  EXPECT_THROW(FixedLatency(-1), util::InvalidArgument);
}

TEST(LatencyModels, BandwidthScalesWithSize) {
  BandwidthLatency model(50e-6, 100e6);
  EXPECT_DOUBLE_EQ(model.delay_seconds(0), 50e-6);
  EXPECT_NEAR(model.delay_seconds(100'000'000), 1.0 + 50e-6, 1e-9);
  EXPECT_GT(model.delay_seconds(2000), model.delay_seconds(1000));
}

TEST(LatencyModels, GigePresetIsSane) {
  auto gige = gige_model();
  // 1 MB at ~110 MB/s: around 9-10 ms.
  const double d = gige->delay_seconds(1 << 20);
  EXPECT_GT(d, 5e-3);
  EXPECT_LT(d, 20e-3);
}

TEST(CopyCost, ScalesWithBytes) {
  const CopyCostModel& model = CopyCostModel::pentium4_preset();
  EXPECT_GT(model.cost_seconds(1), 0.0);
  EXPECT_GT(model.cost_seconds(1 << 21), model.cost_seconds(1 << 10));
  // 2 MB at 1.5 GB/s ~ 1.4 ms.
  EXPECT_NEAR(model.cost_seconds(2 * 1024 * 1024), 1.4e-3, 0.5e-3);
}

}  // namespace
}  // namespace ccf::transport
