// FaultTransport decorator tests: seeded chaos over ANY Transport
// backend. The same plan over the same traffic must produce the same
// fault schedule whether the inner transport is the in-memory fabric or
// the real SHM+TCP backend — that replay equivalence is what lets the
// chaos harness run unchanged against a live deployment.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "transport/fault.hpp"
#include "transport/fault_transport.hpp"
#include "transport/transport.hpp"

namespace ccf::transport {
namespace {

Message make_message(ProcId src, ProcId dst, Tag tag) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  std::vector<std::byte> p(32);
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<std::byte>((static_cast<std::size_t>(tag) + i) & 0xFF);
  m.payload = make_payload(std::move(p));
  return m;
}

/// Sends `count` tagged messages 0 -> 1 through a faulted transport and
/// returns the delivered tag sequence.
std::vector<Tag> run_schedule(std::shared_ptr<Transport> inner,
                              std::shared_ptr<FaultInjector> injector, int count) {
  FaultTransport faulted(std::move(inner), std::move(injector));
  std::vector<Tag> tags;
  std::thread receiver([&] {
    auto ep = faulted.attach(1);
    for (;;) {
      Message m;
      try {
        m = ep->inbox().receive({});
      } catch (const MailboxClosed&) {
        break;
      }
      tags.push_back(m.tag);
    }
  });
  {
    auto ep = faulted.attach(0);
    for (int i = 0; i < count; ++i) ep->send(make_message(0, 1, i));
  }
  // Flush held (delayed) messages, then close mailboxes so the receiver
  // sees a clean end-of-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  faulted.shutdown();
  receiver.join();
  return tags;
}

FaultPlan chaos_plan(std::uint64_t seed, int count) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.2;
  plan.duplicate_prob = 0.2;
  plan.delay_prob = 0.2;
  plan.delay_min_seconds = 0.001;
  plan.delay_max_seconds = 0.002;
  // Keep the final message fault-free so it releases any held (delayed)
  // message while the transport is still fully up — the flush must not
  // race the backend's teardown.
  plan.eligible = [count](ProcId, ProcId, Tag tag) { return tag < count - 1; };
  return plan;
}

TEST(FaultTransport, PassesThroughUntouchedWithoutFaults) {
  auto injector = std::make_shared<FaultInjector>(FaultPlan{});  // all probs 0
  const auto tags = run_schedule(make_transport({}, {0, 1}), injector, 50);
  ASSERT_EQ(tags.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(tags[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(injector->stats().dropped, 0u);
}

TEST(FaultTransport, DropsDuplicatesAndReordersPerThePlan) {
  auto injector = std::make_shared<FaultInjector>(chaos_plan(7, 200));
  const auto tags = run_schedule(make_transport({}, {0, 1}), injector, 200);
  const FaultStats stats = injector->stats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_GT(stats.delayed, 0u);
  EXPECT_EQ(tags.size(), 200u - stats.dropped + stats.duplicated);
}

TEST(FaultTransport, SameSeedReplaysTheSameScheduleOnTheSameBackend) {
  const auto a =
      run_schedule(make_transport({}, {0, 1}), std::make_shared<FaultInjector>(chaos_plan(11, 150)), 150);
  const auto b =
      run_schedule(make_transport({}, {0, 1}), std::make_shared<FaultInjector>(chaos_plan(11, 150)), 150);
  EXPECT_EQ(a, b);
}

TEST(FaultTransport, InjectsTheSameFaultsOverFabricAndRealShm) {
  // The decision stream is a pure function of (seed, link, message
  // index) — the inner backend must not shift it. Delivery order may
  // differ across backends; drop/dup/delay counts may not.
  auto fabric_injector = std::make_shared<FaultInjector>(chaos_plan(23, 120));
  const auto fabric_tags = run_schedule(make_transport({}, {0, 1}), fabric_injector, 120);

  TransportOptions real_opt;
  real_opt.kind = TransportKind::Real;  // same node: SHM rings
  auto real_injector = std::make_shared<FaultInjector>(chaos_plan(23, 120));
  const auto real_tags = run_schedule(make_transport(real_opt, {0, 1}), real_injector, 120);

  const FaultStats fs = fabric_injector->stats();
  const FaultStats rs = real_injector->stats();
  EXPECT_EQ(fs.dropped, rs.dropped);
  EXPECT_EQ(fs.duplicated, rs.duplicated);
  EXPECT_EQ(fs.delayed, rs.delayed);
  EXPECT_EQ(fabric_tags.size(), real_tags.size());

  // SHM delivery is FIFO per link, so the sequences match exactly.
  EXPECT_EQ(fabric_tags, real_tags);
}

TEST(FaultTransport, DuplicateDeliveriesAliasOnePayloadBuffer) {
  FaultPlan plan;
  plan.seed = 3;
  plan.duplicate_prob = 1.0;
  plan.max_faults = 1;
  FaultTransport faulted(make_transport({}, {0, 1}),
                         std::make_shared<FaultInjector>(plan));
  auto receiver = faulted.attach(1);
  {
    auto ep = faulted.attach(0);
    ep->send(make_message(0, 1, 5));
  }
  Message first = receiver->inbox().receive({});
  Message second = receiver->inbox().receive({});
  EXPECT_EQ(first.tag, 5);
  EXPECT_EQ(second.tag, 5);
  EXPECT_EQ(first.payload.data(), second.payload.data())
      << "duplicate should alias, not copy";
  faulted.shutdown();
}

TEST(FaultTransport, ShutdownFlushesHeldMessages) {
  FaultPlan plan;
  plan.seed = 1;
  plan.delay_prob = 1.0;
  plan.delay_min_seconds = 0.001;
  plan.delay_max_seconds = 0.001;
  plan.max_faults = 1;
  FaultTransport faulted(make_transport({}, {0, 1}),
                         std::make_shared<FaultInjector>(plan));
  auto receiver = faulted.attach(1);
  {
    auto ep = faulted.attach(0);
    ep->send(make_message(0, 1, 9));  // held: nothing follows to release it
  }
  EXPECT_FALSE(receiver->inbox().probe({}));
  faulted.shutdown();  // must flush, not drop
  auto m = receiver->inbox().try_receive({});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag, 9);
}

}  // namespace
}  // namespace ccf::transport
