// Wire-framing hostile-input tests: the TCP decode path must reject
// malformed, truncated, and oversized frames with FramingError — never
// UB — and must keep working when handshakes and frames coalesce into
// one receive chunk (the stream gives no alignment guarantees). These
// run under the ASan/UBSan CI matrix.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "transport/real/wire.hpp"

namespace ccf::transport::real {
namespace {

std::vector<std::byte> encode_frame(const Message& m) {
  const FrameHeader h = make_frame_header(m);
  std::vector<std::byte> out(frame_bytes(m.payload.size()));
  std::memcpy(out.data(), &h, sizeof h);
  if (m.payload.size() != 0)
    std::memcpy(out.data() + sizeof h, m.payload.data(), m.payload.size());
  return out;
}

Message make_message(int tag, std::size_t payload_bytes) {
  Message m;
  m.src = 3;
  m.dst = 7;
  m.tag = tag;
  m.seq = 42;
  std::vector<std::byte> p(payload_bytes);
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<std::byte>((i * 13 + static_cast<std::size_t>(tag)) & 0xFF);
  m.payload = make_payload(std::move(p));
  return m;
}

TEST(FrameDecoder, RoundTripsFramesAcrossArbitrarySplits) {
  const Message a = make_message(1, 100);
  const Message b = make_message(2, 0);
  const Message c = make_message(3, 4096);
  std::vector<std::byte> stream;
  for (const Message* m : {&a, &b, &c}) {
    const auto f = encode_frame(*m);
    stream.insert(stream.end(), f.begin(), f.end());
  }

  // Feed in 7-byte slivers: every header and payload boundary is crossed.
  FrameDecoder dec(1u << 20);
  std::vector<Message> got;
  Message out;
  for (std::size_t off = 0; off < stream.size(); off += 7) {
    const std::size_t n = std::min<std::size_t>(7, stream.size() - off);
    dec.feed(stream.data() + off, n);
    while (dec.next(out)) got.push_back(out);
  }
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const Message& want = *std::vector<const Message*>{&a, &b, &c}[i];
    EXPECT_EQ(got[i].src, want.src);
    EXPECT_EQ(got[i].dst, want.dst);
    EXPECT_EQ(got[i].tag, want.tag);
    EXPECT_EQ(got[i].seq, want.seq);
    ASSERT_EQ(got[i].payload.size(), want.payload.size());
    if (want.payload.size() != 0) {
      EXPECT_EQ(std::memcmp(got[i].payload.data(), want.payload.data(),
                            want.payload.size()),
                0);
    }
  }
  EXPECT_EQ(dec.pending(), 0u);
}

TEST(FrameDecoder, TruncatedFrameIsPendingNotAnError) {
  const auto f = encode_frame(make_message(1, 256));
  FrameDecoder dec(1u << 20);
  dec.feed(f.data(), f.size() - 1);  // one byte short
  Message out;
  EXPECT_FALSE(dec.next(out));
  EXPECT_EQ(dec.pending(), f.size() - 1);  // caller turns EOF-here into an error
  dec.feed(f.data() + f.size() - 1, 1);
  EXPECT_TRUE(dec.next(out));
  EXPECT_EQ(out.payload.size(), 256u);
}

TEST(FrameDecoder, BadMagicThrows) {
  auto f = encode_frame(make_message(1, 8));
  f[0] = std::byte{0x00};
  FrameDecoder dec(1u << 20);
  dec.feed(f.data(), f.size());
  Message out;
  EXPECT_THROW(dec.next(out), FramingError);
}

TEST(FrameDecoder, UnsupportedVersionThrows) {
  Message m = make_message(1, 8);
  FrameHeader h = make_frame_header(m);
  h.version = 9;
  std::vector<std::byte> f(frame_bytes(8));
  std::memcpy(f.data(), &h, sizeof h);
  FrameDecoder dec(1u << 20);
  dec.feed(f.data(), f.size());
  Message out;
  EXPECT_THROW(dec.next(out), FramingError);
}

TEST(FrameDecoder, OversizedLengthPrefixRejectedBeforeAllocation) {
  // Length prefixes just above the cap, near SIZE_MAX, and at 2^63 must
  // all throw on header validation — none may reach an allocation or
  // wrap the "bytes available" arithmetic.
  for (const std::uint64_t evil :
       {std::uint64_t{4097}, ~std::uint64_t{0}, std::uint64_t{1} << 63,
        std::uint64_t{0} - 40 /* wraps: header + payload == 2^64 == 0 */}) {
    FrameHeader h;
    h.payload_bytes = evil;
    std::vector<std::byte> f(kFrameHeaderBytes);
    std::memcpy(f.data(), &h, sizeof h);
    FrameDecoder dec(4096);
    dec.feed(f.data(), f.size());
    Message out;
    EXPECT_THROW(dec.next(out), FramingError) << "prefix " << evil;
  }
}

TEST(Handshake, RoundTrips) {
  Handshake hs;
  hs.magic = kHelloMagic;
  hs.src = 4;
  hs.dst = 9;
  hs.identity = "flow/3";
  const auto wire = encode_handshake(hs);

  Handshake got;
  std::size_t consumed = 0;
  ASSERT_TRUE(decode_handshake(wire.data(), wire.size(), kHelloMagic, got, consumed));
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(got.src, 4);
  EXPECT_EQ(got.dst, 9);
  EXPECT_EQ(got.identity, "flow/3");
}

TEST(Handshake, IncompleteReturnsFalse) {
  Handshake hs;
  hs.identity = "a-longer-identity-string";
  const auto wire = encode_handshake(hs);
  Handshake got;
  std::size_t consumed = 0;
  for (std::size_t n = 0; n < wire.size(); ++n)
    EXPECT_FALSE(decode_handshake(wire.data(), n, kHelloMagic, got, consumed)) << n;
}

TEST(Handshake, CoalescedTrailingFrameBytesAreReportedNotConsumed) {
  // TCP gives no message boundaries: the peer's first frames routinely
  // arrive in the same recv chunk as its HELLO. The decode must succeed
  // and report exactly the handshake bytes as consumed, leaving the
  // frame bytes for the frame decoder. (Regression: an over-eager size
  // guard used to reject the whole connection as "oversized".)
  Handshake hs;
  hs.src = 0;
  hs.dst = 1;
  hs.identity = "proc/0";
  auto wire = encode_handshake(hs);
  const std::size_t handshake_bytes = wire.size();
  const auto frame = encode_frame(make_message(5, 65536));
  wire.insert(wire.end(), frame.begin(), frame.end());

  Handshake got;
  std::size_t consumed = 0;
  ASSERT_TRUE(decode_handshake(wire.data(), wire.size(), kHelloMagic, got, consumed));
  EXPECT_EQ(consumed, handshake_bytes);
  EXPECT_EQ(got.identity, "proc/0");

  FrameDecoder dec(1u << 20);
  dec.feed(wire.data() + consumed, wire.size() - consumed);
  Message out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_EQ(out.payload.size(), 65536u);
}

TEST(Handshake, CoalescedBurstOfFramesAfterHandshake) {
  // Harsher variant of the regression above for the batched receive path:
  // the peer's HELLO plus its first FIVE frames — a whole flush burst —
  // land in one recv chunk. The handshake consumes exactly its own bytes
  // and both decoders (reference and block-based) recover every frame.
  Handshake hs;
  hs.src = 0;
  hs.dst = 1;
  hs.identity = "proc/0";
  auto wire = encode_handshake(hs);
  const std::size_t handshake_bytes = wire.size();
  std::vector<Message> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(make_message(10 + i, static_cast<std::size_t>(64 << i)));
    const auto f = encode_frame(sent.back());
    wire.insert(wire.end(), f.begin(), f.end());
  }

  Handshake got;
  std::size_t consumed = 0;
  ASSERT_TRUE(decode_handshake(wire.data(), wire.size(), kHelloMagic, got, consumed));
  EXPECT_EQ(consumed, handshake_bytes);

  FrameDecoder ref(1u << 20);
  ref.feed(wire.data() + consumed, wire.size() - consumed);
  BlockDecoder block(1u << 20, 256, 128);  // tiny blocks: frames straddle edges
  block.feed(wire.data() + consumed, wire.size() - consumed);
  for (BlockDecoder* variant : {static_cast<BlockDecoder*>(nullptr), &block}) {
    std::vector<Message> got_frames;
    Message out;
    if (variant == nullptr) {
      while (ref.next(out)) got_frames.push_back(out);
    } else {
      while (variant->next(out)) got_frames.push_back(out);
    }
    ASSERT_EQ(got_frames.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
      EXPECT_EQ(got_frames[i].tag, sent[i].tag);
      ASSERT_EQ(got_frames[i].payload.size(), sent[i].payload.size());
      EXPECT_EQ(std::memcmp(got_frames[i].payload.data(), sent[i].payload.data(),
                            sent[i].payload.size()),
                0);
    }
  }
  EXPECT_EQ(ref.pending(), 0u);
  EXPECT_EQ(block.pending(), 0u);
}

TEST(Handshake, WrongMagicThrows) {
  Handshake hs;
  const auto wire = encode_handshake(hs);  // kHelloMagic
  Handshake got;
  std::size_t consumed = 0;
  EXPECT_THROW(decode_handshake(wire.data(), wire.size(), kWelcomeMagic, got, consumed),
               FramingError);
}

TEST(Handshake, OversizedIdentityRejectedOnBothSides) {
  Handshake hs;
  hs.identity.assign(kMaxIdentityBytes + 1, 'x');
  EXPECT_THROW((void)encode_handshake(hs), util::Error);

  // A hostile prelude claiming an identity above the cap must throw
  // before any identity bytes are read.
  HandshakePrelude p;
  p.magic = kHelloMagic;
  p.version = kWireVersion;
  p.identity_bytes = static_cast<std::uint16_t>(kMaxIdentityBytes + 1);
  std::vector<std::byte> wire(sizeof p);
  std::memcpy(wire.data(), &p, sizeof p);
  Handshake got;
  std::size_t consumed = 0;
  EXPECT_THROW(decode_handshake(wire.data(), wire.size(), kHelloMagic, got, consumed),
               FramingError);
}

// -- BlockDecoder: the batched zero-copy receive path -----------------------

void expect_same(const Message& got, const Message& want, const char* where) {
  EXPECT_EQ(got.src, want.src) << where;
  EXPECT_EQ(got.dst, want.dst) << where;
  EXPECT_EQ(got.tag, want.tag) << where;
  EXPECT_EQ(got.seq, want.seq) << where;
  ASSERT_EQ(got.payload.size(), want.payload.size()) << where;
  if (want.payload.size() != 0) {
    EXPECT_EQ(std::memcmp(got.payload.data(), want.payload.data(), want.payload.size()),
              0)
        << where;
  }
}

TEST(BlockDecoder, DifferentialWithFrameDecoderAcrossArbitrarySplits) {
  // The reference decoder and the block decoder must agree byte-for-byte
  // on any split of the same stream — slivers smaller than a header,
  // chunks that end mid-payload, and chunks carrying several frames.
  std::vector<Message> sent;
  std::vector<std::byte> stream;
  for (int i = 0; i < 8; ++i) {
    sent.push_back(make_message(i, static_cast<std::size_t>(i) * 137));
    const auto f = encode_frame(sent.back());
    stream.insert(stream.end(), f.begin(), f.end());
  }
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{13},
                                  std::size_t{64}, stream.size()}) {
    FrameDecoder ref(1u << 20);
    BlockDecoder dec(1u << 20, 192, 96);  // blocks far smaller than the stream
    std::vector<Message> got_ref, got_block;
    Message out;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      ref.feed(stream.data() + off, n);
      dec.feed(stream.data() + off, n);
      while (ref.next(out)) got_ref.push_back(out);
      while (dec.next(out)) got_block.push_back(out);
    }
    ASSERT_EQ(got_ref.size(), sent.size()) << "chunk " << chunk;
    ASSERT_EQ(got_block.size(), sent.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < sent.size(); ++i) {
      expect_same(got_ref[i], sent[i], "reference");
      expect_same(got_block[i], sent[i], "block");
    }
    EXPECT_EQ(dec.pending(), 0u) << "chunk " << chunk;
  }
}

TEST(BlockDecoder, FrameSplitAcrossTwoReadBlocks) {
  // A frame bigger than the block forces a rotation mid-frame: the tail
  // is carried into a grown block and the frame completes there. The
  // recv_buffer() hint must request at least the frame's remainder so
  // one more read finishes it.
  const Message big = make_message(9, 4096);
  const auto frame = encode_frame(big);
  BlockDecoder dec(1u << 20, 64, 0);  // 64-byte blocks, nothing inlined
  Message out;

  dec.feed(frame.data(), 64);  // header + first payload bytes only
  EXPECT_FALSE(dec.next(out));
  EXPECT_EQ(dec.pending(), 64u);

  // The next writable span must cover the whole remainder of the frame.
  const auto [ptr, space] = dec.recv_buffer();
  EXPECT_GE(space, frame.size() - 64);
  std::memcpy(ptr, frame.data() + 64, frame.size() - 64);
  dec.bytes_received(frame.size() - 64);
  ASSERT_TRUE(dec.next(out));
  expect_same(out, big, "split frame");
  EXPECT_GE(dec.stats().blocks_allocated, 2u);
}

TEST(BlockDecoder, HeaderStraddlesBlockEdge) {
  // Exactly 35 of the second frame's 40 header bytes land at the end of
  // the first block; the partial header must be carried into the next
  // block and the frame decoded intact.
  const Message first = make_message(1, 53);   // frame_bytes = 93
  const Message second = make_message(2, 100);  // frame_bytes = 140
  const auto f1 = encode_frame(first);
  const auto f2 = encode_frame(second);
  std::vector<std::byte> stream(f1);
  stream.insert(stream.end(), f2.begin(), f2.end());

  BlockDecoder dec(1u << 20, 128, 16);
  dec.feed(stream.data(), 128);  // fills block 1: frame 1 + 35 header bytes
  Message out;
  ASSERT_TRUE(dec.next(out));
  expect_same(out, first, "first");
  EXPECT_FALSE(dec.next(out));
  EXPECT_EQ(dec.pending(), 35u);  // mid-header

  dec.feed(stream.data() + 128, stream.size() - 128);
  ASSERT_TRUE(dec.next(out));
  expect_same(out, second, "second");
  EXPECT_EQ(dec.pending(), 0u);
}

TEST(BlockDecoder, HostileLengthPrefixRejectedBeforeAllocation) {
  // Same evil prefixes as the FrameDecoder test; additionally the
  // recv_buffer() size hint must throw rather than let the attacker
  // request an amplified allocation.
  for (const std::uint64_t evil :
       {std::uint64_t{4097}, ~std::uint64_t{0}, std::uint64_t{1} << 63,
        std::uint64_t{0} - 40}) {
    FrameHeader h;
    h.payload_bytes = evil;
    std::vector<std::byte> f(kFrameHeaderBytes);
    std::memcpy(f.data(), &h, sizeof h);
    BlockDecoder dec(4096, 1024, 128);
    dec.feed(f.data(), f.size());
    Message out;
    EXPECT_THROW(dec.next(out), FramingError) << "prefix " << evil;
    EXPECT_THROW((void)dec.recv_buffer(), FramingError) << "prefix " << evil;
  }
}

TEST(BlockDecoder, ZeroCopyAboveInlineThresholdAndBlockOutlivesRotation) {
  // Payloads above the inline threshold alias the receive block; small
  // ones are copied out. A zero-copy payload must stay valid after the
  // decoder rotates to fresh blocks — the view's refcount pins the old
  // block until the last reader drops it.
  const Message small = make_message(1, 64);
  const Message large = make_message(2, 2048);
  BlockDecoder dec(1u << 20, 4096, 512);

  auto f = encode_frame(small);
  dec.feed(f.data(), f.size());
  f = encode_frame(large);
  dec.feed(f.data(), f.size());

  Message got_small, got_large;
  ASSERT_TRUE(dec.next(got_small));
  ASSERT_TRUE(dec.next(got_large));
  EXPECT_EQ(dec.stats().inline_copies, 1u);
  EXPECT_EQ(dec.stats().zero_copy_deliveries, 1u);
  EXPECT_EQ(dec.stats().zero_copy_bytes, 2048u);

  // Force several rotations; the aliased payload must not be clobbered.
  for (int i = 0; i < 8; ++i) {
    const auto filler = encode_frame(make_message(50 + i, 3000));
    dec.feed(filler.data(), filler.size());
    Message out;
    ASSERT_TRUE(dec.next(out));
  }
  expect_same(got_large, large, "zero-copy after rotation");
  expect_same(got_small, small, "inline copy");
}

// -- SendQueue: the vectored write path --------------------------------------

std::vector<std::byte> drain_via_gather(SendQueue& q, std::size_t max_iov,
                                        std::size_t consume_step) {
  // Simulates a kernel that accepts `consume_step` bytes per sendmsg():
  // gather an iovec chain, take the first N bytes of it, consume, repeat.
  std::vector<std::byte> wire;
  std::vector<struct iovec> iov(max_iov);
  while (!q.empty()) {
    const std::size_t count = q.gather(iov.data(), max_iov);
    EXPECT_GT(count, 0u) << "non-empty queue must gather at least one span";
    if (count == 0) break;
    std::size_t budget = consume_step;
    std::size_t taken = 0;
    for (std::size_t i = 0; i < count && budget != 0; ++i) {
      const std::size_t n = std::min(budget, iov[i].iov_len);
      const auto* base = static_cast<const std::byte*>(iov[i].iov_base);
      wire.insert(wire.end(), base, base + n);
      budget -= n;
      taken += n;
    }
    q.consume(taken);
  }
  return wire;
}

TEST(SendQueue, GatherCoversFramesAndRawBlobsInOrder) {
  SendQueue q;
  std::vector<std::byte> expected;

  const Message a = make_message(1, 100);
  q.push_frame(make_frame_header(a), a.payload);
  auto fa = encode_frame(a);
  expected.insert(expected.end(), fa.begin(), fa.end());

  std::vector<std::byte> raw(23);
  for (std::size_t i = 0; i < raw.size(); ++i) raw[i] = static_cast<std::byte>(i);
  expected.insert(expected.end(), raw.begin(), raw.end());
  q.push_raw(raw);

  const Message b = make_message(2, 0);  // empty payload: header-only iovec
  q.push_frame(make_frame_header(b), b.payload);
  auto fb = encode_frame(b);
  expected.insert(expected.end(), fb.begin(), fb.end());

  EXPECT_EQ(q.bytes(), expected.size());

  std::vector<struct iovec> iov(16);
  const std::size_t count = q.gather(iov.data(), iov.size());
  EXPECT_EQ(count, 4u);  // header+payload, raw, header
  std::vector<std::byte> wire;
  for (std::size_t i = 0; i < count; ++i) {
    const auto* base = static_cast<const std::byte*>(iov[i].iov_base);
    wire.insert(wire.end(), base, base + iov[i].iov_len);
  }
  EXPECT_EQ(wire, expected);
  q.consume(wire.size());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(SendQueue, PartialWritesResumeMidHeaderAndMidPayload) {
  // Byte streams reassembled under pathological partial writes must be
  // identical to the encoded frames for every step size — including
  // steps that stop inside a header (any n < 40) and inside payloads.
  for (const std::size_t step : {std::size_t{1}, std::size_t{7}, std::size_t{39},
                                 std::size_t{41}, std::size_t{1000}}) {
    SendQueue q;
    std::vector<std::byte> expected;
    for (int i = 0; i < 5; ++i) {
      const Message m = make_message(i, static_cast<std::size_t>(i) * 97);
      q.push_frame(make_frame_header(m), m.payload);
      const auto f = encode_frame(m);
      expected.insert(expected.end(), f.begin(), f.end());
    }
    std::vector<std::byte> raw(17, std::byte{0xAB});
    q.push_raw(raw);
    expected.insert(expected.end(), raw.begin(), raw.end());

    const auto wire = drain_via_gather(q, 16, step);
    EXPECT_EQ(wire, expected) << "step " << step;
    EXPECT_TRUE(q.empty()) << "step " << step;
  }
}

TEST(SendQueue, GatherHonorsTinyIovecBudget) {
  // With max_iov == 1 every flush sends one span; the stream must still
  // reassemble exactly, proving gather() restarts mid-item correctly.
  SendQueue q;
  std::vector<std::byte> expected;
  for (int i = 0; i < 4; ++i) {
    const Message m = make_message(i, 64);
    q.push_frame(make_frame_header(m), m.payload);
    const auto f = encode_frame(m);
    expected.insert(expected.end(), f.begin(), f.end());
  }
  const auto wire = drain_via_gather(q, 1, 1u << 20);
  EXPECT_EQ(wire, expected);
}

TEST(SendQueue, ConsumePastQueuedBytesIsRejected) {
  SendQueue q;
  const Message m = make_message(1, 8);
  q.push_frame(make_frame_header(m), m.payload);
  EXPECT_THROW(q.consume(q.bytes() + 1), util::Error);
}

}  // namespace
}  // namespace ccf::transport::real
