// Wire-framing hostile-input tests: the TCP decode path must reject
// malformed, truncated, and oversized frames with FramingError — never
// UB — and must keep working when handshakes and frames coalesce into
// one receive chunk (the stream gives no alignment guarantees). These
// run under the ASan/UBSan CI matrix.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "transport/real/wire.hpp"

namespace ccf::transport::real {
namespace {

std::vector<std::byte> encode_frame(const Message& m) {
  const FrameHeader h = make_frame_header(m);
  std::vector<std::byte> out(frame_bytes(m.payload.size()));
  std::memcpy(out.data(), &h, sizeof h);
  if (m.payload.size() != 0)
    std::memcpy(out.data() + sizeof h, m.payload.data(), m.payload.size());
  return out;
}

Message make_message(int tag, std::size_t payload_bytes) {
  Message m;
  m.src = 3;
  m.dst = 7;
  m.tag = tag;
  m.seq = 42;
  std::vector<std::byte> p(payload_bytes);
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<std::byte>((i * 13 + static_cast<std::size_t>(tag)) & 0xFF);
  m.payload = make_payload(std::move(p));
  return m;
}

TEST(FrameDecoder, RoundTripsFramesAcrossArbitrarySplits) {
  const Message a = make_message(1, 100);
  const Message b = make_message(2, 0);
  const Message c = make_message(3, 4096);
  std::vector<std::byte> stream;
  for (const Message* m : {&a, &b, &c}) {
    const auto f = encode_frame(*m);
    stream.insert(stream.end(), f.begin(), f.end());
  }

  // Feed in 7-byte slivers: every header and payload boundary is crossed.
  FrameDecoder dec(1u << 20);
  std::vector<Message> got;
  Message out;
  for (std::size_t off = 0; off < stream.size(); off += 7) {
    const std::size_t n = std::min<std::size_t>(7, stream.size() - off);
    dec.feed(stream.data() + off, n);
    while (dec.next(out)) got.push_back(out);
  }
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const Message& want = *std::vector<const Message*>{&a, &b, &c}[i];
    EXPECT_EQ(got[i].src, want.src);
    EXPECT_EQ(got[i].dst, want.dst);
    EXPECT_EQ(got[i].tag, want.tag);
    EXPECT_EQ(got[i].seq, want.seq);
    ASSERT_EQ(got[i].payload.size(), want.payload.size());
    if (want.payload.size() != 0)
      EXPECT_EQ(std::memcmp(got[i].payload.data(), want.payload.data(),
                            want.payload.size()),
                0);
  }
  EXPECT_EQ(dec.pending(), 0u);
}

TEST(FrameDecoder, TruncatedFrameIsPendingNotAnError) {
  const auto f = encode_frame(make_message(1, 256));
  FrameDecoder dec(1u << 20);
  dec.feed(f.data(), f.size() - 1);  // one byte short
  Message out;
  EXPECT_FALSE(dec.next(out));
  EXPECT_EQ(dec.pending(), f.size() - 1);  // caller turns EOF-here into an error
  dec.feed(f.data() + f.size() - 1, 1);
  EXPECT_TRUE(dec.next(out));
  EXPECT_EQ(out.payload.size(), 256u);
}

TEST(FrameDecoder, BadMagicThrows) {
  auto f = encode_frame(make_message(1, 8));
  f[0] = std::byte{0x00};
  FrameDecoder dec(1u << 20);
  dec.feed(f.data(), f.size());
  Message out;
  EXPECT_THROW(dec.next(out), FramingError);
}

TEST(FrameDecoder, UnsupportedVersionThrows) {
  Message m = make_message(1, 8);
  FrameHeader h = make_frame_header(m);
  h.version = 9;
  std::vector<std::byte> f(frame_bytes(8));
  std::memcpy(f.data(), &h, sizeof h);
  FrameDecoder dec(1u << 20);
  dec.feed(f.data(), f.size());
  Message out;
  EXPECT_THROW(dec.next(out), FramingError);
}

TEST(FrameDecoder, OversizedLengthPrefixRejectedBeforeAllocation) {
  // Length prefixes just above the cap, near SIZE_MAX, and at 2^63 must
  // all throw on header validation — none may reach an allocation or
  // wrap the "bytes available" arithmetic.
  for (const std::uint64_t evil :
       {std::uint64_t{4097}, ~std::uint64_t{0}, std::uint64_t{1} << 63,
        std::uint64_t{0} - 40 /* wraps: header + payload == 2^64 == 0 */}) {
    FrameHeader h;
    h.payload_bytes = evil;
    std::vector<std::byte> f(kFrameHeaderBytes);
    std::memcpy(f.data(), &h, sizeof h);
    FrameDecoder dec(4096);
    dec.feed(f.data(), f.size());
    Message out;
    EXPECT_THROW(dec.next(out), FramingError) << "prefix " << evil;
  }
}

TEST(Handshake, RoundTrips) {
  Handshake hs;
  hs.magic = kHelloMagic;
  hs.src = 4;
  hs.dst = 9;
  hs.identity = "flow/3";
  const auto wire = encode_handshake(hs);

  Handshake got;
  std::size_t consumed = 0;
  ASSERT_TRUE(decode_handshake(wire.data(), wire.size(), kHelloMagic, got, consumed));
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(got.src, 4);
  EXPECT_EQ(got.dst, 9);
  EXPECT_EQ(got.identity, "flow/3");
}

TEST(Handshake, IncompleteReturnsFalse) {
  Handshake hs;
  hs.identity = "a-longer-identity-string";
  const auto wire = encode_handshake(hs);
  Handshake got;
  std::size_t consumed = 0;
  for (std::size_t n = 0; n < wire.size(); ++n)
    EXPECT_FALSE(decode_handshake(wire.data(), n, kHelloMagic, got, consumed)) << n;
}

TEST(Handshake, CoalescedTrailingFrameBytesAreReportedNotConsumed) {
  // TCP gives no message boundaries: the peer's first frames routinely
  // arrive in the same recv chunk as its HELLO. The decode must succeed
  // and report exactly the handshake bytes as consumed, leaving the
  // frame bytes for the frame decoder. (Regression: an over-eager size
  // guard used to reject the whole connection as "oversized".)
  Handshake hs;
  hs.src = 0;
  hs.dst = 1;
  hs.identity = "proc/0";
  auto wire = encode_handshake(hs);
  const std::size_t handshake_bytes = wire.size();
  const auto frame = encode_frame(make_message(5, 65536));
  wire.insert(wire.end(), frame.begin(), frame.end());

  Handshake got;
  std::size_t consumed = 0;
  ASSERT_TRUE(decode_handshake(wire.data(), wire.size(), kHelloMagic, got, consumed));
  EXPECT_EQ(consumed, handshake_bytes);
  EXPECT_EQ(got.identity, "proc/0");

  FrameDecoder dec(1u << 20);
  dec.feed(wire.data() + consumed, wire.size() - consumed);
  Message out;
  ASSERT_TRUE(dec.next(out));
  EXPECT_EQ(out.payload.size(), 65536u);
}

TEST(Handshake, WrongMagicThrows) {
  Handshake hs;
  const auto wire = encode_handshake(hs);  // kHelloMagic
  Handshake got;
  std::size_t consumed = 0;
  EXPECT_THROW(decode_handshake(wire.data(), wire.size(), kWelcomeMagic, got, consumed),
               FramingError);
}

TEST(Handshake, OversizedIdentityRejectedOnBothSides) {
  Handshake hs;
  hs.identity.assign(kMaxIdentityBytes + 1, 'x');
  EXPECT_THROW((void)encode_handshake(hs), util::Error);

  // A hostile prelude claiming an identity above the cap must throw
  // before any identity bytes are read.
  HandshakePrelude p;
  p.magic = kHelloMagic;
  p.version = kWireVersion;
  p.identity_bytes = static_cast<std::uint16_t>(kMaxIdentityBytes + 1);
  std::vector<std::byte> wire(sizeof p);
  std::memcpy(wire.data(), &p, sizeof p);
  Handshake got;
  std::size_t consumed = 0;
  EXPECT_THROW(decode_handshake(wire.data(), wire.size(), kHelloMagic, got, consumed),
               FramingError);
}

}  // namespace
}  // namespace ccf::transport::real
