// SHM ring buffer tests: record round trips, wrap-around, full-ring
// producer stalls, torn-write detection, and out-of-order release
// folding. The ring here lives in ordinary heap memory — the layout and
// cursor protocol are identical to the MAP_SHARED mapping the transport
// creates, so every invariant checked here holds across the process
// boundary too.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "transport/real/shm_ring.hpp"
#include "util/check.hpp"

namespace ccf::transport::real {
namespace {

struct RingFixture {
  explicit RingFixture(std::size_t capacity)
      : mem(ShmRing::bytes_required(capacity)),
        ring(ShmRing::create(mem.data(), capacity)),
        consumer(ring) {}

  std::vector<std::byte> mem;
  ShmRing ring;
  RingConsumer consumer;
};

std::vector<std::byte> pattern(std::size_t n, std::byte seed = std::byte{0}) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((static_cast<std::size_t>(seed) + i * 31 + 7) & 0xFF);
  return v;
}

TEST(ShmRing, RoundTripsRecordsByteIdentical) {
  RingFixture f(1024);
  const auto a = pattern(40, std::byte{1});
  const auto b = pattern(200, std::byte{2});
  ASSERT_TRUE(f.ring.try_push2(a.data(), a.size(), b.data(), b.size()));

  auto rec = f.consumer.next();
  ASSERT_TRUE(rec.has_value());
  ASSERT_EQ(rec->size, a.size() + b.size());
  EXPECT_EQ(std::memcmp(rec->data, a.data(), a.size()), 0);
  EXPECT_EQ(std::memcmp(rec->data + a.size(), b.data(), b.size()), 0);
  f.consumer.release(rec->begin, rec->end);
  EXPECT_EQ(f.ring.used(), 0u);
  EXPECT_FALSE(f.consumer.next().has_value());
}

TEST(ShmRing, WrapAroundPreservesEveryRecord) {
  // Capacity chosen so records land at awkward offsets and the producer
  // must publish wrap markers repeatedly; each record must still come
  // back byte-identical and in order.
  RingFixture f(256);
  for (int round = 0; round < 64; ++round) {
    const auto payload = pattern(8 + static_cast<std::size_t>(round % 7) * 23,
                                 static_cast<std::byte>(round));
    ASSERT_TRUE(f.ring.try_push2(payload.data(), payload.size(), nullptr, 0))
        << "round " << round;
    auto rec = f.consumer.next();
    ASSERT_TRUE(rec.has_value()) << "round " << round;
    ASSERT_EQ(rec->size, payload.size());
    EXPECT_EQ(std::memcmp(rec->data, payload.data(), payload.size()), 0)
        << "round " << round;
    f.consumer.release(rec->begin, rec->end);
  }
  EXPECT_EQ(f.ring.used(), 0u);
}

TEST(ShmRing, FullRingStallsProducerUntilRelease) {
  RingFixture f(256);
  const auto payload = pattern(64);
  std::vector<RingConsumer::Record> held;
  // Fill until the producer reports no space (a stall, not an error).
  int pushed = 0;
  while (f.ring.try_push2(payload.data(), payload.size(), nullptr, 0)) {
    auto rec = f.consumer.next();
    ASSERT_TRUE(rec.has_value());
    held.push_back(*rec);  // keep the slots referenced
    ++pushed;
    ASSERT_LT(pushed, 100) << "ring never filled";
  }
  EXPECT_GE(pushed, 2);
  // Releasing one record frees exactly enough for the next push.
  f.consumer.release(held.front().begin, held.front().end);
  EXPECT_TRUE(f.ring.try_push2(payload.data(), payload.size(), nullptr, 0));
}

TEST(ShmRing, OversizedRecordThrowsInsteadOfStallingForever) {
  RingFixture f(256);
  const auto payload = pattern(512);  // can never fit
  EXPECT_THROW(
      (void)f.ring.try_push2(payload.data(), payload.size(), nullptr, 0),
      util::Error);
}

TEST(ShmRing, TornWriteSurfacesAsProtocolViolation) {
  RingFixture f(1024);
  const auto payload = pattern(96);
  ASSERT_TRUE(f.ring.try_push2(payload.data(), payload.size(), nullptr, 0));
  // Simulate a producer that died mid-publish: corrupt the commit word of
  // the visible record (len lives at offset 0, commit at offset 4).
  std::uint32_t bogus = 0xDEADBEEFu;
  std::memcpy(f.ring.data() + 4, &bogus, sizeof bogus);
  EXPECT_THROW((void)f.consumer.next(), util::ProtocolViolation);
}

TEST(ShmRing, OutOfOrderReleaseFoldsIntoContiguousTail) {
  RingFixture f(2048);
  const auto payload = pattern(100);
  std::vector<RingConsumer::Record> recs;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(f.ring.try_push2(payload.data(), payload.size(), nullptr, 0));
    auto rec = f.consumer.next();
    ASSERT_TRUE(rec.has_value());
    recs.push_back(*rec);
  }
  const std::size_t used_all = f.ring.used();
  // Release 2, 1, 3 — tail must not advance past the still-held record 0.
  f.consumer.release(recs[2].begin, recs[2].end);
  f.consumer.release(recs[1].begin, recs[1].end);
  f.consumer.release(recs[3].begin, recs[3].end);
  EXPECT_EQ(f.ring.used(), used_all);
  // Releasing record 0 folds the whole prefix at once.
  f.consumer.release(recs[0].begin, recs[0].end);
  EXPECT_EQ(f.ring.used(), 0u);
}

TEST(ShmRing, CloseIsVisibleToTheOtherSide) {
  RingFixture f(256);
  ShmRing other = ShmRing::open(f.mem.data());
  EXPECT_FALSE(other.closed());
  f.ring.close();
  EXPECT_TRUE(other.closed());
}

}  // namespace
}  // namespace ccf::transport::real
