// Real transport (SHM rings + epoll TCP) behavioral tests, run with
// thread-attached endpoints so every path executes inside one test
// process. Covers: byte-identical delivery vs the in-memory fabric on
// the same golden frames, zero-copy SHM accounting, large-frame TCP
// exchanges (regression for a handshake/first-frame coalescing bug that
// killed fresh connections), hostile bytes on the listener, and
// write-queue backpressure.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "transport/transport.hpp"

namespace ccf::transport {
namespace {

std::vector<std::byte> pattern(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((seed * 2654435761u + i * 131u) & 0xFF);
  return v;
}

Message make_message(ProcId src, ProcId dst, Tag tag, std::vector<std::byte> payload) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.payload = make_payload(std::move(payload));
  return m;
}

/// Runs the same golden frame set through a transport and returns the
/// delivered payloads in tag order.
std::vector<std::vector<std::byte>> pingpong_golden(Transport& fabric,
                                                    const std::vector<std::size_t>& sizes) {
  std::vector<std::vector<std::byte>> delivered(sizes.size());
  std::thread peer([&] {
    auto ep = fabric.attach(1);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      Message m = ep->inbox().receive(MatchSpec{0, static_cast<Tag>(i)});
      delivered[i].assign(m.payload.data(), m.payload.data() + m.payload.size());
      ep->send(make_message(1, 0, m.tag, {std::byte{0x1}}));  // ack
    }
  });
  {
    auto ep = fabric.attach(0);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      ep->send(make_message(0, 1, static_cast<Tag>(i), pattern(sizes[i], unsigned(i))));
      (void)ep->inbox().receive(MatchSpec{1, static_cast<Tag>(i)});
    }
  }
  peer.join();
  return delivered;
}

const std::vector<std::size_t> kGoldenSizes = {0, 1, 64, 512, 513, 4096, 65536, 524288};

TEST(RealTransport, ShmDeliveryIsByteIdenticalToFabric) {
  TransportOptions fabric_opt;  // defaults: in-memory
  auto fabric = make_transport(fabric_opt, {0, 1});
  const auto want = pingpong_golden(*fabric, kGoldenSizes);

  TransportOptions real_opt;
  real_opt.kind = TransportKind::Real;  // both on node 0: pure SHM
  auto real = make_transport(real_opt, {0, 1});
  const auto got = pingpong_golden(*real, kGoldenSizes);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "payload " << i << " (" << kGoldenSizes[i] << " B)";
  }

  const TransportCounters c = real->counters();
  EXPECT_EQ(c.decode_errors, 0u);
  EXPECT_EQ(c.frames_received, c.frames_sent);
  EXPECT_EQ(c.tcp_frames, 0u) << "same-node pair must never touch a socket";
  EXPECT_EQ(c.shm_frames, c.frames_sent);
  // Payloads above shm_inline_bytes (512) alias the ring zero-copy; the
  // rest (and the acks) are inline copies. Golden sizes: 4 above, 4 at or
  // below, plus 8 one-byte acks.
  EXPECT_EQ(c.shm_zero_copy_deliveries, 4u);
  EXPECT_EQ(c.shm_inline_copies, c.frames_sent - 4u);
}

TEST(RealTransport, TcpDeliveryIsByteIdenticalToFabric) {
  TransportOptions fabric_opt;
  auto fabric = make_transport(fabric_opt, {0, 1});
  const auto want = pingpong_golden(*fabric, kGoldenSizes);

  TransportOptions real_opt;
  real_opt.kind = TransportKind::Real;
  real_opt.node_of[1] = 1;  // cross-node on localhost: pure TCP
  auto real = make_transport(real_opt, {0, 1});
  const auto got = pingpong_golden(*real, kGoldenSizes);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "payload " << i << " (" << kGoldenSizes[i] << " B)";
  }

  const TransportCounters c = real->counters();
  EXPECT_EQ(c.decode_errors, 0u);
  EXPECT_EQ(c.frames_received, c.frames_sent);
  EXPECT_EQ(c.shm_frames, 0u) << "cross-node pair must never touch a ring";
  EXPECT_EQ(c.tcp_frames, c.frames_sent);
  EXPECT_GE(c.tcp_connections, 2u);  // both roles of the one link
}

TEST(RealTransport, FirstFrameMayBeLargerThanTheSocketBuffer) {
  // Regression: a 512 KiB first frame coalesces with the HELLO into the
  // acceptor's first recv chunk; the handshake decode must consume only
  // its own bytes instead of rejecting the connection as oversized.
  // (The bug was timing-dependent, so exercise several fresh clusters.)
  for (int round = 0; round < 5; ++round) {
    TransportOptions opt;
    opt.kind = TransportKind::Real;
    opt.node_of[1] = 1;
    auto fabric = make_transport(opt, {0, 1});
    const auto got = pingpong_golden(*fabric, {524288});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], pattern(524288, 0)) << "round " << round;
    EXPECT_EQ(fabric->counters().decode_errors, 0u);
  }
}

TEST(RealTransport, CoalescedFirstBurstSurvivesTinyReceiveBlocks) {
  // Batched-path variant of the regression above: the sender's first
  // FIVE frames pile up behind the HELLO (a fresh connection flushes its
  // whole queue in one writev), and the receiver is configured with a
  // receive block far smaller than the burst so handshake leftovers,
  // block rotation, and frames straddling block edges all happen on the
  // very first bytes of the connection. Timing-dependent, so run several
  // fresh clusters.
  for (int round = 0; round < 5; ++round) {
    TransportOptions opt;
    opt.kind = TransportKind::Real;
    opt.node_of[1] = 1;
    opt.tcp_recv_block_bytes = 256;  // burst is ~90 KiB: hundreds of rotations
    auto fabric = make_transport(opt, {0, 1});

    const std::vector<std::size_t> sizes = {64, 512, 4096, 16384, 65536};
    std::vector<std::vector<std::byte>> delivered(sizes.size());
    std::thread peer([&] {
      auto ep = fabric->attach(1);
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        Message m = ep->inbox().receive(MatchSpec{0, static_cast<Tag>(i)});
        delivered[i].assign(m.payload.data(), m.payload.data() + m.payload.size());
      }
      ep->send(make_message(1, 0, 99, {std::byte{0x1}}));
    });
    {
      // All five sends queue before the connect handshake completes, so
      // they leave in one coalesced burst right behind the HELLO.
      auto ep = fabric->attach(0);
      for (std::size_t i = 0; i < sizes.size(); ++i)
        ep->send(make_message(0, 1, static_cast<Tag>(i), pattern(sizes[i], unsigned(i))));
      (void)ep->inbox().receive(MatchSpec{1, 99});
    }
    peer.join();

    for (std::size_t i = 0; i < sizes.size(); ++i)
      EXPECT_EQ(delivered[i], pattern(sizes[i], unsigned(i)))
          << "round " << round << " frame " << i;
    EXPECT_EQ(fabric->counters().decode_errors, 0u) << "round " << round;
  }
}

TEST(RealTransport, MixedNodesRouteShmWithinAndTcpAcross) {
  TransportOptions opt;
  opt.kind = TransportKind::Real;
  opt.node_of = {{0, 0}, {1, 0}, {2, 1}, {3, 1}};
  auto fabric = make_transport(opt, {0, 1, 2, 3});

  // Every ordered pair exchanges one distinctive frame.
  std::vector<std::thread> threads;
  std::vector<int> ok(4, 0);
  for (ProcId id = 0; id < 4; ++id) {
    threads.emplace_back([&, id] {
      auto ep = fabric->attach(id);
      for (ProcId peer = 0; peer < 4; ++peer) {
        if (peer == id) continue;
        ep->send(make_message(id, peer, 100 + id, pattern(1000, unsigned(id))));
      }
      int good = 0;
      for (ProcId peer = 0; peer < 4; ++peer) {
        if (peer == id) continue;
        Message m = ep->inbox().receive(MatchSpec{peer, 100 + peer});
        const auto want = pattern(1000, unsigned(peer));
        if (m.payload.size() == want.size() &&
            std::memcmp(m.payload.data(), want.data(), want.size()) == 0)
          ++good;
      }
      ok[static_cast<std::size_t>(id)] = good;
    });
  }
  for (auto& t : threads) t.join();
  for (ProcId id = 0; id < 4; ++id) EXPECT_EQ(ok[static_cast<std::size_t>(id)], 3);

  const TransportCounters c = fabric->counters();
  EXPECT_EQ(c.frames_sent, 12u);
  EXPECT_EQ(c.frames_received, 12u);
  EXPECT_EQ(c.shm_frames, 4u);  // 0<->1 and 2<->3, both directions
  EXPECT_EQ(c.tcp_frames, 8u);  // the four cross-node pairs, both directions
  EXPECT_EQ(c.decode_errors, 0u);
}

TEST(RealTransport, HostileBytesOnTheListenerAreRejectedWithoutDamage) {
  const std::string rendezvous =
      ::testing::TempDir() + "/ccf_hostile_rendezvous_" +
      std::to_string(::getpid()) + ".txt";
  TransportOptions opt;
  opt.kind = TransportKind::Real;
  opt.node_of[1] = 1;
  opt.rendezvous_path = rendezvous;
  auto fabric = make_transport(opt, {0, 1});

  std::thread peer([&] {
    auto ep = fabric->attach(1);
    Message m = ep->inbox().receive(MatchSpec{0, 7});
    ep->send(make_message(1, 0, 8, {m.payload.data(), m.payload.data() + m.payload.size()}));
  });
  auto ep = fabric->attach(0);

  // Read proc 1's port from the rendezvous file and fling garbage at it.
  int port = -1;
  {
    std::ifstream in(rendezvous);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      int proc = -1, p = -1;
      std::string host;
      fields >> proc >> host >> p;
      if (proc == 1) port = p;
    }
  }
  ASSERT_GT(port, 0);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char garbage[] = "GET / HTTP/1.1\r\nHost: not-a-coupling-frame\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof garbage, MSG_NOSIGNAL), 0);

  // The endpoint must reject the stream (decode_errors) and keep serving
  // the legitimate connection unharmed.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fabric->counters().decode_errors == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(fabric->counters().decode_errors, 1u);
  ::close(fd);

  ep->send(make_message(0, 1, 7, pattern(2000, 9)));
  Message echo = ep->inbox().receive(MatchSpec{1, 8});
  EXPECT_EQ(echo.payload.size(), 2000u);
  peer.join();
}

TEST(RealTransport, WriteQueueBackpressureRaisesAndClears) {
  TransportOptions opt;
  opt.kind = TransportKind::Real;
  opt.node_of[1] = 1;
  opt.tcp_writeq_high_bytes = 64u << 10;
  opt.tcp_writeq_low_bytes = 16u << 10;
  auto fabric = make_transport(opt, {0, 1});

  // Attach only the sender: the peer's listener holds the connection in
  // the kernel backlog unaccepted, so the socket absorbs a bounded amount
  // and the rest piles into the write queue past the high watermark.
  auto ep = fabric->attach(0);
  const int frames = 32;
  for (int i = 0; i < frames; ++i)
    ep->send(make_message(0, 1, i, pattern(512u << 10, unsigned(i))));  // 16 MiB total
  EXPECT_TRUE(ep->under_pressure());
  EXPECT_GE(fabric->counters().backpressure_raises, 1u);

  // The late peer drains everything; pressure must clear and every frame
  // must arrive intact.
  std::thread peer([&] {
    auto ep1 = fabric->attach(1);
    for (int i = 0; i < frames; ++i) {
      Message m = ep1->inbox().receive(MatchSpec{0, i});
      ASSERT_EQ(m.payload.size(), 512u << 10);
    }
  });
  peer.join();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ep->under_pressure() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(ep->under_pressure());
  EXPECT_GE(fabric->counters().backpressure_clears, 1u);
}

}  // namespace
}  // namespace ccf::transport
