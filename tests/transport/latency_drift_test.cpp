// Calibration drift gate: the constants baked into shm_calibrated_model()
// / tcp_calibrated_model() (src/transport/latency.cpp) are hand-rounded
// from the checked-in BENCH_transport.json produced by
// bench/bench_transport_cal. Whenever the bench is re-run and the JSON
// re-committed, the constants must be refreshed too — virtual-time runs
// charging stale delays would silently drift away from what the real
// data plane measures. This test parses the checked-in JSON (path baked
// in at configure time) and fails when either model diverges from the
// recorded fit by more than the rounding tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "transport/latency.hpp"

#ifndef CCF_BENCH_TRANSPORT_JSON
#error "CCF_BENCH_TRANSPORT_JSON must point at the checked-in BENCH_transport.json"
#endif

namespace ccf::transport {
namespace {

// The JSON is machine-written by bench_transport_cal with one key per
// line, so a targeted scan is enough — no JSON library in the tree.
double json_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  EXPECT_NE(at, std::string::npos) << "key " << key << " missing from JSON";
  if (at == std::string::npos) return std::nan("");
  return std::stod(text.substr(at + needle.size()));
}

// Constants are rounded to ~2 significant digits when transcribed; a
// fresh bench run that moves a fit beyond this band means latency.cpp
// was not updated alongside the JSON.
constexpr double kTolerance = 0.15;

void expect_close(double constant, double measured, const char* what) {
  ASSERT_GT(measured, 0.0) << what;
  EXPECT_LE(std::abs(constant - measured) / measured, kTolerance)
      << what << ": latency.cpp has " << constant << " but BENCH_transport.json says "
      << measured << " — re-transcribe the calibrated model constants";
}

TEST(LatencyDrift, CalibratedModelsMatchCheckedInBench) {
  std::ifstream in(CCF_BENCH_TRANSPORT_JSON);
  ASSERT_TRUE(in.good()) << "cannot open " << CCF_BENCH_TRANSPORT_JSON;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  const auto shm =
      std::dynamic_pointer_cast<const BandwidthLatency>(shm_calibrated_model());
  const auto tcp =
      std::dynamic_pointer_cast<const BandwidthLatency>(tcp_calibrated_model());
  ASSERT_NE(shm, nullptr);
  ASSERT_NE(tcp, nullptr);

  expect_close(shm->latency(), json_number(json, "shm_per_message_seconds"),
               "shm per-message latency");
  expect_close(shm->bandwidth(), json_number(json, "shm_bytes_per_second"),
               "shm bandwidth");
  expect_close(tcp->latency(), json_number(json, "tcp_per_message_seconds"),
               "tcp per-message latency");
  expect_close(tcp->bandwidth(), json_number(json, "tcp_bytes_per_second"),
               "tcp bandwidth");
}

TEST(LatencyDrift, BenchRecordsBatchedSyscallBudget) {
  // The headline claim of the batched data plane, pinned structurally:
  // the checked-in run must show <= 3 TCP syscalls per frame at pipeline
  // depth and sub-1 doorbells per SHM frame. (bench/run_benches gates
  // fresh runs; this guards the committed artifact.)
  std::ifstream in(CCF_BENCH_TRANSPORT_JSON);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  EXPECT_LE(json_number(json, "tcp_syscalls_per_frame"), 3.0);
  EXPECT_LT(json_number(json, "shm_doorbells_per_frame_at_depth"), 1.0);
}

}  // namespace
}  // namespace ccf::transport
