// The sequential oracle is the executable specification the whole
// model-checking harness leans on, so it gets its own unit suite: paper
// Eq. 1-2 matching per policy, consumption monotonicity, and the
// minimal-copy / maximal-skip set algebra.
#include <gtest/gtest.h>

#include "modelcheck/oracle.hpp"
#include "util/check.hpp"

namespace ccf::modelcheck {
namespace {

TEST(ModelCheckOracle, ReglPicksClosestBelowOrAtRequest) {
  const auto r = run_oracle({1.0, 2.0, 3.0, 4.0}, {2.6}, MatchPolicy::REGL, 1.0);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(r.answers[0].matched, 2.0);
}

TEST(ModelCheckOracle, ReguPicksClosestAtOrAboveRequest) {
  const auto r = run_oracle({1.0, 2.0, 3.0, 4.0}, {2.6}, MatchPolicy::REGU, 1.0);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(r.answers[0].matched, 3.0);
}

TEST(ModelCheckOracle, RegPrefersLaterOnEquidistantTie) {
  // 2.0 and 3.0 are both 0.5 from the request; the later one wins.
  const auto r = run_oracle({2.0, 3.0}, {2.5}, MatchPolicy::REG, 1.0);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(r.answers[0].matched, 3.0);
}

TEST(ModelCheckOracle, NoMatchWhenRegionEmpty) {
  const auto r = run_oracle({1.0, 9.0}, {5.0}, MatchPolicy::REG, 0.5);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].result, MatchResult::NoMatch);
}

TEST(ModelCheckOracle, ConsumptionMonotonicityExcludesConsumedExports) {
  // Request 1 matches 2.0. Request 2's region still contains 2.0, but a
  // consumed export may not match again -> 2.4.
  const auto r = run_oracle({1.0, 2.0, 2.4}, {2.1, 2.2}, MatchPolicy::REG, 0.5);
  ASSERT_EQ(r.answers.size(), 2u);
  EXPECT_DOUBLE_EQ(r.answers[0].matched, 2.0);
  EXPECT_EQ(r.answers[1].result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(r.answers[1].matched, 2.4);
}

TEST(ModelCheckOracle, NoMatchDoesNotConsume) {
  // Request 1 finds nothing; request 2 can still use the earliest export.
  const auto r = run_oracle({5.0}, {1.0, 5.2}, MatchPolicy::REGL, 0.5);
  ASSERT_EQ(r.answers.size(), 2u);
  EXPECT_EQ(r.answers[0].result, MatchResult::NoMatch);
  EXPECT_EQ(r.answers[1].result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(r.answers[1].matched, 5.0);
}

TEST(ModelCheckOracle, CopyAndSkipSetsPartitionTheExports) {
  const std::vector<Timestamp> exports{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto r = run_oracle(exports, {2.1, 4.4}, MatchPolicy::REGL, 0.5);
  // Matches are 2.0 and 4.0: the minimal copy set. Everything else is
  // skippable by a perfectly informed exporter.
  EXPECT_EQ(r.minimal_copies, (std::vector<Timestamp>{2.0, 4.0}));
  EXPECT_EQ(r.skippable, (std::vector<Timestamp>{1.0, 3.0, 5.0}));
  EXPECT_TRUE(r.is_match(2.0));
  EXPECT_FALSE(r.is_match(3.0));
  EXPECT_EQ(r.minimal_copies.size() + r.skippable.size(), exports.size());
}

TEST(ModelCheckOracle, EmptyInputs) {
  const auto none = run_oracle({}, {1.0}, MatchPolicy::REG, 1.0);
  ASSERT_EQ(none.answers.size(), 1u);
  EXPECT_EQ(none.answers[0].result, MatchResult::NoMatch);
  const auto quiet = run_oracle({1.0}, {}, MatchPolicy::REG, 1.0);
  EXPECT_TRUE(quiet.answers.empty());
  EXPECT_TRUE(quiet.minimal_copies.empty());
  EXPECT_EQ(quiet.skippable, (std::vector<Timestamp>{1.0}));
}

TEST(ModelCheckOracle, RejectsInvalidInputs) {
  EXPECT_THROW(run_oracle({2.0, 1.0}, {}, MatchPolicy::REG, 1.0), util::InvalidArgument);
  EXPECT_THROW(run_oracle({}, {2.0, 1.0}, MatchPolicy::REG, 1.0), util::InvalidArgument);
  EXPECT_THROW(run_oracle({}, {}, MatchPolicy::REG, -0.1), util::InvalidArgument);
}

TEST(ModelCheckOracle, AnswersCarryTheAcceptableRegion) {
  const auto r = run_oracle({1.0}, {2.0}, MatchPolicy::REGU, 0.5);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_DOUBLE_EQ(r.answers[0].region.lo, 2.0);
  EXPECT_DOUBLE_EQ(r.answers[0].region.hi, 2.5);
}

}  // namespace
}  // namespace ccf::modelcheck
