// Mutation gate at scale: the deliberately wrong matcher
// (CCF_MC_MUTATE_MATCHER, first-in-region instead of closest) must also
// be caught by the many-region/deep-history scenario class — the indexed
// engine caches the mutated bests, so the whole pipeline is consistently
// wrong and the oracle cross-check must see it.
//
// Lives in its own binary because the mutation env var is latched on the
// matcher's first use (see mutation_catch_test.cpp).
#include <gtest/gtest.h>

#include <cstdlib>

#include "modelcheck/scale.hpp"

namespace ccf::modelcheck {
namespace {

const bool kMutationArmed = [] {
  setenv("CCF_MC_MUTATE_MATCHER", "1", 1);
  return true;
}();

TEST(ScaleMutationCatch, MutatedMatcherViolatesOracleAtScale) {
  ASSERT_TRUE(kMutationArmed);
  ScaleConfig config;
  config.seed = 1;
  config.regions = 8;
  config.exports_per_region = 300;
  config.requests_per_region = 60;
  const ScaleReport report = run_scale(config);
  EXPECT_FALSE(report.ok()) << "a wrong matcher survived " << config.regions
                            << " regions x " << config.exports_per_region << " exports";
}

}  // namespace
}  // namespace ccf::modelcheck
