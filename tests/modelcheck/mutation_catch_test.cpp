// Mutation-detection gate: with a deliberately wrong matcher (first
// in-region export wins instead of closest-to-request), the harness must
// catch the bug within a small seed block, shrink the reproduction, and
// print a replayable seed. This is the end-to-end proof that the oracle
// cross-check has teeth.
//
// CCF_MC_MUTATE_MATCHER is latched on first use inside the matcher, so it
// must be set before any scenario runs; a static initializer guarantees
// that. The mutation lives in its own test binary for the same reason —
// every run in this process sees the mutated matcher.
#include <gtest/gtest.h>

#include <cstdlib>

#include "modelcheck/harness.hpp"
#include "modelcheck/shrink.hpp"

namespace ccf::modelcheck {
namespace {

const bool kMutationArmed = [] {
  setenv("CCF_MC_MUTATE_MATCHER", "1", 1);
  return true;
}();

ExploreResult explore_mutated() {
  ExploreOptions options;
  options.seed0 = 1;
  options.runs = 100;
  options.max_shrink_attempts = 200;
  return explore(options);
}

TEST(MutationCatch, SeededMatcherMutationIsCaught) {
  ASSERT_TRUE(kMutationArmed);
  const ExploreResult result = explore_mutated();
  ASSERT_FALSE(result.ok) << "a wrong matcher survived " << result.runs << " scenarios";
  // The failure message alone must suffice to reproduce the bug.
  EXPECT_NE(result.failure_message.find("--replay="), std::string::npos)
      << result.failure_message;
  EXPECT_NE(result.failure_message.find("CCF_MC_REPLAY="), std::string::npos)
      << result.failure_message;
  // And the printed seed really does replay to a failure.
  EXPECT_FALSE(replay_seed(result.failing_seed).ok());
}

TEST(MutationCatch, FailureShrinksToASmallerScenario) {
  const ExploreResult result = explore_mutated();
  ASSERT_FALSE(result.ok);
  const Scenario original = generate_scenario(result.failing_seed);
  const CheckedRun first = check_scenario(original);
  ASSERT_FALSE(first.ok());
  const ShrinkResult shrunk = shrink(original, first, 200);
  EXPECT_FALSE(shrunk.run.ok());  // shrinking preserves the failure
  EXPECT_LE(shrunk.scenario.exports.size(), original.exports.size());
  EXPECT_LE(shrunk.scenario.requests.size(), original.requests.size());
  EXPECT_GT(shrunk.attempts, 0);
  // The first-in-region mutation reproduces without any fault schedule,
  // so shrinking must discard it.
  EXPECT_FALSE(shrunk.scenario.faults.enabled);
}

}  // namespace
}  // namespace ccf::modelcheck
