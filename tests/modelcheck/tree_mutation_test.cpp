// Mutation-detection gate for the hierarchical representative layer: with
// a deliberately broken relay (every 3rd upward entry silently dropped,
// wrecking batched-answer coalescing), the conformance harness must flag
// the run. Lost ProcResponses starve the rep's collective aggregation, so
// the coupled run wedges and the bounded virtual-time cluster reports the
// deadlock — which check_scenario converts into a violation. This proves
// the oracle gate has teeth against tree-layer bugs, not just matcher
// bugs.
//
// CCF_MC_MUTATE_TREE is latched on first use inside the sub-rep body, so
// it must be set before any scenario runs; a static initializer
// guarantees that, and the mutation lives in its own test binary because
// every run in this process sees the mutated relay.
#include <gtest/gtest.h>

#include <cstdlib>

#include "modelcheck/conformance.hpp"
#include "modelcheck/scenario.hpp"

namespace ccf::modelcheck {
namespace {

const bool kMutationArmed = [] {
  setenv("CCF_MC_MUTATE_TREE", "1", 1);
  return true;
}();

/// Lossless scenario with enough ranks that fan-in 2 builds a real
/// sub-rep layer on both sides. No faults: every dropped entry is the
/// mutation's doing, and there is no retry machinery to paper over it.
Scenario tree_scenario(int fanin, int shards) {
  Scenario s;
  s.policy = MatchPolicy::REGL;
  s.tolerance = 0.6;
  s.exporter_procs = 4;
  s.importer_procs = 3;
  s.exports = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  s.requests = {1.2, 2.4, 3.6, 4.8};
  s.exporter_step_seconds = {1e-4, 2e-4, 3e-4, 4e-4};
  s.importer_step_seconds = {1e-4, 2e-4, 3e-4};
  s.rep_fanin = fanin;
  s.rep_shards = shards;
  return s;
}

TEST(TreeMutationCatch, DroppedUpwardEntriesAreCaught) {
  ASSERT_TRUE(kMutationArmed);
  const CheckedRun run = check_scenario(tree_scenario(2, 1));
  ASSERT_FALSE(run.ok()) << "a relay dropping every 3rd upward entry passed conformance";
  // The run cannot even complete: the rep never assembles full collective
  // aggregates, so the violation is the wedged run itself.
  EXPECT_FALSE(run.obs.completed);
}

TEST(TreeMutationCatch, ShardedTreeMutationIsAlsoCaught) {
  const CheckedRun run = check_scenario(tree_scenario(2, 2));
  EXPECT_FALSE(run.ok());
}

TEST(TreeMutationCatch, FlatLayoutIsImmuneToTheTreeMutation) {
  // Control: with fan-in off there are no sub-reps, so the armed mutation
  // has nothing to bite — the same workload must conform. This pins the
  // blast radius of the hook to the tree layer.
  const CheckedRun run = check_scenario(tree_scenario(0, 1));
  EXPECT_TRUE(run.ok()) << (run.violations.empty() ? "" : run.violations.front());
}

}  // namespace
}  // namespace ccf::modelcheck
