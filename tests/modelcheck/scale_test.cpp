// Scale gate for the interval-indexed matcher: many regions, deep
// histories, request streams running ahead of the exports so pending
// queues build up and exports resolve requests in batches — every
// decisive answer checked against the sequential oracle, plus the
// structural sublinearity bound (each request costs exactly one
// evaluation on arrival and one at resolution, independent of history
// depth).
#include <gtest/gtest.h>

#include "modelcheck/scale.hpp"

namespace ccf::modelcheck {
namespace {

std::string join(const std::vector<std::string>& v) {
  std::string out;
  for (const auto& s : v) out += "\n  " + s;
  return out;
}

TEST(ModelcheckScale, ManyRegionsDeepHistoriesConformToOracle) {
  ScaleConfig config;
  config.seed = 1;
  config.regions = 64;
  config.exports_per_region = 1000;
  config.requests_per_region = 120;
  const ScaleReport report = run_scale(config);
  EXPECT_TRUE(report.ok()) << join(report.violations);
  EXPECT_EQ(report.exports, 64u * 1000u);
  EXPECT_EQ(report.requests, 64u * 120u);
  // The whole point of the scenario class: requests genuinely go pending
  // and are resolved later by export sweeps, not answered on arrival.
  EXPECT_GT(report.batch_resolutions, report.requests / 2);
}

TEST(ModelcheckScale, EvaluationsBoundedByRequestsNotHistoryDepth) {
  // Structural sublinearity: with per-request re-evaluation the evaluation
  // count grows with exports x outstanding; with batch resolution it is
  // <= 2 per request (one PENDING answer on arrival, one decisive at
  // resolution) no matter how deep the history gets.
  for (const int depth : {250, 1000, 4000}) {
    ScaleConfig config;
    config.seed = 7;
    config.regions = 4;
    config.exports_per_region = depth;
    config.requests_per_region = 80;
    const ScaleReport report = run_scale(config);
    ASSERT_TRUE(report.ok()) << join(report.violations);
    EXPECT_LE(report.evaluations, 2 * report.requests)
        << "evaluations grew with history depth " << depth;
  }
}

TEST(ModelcheckScale, DeterministicInTheSeed) {
  ScaleConfig config;
  config.seed = 3;
  config.regions = 8;
  config.exports_per_region = 300;
  config.requests_per_region = 40;
  const ScaleReport a = run_scale(config);
  const ScaleReport b = run_scale(config);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.pending_evals, b.pending_evals);
  EXPECT_EQ(a.batch_resolutions, b.batch_resolutions);
  EXPECT_TRUE(a.ok());
}

TEST(ModelcheckScale, SeedSweepStaysConformant) {
  for (std::uint64_t seed = 10; seed < 20; ++seed) {
    ScaleConfig config;
    config.seed = seed;
    config.regions = 16;
    config.exports_per_region = 400;
    config.requests_per_region = 60;
    const ScaleReport report = run_scale(config);
    EXPECT_TRUE(report.ok()) << "seed " << seed << join(report.violations);
  }
}

}  // namespace
}  // namespace ccf::modelcheck
