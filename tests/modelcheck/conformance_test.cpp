// CI entry point of the model-checking harness: a block of random
// scenarios must all conform to the sequential oracle, runs must be
// deterministic (seed replay), and the conformance checker itself must
// actually detect wrong observations.
//
// Reproducing a CI failure locally:
//   CCF_MC_REPLAY=<seed> ctest -R modelcheck_conformance
// re-checks exactly that seed (the failure message prints this command).
#include <gtest/gtest.h>

#include <cstdlib>

#include "modelcheck/harness.hpp"

namespace ccf::modelcheck {
namespace {

TEST(ModelCheckConformance, FiveHundredRandomScenariosConform) {
  if (const char* replay = std::getenv("CCF_MC_REPLAY")) {
    const auto seed = static_cast<std::uint64_t>(std::strtoull(replay, nullptr, 10));
    const Scenario scenario = generate_scenario(seed);
    const CheckedRun run = check_scenario(scenario);
    EXPECT_TRUE(run.ok()) << failure_message(seed, scenario, run, 0);
    return;
  }
  ExploreOptions options;
  options.seed0 = 1;
  options.runs = 500;
  const ExploreResult result = explore(options);
  EXPECT_TRUE(result.ok) << result.failure_message;
  EXPECT_EQ(result.runs, 500);
}

TEST(ModelCheckConformance, ScenarioGenerationIsDeterministic) {
  for (std::uint64_t seed : {1ull, 42ull, 1082ull}) {
    EXPECT_EQ(describe(generate_scenario(seed)), describe(generate_scenario(seed)));
  }
}

TEST(ModelCheckConformance, RunReplayIsDeterministic) {
  // Virtual time + seeded faults: two runs of the same scenario observe
  // byte-identical answers. Seed 1082 exercises the fault path.
  const Scenario s = generate_scenario(1082);
  ASSERT_TRUE(s.faults.enabled);
  const Observation a = run_scenario(s);
  const Observation b = run_scenario(s);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  ASSERT_EQ(a.importer_answers.size(), b.importer_answers.size());
  for (std::size_t rank = 0; rank < a.importer_answers.size(); ++rank) {
    const auto& ra = a.importer_answers[rank];
    const auto& rb = b.importer_answers[rank];
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].matched, rb[i].matched);
      EXPECT_EQ(ra[i].version, rb[i].version);
      EXPECT_EQ(ra[i].payload, rb[i].payload);
    }
  }
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

Scenario hand_built() {
  Scenario s;
  s.policy = core::MatchPolicy::REG;
  s.tolerance = 0.5;
  s.exporter_procs = 2;
  s.importer_procs = 2;
  s.exports = {1.0, 2.0, 3.0, 4.0, 5.0};
  s.requests = {2.1, 4.4};
  s.exporter_step_seconds = {1e-4, 5e-3};  // one slow rank -> PENDING traffic
  s.importer_step_seconds = {1e-4, 1e-4};
  return s;
}

TEST(ModelCheckConformance, HandBuiltScenarioConforms) {
  const Scenario s = hand_built();
  const CheckedRun run = check_scenario(s);
  EXPECT_TRUE(run.ok()) << failure_message(0, s, run, 0);
}

TEST(ModelCheckConformance, CheckerDetectsWrongAnswer) {
  const Scenario s = hand_built();
  Observation obs = run_scenario(s);
  ASSERT_TRUE(obs.completed);
  ASSERT_FALSE(obs.importer_answers.empty());
  ASSERT_FALSE(obs.importer_answers[0].empty());
  obs.importer_answers[0][0].matched = !obs.importer_answers[0][0].matched;
  const auto violations = check_conformance(s, obs);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("answers"), std::string::npos) << violations[0];
}

TEST(ModelCheckConformance, CheckerDetectsWrongPayload) {
  const Scenario s = hand_built();
  Observation obs = run_scenario(s);
  ASSERT_TRUE(obs.completed);
  // Corrupt the shipped snapshot of the first matched answer.
  for (auto& rank : obs.importer_answers) {
    for (auto& a : rank) {
      if (a.matched) {
        a.payload += 1.0;
        const auto violations = check_conformance(s, obs);
        ASSERT_FALSE(violations.empty());
        return;
      }
    }
  }
  FAIL() << "hand-built scenario produced no matches";
}

TEST(ModelCheckConformance, FailureMessageEmbedsReplayCommands) {
  CheckedRun run;
  run.violations.push_back("answers: synthetic violation");
  const std::string msg = failure_message(7, generate_scenario(7), run, 3);
  EXPECT_NE(msg.find("--replay=7"), std::string::npos) << msg;
  EXPECT_NE(msg.find("CCF_MC_REPLAY=7"), std::string::npos) << msg;
  EXPECT_NE(msg.find("synthetic violation"), std::string::npos) << msg;
}

}  // namespace
}  // namespace ccf::modelcheck
