// DistArray pack/unpack, schedule construction properties, and end-to-end
// MxN redistribution over both runtimes.
#include <gtest/gtest.h>

#include "dist/dist_array.hpp"
#include "dist/redistribute.hpp"
#include "dist/schedule.hpp"
#include "runtime/cluster.hpp"

namespace ccf::dist {
namespace {

double cell_value(Index r, Index c) { return static_cast<double>(r) * 10000 + static_cast<double>(c); }

TEST(DistArray, FillAndGlobalAccess) {
  const auto d = BlockDecomposition::make_grid(8, 8, 4);
  DistArray2D<double> a(d, 3);
  a.fill(cell_value);
  const Box b = a.local_box();
  EXPECT_DOUBLE_EQ(a.at(b.row_begin, b.col_begin), cell_value(b.row_begin, b.col_begin));
  EXPECT_DOUBLE_EQ(a.at(b.row_end - 1, b.col_end - 1),
                   cell_value(b.row_end - 1, b.col_end - 1));
}

TEST(DistArray, PackUnpackRoundTrip) {
  const auto d = BlockDecomposition::make_grid(10, 10, 1);
  DistArray2D<double> a(d, 0);
  a.fill(cell_value);
  const Box sub{2, 5, 3, 9};
  const auto packed = a.pack(sub);
  ASSERT_EQ(packed.size(), static_cast<std::size_t>(sub.count()));
  EXPECT_DOUBLE_EQ(packed[0], cell_value(2, 3));

  DistArray2D<double> b(d, 0);
  b.unpack(sub, packed);
  for (Index r = sub.row_begin; r < sub.row_end; ++r) {
    for (Index c = sub.col_begin; c < sub.col_end; ++c) {
      EXPECT_DOUBLE_EQ(b.at(r, c), cell_value(r, c));
    }
  }
}

TEST(DistArray, PackOutsideLocalBoxThrows) {
  const auto d = BlockDecomposition::make_grid(8, 8, 4);
  DistArray2D<double> a(d, 0);  // owns [0,4)x[0,4)
  EXPECT_THROW(a.pack(Box{0, 5, 0, 4}), util::InvalidArgument);
  EXPECT_THROW(a.unpack(Box{0, 4, 0, 5}, std::vector<double>(20)), util::InvalidArgument);
  EXPECT_THROW(a.unpack(Box{0, 2, 0, 2}, std::vector<double>(3)), util::InvalidArgument);
}

TEST(PackFromPacked, ExtractsSubBox) {
  const Box buf_box{10, 14, 20, 25};  // 4x5
  std::vector<double> buf;
  for (Index r = buf_box.row_begin; r < buf_box.row_end; ++r) {
    for (Index c = buf_box.col_begin; c < buf_box.col_end; ++c) buf.push_back(cell_value(r, c));
  }
  const Box piece{11, 13, 22, 24};
  const auto out = pack_from_packed(buf_box, buf, piece);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], cell_value(11, 22));
  EXPECT_DOUBLE_EQ(out[3], cell_value(12, 23));
  EXPECT_THROW(pack_from_packed(buf_box, buf, Box{9, 13, 22, 24}), util::InvalidArgument);
}

TEST(Schedule, CoversRegionExactly) {
  const auto src = BlockDecomposition::make_grid(64, 64, 4);
  const auto dst = BlockDecomposition::make_grid(64, 64, 9);
  const Box region{0, 64, 0, 64};
  const RedistSchedule sched(src, dst, region);
  EXPECT_EQ(sched.total_elements(), region.count());
  // Pieces are disjoint.
  const auto& pieces = sched.pieces();
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_FALSE(overlaps(pieces[i].box, pieces[j].box));
    }
  }
}

TEST(Schedule, SubRegionTransfers) {
  const auto src = BlockDecomposition::make_grid(100, 100, 4);
  const auto dst = BlockDecomposition::make_grid(100, 100, 4);
  const Box region{25, 75, 25, 75};
  const RedistSchedule sched(src, dst, region);
  EXPECT_EQ(sched.total_elements(), region.count());
  for (const auto& p : sched.pieces()) EXPECT_TRUE(region.contains(p.box));
}

TEST(Schedule, IdenticalLayoutsYieldLocalPieces) {
  const auto d = BlockDecomposition::make_grid(64, 64, 4);
  const RedistSchedule sched(d, d, Box{0, 64, 0, 64});
  EXPECT_EQ(sched.pieces().size(), 4u);
  for (const auto& p : sched.pieces()) EXPECT_EQ(p.src_rank, p.dst_rank);
}

TEST(Schedule, SendsRecvsPartitionPieces) {
  const auto src = BlockDecomposition::make_grid(64, 64, 4);
  const auto dst = BlockDecomposition::make_grid(64, 64, 16);
  const RedistSchedule sched(src, dst, Box{0, 64, 0, 64});
  std::size_t total_sends = 0, total_recvs = 0;
  for (int r = 0; r < 4; ++r) total_sends += sched.sends_of(r).size();
  for (int r = 0; r < 16; ++r) total_recvs += sched.recvs_of(r).size();
  EXPECT_EQ(total_sends, sched.pieces().size());
  EXPECT_EQ(total_recvs, sched.pieces().size());
}

TEST(Schedule, RejectsBadRegions) {
  const auto d = BlockDecomposition::make_grid(16, 16, 4);
  EXPECT_THROW(RedistSchedule(d, d, Box{}), util::InvalidArgument);
  EXPECT_THROW(RedistSchedule(d, d, Box{0, 17, 0, 16}), util::InvalidArgument);
}

struct RedistParam {
  runtime::ExecutionMode mode;
  int src_procs;
  int dst_procs;
  Index rows, cols;
};

class RedistEndToEnd : public ::testing::TestWithParam<RedistParam> {};

TEST_P(RedistEndToEnd, MovesAllDataCorrectly) {
  const auto param = GetParam();
  const auto src_decomp = BlockDecomposition::make_grid(param.rows, param.cols, param.src_procs);
  const auto dst_decomp = BlockDecomposition::make_grid(param.rows, param.cols, param.dst_procs);
  const Box region{0, param.rows, 0, param.cols};
  const RedistSchedule sched(src_decomp, dst_decomp, region);

  runtime::ClusterOptions options;
  options.mode = param.mode;
  auto cluster = runtime::make_cluster(options);

  std::vector<ProcId> src_ids, dst_ids;
  for (int r = 0; r < param.src_procs; ++r) src_ids.push_back(r);
  for (int r = 0; r < param.dst_procs; ++r) dst_ids.push_back(100 + r);

  std::vector<int> ok(static_cast<std::size_t>(param.dst_procs), 0);
  for (int r = 0; r < param.src_procs; ++r) {
    cluster->add_process(src_ids[static_cast<std::size_t>(r)],
                         [&, r](runtime::ProcessContext& ctx) {
                           DistArray2D<double> a(src_decomp, r);
                           a.fill(cell_value);
                           execute_sends(ctx, sched, r, dst_ids, 77, a);
                         });
  }
  for (int r = 0; r < param.dst_procs; ++r) {
    cluster->add_process(dst_ids[static_cast<std::size_t>(r)],
                         [&, r](runtime::ProcessContext& ctx) {
                           DistArray2D<double> a(dst_decomp, r);
                           execute_recvs(ctx, sched, r, src_ids, 77, a);
                           const Box b = a.local_box();
                           bool good = true;
                           for (Index i = b.row_begin; i < b.row_end; ++i) {
                             for (Index j = b.col_begin; j < b.col_end; ++j) {
                               if (a.at(i, j) != cell_value(i, j)) good = false;
                             }
                           }
                           ok[static_cast<std::size_t>(r)] = good ? 1 : 0;
                         });
  }
  cluster->run();
  for (int r = 0; r < param.dst_procs; ++r) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "dst rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RedistEndToEnd,
    ::testing::Values(
        RedistParam{runtime::ExecutionMode::VirtualTime, 4, 4, 32, 32},
        RedistParam{runtime::ExecutionMode::VirtualTime, 4, 16, 32, 32},
        RedistParam{runtime::ExecutionMode::VirtualTime, 9, 4, 33, 31},
        RedistParam{runtime::ExecutionMode::VirtualTime, 1, 8, 16, 64},
        RedistParam{runtime::ExecutionMode::VirtualTime, 8, 1, 64, 16},
        RedistParam{runtime::ExecutionMode::RealThreads, 4, 16, 32, 32},
        RedistParam{runtime::ExecutionMode::RealThreads, 6, 3, 30, 20}),
    [](const ::testing::TestParamInfo<RedistParam>& info) {
      return std::string(info.param.mode == runtime::ExecutionMode::RealThreads ? "Threads"
                                                                                : "Virtual") +
             "_" + std::to_string(info.param.src_procs) + "to" +
             std::to_string(info.param.dst_procs) + "_" + std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols);
    });

}  // namespace
}  // namespace ccf::dist
