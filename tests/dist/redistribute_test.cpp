// DistArray pack/unpack, schedule construction properties, and end-to-end
// MxN redistribution over both runtimes.
#include <gtest/gtest.h>

#include <cstring>

#include "core/buffer_pool.hpp"
#include "dist/dist_array.hpp"
#include "dist/redistribute.hpp"
#include "dist/schedule.hpp"
#include "runtime/cluster.hpp"
#include "runtime/scripted_context.hpp"
#include "transport/serialize.hpp"

namespace ccf::dist {
namespace {

double cell_value(Index r, Index c) { return static_cast<double>(r) * 10000 + static_cast<double>(c); }

TEST(DistArray, FillAndGlobalAccess) {
  const auto d = BlockDecomposition::make_grid(8, 8, 4);
  DistArray2D<double> a(d, 3);
  a.fill(cell_value);
  const Box b = a.local_box();
  EXPECT_DOUBLE_EQ(a.at(b.row_begin, b.col_begin), cell_value(b.row_begin, b.col_begin));
  EXPECT_DOUBLE_EQ(a.at(b.row_end - 1, b.col_end - 1),
                   cell_value(b.row_end - 1, b.col_end - 1));
}

TEST(DistArray, PackUnpackRoundTrip) {
  const auto d = BlockDecomposition::make_grid(10, 10, 1);
  DistArray2D<double> a(d, 0);
  a.fill(cell_value);
  const Box sub{2, 5, 3, 9};
  const auto packed = a.pack(sub);
  ASSERT_EQ(packed.size(), static_cast<std::size_t>(sub.count()));
  EXPECT_DOUBLE_EQ(packed[0], cell_value(2, 3));

  DistArray2D<double> b(d, 0);
  b.unpack(sub, packed);
  for (Index r = sub.row_begin; r < sub.row_end; ++r) {
    for (Index c = sub.col_begin; c < sub.col_end; ++c) {
      EXPECT_DOUBLE_EQ(b.at(r, c), cell_value(r, c));
    }
  }
}

TEST(DistArray, PackOutsideLocalBoxThrows) {
  const auto d = BlockDecomposition::make_grid(8, 8, 4);
  DistArray2D<double> a(d, 0);  // owns [0,4)x[0,4)
  EXPECT_THROW(a.pack(Box{0, 5, 0, 4}), util::InvalidArgument);
  EXPECT_THROW(a.unpack(Box{0, 4, 0, 5}, std::vector<double>(20)), util::InvalidArgument);
  EXPECT_THROW(a.unpack(Box{0, 2, 0, 2}, std::vector<double>(3)), util::InvalidArgument);
}

TEST(PackFromPacked, ExtractsSubBox) {
  const Box buf_box{10, 14, 20, 25};  // 4x5
  std::vector<double> buf;
  for (Index r = buf_box.row_begin; r < buf_box.row_end; ++r) {
    for (Index c = buf_box.col_begin; c < buf_box.col_end; ++c) buf.push_back(cell_value(r, c));
  }
  const Box piece{11, 13, 22, 24};
  const auto out = pack_from_packed(buf_box, buf, piece);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], cell_value(11, 22));
  EXPECT_DOUBLE_EQ(out[3], cell_value(12, 23));
  EXPECT_THROW(pack_from_packed(buf_box, buf, Box{9, 13, 22, 24}), util::InvalidArgument);
}

TEST(Schedule, CoversRegionExactly) {
  const auto src = BlockDecomposition::make_grid(64, 64, 4);
  const auto dst = BlockDecomposition::make_grid(64, 64, 9);
  const Box region{0, 64, 0, 64};
  const RedistSchedule sched(src, dst, region);
  EXPECT_EQ(sched.total_elements(), region.count());
  // Pieces are disjoint.
  const auto& pieces = sched.pieces();
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_FALSE(overlaps(pieces[i].box, pieces[j].box));
    }
  }
}

TEST(Schedule, SubRegionTransfers) {
  const auto src = BlockDecomposition::make_grid(100, 100, 4);
  const auto dst = BlockDecomposition::make_grid(100, 100, 4);
  const Box region{25, 75, 25, 75};
  const RedistSchedule sched(src, dst, region);
  EXPECT_EQ(sched.total_elements(), region.count());
  for (const auto& p : sched.pieces()) EXPECT_TRUE(region.contains(p.box));
}

TEST(Schedule, IdenticalLayoutsYieldLocalPieces) {
  const auto d = BlockDecomposition::make_grid(64, 64, 4);
  const RedistSchedule sched(d, d, Box{0, 64, 0, 64});
  EXPECT_EQ(sched.pieces().size(), 4u);
  for (const auto& p : sched.pieces()) EXPECT_EQ(p.src_rank, p.dst_rank);
}

TEST(Schedule, SendsRecvsPartitionPieces) {
  const auto src = BlockDecomposition::make_grid(64, 64, 4);
  const auto dst = BlockDecomposition::make_grid(64, 64, 16);
  const RedistSchedule sched(src, dst, Box{0, 64, 0, 64});
  std::size_t total_sends = 0, total_recvs = 0;
  for (int r = 0; r < 4; ++r) total_sends += sched.sends_of(r).size();
  for (int r = 0; r < 16; ++r) total_recvs += sched.recvs_of(r).size();
  EXPECT_EQ(total_sends, sched.pieces().size());
  EXPECT_EQ(total_recvs, sched.pieces().size());
}

TEST(Schedule, RejectsBadRegions) {
  const auto d = BlockDecomposition::make_grid(16, 16, 4);
  EXPECT_THROW(RedistSchedule(d, d, Box{}), util::InvalidArgument);
  EXPECT_THROW(RedistSchedule(d, d, Box{0, 17, 0, 16}), util::InvalidArgument);
}

// Runs a schedule single-threaded through ScriptedContexts: every source
// rank's sends are executed, then the resulting messages are fed to every
// destination rank's inbox and received. Returns the filled dst arrays.
std::vector<DistArray2D<double>> run_scripted(const RedistSchedule& sched,
                                              const BlockDecomposition& src_decomp,
                                              const BlockDecomposition& dst_decomp,
                                              const std::vector<double>& fill_src,
                                              TransferStats* stats = nullptr) {
  std::vector<ProcId> src_ids, dst_ids;
  for (int r = 0; r < src_decomp.nprocs(); ++r) src_ids.push_back(r);
  for (int r = 0; r < dst_decomp.nprocs(); ++r) dst_ids.push_back(100 + r);

  std::vector<runtime::Message> wire;
  for (int r = 0; r < src_decomp.nprocs(); ++r) {
    runtime::ScriptedContext ctx(src_ids[static_cast<std::size_t>(r)]);
    DistArray2D<double> a(src_decomp, r);
    std::size_t i = 0;
    a.fill([&](Index gr, Index gc) {
      return fill_src[i++ % fill_src.size()] + static_cast<double>(gr) * 1000 +
             static_cast<double>(gc);
    });
    execute_sends_packed(ctx, sched, r, dst_ids, 77, a.local_box(), a.data(), stats);
    for (auto& m : ctx.sent()) wire.push_back(m);
  }

  std::vector<DistArray2D<double>> out;
  for (int r = 0; r < dst_decomp.nprocs(); ++r) {
    runtime::ScriptedContext ctx(dst_ids[static_cast<std::size_t>(r)]);
    for (const auto& m : wire) {
      if (m.dst == dst_ids[static_cast<std::size_t>(r)]) ctx.push_inbox(m);
    }
    out.emplace_back(dst_decomp, r);
    execute_recvs(ctx, sched, r, src_ids, 77, out.back());
  }
  return out;
}

TEST(RedistWindowed, RoundTripsWithNonzeroDstOffsets) {
  // Source domain 20x20 on 2 procs; the window [4,12)x[6,14) lands in a
  // destination domain 8x8 on 4 procs: dst (i, j) holds src (i+4, j+6).
  const auto src_decomp = BlockDecomposition::make_grid(20, 20, 2);
  const auto dst_decomp = BlockDecomposition::make_grid(8, 8, 4);
  const Box region{4, 12, 6, 14};
  const RedistSchedule sched(src_decomp, dst_decomp, region, /*dst_row_offset=*/4,
                             /*dst_col_offset=*/6);

  auto out = run_scripted(sched, src_decomp, dst_decomp, {0.5});
  for (int r = 0; r < dst_decomp.nprocs(); ++r) {
    const Box b = out[static_cast<std::size_t>(r)].local_box();
    for (Index i = b.row_begin; i < b.row_end; ++i) {
      for (Index j = b.col_begin; j < b.col_end; ++j) {
        EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)].at(i, j),
                         0.5 + static_cast<double>(i + 4) * 1000 + static_cast<double>(j + 6))
            << "dst (" << i << "," << j << ")";
      }
    }
  }
}

TEST(RedistWindowed, SingleRowAndSingleColumnPieces) {
  // A 1-row window and a 1-column window exercise the degenerate strided
  // paths (one memcpy per piece row; row length 1 element).
  const auto src_decomp = BlockDecomposition::make_grid(16, 16, 4);
  {
    const auto dst_decomp = BlockDecomposition::make_grid(1, 16, 2);
    const RedistSchedule sched(src_decomp, dst_decomp, Box{5, 6, 0, 16}, 5, 0);
    auto out = run_scripted(sched, src_decomp, dst_decomp, {0.25});
    for (int r = 0; r < 2; ++r) {
      const Box b = out[static_cast<std::size_t>(r)].local_box();
      for (Index j = b.col_begin; j < b.col_end; ++j) {
        EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)].at(0, j),
                         0.25 + 5000.0 + static_cast<double>(j));
      }
    }
  }
  {
    // One importer owning the whole 16x1 strip: each exporter column-piece
    // is a single-element-per-row strided copy.
    const auto dst_decomp = BlockDecomposition::make_grid(16, 1, 1);
    const RedistSchedule sched(src_decomp, dst_decomp, Box{0, 16, 9, 10}, 0, 9);
    auto out = run_scripted(sched, src_decomp, dst_decomp, {0.75});
    for (Index i = 0; i < 16; ++i) {
      EXPECT_DOUBLE_EQ(out[0].at(i, 0), 0.75 + static_cast<double>(i) * 1000 + 9.0);
    }
  }
}

TEST(RedistZeroCopy, FullBoxSendAliasesSnapshotFrame) {
  // 1 exporter -> 1 importer over identical layouts: the single scheduled
  // piece covers the exporter's whole box, so the send must alias the
  // pooled wire frame (same data pointer, zero pack copies) and still be
  // byte-identical to what the packed path would produce.
  const auto decomp = BlockDecomposition::make_grid(8, 8, 1);
  const RedistSchedule sched(decomp, decomp, Box{0, 8, 0, 8});

  DistArray2D<double> a(decomp, 0);
  a.fill(cell_value);

  runtime::ScriptedContext ctx(0);
  core::BufferPool pool;
  pool.store(1.0, a.data(), a.local_count(), 0x1, ctx);
  const transport::Payload frame = pool.wire_payload(1.0);

  TransferStats stats;
  execute_sends_packed(ctx, sched, 0, {100}, 77, a.local_box(),
                       pool.snapshot(1.0).data(), &stats, frame);
  ASSERT_EQ(ctx.sent().size(), 1u);
  const runtime::Message& sent = ctx.sent()[0];

  EXPECT_EQ(sent.payload.data(), frame.data()) << "full-box send must alias the pooled frame";
  EXPECT_EQ(stats.sends_aliased, 1u);
  EXPECT_EQ(stats.sends_packed, 0u);
  EXPECT_EQ(stats.bytes_pack_copied, 0u);
  EXPECT_EQ(stats.bytes_delivered, 64 * sizeof(double));
  EXPECT_DOUBLE_EQ(stats.copies_per_delivered_byte(), 0.0);

  // Byte-for-byte identical to the packed path (same wire format).
  const transport::Payload packed =
      pack_wire_payload(a.local_box(), a.data(), a.local_box());
  ASSERT_EQ(sent.payload.size(), packed.size());
  EXPECT_EQ(std::memcmp(sent.payload.data(), packed.data(), packed.size()), 0);

  // And the importer unpacks it exactly as before.
  runtime::ScriptedContext rctx(100);
  rctx.push_inbox(sent);
  DistArray2D<double> b(decomp, 0);
  execute_recvs(rctx, sched, 0, {0}, 77, b);
  for (Index i = 0; i < 8; ++i) {
    for (Index j = 0; j < 8; ++j) EXPECT_DOUBLE_EQ(b.at(i, j), cell_value(i, j));
  }
}

TEST(RedistZeroCopy, PartialPiecesCostOneCopyPerByte) {
  // 1 exporter feeding 4 importers: every piece is a strict sub-box, so
  // each is packed exactly once (1 extra copy per delivered byte).
  const auto src_decomp = BlockDecomposition::make_grid(8, 8, 1);
  const auto dst_decomp = BlockDecomposition::make_grid(8, 8, 4);
  const RedistSchedule sched(src_decomp, dst_decomp, Box{0, 8, 0, 8});
  TransferStats stats;
  auto out = run_scripted(sched, src_decomp, dst_decomp, {0.0}, &stats);
  EXPECT_EQ(stats.sends_aliased, 0u);
  EXPECT_EQ(stats.sends_packed, 4u);
  EXPECT_EQ(stats.bytes_delivered, 64 * sizeof(double));
  EXPECT_EQ(stats.bytes_pack_copied, stats.bytes_delivered);
  EXPECT_DOUBLE_EQ(stats.copies_per_delivered_byte(), 1.0);
}

struct RedistParam {
  runtime::ExecutionMode mode;
  int src_procs;
  int dst_procs;
  Index rows, cols;
};

class RedistEndToEnd : public ::testing::TestWithParam<RedistParam> {};

TEST_P(RedistEndToEnd, MovesAllDataCorrectly) {
  const auto param = GetParam();
  const auto src_decomp = BlockDecomposition::make_grid(param.rows, param.cols, param.src_procs);
  const auto dst_decomp = BlockDecomposition::make_grid(param.rows, param.cols, param.dst_procs);
  const Box region{0, param.rows, 0, param.cols};
  const RedistSchedule sched(src_decomp, dst_decomp, region);

  runtime::ClusterOptions options;
  options.mode = param.mode;
  auto cluster = runtime::make_cluster(options);

  std::vector<ProcId> src_ids, dst_ids;
  for (int r = 0; r < param.src_procs; ++r) src_ids.push_back(r);
  for (int r = 0; r < param.dst_procs; ++r) dst_ids.push_back(100 + r);

  std::vector<int> ok(static_cast<std::size_t>(param.dst_procs), 0);
  for (int r = 0; r < param.src_procs; ++r) {
    cluster->add_process(src_ids[static_cast<std::size_t>(r)],
                         [&, r](runtime::ProcessContext& ctx) {
                           DistArray2D<double> a(src_decomp, r);
                           a.fill(cell_value);
                           execute_sends(ctx, sched, r, dst_ids, 77, a);
                         });
  }
  for (int r = 0; r < param.dst_procs; ++r) {
    cluster->add_process(dst_ids[static_cast<std::size_t>(r)],
                         [&, r](runtime::ProcessContext& ctx) {
                           DistArray2D<double> a(dst_decomp, r);
                           execute_recvs(ctx, sched, r, src_ids, 77, a);
                           const Box b = a.local_box();
                           bool good = true;
                           for (Index i = b.row_begin; i < b.row_end; ++i) {
                             for (Index j = b.col_begin; j < b.col_end; ++j) {
                               if (a.at(i, j) != cell_value(i, j)) good = false;
                             }
                           }
                           ok[static_cast<std::size_t>(r)] = good ? 1 : 0;
                         });
  }
  cluster->run();
  for (int r = 0; r < param.dst_procs; ++r) {
    EXPECT_EQ(ok[static_cast<std::size_t>(r)], 1) << "dst rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RedistEndToEnd,
    ::testing::Values(
        RedistParam{runtime::ExecutionMode::VirtualTime, 4, 4, 32, 32},
        RedistParam{runtime::ExecutionMode::VirtualTime, 4, 16, 32, 32},
        RedistParam{runtime::ExecutionMode::VirtualTime, 9, 4, 33, 31},
        RedistParam{runtime::ExecutionMode::VirtualTime, 1, 8, 16, 64},
        RedistParam{runtime::ExecutionMode::VirtualTime, 8, 1, 64, 16},
        RedistParam{runtime::ExecutionMode::RealThreads, 4, 16, 32, 32},
        RedistParam{runtime::ExecutionMode::RealThreads, 6, 3, 30, 20}),
    [](const ::testing::TestParamInfo<RedistParam>& info) {
      return std::string(info.param.mode == runtime::ExecutionMode::RealThreads ? "Threads"
                                                                                : "Virtual") +
             "_" + std::to_string(info.param.src_procs) + "to" +
             std::to_string(info.param.dst_procs) + "_" + std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols);
    });

}  // namespace
}  // namespace ccf::dist
