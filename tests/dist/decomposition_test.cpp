// Block decomposition and box-algebra tests, including the property that a
// decomposition exactly tiles its domain for arbitrary sizes/grids.
#include <gtest/gtest.h>

#include "dist/box.hpp"
#include "util/check.hpp"
#include "dist/decomposition.hpp"

namespace ccf::dist {
namespace {

TEST(BoxTest, BasicGeometry) {
  Box b{2, 5, 10, 14};
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 4);
  EXPECT_EQ(b.count(), 12);
  EXPECT_FALSE(b.empty());
  EXPECT_TRUE(b.contains(2, 10));
  EXPECT_TRUE(b.contains(4, 13));
  EXPECT_FALSE(b.contains(5, 10));
  EXPECT_FALSE(b.contains(2, 14));
}

TEST(BoxTest, EmptyBox) {
  Box e{};
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.count(), 0);
  Box inverted{5, 2, 0, 3};
  EXPECT_TRUE(inverted.empty());
}

TEST(BoxTest, Intersection) {
  Box a{0, 10, 0, 10};
  Box b{5, 15, 5, 15};
  const Box i = intersect(a, b);
  EXPECT_EQ(i, (Box{5, 10, 5, 10}));
  EXPECT_TRUE(overlaps(a, b));
  Box c{10, 20, 0, 10};  // touches a's edge — half-open, no overlap
  EXPECT_TRUE(intersect(a, c).empty());
  EXPECT_FALSE(overlaps(a, c));
}

TEST(BoxTest, ContainsBox) {
  Box outer{0, 10, 0, 10};
  EXPECT_TRUE(outer.contains(Box{2, 5, 3, 7}));
  EXPECT_TRUE(outer.contains(Box{0, 10, 0, 10}));
  EXPECT_FALSE(outer.contains(Box{0, 11, 0, 10}));
  EXPECT_TRUE(outer.contains(Box{}));  // empty box is contained anywhere
}

TEST(Decomposition, PaperConfiguration) {
  // Program F: 1024x1024 over 4 processes -> 2x2 grid of 512x512 blocks.
  const auto d = BlockDecomposition::make_grid(1024, 1024, 4);
  EXPECT_EQ(d.proc_rows(), 2);
  EXPECT_EQ(d.proc_cols(), 2);
  for (int r = 0; r < 4; ++r) {
    const Box b = d.box_of(r);
    EXPECT_EQ(b.rows(), 512);
    EXPECT_EQ(b.cols(), 512);
  }
  EXPECT_EQ(d.box_of(3), (Box{512, 1024, 512, 1024}));
}

TEST(Decomposition, RemainderGoesToLeadingBlocks) {
  const BlockDecomposition d(10, 7, 3, 2);
  // Rows: 4,3,3. Cols: 4,3.
  EXPECT_EQ(d.box_of(0), (Box{0, 4, 0, 4}));
  EXPECT_EQ(d.box_of(1), (Box{0, 4, 4, 7}));
  EXPECT_EQ(d.box_of(2), (Box{4, 7, 0, 4}));
  EXPECT_EQ(d.box_of(3), (Box{4, 7, 4, 7}));
  EXPECT_EQ(d.box_of(4), (Box{7, 10, 0, 4}));
  EXPECT_EQ(d.box_of(5), (Box{7, 10, 4, 7}));
}

TEST(Decomposition, OwnerOfInvertsBoxOf) {
  const BlockDecomposition d(37, 23, 5, 3);
  for (int rank = 0; rank < d.nprocs(); ++rank) {
    const Box b = d.box_of(rank);
    EXPECT_EQ(d.owner_of(b.row_begin, b.col_begin), rank);
    EXPECT_EQ(d.owner_of(b.row_end - 1, b.col_end - 1), rank);
  }
}

class TilingProperty : public ::testing::TestWithParam<std::tuple<Index, Index, int>> {};

TEST_P(TilingProperty, BlocksTileDomainExactly) {
  const auto [rows, cols, nprocs] = GetParam();
  const auto d = BlockDecomposition::make_grid(rows, cols, nprocs);
  // Every element has exactly one owner whose box contains it.
  Index covered = 0;
  for (int rank = 0; rank < d.nprocs(); ++rank) {
    const Box b = d.box_of(rank);
    covered += b.count();
    EXPECT_FALSE(b.empty());
    for (int other = rank + 1; other < d.nprocs(); ++other) {
      EXPECT_FALSE(overlaps(b, d.box_of(other)))
          << "ranks " << rank << " and " << other << " overlap";
    }
  }
  EXPECT_EQ(covered, rows * cols);
  // Spot-check owner_of consistency on a grid of sample points.
  for (Index r = 0; r < rows; r += std::max<Index>(1, rows / 7)) {
    for (Index c = 0; c < cols; c += std::max<Index>(1, cols / 7)) {
      EXPECT_TRUE(d.box_of(d.owner_of(r, c)).contains(r, c));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TilingProperty,
                         ::testing::Values(std::make_tuple(Index{8}, Index{8}, 4),
                                           std::make_tuple(Index{1024}, Index{1024}, 32),
                                           std::make_tuple(Index{17}, Index{13}, 6),
                                           std::make_tuple(Index{100}, Index{3}, 3),
                                           std::make_tuple(Index{7}, Index{7}, 7),
                                           std::make_tuple(Index{5}, Index{1}, 5),
                                           std::make_tuple(Index{64}, Index{64}, 1)));

TEST(Decomposition, RowBlocks) {
  const auto d = BlockDecomposition::make_row_blocks(100, 10, 4);
  EXPECT_EQ(d.proc_rows(), 4);
  EXPECT_EQ(d.proc_cols(), 1);
  EXPECT_EQ(d.box_of(0), (Box{0, 25, 0, 10}));
}

TEST(Decomposition, RanksOverlapping) {
  const auto d = BlockDecomposition::make_grid(100, 100, 4);  // 2x2
  const auto all = d.ranks_overlapping(Box{0, 100, 0, 100});
  EXPECT_EQ(all.size(), 4u);
  const auto corner = d.ranks_overlapping(Box{0, 10, 0, 10});
  EXPECT_EQ(corner, (std::vector<int>{0}));
  const auto row = d.ranks_overlapping(Box{0, 10, 0, 100});
  EXPECT_EQ(row, (std::vector<int>{0, 1}));
}

TEST(Decomposition, Validation) {
  EXPECT_THROW(BlockDecomposition(0, 10, 1, 1), util::InvalidArgument);
  EXPECT_THROW(BlockDecomposition(10, 10, 11, 1), util::InvalidArgument);
  EXPECT_THROW(BlockDecomposition(10, 10, 0, 2), util::InvalidArgument);
  EXPECT_THROW(BlockDecomposition::make_grid(4, 4, 0), util::InvalidArgument);
  const auto d = BlockDecomposition::make_grid(4, 4, 4);
  EXPECT_THROW(d.box_of(4), util::InvalidArgument);
  EXPECT_THROW(d.owner_of(4, 0), util::InvalidArgument);
}

TEST(Decomposition, GridChoicePrefersSquareBlocks) {
  // 1024x1024 with 8 procs: 2x4 or 4x2 (blocks 512x256 / 256x512) beat 1x8.
  const auto d = BlockDecomposition::make_grid(1024, 1024, 8);
  EXPECT_GE(d.proc_rows(), 2);
  EXPECT_GE(d.proc_cols(), 2);
  // Wide domain prefers splitting columns.
  const auto wide = BlockDecomposition::make_grid(10, 1000, 4);
  EXPECT_EQ(wide.proc_rows(), 1);
  EXPECT_EQ(wide.proc_cols(), 4);
}

}  // namespace
}  // namespace ccf::dist
