// Chaos smoke over the REAL transport: the seeded FaultTransport
// decorator drops, duplicates, and delays control traffic on a live
// loopback-TCP + SHM deployment (RealThreads mode, programs split onto
// different transport nodes), and the failure-tolerance machinery must
// still converge every importer to the fault-free answers. This is the
// deep chaos harness's schedule-replay property (tests/integration/
// chaos_test.cpp) exercised end-to-end on real sockets instead of the
// virtual-time model.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;
using transport::FaultInjector;
using transport::FaultPlan;

struct Answer {
  bool matched = false;
  Timestamp version = 0;

  bool operator==(const Answer& o) const {
    return matched == o.matched && (!matched || version == o.version);
  }
};

FrameworkOptions tolerant_options() {
  FrameworkOptions fw;
  fw.retry_timeout_seconds = 0.1;
  fw.retry_backoff_factor = 2.0;
  fw.max_retries = 64;
  fw.heartbeat_interval_seconds = 0.5;
  fw.departure_timeout_seconds = 30.0;
  return fw;
}

bool control_plane_only(transport::ProcId, transport::ProcId, transport::Tag tag) {
  return tag >= kTagImportRequest && tag < kTagDataBase;
}

std::vector<std::vector<Answer>> run_real(std::shared_ptr<FaultInjector> faults,
                                          std::size_t tcp_recv_block_bytes = 0) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", 2, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", 2, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", MatchPolicy::REGL, 2.5, {}});

  runtime::ClusterOptions cluster_options;
  cluster_options.mode = runtime::ExecutionMode::RealThreads;
  cluster_options.transport.kind = transport::TransportKind::Real;
  if (tcp_recv_block_bytes != 0)
    cluster_options.transport.tcp_recv_block_bytes = tcp_recv_block_bytes;
  cluster_options.faults = std::move(faults);
  CoupledSystem system(config, cluster_options, tolerant_options());
  // Split the two programs across transport nodes: intra-program traffic
  // and the E-side rep ride SHM, the E<->I coupling crosses loopback TCP.
  EXPECT_EQ(system.transport_kind("E"), "tcp");

  const dist::Index rows = 8, cols = 8;
  const auto e_decomp = BlockDecomposition::make_grid(rows, cols, 2);
  const auto i_decomp = BlockDecomposition::make_grid(rows, cols, 2);
  const std::vector<Timestamp> exports = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<Timestamp> requests = {1.5, 4.0, 5.5, 8.5};

  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (Timestamp t : exports) {
      ctx.compute(1e-4);
      data.fill([&](dist::Index, dist::Index) { return t; });
      rt.export_region("r", t, data);
    }
    rt.finalize();
  });

  std::vector<std::vector<Answer>> per_rank(2);
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    auto& answers = per_rank[static_cast<std::size_t>(rt.rank())];
    for (Timestamp x : requests) {
      ctx.compute(1e-4);
      const auto status = rt.import_region("r", x, data);
      if (status.ok()) {
        EXPECT_DOUBLE_EQ(data.data()[0], status.matched);
        answers.push_back({true, status.matched});
      } else {
        answers.push_back({false, 0});
      }
    }
    rt.finalize();
  });

  system.run();
  EXPECT_EQ(system.transport_counters().decode_errors, 0u);
  return per_rank;
}

TEST(TransportChaos, SeededScheduleConvergesOnLoopbackTcp) {
  ::setenv("CCF_NODES", "split", 1);
  struct EnvGuard {
    ~EnvGuard() { ::unsetenv("CCF_NODES"); }
  } guard;

  const auto reference = run_real(nullptr);
  ASSERT_EQ(reference.size(), 2u);
  ASSERT_FALSE(reference[0].empty());
  EXPECT_EQ(reference[0], reference[1]) << "ranks must agree even fault-free";

  FaultPlan plan;
  plan.seed = 12;
  plan.drop_prob = 0.1;
  plan.duplicate_prob = 0.1;
  plan.delay_prob = 0.1;
  plan.delay_min_seconds = 0.001;
  plan.delay_max_seconds = 0.01;
  plan.eligible = control_plane_only;
  plan.max_faults = 40;
  auto injector = std::make_shared<FaultInjector>(plan);

  const auto chaotic = run_real(injector);
  ASSERT_EQ(chaotic.size(), 2u);
  for (std::size_t rank = 0; rank < 2; ++rank) {
    ASSERT_EQ(chaotic[rank].size(), reference[0].size()) << "rank " << rank;
    for (std::size_t i = 0; i < reference[0].size(); ++i) {
      EXPECT_TRUE(chaotic[rank][i] == reference[0][i])
          << "rank " << rank << " request " << i << ": got ("
          << chaotic[rank][i].matched << ", " << chaotic[rank][i].version
          << "), expected (" << reference[0][i].matched << ", "
          << reference[0][i].version << ")";
    }
  }
}

TEST(TransportChaos, BatchedPathWithTinyReceiveBlocksConverges) {
  // Same seeded chaos, but the TCP receive block is shrunk far below
  // typical frame sizes so every coalesced writev burst is parsed across
  // many block rotations: frames straddle block edges, headers split at
  // boundaries, and zero-copy views alias short-lived blocks — all while
  // the fault injector drops and reorders control traffic on top.
  ::setenv("CCF_NODES", "split", 1);
  struct EnvGuard {
    ~EnvGuard() { ::unsetenv("CCF_NODES"); }
  } guard;

  const std::size_t tiny_block = 192;
  const auto reference = run_real(nullptr, tiny_block);
  ASSERT_EQ(reference.size(), 2u);
  ASSERT_FALSE(reference[0].empty());
  EXPECT_EQ(reference[0], reference[1]);

  FaultPlan plan;
  plan.seed = 77;
  plan.drop_prob = 0.1;
  plan.duplicate_prob = 0.1;
  plan.delay_prob = 0.1;
  plan.delay_min_seconds = 0.001;
  plan.delay_max_seconds = 0.01;
  plan.eligible = control_plane_only;
  plan.max_faults = 40;

  const auto chaotic = run_real(std::make_shared<FaultInjector>(plan), tiny_block);
  ASSERT_EQ(chaotic.size(), 2u);
  for (std::size_t rank = 0; rank < 2; ++rank) {
    ASSERT_EQ(chaotic[rank].size(), reference[0].size()) << "rank " << rank;
    for (std::size_t i = 0; i < reference[0].size(); ++i) {
      EXPECT_TRUE(chaotic[rank][i] == reference[0][i])
          << "rank " << rank << " request " << i;
    }
  }
}

}  // namespace
}  // namespace ccf::core
