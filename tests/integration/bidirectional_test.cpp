// Bidirectional coupling: two programs that both export to and import
// from each other (e.g. ocean <-> atmosphere flux exchange). Exercises a
// rep serving both roles simultaneously and the staggered
// export-then-import pattern that keeps the cycle deadlock-free.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;

TEST(Bidirectional, TwoWayExchangeConverges) {
  Config config;
  config.add_program(ProgramSpec{"ocean", "h", "/o", 2, {}});
  config.add_program(ProgramSpec{"atmos", "h", "/a", 3, {}});
  // Each program exports its state and imports the other's.
  config.add_connection(ConnectionSpec{"ocean", "sst", "atmos", "sst", MatchPolicy::REGL, 0.5});
  config.add_connection(ConnectionSpec{"atmos", "wind", "ocean", "wind", MatchPolicy::REGL, 0.5});

  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  const dist::Index n = 12;
  const auto o_decomp = BlockDecomposition::make_grid(n, n, 2);
  const auto a_decomp = BlockDecomposition::make_grid(n, n, 3);
  const int steps = 8;

  // Staggered cycle: both sides export step k, then import the peer's
  // step k. The first import matches the peer's first export, so no one
  // waits on data that depends on its own unsent data.
  std::vector<double> ocean_seen, atmos_seen;
  system.set_program_body("ocean", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("sst", o_decomp);
    rt.define_import_region("wind", o_decomp);
    rt.commit();
    DistArray2D<double> sst(o_decomp, rt.rank());
    DistArray2D<double> wind(o_decomp, rt.rank());
    for (int k = 1; k <= steps; ++k) {
      sst.fill([&](dist::Index, dist::Index) { return 100.0 + k; });
      rt.export_region("sst", k, sst);
      const auto st = rt.import_region("wind", k, wind);
      ASSERT_TRUE(st.ok());
      if (rt.rank() == 0) ocean_seen.push_back(wind.data()[0]);
      ctx.compute(1e-5);
    }
    rt.finalize();
  });
  system.set_program_body("atmos", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("wind", a_decomp);
    rt.define_import_region("sst", a_decomp);
    rt.commit();
    DistArray2D<double> wind(a_decomp, rt.rank());
    DistArray2D<double> sst(a_decomp, rt.rank());
    for (int k = 1; k <= steps; ++k) {
      wind.fill([&](dist::Index, dist::Index) { return 200.0 + k; });
      rt.export_region("wind", k, wind);
      const auto st = rt.import_region("sst", k, sst);
      ASSERT_TRUE(st.ok());
      if (rt.rank() == 0) atmos_seen.push_back(sst.data()[0]);
      ctx.compute(2e-5);
    }
    rt.finalize();
  });
  system.run();

  ASSERT_EQ(ocean_seen.size(), static_cast<std::size_t>(steps));
  ASSERT_EQ(atmos_seen.size(), static_cast<std::size_t>(steps));
  for (int k = 1; k <= steps; ++k) {
    EXPECT_DOUBLE_EQ(ocean_seen[static_cast<std::size_t>(k - 1)], 200.0 + k);
    EXPECT_DOUBLE_EQ(atmos_seen[static_cast<std::size_t>(k - 1)], 100.0 + k);
  }
}

TEST(Bidirectional, AsymmetricRatesWithApproximateMatching) {
  // The ocean runs 4x finer than the atmosphere; each side imports at its
  // own cadence with REGL matching absorbing the rate mismatch.
  Config config;
  config.add_program(ProgramSpec{"ocean", "h", "/o", 2, {}});
  config.add_program(ProgramSpec{"atmos", "h", "/a", 2, {}});
  config.add_connection(ConnectionSpec{"ocean", "sst", "atmos", "sst", MatchPolicy::REGL, 1.0});
  config.add_connection(ConnectionSpec{"atmos", "wind", "ocean", "wind", MatchPolicy::REGL, 4.0});

  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  const int coarse_steps = 6;

  std::vector<double> atmos_matched;
  system.set_program_body("ocean", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("sst", decomp);
    rt.define_import_region("wind", decomp);
    rt.commit();
    DistArray2D<double> sst(decomp, rt.rank()), wind(decomp, rt.rank());
    for (int k = 1; k <= coarse_steps * 4; ++k) {
      const double t = k * 0.25;  // fine steps
      rt.export_region("sst", t, sst);
      if (k % 4 == 0) {
        // Import the atmosphere's state once per coarse interval.
        ASSERT_TRUE(rt.import_region("wind", t, wind).ok());
      }
      ctx.compute(1e-5);
    }
    rt.finalize();
  });
  system.set_program_body("atmos", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("wind", decomp);
    rt.define_import_region("sst", decomp);
    rt.commit();
    DistArray2D<double> wind(decomp, rt.rank()), sst(decomp, rt.rank());
    for (int k = 1; k <= coarse_steps; ++k) {
      const double t = k;  // coarse steps
      rt.export_region("wind", t, wind);
      const auto st = rt.import_region("sst", t, sst);
      ASSERT_TRUE(st.ok());
      if (rt.rank() == 0) atmos_matched.push_back(st.matched);
      ctx.compute(4e-5);
    }
    rt.finalize();
  });
  system.run();

  // The atmosphere's request t=k matches the ocean's freshest fine step
  // <= k, i.e., exactly t (ocean exports hit integer timestamps at k*4).
  ASSERT_EQ(atmos_matched.size(), static_cast<std::size_t>(coarse_steps));
  for (int k = 1; k <= coarse_steps; ++k) {
    EXPECT_DOUBLE_EQ(atmos_matched[static_cast<std::size_t>(k - 1)], k);
  }
}

}  // namespace
}  // namespace ccf::core
