// Temporal-model oracle tests.
//
// The approximate-matching model is deterministic: given the collective
// export timestamp sequence and the request sequence, the matched version
// of every request is fully determined —
//
//   m_k = the in-region export closest to x_k, among exports strictly
//         greater than the last successful match (consumption
//         monotonicity), or NO MATCH if none exists —
//
// regardless of process speeds, network latencies, process counts, or
// whether buddy-help is enabled (buddy-help is a pure performance
// optimization). These tests compute the expected answers by brute force
// and assert the full system produces exactly them (answers AND payloads)
// across many randomized timing/topology configurations.
#include <gtest/gtest.h>

#include <optional>

#include "core/system.hpp"
#include "util/rng.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;

struct Expected {
  bool matched = false;
  Timestamp version = 0;
};

/// Brute-force reference for the model described above.
std::vector<Expected> oracle(const std::vector<Timestamp>& exports,
                             const std::vector<Timestamp>& requests, MatchPolicy policy,
                             double tol) {
  std::vector<Expected> out;
  Timestamp consumed = kNeverExported;
  for (Timestamp x : requests) {
    const Interval region = acceptable_region(policy, x, tol);
    std::optional<Timestamp> best;
    for (Timestamp t : exports) {
      if (t <= consumed || !region.contains(t)) continue;
      if (!best || better_match(t, *best, x)) best = t;
    }
    if (best) {
      out.push_back({true, *best});
      consumed = *best;
    } else {
      out.push_back({false, 0});
    }
  }
  return out;
}

struct RunConfig {
  int exporter_procs;
  int importer_procs;
  double exporter_work;       // seconds per export iteration
  double slow_extra;          // extra for the last exporter rank
  double importer_work;       // seconds per import iteration
  bool buddy_help;
  double latency;             // fixed network latency (seconds)
  bool real_threads = false;  // preemptive scheduling instead of virtual time
};

struct Observed {
  std::vector<Expected> answers;
  std::vector<double> payload_heads;  // data()[0] of each matched import
};

Observed run_system(const std::vector<Timestamp>& exports,
                    const std::vector<Timestamp>& requests, MatchPolicy policy, double tol,
                    const RunConfig& rc) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", rc.exporter_procs, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", rc.importer_procs, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", policy, tol});

  runtime::ClusterOptions cluster_options;
  cluster_options.mode = rc.real_threads ? runtime::ExecutionMode::RealThreads
                                         : runtime::ExecutionMode::VirtualTime;
  cluster_options.latency = std::make_shared<const transport::FixedLatency>(rc.latency);
  FrameworkOptions fw;
  fw.buddy_help = rc.buddy_help;
  CoupledSystem system(config, cluster_options, fw);

  const dist::Index rows = 12, cols = 12;
  const auto e_decomp = BlockDecomposition::make_grid(rows, cols, rc.exporter_procs);
  const auto i_decomp = BlockDecomposition::make_grid(rows, cols, rc.importer_procs);

  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    const double work =
        rc.exporter_work + (rt.rank() == rc.exporter_procs - 1 ? rc.slow_extra : 0.0);
    for (Timestamp t : exports) {
      ctx.compute(work);
      data.fill([&](dist::Index, dist::Index) { return t; });
      rt.export_region("r", t, data);
    }
    rt.finalize();
  });

  Observed observed;
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    for (Timestamp x : requests) {
      const auto status = rt.import_region("r", x, data);
      ctx.compute(rc.importer_work);
      if (rt.rank() == 0) {
        if (status.ok()) {
          observed.answers.push_back({true, status.matched});
          observed.payload_heads.push_back(data.data()[0]);
        } else {
          observed.answers.push_back({false, 0});
        }
      }
    }
    rt.finalize();
  });

  system.run();
  return observed;
}

void check_against_oracle(const std::vector<Timestamp>& exports,
                          const std::vector<Timestamp>& requests, MatchPolicy policy,
                          double tol, const RunConfig& rc, const std::string& label) {
  const auto expected = oracle(exports, requests, policy, tol);
  const Observed observed = run_system(exports, requests, policy, tol, rc);
  ASSERT_EQ(observed.answers.size(), expected.size()) << label;
  std::size_t payload_idx = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(observed.answers[i].matched, expected[i].matched)
        << label << " request " << i << " x=" << requests[i];
    if (expected[i].matched && observed.answers[i].matched) {
      EXPECT_DOUBLE_EQ(observed.answers[i].version, expected[i].version)
          << label << " request " << i;
      // The payload content identifies the version that was shipped.
      EXPECT_DOUBLE_EQ(observed.payload_heads.at(payload_idx), expected[i].version)
          << label << " request " << i;
    }
    if (observed.answers[i].matched) ++payload_idx;
  }
}

struct OracleParam {
  MatchPolicy policy;
  double tol;
  std::uint64_t seed;
};

class OracleSweep : public ::testing::TestWithParam<OracleParam> {};

TEST_P(OracleSweep, AnswersInvariantAcrossTimingsAndTopologies) {
  const auto param = GetParam();
  util::Xoshiro256 rng(param.seed);

  // Random but increasing export and request sequences.
  std::vector<Timestamp> exports;
  Timestamp t = 0;
  const int n_exports = 30 + static_cast<int>(rng.below(40));
  for (int i = 0; i < n_exports; ++i) {
    t += 0.25 + rng.uniform() * 2.0;
    exports.push_back(t);
  }
  std::vector<Timestamp> requests;
  Timestamp x = 0;
  const int n_requests = 4 + static_cast<int>(rng.below(8));
  for (int i = 0; i < n_requests; ++i) {
    x += 1.0 + rng.uniform() * (t / n_requests);
    requests.push_back(x);
  }

  // The same workload under very different execution conditions must
  // produce identical answers.
  const RunConfig configs[] = {
      {1, 1, 1e-5, 0.0, 1e-5, true, 0.0, false},     // tiny, symmetric
      {4, 2, 1e-5, 5e-4, 1e-6, true, 1e-6, false},   // slow exporter straggler
      {4, 2, 1e-5, 5e-4, 1e-6, false, 1e-6, false},  // same, no buddy-help
      {2, 6, 1e-6, 0.0, 5e-4, true, 1e-5, false},    // slow importer
      {3, 3, 2e-5, 2e-4, 2e-5, true, 5e-4, false},   // high latency
      // Real threads: preemptive, nondeterministic interleavings — the
      // answers must STILL match the oracle (timing independence).
      {3, 2, 1e-6, 1e-4, 1e-6, true, 0.0, true},
      {2, 3, 1e-6, 0.0, 1e-4, false, 0.0, true},
  };
  int idx = 0;
  for (const auto& rc : configs) {
    check_against_oracle(exports, requests, param.policy, param.tol, rc,
                         "config " + std::to_string(idx++));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, OracleSweep,
    ::testing::Values(OracleParam{MatchPolicy::REGL, 2.5, 1}, OracleParam{MatchPolicy::REGL, 0.5, 2},
                      OracleParam{MatchPolicy::REGL, 8.0, 3}, OracleParam{MatchPolicy::REGU, 2.0, 4},
                      OracleParam{MatchPolicy::REGU, 0.3, 5}, OracleParam{MatchPolicy::REG, 1.5, 6},
                      OracleParam{MatchPolicy::REG, 5.0, 7}, OracleParam{MatchPolicy::REGL, 2.5, 8},
                      OracleParam{MatchPolicy::REG, 0.1, 9}, OracleParam{MatchPolicy::REGU, 6.0, 10}),
    [](const ::testing::TestParamInfo<OracleParam>& info) {
      return to_string(info.param.policy) + "_seed" + std::to_string(info.param.seed);
    });

TEST(OracleEdgeCases, RequestsBeyondAllExports) {
  // Requests past the end of the export stream are answered NO MATCH (or
  // the last export if in region) after the exporter finalizes.
  const std::vector<Timestamp> exports{1, 2, 3};
  const std::vector<Timestamp> requests{2.5, 10.0, 20.0};
  check_against_oracle(exports, requests, MatchPolicy::REGL, 1.0, {2, 2, 1e-6, 0, 1e-6, true, 0},
                       "beyond");
}

TEST(OracleEdgeCases, ZeroToleranceExactMatching) {
  const std::vector<Timestamp> exports{1, 2, 3, 5, 8};
  const std::vector<Timestamp> requests{2, 4, 8};
  check_against_oracle(exports, requests, MatchPolicy::REGL, 0.0, {2, 3, 1e-6, 1e-5, 1e-6, true, 0},
                       "exact");
}

TEST(OracleEdgeCases, DenseRequestsOverlappingRegions) {
  // Request stride far below the tolerance: every region overlaps several
  // neighbours (the regression territory of the shared-candidate bug).
  std::vector<Timestamp> exports;
  for (int i = 1; i <= 40; ++i) exports.push_back(i * 0.7);
  std::vector<Timestamp> requests;
  for (int i = 1; i <= 20; ++i) requests.push_back(i * 1.1);
  for (bool help : {true, false}) {
    check_against_oracle(exports, requests, MatchPolicy::REGL, 5.0,
                         {3, 2, 1e-5, 3e-4, 1e-6, help, 1e-6},
                         help ? "dense-help" : "dense-nohelp");
    check_against_oracle(exports, requests, MatchPolicy::REG, 4.0,
                         {3, 2, 1e-5, 3e-4, 1e-6, help, 1e-6},
                         help ? "dense-reg-help" : "dense-reg-nohelp");
  }
}

}  // namespace
}  // namespace ccf::core
