// End-to-end smoke tests of the paper's micro-benchmark at reduced scale:
// the full protocol (region exchange, requests, rep aggregation,
// buddy-help, data redistribution, shutdown) on the virtual-time runtime.
#include <gtest/gtest.h>

#include "sim/microbench.hpp"

namespace ccf::sim {
namespace {

MicrobenchParams small_params() {
  MicrobenchParams p;
  p.rows = 64;
  p.cols = 64;
  p.exporter_procs = 4;
  p.importer_procs = 4;
  p.num_exports = 101;
  p.trace = true;
  return p;
}

TEST(MicrobenchSmoke, RunsToCompletionImporterSlower) {
  MicrobenchParams p = small_params();
  MicrobenchResult r = run_microbench(p);
  EXPECT_EQ(r.slow_export_seconds.size(), 101u);
  // 1-in-20 exports matched: requests at 20, 40, 60, 80, 100 -> 5 matches.
  EXPECT_EQ(r.importer_rank0_stats.imports, 5u);
  EXPECT_EQ(r.importer_rank0_stats.matches, 5u);
  EXPECT_EQ(r.importer_rank0_stats.no_matches, 0u);
  // Matched timestamps are the latest export inside each REGL region.
  ASSERT_EQ(r.importer_rank0_stats.matched_timestamps.size(), 5u);
  EXPECT_DOUBLE_EQ(r.importer_rank0_stats.matched_timestamps[0], 19.6);
  EXPECT_DOUBLE_EQ(r.importer_rank0_stats.matched_timestamps[4], 99.6);
  // Every exporter process transferred each matched snapshot exactly once.
  for (const auto& stats : r.exporter_stats) {
    EXPECT_EQ(stats.exports, 101u);
    EXPECT_EQ(stats.transfers, 5u);
  }
}

TEST(MicrobenchSmoke, FastImporterTriggersBuddyHelp) {
  MicrobenchParams p = small_params();
  p.importer_procs = 32;
  MicrobenchResult r = run_microbench(p);
  EXPECT_GT(r.exporter_rep.buddy_helps_sent, 0u);
  EXPECT_GT(r.slow_stats.buddy_helps_received, 0u);
  EXPECT_GT(r.slow_stats.buffer.skips, 0u);
  // The trace should contain buddy-help lines for the slow process.
  EXPECT_NE(r.slow_trace.find("buddy-help"), std::string::npos);
  EXPECT_NE(r.slow_trace.find("skip memcpy"), std::string::npos);
}

TEST(MicrobenchSmoke, BuddyHelpDisabledStillCorrect) {
  MicrobenchParams p = small_params();
  p.importer_procs = 32;
  p.buddy_help = false;
  MicrobenchResult r = run_microbench(p);
  EXPECT_EQ(r.exporter_rep.buddy_helps_sent, 0u);
  EXPECT_EQ(r.slow_stats.buddy_helps_received, 0u);
  EXPECT_EQ(r.importer_rank0_stats.matches, 5u);
  // Without buddy-help the slow process performs at least as many copies.
  MicrobenchParams p2 = p;
  p2.buddy_help = true;
  MicrobenchResult r2 = run_microbench(p2);
  EXPECT_GE(r.slow_stats.buffer.stores, r2.slow_stats.buffer.stores);
}

}  // namespace
}  // namespace ccf::sim
