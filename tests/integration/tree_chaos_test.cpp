// Chaos harness for the hierarchical representative layer
// (docs/PROTOCOL.md, "Hierarchical representatives").
//
// Batched control frames (kTagTreeUp / kTagTreeDown) concentrate many
// per-rank control messages into single wire messages, so dropping one
// frame loses a whole wave of a subtree's responses at once — a much
// harsher fault than the flat protocol ever sees. The retry machinery
// must still converge every seeded schedule to the fault-free answers.
// A sub-rep dying mid-run is the aggregator-specific failure mode: its
// children detect the silence (not even relayed heartbeats arrive),
// re-parent onto the rep shards directly, and the run completes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;
using transport::FaultInjector;
using transport::FaultPlan;

struct Answer {
  bool matched = false;
  Timestamp version = 0;

  bool operator==(const Answer& o) const {
    return matched == o.matched && (!matched || version == o.version);
  }
};

struct Workload {
  int exporter_procs = 6;
  int importer_procs = 2;
  int fanin = 2;
  int shards = 1;
  int flush_count = 0;  ///< pipelined partial frames (0 = one per wave)
  std::vector<Timestamp> exports;
  std::vector<Timestamp> requests;
};

Workload default_workload() {
  Workload w;
  for (int i = 1; i <= 14; ++i) w.exports.push_back(i * 1.0);
  w.requests = {2.0, 5.5, 6.0, 9.5, 13.0};
  return w;
}

FrameworkOptions tolerant_options() {
  FrameworkOptions fw;
  fw.retry_timeout_seconds = 0.05;
  fw.retry_backoff_factor = 2.0;
  fw.max_retries = 64;
  fw.heartbeat_interval_seconds = 0.5;
  fw.departure_timeout_seconds = 10.0;
  return fw;
}

/// The batched-frame tags sit inside the control window, so the flat
/// harness's control-plane filter faults them too; this filter narrows the
/// chaos to frames only — every lost message is a lost batch.
bool frames_only(transport::ProcId, transport::ProcId, transport::Tag tag) {
  return tag == kTagTreeUp || tag == kTagTreeDown;
}

bool control_plane_only(transport::ProcId, transport::ProcId, transport::Tag tag) {
  return tag >= kTagImportRequest && tag < kTagDataBase;
}

struct RunResult {
  std::vector<std::vector<Answer>> per_rank;
  std::vector<ProcStats> exporter_stats;
  std::uint64_t faults_injected = 0;
};

RunResult run_system(const Workload& wl, const FrameworkOptions& fw,
                     std::shared_ptr<FaultInjector> faults) {
  Config config;
  ProgramSpec e{"E", "h", "/e", wl.exporter_procs, {}};
  e.rep_fanin = wl.fanin;
  e.rep_shards = wl.shards;
  e.tree_flush_count = wl.flush_count;
  config.add_program(e);
  config.add_program(ProgramSpec{"I", "h", "/i", wl.importer_procs, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", MatchPolicy::REGL, 2.5, {}});

  runtime::ClusterOptions cluster_options;
  cluster_options.mode = runtime::ExecutionMode::VirtualTime;
  cluster_options.latency = std::make_shared<const transport::FixedLatency>(1e-3);
  cluster_options.faults = faults;
  CoupledSystem system(config, cluster_options, fw);

  const dist::Index rows = 12, cols = 12;
  const auto e_decomp = BlockDecomposition::make_grid(rows, cols, wl.exporter_procs);
  const auto i_decomp = BlockDecomposition::make_grid(rows, cols, wl.importer_procs);

  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (Timestamp t : wl.exports) {
      ctx.compute(1e-4);
      data.fill([&](dist::Index, dist::Index) { return t; });
      rt.export_region("r", t, data);
    }
    rt.finalize();
  });

  RunResult result;
  result.per_rank.resize(static_cast<std::size_t>(wl.importer_procs));
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    auto& answers = result.per_rank[static_cast<std::size_t>(rt.rank())];
    for (Timestamp x : wl.requests) {
      ctx.compute(1e-4);
      const auto status = rt.import_region("r", x, data);
      if (status.ok()) {
        EXPECT_DOUBLE_EQ(data.data()[0], status.matched);
        answers.push_back({true, status.matched});
      } else {
        answers.push_back({false, 0});
      }
    }
    rt.finalize();
  });

  system.run();
  for (int r = 0; r < wl.exporter_procs; ++r) {
    result.exporter_stats.push_back(system.proc_stats("E", r));
  }
  if (faults) {
    const auto fs = faults->stats();
    result.faults_injected = fs.dropped + fs.duplicated + fs.delayed;
  }
  return result;
}

void expect_same_answers(const RunResult& run, const std::vector<Answer>& reference,
                         const std::string& label) {
  for (std::size_t rank = 0; rank < run.per_rank.size(); ++rank) {
    const auto& answers = run.per_rank[rank];
    ASSERT_EQ(answers.size(), reference.size()) << label << " rank " << rank;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(answers[i] == reference[i])
          << label << " rank " << rank << " request " << i << ": got ("
          << answers[i].matched << ", " << answers[i].version << "), expected ("
          << reference[i].matched << ", " << reference[i].version << ")";
    }
  }
}

TEST(TreeChaos, DroppedAndReorderedFramesConvergeAcrossSeeds) {
  const Workload wl = default_workload();
  const RunResult reference = run_system(wl, tolerant_options(), nullptr);
  ASSERT_FALSE(reference.per_rank.empty());
  const std::vector<Answer>& expected = reference.per_rank[0];

  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_prob = 0.1;
    plan.duplicate_prob = 0.1;
    plan.delay_prob = 0.2;  // delayed frames arrive out of order
    plan.delay_min_seconds = 0.02;
    plan.delay_max_seconds = 0.2;
    plan.eligible = frames_only;
    RunResult run;
    try {
      run = run_system(wl, tolerant_options(), std::make_shared<FaultInjector>(plan));
    } catch (const std::exception& e) {
      FAIL() << "seed " << seed << ": " << e.what();
    }
    expect_same_answers(run, expected, "frames seed " + std::to_string(seed));
    total_faults += run.faults_injected;
  }
  EXPECT_GT(total_faults, 30u);
}

TEST(TreeChaos, FullControlPlaneChaosWithTreeAndShards) {
  Workload wl = default_workload();
  wl.fanin = 3;
  wl.shards = 2;
  const RunResult reference = run_system(wl, tolerant_options(), nullptr);
  ASSERT_FALSE(reference.per_rank.empty());
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_prob = 0.1;
    plan.duplicate_prob = 0.1;
    plan.delay_prob = 0.1;
    plan.delay_min_seconds = 0.02;
    plan.delay_max_seconds = 0.15;
    plan.eligible = control_plane_only;
    RunResult run;
    try {
      run = run_system(wl, tolerant_options(), std::make_shared<FaultInjector>(plan));
    } catch (const std::exception& e) {
      FAIL() << "seed " << seed << ": " << e.what();
    }
    expect_same_answers(run, reference.per_rank[0], "mixed seed " + std::to_string(seed));
  }
}

TEST(TreeChaos, PipelinedPartialFramesConvergeAcrossFlushThresholds) {
  // Pipelined aggregation changes the framing — a wave's entries leave
  // in several partial TreeUp/TreeDown frames instead of one — but not
  // the aggregate, so every flush threshold must produce the per-wave
  // baseline's answers. flush_count=1 is the extreme: one entry per
  // frame, maximum frame count, every batching invariant stressed.
  const Workload baseline = default_workload();
  const RunResult reference = run_system(baseline, tolerant_options(), nullptr);
  ASSERT_FALSE(reference.per_rank.empty());

  for (const int flush : {1, 2, 4}) {
    Workload wl = baseline;
    wl.flush_count = flush;

    // Fault-free: answers identical at every threshold.
    const RunResult clean = run_system(wl, tolerant_options(), nullptr);
    expect_same_answers(clean, reference.per_rank[0],
                        "flush " + std::to_string(flush) + " clean");

    // Under frame chaos a lost partial frame loses fewer entries than a
    // lost whole-wave frame, but the retry machinery must converge all
    // the same.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      FaultPlan plan;
      plan.seed = seed;
      plan.drop_prob = 0.1;
      plan.duplicate_prob = 0.1;
      plan.delay_prob = 0.2;
      plan.delay_min_seconds = 0.02;
      plan.delay_max_seconds = 0.2;
      plan.eligible = frames_only;
      RunResult run;
      try {
        run = run_system(wl, tolerant_options(), std::make_shared<FaultInjector>(plan));
      } catch (const std::exception& e) {
        FAIL() << "flush " << flush << " seed " << seed << ": " << e.what();
      }
      expect_same_answers(run, reference.per_rank[0],
                          "flush " + std::to_string(flush) + " seed " +
                              std::to_string(seed));
    }
  }
}

TEST(TreeChaos, SubRepDeathMidRunReparentsAndConverges) {
  const Workload wl = default_workload();
  const RunResult reference = run_system(wl, tolerant_options(), nullptr);
  ASSERT_FALSE(reference.per_rank.empty());

  FrameworkOptions fw = tolerant_options();
  fw.departure_timeout_seconds = 1.0;
  fw.debug_kill_subrep = 0;  // leaf node covering exporter ranks 0..1
  fw.debug_kill_subrep_at = 0.02;
  fw.debug_kill_subrep_program = "E";

  const RunResult run = run_system(wl, fw, nullptr);
  expect_same_answers(run, reference.per_rank[0], "subrep-kill");
  std::uint64_t reparents = 0;
  for (const auto& stats : run.exporter_stats) reparents += stats.ft.reparents;
  EXPECT_GT(reparents, 0u);
}

TEST(TreeChaos, SubRepDeathUnderFrameChaosStillConverges) {
  const Workload wl = default_workload();
  const RunResult reference = run_system(wl, tolerant_options(), nullptr);

  FrameworkOptions fw = tolerant_options();
  fw.departure_timeout_seconds = 1.0;
  fw.debug_kill_subrep = 1;
  fw.debug_kill_subrep_at = 0.05;
  fw.debug_kill_subrep_program = "E";

  FaultPlan plan;
  plan.seed = 9;
  plan.drop_prob = 0.08;
  plan.delay_prob = 0.1;
  plan.delay_min_seconds = 0.02;
  plan.delay_max_seconds = 0.1;
  plan.eligible = frames_only;
  const RunResult run = run_system(wl, fw, std::make_shared<FaultInjector>(plan));
  expect_same_answers(run, reference.per_rank[0], "subrep-kill-chaos");
}

}  // namespace
}  // namespace ccf::core
