// Chaos harness: the coupling protocol under a faulty fabric.
//
// A seeded FaultInjector drops, duplicates, and delays control-plane
// messages (requests, forwards, responses, answers, geometry, shutdown)
// while the failure-tolerance machinery — sequence-numbered idempotent
// control messages, timeout/backoff retries, heartbeats, departure
// detection, stall degrade — keeps the system live. Under every fault
// schedule the runs must
//   * terminate (a wedged run raises DeadlockError / exceeds max_events),
//   * produce only legal rep aggregates (violations throw),
//   * give every importer rank the identical answer sequence, and
//   * match the answers of a fault-free run of the same workload
//     (delivery faults perturb timing, never semantics).
// Virtual-time mode makes each schedule deterministic and replayable from
// its seed.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;
using transport::FaultInjector;
using transport::FaultPlan;

struct Answer {
  bool matched = false;
  Timestamp version = 0;

  bool operator==(const Answer& o) const {
    return matched == o.matched && (!matched || version == o.version);
  }
};

struct Workload {
  int exporter_procs = 3;
  int importer_procs = 2;
  std::vector<Timestamp> exports;
  std::vector<Timestamp> requests;
};

Workload default_workload() {
  Workload w;
  for (int i = 1; i <= 18; ++i) w.exports.push_back(i * 1.0);
  w.requests = {2.0, 5.5, 6.0, 9.5, 13.0, 17.5};
  return w;
}

FrameworkOptions tolerant_options() {
  FrameworkOptions fw;
  fw.retry_timeout_seconds = 0.05;
  fw.retry_backoff_factor = 2.0;
  fw.max_retries = 64;
  fw.heartbeat_interval_seconds = 0.5;
  fw.departure_timeout_seconds = 10.0;
  return fw;
}

/// Only the control plane is faulted: data pieces and collective traffic
/// pass untouched (payload reassembly is not the subject under test; the
/// protocol recovers control losses end-to-end).
bool control_plane_only(transport::ProcId, transport::ProcId, transport::Tag tag) {
  return tag >= kTagImportRequest && tag < kTagDataBase;
}

struct RunResult {
  std::vector<std::vector<Answer>> per_rank;  ///< importer answers, by rank
  std::vector<ProcStats> exporter_stats;
  std::vector<ProcStats> importer_stats;
  std::uint64_t faults_injected = 0;
};

RunResult run_system(const Workload& wl, const FrameworkOptions& fw,
                     std::shared_ptr<FaultInjector> faults) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", wl.exporter_procs, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", wl.importer_procs, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", MatchPolicy::REGL, 2.5, {}});

  runtime::ClusterOptions cluster_options;
  cluster_options.mode = runtime::ExecutionMode::VirtualTime;
  cluster_options.latency = std::make_shared<const transport::FixedLatency>(1e-3);
  cluster_options.faults = faults;
  CoupledSystem system(config, cluster_options, fw);

  const dist::Index rows = 12, cols = 12;
  const auto e_decomp = BlockDecomposition::make_grid(rows, cols, wl.exporter_procs);
  const auto i_decomp = BlockDecomposition::make_grid(rows, cols, wl.importer_procs);

  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (Timestamp t : wl.exports) {
      ctx.compute(1e-4);
      data.fill([&](dist::Index, dist::Index) { return t; });
      rt.export_region("r", t, data);
    }
    rt.finalize();
  });

  RunResult result;
  result.per_rank.resize(static_cast<std::size_t>(wl.importer_procs));
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    auto& answers = result.per_rank[static_cast<std::size_t>(rt.rank())];
    for (Timestamp x : wl.requests) {
      ctx.compute(1e-4);
      const auto status = rt.import_region("r", x, data);
      if (status.ok()) {
        // The payload identifies the shipped version: it must be the
        // matched one even after duplicated/reordered control traffic.
        EXPECT_DOUBLE_EQ(data.data()[0], status.matched);
        answers.push_back({true, status.matched});
      } else {
        answers.push_back({false, 0});
      }
    }
    rt.finalize();
  });

  system.run();
  for (int r = 0; r < wl.exporter_procs; ++r) {
    result.exporter_stats.push_back(system.proc_stats("E", r));
  }
  for (int r = 0; r < wl.importer_procs; ++r) {
    result.importer_stats.push_back(system.proc_stats("I", r));
  }
  if (faults) {
    const auto fs = faults->stats();
    result.faults_injected = fs.dropped + fs.duplicated + fs.delayed;
  }
  return result;
}

void expect_same_answers(const RunResult& run, const std::vector<Answer>& reference,
                         const std::string& label) {
  for (std::size_t rank = 0; rank < run.per_rank.size(); ++rank) {
    const auto& answers = run.per_rank[rank];
    ASSERT_EQ(answers.size(), reference.size()) << label << " rank " << rank;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(answers[i] == reference[i])
          << label << " rank " << rank << " request " << i << ": got ("
          << answers[i].matched << ", " << answers[i].version << "), expected ("
          << reference[i].matched << ", " << reference[i].version << ")";
    }
  }
}

TEST(Chaos, FaultFreeTolerantRunMatchesBaselineWithZeroOverheadCounters) {
  const Workload wl = default_workload();
  const RunResult baseline = run_system(wl, FrameworkOptions{}, nullptr);
  const RunResult tolerant = run_system(wl, tolerant_options(), nullptr);
  ASSERT_FALSE(baseline.per_rank.empty());
  expect_same_answers(tolerant, baseline.per_rank[0], "tolerant-vs-baseline");
  // On a lossless fabric the tolerance machinery must never fire.
  for (const auto& stats : tolerant.importer_stats) {
    EXPECT_EQ(stats.ft.request_retries, 0u);
    EXPECT_EQ(stats.ft.stale_answers, 0u);
    EXPECT_EQ(stats.ft.commit_retries, 0u);
    EXPECT_EQ(stats.ft.conn_done_retries, 0u);
    EXPECT_FALSE(stats.ft.rep_departed);
  }
  for (const auto& stats : tolerant.exporter_stats) {
    for (const auto& e : stats.exports) {
      EXPECT_EQ(e.duplicate_requests, 0u);
      EXPECT_EQ(e.reordered_requests, 0u);
      EXPECT_EQ(e.degraded_conns, 0u);
    }
  }
}

TEST(Chaos, TwentyFourSeededFaultSchedulesConvergeToFaultFreeAnswers) {
  const Workload wl = default_workload();
  const RunResult reference = run_system(wl, tolerant_options(), nullptr);
  ASSERT_FALSE(reference.per_rank.empty());
  const std::vector<Answer>& expected = reference.per_rank[0];

  std::uint64_t total_faults = 0, total_retries = 0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_prob = 0.15;
    plan.duplicate_prob = 0.15;
    plan.delay_prob = 0.15;
    plan.delay_min_seconds = 0.02;
    plan.delay_max_seconds = 0.2;
    plan.eligible = control_plane_only;
    RunResult run;
    try {
      run = run_system(wl, tolerant_options(), std::make_shared<FaultInjector>(plan));
    } catch (const std::exception& e) {
      FAIL() << "seed " << seed << ": " << e.what();
    }
    expect_same_answers(run, expected, "seed " + std::to_string(seed));
    total_faults += run.faults_injected;
    for (const auto& stats : run.importer_stats) total_retries += stats.ft.request_retries;
  }
  // The harness must actually have exercised the machinery, not run clean.
  EXPECT_GT(total_faults, 100u);
  EXPECT_GT(total_retries, 0u);
}

TEST(Chaos, ReplaySameSeedProducesIdenticalFaultSchedule) {
  const Workload wl = default_workload();
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 0.2;
  plan.duplicate_prob = 0.2;
  plan.delay_prob = 0.2;
  plan.delay_min_seconds = 0.02;
  plan.delay_max_seconds = 0.2;
  plan.eligible = control_plane_only;
  auto inj_a = std::make_shared<FaultInjector>(plan);
  auto inj_b = std::make_shared<FaultInjector>(plan);
  const RunResult a = run_system(wl, tolerant_options(), inj_a);
  const RunResult b = run_system(wl, tolerant_options(), inj_b);
  // Virtual time + per-link decision indexing: byte-for-byte replay.
  EXPECT_EQ(inj_a->stats().dropped, inj_b->stats().dropped);
  EXPECT_EQ(inj_a->stats().duplicated, inj_b->stats().duplicated);
  EXPECT_EQ(inj_a->stats().delayed, inj_b->stats().delayed);
  ASSERT_FALSE(a.per_rank.empty());
  expect_same_answers(b, a.per_rank[0], "replay");
}

TEST(Chaos, DroppedShutdownIsSurvivedViaDepartureDetection) {
  const Workload wl = default_workload();
  const RunResult reference = run_system(wl, tolerant_options(), nullptr);

  FaultPlan plan;
  plan.seed = 3;
  plan.drop_prob = 1.0;
  plan.eligible = [](transport::ProcId, transport::ProcId, transport::Tag tag) {
    return tag == kTagShutdownProc;
  };
  FrameworkOptions fw = tolerant_options();
  fw.departure_timeout_seconds = 2.0;
  const RunResult run = run_system(wl, fw, std::make_shared<FaultInjector>(plan));

  // Every shutdown notice was eaten, yet the run terminated with the
  // right answers: the procs noticed their rep went silent and left.
  expect_same_answers(run, reference.per_rank[0], "dropped-shutdown");
  EXPECT_GT(run.faults_injected, 0u);
  bool any_departed = false;
  for (const auto& stats : run.importer_stats) any_departed |= stats.ft.rep_departed;
  for (const auto& stats : run.exporter_stats) any_departed |= stats.ft.rep_departed;
  EXPECT_TRUE(any_departed);
}

TEST(Chaos, StalledExporterDegradesWhenImporterDepartureNoticeIsLost) {
  // The importer issues one early request and leaves; every ConnFinished
  // notification (initial + first retries) is eaten, so the exporter
  // keeps buffering for a connection that will never consume, hits its
  // finite buffer cap, stalls — and must degrade via the stall timeout
  // instead of blocking forever. A later heartbeat-tick retry finally
  // gets through and completes the shutdown handshake.
  Workload wl;
  wl.exporter_procs = 2;
  wl.importer_procs = 1;
  for (int i = 1; i <= 30; ++i) wl.exports.push_back(i * 1.0);
  wl.requests = {2.0};

  FaultPlan plan;
  plan.seed = 5;
  plan.drop_prob = 1.0;
  plan.max_faults = 3;
  plan.eligible = [](transport::ProcId, transport::ProcId, transport::Tag tag) {
    return tag == kTagConnFinished;
  };

  FrameworkOptions fw = tolerant_options();
  fw.max_buffered_bytes = 4 * (12 / 2) * 12 * sizeof(double);  // ~4 snapshots
  fw.stall_timeout_seconds = 0.2;

  const RunResult run = run_system(wl, fw, std::make_shared<FaultInjector>(plan));
  ASSERT_EQ(run.per_rank.at(0).size(), 1u);
  EXPECT_TRUE(run.per_rank[0][0].matched);
  EXPECT_EQ(run.faults_injected, 3u);
  std::uint64_t stalls = 0, degraded = 0;
  for (const auto& stats : run.exporter_stats) {
    for (const auto& e : stats.exports) {
      stalls += e.stalls;
      degraded += e.degraded_conns;
    }
  }
  EXPECT_GT(stalls, 0u);
  EXPECT_GT(degraded, 0u);
}

TEST(Chaos, FinalizeWithUnfinishedPipelinedImportsThrows) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", 1, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", 1, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", MatchPolicy::REGL, 1.0, {}});
  runtime::ClusterOptions cluster_options;
  cluster_options.mode = runtime::ExecutionMode::VirtualTime;
  CoupledSystem system(config, cluster_options, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(4, 4, 1);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, 0);
    rt.export_region("r", 1.0, data);
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    (void)rt.import_request("r", 1.0);
    EXPECT_EQ(rt.pending_imports("r"), 1u);
    rt.finalize();  // never waited on the ticket
  });
  EXPECT_THROW(system.run(), util::InvalidArgument);
}

}  // namespace
}  // namespace ccf::core
