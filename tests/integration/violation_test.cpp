// End-to-end collective-contract enforcement: applications that violate
// Property 1 (processes of one program disagreeing about the export
// sequence) are detected by the representative and surfaced as
// ProtocolViolation from the run — not silent corruption.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;

Config simple_config() {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", 2, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", 1, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", MatchPolicy::REGL, 0.5});
  return config;
}

TEST(Property1Enforcement, DivergentExportTimestampsDetected) {
  // Rank 1 exports shifted timestamps: the two processes produce different
  // matches for the same request -> the rep sees disagreeing decisive
  // answers and raises ProtocolViolation.
  CoupledSystem system(simple_config(), runtime::ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  const auto i_decomp = BlockDecomposition::make_grid(8, 8, 1);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    // CONTRACT VIOLATION: ranks export different timestamp sequences.
    const double shift = rt.rank() == 1 ? 0.3 : 0.0;
    for (int k = 1; k <= 20; ++k) rt.export_region("r", k + shift, data);
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    (void)rt.import_region("r", 10.0, data);
    rt.finalize();
  });
  EXPECT_THROW(system.run(), util::ProtocolViolation);
}

TEST(Property1Enforcement, MissingExportOnOneRankDetected) {
  // Rank 1 skips one export: the sequences diverge and (here) the region
  // holds a candidate on rank 0 only -> MATCH vs NO-MATCH mixture.
  CoupledSystem system(simple_config(), runtime::ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  const auto i_decomp = BlockDecomposition::make_grid(8, 8, 1);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 20; ++k) {
      if (rt.rank() == 1 && k == 10) continue;  // VIOLATION: dropped export
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    (void)rt.import_region("r", 10.0, data);
    rt.finalize();
  });
  EXPECT_THROW(system.run(), util::Error);
}

TEST(Property1Enforcement, ViolationMessageIsDiagnostic) {
  CoupledSystem system(simple_config(), runtime::ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  const auto i_decomp = BlockDecomposition::make_grid(8, 8, 1);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    const double shift = rt.rank() == 1 ? 0.25 : 0.0;
    for (int k = 1; k <= 20; ++k) rt.export_region("r", k + shift, data);
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    (void)rt.import_region("r", 10.0, data);
    rt.finalize();
  });
  try {
    system.run();
    FAIL() << "expected ProtocolViolation";
  } catch (const util::ProtocolViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Property 1"), std::string::npos);
    EXPECT_NE(what.find("seq"), std::string::npos);
  }
}

}  // namespace
}  // namespace ccf::core
