// Chaos harness for bounded-memory buffer governance.
//
// The scenario the governor exists for: an importer that goes quiet
// mid-run while the exporters sprint ahead. Ungoverned, the exporters'
// buffer pools grow with every version the stalled importer has not yet
// asked about; governed, cold snapshots are demoted to the spill tier and
// restored on a late MATCH, so resident bytes never exceed the budget.
// A seeded FaultInjector additionally drops/duplicates/delays the control
// plane. Under every schedule the governed runs must
//   * give every importer rank the fault-free ungoverned answers (and the
//     payload of exactly the matched version),
//   * keep each exporter's peak resident snapshot bytes <= the budget,
//   * keep the spill books balanced: every demoted snapshot is restored,
//     freed on disk, or still live.
// Virtual-time mode makes each schedule deterministic and replayable.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;
using transport::FaultInjector;
using transport::FaultPlan;

constexpr dist::Index kRows = 12, kCols = 12;
constexpr int kExporterProcs = 3, kImporterProcs = 2;
/// Two snapshots of one exporter rank's block: (12/3)*12 doubles each.
constexpr std::size_t kBudgetBytes = 2 * (kRows / kExporterProcs) * kCols * sizeof(double);

struct Answer {
  bool matched = false;
  Timestamp version = 0;

  bool operator==(const Answer& o) const {
    return matched == o.matched && (!matched || version == o.version);
  }
};

struct RunResult {
  std::vector<std::vector<Answer>> per_rank;  ///< importer answers, by rank
  std::vector<ProcStats> exporter_stats;
  std::uint64_t faults_injected = 0;
};

FrameworkOptions tolerant_options() {
  FrameworkOptions fw;
  fw.retry_timeout_seconds = 0.05;
  fw.retry_backoff_factor = 2.0;
  fw.max_retries = 64;
  fw.heartbeat_interval_seconds = 0.5;
  fw.departure_timeout_seconds = 10.0;
  return fw;
}

FrameworkOptions governed_options(const std::filesystem::path& spill_dir) {
  FrameworkOptions fw = tolerant_options();
  fw.memory.budget_bytes = kBudgetBytes;
  fw.memory.spill_directory = spill_dir.string();
  return fw;
}

/// Only the control plane is faulted (as in chaos_test): the protocol
/// recovers control losses end-to-end, and BufferPressure notices are
/// advisory by design, so losing them may cost memory headroom but never
/// an answer.
bool control_plane_only(transport::ProcId, transport::ProcId, transport::Tag tag) {
  return tag >= kTagImportRequest && tag < kTagDataBase;
}

/// Exports 1..18 at full speed; the importer answers three requests, then
/// stalls for 0.25 s of modeled compute — five orders of magnitude longer
/// than an export step — before issuing the remaining three.
RunResult run_system(const FrameworkOptions& fw, std::shared_ptr<FaultInjector> faults) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", kExporterProcs, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", kImporterProcs, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", MatchPolicy::REGL, 2.5, {}});

  runtime::ClusterOptions cluster_options;
  cluster_options.mode = runtime::ExecutionMode::VirtualTime;
  cluster_options.latency = std::make_shared<const transport::FixedLatency>(1e-3);
  cluster_options.faults = faults;
  CoupledSystem system(config, cluster_options, fw);

  const auto e_decomp = BlockDecomposition::make_grid(kRows, kCols, kExporterProcs);
  const auto i_decomp = BlockDecomposition::make_grid(kRows, kCols, kImporterProcs);

  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (int k = 1; k <= 18; ++k) {
      ctx.compute(1e-4);
      data.fill([&](dist::Index, dist::Index) { return static_cast<double>(k); });
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });

  RunResult result;
  result.per_rank.resize(kImporterProcs);
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    auto& answers = result.per_rank[static_cast<std::size_t>(rt.rank())];
    const std::vector<Timestamp> requests = {2.0, 5.5, 6.0, 9.5, 13.0, 17.5};
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ctx.compute(i == 3 ? 0.25 : 1e-4);  // go quiet mid-run
      const auto status = rt.import_region("r", requests[i], data);
      if (status.ok()) {
        // The payload identifies the shipped version: a restore from the
        // spill tier must hand back exactly the matched snapshot.
        EXPECT_DOUBLE_EQ(data.data()[0], status.matched);
        answers.push_back({true, status.matched});
      } else {
        answers.push_back({false, 0});
      }
    }
    rt.finalize();
  });

  system.run();
  for (int r = 0; r < kExporterProcs; ++r) {
    result.exporter_stats.push_back(system.proc_stats("E", r));
  }
  if (faults) {
    const auto fs = faults->stats();
    result.faults_injected = fs.dropped + fs.duplicated + fs.delayed;
  }
  return result;
}

void expect_same_answers(const RunResult& run, const std::vector<Answer>& reference,
                         const std::string& label) {
  for (std::size_t rank = 0; rank < run.per_rank.size(); ++rank) {
    const auto& answers = run.per_rank[rank];
    ASSERT_EQ(answers.size(), reference.size()) << label << " rank " << rank;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_TRUE(answers[i] == reference[i])
          << label << " rank " << rank << " request " << i << ": got ("
          << answers[i].matched << ", " << answers[i].version << "), expected ("
          << reference[i].matched << ", " << reference[i].version << ")";
    }
  }
}

/// Budget + books invariants on every governed run, faulty or not. A
/// dropped-then-retried final ConnClosed can delay (never lose) frees, so
/// live_spilled_entries == 0 is asserted only for lossless runs by the
/// caller.
void expect_governed_invariants(const RunResult& run, const std::string& label) {
  std::uint64_t evictions = 0;
  for (std::size_t rank = 0; rank < run.exporter_stats.size(); ++rank) {
    for (const auto& e : run.exporter_stats[rank].exports) {
      const auto& b = e.buffer;
      EXPECT_LE(b.peak_bytes, kBudgetBytes) << label << " rank " << rank;
      EXPECT_EQ(b.evictions, b.restores + b.spill_frees + b.live_spilled_entries)
          << label << " rank " << rank << " spill books";
      evictions += b.evictions;
    }
    EXPECT_LE(run.exporter_stats[rank].governor.peak_charged_bytes, kBudgetBytes)
        << label << " rank " << rank;
  }
  EXPECT_GT(evictions, 0u) << label << ": the stall never pressured the budget";
}

class ScopedSpillDir {
 public:
  explicit ScopedSpillDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() / ("ccf_memchaos_" + tag)) {}
  ~ScopedSpillDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(MemoryChaos, GovernedStalledImporterMatchesUngovernedFaultFreeRun) {
  const RunResult reference = run_system(tolerant_options(), nullptr);
  ASSERT_FALSE(reference.per_rank.empty());

  ScopedSpillDir spill("faultfree");
  const RunResult governed = run_system(governed_options(spill.path()), nullptr);
  expect_same_answers(governed, reference.per_rank[0], "governed-faultfree");
  expect_governed_invariants(governed, "governed-faultfree");
  for (std::size_t rank = 0; rank < governed.exporter_stats.size(); ++rank) {
    for (const auto& e : governed.exporter_stats[rank].exports) {
      EXPECT_EQ(e.buffer.live_spilled_entries, 0u) << "rank " << rank;
    }
  }
  // The ungoverned reference really did buffer past the budget — the
  // governed run bounded a workload that genuinely needed bounding.
  std::size_t ungoverned_peak = 0;
  for (const auto& stats : reference.exporter_stats) {
    for (const auto& e : stats.exports) {
      ungoverned_peak = std::max(ungoverned_peak, e.buffer.peak_bytes);
    }
  }
  EXPECT_GT(ungoverned_peak, kBudgetBytes);
}

TEST(MemoryChaos, SeededFaultSchedulesStayUnderBudgetAndConverge) {
  const RunResult reference = run_system(tolerant_options(), nullptr);
  ASSERT_FALSE(reference.per_rank.empty());
  const std::vector<Answer>& expected = reference.per_rank[0];

  std::uint64_t total_faults = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_prob = 0.15;
    plan.duplicate_prob = 0.15;
    plan.delay_prob = 0.15;
    plan.delay_min_seconds = 0.02;
    plan.delay_max_seconds = 0.2;
    plan.eligible = control_plane_only;

    ScopedSpillDir spill("seed" + std::to_string(seed));
    RunResult run;
    try {
      run = run_system(governed_options(spill.path()), std::make_shared<FaultInjector>(plan));
    } catch (const std::exception& e) {
      FAIL() << "seed " << seed << ": " << e.what();
    }
    const std::string label = "seed " + std::to_string(seed);
    expect_same_answers(run, expected, label);
    expect_governed_invariants(run, label);
    total_faults += run.faults_injected;
  }
  // The harness must actually have exercised the fault machinery.
  EXPECT_GT(total_faults, 50u);
}

}  // namespace
}  // namespace ccf::core
