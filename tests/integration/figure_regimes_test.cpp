// Integration tests asserting the paper's Figure 4 regime *shapes* at
// reduced scale (the shapes are invariant to array size by construction —
// compute knobs are multiples of the buffering copy cost):
//   Fig 4(a)/(b): importer slower -> flat series, every export buffered;
//   Fig 4(c):     importer slightly faster -> gradual decay to optimal;
//   Fig 4(d):     importer much faster -> optimal within tens of iters;
// plus Eq.(1)/(2) behaviour and the buddy-help on/off comparison.
#include <gtest/gtest.h>

#include "sim/microbench.hpp"
#include "util/stats.hpp"

namespace ccf::sim {
namespace {

MicrobenchParams base_params(int importer_procs, int num_exports = 401) {
  MicrobenchParams p;
  p.rows = 64;
  p.cols = 64;
  p.importer_procs = importer_procs;
  p.num_exports = num_exports;
  return p;
}

TEST(FigureRegimes, ImporterSlowerIsFlatAllBuffered) {
  // Fig 4(a)/(b): U in {4, 8} is slower than F; every export is copied.
  for (int procs : {4, 8}) {
    const MicrobenchResult r = run_microbench(base_params(procs));
    EXPECT_EQ(r.slow_stats.buffer.stores, static_cast<std::uint64_t>(r.params.num_exports))
        << "U=" << procs;
    EXPECT_EQ(r.slow_stats.buffer.skips, 0u) << "U=" << procs;
    EXPECT_EQ(r.settle_iteration, 0u) << "U=" << procs;
    // Flat: first-block mean equals plateau mean within 10%.
    EXPECT_NEAR(r.initial_mean, r.plateau_mean, 0.1 * r.initial_mean) << "U=" << procs;
    EXPECT_EQ(r.slow_stats.buddy_helps_received, 0u) << "U=" << procs;
  }
}

TEST(FigureRegimes, FastImporterReachesOptimalStateQuickly) {
  // Fig 4(d): U=32 catches up within tens of iterations; in the optimal
  // state only the matched export of each block is buffered.
  const MicrobenchResult r = run_microbench(base_params(32, 1001));
  EXPECT_GT(r.slow_stats.buffer.skips, 800u);
  EXPECT_LT(r.settle_iteration, 100u);
  EXPECT_LT(r.plateau_mean, 0.25 * r.initial_mean);
  // Optimal state: the last analysed blocks buffer exactly one export
  // each, i.e. T_i == 0 for late requests (paper Fig. 6).
  ASSERT_GT(r.slow_stats.t_i.size(), 10u);
  for (std::size_t i = r.slow_stats.t_i.size() - 5; i < r.slow_stats.t_i.size(); ++i) {
    EXPECT_EQ(r.slow_stats.t_i[i], 0.0) << "request " << i;
  }
}

TEST(FigureRegimes, IntermediateImporterDecaysGradually) {
  // Fig 4(c): U=16 converges, but much later than U=32.
  const MicrobenchResult r16 = run_microbench(base_params(16, 1001));
  const MicrobenchResult r32 = run_microbench(base_params(32, 1001));
  EXPECT_GT(r16.settle_iteration, 4 * std::max<std::size_t>(r32.settle_iteration, 1));
  EXPECT_LT(r16.plateau_mean, r16.initial_mean);
  // U=16 still buffers more than U=32 in total.
  EXPECT_GT(r16.slow_stats.buffer.stores, r32.slow_stats.buffer.stores);
}

TEST(FigureRegimes, BuddyHelpReducesSlowProcessCopies) {
  // The headline claim: with buddy-help the slow process performs strictly
  // fewer buffering memcpys and less unnecessary buffering time (Eq. 2).
  MicrobenchParams with = base_params(32, 601);
  MicrobenchParams without = with;
  without.buddy_help = false;
  const MicrobenchResult rw = run_microbench(with);
  const MicrobenchResult ro = run_microbench(without);
  EXPECT_LT(rw.slow_stats.buffer.stores, ro.slow_stats.buffer.stores);
  EXPECT_LE(rw.slow_stats.t_ub(), ro.slow_stats.t_ub());
  // Both arms transfer the same matched versions (correctness unchanged).
  EXPECT_EQ(rw.importer_rank0_stats.matches, ro.importer_rank0_stats.matches);
  EXPECT_EQ(rw.importer_rank0_stats.matched_timestamps,
            ro.importer_rank0_stats.matched_timestamps);
}

TEST(FigureRegimes, NonIncreasingTiAfterHelpStarts) {
  // Paper §4.1: once a slower process starts getting buddy-help during the
  // j-th request, T_k forms a (weakly) non-increasing sequence for k >= j
  // as the optimal state approaches. We assert trend: block-averaged T_i
  // over the second half <= first half.
  const MicrobenchResult r = run_microbench(base_params(32, 1001));
  const auto& ti = r.slow_stats.t_i;
  ASSERT_GT(ti.size(), 8u);
  const double first_half = util::mean_of(ti, 0, ti.size() / 2);
  const double second_half = util::mean_of(ti, ti.size() / 2, ti.size());
  EXPECT_LE(second_half, first_half);
}

TEST(FigureRegimes, DeterministicAcrossRuns) {
  const MicrobenchResult a = run_microbench(base_params(16, 201));
  const MicrobenchResult b = run_microbench(base_params(16, 201));
  EXPECT_EQ(a.slow_export_seconds, b.slow_export_seconds);
  EXPECT_EQ(a.slow_stats.buffer.stores, b.slow_stats.buffer.stores);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
}

TEST(FigureRegimes, EveryExporterTransfersEveryMatch) {
  const MicrobenchResult r = run_microbench(base_params(16, 401));
  const auto expected = r.importer_rank0_stats.matches;
  EXPECT_GT(expected, 0u);
  for (const auto& stats : r.exporter_stats) {
    EXPECT_EQ(stats.transfers, expected);
  }
}

TEST(FigureRegimes, Figure5TraceShapeForFastImporter) {
  MicrobenchParams p = base_params(32, 201);
  p.trace = true;
  const MicrobenchResult r = run_microbench(p);
  // The slow process's listing shows the Fig. 5 motifs.
  EXPECT_NE(r.slow_trace.find("receive request for"), std::string::npos);
  EXPECT_NE(r.slow_trace.find("PENDING"), std::string::npos);
  EXPECT_NE(r.slow_trace.find("receive buddy-help"), std::string::npos);
  EXPECT_NE(r.slow_trace.find("skip memcpy"), std::string::npos);
  EXPECT_NE(r.slow_trace.find("send D@"), std::string::npos);
}

}  // namespace
}  // namespace ccf::sim
