// Process-mode equivalence: the same coupled workload, run once in the
// default simulated mode and once as genuinely forked OS processes over
// the real SHM/TCP transport, must produce byte-identical coupling
// answers and identical deterministic statistics. The bodies execute in
// children, so everything the launcher reports here arrived over the
// ResultChannel pipes (core/result_codec) — direct writes stay behind in
// copy-on-write memory.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/report.hpp"
#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;

constexpr int kExporterRanks = 2;
constexpr int kImporterRanks = 2;
const std::vector<Timestamp> kExports = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
const std::vector<Timestamp> kRequests = {1.5, 4.0, 5.5, 8.5, 11.0};

struct Answer {
  bool matched = false;
  Timestamp version = 0;

  bool operator==(const Answer& o) const {
    return matched == o.matched && (!matched || version == o.version);
  }
};

/// Runs the workload and returns the importer's answer sequence. In
/// process mode the importer body additionally checks its answers (and
/// the delivered data values) against `expected` inside the child and
/// throws — the only failure signal that crosses the fork.
CoupledSystem run_workload(runtime::ClusterOptions cluster_options,
                           const std::vector<Answer>& expected = {}) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", kExporterRanks, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", kImporterRanks, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", MatchPolicy::REGL, 2.5, {}});
  CoupledSystem system(config, cluster_options, FrameworkOptions{});

  const dist::Index rows = 8, cols = 8;
  const auto e_decomp = BlockDecomposition::make_grid(rows, cols, kExporterRanks);
  const auto i_decomp = BlockDecomposition::make_grid(rows, cols, kImporterRanks);

  system.set_program_body("E", [e_decomp](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (Timestamp t : kExports) {
      ctx.compute(1e-4);
      data.fill([t](dist::Index, dist::Index) { return t; });
      rt.export_region("r", t, data);
    }
    rt.finalize();
  });

  system.set_program_body(
      "I", [i_decomp, expected](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
        rt.define_import_region("r", i_decomp);
        rt.commit();
        DistArray2D<double> data(i_decomp, rt.rank());
        for (std::size_t k = 0; k < kRequests.size(); ++k) {
          ctx.compute(1e-4);
          const auto status = rt.import_region("r", kRequests[k], data);
          const Answer got{status.ok(), status.ok() ? status.matched : 0};
          if (got.matched && data.data()[0] != status.matched)
            throw util::Error("imported data does not carry the matched version");
          // `expected` was captured before the fork, so the child still
          // sees the reference run's answers through its COW mapping.
          if (!expected.empty() && !(got == expected[k]))
            throw util::Error("process-mode answer diverged from the in-process run");
        }
        rt.finalize();
      });

  system.run();
  return system;
}

/// The deterministic answer sequence as the exporter's rep recorded it.
std::vector<Answer> rep_answers(const CoupledSystem& system) {
  std::vector<Answer> out;
  for (const AnswerMsg& a : system.rep_result("E").answers)
    out.push_back({a.result == MatchResult::Match,
                   a.result == MatchResult::Match ? a.matched : 0});
  return out;
}

TEST(ProcessMode, ForkedRunMatchesInProcessAnswersOverShm) {
  const CoupledSystem reference = run_workload(runtime::ClusterOptions{});
  EXPECT_EQ(reference.transport_kind("E"), "sim");
  const auto want = rep_answers(reference);
  ASSERT_FALSE(want.empty());

  runtime::ClusterOptions procs;
  procs.mode = runtime::ExecutionMode::RealProcesses;
  // Children validate their own answers against `want`; the launcher
  // cross-checks everything that came back over the result pipes.
  const CoupledSystem forked = run_workload(procs, want);
  EXPECT_EQ(forked.transport_kind("E"), "shm") << "one host => pure SHM";
  EXPECT_EQ(rep_answers(forked), want);

  for (int r = 0; r < kImporterRanks; ++r) {
    const ProcStats& got = forked.proc_stats("I", r);
    const ProcStats& ref = reference.proc_stats("I", r);
    ASSERT_EQ(got.imports.size(), 1u);
    EXPECT_EQ(got.imports[0].imports, ref.imports[0].imports);
    EXPECT_EQ(got.imports[0].matches, ref.imports[0].matches);
    EXPECT_EQ(got.imports[0].no_matches, ref.imports[0].no_matches);
    EXPECT_EQ(got.imports[0].matched_timestamps, ref.imports[0].matched_timestamps);
  }
  for (int r = 0; r < kExporterRanks; ++r) {
    const ProcStats& got = forked.proc_stats("E", r);
    const ProcStats& ref = reference.proc_stats("E", r);
    ASSERT_EQ(got.exports.size(), 1u);
    EXPECT_EQ(got.exports[0].exports, ref.exports[0].exports);
    EXPECT_EQ(got.exports[0].export_timestamps, ref.exports[0].export_timestamps);
    EXPECT_GT(got.exports[0].exports, 0u)
        << "zeros would mean the result pipe shipped nothing";
  }
  const RepResult& rep = forked.rep_result("E");
  EXPECT_EQ(rep.requests_forwarded, reference.rep_result("E").requests_forwarded);
  EXPECT_EQ(rep.answers_sent, reference.rep_result("E").answers_sent);

  EXPECT_EQ(forked.transport_counters().decode_errors, 0u);
  EXPECT_GT(forked.transport_counters().shm_frames, 0u);
  EXPECT_EQ(forked.transport_counters().tcp_frames, 0u);
}

TEST(ProcessMode, SplitNodesRouteTheCouplingOverTcp) {
  const CoupledSystem reference = run_workload(runtime::ClusterOptions{});
  const auto want = rep_answers(reference);
  ASSERT_FALSE(want.empty());

  ::setenv("CCF_NODES", "split", 1);
  struct EnvGuard {
    ~EnvGuard() { ::unsetenv("CCF_NODES"); }
  } guard;

  runtime::ClusterOptions procs;
  procs.mode = runtime::ExecutionMode::RealProcesses;
  const CoupledSystem forked = run_workload(procs, want);
  EXPECT_EQ(forked.transport_kind("E"), "tcp") << "split nodes => coupling rides TCP";
  EXPECT_EQ(rep_answers(forked), want);
  EXPECT_GT(forked.transport_counters().tcp_frames, 0u);
  EXPECT_EQ(forked.transport_counters().decode_errors, 0u);
}

TEST(ProcessMode, ReportCsvRecordsTheDeployedTransport) {
  runtime::ClusterOptions procs;
  procs.mode = runtime::ExecutionMode::RealProcesses;
  const CoupledSystem forked = run_workload(procs);
  const std::string path = ::testing::TempDir() + "ccf_process_mode_report.csv";
  write_run_report_csv(forked, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  EXPECT_NE(line.find(",transport"), std::string::npos);
  int rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    EXPECT_EQ(line.substr(line.rfind(',') + 1), "shm") << line;
  }
  EXPECT_GT(rows, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ccf::core
