// Micro-benchmark driver under other execution conditions: real threads
// (preemptive scheduling), load-imbalance models, finite buffer caps —
// the matched transfer set must be identical in every configuration
// (timing independence of the temporal model).
#include <gtest/gtest.h>

#include "sim/microbench.hpp"

namespace ccf::sim {
namespace {

MicrobenchParams tiny() {
  MicrobenchParams p;
  p.rows = 32;
  p.cols = 32;
  p.exporter_procs = 4;
  p.importer_procs = 4;
  p.num_exports = 61;
  return p;
}

TEST(MicrobenchModes, RealThreadsProduceSameMatches) {
  MicrobenchParams p = tiny();
  const MicrobenchResult virt = run_microbench(p);
  p.mode = runtime::ExecutionMode::RealThreads;
  const MicrobenchResult threads = run_microbench(p);
  EXPECT_EQ(threads.importer_rank0_stats.matched_timestamps,
            virt.importer_rank0_stats.matched_timestamps);
  EXPECT_EQ(threads.importer_rank0_stats.matches, virt.importer_rank0_stats.matches);
  for (const auto& stats : threads.exporter_stats) {
    EXPECT_EQ(stats.transfers, virt.exporter_stats[0].transfers);
  }
}

TEST(MicrobenchModes, ImbalanceModelsPreserveMatches) {
  MicrobenchParams base = tiny();
  base.importer_procs = 16;
  base.num_exports = 201;
  const MicrobenchResult reference = run_microbench(base);
  ASSERT_GT(reference.importer_rank0_stats.matches, 0u);

  for (ImbalanceKind kind :
       {ImbalanceKind::Jitter, ImbalanceKind::SlowJitter, ImbalanceKind::Rotating,
        ImbalanceKind::Burst}) {
    MicrobenchParams p = base;
    ImbalanceModel model;
    model.kind = kind;
    model.slow_factor = 3.0;
    model.amplitude = 1.5;
    model.period = 30;
    p.imbalance = model;
    const MicrobenchResult r = run_microbench(p);
    EXPECT_EQ(r.importer_rank0_stats.matched_timestamps,
              reference.importer_rank0_stats.matched_timestamps)
        << "model " << to_string(kind);
  }
}

TEST(MicrobenchModes, BufferCapPreservesMatches) {
  MicrobenchParams p = tiny();
  p.importer_procs = 4;  // slower importer: buffering pressure
  const MicrobenchResult unbounded = run_microbench(p);
  p.buffer_cap_snapshots = 5;
  const MicrobenchResult capped = run_microbench(p);
  EXPECT_EQ(capped.importer_rank0_stats.matched_timestamps,
            unbounded.importer_rank0_stats.matched_timestamps);
  EXPECT_GT(capped.slow_stats.stalls, 0u);
  EXPECT_LE(capped.slow_stats.buffer.peak_entries, 5u);
}

TEST(MicrobenchModes, TraceBoundedUnderLongRuns) {
  MicrobenchParams p = tiny();
  p.trace = true;
  p.trace_max_events = 64;
  const MicrobenchResult r = run_microbench(p);
  // Bounded capture: the listing exists but respects the cap.
  std::size_t lines = 0;
  for (char c : r.slow_trace) {
    if (c == '\n') ++lines;
  }
  EXPECT_LE(lines, 64u);
  EXPECT_GT(lines, 0u);
}

}  // namespace
}  // namespace ccf::sim
