// Event-journal tests: recording, bit-identical journals across runs of
// the same workload, bounds, and the listing renderer.
#include <gtest/gtest.h>

#include "simtime/virtual_cluster.hpp"
#include "transport/serialize.hpp"

namespace ccf::simtime {
namespace {

transport::Payload payload_of(int v) {
  transport::Writer w;
  w.put<std::int32_t>(v);
  return w.take();
}

VirtualCluster::Options journaling() {
  VirtualCluster::Options opts;
  opts.journal = true;
  return opts;
}

void workload(VirtualCluster& cluster) {
  for (int p = 0; p < 3; ++p) {
    cluster.add_process(p, [p](SimContext& ctx) {
      for (int i = 0; i < 4; ++i) {
        ctx.advance(0.1 * (p + 1));
        ctx.send((p + 1) % 3, 5, payload_of(p * 10 + i));
        (void)ctx.recv(MatchSpec{(p + 2) % 3, 5});
      }
    });
  }
}

TEST(Journal, DisabledByDefault) {
  VirtualCluster cluster;
  workload(cluster);
  cluster.run();
  EXPECT_TRUE(cluster.journal().empty());
}

TEST(Journal, RecordsEveryProcessedEvent) {
  VirtualCluster cluster(journaling());
  workload(cluster);
  cluster.run();
  EXPECT_EQ(cluster.journal().size(), cluster.events_processed());
  // Delivery entries carry sender, tag, and size.
  std::size_t deliveries = 0;
  for (const auto& e : cluster.journal()) {
    if (e.kind == VirtualCluster::JournalEntry::Kind::Delivery) {
      ++deliveries;
      EXPECT_GE(e.src, 0);
      EXPECT_EQ(e.tag, 5);
      EXPECT_EQ(e.bytes, sizeof(std::int32_t));
    }
  }
  EXPECT_EQ(deliveries, cluster.messages_delivered());
  // Times are non-decreasing (events processed in time order).
  for (std::size_t i = 1; i < cluster.journal().size(); ++i) {
    EXPECT_LE(cluster.journal()[i - 1].time, cluster.journal()[i].time);
  }
}

TEST(Journal, IdenticalAcrossRuns) {
  VirtualCluster a(journaling());
  workload(a);
  a.run();
  VirtualCluster b(journaling());
  workload(b);
  b.run();
  ASSERT_EQ(a.journal().size(), b.journal().size());
  for (std::size_t i = 0; i < a.journal().size(); ++i) {
    EXPECT_EQ(a.journal()[i], b.journal()[i]) << "entry " << i;
  }
  EXPECT_EQ(a.journal_listing(), b.journal_listing());
}

TEST(Journal, BoundedByMax) {
  VirtualCluster::Options opts = journaling();
  opts.journal_max = 5;
  VirtualCluster cluster(opts);
  workload(cluster);
  cluster.run();
  EXPECT_EQ(cluster.journal().size(), 5u);
}

TEST(Journal, ListingMentionsKindsAndTags) {
  VirtualCluster cluster(journaling());
  cluster.add_process(0, [](SimContext& ctx) {
    ctx.send(1, 42, payload_of(1));
    ctx.advance(1.0);
  });
  cluster.add_process(1, [](SimContext& ctx) { (void)ctx.recv(MatchSpec{0, 42}); });
  cluster.run();
  const std::string listing = cluster.journal_listing();
  EXPECT_NE(listing.find("resume proc 0"), std::string::npos);
  EXPECT_NE(listing.find("deliver 0 -> 1 tag 42"), std::string::npos);
}

}  // namespace
}  // namespace ccf::simtime
