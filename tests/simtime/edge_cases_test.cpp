// Virtual-cluster edge cases: stale deadline events, event-cap guard,
// latency-induced message overtaking (a documented non-FIFO case),
// simultaneous-event tie-breaking, nested waits.
#include <gtest/gtest.h>

#include "simtime/virtual_cluster.hpp"
#include "transport/serialize.hpp"

namespace ccf::simtime {
using transport::kAnyProc;
namespace {

transport::Payload payload_of(int v) {
  transport::Writer w;
  w.put<std::int32_t>(v);
  return w.take();
}

transport::Payload payload_bytes(std::size_t n) {
  transport::Writer w;
  w.put_vector(std::vector<std::uint8_t>(n, 1));
  return w.take();
}

int value_of(const Message& m) {
  transport::Reader r(m.payload);
  return r.get<std::int32_t>();
}

TEST(VirtualClusterEdge, StaleDeadlineEventIsIgnored) {
  // A recv_until satisfied by a message leaves its deadline event queued;
  // a second recv_until with the SAME deadline must not be woken by the
  // stale event (generation counter check).
  VirtualCluster::Options opts;
  opts.latency = std::make_shared<const transport::FixedLatency>(1.0);
  VirtualCluster cluster(opts);
  cluster.add_process(0, [&](SimContext& ctx) {
    ctx.send(1, 1, payload_of(7));   // arrives at t=1
    ctx.advance(2.0);
    ctx.send(1, 1, payload_of(8));   // arrives at t=3
  });
  cluster.add_process(1, [&](SimContext& ctx) {
    auto m1 = ctx.recv_until(MatchSpec{0, 1}, 5.0);  // satisfied at t=1
    ASSERT_TRUE(m1.has_value());
    EXPECT_DOUBLE_EQ(ctx.now(), 1.0);
    auto m2 = ctx.recv_until(MatchSpec{0, 1}, 5.0);  // must get the t=3 message
    ASSERT_TRUE(m2.has_value());
    EXPECT_EQ(value_of(*m2), 8);
    EXPECT_DOUBLE_EQ(ctx.now(), 3.0);
    // And a third wait with the same deadline times out at exactly 5.
    auto m3 = ctx.recv_until(MatchSpec{0, 1}, 5.0);
    EXPECT_FALSE(m3.has_value());
    EXPECT_DOUBLE_EQ(ctx.now(), 5.0);
  });
  cluster.run();
}

TEST(VirtualClusterEdge, MaxEventsCapAborts) {
  VirtualCluster::Options opts;
  opts.max_events = 100;
  VirtualCluster cluster(opts);
  cluster.add_process(0, [&](SimContext& ctx) {
    for (int i = 0; i < 1000; ++i) ctx.advance(0.001);
  });
  EXPECT_THROW(cluster.run(), util::InternalError);
}

TEST(VirtualClusterEdge, BandwidthLatencyLetsSmallMessagesOvertake) {
  // With a size-dependent latency model, a small message sent after a big
  // one can arrive first — the documented reason higher layers tag
  // messages instead of relying on per-pair FIFO.
  VirtualCluster::Options opts;
  opts.latency = std::make_shared<const transport::BandwidthLatency>(0.0, 1000.0);  // 1 KB/s
  VirtualCluster cluster(opts);
  std::vector<int> order;
  cluster.add_process(0, [&](SimContext& ctx) {
    ctx.send(1, 1, payload_bytes(2000));  // ~2s in flight
    ctx.send(1, 2, payload_of(1));        // tiny, ~12 bytes -> arrives first
  });
  cluster.add_process(1, [&](SimContext& ctx) {
    Message first = ctx.recv(MatchSpec{0, transport::kAnyTag});
    order.push_back(first.tag);
    Message second = ctx.recv(MatchSpec{0, transport::kAnyTag});
    order.push_back(second.tag);
  });
  cluster.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(VirtualClusterEdge, SimultaneousEventsKeepInsertionOrder) {
  // Two zero-latency messages sent at the same virtual instant arrive in
  // send order (tie-break by event sequence number).
  VirtualCluster cluster;
  std::vector<int> seen;
  cluster.add_process(0, [&](SimContext& ctx) {
    ctx.send(1, 1, payload_of(1));
    ctx.send(1, 1, payload_of(2));
    ctx.send(1, 1, payload_of(3));
  });
  cluster.add_process(1, [&](SimContext& ctx) {
    for (int i = 0; i < 3; ++i) seen.push_back(value_of(ctx.recv(MatchSpec{0, 1})));
  });
  cluster.run();
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(VirtualClusterEdge, ZeroAdvanceYieldsButKeepsTime) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext& ctx) {
    ctx.advance(0.0);
    EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
    ctx.advance(0.0);
    EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
  });
  cluster.run();
  EXPECT_DOUBLE_EQ(cluster.end_time(), 0.0);
}

TEST(VirtualClusterEdge, RecvUntilZeroDeadlineDoesNotBlock) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext& ctx) {
    auto m = ctx.recv_until(MatchSpec{kAnyProc, 1}, 0.0);  // deadline == now
    EXPECT_FALSE(m.has_value());
    EXPECT_DOUBLE_EQ(ctx.now(), 0.0);
  });
  cluster.run();
}

TEST(VirtualClusterEdge, ManySmallAdvancesAccumulateExactly) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext& ctx) {
    for (int i = 0; i < 1000; ++i) ctx.advance(0.5);
    EXPECT_DOUBLE_EQ(ctx.now(), 500.0);
  });
  cluster.run();
  EXPECT_DOUBLE_EQ(cluster.end_time(), 500.0);
}

}  // namespace
}  // namespace ccf::simtime
