// Virtual-time executor tests: deterministic ordering, time semantics,
// message latency, deadlock detection, error propagation.
#include <gtest/gtest.h>

#include <vector>

#include "simtime/virtual_cluster.hpp"
#include "transport/serialize.hpp"

namespace ccf::simtime {
using transport::kAnyProc;
namespace {

transport::Payload payload_of(int v) {
  transport::Writer w;
  w.put<std::int32_t>(v);
  return w.take();
}

int value_of(const Message& m) {
  transport::Reader r(m.payload);
  return r.get<std::int32_t>();
}

TEST(VirtualCluster, AdvanceAccumulatesTime) {
  VirtualCluster cluster;
  double end = -1;
  cluster.add_process(0, [&](SimContext& ctx) {
    EXPECT_EQ(ctx.now(), 0.0);
    ctx.advance(1.5);
    EXPECT_DOUBLE_EQ(ctx.now(), 1.5);
    ctx.advance(0.25);
    end = ctx.now();
  });
  cluster.run();
  EXPECT_DOUBLE_EQ(end, 1.75);
  EXPECT_DOUBLE_EQ(cluster.end_time(), 1.75);
}

TEST(VirtualCluster, ProcessesInterleaveInTimeOrder) {
  VirtualCluster cluster;
  std::vector<int> order;
  // Proc 0 acts at t=1,3 ; proc 1 acts at t=2,4. The scheduler must
  // interleave them by virtual time, not by registration.
  cluster.add_process(0, [&](SimContext& ctx) {
    ctx.advance(1);
    order.push_back(10);
    ctx.advance(2);
    order.push_back(11);
  });
  cluster.add_process(1, [&](SimContext& ctx) {
    ctx.advance(2);
    order.push_back(20);
    ctx.advance(2);
    order.push_back(21);
  });
  cluster.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 11, 21}));
}

TEST(VirtualCluster, MessageDeliveryRespectsLatency) {
  VirtualCluster::Options opts;
  opts.latency = std::make_shared<const transport::FixedLatency>(5.0);
  VirtualCluster cluster(opts);
  double recv_time = -1;
  cluster.add_process(0, [&](SimContext& ctx) {
    ctx.advance(1.0);
    ctx.send(1, 7, payload_of(99));
  });
  cluster.add_process(1, [&](SimContext& ctx) {
    Message m = ctx.recv(MatchSpec{0, 7});
    recv_time = ctx.now();
    EXPECT_EQ(value_of(m), 99);
  });
  cluster.run();
  EXPECT_DOUBLE_EQ(recv_time, 6.0);  // sent at 1, latency 5
}

TEST(VirtualCluster, ReceiverAheadGetsMessageAtOwnTime) {
  VirtualCluster cluster;  // zero latency
  double recv_time = -1;
  cluster.add_process(0, [&](SimContext& ctx) { ctx.send(1, 1, payload_of(1)); });
  cluster.add_process(1, [&](SimContext& ctx) {
    ctx.advance(10.0);  // receiver is far ahead when the message arrives
    (void)ctx.recv(MatchSpec{0, 1});
    recv_time = ctx.now();
  });
  cluster.run();
  EXPECT_DOUBLE_EQ(recv_time, 10.0);
}

TEST(VirtualCluster, DeterministicAcrossRuns) {
  auto run_once = [] {
    VirtualCluster cluster;
    std::vector<int> log;
    for (int p = 0; p < 4; ++p) {
      cluster.add_process(p, [&, p](SimContext& ctx) {
        for (int i = 0; i < 3; ++i) {
          ctx.advance(0.1 * (p + 1));
          ctx.send((p + 1) % 4, 5, payload_of(p * 10 + i));
        }
        for (int i = 0; i < 3; ++i) log.push_back(value_of(ctx.recv(MatchSpec{kAnyProc, 5})));
      });
    }
    cluster.run();
    return log;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 12u);
}

TEST(VirtualCluster, TryRecvAndProbe) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext& ctx) {
    ctx.send(1, 3, payload_of(5));
  });
  cluster.add_process(1, [&](SimContext& ctx) {
    EXPECT_FALSE(ctx.try_recv(MatchSpec{0, 3}).has_value());  // not delivered yet at t=0
    ctx.advance(1.0);  // after sender ran
    EXPECT_TRUE(ctx.probe(MatchSpec{0, 3}));
    auto m = ctx.try_recv(MatchSpec{0, 3});
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(value_of(*m), 5);
  });
  cluster.run();
}

TEST(VirtualCluster, RecvUntilTimesOutAtDeadline) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext& ctx) {
    auto m = ctx.recv_until(MatchSpec{kAnyProc, 9}, 3.0);
    EXPECT_FALSE(m.has_value());
    EXPECT_DOUBLE_EQ(ctx.now(), 3.0);  // woke exactly at the deadline
  });
  cluster.run();
}

TEST(VirtualCluster, RecvUntilReturnsEarlyMessage) {
  VirtualCluster::Options opts;
  opts.latency = std::make_shared<const transport::FixedLatency>(1.0);
  VirtualCluster cluster(opts);
  cluster.add_process(0, [&](SimContext& ctx) { ctx.send(1, 9, payload_of(4)); });
  cluster.add_process(1, [&](SimContext& ctx) {
    auto m = ctx.recv_until(MatchSpec{0, 9}, 100.0);
    ASSERT_TRUE(m.has_value());
    EXPECT_DOUBLE_EQ(ctx.now(), 1.0);
  });
  cluster.run();
}

TEST(VirtualCluster, DeadlockDetected) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext& ctx) { (void)ctx.recv(MatchSpec{1, 1}); });
  cluster.add_process(1, [&](SimContext& ctx) { (void)ctx.recv(MatchSpec{0, 1}); });
  EXPECT_THROW(cluster.run(), DeadlockError);
}

TEST(VirtualCluster, DeadlockReportNamesBlockedProcs) {
  VirtualCluster cluster;
  cluster.add_process(7, [&](SimContext& ctx) { (void)ctx.recv(MatchSpec{7, 123}); });
  try {
    cluster.run();
    FAIL() << "expected deadlock";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("proc 7"), std::string::npos);
    EXPECT_NE(what.find("tag=123"), std::string::npos);
  }
}

TEST(VirtualCluster, BodyExceptionPropagates) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext&) { throw std::runtime_error("boom"); });
  cluster.add_process(1, [&](SimContext& ctx) {
    (void)ctx.recv(MatchSpec{kAnyProc, 1});  // would deadlock; abort must free it
  });
  EXPECT_THROW(cluster.run(), std::runtime_error);
}

TEST(VirtualCluster, MessageToFinishedProcessIsDropped) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext&) {});
  cluster.add_process(1, [&](SimContext& ctx) {
    ctx.advance(1.0);
    ctx.send(0, 1, payload_of(1));  // proc 0 already finished
  });
  cluster.run();
  SUCCEED();
}

TEST(VirtualCluster, SendToUnknownProcessThrows) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext& ctx) { ctx.send(99, 1, payload_of(1)); });
  EXPECT_THROW(cluster.run(), util::InvalidArgument);
}

TEST(VirtualCluster, ValidatesRegistration) {
  VirtualCluster cluster;
  cluster.add_process(0, [](SimContext&) {});
  EXPECT_THROW(cluster.add_process(0, [](SimContext&) {}), util::InvalidArgument);
  EXPECT_THROW(cluster.add_process(-2, [](SimContext&) {}), util::InvalidArgument);
  EXPECT_THROW(cluster.add_process(1, nullptr), util::InvalidArgument);
}

TEST(VirtualCluster, EmptyClusterRejected) {
  VirtualCluster cluster;
  EXPECT_THROW(cluster.run(), util::InvalidArgument);
}

TEST(VirtualCluster, NegativeAdvanceRejected) {
  VirtualCluster cluster;
  cluster.add_process(0, [](SimContext& ctx) { ctx.advance(-1.0); });
  EXPECT_THROW(cluster.run(), util::InvalidArgument);
}

TEST(VirtualCluster, CountsEventsAndDeliveries) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext& ctx) {
    ctx.send(1, 1, payload_of(1));
    ctx.advance(1.0);
  });
  cluster.add_process(1, [&](SimContext& ctx) { (void)ctx.recv(MatchSpec{0, 1}); });
  cluster.run();
  EXPECT_EQ(cluster.messages_delivered(), 1u);
  EXPECT_GT(cluster.events_processed(), 2u);
}

TEST(VirtualCluster, SelfSendWorks) {
  VirtualCluster cluster;
  cluster.add_process(0, [&](SimContext& ctx) {
    ctx.send(0, 1, payload_of(77));
    ctx.advance(0.1);
    EXPECT_EQ(value_of(ctx.recv(MatchSpec{0, 1})), 77);
  });
  cluster.run();
}

TEST(VirtualCluster, ManyProcessesStress) {
  VirtualCluster cluster;
  constexpr int kProcs = 40;
  std::vector<int> received(kProcs, 0);
  for (int p = 0; p < kProcs; ++p) {
    cluster.add_process(p, [&, p](SimContext& ctx) {
      // Ring: send to the next process, receive from the previous.
      for (int i = 0; i < 10; ++i) {
        ctx.send((p + 1) % kProcs, 2, payload_of(i));
        ctx.advance(0.01);
        (void)ctx.recv(MatchSpec{(p + kProcs - 1) % kProcs, 2});
        received[static_cast<std::size_t>(p)]++;
      }
    });
  }
  cluster.run();
  for (int p = 0; p < kProcs; ++p) EXPECT_EQ(received[static_cast<std::size_t>(p)], 10);
}

}  // namespace
}  // namespace ccf::simtime
