// Runtime abstraction tests: both execution backends run the same bodies;
// copy() charges modeled time only in virtual mode; failures propagate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "runtime/cluster.hpp"
#include "transport/serialize.hpp"

namespace ccf::runtime {
namespace {

class ClusterModeTest : public ::testing::TestWithParam<ExecutionMode> {
 protected:
  ClusterOptions options() const {
    ClusterOptions o;
    o.mode = GetParam();
    return o;
  }
};

TEST_P(ClusterModeTest, PingPong) {
  auto cluster = make_cluster(options());
  std::atomic<int> got{0};
  cluster->add_process(0, [&](ProcessContext& ctx) {
    transport::Writer w;
    w.put<int>(41);
    ctx.send(1, 5, w.take());
    Message m = ctx.recv(MatchSpec{1, 6});
    transport::Reader r(m.payload);
    got = r.get<int>();
  });
  cluster->add_process(1, [&](ProcessContext& ctx) {
    Message m = ctx.recv(MatchSpec{0, 5});
    transport::Reader r(m.payload);
    transport::Writer w;
    w.put<int>(r.get<int>() + 1);
    ctx.send(0, 6, w.take());
  });
  cluster->run();
  EXPECT_EQ(got.load(), 42);
}

TEST_P(ClusterModeTest, CopyMovesBytes) {
  auto cluster = make_cluster(options());
  std::vector<double> dst(64, 0.0);
  cluster->add_process(0, [&](ProcessContext& ctx) {
    std::vector<double> src(64);
    for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<double>(i) * 1.5;
    ctx.copy(dst.data(), src.data(), src.size() * sizeof(double));
  });
  cluster->run();
  EXPECT_DOUBLE_EQ(dst[10], 15.0);
  EXPECT_DOUBLE_EQ(dst[63], 94.5);
}

TEST_P(ClusterModeTest, ExceptionPropagatesAndUnblocksPeers) {
  auto cluster = make_cluster(options());
  cluster->add_process(0, [&](ProcessContext&) { throw util::InvalidArgument("bad"); });
  cluster->add_process(1, [&](ProcessContext& ctx) {
    (void)ctx.recv(MatchSpec{0, 1});  // never satisfied; teardown must free it
  });
  EXPECT_THROW(cluster->run(), util::Error);
}

TEST_P(ClusterModeTest, RecvUntilTimesOut) {
  auto cluster = make_cluster(options());
  bool timed_out = false;
  cluster->add_process(0, [&](ProcessContext& ctx) {
    auto m = ctx.recv_until(MatchSpec{kAnyProc, 1}, ctx.now() + 0.05);
    timed_out = !m.has_value();
  });
  cluster->run();
  EXPECT_TRUE(timed_out);
}

TEST_P(ClusterModeTest, ValidatesUsage) {
  auto cluster = make_cluster(options());
  EXPECT_THROW(cluster->add_process(0, nullptr), util::InvalidArgument);
  EXPECT_THROW(cluster->run(), util::InvalidArgument);  // no processes
}

INSTANTIATE_TEST_SUITE_P(BothModes, ClusterModeTest,
                         ::testing::Values(ExecutionMode::RealThreads,
                                           ExecutionMode::VirtualTime),
                         [](const ::testing::TestParamInfo<ExecutionMode>& info) {
                           return info.param == ExecutionMode::RealThreads ? "RealThreads"
                                                                           : "VirtualTime";
                         });

TEST(VirtualMode, ComputeAdvancesVirtualClockPrecisely) {
  ClusterOptions o;
  o.mode = ExecutionMode::VirtualTime;
  auto cluster = make_cluster(o);
  cluster->add_process(0, [&](ProcessContext& ctx) {
    ctx.compute(2.5);
    EXPECT_DOUBLE_EQ(ctx.now(), 2.5);
  });
  cluster->run();
  EXPECT_DOUBLE_EQ(cluster->end_time(), 2.5);
}

TEST(VirtualMode, CopyChargesModeledCost) {
  ClusterOptions o;
  o.mode = ExecutionMode::VirtualTime;
  o.copy_cost = transport::CopyCostModel(1e-3, 1e9);  // 1 ms + 1 ns/byte
  auto cluster = make_cluster(o);
  cluster->add_process(0, [&](ProcessContext& ctx) {
    std::vector<double> a(1000), b(1000);
    ctx.copy(a.data(), b.data(), 8000);
    EXPECT_NEAR(ctx.now(), 1e-3 + 8e-6, 1e-12);
    ctx.charge_copy_cost(8000);
    EXPECT_NEAR(ctx.now(), 2 * (1e-3 + 8e-6), 1e-12);
  });
  cluster->run();
}

TEST(RealMode, NowIsWallClock) {
  ClusterOptions o;
  o.mode = ExecutionMode::RealThreads;
  auto cluster = make_cluster(o);
  cluster->add_process(0, [&](ProcessContext& ctx) {
    const double t0 = ctx.now();
    ctx.compute(5e-3);  // spin ~5 ms
    EXPECT_GT(ctx.now() - t0, 1e-3);
  });
  cluster->run();
  EXPECT_GT(cluster->end_time(), 0.0);
}

TEST(RealMode, ChargeCopyCostIsFree) {
  ClusterOptions o;
  o.mode = ExecutionMode::RealThreads;
  auto cluster = make_cluster(o);
  cluster->add_process(0, [&](ProcessContext& ctx) {
    const double t0 = ctx.now();
    ctx.charge_copy_cost(1 << 30);
    EXPECT_LT(ctx.now() - t0, 0.5);  // no gigabyte spin happened
  });
  cluster->run();
}

}  // namespace
}  // namespace ccf::runtime
