// ProcessCluster tests: genuinely forked OS processes over the real
// SHM+TCP transport. Bodies run in children, results ship back over the
// per-child ResultChannel pipe, and failures propagate to the launcher
// exactly as on the thread backend.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "runtime/cluster.hpp"
#include "transport/serialize.hpp"

namespace ccf::runtime {
namespace {

ClusterOptions process_options() {
  ClusterOptions o;
  o.mode = ExecutionMode::RealProcesses;
  o.transport.kind = transport::TransportKind::Real;
  return o;
}

TEST(ProcessCluster, PingPongAcrossForkedProcesses) {
  auto cluster = make_cluster(process_options());
  int got = 0;
  cluster->add_process(
      0,
      [&](ProcessContext& ctx) {
        transport::Writer w;
        w.put<int>(41);
        ctx.send(1, 5, w.take());
        Message m = ctx.recv(MatchSpec{1, 6});
        transport::Reader r(m.payload);
        got = r.get<int>();
      },
      ResultChannel{[&] {
                      transport::Writer w;
                      w.put<int>(got);
                      return w.take_bytes();
                    },
                    [&](const std::vector<std::byte>& bytes) {
                      transport::Reader r(
                          transport::make_payload(std::vector<std::byte>(bytes)));
                      got = r.get<int>();
                    }});
  cluster->add_process(1, [&](ProcessContext& ctx) {
    Message m = ctx.recv(MatchSpec{0, 5});
    transport::Reader r(m.payload);
    transport::Writer w;
    w.put<int>(r.get<int>() + 1);
    ctx.send(0, 6, w.take());
  });
  cluster->run();
  // The body ran in a forked child: without the channel the launcher-side
  // slot would still be 0.
  EXPECT_EQ(got, 42);
}

TEST(ProcessCluster, ResultsAreCopiedBackOnlyThroughTheChannel) {
  auto cluster = make_cluster(process_options());
  int with_channel = 0;
  int without_channel = 0;
  cluster->add_process(
      0, [&](ProcessContext&) { with_channel = 7; },
      ResultChannel{[&] {
                      transport::Writer w;
                      w.put<int>(with_channel);
                      return w.take_bytes();
                    },
                    [&](const std::vector<std::byte>& bytes) {
                      transport::Reader r(
                          transport::make_payload(std::vector<std::byte>(bytes)));
                      with_channel = r.get<int>();
                    }});
  cluster->add_process(1, [&](ProcessContext&) { without_channel = 7; });
  cluster->run();
  EXPECT_EQ(with_channel, 7);
  EXPECT_EQ(without_channel, 0) << "a child's write must not leak into the launcher";
}

TEST(ProcessCluster, ChildFailurePropagatesAndUnblocksSiblings) {
  auto cluster = make_cluster(process_options());
  cluster->add_process(0, [](ProcessContext&) {
    throw util::InvalidArgument("child says no");
  });
  cluster->add_process(1, [](ProcessContext& ctx) {
    (void)ctx.recv(MatchSpec{0, 1});  // never satisfied; teardown must free it
  });
  try {
    cluster->run();
    FAIL() << "expected the child error to rethrow in the launcher";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("child says no"), std::string::npos);
  }
}

TEST(ProcessCluster, ManyProcessesExchangeOverShmRings) {
  auto cluster = make_cluster(process_options());
  const int n = 4;
  std::vector<int> sums(static_cast<std::size_t>(n), 0);
  for (ProcId id = 0; id < n; ++id) {
    cluster->add_process(
        id,
        [&, id](ProcessContext& ctx) {
          for (ProcId peer = 0; peer < n; ++peer) {
            if (peer == id) continue;
            transport::Writer w;
            w.put<int>(static_cast<int>(id) + 1);
            ctx.send(peer, 3, w.take());
          }
          int sum = 0;
          for (int k = 0; k < n - 1; ++k) {
            Message m = ctx.recv(MatchSpec{transport::kAnyProc, 3});
            transport::Reader r(m.payload);
            sum += r.get<int>();
          }
          sums[static_cast<std::size_t>(id)] = sum;
        },
        ResultChannel{[&, id] {
                        transport::Writer w;
                        w.put<int>(sums[static_cast<std::size_t>(id)]);
                        return w.take_bytes();
                      },
                      [&, id](const std::vector<std::byte>& bytes) {
                        transport::Reader r(
                            transport::make_payload(std::vector<std::byte>(bytes)));
                        sums[static_cast<std::size_t>(id)] = r.get<int>();
                      }});
  }
  cluster->run();
  // Everyone receives (sum of all ids+1) minus its own contribution.
  const int total = n * (n + 1) / 2;
  for (int id = 0; id < n; ++id)
    EXPECT_EQ(sums[static_cast<std::size_t>(id)], total - (id + 1)) << "proc " << id;

  const auto c = cluster->transport_counters();
  EXPECT_EQ(c.decode_errors, 0u);
  EXPECT_EQ(c.shm_frames, static_cast<std::uint64_t>(n * (n - 1)));
  EXPECT_EQ(c.tcp_frames, 0u) << "single-node cluster must be socket-free";
}

TEST(ProcessCluster, CrossNodeProcessesExchangeOverTcp) {
  ClusterOptions o = process_options();
  o.transport.node_of = {{0, 0}, {1, 1}};
  auto cluster = make_cluster(o);
  int got = 0;
  cluster->add_process(
      0,
      [&](ProcessContext& ctx) {
        // A payload larger than the kernel socket buffers, first thing on
        // the fresh connection.
        std::vector<std::byte> big(524288);
        for (std::size_t i = 0; i < big.size(); ++i)
          big[i] = static_cast<std::byte>(i & 0xFF);
        ctx.send(1, 5, transport::make_payload(std::move(big)));
        Message m = ctx.recv(MatchSpec{1, 6});
        transport::Reader r(m.payload);
        got = r.get<int>();
      },
      ResultChannel{[&] {
                      transport::Writer w;
                      w.put<int>(got);
                      return w.take_bytes();
                    },
                    [&](const std::vector<std::byte>& bytes) {
                      transport::Reader r(
                          transport::make_payload(std::vector<std::byte>(bytes)));
                      got = r.get<int>();
                    }});
  cluster->add_process(1, [](ProcessContext& ctx) {
    Message m = ctx.recv(MatchSpec{0, 5});
    bool ok = m.payload.size() == 524288;
    for (std::size_t i = 0; ok && i < m.payload.size(); i += 4097)
      ok = m.payload.data()[i] == static_cast<std::byte>(i & 0xFF);
    transport::Writer w;
    w.put<int>(ok ? 1 : 0);
    ctx.send(0, 6, w.take());
  });
  cluster->run();
  EXPECT_EQ(got, 1);
  const auto c = cluster->transport_counters();
  EXPECT_GE(c.tcp_frames, 2u);
  EXPECT_EQ(c.decode_errors, 0u);
}

TEST(ProcessCluster, ValidatesUsage) {
  auto cluster = make_cluster(process_options());
  EXPECT_THROW(cluster->add_process(0, nullptr), util::InvalidArgument);
  EXPECT_THROW(cluster->run(), util::InvalidArgument);  // no processes
}

}  // namespace
}  // namespace ccf::runtime
