// Wave/diffusion solver tests: halo exchange correctness (parallel result
// equals serial result bit-for-bit), boundary handling, energy sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "collectives/communicator.hpp"
#include "collectives/reduce_ops.hpp"
#include "runtime/cluster.hpp"
#include "sim/forcing.hpp"
#include "sim/wave2d.hpp"

namespace ccf::sim {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;
using dist::Index;

/// Runs `steps` solver steps on an nprocs-way decomposition and returns
/// the full assembled field (gathered on the harness side).
std::vector<double> run_parallel(Index rows, Index cols, int nprocs, int steps) {
  const auto decomp = BlockDecomposition::make_grid(rows, cols, nprocs);
  runtime::ClusterOptions options;
  options.mode = runtime::ExecutionMode::VirtualTime;
  auto cluster = runtime::make_cluster(options);

  std::vector<double> assembled(static_cast<std::size_t>(rows * cols), 0.0);
  std::vector<transport::ProcId> peers;
  for (int r = 0; r < nprocs; ++r) peers.push_back(r);

  for (int rank = 0; rank < nprocs; ++rank) {
    cluster->add_process(rank, [&, rank](runtime::ProcessContext& ctx) {
      WaveSolver2D solver(decomp, rank, peers, /*dt=*/0.1);
      solver.set_initial([&](Index r, Index c) {
        return std::sin(0.3 * static_cast<double>(r)) * std::cos(0.2 * static_cast<double>(c));
      });
      ForcingField forcing(decomp, rank);
      for (int s = 0; s < steps; ++s) {
        forcing.fill(s * 0.1);
        solver.step(ctx, forcing.field());
      }
      const dist::Box box = solver.u().local_box();
      for (Index r = box.row_begin; r < box.row_end; ++r) {
        for (Index c = box.col_begin; c < box.col_end; ++c) {
          assembled[static_cast<std::size_t>(r * cols + c)] = solver.u().at(r, c);
        }
      }
    });
  }
  cluster->run();
  return assembled;
}

TEST(WaveSolver, ParallelMatchesSerialExactly) {
  const auto serial = run_parallel(16, 16, 1, 5);
  for (int nprocs : {2, 4, 6}) {
    const auto parallel = run_parallel(16, 16, nprocs, 5);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_DOUBLE_EQ(parallel[i], serial[i]) << "cell " << i << " nprocs " << nprocs;
    }
  }
}

TEST(WaveSolver, ZeroForcingZeroInitialStaysZero) {
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  runtime::ClusterOptions options;
  auto cluster = runtime::make_cluster(options);
  for (int rank = 0; rank < 2; ++rank) {
    cluster->add_process(rank, [&, rank](runtime::ProcessContext& ctx) {
      WaveSolver2D solver(decomp, rank, {0, 1}, 0.1);
      DistArray2D<double> zero_forcing(decomp, rank);
      for (int s = 0; s < 10; ++s) solver.step(ctx, zero_forcing);
      EXPECT_EQ(solver.local_energy(), 0.0);
      EXPECT_EQ(solver.steps_taken(), 10);
      EXPECT_NEAR(solver.time(), 1.0, 1e-12);
    });
  }
  cluster->run();
}

TEST(WaveSolver, ForcingInjectsEnergy) {
  const auto decomp = BlockDecomposition::make_grid(12, 12, 4);
  runtime::ClusterOptions options;
  auto cluster = runtime::make_cluster(options);
  std::vector<double> energies(4, 0.0);
  for (int rank = 0; rank < 4; ++rank) {
    cluster->add_process(rank, [&, rank](runtime::ProcessContext& ctx) {
      collectives::Communicator comm(ctx, {0, 1, 2, 3});
      WaveSolver2D solver(decomp, rank, {0, 1, 2, 3}, 0.05);
      ForcingField forcing(decomp, rank);
      for (int s = 0; s < 20; ++s) {
        forcing.fill(s * 0.05);
        solver.step(ctx, forcing.field());
      }
      energies[static_cast<std::size_t>(rank)] =
          comm.all_reduce_one(solver.local_energy(), collectives::Sum{});
    });
  }
  cluster->run();
  EXPECT_GT(energies[0], 0.0);
  // All ranks agree on the global energy.
  for (int r = 1; r < 4; ++r) EXPECT_DOUBLE_EQ(energies[static_cast<std::size_t>(r)], energies[0]);
}

TEST(WaveSolver, ValidatesConstruction) {
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  EXPECT_THROW(WaveSolver2D(decomp, 0, {0}, 0.1), util::InvalidArgument);  // peer count
  EXPECT_THROW(WaveSolver2D(decomp, 0, {0, 1}, 0.0), util::InvalidArgument);  // dt
}

TEST(Forcing, AnalyticValueIsSmoothAndBounded) {
  for (double t = 0; t < 50; t += 3.7) {
    for (double x = 0; x < 64; x += 13) {
      for (double y = 0; y < 64; y += 13) {
        const double v = ForcingField::value(t, x, y, 64, 64);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
}

TEST(Forcing, FillMatchesValue) {
  const auto decomp = BlockDecomposition::make_grid(8, 8, 4);
  ForcingField f(decomp, 2);
  f.fill(3.0);
  const dist::Box box = f.field().local_box();
  EXPECT_DOUBLE_EQ(f.field().at(box.row_begin, box.col_begin),
                   ForcingField::value(3.0, static_cast<double>(box.row_begin),
                                       static_cast<double>(box.col_begin), 8, 8));
}

TEST(Forcing, TouchStampsTimestamp) {
  const auto decomp = BlockDecomposition::make_grid(8, 8, 4);
  ForcingField f(decomp, 1);
  f.touch(7.25);
  EXPECT_DOUBLE_EQ(f.field().data()[0], 7.25);
  f.touch(8.25);
  EXPECT_DOUBLE_EQ(f.field().data()[0], 8.25);
}

}  // namespace
}  // namespace ccf::sim
