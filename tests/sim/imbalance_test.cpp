// Load-imbalance model tests: determinism, pattern shapes, validation.
#include <gtest/gtest.h>

#include "sim/imbalance.hpp"

namespace ccf::sim {
namespace {

TEST(Imbalance, ParseAndPrint) {
  EXPECT_EQ(parse_imbalance("constant"), ImbalanceKind::Constant);
  EXPECT_EQ(parse_imbalance("rotating"), ImbalanceKind::Rotating);
  EXPECT_EQ(to_string(ImbalanceKind::Burst), "burst");
  EXPECT_THROW(parse_imbalance("nope"), util::InvalidArgument);
}

TEST(Imbalance, ConstantMatchesPaperSetup) {
  ImbalanceModel m;
  m.kind = ImbalanceKind::Constant;
  m.slow_factor = 2.5;
  for (int iter = 0; iter < 10; ++iter) {
    EXPECT_DOUBLE_EQ(m.factor(0, 4, iter), 1.0);
    EXPECT_DOUBLE_EQ(m.factor(2, 4, iter), 1.0);
    EXPECT_DOUBLE_EQ(m.factor(3, 4, iter), 2.5);  // default: last rank
  }
  m.slow_rank = 1;
  EXPECT_DOUBLE_EQ(m.factor(1, 4, 0), 2.5);
  EXPECT_DOUBLE_EQ(m.factor(3, 4, 0), 1.0);
}

TEST(Imbalance, JitterIsDeterministicAndBounded) {
  ImbalanceModel m;
  m.kind = ImbalanceKind::Jitter;
  m.amplitude = 0.5;
  m.seed = 7;
  for (int rank = 0; rank < 4; ++rank) {
    for (int iter = 0; iter < 100; ++iter) {
      const double f = m.factor(rank, 4, iter);
      EXPECT_GE(f, 1.0);
      EXPECT_LT(f, 1.5);
      EXPECT_DOUBLE_EQ(f, m.factor(rank, 4, iter));  // deterministic
    }
  }
  // Different seeds give different draws.
  ImbalanceModel m2 = m;
  m2.seed = 8;
  int diffs = 0;
  for (int iter = 0; iter < 50; ++iter) {
    if (m.factor(0, 4, iter) != m2.factor(0, 4, iter)) ++diffs;
  }
  EXPECT_GT(diffs, 40);
}

TEST(Imbalance, RotatingCyclesThroughRanks) {
  ImbalanceModel m;
  m.kind = ImbalanceKind::Rotating;
  m.slow_factor = 3.0;
  m.period = 10;
  // Iterations 0-9: rank 0 slow; 10-19: rank 1; wraps at nprocs.
  EXPECT_DOUBLE_EQ(m.factor(0, 3, 5), 3.0);
  EXPECT_DOUBLE_EQ(m.factor(1, 3, 5), 1.0);
  EXPECT_DOUBLE_EQ(m.factor(1, 3, 15), 3.0);
  EXPECT_DOUBLE_EQ(m.factor(2, 3, 25), 3.0);
  EXPECT_DOUBLE_EQ(m.factor(0, 3, 35), 3.0);  // wrapped
}

TEST(Imbalance, BurstDutyCycle) {
  ImbalanceModel m;
  m.kind = ImbalanceKind::Burst;
  m.slow_factor = 2.0;
  m.period = 10;
  m.duty = 0.3;
  int slow_iters = 0;
  for (int iter = 0; iter < 100; ++iter) {
    if (m.factor(3, 4, iter) > 1.0) ++slow_iters;
  }
  EXPECT_EQ(slow_iters, 30);  // 3 of every 10
  EXPECT_DOUBLE_EQ(m.factor(0, 4, 0), 1.0);  // only the straggler bursts
}

TEST(Imbalance, SlowJitterCombines) {
  ImbalanceModel m;
  m.kind = ImbalanceKind::SlowJitter;
  m.slow_factor = 2.0;
  m.amplitude = 0.25;
  const double f_slow = m.factor(3, 4, 0);
  const double f_fast = m.factor(0, 4, 0);
  EXPECT_GE(f_slow, 2.0);
  EXPECT_LT(f_slow, 2.25);
  EXPECT_GE(f_fast, 1.0);
  EXPECT_LT(f_fast, 1.25);
}

TEST(Imbalance, Validation) {
  ImbalanceModel m;
  EXPECT_THROW(m.factor(4, 4, 0), util::InvalidArgument);
  m.slow_factor = 0.5;
  EXPECT_THROW(m.factor(0, 4, 0), util::InvalidArgument);
  m.slow_factor = 2.0;
  m.kind = ImbalanceKind::Rotating;
  m.period = 0;
  EXPECT_THROW(m.factor(0, 4, 0), util::InvalidArgument);
}

}  // namespace
}  // namespace ccf::sim
