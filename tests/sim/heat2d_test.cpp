// Heat solver tests: parallel-vs-serial exactness, analytic decay of a
// sine eigenmode, stability validation, maximum-principle sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/cluster.hpp"
#include "sim/heat2d.hpp"

namespace ccf::sim {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;
using dist::Index;

constexpr double kPi = 3.14159265358979323846;

std::vector<double> run_heat(Index n, int nprocs, int steps, double alpha, double dt) {
  const auto decomp = BlockDecomposition::make_grid(n, n, nprocs);
  auto cluster = runtime::make_cluster(runtime::ClusterOptions{});
  std::vector<double> assembled(static_cast<std::size_t>(n * n), 0.0);
  std::vector<transport::ProcId> peers;
  for (int r = 0; r < nprocs; ++r) peers.push_back(r);
  for (int rank = 0; rank < nprocs; ++rank) {
    cluster->add_process(rank, [&, rank](runtime::ProcessContext& ctx) {
      HeatSolver2D solver(decomp, rank, peers, alpha, dt);
      // Discrete sine eigenmode of the Dirichlet Laplacian on the
      // (n+1)-point lattice (u=0 on the boundary ring outside the domain).
      solver.set_initial([&](Index r, Index c) {
        return std::sin(kPi * static_cast<double>(r + 1) / static_cast<double>(n + 1)) *
               std::sin(kPi * static_cast<double>(c + 1) / static_cast<double>(n + 1));
      });
      DistArray2D<double> zero_forcing(decomp, rank);
      for (int s = 0; s < steps; ++s) solver.step(ctx, zero_forcing);
      const dist::Box box = solver.u().local_box();
      for (Index r = box.row_begin; r < box.row_end; ++r) {
        for (Index c = box.col_begin; c < box.col_end; ++c) {
          assembled[static_cast<std::size_t>(r * n + c)] = solver.u().at(r, c);
        }
      }
    });
  }
  cluster->run();
  return assembled;
}

TEST(HeatSolver, ParallelMatchesSerialExactly) {
  const auto serial = run_heat(12, 1, 6, 0.2, 0.5);
  for (int nprocs : {2, 4, 6}) {
    const auto parallel = run_heat(12, nprocs, 6, 0.2, 0.5);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_DOUBLE_EQ(parallel[i], serial[i]) << "cell " << i << " nprocs " << nprocs;
    }
  }
}

TEST(HeatSolver, SineModeDecaysAtDiscreteRate) {
  // The discrete eigenmode decays by a known factor per explicit-Euler
  // step: lambda = 1 - 4 alpha dt (1 - cos(pi/(n+1))) * 2 ... for the 2-D
  // mode, factor = 1 + alpha dt (2 cos(pi h') - 2 + 2 cos(pi h') - 2)
  // with h' = 1/(n+1). Verify the measured per-step ratio matches.
  const Index n = 16;
  const double alpha = 0.2, dt = 0.5;
  const int steps = 10;
  const auto u = run_heat(n, 4, steps, alpha, dt);
  const double mode = 2.0 * (std::cos(kPi / static_cast<double>(n + 1)) - 1.0);
  const double factor = 1.0 + alpha * dt * 2.0 * mode;  // per step
  const double expected = std::pow(factor, steps);
  // Compare at the center cell against the initial mode value there.
  const Index rc = n / 2;
  const double init = std::sin(kPi * static_cast<double>(rc + 1) / static_cast<double>(n + 1)) *
                      std::sin(kPi * static_cast<double>(rc + 1) / static_cast<double>(n + 1));
  const double measured = u[static_cast<std::size_t>(rc * n + rc)] / init;
  EXPECT_NEAR(measured, expected, 1e-9);
}

TEST(HeatSolver, MaximumPrincipleWithoutForcing) {
  // Without forcing, values stay within the initial range (stable scheme).
  const auto u = run_heat(10, 2, 20, 0.25, 1.0);  // dt exactly at the limit
  for (double v : u) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(HeatSolver, RejectsUnstableTimeStep) {
  const auto decomp = BlockDecomposition::make_grid(8, 8, 1);
  EXPECT_THROW(HeatSolver2D(decomp, 0, {0}, 1.0, 0.3), util::InvalidArgument);
  EXPECT_THROW(HeatSolver2D(decomp, 0, {0}, -1.0, 0.1), util::InvalidArgument);
  EXPECT_THROW(HeatSolver2D(decomp, 0, {0, 1}, 0.2, 0.5), util::InvalidArgument);
}

TEST(HeatSolver, ForcingRaisesSolution) {
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  auto cluster = runtime::make_cluster(runtime::ClusterOptions{});
  std::vector<double> sums(2, 0.0);
  for (int rank = 0; rank < 2; ++rank) {
    cluster->add_process(rank, [&, rank](runtime::ProcessContext& ctx) {
      HeatSolver2D solver(decomp, rank, {0, 1}, 0.25, 0.5);
      DistArray2D<double> forcing(decomp, rank);
      forcing.fill([](Index, Index) { return 1.0; });
      for (int s = 0; s < 5; ++s) solver.step(ctx, forcing);
      sums[static_cast<std::size_t>(rank)] = solver.local_sum();
      EXPECT_GT(solver.local_max_abs(), 0.0);
      EXPECT_EQ(solver.steps_taken(), 5);
    });
  }
  cluster->run();
  EXPECT_GT(sums[0] + sums[1], 0.0);
}

}  // namespace
}  // namespace ccf::sim
