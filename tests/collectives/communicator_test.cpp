// Collective-operations tests, parameterized over execution mode and group
// size (including non-power-of-two sizes, which exercise the binomial-tree
// edge cases).
#include <gtest/gtest.h>

#include <mutex>
#include <numeric>

#include "collectives/communicator.hpp"
#include "collectives/reduce_ops.hpp"
#include "runtime/cluster.hpp"

namespace ccf::collectives {
namespace {

using runtime::ClusterOptions;
using runtime::ExecutionMode;
using runtime::ProcessContext;

struct Param {
  ExecutionMode mode;
  int size;
};

class CollectivesTest : public ::testing::TestWithParam<Param> {
 protected:
  /// Runs `body(rank, comm)` on every member of a communicator of the
  /// parameterized size under the parameterized execution mode.
  template <typename Body>
  void run_group(Body&& body) {
    ClusterOptions options;
    options.mode = GetParam().mode;
    auto cluster = runtime::make_cluster(options);
    std::vector<ProcId> members(static_cast<std::size_t>(GetParam().size));
    std::iota(members.begin(), members.end(), 0);
    for (ProcId id : members) {
      cluster->add_process(id, [&, id, members](ProcessContext& ctx) {
        Communicator comm(ctx, members);
        body(static_cast<int>(id), comm);
      });
    }
    cluster->run();
  }
};

TEST_P(CollectivesTest, BroadcastFromEveryRoot) {
  run_group([&](int rank, Communicator& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<int> data;
      if (rank == root) data = {root * 100, root * 100 + 1};
      comm.broadcast(data, root);
      ASSERT_EQ(data.size(), 2u);
      EXPECT_EQ(data[0], root * 100);
      EXPECT_EQ(data[1], root * 100 + 1);
    }
  });
}

TEST_P(CollectivesTest, BarrierCompletes) {
  run_group([&](int, Communicator& comm) {
    for (int i = 0; i < 3; ++i) comm.barrier();
  });
  SUCCEED();
}

TEST_P(CollectivesTest, GatherConcatenatesInRankOrder) {
  run_group([&](int rank, Communicator& comm) {
    // Variable-length contributions: rank r sends r+1 values of r.
    std::vector<int> local(static_cast<std::size_t>(rank + 1), rank);
    auto all = comm.gather(local, 0);
    if (rank == 0) {
      std::vector<int> expect;
      for (int r = 0; r < comm.size(); ++r) {
        for (int i = 0; i <= r; ++i) expect.push_back(r);
      }
      EXPECT_EQ(all, expect);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesTest, AllGather) {
  run_group([&](int rank, Communicator& comm) {
    std::vector<double> local{static_cast<double>(rank) * 2.0};
    auto all = comm.all_gather(local);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r * 2.0);
    }
  });
}

TEST_P(CollectivesTest, ScatterDistributesChunks) {
  run_group([&](int rank, Communicator& comm) {
    std::vector<int> all;
    if (rank == 0) {
      for (int r = 0; r < comm.size(); ++r) {
        all.push_back(r * 10);
        all.push_back(r * 10 + 1);
      }
    }
    auto mine = comm.scatter(all, 2, 0);
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_EQ(mine[0], rank * 10);
    EXPECT_EQ(mine[1], rank * 10 + 1);
  });
}

TEST_P(CollectivesTest, ReduceSumToRoot) {
  run_group([&](int rank, Communicator& comm) {
    std::vector<long long> data{rank + 1, 10 * (rank + 1)};
    comm.reduce(data, 0, Sum{});
    if (rank == 0) {
      const long long n = comm.size();
      EXPECT_EQ(data[0], n * (n + 1) / 2);
      EXPECT_EQ(data[1], 10 * n * (n + 1) / 2);
    }
  });
}

TEST_P(CollectivesTest, AllReduceMinMax) {
  run_group([&](int rank, Communicator& comm) {
    EXPECT_EQ(comm.all_reduce_one(rank, Max{}), comm.size() - 1);
    EXPECT_EQ(comm.all_reduce_one(rank, Min{}), 0);
    EXPECT_EQ(comm.all_reduce_one(1, Sum{}), comm.size());
  });
}

TEST_P(CollectivesTest, ScanIsInclusivePrefix) {
  run_group([&](int rank, Communicator& comm) {
    std::vector<int> data{rank + 1};
    comm.scan(data, Sum{});
    EXPECT_EQ(data[0], (rank + 1) * (rank + 2) / 2);
  });
}

TEST_P(CollectivesTest, AllToAllPersonalized) {
  run_group([&](int rank, Communicator& comm) {
    std::vector<std::vector<int>> send(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      send[static_cast<std::size_t>(r)] = {rank * 100 + r};
    }
    auto recv = comm.all_to_all(send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      ASSERT_EQ(recv[static_cast<std::size_t>(r)].size(), 1u);
      EXPECT_EQ(recv[static_cast<std::size_t>(r)][0], r * 100 + rank);
    }
  });
}

TEST_P(CollectivesTest, BackToBackCollectivesDoNotCrossMatch) {
  run_group([&](int rank, Communicator& comm) {
    // Two broadcasts in flight back-to-back with different payload sizes;
    // sequence-tagged messages must not cross.
    std::vector<int> big(100, rank == 0 ? 7 : 0);
    std::vector<int> small(1, rank == 0 ? 9 : 0);
    comm.broadcast(big, 0);
    comm.broadcast(small, 0);
    EXPECT_EQ(big[99], 7);
    EXPECT_EQ(small[0], 9);
  });
}

TEST_P(CollectivesTest, ExclusiveScan) {
  run_group([&](int rank, Communicator& comm) {
    std::vector<int> data{rank + 1};
    comm.exclusive_scan(data, 0, Sum{});
    EXPECT_EQ(data[0], rank * (rank + 1) / 2);  // sum of 1..rank
  });
}

TEST_P(CollectivesTest, ReduceScatter) {
  run_group([&](int rank, Communicator& comm) {
    // Every rank contributes [1, 2, ..., 2*size]; the reduction is
    // size * i, and rank r gets its 2-element chunk.
    std::vector<long long> data;
    for (int i = 1; i <= 2 * comm.size(); ++i) data.push_back(i);
    const auto mine = comm.reduce_scatter(data, 2, Sum{});
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_EQ(mine[0], static_cast<long long>(comm.size()) * (2 * rank + 1));
    EXPECT_EQ(mine[1], static_cast<long long>(comm.size()) * (2 * rank + 2));
  });
}

TEST_P(CollectivesTest, SplitEvenOdd) {
  run_group([&](int rank, Communicator& comm) {
    Communicator sub = comm.split(rank % 2, /*key=*/rank, /*tag_color=*/1 + rank % 2);
    const int expected_size = comm.size() / 2 + ((comm.size() % 2) && (rank % 2 == 0) ? 1 : 0);
    EXPECT_EQ(sub.size(), expected_size);
    EXPECT_EQ(sub.rank(), rank / 2);
    // Sub-communicator collectives work and stay within the group.
    const int group_sum = sub.all_reduce_one(rank, Sum{});
    int expect = 0;
    for (int r = rank % 2; r < comm.size(); r += 2) expect += r;
    EXPECT_EQ(group_sum, expect);
  });
}

TEST_P(CollectivesTest, SplitReversedKeysReverseRanks) {
  run_group([&](int rank, Communicator& comm) {
    // All members in one group, keys descending with rank.
    Communicator sub = comm.split(0, /*key=*/-rank, /*tag_color=*/3);
    EXPECT_EQ(sub.size(), comm.size());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - rank);
  });
}

TEST_P(CollectivesTest, PointToPointByRank) {
  run_group([&](int rank, Communicator& comm) {
    if (comm.size() == 1) return;
    // Ring shift by rank.
    const int next = (rank + 1) % comm.size();
    const int prev = (rank + comm.size() - 1) % comm.size();
    comm.send_to(next, 99, std::vector<int>{rank});
    const auto got = comm.recv_from<int>(prev, 99);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], prev);
  });
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(info.param.mode == ExecutionMode::RealThreads ? "Threads" : "Virtual") +
         "_P" + std::to_string(info.param.size);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectivesTest,
    ::testing::Values(Param{ExecutionMode::VirtualTime, 1}, Param{ExecutionMode::VirtualTime, 2},
                      Param{ExecutionMode::VirtualTime, 3}, Param{ExecutionMode::VirtualTime, 4},
                      Param{ExecutionMode::VirtualTime, 7}, Param{ExecutionMode::VirtualTime, 8},
                      Param{ExecutionMode::VirtualTime, 13},
                      Param{ExecutionMode::RealThreads, 3},
                      Param{ExecutionMode::RealThreads, 8}),
    param_name);

TEST(CommunicatorValidation, RejectsNonMembersAndDuplicates) {
  runtime::ClusterOptions options;
  options.mode = ExecutionMode::VirtualTime;
  auto cluster = runtime::make_cluster(options);
  cluster->add_process(0, [](ProcessContext& ctx) {
    EXPECT_THROW(Communicator(ctx, {1, 2}), util::InvalidArgument);  // not a member
    EXPECT_THROW(Communicator(ctx, {0, 0}), util::InvalidArgument);  // duplicate
    EXPECT_THROW(Communicator(ctx, {}), util::InvalidArgument);      // empty
    EXPECT_THROW(Communicator(ctx, {0}, 999), util::InvalidArgument);  // bad color
    Communicator ok(ctx, {0});
    EXPECT_EQ(ok.rank(), 0);
    EXPECT_EQ(ok.size(), 1);
    EXPECT_THROW(ok.proc_at(1), util::InvalidArgument);
  });
  cluster->run();
}

}  // namespace
}  // namespace ccf::collectives
