// Sub-region (windowed) transfer tests: a connection carrying only a
// boundary strip or interior patch of the exporter's domain — the paper's
// "shared boundaries or overlapped regions between physical models".
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::Box;
using dist::DistArray2D;
using dist::Index;

double cell_value(Timestamp t, Index r, Index c) {
  return t * 1e6 + static_cast<double>(r) * 1000 + static_cast<double>(c);
}

struct WindowCase {
  Box window;            // in exporter coordinates
  int exp_procs;
  int imp_procs;
};

class WindowedTransfer : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowedTransfer, StripArrivesTranslatedAndIntact) {
  const WindowCase& wc = GetParam();
  const Index rows = 24, cols = 24;

  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", wc.exp_procs, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", wc.imp_procs, {}});
  ConnectionSpec spec{"E", "r", "I", "strip", MatchPolicy::REGL, 0.5};
  spec.exporter_window = wc.window;
  config.add_connection(spec);

  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  const auto e_decomp = BlockDecomposition::make_grid(rows, cols, wc.exp_procs);
  const auto i_decomp =
      BlockDecomposition::make_grid(wc.window.rows(), wc.window.cols(), wc.imp_procs);

  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (int k = 1; k <= 6; ++k) {
      data.fill([&](Index r, Index c) { return cell_value(k, r, c); });
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });

  std::vector<int> errors(static_cast<std::size_t>(wc.imp_procs), 0);
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("strip", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    for (double x : {2.0, 5.0}) {
      const auto st = rt.import_region("strip", x, data);
      if (!st.ok()) {
        errors[static_cast<std::size_t>(rt.rank())] += 1000;
        continue;
      }
      // Importer index (r, c) holds exporter cell (r + window.row_begin,
      // c + window.col_begin) of version x.
      const Box box = data.local_box();
      for (Index r = box.row_begin; r < box.row_end; ++r) {
        for (Index c = box.col_begin; c < box.col_end; ++c) {
          const double expect =
              cell_value(x, r + wc.window.row_begin, c + wc.window.col_begin);
          if (data.at(r, c) != expect) errors[static_cast<std::size_t>(rt.rank())]++;
        }
      }
    }
    rt.finalize();
  });
  system.run();
  for (int r = 0; r < wc.imp_procs; ++r) {
    EXPECT_EQ(errors[static_cast<std::size_t>(r)], 0) << "importer rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowedTransfer,
    ::testing::Values(WindowCase{Box{0, 4, 0, 24}, 4, 2},     // north boundary strip
                      WindowCase{Box{20, 24, 0, 24}, 4, 2},   // south boundary strip
                      WindowCase{Box{0, 24, 21, 24}, 4, 3},   // east column strip
                      WindowCase{Box{8, 16, 8, 16}, 4, 4},    // interior patch
                      WindowCase{Box{0, 24, 0, 24}, 4, 2},    // explicit full domain
                      WindowCase{Box{6, 7, 6, 7}, 9, 1}),     // single cell
    [](const ::testing::TestParamInfo<WindowCase>& info) {
      const Box& w = info.param.window;
      return "w" + std::to_string(w.row_begin) + "_" + std::to_string(w.row_end) + "_" +
             std::to_string(w.col_begin) + "_" + std::to_string(w.col_end) + "_E" +
             std::to_string(info.param.exp_procs) + "I" + std::to_string(info.param.imp_procs);
    });

TEST(WindowedTransfer, NonContributingProcessesSkipAllBuffering) {
  // A 2x2 exporter grid with a window entirely inside rank 0's block:
  // ranks 1-3 participate in the protocol but never copy a snapshot.
  const Index n = 16;
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", 4, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", 1, {}});
  ConnectionSpec spec{"E", "r", "I", "patch", MatchPolicy::REGL, 0.5};
  spec.exporter_window = Box{0, 4, 0, 4};  // inside rank 0's [0,8)x[0,8)
  config.add_connection(spec);

  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  const auto e_decomp = BlockDecomposition::make_grid(n, n, 4);
  const auto i_decomp = BlockDecomposition::make_grid(4, 4, 1);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (int k = 1; k <= 10; ++k) rt.export_region("r", k, data);
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("patch", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    EXPECT_TRUE(rt.import_region("patch", 5.0, data).ok());
    rt.finalize();
  });
  system.run();

  EXPECT_GT(system.proc_stats("E", 0).exports.at(0).buffer.stores, 0u);
  for (int r = 1; r < 4; ++r) {
    const auto& stats = system.proc_stats("E", r).exports.at(0);
    EXPECT_EQ(stats.buffer.stores, 0u) << "rank " << r;
    EXPECT_EQ(stats.transfers, 0u) << "rank " << r;
    EXPECT_EQ(stats.buffer.skips, 10u) << "rank " << r;
  }
}

TEST(WindowedTransfer, GeometryValidation) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", 1, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", 1, {}});
  ConnectionSpec spec{"E", "r", "I", "s", MatchPolicy::REGL, 0.5};
  spec.exporter_window = Box{0, 4, 0, 40};  // escapes the 16x16 exporter domain
  config.add_connection(spec);
  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_export_region("r", BlockDecomposition::make_grid(16, 16, 1));
    rt.commit();
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("s", BlockDecomposition::make_grid(4, 40, 1));
    rt.commit();
    rt.finalize();
  });
  EXPECT_THROW(system.run(), util::InvalidArgument);
}

TEST(WindowedTransfer, ConfigFileSyntax) {
  const Config config = Config::parse_string(
      "E h /e 4\nI h /i 2\n#\nE.r I.strip REGL 0.5 0 4 0 24\n");
  ASSERT_EQ(config.connections().size(), 1u);
  const auto& window = config.connections()[0].exporter_window;
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(*window, (Box{0, 4, 0, 24}));
  // Malformed windows rejected.
  EXPECT_THROW(Config::parse_string("E h /e 1\nI h /i 1\n#\nE.r I.s REGL 0.5 4 0 0 24\n"),
               util::InvalidArgument);  // empty (r1 < r0)
  EXPECT_THROW(Config::parse_string("E h /e 1\nI h /i 1\n#\nE.r I.s REGL 0.5 0 4\n"),
               util::InvalidArgument);  // wrong arity
}

}  // namespace
}  // namespace ccf::core
