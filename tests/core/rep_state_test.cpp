// Representative aggregation tests: the five legal response aggregates,
// Property-1 violation detection (failure injection), and buddy-help
// issuance rules.
#include <gtest/gtest.h>

#include "core/rep_state.hpp"
#include "util/check.hpp"

namespace ccf::core {
namespace {

RequestMsg request(std::uint32_t seq, Timestamp x) { return RequestMsg{0, seq, x}; }

ResponseMsg pending(std::uint32_t seq, Timestamp latest) {
  return ResponseMsg{0, seq, MatchResult::Pending, kNeverExported, latest};
}

ResponseMsg match(std::uint32_t seq, Timestamp m) {
  return ResponseMsg{0, seq, MatchResult::Match, m, m + 1};
}

ResponseMsg no_match(std::uint32_t seq) {
  return ResponseMsg{0, seq, MatchResult::NoMatch, kNeverExported, 100.0};
}

TEST(RepState, AllMatchAnswersOnFirstDecisive) {
  RequestAggregator agg(4, /*buddy_help=*/true);
  agg.open(request(0, 20.0));
  auto a0 = agg.on_response(0, match(0, 19.6));
  ASSERT_TRUE(a0.answer_importer.has_value());
  EXPECT_EQ(a0.answer_importer->result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a0.answer_importer->matched, 19.6);
  EXPECT_TRUE(a0.buddy_help_ranks.empty());  // nobody was pending
  // Subsequent agreeing responses produce no further actions.
  for (int r = 1; r < 4; ++r) {
    auto a = agg.on_response(r, match(0, 19.6));
    EXPECT_FALSE(a.answer_importer.has_value());
    EXPECT_TRUE(a.buddy_help_ranks.empty());
  }
  EXPECT_TRUE(agg.is_answered(0));
}

TEST(RepState, PendingPlusMatchTriggersBuddyHelp) {
  RequestAggregator agg(4, true);
  agg.open(request(0, 20.0));
  EXPECT_TRUE(agg.on_response(3, pending(0, 14.6)).buddy_help_ranks.empty());
  EXPECT_TRUE(agg.on_response(2, pending(0, 15.6)).buddy_help_ranks.empty());
  auto a = agg.on_response(0, match(0, 19.6));
  ASSERT_TRUE(a.answer_importer.has_value());
  // Both pending ranks get helped, exactly once.
  std::vector<int> helped = a.buddy_help_ranks;
  std::sort(helped.begin(), helped.end());
  EXPECT_EQ(helped, (std::vector<int>{2, 3}));
  EXPECT_EQ(agg.buddy_helps_issued(), 2u);
}

TEST(RepState, LatePendingAfterAnswerIsHelpedImmediately) {
  RequestAggregator agg(4, true);
  agg.open(request(0, 20.0));
  agg.on_response(0, match(0, 19.6));
  auto a = agg.on_response(3, pending(0, 10.0));
  EXPECT_EQ(a.buddy_help_ranks, std::vector<int>{3});
  // The same rank is never helped twice.
  auto b = agg.on_response(3, pending(0, 11.0));
  EXPECT_TRUE(b.buddy_help_ranks.empty());
}

TEST(RepState, BuddyHelpDisabledIssuesNothing) {
  RequestAggregator agg(4, false);
  agg.open(request(0, 20.0));
  agg.on_response(3, pending(0, 14.6));
  auto a = agg.on_response(0, match(0, 19.6));
  ASSERT_TRUE(a.answer_importer.has_value());
  EXPECT_TRUE(a.buddy_help_ranks.empty());
  auto b = agg.on_response(2, pending(0, 15.0));
  EXPECT_TRUE(b.buddy_help_ranks.empty());
  EXPECT_EQ(agg.buddy_helps_issued(), 0u);
}

TEST(RepState, PendingPlusNoMatchIsLegal) {
  RequestAggregator agg(3, true);
  agg.open(request(0, 20.0));
  agg.on_response(1, pending(0, 5.0));
  auto a = agg.on_response(0, no_match(0));
  ASSERT_TRUE(a.answer_importer.has_value());
  EXPECT_EQ(a.answer_importer->result, MatchResult::NoMatch);
  EXPECT_EQ(a.buddy_help_ranks, std::vector<int>{1});
  // Straggler later agrees decisively: fine.
  EXPECT_NO_THROW(agg.on_response(2, no_match(0)));
}

// --- failure injection: the illegal aggregates -----------------------------

TEST(RepState, MatchPlusNoMatchViolatesProperty1) {
  RequestAggregator agg(2, true);
  agg.open(request(0, 20.0));
  agg.on_response(0, match(0, 19.6));
  EXPECT_THROW(agg.on_response(1, no_match(0)), util::ProtocolViolation);
}

TEST(RepState, DifferentMatchTimestampsViolateProperty1) {
  RequestAggregator agg(2, true);
  agg.open(request(0, 20.0));
  agg.on_response(0, match(0, 19.6));
  try {
    agg.on_response(1, match(0, 18.6));
    FAIL() << "expected ProtocolViolation";
  } catch (const util::ProtocolViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("19.6"), std::string::npos);
    EXPECT_NE(what.find("18.6"), std::string::npos);
  }
}

TEST(RepState, NoMatchThenMatchAlsoViolates) {
  RequestAggregator agg(2, true);
  agg.open(request(0, 20.0));
  agg.on_response(0, no_match(0));
  EXPECT_THROW(agg.on_response(1, match(0, 19.6)), util::ProtocolViolation);
}

TEST(RepState, ResponseForUnknownRequestIsInternalError) {
  RequestAggregator agg(2, true);
  EXPECT_THROW(agg.on_response(0, match(7, 19.6)), util::InternalError);
}

TEST(RepState, DuplicateOpenRejected) {
  RequestAggregator agg(2, true);
  agg.open(request(0, 20.0));
  EXPECT_THROW(agg.open(request(0, 40.0)), util::InvalidArgument);
}

TEST(RepState, RankRangeValidated) {
  RequestAggregator agg(2, true);
  agg.open(request(0, 20.0));
  EXPECT_THROW(agg.on_response(2, match(0, 19.6)), util::InvalidArgument);
  EXPECT_THROW(agg.on_response(-1, match(0, 19.6)), util::InvalidArgument);
}

TEST(RepState, MultipleRequestsIndependent) {
  RequestAggregator agg(2, true);
  agg.open(request(0, 20.0));
  agg.open(request(1, 40.0));
  agg.on_response(1, pending(0, 10.0));
  agg.on_response(1, pending(1, 10.0));
  auto a0 = agg.on_response(0, match(0, 19.6));
  auto a1 = agg.on_response(0, match(1, 39.6));
  ASSERT_TRUE(a0.answer_importer && a1.answer_importer);
  EXPECT_DOUBLE_EQ(a0.answer_importer->matched, 19.6);
  EXPECT_DOUBLE_EQ(a1.answer_importer->matched, 39.6);
  EXPECT_EQ(agg.answer_of(1).requested, 40.0);
}

TEST(RepState, AllPendingWaitsForDecisiveUpdate) {
  RequestAggregator agg(3, true);
  agg.open(request(0, 20.0));
  for (int r = 0; r < 3; ++r) {
    EXPECT_FALSE(agg.on_response(r, pending(0, 5.0)).answer_importer.has_value());
  }
  EXPECT_FALSE(agg.is_answered(0));
  // First decisive update (from any rank) resolves it, the remaining
  // pending ranks are helped.
  auto a = agg.on_response(1, match(0, 19.6));
  ASSERT_TRUE(a.answer_importer.has_value());
  std::vector<int> helped = a.buddy_help_ranks;
  std::sort(helped.begin(), helped.end());
  EXPECT_EQ(helped, (std::vector<int>{0, 2}));
}

}  // namespace
}  // namespace ccf::core
