// Finite buffer space tests (paper §6 future work): backpressure stalls,
// cap enforcement, connection-close releases, and the safe-to-stall
// exception that keeps the system deadlock-free.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;

Config make_config(int exp_procs, int imp_procs) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", exp_procs, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", imp_procs, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", MatchPolicy::REGL, 0.5});
  return config;
}

TEST(FiniteBuffer, CapBoundsPeakOccupancyViaStalls) {
  // Importer much slower: unbounded mode buffers everything; with a cap
  // the exporter stalls until requests free space.
  const dist::Index side = 16;
  const auto decomp = BlockDecomposition::make_grid(side, side, 2);
  const std::size_t snapshot =
      static_cast<std::size_t>(decomp.box_of(0).count()) * sizeof(double);

  auto run = [&](std::size_t cap) {
    Config config = make_config(2, 2);
    FrameworkOptions fw;
    fw.max_buffered_bytes = cap;
    CoupledSystem system(config, runtime::ClusterOptions{}, fw);
    system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
      rt.define_export_region("r", decomp);
      rt.commit();
      DistArray2D<double> data(decomp, rt.rank());
      for (int k = 1; k <= 60; ++k) {
        ctx.compute(1e-6);
        data.fill([&](dist::Index, dist::Index) { return static_cast<double>(k); });
        rt.export_region("r", k, data);
      }
      rt.finalize();
    });
    system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
      rt.define_import_region("r", decomp);
      rt.commit();
      DistArray2D<double> out(decomp, rt.rank());
      ctx.compute(5e-3);  // slow start: exporter races ahead
      for (double x : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
        const auto st = rt.import_region("r", x, out);
        EXPECT_TRUE(st.ok());
        EXPECT_DOUBLE_EQ(out.data()[0], st.matched);
        ctx.compute(5e-3);
      }
      rt.finalize();
    });
    system.run();
    return system.proc_stats("E", 0).exports.at(0);
  };

  const auto unbounded = run(0);
  EXPECT_EQ(unbounded.stalls, 0u);
  EXPECT_GT(unbounded.buffer.peak_bytes, 8 * snapshot);

  const auto capped = run(8 * snapshot);
  EXPECT_GT(capped.stalls, 0u);
  EXPECT_GT(capped.stall_seconds, 0.0);
  EXPECT_LE(capped.buffer.peak_bytes, 8 * snapshot);
  // Correctness unchanged: same number of matched transfers.
  EXPECT_EQ(capped.transfers, unbounded.transfers);
}

TEST(FiniteBuffer, SoftCapWhenStallWouldBlockProgress) {
  // The importer requests a *future* timestamp and then blocks on the
  // exporter's data; the exporter must keep producing (outstanding
  // request!) even if the cap is hit — the cap is exceeded softly instead
  // of deadlocking.
  const auto decomp = BlockDecomposition::make_grid(8, 8, 1);
  Config config = make_config(1, 1);
  FrameworkOptions fw;
  fw.max_buffered_bytes = 1;  // absurdly small: any snapshot exceeds it
  CoupledSystem system(config, runtime::ClusterOptions{}, fw);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 30; ++k) {
      ctx.compute(1e-4);
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> out(decomp, rt.rank());
    // Requested immediately (exporter has produced nothing yet): the
    // exporter answers PENDING and must keep exporting to resolve it.
    EXPECT_TRUE(rt.import_region("r", 25.0, out).ok());
    rt.finalize();
  });
  system.run();  // must terminate (no deadlock)
  const auto stats = system.proc_stats("E", 0).exports.at(0);
  EXPECT_EQ(stats.transfers, 1u);
}

TEST(FiniteBuffer, ImporterDepartureReleasesConnection) {
  // After the importing program finishes, a ConnClosed notification frees
  // every snapshot held for it and future exports skip buffering.
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  Config config = make_config(2, 2);
  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  std::vector<std::size_t> late_live_bytes(2, SIZE_MAX);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 200; ++k) {
      ctx.compute(1e-5);
      rt.export_region("r", k, data);
    }
    const auto stats = rt.stats_snapshot().exports.at(0);
    late_live_bytes[static_cast<std::size_t>(rt.rank())] = stats.buffer.live_bytes;
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> out(decomp, rt.rank());
    EXPECT_TRUE(rt.import_region("r", 5.0, out).ok());
    rt.finalize();  // leaves while the exporter still has 100+ exports to go
  });
  system.run();
  // After the importer left, buffering stopped and old snapshots were
  // freed: the live pool at the exporter's end is empty.
  EXPECT_EQ(late_live_bytes[0], 0u);
  EXPECT_EQ(late_live_bytes[1], 0u);
  const auto stats = system.proc_stats("E", 0).exports.at(0);
  EXPECT_GT(stats.buffer.skips, 100u);  // post-departure exports skipped
}

}  // namespace
}  // namespace ccf::core
