// A scripted ProcessContext for unit-testing framework state machines
// without a cluster: sends are recorded, receives come from a queue, the
// clock is manual, and copies charge the modeled cost.
#pragma once

#include <deque>
#include <cstring>
#include <vector>

#include "runtime/process_context.hpp"
#include "util/check.hpp"

namespace ccf::core::testing {

class FakeContext final : public runtime::ProcessContext {
 public:
  explicit FakeContext(runtime::ProcId id = 0,
                       transport::CopyCostModel cost = transport::CopyCostModel::pentium4_preset())
      : id_(id), cost_(cost) {}

  runtime::ProcId id() const override { return id_; }

  void send(runtime::ProcId dst, runtime::Tag tag, runtime::Payload payload) override {
    runtime::Message m;
    m.src = id_;
    m.dst = dst;
    m.tag = tag;
    m.payload = payload ? std::move(payload) : transport::empty_payload();
    sent_.push_back(std::move(m));
  }

  runtime::Message recv(const runtime::MatchSpec& spec) override {
    auto m = try_recv(spec);
    CCF_CHECK(m.has_value(), "FakeContext::recv with empty queue");
    return std::move(*m);
  }

  std::optional<runtime::Message> try_recv(const runtime::MatchSpec& spec) override {
    for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
      if (spec.matches(*it)) {
        runtime::Message m = std::move(*it);
        inbox_.erase(it);
        return m;
      }
    }
    return std::nullopt;
  }

  bool probe(const runtime::MatchSpec& spec) override {
    for (const auto& m : inbox_) {
      if (spec.matches(m)) return true;
    }
    return false;
  }

  std::optional<runtime::Message> recv_until(const runtime::MatchSpec& spec,
                                             double deadline) override {
    auto m = try_recv(spec);
    if (!m) now_ = std::max(now_, deadline);
    return m;
  }

  double now() const override { return now_; }
  void compute(double seconds) override { now_ += seconds; }

  void copy(void* dst, const void* src, std::size_t bytes) override {
    std::memcpy(dst, src, bytes);
    now_ += cost_.cost_seconds(bytes);
  }

  void charge_copy_cost(std::size_t bytes) override { now_ += cost_.cost_seconds(bytes); }

  const transport::CopyCostModel& copy_cost_model() const override { return cost_; }

  // --- test controls -------------------------------------------------------
  std::vector<runtime::Message>& sent() { return sent_; }

  /// All sent messages with `tag`, in send order.
  std::vector<runtime::Message> sent_with_tag(runtime::Tag tag) const {
    std::vector<runtime::Message> out;
    for (const auto& m : sent_) {
      if (m.tag == tag) out.push_back(m);
    }
    return out;
  }

  void push_inbox(runtime::Message m) { inbox_.push_back(std::move(m)); }
  void set_now(double t) { now_ = t; }

 private:
  runtime::ProcId id_;
  transport::CopyCostModel cost_;
  double now_ = 0;
  std::vector<runtime::Message> sent_;
  std::deque<runtime::Message> inbox_;
};

}  // namespace ccf::core::testing
