// Aggregation-tree building blocks: layout math (fan-in tree shape, id
// allocation, rank->node lookup) and the batched control-frame codec
// (docs/PROTOCOL.md, "Hierarchical representatives").
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/layout.hpp"
#include "core/protocol.hpp"

namespace ccf::core {
namespace {

TEST(TreeBuildTest, FlatWhenFaninOffOrRanksFit) {
  EXPECT_TRUE(ProgramLayout::build_tree(64, 0).empty());
  EXPECT_TRUE(ProgramLayout::build_tree(64, 1).empty());
  // Every rank attaches directly to the rep when nprocs <= fanin.
  EXPECT_TRUE(ProgramLayout::build_tree(4, 4).empty());
  EXPECT_TRUE(ProgramLayout::build_tree(1, 2).empty());
}

TEST(TreeBuildTest, EveryNodeRespectsFanin) {
  for (int nprocs : {5, 8, 17, 64, 100, 257}) {
    for (int fanin : {2, 3, 4, 8}) {
      const auto tree = ProgramLayout::build_tree(nprocs, fanin);
      if (nprocs <= fanin) {
        EXPECT_TRUE(tree.empty());
        continue;
      }
      ASSERT_FALSE(tree.empty());
      int tops = 0;
      for (const auto& node : tree) {
        EXPECT_LE(node.children.size(), static_cast<std::size_t>(fanin));
        EXPECT_FALSE(node.children.empty());
        if (node.parent == -1) ++tops;
      }
      // The rep itself must end up with at most `fanin` children.
      EXPECT_LE(tops, fanin);
    }
  }
}

TEST(TreeBuildTest, LeavesPartitionTheRanks) {
  const int nprocs = 23, fanin = 3;
  const auto tree = ProgramLayout::build_tree(nprocs, fanin);
  std::set<int> seen;
  for (const auto& node : tree) {
    if (!node.leaf_level) continue;
    for (int rank : node.children) {
      EXPECT_TRUE(seen.insert(rank).second) << "rank " << rank << " in two leaves";
    }
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(nprocs));
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), nprocs - 1);
}

TEST(TreeBuildTest, InteriorLinksAreConsistent) {
  const auto tree = ProgramLayout::build_tree(64, 4);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (tree[i].leaf_level) continue;
    for (int child : tree[i].children) {
      ASSERT_GE(child, 0);
      ASSERT_LT(child, static_cast<int>(tree.size()));
      EXPECT_EQ(tree[static_cast<std::size_t>(child)].parent, static_cast<int>(i));
    }
  }
}

ProgramSpec spec_with_tree(const std::string& name, int nprocs, int fanin, int shards) {
  ProgramSpec spec{name, "h", "/bin/" + name, nprocs, {}};
  spec.rep_fanin = fanin;
  spec.rep_shards = shards;
  return spec;
}

TEST(TreeLayoutTest, DefaultAllocationIsPreTree) {
  Config config;
  config.add_program(ProgramSpec{"A", "h", "/a", 2, {}});
  config.add_program(ProgramSpec{"B", "h", "/b", 1, {}});
  DeploymentLayout layout(config);
  const ProgramLayout& a = layout.program("A");
  EXPECT_EQ(a.first, 0);
  EXPECT_EQ(a.rep, 2);
  EXPECT_EQ(a.shards, 1);
  EXPECT_TRUE(a.tree.empty());
  EXPECT_EQ(a.parent_of_rank(0), -1);
  EXPECT_EQ(layout.program("B").first, 3);
  EXPECT_EQ(layout.program("B").rep, 4);
  EXPECT_EQ(layout.total_processes(), 5);
}

TEST(TreeLayoutTest, ShardsAndSubRepsGetContiguousIds) {
  Config config;
  config.add_program(spec_with_tree("E", 8, 2, 2));
  config.add_program(ProgramSpec{"I", "h", "/i", 1, {}});
  DeploymentLayout layout(config);
  const ProgramLayout& e = layout.program("E");
  EXPECT_EQ(e.first, 0);
  EXPECT_EQ(e.rep, 8);
  EXPECT_EQ(e.shard_id(1), 9);
  EXPECT_EQ(e.subrep_first, 10);
  // 8 ranks at fan-in 2: 4 leaf nodes contracting to 2 top nodes.
  ASSERT_EQ(e.tree.size(), 6u);
  EXPECT_EQ(e.top_nodes().size(), 2u);
  const ProgramLayout& i = layout.program("I");
  EXPECT_EQ(i.first, 16);
  EXPECT_EQ(i.rep, 17);

  // owner_of distinguishes workers, rep shards, and sub-reps.
  EXPECT_EQ(layout.owner_of(3).rank, 3);
  EXPECT_EQ(layout.owner_of(9).rank, -1);
  EXPECT_EQ(layout.owner_of(12).rank, -2);
  EXPECT_EQ(layout.owner_of(12).program, "E");
}

TEST(TreeLayoutTest, ParentAndSubtreeAgree) {
  Config config;
  config.add_program(spec_with_tree("E", 30, 4, 1));
  DeploymentLayout layout(config);
  const ProgramLayout& pl = layout.program("E");
  for (int rank = 0; rank < pl.nprocs; ++rank) {
    const int node = pl.parent_of_rank(rank);
    ASSERT_GE(node, 0);
    const auto ranks = pl.subtree_ranks(node);
    EXPECT_NE(std::find(ranks.begin(), ranks.end(), rank), ranks.end());
  }
  // Top-node subtrees partition all ranks.
  std::set<int> seen;
  for (int top : pl.top_nodes()) {
    for (int rank : pl.subtree_ranks(top)) EXPECT_TRUE(seen.insert(rank).second);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(pl.nprocs));
}

TEST(TreeLayoutTest, ControlTargetFollowsShardOwnership) {
  Config config;
  config.add_program(spec_with_tree("E", 4, 0, 3));
  DeploymentLayout layout(config);
  const ProgramLayout& pl = layout.program("E");
  EXPECT_EQ(pl.control_target(0), pl.rep);
  EXPECT_EQ(pl.control_target(4), pl.rep + 1);
  EXPECT_EQ(pl.control_target(5), pl.rep + 2);
}

TEST(TreeConfigTest, ProgramLineTokensParse) {
  const Config config = Config::parse_string(
      "E host /bin/e 16 fanin=4 shards=2\n"
      "I host /bin/i 4 extra_flag\n"
      "#\n"
      "E.r I.r REGL 0.5\n");
  EXPECT_EQ(config.program("E").rep_fanin, 4);
  EXPECT_EQ(config.program("E").rep_shards, 2);
  EXPECT_EQ(config.program("I").rep_fanin, 0);
  EXPECT_EQ(config.program("I").rep_shards, 1);
  ASSERT_EQ(config.program("I").extra_args.size(), 1u);
  EXPECT_EQ(config.program("I").extra_args[0], "extra_flag");
}

TEST(TreeConfigTest, RejectsDegenerateFanin) {
  Config config;
  EXPECT_THROW(config.add_program(spec_with_tree("E", 8, 1, 1)), util::InvalidArgument);
  EXPECT_THROW(config.add_program(spec_with_tree("E", 8, 0, 0)), util::InvalidArgument);
  EXPECT_THROW(Config::parse_string("E h /e 8 fanin=x\n#\n"), util::InvalidArgument);
}

TEST(FrameCodecTest, RoundTripsEntries) {
  std::vector<FrameEntry> entries;
  const transport::Payload p1 = [] {
    transport::Writer w;
    w.put<std::uint32_t>(42);
    w.put<double>(3.5);
    return w.take();
  }();
  entries.push_back(FrameEntry{7, kTagImportRequest, p1});
  entries.push_back(FrameEntry{kFrameBroadcast, kTagRepHeartbeat, transport::empty_payload()});
  entries.push_back(FrameEntry{0, kTagMetaAck, transport::empty_payload()});

  const transport::Payload wire = encode_frame(entries);
  const auto decoded = decode_frame(wire);
  ASSERT_EQ(decoded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].rank, entries[i].rank);
    EXPECT_EQ(decoded[i].tag, entries[i].tag);
    ASSERT_EQ(decoded[i].payload.size(), entries[i].payload.size());
    EXPECT_TRUE(std::equal(decoded[i].payload.begin(), decoded[i].payload.end(),
                           entries[i].payload.begin()));
  }
}

TEST(FrameCodecTest, EmptyFrameRoundTrips) {
  EXPECT_TRUE(decode_frame(encode_frame({})).empty());
}

TEST(FrameCodecTest, RejectsTruncatedFrames) {
  std::vector<FrameEntry> entries{FrameEntry{1, kTagImportRequest, transport::empty_payload()}};
  const transport::Payload wire = encode_frame(entries);
  EXPECT_THROW(decode_frame(wire.slice(0, wire.size() - 1)), util::Error);
}

}  // namespace
}  // namespace ccf::core
