// End-to-end equivalence of the hierarchical representative layer
// (docs/PROTOCOL.md): the same coupled workload must produce identical
// collective answers and imported data with the flat rep (fanin=0, the
// pre-tree wire protocol), with an aggregation tree of any fan-in, and
// with a sharded rep — while the tree actually batches (frames flow) and
// caps the rep's per-wave inbound message count by the fan-in.
#include <gtest/gtest.h>

#include <vector>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;
using runtime::ClusterOptions;
using runtime::ProcessContext;

struct RunOutcome {
  std::vector<AnswerMsg> answers;       ///< rep's determined answers ("E")
  std::vector<double> matched;          ///< importer rank 0's matched stamps
  double checksum = 0;                  ///< sum over imported cells
  RepResult rep;
  SubRepResult subrep;
};

RunOutcome run_workload(int exp_procs, int fanin, int shards,
                        FrameworkOptions options = {}) {
  Config config;
  ProgramSpec e{"E", "h", "/e", exp_procs, {}};
  e.rep_fanin = fanin;
  e.rep_shards = shards;
  config.add_program(e);
  config.add_program(ProgramSpec{"I", "h", "/i", 2, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "a", MatchPolicy::REGL, 0.5});
  config.add_connection(ConnectionSpec{"E", "r", "I", "b", MatchPolicy::REG, 2.0});

  CoupledSystem system(config, ClusterOptions{}, options);
  const dist::Index rows = 12, cols = 12;
  const auto e_decomp = BlockDecomposition::make_grid(rows, cols, exp_procs);
  const auto i_decomp = BlockDecomposition::make_grid(rows, cols, 2);

  system.set_program_body("E", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (int k = 1; k <= 6; ++k) {
      data.fill([&](dist::Index r, dist::Index c) {
        return k * 100.0 + static_cast<double>(r) + 0.01 * static_cast<double>(c);
      });
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });

  RunOutcome out;
  system.set_program_body("I", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_import_region("a", i_decomp);
    rt.define_import_region("b", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    for (double x : {1.0, 2.5, 4.0, 6.0}) {
      for (const char* region : {"a", "b"}) {
        const auto st = rt.import_region(region, x, data);
        if (rt.rank() != 0) continue;
        out.matched.push_back(st.ok() ? st.matched : -1.0);
        if (!st.ok()) continue;
        const dist::Box box = data.local_box();
        for (dist::Index r = box.row_begin; r < box.row_end; ++r) {
          for (dist::Index c = box.col_begin; c < box.col_end; ++c) {
            out.checksum += data.at(r, c);
          }
        }
      }
    }
    rt.finalize();
  });

  system.run();
  out.rep = system.rep_result("E");
  out.answers = out.rep.answers;
  out.subrep = system.subrep_result("E");
  return out;
}

void expect_same_answers(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.matched, b.matched);
  EXPECT_EQ(a.checksum, b.checksum);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (std::size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].conn, b.answers[i].conn) << "answer " << i;
    EXPECT_EQ(a.answers[i].seq, b.answers[i].seq) << "answer " << i;
    EXPECT_EQ(a.answers[i].result, b.answers[i].result) << "answer " << i;
    EXPECT_EQ(a.answers[i].matched, b.answers[i].matched) << "answer " << i;
  }
}

TEST(RepTreeTest, TreeAnswersMatchFlatRep) {
  const RunOutcome flat = run_workload(12, 0, 1);
  EXPECT_EQ(flat.subrep.wire_in, 0u);  // no tree, no sub-reps
  EXPECT_EQ(flat.rep.frames_in, 0u);
  for (int fanin : {2, 3, 8}) {
    const RunOutcome tree = run_workload(12, fanin, 1);
    expect_same_answers(flat, tree);
    EXPECT_GT(tree.rep.frames_in, 0u) << "fanin " << fanin;
    EXPECT_GT(tree.rep.frame_entries_in, tree.rep.frames_in) << "fanin " << fanin;
    EXPECT_GT(tree.subrep.frames_up, 0u) << "fanin " << fanin;
    EXPECT_GT(tree.subrep.entries_down, 0u) << "fanin " << fanin;
  }
}

TEST(RepTreeTest, ShardedRepAnswersMatchFlatRep) {
  const RunOutcome flat = run_workload(8, 0, 1);
  const RunOutcome sharded = run_workload(8, 0, 2);
  expect_same_answers(flat, sharded);
  const RunOutcome both = run_workload(8, 4, 2);  // tree + shards together
  expect_same_answers(flat, both);
  EXPECT_GT(both.rep.frames_in, 0u);
}

TEST(RepTreeTest, TreeBoundsRepInboundTraffic) {
  // Same wave count, 4x the ranks: the flat rep's inbound wire messages
  // scale with ranks, the tree rep's with its fan-in. Batching must cut
  // inbound traffic by well over half at 32 ranks and fan-in 4.
  const RunOutcome flat = run_workload(32, 0, 1);
  const RunOutcome tree = run_workload(32, 4, 1);
  EXPECT_LT(tree.rep.wire_in * 2, flat.rep.wire_in);
  // Every entry the rep frames downward reaches the leaf layer (broadcast
  // entries fan out further on the way down, never less).
  EXPECT_GE(tree.subrep.entries_down, tree.rep.frame_entries_out);
}

TEST(RepTreeTest, TreeSurvivesFailureTolerantMode) {
  FrameworkOptions options;
  options.retry_timeout_seconds = 0.05;
  options.max_retries = 10;
  options.heartbeat_interval_seconds = 0.02;
  const RunOutcome flat = run_workload(9, 0, 1, options);
  const RunOutcome tree = run_workload(9, 3, 1, options);
  EXPECT_EQ(flat.matched, tree.matched);
  EXPECT_EQ(flat.checksum, tree.checksum);
  const RunOutcome sharded = run_workload(9, 3, 2, options);
  EXPECT_EQ(flat.matched, sharded.matched);
  EXPECT_EQ(flat.checksum, sharded.checksum);
}

}  // namespace
}  // namespace ccf::core
