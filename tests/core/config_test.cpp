// Configuration parsing/validation (the paper's Figure 2 format) plus
// deployment layout assignment and wire-protocol round trips.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/layout.hpp"
#include "core/protocol.hpp"
#include "util/check.hpp"

namespace ccf::core {
namespace {

const char* kPaperConfig = R"(
P0 cluster0 /home/meou/bin/P0 16
P1 cluster1 /home/meou/bin/P1 8
P2 cluster1 /home/meou/bin/P2 32
P4 cluster1 /home/meou/bin/P4 4
#
P0.r1 P1.r1 REGL 0.2
P0.r1 P2.r3 REG 0.1
P0.r2 P4.r2 REGU 0.3
)";

TEST(ConfigParse, PaperFigure2Example) {
  const Config config = Config::parse_string(kPaperConfig);
  ASSERT_EQ(config.programs().size(), 4u);
  EXPECT_EQ(config.program("P0").nprocs, 16);
  EXPECT_EQ(config.program("P0").host, "cluster0");
  EXPECT_EQ(config.program("P4").executable, "/home/meou/bin/P4");

  ASSERT_EQ(config.connections().size(), 3u);
  const ConnectionSpec& c0 = config.connections()[0];
  EXPECT_EQ(c0.exporter_program, "P0");
  EXPECT_EQ(c0.exporter_region, "r1");
  EXPECT_EQ(c0.importer_program, "P1");
  EXPECT_EQ(c0.importer_region, "r1");
  EXPECT_EQ(c0.policy, MatchPolicy::REGL);
  EXPECT_DOUBLE_EQ(c0.tolerance, 0.2);
  EXPECT_EQ(config.connections()[1].policy, MatchPolicy::REG);
  EXPECT_EQ(config.connections()[2].policy, MatchPolicy::REGU);
}

TEST(ConfigParse, CommentsAndBlankLines) {
  const Config config = Config::parse_string(
      "# a comment about programs\n"
      "A host /bin/a 2 extra args here\n"
      "\n"
      "B host /bin/b 3\n"
      "#\n"
      "# comment in connections\n"
      "A.x B.y REGL 1.5\n");
  EXPECT_EQ(config.programs().size(), 2u);
  EXPECT_EQ(config.program("A").extra_args.size(), 3u);
  EXPECT_EQ(config.connections().size(), 1u);
}

TEST(ConfigParse, Errors) {
  EXPECT_THROW(Config::parse_string("A host /bin/a\n"), util::InvalidArgument);  // missing nprocs
  EXPECT_THROW(Config::parse_string("A host /bin/a zero\n"), util::InvalidArgument);
  EXPECT_THROW(Config::parse_string("A h /a 2\n#\nA.x REGL 1\n"), util::InvalidArgument);
  EXPECT_THROW(Config::parse_string("A h /a 2\nB h /b 2\n#\nAx B.y REGL 1\n"),
               util::InvalidArgument);  // bad region ref
  EXPECT_THROW(Config::parse_string("A h /a 2\nB h /b 2\n#\nA.x B.y LOWER 1\n"),
               util::InvalidArgument);  // bad policy
  EXPECT_THROW(Config::parse_string("A h /a 2\nB h /b 2\n#\nA.x B.y REGL -1\n"),
               util::InvalidArgument);  // negative tolerance
  EXPECT_THROW(Config::parse_file("/nonexistent/path/config"), util::InvalidArgument);
}

TEST(ConfigValidate, DetectsBadCoupling) {
  // Undeclared program in a connection.
  EXPECT_THROW(Config::parse_string("A h /a 2\n#\nA.x B.y REGL 1\n"), util::InvalidArgument);
  // Self-coupling.
  EXPECT_THROW(Config::parse_string("A h /a 2\n#\nA.x A.y REGL 1\n"), util::InvalidArgument);
  // Two exporters feeding one imported region.
  EXPECT_THROW(
      Config::parse_string("A h /a 2\nB h /b 2\nC h /c 2\n#\nA.x C.z REGL 1\nB.y C.z REGL 1\n"),
      util::InvalidArgument);
  // Duplicate program names.
  EXPECT_THROW(Config::parse_string("A h /a 2\nA h /a 3\n"), util::InvalidArgument);
}

TEST(ConfigQueries, ConnectionLookups) {
  const Config config = Config::parse_string(kPaperConfig);
  EXPECT_EQ(config.connections_exporting("P0", "r1"), (std::vector<int>{0, 1}));
  EXPECT_EQ(config.connections_exporting("P0", "r2"), std::vector<int>{2});
  EXPECT_EQ(config.connections_exporting("P1", "r1"), std::vector<int>{});
  EXPECT_EQ(config.connection_importing("P1", "r1"), std::optional<int>{0});
  EXPECT_EQ(config.connection_importing("P0", "r1"), std::nullopt);
  EXPECT_EQ(config.connections_of_exporter_program("P0"), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(config.connections_of_importer_program("P2"), std::vector<int>{1});
  EXPECT_THROW(config.program("nope"), util::InvalidArgument);
}

TEST(ConfigSummary, MentionsEverything) {
  const Config config = Config::parse_string(kPaperConfig);
  const std::string s = config.summary();
  EXPECT_NE(s.find("P0"), std::string::npos);
  EXPECT_NE(s.find("REGU"), std::string::npos);
}

TEST(Layout, AssignsContiguousIdsWithReps) {
  const Config config = Config::parse_string("A h /a 3\nB h /b 2\n#\nA.x B.y REGL 1\n");
  const DeploymentLayout layout(config);
  const ProgramLayout& a = layout.program("A");
  EXPECT_EQ(a.first, 0);
  EXPECT_EQ(a.rep, 3);
  EXPECT_EQ(a.proc(2), 2);
  EXPECT_EQ(a.proc_ids(), (std::vector<transport::ProcId>{0, 1, 2}));
  const ProgramLayout& b = layout.program("B");
  EXPECT_EQ(b.first, 4);
  EXPECT_EQ(b.rep, 6);
  EXPECT_EQ(layout.total_processes(), 7);
  EXPECT_THROW(a.proc(3), util::InvalidArgument);
  EXPECT_THROW(layout.program("C"), util::InvalidArgument);
}

TEST(Layout, OwnerOf) {
  const Config config = Config::parse_string("A h /a 2\nB h /b 1\n");
  const DeploymentLayout layout(config);
  EXPECT_EQ(layout.owner_of(0).program, "A");
  EXPECT_EQ(layout.owner_of(1).rank, 1);
  EXPECT_EQ(layout.owner_of(2).rank, -1);  // A's rep
  EXPECT_EQ(layout.owner_of(4).program, "B");
  EXPECT_EQ(layout.owner_of(4).rank, -1);
  EXPECT_THROW(layout.owner_of(5), util::InvalidArgument);
}

TEST(Protocol, MessageRoundTrips) {
  const RequestMsg req{3, 17, 42.5};
  const RequestMsg req2 = RequestMsg::decode(req.encode());
  EXPECT_EQ(req2.conn, 3u);
  EXPECT_EQ(req2.seq, 17u);
  EXPECT_DOUBLE_EQ(req2.requested, 42.5);

  const ResponseMsg resp{1, 2, MatchResult::Match, 19.6, 20.6};
  const ResponseMsg resp2 = ResponseMsg::decode(resp.encode());
  EXPECT_EQ(resp2.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(resp2.matched, 19.6);
  EXPECT_DOUBLE_EQ(resp2.latest_exported, 20.6);

  const AnswerMsg ans{1, 2, 20.0, MatchResult::NoMatch, kNeverExported};
  const AnswerMsg ans2 = AnswerMsg::decode(ans.encode());
  EXPECT_EQ(ans2.result, MatchResult::NoMatch);
  EXPECT_DOUBLE_EQ(ans2.requested, 20.0);

  const ConnMsg conn{9};
  EXPECT_EQ(ConnMsg::decode(conn.encode()).conn, 9u);
}

TEST(Protocol, RegionMetaRoundTrip) {
  transport::Writer w;
  RegionMeta meta{"r1", 1024, 512, 4, 2};
  meta.encode_into(w);
  transport::Reader r(w.take());
  const RegionMeta meta2 = RegionMeta::decode_from(r);
  EXPECT_EQ(meta2.name, "r1");
  EXPECT_EQ(meta2.rows, 1024);
  EXPECT_EQ(meta2.cols, 512);
  EXPECT_EQ(meta2.proc_rows, 4);
  EXPECT_EQ(meta2.proc_cols, 2);
}

TEST(Protocol, TagLayoutDisjoint) {
  // Data tags and answer tags must stay below the collectives tag space
  // and away from the control tags.
  const transport::Tag d = data_tag(31, 4095);
  EXPECT_LT(d, 1 << 24);
  EXPECT_GE(d, kTagDataBase);
  EXPECT_GT(import_answer_tag(0), kTagShutdownProc);
  EXPECT_LT(import_answer_tag(31), kTagDataBase);
  // Distinct (conn, seq mod 4096) -> distinct tags.
  EXPECT_NE(data_tag(1, 5), data_tag(2, 5));
  EXPECT_NE(data_tag(1, 5), data_tag(1, 6));
  EXPECT_EQ(data_tag(1, 5), data_tag(1, 5 + 4096));  // documented wrap
}

TEST(Protocol, DecodeRejectsTrailingBytes) {
  transport::Writer w;
  w.put<std::uint32_t>(1);
  w.put<std::uint32_t>(2);
  w.put<double>(3.0);
  w.put<std::uint8_t>(99);  // junk
  EXPECT_THROW(RequestMsg::decode(w.take()), util::InternalError);
}

}  // namespace
}  // namespace ccf::core
