// Bounded-memory buffer governance (src/mem): budget enforcement through
// decidability-ranked eviction to the spill tier, byte-identical restores
// on late matches, soft-exceed degradation when a single snapshot exceeds
// the budget, buddy-help frees of spilled never-match snapshots, arena
// caps, and collective-backpressure importer throttling.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/system.hpp"

namespace ccf::core {
namespace {

namespace fs = std::filesystem;
using dist::BlockDecomposition;
using dist::DistArray2D;

Config make_config(int exp_procs, int imp_procs, MatchPolicy policy = MatchPolicy::REGL,
                   double tolerance = 0.5) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", exp_procs, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", imp_procs, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", policy, tolerance, {}});
  return config;
}

/// Creates (and empties) a per-test spill directory under the system tmp.
std::string spill_dir(const std::string& test) {
  const fs::path dir = fs::temp_directory_path() / ("ccf_memgov_" + test);
  fs::remove_all(dir);
  return dir.string();
}

// The acceptance workload: a slow importer lets two exporter ranks run
// far ahead, so the ungoverned run buffers many snapshots.
struct RunOutput {
  std::vector<ProcStats> exporter_stats;
  std::vector<std::pair<bool, Timestamp>> answers;
  std::vector<double> payloads;
};

RunOutput run_slow_importer(const FrameworkOptions& fw) {
  const dist::Index side = 16;
  const auto decomp = BlockDecomposition::make_grid(side, side, 2);
  Config config = make_config(2, 2);
  CoupledSystem system(config, runtime::ClusterOptions{}, fw);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 60; ++k) {
      ctx.compute(1e-6);
      data.fill([&](dist::Index, dist::Index) { return static_cast<double>(k); });
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });
  RunOutput out;
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    ctx.compute(5e-3);  // slow start: the exporter races ahead
    for (double x : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
      const auto st = rt.import_region("r", x, data);
      if (rt.rank() == 0) {
        out.answers.emplace_back(st.ok(), st.matched);
        out.payloads.push_back(data.data()[0]);
      }
      ctx.compute(5e-3);
    }
    rt.finalize();
  });
  system.run();
  for (int r = 0; r < 2; ++r) out.exporter_stats.push_back(system.proc_stats("E", r));
  return out;
}

TEST(MemoryGovernance, QuarterBudgetMatchesUnboundedAnswersAndWireBytes) {
  const RunOutput unbounded = run_slow_importer(FrameworkOptions{});
  const std::size_t unbounded_peak = unbounded.exporter_stats[0].exports[0].buffer.peak_bytes;
  ASSERT_GT(unbounded_peak, 0u);

  FrameworkOptions fw;
  fw.memory.budget_bytes = unbounded_peak / 4;
  fw.memory.spill_directory = spill_dir("quarter_budget");
  const RunOutput governed = run_slow_importer(fw);

  // Identical collective answers and identical shipped payloads.
  ASSERT_EQ(governed.answers, unbounded.answers);
  ASSERT_EQ(governed.payloads, unbounded.payloads);

  for (int r = 0; r < 2; ++r) {
    const ExportRegionStats& g = governed.exporter_stats[static_cast<std::size_t>(r)].exports[0];
    const ExportRegionStats& u = unbounded.exporter_stats[static_cast<std::size_t>(r)].exports[0];
    // Same wire traffic: governance moves bytes to disk, never onto the
    // fabric.
    EXPECT_EQ(g.bytes_delivered, u.bytes_delivered) << "rank " << r;
    EXPECT_EQ(g.transfers, u.transfers) << "rank " << r;
    // Peak residency bounded by the budget, paid for by evictions.
    EXPECT_LE(g.buffer.peak_bytes, fw.memory.budget_bytes) << "rank " << r;
    EXPECT_GT(g.buffer.evictions, 0u) << "rank " << r;
    EXPECT_EQ(g.buffer.evictions,
              g.buffer.restores + g.buffer.spill_frees + g.buffer.live_spilled_entries)
        << "rank " << r;
    EXPECT_EQ(g.buffer.live_spilled_entries, 0u) << "rank " << r;
    EXPECT_LE(governed.exporter_stats[static_cast<std::size_t>(r)].governor.peak_charged_bytes, fw.memory.budget_bytes)
        << "rank " << r;
  }
  fs::remove_all(fw.memory.spill_directory);
}

TEST(MemoryGovernance, EvictThenLateMatchRestoresByteIdentically) {
  // One snapshot of budget: every buffered export beyond the first is
  // demoted to disk. The late request then matches a *spilled* version,
  // which must come back byte-for-byte before shipping.
  const dist::Index side = 8;
  const auto decomp = BlockDecomposition::make_grid(side, side, 1);
  const std::size_t snapshot =
      static_cast<std::size_t>(decomp.box_of(0).count()) * sizeof(double);
  Config config = make_config(1, 1);
  FrameworkOptions fw;
  fw.memory.budget_bytes = snapshot;
  fw.memory.spill_directory = spill_dir("late_match");
  CoupledSystem system(config, runtime::ClusterOptions{}, fw);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 12; ++k) {
      ctx.compute(1e-6);
      // Element-unique payload so a restore that scrambled any byte of
      // the frame shows up in the importer's array.
      data.fill([&](dist::Index i, dist::Index j) {
        return 1000.0 * k + static_cast<double>(i * side + j);
      });
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> out(decomp, rt.rank());
    ctx.compute(1e-2);  // every export happens (and spills) first
    const auto st = rt.import_region("r", 5.0, out);
    ASSERT_TRUE(st.ok());
    ASSERT_DOUBLE_EQ(st.matched, 5.0);
    for (dist::Index i = 0; i < side; ++i) {
      for (dist::Index j = 0; j < side; ++j) {
        ASSERT_DOUBLE_EQ(out.data()[i * side + j], 1000.0 * 5 + static_cast<double>(i * side + j))
            << "element (" << i << "," << j << ")";
      }
    }
    rt.finalize();
  });
  system.run();
  const auto stats = system.proc_stats("E", 0).exports.at(0);
  EXPECT_GT(stats.buffer.evictions, 0u);
  EXPECT_GT(stats.buffer.restores, 0u);  // the match came back from disk
  EXPECT_LE(stats.buffer.peak_bytes, snapshot);
  fs::remove_all(fw.memory.spill_directory);
}

TEST(MemoryGovernance, BudgetBelowOneSnapshotDegradesInsteadOfDeadlocking) {
  // No snapshot can ever fit: stalling would never help, so the governor
  // is exceeded softly (bounded-buffering degraded mode) and the run
  // completes with correct answers.
  const auto decomp = BlockDecomposition::make_grid(8, 8, 1);
  Config config = make_config(1, 1);
  FrameworkOptions fw;
  fw.memory.budget_bytes = 1;  // absurdly small: any snapshot exceeds it
  fw.memory.spill_directory = spill_dir("tiny_budget");
  CoupledSystem system(config, runtime::ClusterOptions{}, fw);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 30; ++k) {
      ctx.compute(1e-4);
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> out(decomp, rt.rank());
    EXPECT_TRUE(rt.import_region("r", 25.0, out).ok());
    rt.finalize();
  });
  system.run();  // must terminate (no deadlock)
  const ProcStats stats = system.proc_stats("E", 0);
  EXPECT_EQ(stats.exports.at(0).transfers, 1u);
  // The budget was genuinely exceeded (soft), and pressure was raised.
  // (The raise and clear both happen within one export call here — the
  // snapshot is stored, matched, shipped, and freed in one go — so the
  // edge-triggered proc->rep signal correctly coalesces to nothing.)
  EXPECT_GT(stats.governor.peak_charged_bytes, fw.memory.budget_bytes);
  EXPECT_GT(stats.governor.pressure_raises, 0u);
  fs::remove_all(fw.memory.spill_directory);
}

TEST(MemoryGovernance, BuddyHelpFreesSpilledSnapshotsWithoutRestore) {
  // Two exporter ranks, one much slower. The fast rank decides MATCH
  // while the slow rank answers PENDING; the rep's buddy-help then lets
  // the slow rank free everything below the match — including snapshots
  // already demoted to disk, which must be dropped without a restore
  // round-trip (spill_frees, not restores).
  const dist::Index side = 8;
  const auto e_decomp = BlockDecomposition::make_grid(side, side, 2);
  const auto i_decomp = BlockDecomposition::make_grid(side, side, 1);
  const std::size_t snapshot =
      static_cast<std::size_t>(e_decomp.box_of(0).count()) * sizeof(double);
  Config config = make_config(2, 1, MatchPolicy::REGL, 2.0);
  FrameworkOptions fw;
  fw.memory.budget_bytes = snapshot;  // one-snapshot budget: spill everything else
  fw.memory.spill_directory = spill_dir("buddy_help");
  CoupledSystem system(config, runtime::ClusterOptions{}, fw);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    const double step = rt.rank() == 0 ? 1e-5 : 2e-3;  // rank 1 lags far behind
    for (int k = 1; k <= 12; ++k) {
      ctx.compute(step);
      data.fill([&](dist::Index, dist::Index) { return static_cast<double>(k); });
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> out(i_decomp, rt.rank());
    // Request when the slow rank has buffered (and spilled) ~7 versions
    // but not yet produced the match: rank 0 answers MATCH@8, rank 1
    // answers PENDING, and the rep's help frees rank 1's spilled tail.
    ctx.compute(1.5e-2);
    for (double x : {8.0, 12.0}) {
      const auto st = rt.import_region("r", x, out);
      EXPECT_TRUE(st.ok());
      ctx.compute(1e-3);
    }
    rt.finalize();
  });
  system.run();
  const auto slow = system.proc_stats("E", 1).exports.at(0);
  EXPECT_GT(slow.buddy_helps_received, 0u);
  EXPECT_GT(slow.buffer.spill_frees, 0u);  // freed on disk, no restore
  EXPECT_EQ(slow.buffer.evictions,
            slow.buffer.restores + slow.buffer.spill_frees + slow.buffer.live_spilled_entries);
  EXPECT_EQ(slow.buffer.live_spilled_entries, 0u);
  fs::remove_all(fw.memory.spill_directory);
}

TEST(MemoryGovernance, ArenaCapacityOptionBoundsFreeList) {
  // arena_capacity = 0 disables frame recycling entirely: every store
  // heap-allocates, proving the option reaches the pool. (The recycling
  // default of 8 is covered by buffer_pool_test.)
  const auto decomp = BlockDecomposition::make_grid(8, 8, 1);
  Config config = make_config(1, 1);
  FrameworkOptions fw;
  fw.memory.arena_capacity = 0;
  CoupledSystem system(config, runtime::ClusterOptions{}, fw);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 20; ++k) {
      ctx.compute(1e-4);
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> out(decomp, rt.rank());
    for (double x : {5.0, 10.0, 15.0}) {
      EXPECT_TRUE(rt.import_region("r", x, out).ok());
      ctx.compute(1e-3);
    }
    rt.finalize();
  });
  system.run();
  const auto stats = system.proc_stats("E", 0).exports.at(0).buffer;
  EXPECT_GT(stats.stores, 0u);
  EXPECT_EQ(stats.arena_reuses, 0u);  // nothing was ever parked for reuse
  EXPECT_EQ(stats.arena_allocs, stats.stores);
}

TEST(MemoryGovernance, ImporterThrottlesWhileExporterUnderPressure) {
  const dist::Index side = 16;
  const auto decomp = BlockDecomposition::make_grid(side, side, 2);
  const std::size_t snapshot =
      static_cast<std::size_t>(decomp.box_of(0).count()) * sizeof(double);
  Config config = make_config(2, 2);
  FrameworkOptions fw;
  fw.memory.budget_bytes = 2 * snapshot;
  fw.memory.low_watermark = 0.25;
  fw.memory.high_watermark = 0.5;
  fw.memory.spill_directory = spill_dir("throttle");
  fw.memory.importer_throttle_seconds = 1e-4;
  CoupledSystem system(config, runtime::ClusterOptions{}, fw);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 60; ++k) {
      ctx.compute(1e-6);
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });
  std::vector<std::uint64_t> throttles(2, 0);
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> out(decomp, rt.rank());
    ctx.compute(5e-3);  // exporter races ahead and crosses the watermark
    for (double x : {10.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
      EXPECT_TRUE(rt.import_region("r", x, out).ok());
      ctx.compute(1e-3);
    }
    const auto stats = rt.stats_snapshot().imports.at(0);
    throttles[static_cast<std::size_t>(rt.rank())] = stats.pressure_throttles;
    rt.finalize();
  });
  system.run();
  // Pressure flowed proc -> rep -> peer rep -> importer procs, and the
  // importers gave the exporter breathing room.
  const RepResult& exporter_rep = system.rep_result("E");
  const RepResult& importer_rep = system.rep_result("I");
  EXPECT_GT(exporter_rep.pressure_notices, 0u);
  EXPECT_GT(importer_rep.pressure_broadcasts, 0u);
  EXPECT_GT(system.proc_stats("E", 0).pressure_signals, 0u);
  EXPECT_GT(throttles[0] + throttles[1], 0u);
  for (int r = 0; r < 2; ++r) {
    const auto& istats = system.proc_stats("I", r).imports.at(0);
    EXPECT_EQ(istats.pressure_throttles, throttles[static_cast<std::size_t>(r)]);
  }
  fs::remove_all(fw.memory.spill_directory);
}

TEST(MemoryGovernance, DefaultOptionsKeepGovernanceCountersAtZero) {
  // With default MemoryOptions nothing may change: no governor, no spill,
  // no pressure traffic, byte-for-byte the ungoverned baseline.
  const RunOutput out = run_slow_importer(FrameworkOptions{});
  for (const ProcStats& stats : out.exporter_stats) {
    EXPECT_EQ(stats.governor.charged_bytes, 0u);
    EXPECT_EQ(stats.governor.peak_charged_bytes, 0u);
    EXPECT_EQ(stats.pressure_signals, 0u);
    EXPECT_EQ(stats.pressure_notices, 0u);
    for (const auto& e : stats.exports) {
      EXPECT_EQ(e.buffer.evictions, 0u);
      EXPECT_EQ(e.buffer.restores, 0u);
      EXPECT_EQ(e.buffer.spill_bytes, 0u);
      EXPECT_EQ(e.buffer.spill_frees, 0u);
    }
  }
}

}  // namespace
}  // namespace ccf::core
