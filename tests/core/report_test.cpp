// Run-report rendering tests: tables mention every program/region/metric,
// CSV round-trips through a file.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/report.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;

CoupledSystem run_small_system(FrameworkOptions options = {},
                               double importer_delay_seconds = 0) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", 2, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", 1, {}});
  config.add_connection(ConnectionSpec{"E", "field", "I", "field", MatchPolicy::REGL, 0.5});
  CoupledSystem system(config, runtime::ClusterOptions{}, options);
  const auto e_decomp = BlockDecomposition::make_grid(8, 8, 2);
  const auto i_decomp = BlockDecomposition::make_grid(8, 8, 1);
  system.set_program_body("E", [e_decomp](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_export_region("field", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (int k = 1; k <= 10; ++k) rt.export_region("field", k, data);
    rt.finalize();
  });
  system.set_program_body("I", [i_decomp, importer_delay_seconds](
                                   CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("field", i_decomp);
    rt.commit();
    // A slow importer lets the exporter run ahead and buffer snapshots,
    // which is what drives the governor's eviction path.
    if (importer_delay_seconds > 0) ctx.compute(importer_delay_seconds);
    DistArray2D<double> data(i_decomp, rt.rank());
    (void)rt.import_region("field", 5.0, data);
    (void)rt.import_region("field", 9.0, data);
    rt.finalize();
  });
  system.run();
  return system;
}

TEST(RunReport, TableMentionsProgramsRegionsAndCounts) {
  const CoupledSystem system = run_small_system();
  std::ostringstream os;
  print_run_report(system, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("program E"), std::string::npos);
  EXPECT_NE(out.find("program I"), std::string::npos);
  EXPECT_NE(out.find("field"), std::string::npos);
  EXPECT_NE(out.find("memcpys"), std::string::npos);
  EXPECT_NE(out.find("imports"), std::string::npos);
  EXPECT_NE(out.find("end time"), std::string::npos);
  // Exporter rows for both ranks.
  EXPECT_NE(out.find("rep:"), std::string::npos);
}

TEST(RunReport, CsvHasHeaderAndOneRowPerProcRegion) {
  const CoupledSystem system = run_small_system();
  const std::string path = "/tmp/ccf_report_test.csv";
  write_run_report_csv(system, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  // header + (rep row + 2 exporter rows) for E + (rep row + 1 importer
  // row) for I.
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(lines[0].find("program,rank,kind,region"), std::string::npos);
  EXPECT_NE(lines[0].find("rep_requests,rep_answers,rep_helps,rep_pressure,transport"),
            std::string::npos);
  EXPECT_NE(lines[1].find("E,-1,rep,-"), std::string::npos);
  EXPECT_NE(lines[2].find("E,0,export,field"), std::string::npos);
  EXPECT_NE(lines[4].find("I,-1,rep,-"), std::string::npos);
  EXPECT_NE(lines[5].find("I,0,import,field"), std::string::npos);
  std::remove(path.c_str());
}

// Golden cross-check: the kind=rep row's per-message-class columns must
// equal the RepResult counters, field for field.
TEST(RunReport, CsvRepRowMatchesRepResult) {
  const CoupledSystem system = run_small_system();
  const std::string path = "/tmp/ccf_report_rep_test.csv";
  write_run_report_csv(system, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);

  const RepResult& rep = system.rep_result("E");
  EXPECT_GT(rep.requests_forwarded, 0u);
  EXPECT_GT(rep.answers_sent, 0u);
  std::vector<std::string> fields;
  std::stringstream row(lines[1]);
  std::string field;
  while (std::getline(row, field, ',')) fields.push_back(field);
  ASSERT_GE(fields.size(), 5u);
  // The row ends with the four message-class columns and then the
  // transport column ("sim" for the default simulated fabric).
  EXPECT_EQ(fields[fields.size() - 5], std::to_string(rep.requests_forwarded));
  EXPECT_EQ(fields[fields.size() - 4], std::to_string(rep.answers_sent));
  EXPECT_EQ(fields[fields.size() - 3], std::to_string(rep.buddy_helps_sent));
  EXPECT_EQ(fields[fields.size() - 2],
            std::to_string(rep.pressure_signals + rep.pressure_notices +
                           rep.pressure_broadcasts));
  EXPECT_EQ(fields[fields.size() - 1], "sim");
  std::remove(path.c_str());
}

TEST(RunReport, TableShowsMemoryGovernanceColumns) {
  const CoupledSystem system = run_small_system();
  std::ostringstream os;
  print_run_report(system, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("peakB"), std::string::npos);
  EXPECT_NE(out.find("evict"), std::string::npos);
  EXPECT_NE(out.find("spillB"), std::string::npos);
}

// Golden cross-check: the CSV's governance fields must equal the stats
// snapshot, field for field, on a governed run that actually evicts.
TEST(RunReport, CsvGovernanceFieldsMatchStatsOnGovernedRun) {
  namespace fs = std::filesystem;
  const fs::path spill_dir = fs::temp_directory_path() / "ccf_report_gov_spill";
  FrameworkOptions options;
  // Each exporter rank holds a 4x8 block = 32 doubles = 256 bytes per
  // snapshot; a one-snapshot budget forces eviction on the second store.
  options.memory.budget_bytes = 256;
  options.memory.spill_directory = spill_dir.string();
  const CoupledSystem system = run_small_system(options, /*importer_delay_seconds=*/1.0);

  const std::string path = "/tmp/ccf_report_gov_test.csv";
  write_run_report_csv(system, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 6u);
  EXPECT_NE(lines[0].find("peak_buffered_bytes,evictions,spill_bytes,restores"),
            std::string::npos);

  for (int r = 0; r < 2; ++r) {
    const ProcStats stats = system.proc_stats("E", r);
    ASSERT_EQ(stats.exports.size(), 1u);
    const BufferStats& buf = stats.exports[0].buffer;
    EXPECT_GT(buf.evictions, 0u);
    EXPECT_GT(buf.spill_bytes, 0u);
    EXPECT_LE(buf.peak_bytes, options.memory.budget_bytes);
    // The governance columns sit just before the four rep message-class
    // columns (zero on worker rows) and the trailing transport column, in
    // order. lines[1] is E's rep row.
    std::vector<std::string> fields;
    std::stringstream row(lines[static_cast<std::size_t>(2 + r)]);
    std::string field;
    while (std::getline(row, field, ',')) fields.push_back(field);
    ASSERT_GE(fields.size(), 9u);
    EXPECT_EQ(fields[fields.size() - 9], std::to_string(buf.peak_bytes));
    EXPECT_EQ(fields[fields.size() - 8], std::to_string(buf.evictions));
    EXPECT_EQ(fields[fields.size() - 7], std::to_string(buf.spill_bytes));
    EXPECT_EQ(fields[fields.size() - 6], std::to_string(buf.restores));
    EXPECT_EQ(fields[fields.size() - 5], "0");
    EXPECT_EQ(fields[fields.size() - 1], "sim");
  }
  std::remove(path.c_str());
  fs::remove_all(spill_dir);
}

TEST(CopyCostMeasure, HostCalibrationIsPlausible) {
  const auto model = transport::CopyCostModel::measure_host(1 << 20);
  // Any machine copies between 100 MB/s and 1 TB/s.
  EXPECT_GT(model.bytes_per_second(), 100e6);
  EXPECT_LT(model.bytes_per_second(), 1e12);
  EXPECT_GT(model.cost_seconds(1 << 20), 0.0);
  EXPECT_THROW(transport::CopyCostModel::measure_host(16), util::InvalidArgument);
}

}  // namespace
}  // namespace ccf::core
