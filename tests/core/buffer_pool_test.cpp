// Export-side buffer pool tests: lifecycle, per-connection masks, stats
// and unnecessary-time accounting (the Eq. 1/2 inputs).
#include <gtest/gtest.h>

#include "core/buffer_pool.hpp"
#include "fake_context.hpp"
#include "transport/serialize.hpp"

namespace ccf::core {
namespace {

using testing::FakeContext;

std::vector<double> block(std::size_t n, double v) { return std::vector<double>(n, v); }

TEST(BufferPoolTest, StoreCopiesDataAndChargesCost) {
  FakeContext ctx;
  BufferPool pool;
  auto src = block(100, 3.5);
  const double cost = pool.store(1.0, src.data(), src.size(), 0b1, ctx);
  EXPECT_GT(cost, 0.0);
  EXPECT_DOUBLE_EQ(ctx.now(), cost);
  ASSERT_TRUE(pool.has(1.0));
  EXPECT_DOUBLE_EQ(pool.snapshot(1.0)[42], 3.5);
  // The snapshot is a copy: mutating the source does not change it.
  src[42] = -1;
  EXPECT_DOUBLE_EQ(pool.snapshot(1.0)[42], 3.5);
}

TEST(BufferPoolTest, RejectsDuplicateAndEmptyMask) {
  FakeContext ctx;
  BufferPool pool;
  auto src = block(4, 1.0);
  pool.store(1.0, src.data(), 4, 0b1, ctx);
  EXPECT_THROW(pool.store(1.0, src.data(), 4, 0b1, ctx), util::InvalidArgument);
  EXPECT_THROW(pool.store(2.0, src.data(), 4, 0, ctx), util::InvalidArgument);
}

TEST(BufferPoolTest, DropFreesOnlyWhenNoConnectionNeedsIt) {
  FakeContext ctx;
  BufferPool pool;
  auto src = block(4, 1.0);
  pool.store(1.0, src.data(), 4, 0b11, ctx);  // needed by conns 0 and 1
  EXPECT_FALSE(pool.drop(1.0, 0).has_value());
  EXPECT_TRUE(pool.has(1.0));
  auto freed = pool.drop(1.0, 1);
  ASSERT_TRUE(freed.has_value());
  EXPECT_DOUBLE_EQ(freed->t, 1.0);
  EXPECT_FALSE(freed->was_sent);
  EXPECT_FALSE(pool.has(1.0));
}

TEST(BufferPoolTest, DropAbsentIsNoop) {
  BufferPool pool;
  EXPECT_FALSE(pool.drop(9.9, 0).has_value());
  EXPECT_TRUE(pool.drop_below(100.0, 0).empty());
}

TEST(BufferPoolTest, DropBelowFreesRangeAscending) {
  FakeContext ctx;
  BufferPool pool;
  auto src = block(4, 1.0);
  for (double t : {1.0, 2.0, 3.0, 4.0}) pool.store(t, src.data(), 4, 0b1, ctx);
  const auto freed = pool.drop_below(3.5, 0);
  ASSERT_EQ(freed.size(), 3u);
  EXPECT_DOUBLE_EQ(freed[0].t, 1.0);
  EXPECT_DOUBLE_EQ(freed[2].t, 3.0);
  EXPECT_EQ(pool.buffered_timestamps(), std::vector<Timestamp>{4.0});
}

TEST(BufferPoolTest, UnnecessaryTimeCountsOnlyUnsentFrees) {
  FakeContext ctx;
  BufferPool pool;
  auto src = block(1000, 1.0);
  pool.store(1.0, src.data(), 1000, 0b1, ctx);
  pool.store(2.0, src.data(), 1000, 0b1, ctx);
  pool.mark_sent(2.0, 0);
  pool.drop(1.0, 0);  // never sent -> unnecessary
  pool.drop(2.0, 0);  // sent -> necessary
  const BufferStats& s = pool.stats();
  EXPECT_EQ(s.frees_unsent, 1u);
  EXPECT_EQ(s.frees_sent, 1u);
  EXPECT_EQ(s.sends, 1u);
  EXPECT_GT(s.seconds_unnecessary, 0.0);
  EXPECT_LT(s.seconds_unnecessary, s.seconds_buffering);
}

TEST(BufferPoolTest, PeakAndLiveTracking) {
  FakeContext ctx;
  BufferPool pool;
  auto src = block(10, 1.0);
  pool.store(1.0, src.data(), 10, 0b1, ctx);
  pool.store(2.0, src.data(), 10, 0b1, ctx);
  EXPECT_EQ(pool.stats().live_entries, 2u);
  EXPECT_EQ(pool.stats().peak_entries, 2u);
  EXPECT_EQ(pool.stats().peak_bytes, 160u);
  pool.drop(1.0, 0);
  EXPECT_EQ(pool.stats().live_entries, 1u);
  EXPECT_EQ(pool.stats().peak_entries, 2u);
  EXPECT_EQ(pool.stats().live_bytes, 80u);
}

TEST(BufferPoolTest, SkipCounter) {
  BufferPool pool;
  pool.note_skip();
  pool.note_skip();
  EXPECT_EQ(pool.stats().skips, 2u);
  EXPECT_EQ(pool.stats().stores, 0u);
}

TEST(BufferPoolTest, BufferedBelowFiltersByConnection) {
  FakeContext ctx;
  BufferPool pool;
  auto src = block(4, 1.0);
  pool.store(1.0, src.data(), 4, 0b01, ctx);
  pool.store(2.0, src.data(), 4, 0b10, ctx);
  pool.store(3.0, src.data(), 4, 0b11, ctx);
  EXPECT_EQ(pool.buffered_below(10.0, 0), (std::vector<Timestamp>{1.0, 3.0}));
  EXPECT_EQ(pool.buffered_below(10.0, 1), (std::vector<Timestamp>{2.0, 3.0}));
  EXPECT_EQ(pool.buffered_below(2.5, 0), (std::vector<Timestamp>{1.0}));
}

TEST(BufferPoolTest, SnapshotOfAbsentThrows) {
  BufferPool pool;
  EXPECT_THROW(pool.snapshot(1.0), util::InternalError);
  EXPECT_THROW(pool.mark_sent(1.0, 0), util::InternalError);
  EXPECT_THROW(pool.wire_payload(1.0), util::InternalError);
}

TEST(BufferPoolTest, WirePayloadIsPutVectorFrameAliasingTheSnapshot) {
  FakeContext ctx;
  BufferPool pool;
  auto src = block(10, 2.25);
  pool.store(1.0, src.data(), 10, 0b1, ctx);

  const transport::Payload frame = pool.wire_payload(1.0);
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame.size(), transport::kLengthPrefixBytes + 10 * sizeof(double));
  // The frame aliases the pooled snapshot bytes — no copy was made.
  EXPECT_EQ(frame.data() + transport::kLengthPrefixBytes,
            reinterpret_cast<const std::byte*>(pool.snapshot(1.0).data()));

  // And it parses exactly like a Writer::put_vector message.
  transport::Reader r(frame);
  const auto v = r.get_vector<double>();
  EXPECT_TRUE(r.exhausted());
  ASSERT_EQ(v.size(), 10u);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 2.25);
}

TEST(BufferPoolTest, ArenaRecyclesFreedFrames) {
  FakeContext ctx;
  BufferPool pool;
  auto src = block(64, 1.0);
  pool.store(1.0, src.data(), 64, 0b1, ctx);
  const void* first = pool.snapshot(1.0).data();
  pool.drop(1.0, 0);
  pool.store(2.0, src.data(), 64, 0b1, ctx);
  EXPECT_EQ(pool.stats().arena_allocs, 1u);
  EXPECT_EQ(pool.stats().arena_reuses, 1u);
  EXPECT_EQ(pool.snapshot(2.0).data(), first) << "same-size store must reuse the freed frame";
  // Exact byte accounting survives recycling.
  EXPECT_EQ(pool.stats().live_bytes, 64 * sizeof(double));
  EXPECT_EQ(pool.stats().peak_bytes, 64 * sizeof(double));
  EXPECT_EQ(pool.stats().bytes_copied, 2 * 64 * sizeof(double));
}

TEST(BufferPoolTest, InFlightPayloadBlocksRecycling) {
  FakeContext ctx;
  BufferPool pool;
  auto src = block(32, 7.5);
  pool.store(1.0, src.data(), 32, 0b1, ctx);
  const transport::Payload in_flight = pool.wire_payload(1.0);
  pool.drop(1.0, 0);

  // The frame is still referenced by `in_flight`, so the next store must
  // allocate fresh instead of scribbling over bytes someone may read.
  auto src2 = block(32, -1.0);
  pool.store(2.0, src2.data(), 32, 0b1, ctx);
  EXPECT_EQ(pool.stats().arena_reuses, 0u);
  EXPECT_EQ(pool.stats().arena_allocs, 2u);

  transport::Reader r(in_flight);
  const auto v = r.get_vector<double>();
  ASSERT_EQ(v.size(), 32u);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 7.5) << "in-flight payload bytes were clobbered";
}

}  // namespace
}  // namespace ccf::core
