// Approximate-matching tests: policies, acceptable regions, decidability,
// PENDING semantics, pruning/clip behaviour, end-of-stream.
#include <gtest/gtest.h>

#include <cmath>

#include "core/matcher.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ccf::core {
namespace {

TEST(MatchPolicyTest, ParseAndPrint) {
  EXPECT_EQ(parse_match_policy("REGL"), MatchPolicy::REGL);
  EXPECT_EQ(parse_match_policy("REGU"), MatchPolicy::REGU);
  EXPECT_EQ(parse_match_policy("REG"), MatchPolicy::REG);
  EXPECT_THROW(parse_match_policy("LOWER"), util::InvalidArgument);
  EXPECT_EQ(to_string(MatchPolicy::REGL), "REGL");
}

TEST(MatchPolicyTest, AcceptableRegions) {
  EXPECT_EQ(acceptable_region(MatchPolicy::REGL, 20.0, 2.5), (Interval{17.5, 20.0}));
  EXPECT_EQ(acceptable_region(MatchPolicy::REGU, 20.0, 2.5), (Interval{20.0, 22.5}));
  EXPECT_EQ(acceptable_region(MatchPolicy::REG, 20.0, 2.5), (Interval{17.5, 22.5}));
  EXPECT_THROW(acceptable_region(MatchPolicy::REGL, 1.0, -0.1), util::InvalidArgument);
}

TEST(MatchPolicyTest, IntervalPredicates) {
  const Interval r{17.5, 20.0};
  EXPECT_TRUE(r.contains(17.5));
  EXPECT_TRUE(r.contains(20.0));
  EXPECT_FALSE(r.contains(20.1));
  EXPECT_TRUE(r.below(17.4));
  EXPECT_TRUE(r.above(20.5));
}

TEST(MatchPolicyTest, BetterMatchPrefersCloserThenLater) {
  EXPECT_TRUE(better_match(19.6, 18.6, 20.0));
  EXPECT_FALSE(better_match(18.6, 19.6, 20.0));
  // Equidistant: prefer the later timestamp.
  EXPECT_TRUE(better_match(21.0, 19.0, 20.0));
  EXPECT_FALSE(better_match(19.0, 21.0, 20.0));
}

ExportHistory history_with(std::initializer_list<Timestamp> ts) {
  ExportHistory h;
  for (Timestamp t : ts) h.record(t);
  return h;
}

TEST(Matcher, PaperFigure5Scenario) {
  // Exports 1.6 .. 14.6; request D@20 under REGL tol 2.5 -> PENDING with
  // latest 14.6 (paper Fig. 5 lines 5-6).
  ExportHistory h;
  for (int k = 1; k <= 14; ++k) h.record(0.6 + k);
  const MatchQuery q{20.0, MatchPolicy::REGL, 2.5};
  const MatchAnswer a = h.evaluate(q);
  EXPECT_EQ(a.result, MatchResult::Pending);
  EXPECT_DOUBLE_EQ(a.latest_exported, 14.6);

  // Once exports reach 20.6, the match is 19.6.
  for (int k = 15; k <= 20; ++k) h.record(0.6 + k);
  const MatchAnswer b = h.evaluate(q);
  EXPECT_EQ(b.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(b.matched, 19.6);
}

TEST(Matcher, ReglDecidableExactlyAtRequestTimestamp) {
  auto h = history_with({19.0, 20.0});
  const MatchQuery q{20.0, MatchPolicy::REGL, 2.5};
  const MatchAnswer a = h.evaluate(q);
  EXPECT_EQ(a.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a.matched, 20.0);  // exact hit is the best possible
}

TEST(Matcher, ReglNoMatchWhenRegionJumpedOver) {
  auto h = history_with({10.0, 25.0});  // nothing in [17.5, 20]
  const MatchAnswer a = h.evaluate({20.0, MatchPolicy::REGL, 2.5});
  EXPECT_EQ(a.result, MatchResult::NoMatch);
}

TEST(Matcher, ReguPicksSmallestAboveRequest) {
  auto h = history_with({19.0, 20.5, 21.0, 23.0});
  const MatchAnswer a = h.evaluate({20.0, MatchPolicy::REGU, 2.5});
  EXPECT_EQ(a.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a.matched, 20.5);
}

TEST(Matcher, ReguPendingUntilFirstExportAtOrAboveRequest) {
  auto h = history_with({19.0, 19.9});
  EXPECT_EQ(h.evaluate({20.0, MatchPolicy::REGU, 2.5}).result, MatchResult::Pending);
  h.record(24.0);  // above the region [20, 22.5]
  EXPECT_EQ(h.evaluate({20.0, MatchPolicy::REGU, 2.5}).result, MatchResult::NoMatch);
}

TEST(Matcher, RegPicksClosestEitherSide) {
  auto h = history_with({18.0, 21.0, 30.0});
  const MatchAnswer a = h.evaluate({20.0, MatchPolicy::REG, 2.5});
  EXPECT_EQ(a.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a.matched, 21.0);  // distance 1 beats distance 2
}

TEST(Matcher, RegBelowSideWinsWhenCloser) {
  auto h = history_with({19.8, 22.0});
  const MatchAnswer a = h.evaluate({20.0, MatchPolicy::REG, 2.5});
  EXPECT_EQ(a.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a.matched, 19.8);
}

TEST(Matcher, RegStillPendingWhileBelowRequest) {
  // 19.9 is an excellent candidate but a future export could be at 20.0.
  auto h = history_with({19.9});
  EXPECT_EQ(h.evaluate({20.0, MatchPolicy::REG, 2.5}).result, MatchResult::Pending);
}

TEST(Matcher, EmptyHistoryPending) {
  ExportHistory h;
  const MatchAnswer a = h.evaluate({20.0, MatchPolicy::REGL, 2.5});
  EXPECT_EQ(a.result, MatchResult::Pending);
  EXPECT_EQ(a.latest_exported, kNeverExported);
}

TEST(Matcher, FinalizeMakesEverythingDecisive) {
  auto h = history_with({5.0});
  EXPECT_EQ(h.evaluate({20.0, MatchPolicy::REGL, 2.5}).result, MatchResult::Pending);
  h.finalize();
  EXPECT_TRUE(h.finalized());
  EXPECT_EQ(h.evaluate({20.0, MatchPolicy::REGL, 2.5}).result, MatchResult::NoMatch);
  EXPECT_EQ(h.evaluate({6.0, MatchPolicy::REGL, 2.5}).result, MatchResult::Match);
  EXPECT_THROW(h.record(30.0), util::InvalidArgument);
}

TEST(Matcher, RecordRequiresStrictlyIncreasing) {
  ExportHistory h;
  h.record(5.0);
  EXPECT_THROW(h.record(5.0), util::InvalidArgument);
  EXPECT_THROW(h.record(4.0), util::InvalidArgument);
  h.record(5.1);
  EXPECT_DOUBLE_EQ(h.latest(), 5.1);
}

TEST(Matcher, PruneBelowRemovesCandidatesButKeepsLatest) {
  auto h = history_with({1.0, 2.0, 3.0});
  h.prune_below(2.5);
  EXPECT_EQ(h.count(), 1u);  // only 3.0 left as candidate
  EXPECT_DOUBLE_EQ(h.latest(), 3.0);
  // Records below the clip do not become candidates but advance latest.
  h.prune_below(10.0);
  h.record(4.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.latest(), 4.0);
  h.record(10.0);  // at the (inclusive) clip
  EXPECT_EQ(h.count(), 1u);
}

TEST(Matcher, PruneThroughIsExclusive) {
  auto h = history_with({1.0, 2.0});
  h.prune_through(2.0);
  EXPECT_EQ(h.count(), 0u);
  h.record(2.5);
  EXPECT_EQ(h.count(), 1u);
  // prune_through then record exactly at the clip: excluded.
  h.prune_through(3.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 0u);
  h.record(3.1);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Matcher, DecidabilityUsesTrueLatestAfterPrune) {
  auto h = history_with({18.0, 19.6, 21.0});
  h.prune_through(19.6);  // 19.6 consumed; candidate list holds only 21.0
  const MatchAnswer a = h.evaluate({20.0, MatchPolicy::REGL, 2.5});
  // Latest (21.0) >= 20 -> decidable; the only candidate 21.0 is outside
  // [17.5, 20], and 18/19.6 are consumed -> NO MATCH.
  EXPECT_EQ(a.result, MatchResult::NoMatch);
  EXPECT_DOUBLE_EQ(a.latest_exported, 21.0);
}

TEST(Matcher, BestCandidateIgnoresDecidability) {
  auto h = history_with({18.0, 19.0});
  const MatchQuery q{20.0, MatchPolicy::REGL, 2.5};
  const auto best = h.best_candidate(q);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(*best, 19.0);
  EXPECT_EQ(h.evaluate(q).result, MatchResult::Pending);
}

TEST(Matcher, ZeroToleranceIsExactMatching) {
  auto h = history_with({19.0, 20.0, 21.0});
  const MatchAnswer hit = h.evaluate({20.0, MatchPolicy::REGL, 0.0});
  EXPECT_EQ(hit.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(hit.matched, 20.0);
  const MatchAnswer miss = h.evaluate({20.5, MatchPolicy::REGL, 0.0});
  EXPECT_EQ(miss.result, MatchResult::NoMatch);
}

TEST(MatchResultTest, ToString) {
  EXPECT_EQ(to_string(MatchResult::Match), "MATCH");
  EXPECT_EQ(to_string(MatchResult::NoMatch), "NO_MATCH");
  EXPECT_EQ(to_string(MatchResult::Pending), "PENDING");
}

// Property sweep: for every policy, once the history passes the requested
// timestamp the evaluation is decisive, and a reported match is always the
// in-region timestamp closest to the request.
class MatcherProperty : public ::testing::TestWithParam<MatchPolicy> {};

TEST_P(MatcherProperty, DecisiveAndOptimalOncePastRequest) {
  const MatchPolicy policy = GetParam();
  const double tol = 3.0;
  for (double x = 5.0; x <= 40.0; x += 2.7) {
    ExportHistory h;
    std::vector<Timestamp> all;
    for (double t = 0.3; t < x + 10; t += 1.7) {
      h.record(t);
      all.push_back(t);
    }
    const MatchQuery q{x, policy, tol};
    const MatchAnswer a = h.evaluate(q);
    ASSERT_TRUE(a.decisive());
    const Interval region = q.region();
    // Reference: brute-force best.
    std::optional<Timestamp> best;
    for (Timestamp t : all) {
      if (region.contains(t) && (!best || better_match(t, *best, x))) best = t;
    }
    if (best) {
      ASSERT_EQ(a.result, MatchResult::Match);
      EXPECT_DOUBLE_EQ(a.matched, *best);
    } else {
      EXPECT_EQ(a.result, MatchResult::NoMatch);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, MatcherProperty,
                         ::testing::Values(MatchPolicy::REGL, MatchPolicy::REGU,
                                           MatchPolicy::REG),
                         [](const ::testing::TestParamInfo<MatchPolicy>& info) {
                           return to_string(info.param);
                         });

// Regression: NO_MATCH for REGU/REG is not decidable just because exports
// reached the requested timestamp — the region extends above the request,
// so a later export can still land inside it. (Found by the model-checking
// harness: a slow rank that had consumed its last candidate answered a
// premature NO_MATCH while its peers matched a later export.)
TEST(Matcher, ReguUndecidableWhileRegionUpperEdgeUnreached) {
  auto h = history_with({7.5});
  h.prune_through(7.5);  // consumed by an earlier request; no candidates left
  const MatchQuery q{6.75, MatchPolicy::REGU, 2.33};  // region [6.75, 9.08]
  EXPECT_EQ(h.evaluate(q).result, MatchResult::Pending);
  h.record(8.23);  // lands inside the region -> the answer was not NO_MATCH
  const MatchAnswer a = h.evaluate(q);
  EXPECT_EQ(a.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a.matched, 8.23);
}

TEST(Matcher, RegNoMatchOnlyOncePastRegionUpperEdge) {
  auto h = history_with({19.0, 20.1});
  h.prune_through(20.1);
  const MatchQuery q{20.3, MatchPolicy::REG, 0.5};  // region [19.8, 20.8]
  EXPECT_EQ(h.evaluate(q).result, MatchResult::Pending);
  h.record(20.9);  // past the upper edge, nothing can arrive in the region
  EXPECT_EQ(h.evaluate(q).result, MatchResult::NoMatch);
}

TEST(Matcher, RegBelowBestDecisiveAtMirrorPoint) {
  // Best 19.0 sits 1.0 below the request; an export at distance <= 1.0
  // above (i.e. up to 21.0) would win the closer-then-later rule. Latest
  // 21.5 is past that mirror point, so 19.0 is final well before the
  // region's upper edge (25.0).
  auto h = history_with({19.0, 21.5});
  const MatchAnswer a = h.evaluate({20.0, MatchPolicy::REG, 5.0});
  EXPECT_EQ(a.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a.matched, 19.0);
}

TEST(Matcher, RegBelowBestPendingBeforeMirrorPoint) {
  auto h = history_with({19.0});
  const MatchQuery q{20.0, MatchPolicy::REG, 5.0};
  EXPECT_EQ(h.evaluate(q).result, MatchResult::Pending);  // 20.9 could still come
  h.record(20.4);  // closer than 19.0 -> becomes the match
  const MatchAnswer a = h.evaluate(q);
  EXPECT_EQ(a.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a.matched, 20.4);
}

// --- Decidability edge cases pinned against the interval index ---------
//
// Each of these is a named regression (not just fuzz-covered) for a
// boundary the indexed engine's cached thresholds must get exactly right.

TEST(Matcher, RegMirrorPointExactTieDecidedByLaterPreference) {
  // Best 19.0 sits 1.0 below the request; the mirror point is exactly
  // 2x - best = 21.0. An export landing exactly there ties on distance
  // and the tie prefers the later timestamp — so the evaluation becomes
  // decisive at equality, not strictly past it, and the match is the
  // mirror-point export itself.
  auto h = history_with({19.0});
  const MatchQuery q{20.0, MatchPolicy::REG, 5.0};
  EXPECT_EQ(h.evaluate(q).result, MatchResult::Pending);
  h.record(21.0);  // latest == 2x - best exactly
  const MatchAnswer a = h.evaluate(q);
  EXPECT_EQ(a.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a.matched, 21.0);
}

TEST(Matcher, RegIndexedThresholdAgreesAtMirrorPointTie) {
  auto h = history_with({19.0});
  const MatchQuery q{20.0, MatchPolicy::REG, 5.0};
  const std::uint64_t id = h.index_pending(q);
  EXPECT_FALSE(h.front_pending_decidable());
  h.record(19.5);  // closer best, new mirror point 20.5; still short of it
  EXPECT_FALSE(h.front_pending_decidable());
  h.record(20.5);  // exactly the new mirror point: tie, later wins
  EXPECT_TRUE(h.front_pending_decidable());
  const std::size_t n = h.evaluate_all([&](std::uint64_t got, const MatchAnswer& ans) {
    EXPECT_EQ(got, id);
    EXPECT_EQ(ans.result, MatchResult::Match);
    EXPECT_DOUBLE_EQ(ans.matched, 20.5);
    h.unindex_pending(got);
  });
  EXPECT_EQ(n, 1u);
}

TEST(Matcher, ReguDecidableExactlyAtUpperEdge) {
  // REGU region [20, 22.5]: an export exactly at the upper edge is both
  // in-region and the decidability boundary — MATCH at equality.
  auto h = history_with({19.9});
  const MatchQuery q{20.0, MatchPolicy::REGU, 2.5};
  EXPECT_EQ(h.evaluate(q).result, MatchResult::Pending);
  h.record(22.5);
  const MatchAnswer a = h.evaluate(q);
  EXPECT_EQ(a.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a.matched, 22.5);
}

TEST(Matcher, ReguNoMatchJustPastUpperEdge) {
  auto h = history_with({19.9});
  const MatchQuery q{20.0, MatchPolicy::REGU, 2.5};
  const std::uint64_t id = h.index_pending(q);
  EXPECT_FALSE(h.front_pending_decidable());
  h.record(22.6);  // first export past the edge, nothing ever in-region
  EXPECT_TRUE(h.front_pending_decidable());
  const MatchAnswer a = h.evaluate(q);
  EXPECT_EQ(a.result, MatchResult::NoMatch);
  h.unindex_pending(id);
}

TEST(Matcher, IndexedRequestSurvivesPruneIntoItsWindow) {
  // Prune below an indexed request's window (clipping away its cached
  // best), then re-record into the window: the index must re-derive the
  // best — first to "none" (threshold falls back to the region edge),
  // then to the fresh export.
  auto h = history_with({18.0, 19.0});
  const MatchQuery q{20.0, MatchPolicy::REG, 2.5};  // region [17.5, 22.5]
  const std::uint64_t id = h.index_pending(q);      // cached best 19.0
  h.prune_below(19.5);                              // best pruned away
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.front_pending_decidable());  // threshold back to hi = 22.5
  EXPECT_EQ(h.evaluate(q).result, MatchResult::Pending);
  h.record(20.5);  // re-record into the window, at/above x: unbeatable
  EXPECT_TRUE(h.front_pending_decidable());
  const MatchAnswer a = h.evaluate(q);
  EXPECT_EQ(a.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(a.matched, 20.5);
  h.unindex_pending(id);
}

TEST(Matcher, EmptyHistoryIndexedRequestDecidesOnlyAtFinalize) {
  ExportHistory h;
  const MatchQuery q{20.0, MatchPolicy::REGL, 2.5};
  EXPECT_EQ(h.evaluate(q).result, MatchResult::Pending);  // empty history
  h.index_pending(q);
  EXPECT_FALSE(h.front_pending_decidable());
  h.finalize();
  EXPECT_TRUE(h.front_pending_decidable());
  const std::size_t n = h.evaluate_all([&](std::uint64_t id, const MatchAnswer& ans) {
    EXPECT_EQ(ans.result, MatchResult::NoMatch);
    h.unindex_pending(id);
  });
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(h.pending_count(), 0u);
}

TEST(Matcher, EvaluateAllDrainsEveryNewlyDecidableRequest) {
  // Three stacked REGL requests, each with an in-region candidate; one
  // export past the last region makes all three decidable, and a single
  // batch sweep resolves them front-first while the resolver's
  // prune_through keeps later requests' answers intact.
  ExportHistory h;
  std::vector<std::uint64_t> ids;
  std::vector<Timestamp> matched;
  const double tol = 1.0;
  h.record(9.5);
  ids.push_back(h.index_pending({10.0, MatchPolicy::REGL, tol}));
  h.record(11.5);
  ids.push_back(h.index_pending({12.0, MatchPolicy::REGL, tol}));
  h.record(13.5);
  ids.push_back(h.index_pending({14.0, MatchPolicy::REGL, tol}));
  EXPECT_EQ(h.pending_count(), 3u);
  h.record(15.0);  // past every region: all three fronts decidable
  const std::size_t n = h.evaluate_all([&](std::uint64_t id, const MatchAnswer& ans) {
    EXPECT_EQ(id, ids[matched.size()]);
    ASSERT_EQ(ans.result, MatchResult::Match);
    matched.push_back(ans.matched);
    h.unindex_pending(id);
    h.prune_through(ans.matched);
  });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(matched, (std::vector<Timestamp>{9.5, 11.5, 13.5}));
  EXPECT_EQ(h.pending_count(), 0u);
}

TEST(Matcher, PendingCoveringFindsTheOverlappingRun) {
  // Overlapping REG regions (request stride below the tolerance): the
  // covering span of a timestamp is the contiguous run of indexed
  // requests whose region contains it.
  ExportHistory h;
  const double tol = 2.0;
  h.index_pending({10.0, MatchPolicy::REG, tol});  // [8, 12]
  h.index_pending({11.0, MatchPolicy::REG, tol});  // [9, 13]
  h.index_pending({14.0, MatchPolicy::REG, tol});  // [12, 16]
  EXPECT_EQ(h.pending_covering(8.5).count, 1u);
  EXPECT_EQ(h.pending_covering(9.5).first, 0u);
  EXPECT_EQ(h.pending_covering(9.5).count, 2u);
  EXPECT_EQ(h.pending_covering(12.0).count, 3u);  // edge of all three
  EXPECT_EQ(h.pending_covering(13.5).first, 2u);
  EXPECT_EQ(h.pending_covering(13.5).count, 1u);
  EXPECT_EQ(h.pending_covering(17.0).count, 0u);
}

// Property sweeps over random export streams: the policy-region
// invariants of Eq. 1-2 and monotonicity in the tolerance.
struct RandomStream {
  ExportHistory history;
  std::vector<Timestamp> all;
};

RandomStream random_stream(util::Xoshiro256& rng) {
  RandomStream s;
  Timestamp t = 0;
  const int n = 1 + static_cast<int>(rng.below(30));
  for (int i = 0; i < n; ++i) {
    t += rng.uniform(0.05, 2.0);
    s.history.record(t);
    s.all.push_back(t);
  }
  s.history.finalize();  // every evaluation below is decisive
  return s;
}

TEST(MatcherPropertySweep, ReglMatchesNeverAboveRequestAndWithinTolerance) {
  util::Xoshiro256 rng(2026);
  for (int trial = 0; trial < 300; ++trial) {
    auto s = random_stream(rng);
    const double x = rng.uniform(0.0, 35.0);
    const double tol = rng.uniform(0.0, 5.0);
    const MatchAnswer a = s.history.evaluate({x, MatchPolicy::REGL, tol});
    if (a.result != MatchResult::Match) continue;
    EXPECT_LE(a.matched, x);
    EXPECT_GE(a.matched, x - tol);
  }
}

TEST(MatcherPropertySweep, ReguMatchesNeverBelowRequestAndWithinTolerance) {
  util::Xoshiro256 rng(2027);
  for (int trial = 0; trial < 300; ++trial) {
    auto s = random_stream(rng);
    const double x = rng.uniform(0.0, 35.0);
    const double tol = rng.uniform(0.0, 5.0);
    const MatchAnswer a = s.history.evaluate({x, MatchPolicy::REGU, tol});
    if (a.result != MatchResult::Match) continue;
    EXPECT_GE(a.matched, x);
    EXPECT_LE(a.matched, x + tol);
  }
}

TEST(MatcherPropertySweep, RegMatchIsNearestWithinTolerance) {
  util::Xoshiro256 rng(2028);
  for (int trial = 0; trial < 300; ++trial) {
    auto s = random_stream(rng);
    const double x = rng.uniform(0.0, 35.0);
    const double tol = rng.uniform(0.0, 5.0);
    const MatchAnswer a = s.history.evaluate({x, MatchPolicy::REG, tol});
    if (a.result != MatchResult::Match) {
      for (Timestamp t : s.all) EXPECT_GT(std::abs(t - x), tol);
      continue;
    }
    EXPECT_LE(std::abs(a.matched - x), tol);
    for (Timestamp t : s.all) {
      // Nothing in the stream is strictly closer, and on a distance tie
      // the match is the later timestamp.
      EXPECT_FALSE(better_match(t, a.matched, x)) << t << " beats " << a.matched;
    }
  }
}

TEST(MatcherPropertySweep, MatchingIsMonotoneInTolerance) {
  // Widening the tolerance never loses a match and never worsens the
  // distance to the request.
  util::Xoshiro256 rng(2029);
  for (MatchPolicy policy : {MatchPolicy::REGL, MatchPolicy::REGU, MatchPolicy::REG}) {
    for (int trial = 0; trial < 150; ++trial) {
      auto s = random_stream(rng);
      const double x = rng.uniform(0.0, 35.0);
      const double tol = rng.uniform(0.0, 4.0);
      const double wider = tol + rng.uniform(0.0, 4.0);
      const MatchAnswer narrow = s.history.evaluate({x, policy, tol});
      const MatchAnswer wide = s.history.evaluate({x, policy, wider});
      if (narrow.result != MatchResult::Match) continue;
      ASSERT_EQ(wide.result, MatchResult::Match);
      EXPECT_LE(std::abs(wide.matched - x), std::abs(narrow.matched - x));
    }
  }
}

}  // namespace
}  // namespace ccf::core
