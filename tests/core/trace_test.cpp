// Trace recorder formatting tests (the paper's Fig. 5/7/8 listing style).
#include <gtest/gtest.h>

#include "core/trace.hpp"

namespace ccf::core {
namespace {

TEST(TraceTest, FormatsPaperStyleLines) {
  Trace trace("D", true);
  trace.emit(TraceKind::ExportCopy, 0.0, 1.6);
  trace.emit(TraceKind::ExportSkip, 0.1, 15.6);
  trace.emit(TraceKind::Request, 0.2, 20.0);
  trace.emit(TraceKind::Reply, 0.2, 20.0, 14.6, MatchResult::Pending);
  trace.emit(TraceKind::BuddyHelp, 0.3, 20.0, 19.6, MatchResult::Match);
  trace.emit(TraceKind::Remove, 0.3, 1.6, 14.6);
  trace.emit(TraceKind::Remove, 0.3, 16.6, 16.6);
  trace.emit(TraceKind::SendData, 0.4, 19.6);
  trace.emit(TraceKind::LocalDecision, 0.5, 40.0, 39.6, MatchResult::Match);

  const std::string listing = trace.listing();
  EXPECT_NE(listing.find("1  export D@1.6, call memcpy."), std::string::npos);
  EXPECT_NE(listing.find("2  export D@15.6, skip memcpy."), std::string::npos);
  EXPECT_NE(listing.find("3  receive request for D@20."), std::string::npos);
  EXPECT_NE(listing.find("4  reply {D@20, PENDING, D@14.6}."), std::string::npos);
  EXPECT_NE(listing.find("5  receive buddy-help {D@20, YES, D@19.6}."), std::string::npos);
  EXPECT_NE(listing.find("6  remove D@1.6, ..., D@14.6."), std::string::npos);
  EXPECT_NE(listing.find("7  remove D@16.6."), std::string::npos);
  EXPECT_NE(listing.find("8  send D@19.6 out."), std::string::npos);
  EXPECT_NE(listing.find("9  decide {D@40, MATCH, D@39.6}."), std::string::npos);
}

TEST(TraceTest, NoMatchHelpPrintsNo) {
  Trace trace("D", true);
  trace.emit(TraceKind::BuddyHelp, 0.0, 20.0, kNeverExported, MatchResult::NoMatch);
  EXPECT_NE(trace.listing().find("{D@20, NO, "), std::string::npos);
}

TEST(TraceTest, DisabledEmitsNothing) {
  Trace trace("D", false);
  trace.emit(TraceKind::ExportCopy, 0.0, 1.0);
  EXPECT_TRUE(trace.events().empty());
  trace.set_enabled(true);
  trace.emit(TraceKind::ExportCopy, 0.0, 1.0);
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(TraceTest, BoundedByMaxEvents) {
  Trace trace("D", true, /*max_events=*/3);
  for (int i = 0; i < 10; ++i) trace.emit(TraceKind::ExportCopy, 0.0, i + 0.5);
  EXPECT_EQ(trace.events().size(), 3u);
}

TEST(TraceTest, ClearResets) {
  Trace trace("D", true);
  trace.emit(TraceKind::ExportCopy, 0.0, 1.0);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceTest, CustomObjectName) {
  Trace trace("Flux", true);
  trace.emit(TraceKind::ExportCopy, 0.0, 2.5);
  EXPECT_NE(trace.listing().find("export Flux@2.5"), std::string::npos);
}

}  // namespace
}  // namespace ccf::core
