// Non-blocking (pipelined) import tests: request/wait split, overlap of
// computation with matching and transfer, ordering rules, misuse handling.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;

Config make_config(int exp_procs, int imp_procs, double tol = 0.5) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", exp_procs, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", imp_procs, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", MatchPolicy::REGL, tol});
  return config;
}

void exporter_body(const BlockDecomposition& decomp, int versions, CouplingRuntime& rt,
                   runtime::ProcessContext& ctx) {
  rt.define_export_region("r", decomp);
  rt.commit();
  DistArray2D<double> data(decomp, rt.rank());
  for (int k = 1; k <= versions; ++k) {
    ctx.compute(1e-5);
    data.fill([&](dist::Index, dist::Index) { return static_cast<double>(k); });
    rt.export_region("r", k, data);
  }
  rt.finalize();
}

TEST(AsyncImport, PipelinedRequestsCompleteInOrder) {
  Config config = make_config(2, 2);
  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    exporter_body(decomp, 12, rt, ctx);
  });
  std::vector<double> matched;
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> out(decomp, rt.rank());
    // Issue three requests back-to-back, compute, then drain them.
    std::vector<CouplingRuntime::ImportTicket> tickets;
    for (double x : {3.0, 6.0, 9.0}) tickets.push_back(rt.import_request("r", x));
    EXPECT_EQ(rt.pending_imports("r"), 3u);
    ctx.compute(1e-3);  // overlapped work
    for (const auto& ticket : tickets) {
      const auto st = rt.import_wait(ticket, out);
      ASSERT_TRUE(st.ok());
      if (rt.rank() == 0) {
        matched.push_back(st.matched);
        EXPECT_DOUBLE_EQ(out.data()[0], st.matched);
      }
    }
    EXPECT_EQ(rt.pending_imports("r"), 0u);
    rt.finalize();
  });
  system.run();
  EXPECT_EQ(matched, (std::vector<double>{3.0, 6.0, 9.0}));
}

TEST(AsyncImport, MixedBlockingAndPipelined) {
  Config config = make_config(2, 3);
  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  const auto e_decomp = BlockDecomposition::make_grid(9, 9, 2);
  const auto i_decomp = BlockDecomposition::make_grid(9, 9, 3);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    exporter_body(e_decomp, 20, rt, ctx);
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> out(i_decomp, rt.rank());
    EXPECT_TRUE(rt.import_region("r", 2.0, out).ok());  // blocking
    auto t1 = rt.import_request("r", 5.0);              // pipelined
    auto t2 = rt.import_request("r", 8.0);
    EXPECT_TRUE(rt.import_wait(t1, out).ok());
    EXPECT_TRUE(rt.import_region("r", 11.0, out).ok());  // hmm: blocked by t2?
    rt.finalize();
  });
  // import_region after an unfinished pipelined request must fail: waits
  // are ordered. The body above is intentionally wrong.
  EXPECT_THROW(system.run(), util::InvalidArgument);
}

TEST(AsyncImport, WaitOrderingEnforced) {
  Config config = make_config(1, 1);
  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(4, 4, 1);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    exporter_body(decomp, 10, rt, ctx);
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> out(decomp, rt.rank());
    auto t1 = rt.import_request("r", 3.0);
    auto t2 = rt.import_request("r", 6.0);
    EXPECT_THROW((void)rt.import_wait(t2, out), util::InvalidArgument);  // out of order
    EXPECT_TRUE(rt.import_wait(t1, out).ok());
    EXPECT_TRUE(rt.import_wait(t2, out).ok());
    EXPECT_THROW((void)rt.import_wait(t2, out), util::InvalidArgument);  // double wait
    rt.finalize();
  });
  system.run();
}

TEST(AsyncImport, FinalizeWithUnfinishedTicketRejected) {
  Config config = make_config(1, 1);
  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(4, 4, 1);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    exporter_body(decomp, 10, rt, ctx);
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    (void)rt.import_request("r", 3.0);
    rt.finalize();  // unfinished ticket -> error
  });
  EXPECT_THROW(system.run(), util::InvalidArgument);
}

TEST(AsyncImport, DeepPipelineAgainstSlowExporter) {
  // Many requests in flight against an exporter that is still producing:
  // multi-outstanding bookkeeping at the exporter and ordered completion.
  Config config = make_config(3, 2, /*tol=*/1.0);
  CoupledSystem system(config, runtime::ClusterOptions{}, FrameworkOptions{});
  const auto e_decomp = BlockDecomposition::make_grid(12, 12, 3);
  const auto i_decomp = BlockDecomposition::make_grid(12, 12, 2);
  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    const double work = rt.rank() == 2 ? 3e-4 : 1e-5;  // straggler
    for (int k = 1; k <= 40; ++k) {
      ctx.compute(work);
      data.fill([&](dist::Index, dist::Index) { return static_cast<double>(k); });
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });
  std::vector<double> matched;
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext&) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> out(i_decomp, rt.rank());
    std::vector<CouplingRuntime::ImportTicket> tickets;
    for (int j = 1; j <= 8; ++j) tickets.push_back(rt.import_request("r", j * 5.0));
    for (const auto& ticket : tickets) {
      const auto st = rt.import_wait(ticket, out);
      ASSERT_TRUE(st.ok());
      if (rt.rank() == 0) matched.push_back(st.matched);
    }
    rt.finalize();
  });
  system.run();
  const std::vector<double> expect{5, 10, 15, 20, 25, 30, 35, 40};
  EXPECT_EQ(matched, expect);
}

}  // namespace
}  // namespace ccf::core
