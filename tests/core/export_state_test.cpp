// ExportRegionState unit tests driven through a scripted context: the
// buffer/skip/supersede rules, buddy-help handling, local decisions, data
// shipment, Eq.(1) attribution — including line-by-line reproduction of
// the paper's Figure 7 (with buddy-help) and Figure 8 (without) listings.
#include <gtest/gtest.h>

#include "core/export_state.hpp"
#include "fake_context.hpp"

namespace ccf::core {
namespace {

using testing::FakeContext;

constexpr ProcId kRep = 99;
constexpr ProcId kImporterProc = 42;

class ExportStateTest : public ::testing::Test {
 protected:
  /// One exporter process owning the whole 4x4 region, one importer proc.
  ExportRegionState make_state(MatchPolicy policy, double tol, bool trace = true,
                               int conn_id = 0) {
    dist::BlockDecomposition one(4, 4, 1, 1);
    ExportConnConfig cfg{conn_id, policy, tol, dist::RedistSchedule(one, one, one.domain()),
                         {kImporterProc}};
    std::vector<ExportConnConfig> conns;
    conns.push_back(std::move(cfg));
    FrameworkOptions options;
    options.trace = trace;
    return ExportRegionState("r1", one.domain(), 0, std::move(conns), options, kRep);
  }

  /// Exports a block whose every element equals the timestamp.
  void do_export(ExportRegionState& state, Timestamp t) {
    std::vector<double> block(16, t);
    state.on_export(t, block.data(), ctx_);
  }

  void send_request(ExportRegionState& state, std::uint32_t seq, Timestamp x,
                    std::uint32_t conn = 0) {
    state.on_forwarded_request(RequestMsg{conn, seq, x}, ctx_);
  }

  void send_help(ExportRegionState& state, std::uint32_t seq, Timestamp x, MatchResult result,
                 Timestamp matched, std::uint32_t conn = 0) {
    state.on_buddy_help(AnswerMsg{conn, seq, x, result, matched}, ctx_);
  }

  ResponseMsg last_response() {
    auto responses = ctx_.sent_with_tag(kTagProcResponse);
    CCF_CHECK(!responses.empty(), "no responses sent");
    return ResponseMsg::decode(responses.back().payload);
  }

  /// Data messages shipped for (conn, seq), decoded to the first element
  /// of the payload (== the version timestamp in these tests).
  std::vector<double> shipped_versions(int conn, std::uint32_t seq) {
    std::vector<double> out;
    for (const auto& m : ctx_.sent_with_tag(data_tag(conn, seq))) {
      transport::Reader r(m.payload);
      const auto data = r.get_vector<double>();
      out.push_back(data.at(0));
    }
    return out;
  }

  FakeContext ctx_;
};

TEST_F(ExportStateTest, BuffersEverythingBeforeAnyRequest) {
  auto state = make_state(MatchPolicy::REGL, 2.5);
  for (int k = 1; k <= 5; ++k) do_export(state, 0.6 + k);
  const auto stats = state.stats_snapshot();
  EXPECT_EQ(stats.exports, 5u);
  EXPECT_EQ(stats.buffer.stores, 5u);
  EXPECT_EQ(stats.buffer.skips, 0u);
  EXPECT_EQ(state.pool().size(), 5u);
}

TEST_F(ExportStateTest, RequestFreesBelowRegionAndRepliesPending) {
  auto state = make_state(MatchPolicy::REGL, 2.5);
  for (int k = 1; k <= 14; ++k) do_export(state, 0.6 + k);  // 1.6..14.6
  send_request(state, 0, 20.0);                             // region [17.5, 20]
  const ResponseMsg resp = last_response();
  EXPECT_EQ(resp.result, MatchResult::Pending);
  EXPECT_DOUBLE_EQ(resp.latest_exported, 14.6);
  // Everything below 17.5 was freed (paper Fig. 5 line 7).
  EXPECT_EQ(state.pool().size(), 0u);
  const auto stats = state.stats_snapshot();
  EXPECT_EQ(stats.buffer.frees_unsent, 14u);
}

TEST_F(ExportStateTest, PaperFigure7WithBuddyHelp) {
  // REGL precision 5.0; exports 1.6, 2.6, 3.6 buffered; request D@10.0;
  // buddy-help {D@10.0, YES, D@9.6}; exports 4.6..8.6 all SKIP; 9.6 is
  // copied and sent; 10.6 is copied (future material).
  auto state = make_state(MatchPolicy::REGL, 5.0);
  for (int k = 1; k <= 3; ++k) do_export(state, 0.6 + k);
  EXPECT_EQ(state.stats_snapshot().buffer.stores, 3u);

  send_request(state, 0, 10.0);  // region [5, 10]
  EXPECT_EQ(last_response().result, MatchResult::Pending);
  EXPECT_EQ(state.pool().size(), 0u);  // 1.6..3.6 freed (below 5)

  send_help(state, 0, 10.0, MatchResult::Match, 9.6);

  for (int k = 4; k <= 8; ++k) do_export(state, 0.6 + k);  // 4.6..8.6
  auto stats = state.stats_snapshot();
  EXPECT_EQ(stats.buffer.skips, 5u);  // all five skipped (Fig. 7 lines 8-11)
  EXPECT_EQ(stats.buffer.stores, 3u); // unchanged

  do_export(state, 9.6);  // the announced match: copy + send out
  stats = state.stats_snapshot();
  EXPECT_EQ(stats.buffer.stores, 4u);
  EXPECT_EQ(stats.transfers, 1u);
  EXPECT_EQ(shipped_versions(0, 0), std::vector<double>{9.6});

  do_export(state, 10.6);  // beyond the region floor: buffered
  EXPECT_EQ(state.stats_snapshot().buffer.stores, 5u);

  // The trace matches the paper's listing structure.
  const std::string listing = state.trace().listing();
  EXPECT_NE(listing.find("export D@4.6, skip memcpy."), std::string::npos);
  EXPECT_NE(listing.find("export D@8.6, skip memcpy."), std::string::npos);
  EXPECT_NE(listing.find("receive buddy-help {D@10, YES, D@9.6}."), std::string::npos);
  EXPECT_NE(listing.find("send D@9.6 out."), std::string::npos);
  EXPECT_NE(listing.find("export D@10.6, call memcpy."), std::string::npos);
}

TEST_F(ExportStateTest, PaperFigure8WithoutBuddyHelp) {
  // Same scenario, no help: 4.6 skips (below region), 5.6..9.6 each buffer
  // and supersede the previous candidate, 10.6 buffers and decides the
  // match 9.6 locally, which is then sent.
  auto state = make_state(MatchPolicy::REGL, 5.0);
  for (int k = 1; k <= 3; ++k) do_export(state, 0.6 + k);
  send_request(state, 0, 10.0);
  EXPECT_EQ(last_response().result, MatchResult::Pending);

  do_export(state, 4.6);  // below region lo=5 -> skip (Fig. 8 line 7)
  EXPECT_EQ(state.stats_snapshot().buffer.skips, 1u);

  for (int k = 5; k <= 9; ++k) do_export(state, 0.6 + k);  // 5.6..9.6
  auto stats = state.stats_snapshot();
  EXPECT_EQ(stats.buffer.stores, 3u + 5u);
  // Candidate chain: 5.6..8.6 freed when superseded; only 9.6 retained.
  EXPECT_EQ(state.pool().size(), 1u);
  EXPECT_EQ(stats.transfers, 0u);  // not decided yet

  do_export(state, 10.6);  // crosses x=10: decide MATCH 9.6, ship it
  stats = state.stats_snapshot();
  EXPECT_EQ(stats.transfers, 1u);
  EXPECT_EQ(stats.local_decisions, 1u);
  EXPECT_EQ(shipped_versions(0, 0), std::vector<double>{9.6});
  // The decisive update went to the rep.
  const ResponseMsg resp = last_response();
  EXPECT_EQ(resp.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(resp.matched, 9.6);
  // 10.6 is buffered for potential future requests; 9.6 freed after send.
  EXPECT_EQ(state.pool().buffered_timestamps(), std::vector<Timestamp>{10.6});

  const std::string listing = state.trace().listing();
  EXPECT_NE(listing.find("export D@4.6, skip memcpy."), std::string::npos);
  EXPECT_NE(listing.find("export D@5.6, call memcpy."), std::string::npos);
  EXPECT_NE(listing.find("send D@9.6 out."), std::string::npos);
}

TEST_F(ExportStateTest, MatchAlreadyBufferedShipsImmediatelyOnHelp) {
  // REG policy: the match can lie below the process's own progress.
  auto state = make_state(MatchPolicy::REG, 5.0);
  do_export(state, 7.0);
  do_export(state, 8.0);
  send_request(state, 0, 10.0);  // region [5, 15]; latest 8 < 10 -> pending
  EXPECT_EQ(last_response().result, MatchResult::Pending);
  // Peer decided: the best match collectively is 8.0 (it has seen >= 10).
  send_help(state, 0, 10.0, MatchResult::Match, 8.0);
  EXPECT_EQ(shipped_versions(0, 0), std::vector<double>{8.0});
  EXPECT_EQ(state.stats_snapshot().transfers, 1u);
  // 7.0 freed unsent, 8.0 freed after send.
  EXPECT_EQ(state.pool().size(), 0u);
}

TEST_F(ExportStateTest, NoMatchHelpResolvesWithoutTransfer) {
  auto state = make_state(MatchPolicy::REGL, 1.0);
  do_export(state, 5.0);
  send_request(state, 0, 20.0);  // region [19, 20]
  send_help(state, 0, 20.0, MatchResult::NoMatch, kNeverExported);
  do_export(state, 25.0);  // above region floor: buffered for the future
  const auto stats = state.stats_snapshot();
  EXPECT_EQ(stats.transfers, 0u);
  ASSERT_EQ(stats.t_i.size(), 1u);
  EXPECT_EQ(state.outstanding_requests(), 0u);
}

TEST_F(ExportStateTest, EquationOneAttribution) {
  // REGL tol 5: candidates 5.6..8.6 are buffered then superseded/freed;
  // their buffering cost is this request's T_i; the match 9.6 is not.
  auto state = make_state(MatchPolicy::REGL, 5.0);
  send_request(state, 0, 10.0);
  for (int k = 5; k <= 10; ++k) do_export(state, 0.6 + k);  // 5.6..10.6
  const auto stats = state.stats_snapshot();
  ASSERT_EQ(stats.t_i.size(), 1u);
  EXPECT_GT(stats.t_i[0], 0.0);
  // T_i == cost of the 4 superseded candidates (5.6, 6.6, 7.6, 8.6).
  EXPECT_NEAR(stats.t_i[0], stats.buffer.seconds_unnecessary, 1e-12);
  EXPECT_EQ(stats.buffer.frees_unsent, 4u);
  EXPECT_DOUBLE_EQ(stats.t_ub(), stats.t_i[0]);
}

TEST_F(ExportStateTest, DecisiveAtArrivalWhenImporterSlower) {
  auto state = make_state(MatchPolicy::REGL, 2.5);
  for (int k = 1; k <= 30; ++k) do_export(state, 0.6 + k);  // up to 30.6
  send_request(state, 0, 20.0);
  const ResponseMsg resp = last_response();
  EXPECT_EQ(resp.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(resp.matched, 19.6);
  EXPECT_EQ(shipped_versions(0, 0), std::vector<double>{19.6});
  // Everything below the match was freed; above stays for the future.
  const auto buffered = state.pool().buffered_timestamps();
  ASSERT_FALSE(buffered.empty());
  EXPECT_DOUBLE_EQ(buffered.front(), 20.6);
}

TEST_F(ExportStateTest, MultipleRequestsSequence) {
  auto state = make_state(MatchPolicy::REGL, 2.5);
  for (int k = 1; k <= 50; ++k) do_export(state, 0.6 + k);
  send_request(state, 0, 20.0);
  send_request(state, 1, 40.0);
  EXPECT_EQ(shipped_versions(0, 0), std::vector<double>{19.6});
  EXPECT_EQ(shipped_versions(0, 1), std::vector<double>{39.6});
  const auto stats = state.stats_snapshot();
  EXPECT_EQ(stats.transfers, 2u);
  EXPECT_EQ(stats.t_i.size(), 2u);
}

TEST_F(ExportStateTest, RequestsMustIncrease) {
  auto state = make_state(MatchPolicy::REGL, 2.5);
  send_request(state, 0, 20.0);
  EXPECT_THROW(send_request(state, 1, 20.0), util::InvalidArgument);
  EXPECT_THROW(send_request(state, 1, 15.0), util::InvalidArgument);
}

TEST_F(ExportStateTest, ExportsMustIncrease) {
  auto state = make_state(MatchPolicy::REGL, 2.5);
  do_export(state, 5.0);
  std::vector<double> block(16, 0.0);
  EXPECT_THROW(state.on_export(5.0, block.data(), ctx_), util::InvalidArgument);
}

TEST_F(ExportStateTest, RedundantBuddyHelpValidatedAgainstLocalDecision) {
  auto state = make_state(MatchPolicy::REGL, 2.5);
  for (int k = 1; k <= 30; ++k) do_export(state, 0.6 + k);
  send_request(state, 0, 20.0);  // decided locally: match 19.6
  // The rep's help crossing on the wire with the same answer: tolerated.
  EXPECT_NO_THROW(send_help(state, 0, 20.0, MatchResult::Match, 19.6));
  // A disagreeing help is a protocol violation.
  EXPECT_THROW(send_help(state, 0, 20.0, MatchResult::Match, 18.6), util::InternalError);
  // Help for a request never seen.
  EXPECT_THROW(send_help(state, 7, 60.0, MatchResult::Match, 59.6), util::InternalError);
}

TEST_F(ExportStateTest, FinalizeAnswersOutstandingDecisively) {
  auto state = make_state(MatchPolicy::REGL, 2.5);
  do_export(state, 5.0);
  send_request(state, 0, 20.0);  // pending
  EXPECT_EQ(state.outstanding_requests(), 1u);
  state.finalize(ctx_);
  EXPECT_EQ(state.outstanding_requests(), 0u);
  const ResponseMsg resp = last_response();
  EXPECT_EQ(resp.result, MatchResult::NoMatch);  // nothing in [17.5, 20]
}

TEST_F(ExportStateTest, RequestAfterFinalizeAnsweredFromBuffer) {
  auto state = make_state(MatchPolicy::REGL, 2.5);
  for (int k = 1; k <= 10; ++k) do_export(state, 0.6 + k);  // 1.6..10.6
  state.finalize(ctx_);
  send_request(state, 0, 12.0);  // region [9.5, 12]: match 10.6 from buffer
  const ResponseMsg resp = last_response();
  EXPECT_EQ(resp.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(resp.matched, 10.6);
  EXPECT_EQ(shipped_versions(0, 0), std::vector<double>{10.6});
}

TEST_F(ExportStateTest, FinalizeWithUnshippedAnnouncedMatchIsContractViolation) {
  auto state = make_state(MatchPolicy::REGL, 2.5);
  do_export(state, 5.0);
  send_request(state, 0, 20.0);
  send_help(state, 0, 20.0, MatchResult::Match, 19.6);  // we never export 19.6
  EXPECT_THROW(state.finalize(ctx_), util::InternalError);
}

TEST_F(ExportStateTest, DeferredFloorWithConcurrentOutstandingRequests) {
  // Request seq1 arrives while seq0 is unresolved: seq0's candidates must
  // survive until seq0 resolves (the multi-outstanding case importers with
  // disjoint pieces create).
  auto state = make_state(MatchPolicy::REGL, 2.5);
  for (int k = 1; k <= 19; ++k) do_export(state, 0.6 + k);  // latest 19.6
  send_request(state, 0, 20.0);  // pending; candidates 17.6..19.6 buffered
  send_request(state, 1, 40.0);  // must NOT free seq0's candidates
  EXPECT_EQ(last_response().result, MatchResult::Pending);
  do_export(state, 20.6);  // decides seq0: match 19.6 shipped
  EXPECT_EQ(shipped_versions(0, 0), std::vector<double>{19.6});
  // Between the regions, exports are skipped (gap rule) now that seq0 is
  // resolved and the floor advanced to 37.5.
  const auto before = state.stats_snapshot().buffer.skips;
  do_export(state, 21.6);
  EXPECT_EQ(state.stats_snapshot().buffer.skips, before + 1);
}

TEST_F(ExportStateTest, TwoConnectionsShareSnapshots) {
  // One region exported to two importers with different tolerances; the
  // snapshot is copied once and freed only when both connections let go.
  dist::BlockDecomposition one(4, 4, 1, 1);
  std::vector<ExportConnConfig> conns;
  conns.push_back(ExportConnConfig{0, MatchPolicy::REGL, 2.5,
                                   dist::RedistSchedule(one, one, one.domain()),
                                   {kImporterProc}});
  conns.push_back(ExportConnConfig{1, MatchPolicy::REGL, 5.0,
                                   dist::RedistSchedule(one, one, one.domain()),
                                   {kImporterProc + 1}});
  FrameworkOptions options;
  ExportRegionState state("r1", one.domain(), 0, std::move(conns), options, kRep);

  std::vector<double> block(16, 0.0);
  for (int k = 1; k <= 10; ++k) {
    std::fill(block.begin(), block.end(), 0.6 + k);
    state.on_export(0.6 + k, block.data(), ctx_);
  }
  auto stats = state.stats_snapshot();
  EXPECT_EQ(stats.buffer.stores, 10u);  // one copy per export, not two

  // Conn 0 requests 10 (region [7.5, 10] -> match 9.6): frees below 9.6
  // for conn 0 only; conn 1 still needs everything.
  state.on_forwarded_request(RequestMsg{0, 0, 10.0}, ctx_);
  EXPECT_EQ(state.pool().size(), 10u);

  // Conn 1 requests 10.5 (region [5.5, 10.5], latest 10.6 >= 10.5 ->
  // decisive): the match is 9.6 — the same snapshot conn 0 already
  // shipped and released, kept alive by conn 1's need bit.
  state.on_forwarded_request(RequestMsg{1, 0, 10.5}, ctx_);
  EXPECT_LT(state.pool().size(), 10u);
  EXPECT_EQ(state.stats_snapshot().transfers, 2u);
  EXPECT_EQ(shipped_versions(0, 0), std::vector<double>{9.6});
  EXPECT_EQ(shipped_versions(1, 0), std::vector<double>{9.6});
}

TEST_F(ExportStateTest, OverlappingRegionsKeepSharedCandidates) {
  // Regression: stride below the tolerance makes consecutive acceptable
  // regions overlap. A version superseded for the newer request must not
  // be freed while it can still be the older request's match.
  auto state = make_state(MatchPolicy::REGL, 2.5);
  do_export(state, 1.6);
  send_request(state, 0, 2.0);  // region [-0.5, 2]: decisive, match 1.6
  do_export(state, 2.6);
  send_request(state, 1, 4.0);  // region [1.5, 4]: pending, candidate 2.6
  do_export(state, 3.6);        // seq1 candidate -> 3.6
  send_request(state, 2, 6.0);  // region [3.5, 6] OVERLAPS seq1's; candidate 3.6
  do_export(state, 4.6);  // better for seq2; must NOT free 3.6 (seq1's match!)
  // The export of 4.6 made seq1 decidable: match 3.6 shipped from buffer.
  EXPECT_EQ(shipped_versions(0, 1), std::vector<double>{3.6});
  do_export(state, 5.6);
  do_export(state, 6.6);  // decides seq2: match 5.6
  EXPECT_EQ(shipped_versions(0, 2), std::vector<double>{5.6});
  state.finalize(ctx_);  // no stuck pending sends
}

TEST_F(ExportStateTest, HandlesConnLookup) {
  auto state = make_state(MatchPolicy::REGL, 2.5, true, 3);
  EXPECT_TRUE(state.handles_conn(3));
  EXPECT_FALSE(state.handles_conn(0));
  EXPECT_THROW(send_request(state, 0, 20.0), util::InternalError);  // conn 0 unknown
}

TEST_F(ExportStateTest, TraceDisabledRecordsNothing) {
  auto state = make_state(MatchPolicy::REGL, 2.5, /*trace=*/false);
  do_export(state, 1.6);
  EXPECT_TRUE(state.trace().events().empty());
  EXPECT_EQ(state.trace().listing(), "");
}

}  // namespace
}  // namespace ccf::core
