// Unit tests of the rep process body (run_rep) driven by a scripted
// context: geometry exchange, request forwarding/aggregation wiring,
// buddy-help targeting, answer broadcast, and coordinated shutdown —
// without a cluster.
#include <gtest/gtest.h>

#include "core/rep.hpp"
#include "core/protocol.hpp"
#include "runtime/scripted_context.hpp"

namespace ccf::core {
namespace {

using runtime::Message;
using runtime::ScriptedContext;

// Layout for "E h /e 2 \n I h /i 1": E procs {0,1}, E rep 2; I proc {3}, I rep 4.
Config exporter_config() {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", 2, {}});
  config.add_program(ProgramSpec{"I", "h", "/i", 1, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", MatchPolicy::REGL, 2.5});
  return config;
}

Message msg(transport::ProcId src, transport::ProcId dst, transport::Tag tag,
            transport::Payload payload) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.payload = std::move(payload);
  return m;
}

transport::Payload region_defs_payload() {
  transport::Writer w;
  w.put<std::uint32_t>(1);  // one export region
  RegionMeta{"r", 8, 8, 2, 1}.encode_into(w);
  w.put<std::uint32_t>(0);  // no imports
  return w.take();
}

transport::Payload peer_meta_payload(int conn) {
  transport::Writer w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(conn));
  RegionMeta{"r", 8, 8, 1, 1}.encode_into(w);
  return w.take();
}

TEST(RepLoop, FullExporterLifecycle) {
  const Config config = exporter_config();
  const DeploymentLayout layout(config);
  const ProgramLayout& e = layout.program("E");
  const ProgramLayout& i = layout.program("I");
  ASSERT_EQ(e.rep, 2);
  ASSERT_EQ(i.rep, 4);

  ScriptedContext ctx(e.rep);
  // Startup: defs from rank0, peer meta from I's rep.
  ctx.push_inbox(msg(e.proc(0), e.rep, kTagRegionDefs, region_defs_payload()));
  ctx.push_inbox(msg(i.rep, e.rep, kTagPeerRegionMeta, peer_meta_payload(0)));
  // A forwarded request; proc 0 answers MATCH, proc 1 answers PENDING.
  ctx.push_inbox(msg(i.rep, e.rep, kTagRequestForward, RequestMsg{0, 0, 20.0}.encode()));
  ctx.push_inbox(msg(e.proc(1), e.rep, kTagProcResponse,
                     ResponseMsg{0, 0, MatchResult::Pending, kNeverExported, 14.6}.encode()));
  ctx.push_inbox(msg(e.proc(0), e.rep, kTagProcResponse,
                     ResponseMsg{0, 0, MatchResult::Match, 19.6, 20.6}.encode()));
  // Shutdown: the importer finished the connection.
  ctx.push_inbox(msg(i.rep, e.rep, kTagConnFinished, ConnMsg{0}.encode()));

  const RepResult result = run_rep(ctx, config, layout, "E");
  EXPECT_EQ(result.requests_forwarded, 1u);
  EXPECT_EQ(result.answers_sent, 1u);
  EXPECT_EQ(result.buddy_helps_sent, 1u);
  EXPECT_EQ(result.responses_received, 2u);

  // Geometry broadcast reached both procs.
  EXPECT_EQ(ctx.sent_with_tag(kTagRegionMetaBcast).size(), 2u);
  // Our geometry went to the peer rep.
  ASSERT_EQ(ctx.sent_with_tag(kTagPeerRegionMeta).size(), 1u);
  EXPECT_EQ(ctx.sent_with_tag(kTagPeerRegionMeta)[0].dst, i.rep);
  // The request was forwarded to both procs.
  EXPECT_EQ(ctx.sent_with_tag(kTagProcForward).size(), 2u);
  // The answer went to the importer rep with the matched timestamp.
  const auto answers = ctx.sent_with_tag(kTagRepAnswer);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].dst, i.rep);
  const AnswerMsg answer = AnswerMsg::decode(answers[0].payload);
  EXPECT_EQ(answer.result, MatchResult::Match);
  EXPECT_DOUBLE_EQ(answer.matched, 19.6);
  // Buddy-help went exactly to the PENDING proc 1.
  const auto helps = ctx.sent_with_tag(kTagBuddyHelp);
  ASSERT_EQ(helps.size(), 1u);
  EXPECT_EQ(helps[0].dst, e.proc(1));
  // ConnFinished was relayed to the procs as ConnClosed, then shutdown.
  EXPECT_EQ(ctx.sent_with_tag(kTagConnClosed).size(), 2u);
  EXPECT_EQ(ctx.sent_with_tag(kTagShutdownProc).size(), 2u);
}

TEST(RepLoop, ImporterSideRelaysRequestsAndAnswers) {
  const Config config = exporter_config();
  const DeploymentLayout layout(config);
  const ProgramLayout& e = layout.program("E");
  const ProgramLayout& i = layout.program("I");

  ScriptedContext ctx(i.rep);
  transport::Writer defs;
  defs.put<std::uint32_t>(0);  // no exports
  defs.put<std::uint32_t>(1);  // one import region
  RegionMeta{"r", 8, 8, 1, 1}.encode_into(defs);
  ctx.push_inbox(msg(i.proc(0), i.rep, kTagRegionDefs, defs.take()));
  ctx.push_inbox(msg(e.rep, i.rep, kTagPeerRegionMeta, peer_meta_payload(0)));
  // rank0 requests; the exporter rep answers; rank0 finishes.
  ctx.push_inbox(msg(i.proc(0), i.rep, kTagImportRequest, RequestMsg{0, 0, 20.0}.encode()));
  ctx.push_inbox(msg(e.rep, i.rep, kTagRepAnswer,
                     AnswerMsg{0, 0, 20.0, MatchResult::Match, 19.6}.encode()));
  ctx.push_inbox(msg(i.proc(0), i.rep, kTagImporterConnDone, ConnMsg{0}.encode()));

  (void)run_rep(ctx, config, layout, "I");

  // The request went outward to E's rep.
  const auto forwards = ctx.sent_with_tag(kTagRequestForward);
  ASSERT_EQ(forwards.size(), 1u);
  EXPECT_EQ(forwards[0].dst, e.rep);
  // The answer was broadcast to the importer's procs on the per-conn tag.
  const auto bcast = ctx.sent_with_tag(import_answer_tag(0));
  ASSERT_EQ(bcast.size(), 1u);
  EXPECT_EQ(bcast[0].dst, i.proc(0));
  // ConnFinished went to E's rep; shutdown to own procs.
  ASSERT_EQ(ctx.sent_with_tag(kTagConnFinished).size(), 1u);
  EXPECT_EQ(ctx.sent_with_tag(kTagConnFinished)[0].dst, e.rep);
  EXPECT_EQ(ctx.sent_with_tag(kTagShutdownProc).size(), 1u);
}

TEST(RepLoop, MissingRegionDefinitionRejected) {
  const Config config = exporter_config();
  const DeploymentLayout layout(config);
  const ProgramLayout& e = layout.program("E");

  ScriptedContext ctx(e.rep);
  transport::Writer defs;  // program defined NOTHING
  defs.put<std::uint32_t>(0);
  defs.put<std::uint32_t>(0);
  ctx.push_inbox(msg(e.proc(0), e.rep, kTagRegionDefs, defs.take()));
  EXPECT_THROW(run_rep(ctx, config, layout, "E"), util::InvalidArgument);
}

TEST(RepLoop, Property1ViolationSurfacesFromAggregator) {
  const Config config = exporter_config();
  const DeploymentLayout layout(config);
  const ProgramLayout& e = layout.program("E");
  const ProgramLayout& i = layout.program("I");

  ScriptedContext ctx(e.rep);
  ctx.push_inbox(msg(e.proc(0), e.rep, kTagRegionDefs, region_defs_payload()));
  ctx.push_inbox(msg(i.rep, e.rep, kTagPeerRegionMeta, peer_meta_payload(0)));
  ctx.push_inbox(msg(i.rep, e.rep, kTagRequestForward, RequestMsg{0, 0, 20.0}.encode()));
  ctx.push_inbox(msg(e.proc(0), e.rep, kTagProcResponse,
                     ResponseMsg{0, 0, MatchResult::Match, 19.6, 20.6}.encode()));
  ctx.push_inbox(msg(e.proc(1), e.rep, kTagProcResponse,
                     ResponseMsg{0, 0, MatchResult::Match, 18.6, 20.6}.encode()));
  EXPECT_THROW(run_rep(ctx, config, layout, "E"), util::ProtocolViolation);
}

}  // namespace
}  // namespace ccf::core
