// Differential fuzz of the interval-indexed matcher against the preserved
// linear engine (core/naive_matcher.hpp).
//
// Every seed derives a random interleaving of record / evaluate /
// prune_below / prune_through / finalize plus a protocol-style FIFO
// request stream, drives the indexed ExportHistory and the NaiveHistory
// with the identical operation sequence, and asserts after every step:
//   * identical answers (result, matched timestamp, latest watermark),
//   * identical decidability points — front_pending_decidable() (the
//     index's O(1) threshold test) must equal the evaluated answer's
//     decisiveness at every sweep step,
//   * identical candidate lists, latest watermarks, and eval counters
//     (the two engines perform the same evaluate() calls, so the
//     evaluations/pending/matches/no_matches totals must agree exactly).
//
// Replaying a failing seed: the failure message names the seed; run just
// that seed with
//     CCF_MATCHER_FUZZ_SEED=<seed> ctest -R matcher_fuzz
// (see docs/TESTING.md, "Differential fuzzing").
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <sstream>
#include <string>

#include "core/matcher.hpp"
#include "core/naive_matcher.hpp"
#include "util/rng.hpp"

namespace ccf::core {
namespace {

constexpr std::uint64_t kSeeds = 10'000;

struct PendingReq {
  MatchQuery query;
  std::uint64_t index_id = 0;
};

/// Both engines plus the FIFO request model the export-side protocol
/// keeps (outstanding requests resolve strictly front-first).
struct DualEngine {
  ExportHistory indexed;
  NaiveHistory naive;
  std::deque<PendingReq> queue;

  void expect_same_state() const {
    EXPECT_EQ(indexed.latest(), naive.latest());
    EXPECT_EQ(indexed.finalized(), naive.finalized());
    ASSERT_EQ(indexed.timestamps(), naive.timestamps());
    const auto& a = indexed.eval_counters();
    const auto& b = naive.eval_counters();
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.pending, b.pending);
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.no_matches, b.no_matches);
  }

  void expect_same_answer(const MatchQuery& q, const MatchAnswer& got,
                          const MatchAnswer& want) const {
    EXPECT_EQ(got.result, want.result)
        << "x=" << q.requested << " policy=" << to_string(q.policy) << " tol=" << q.tolerance;
    if (got.result == MatchResult::Match && want.result == MatchResult::Match) {
      EXPECT_EQ(got.matched, want.matched) << "x=" << q.requested;
    }
    EXPECT_EQ(got.latest_exported, want.latest_exported);
  }

  /// One lockstep evaluation of the same query on both engines.
  MatchAnswer probe(const MatchQuery& q) {
    const MatchAnswer a = indexed.evaluate(q);
    const MatchAnswer b = naive.evaluate(q);
    expect_same_answer(q, a, b);
    return a;
  }

  /// Protocol-style resolution of the FIFO front: a MATCH consumes the
  /// matched timestamp (prune_through), a NO MATCH raises the low-water
  /// mark to the region floor (prune_below) — applied to both engines.
  void resolve_front(const MatchAnswer& answer) {
    const PendingReq req = queue.front();
    queue.pop_front();
    if (req.index_id != 0) indexed.unindex_pending(req.index_id);
    if (answer.result == MatchResult::Match) {
      indexed.prune_through(answer.matched);
      naive.prune_through(answer.matched);
    } else {
      const Timestamp lo = req.query.region().lo;
      indexed.prune_below(lo);
      naive.prune_below(lo);
    }
  }

  /// Front-first sweep, one lockstep evaluation per step; stops at the
  /// first PENDING front (both engines pay that trailing evaluation, as
  /// the pre-index protocol loop did).
  void sweep() {
    while (!queue.empty()) {
      const bool predicted = indexed.front_pending_decidable();
      const MatchAnswer a = probe(queue.front().query);
      // The index's O(1) threshold must agree with evaluate() exactly.
      ASSERT_EQ(predicted, a.decisive())
          << "threshold decidability diverged at x=" << queue.front().query.requested;
      if (!a.decisive()) break;
      resolve_front(a);
    }
  }

  /// Post-finalize drain through the batch API: every front is decidable,
  /// so evaluate_all() performs exactly one evaluation per request — the
  /// naive engine is driven in lockstep to keep the counters comparable.
  void drain_finalized() {
    indexed.evaluate_all([&](std::uint64_t id, const MatchAnswer& a) {
      ASSERT_FALSE(queue.empty());
      EXPECT_EQ(queue.front().index_id, id);
      const MatchAnswer b = naive.evaluate(queue.front().query);
      expect_same_answer(queue.front().query, a, b);
      resolve_front(a);
    });
    EXPECT_TRUE(queue.empty());
  }
};

void run_seed(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const MatchPolicy policy = static_cast<MatchPolicy>(rng.below(3));
  // Mix exact matching (tol 0) with narrow and region-overlapping ones.
  const double tol = rng.below(5) == 0 ? 0.0 : rng.uniform(0.05, 3.0);

  DualEngine d;
  Timestamp next_export = 0;
  Timestamp next_request = rng.uniform(0.0, 4.0);
  const int ops = 20 + static_cast<int>(rng.below(40));

  for (int i = 0; i < ops; ++i) {
    const std::uint64_t pick = rng.below(100);
    if (pick < 40) {
      if (d.indexed.finalized()) continue;
      next_export += rng.uniform(0.05, 1.5);
      d.indexed.record(next_export);
      d.naive.record(next_export);
      if (rng.below(2) == 0) d.sweep();  // phase-5 style post-export sweep
    } else if (pick < 65) {
      next_request += rng.uniform(0.1, 3.0);
      const MatchQuery q{next_request, policy, tol};
      const MatchAnswer a = d.probe(q);
      if (!a.decisive()) {
        d.queue.push_back({q, d.indexed.index_pending(q)});
      } else if (d.queue.empty()) {
        d.queue.push_back({q, 0});
        d.resolve_front(a);
      }
      // A decisive answer behind unresolved fronts is answered but not
      // resolved here (the protocol can't reach that state; the engines
      // still must agree on the answer, which probe() asserted).
    } else if (pick < 80) {
      d.sweep();
    } else if (pick < 87) {
      const Timestamp t = rng.uniform(0.0, next_export + 2.0);
      d.indexed.prune_below(t);
      d.naive.prune_below(t);
    } else if (pick < 94) {
      const Timestamp t = rng.uniform(0.0, next_export + 2.0);
      d.indexed.prune_through(t);
      d.naive.prune_through(t);
    } else if (!d.indexed.finalized()) {
      d.indexed.finalize();
      d.naive.finalize();
    }
    d.expect_same_state();
    // Random decidability probe, independent of the FIFO queue.
    const MatchQuery probe_q{rng.uniform(0.0, next_export + 5.0), policy, tol};
    d.probe(probe_q);
    if (::testing::Test::HasFatalFailure()) return;
  }

  if (!d.indexed.finalized()) {
    d.indexed.finalize();
    d.naive.finalize();
  }
  d.drain_finalized();
  d.expect_same_state();
  EXPECT_EQ(d.indexed.pending_count(), 0u);
}

TEST(MatcherDifferentialFuzz, IndexedEngineMatchesNaiveReference) {
  if (const char* env = std::getenv("CCF_MATCHER_FUZZ_SEED")) {
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    SCOPED_TRACE("CCF_MATCHER_FUZZ_SEED=" + std::string(env));
    run_seed(seed);
    return;
  }
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("replay: CCF_MATCHER_FUZZ_SEED=" + std::to_string(seed));
    run_seed(seed);
    if (::testing::Test::HasFailure()) {
      FAIL() << "differential divergence at seed " << seed
             << " (replay with CCF_MATCHER_FUZZ_SEED=" << seed << ")";
    }
  }
}

}  // namespace
}  // namespace ccf::core
