// Result-codec round-trip tests: the byte encodings that carry a forked
// child's run results back to the launcher (runtime::ResultChannel) must
// reproduce every field — stats, traces, trace events, rep answers —
// exactly. A silently dropped field here would corrupt reports only in
// process mode, the one mode where the launcher can't see the child's
// memory.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/result_codec.hpp"

namespace ccf::core {
namespace {

ProcStats sample_stats() {
  ProcStats s;
  ExportRegionStats e;
  e.region = "velocity";
  e.exports = 12;
  e.transfers = 9;
  e.buffer.stores = 12;
  e.buffer.skips = 3;
  e.buffer.peak_bytes = 4096;
  e.buffer.evictions = 2;
  e.buffer.spill_bytes = 512;
  e.buffer.restores = 1;
  e.bytes_delivered = 65536;
  e.bytes_pack_copied = 1024;
  e.sends_aliased = 7;
  e.sends_packed = 2;
  e.export_seconds = {0.001, 0.002, 0.0035};
  e.export_timestamps = {1.0, 2.0, 3.5};
  e.t_i = {0.25, 0.0, 1.75};
  e.buddy_helps_received = 4;
  e.local_decisions = 5;
  e.matcher_evaluations = 40;
  e.matcher_pending = 3;
  e.stalls = 2;
  e.stall_seconds = 0.125;
  e.duplicate_requests = 1;
  e.reordered_requests = 2;
  e.degraded_conns = 1;
  s.exports.push_back(e);

  ImportRegionStats i;
  i.region = "pressure";
  i.imports = 8;
  i.matches = 6;
  i.no_matches = 2;
  i.import_seconds = {0.01, 0.02};
  i.matched_timestamps = {1.5, 4.0};
  i.pressure_throttles = 3;
  i.throttle_seconds = 0.75;
  s.imports.push_back(i);

  s.ft.request_retries = 5;
  s.ft.stale_answers = 2;
  s.ft.heartbeats = 11;
  s.ft.commit_retries = 1;
  s.ft.conn_done_retries = 2;
  s.ft.reparents = 1;
  s.ft.rep_departed = true;
  s.finished_at = 123.5;
  s.governor.peak_charged_bytes = 1 << 20;
  s.governor.pressure_raises = 7;
  s.governor.budget_denials = 2;
  s.pressure_signals = 3;
  s.pressure_notices = 4;
  return s;
}

TEST(ResultCodec, ProcResultRoundTripsEveryField) {
  const ProcStats want = sample_stats();
  std::map<std::string, std::string> want_traces = {
      {"velocity", "E1 E2 M1.5"}, {"pressure", "R1.5=1 R4=4"}};
  std::map<std::string, std::vector<TraceEvent>> want_events;
  TraceEvent ev;
  ev.kind = TraceKind::ExportCopy;
  ev.when = 0.25;
  ev.a = 1.0;
  ev.b = 2.0;
  ev.result = MatchResult::Match;
  want_events["velocity"] = {ev, ev};

  const auto bytes = encode_proc_result(want, want_traces, want_events);
  ProcStats got;
  std::map<std::string, std::string> got_traces;
  std::map<std::string, std::vector<TraceEvent>> got_events;
  decode_proc_result(bytes, got, got_traces, got_events);

  ASSERT_EQ(got.exports.size(), 1u);
  const ExportRegionStats& e = got.exports[0];
  const ExportRegionStats& we = want.exports[0];
  EXPECT_EQ(e.region, we.region);
  EXPECT_EQ(e.exports, we.exports);
  EXPECT_EQ(e.transfers, we.transfers);
  EXPECT_EQ(e.buffer.stores, we.buffer.stores);
  EXPECT_EQ(e.buffer.skips, we.buffer.skips);
  EXPECT_EQ(e.buffer.peak_bytes, we.buffer.peak_bytes);
  EXPECT_EQ(e.buffer.evictions, we.buffer.evictions);
  EXPECT_EQ(e.buffer.spill_bytes, we.buffer.spill_bytes);
  EXPECT_EQ(e.buffer.restores, we.buffer.restores);
  EXPECT_EQ(e.bytes_delivered, we.bytes_delivered);
  EXPECT_EQ(e.bytes_pack_copied, we.bytes_pack_copied);
  EXPECT_EQ(e.sends_aliased, we.sends_aliased);
  EXPECT_EQ(e.sends_packed, we.sends_packed);
  EXPECT_EQ(e.export_seconds, we.export_seconds);
  EXPECT_EQ(e.export_timestamps, we.export_timestamps);
  EXPECT_EQ(e.t_i, we.t_i);
  EXPECT_DOUBLE_EQ(e.t_ub(), we.t_ub());
  EXPECT_EQ(e.buddy_helps_received, we.buddy_helps_received);
  EXPECT_EQ(e.local_decisions, we.local_decisions);
  EXPECT_EQ(e.matcher_evaluations, we.matcher_evaluations);
  EXPECT_EQ(e.matcher_pending, we.matcher_pending);
  EXPECT_EQ(e.stalls, we.stalls);
  EXPECT_DOUBLE_EQ(e.stall_seconds, we.stall_seconds);
  EXPECT_EQ(e.duplicate_requests, we.duplicate_requests);
  EXPECT_EQ(e.reordered_requests, we.reordered_requests);
  EXPECT_EQ(e.degraded_conns, we.degraded_conns);

  ASSERT_EQ(got.imports.size(), 1u);
  const ImportRegionStats& i = got.imports[0];
  const ImportRegionStats& wi = want.imports[0];
  EXPECT_EQ(i.region, wi.region);
  EXPECT_EQ(i.imports, wi.imports);
  EXPECT_EQ(i.matches, wi.matches);
  EXPECT_EQ(i.no_matches, wi.no_matches);
  EXPECT_EQ(i.import_seconds, wi.import_seconds);
  EXPECT_EQ(i.matched_timestamps, wi.matched_timestamps);
  EXPECT_EQ(i.pressure_throttles, wi.pressure_throttles);
  EXPECT_DOUBLE_EQ(i.throttle_seconds, wi.throttle_seconds);

  EXPECT_EQ(got.ft.request_retries, want.ft.request_retries);
  EXPECT_EQ(got.ft.stale_answers, want.ft.stale_answers);
  EXPECT_EQ(got.ft.heartbeats, want.ft.heartbeats);
  EXPECT_EQ(got.ft.commit_retries, want.ft.commit_retries);
  EXPECT_EQ(got.ft.conn_done_retries, want.ft.conn_done_retries);
  EXPECT_EQ(got.ft.reparents, want.ft.reparents);
  EXPECT_EQ(got.ft.rep_departed, want.ft.rep_departed);
  EXPECT_DOUBLE_EQ(got.finished_at, want.finished_at);
  EXPECT_EQ(got.governor.peak_charged_bytes, want.governor.peak_charged_bytes);
  EXPECT_EQ(got.governor.pressure_raises, want.governor.pressure_raises);
  EXPECT_EQ(got.governor.budget_denials, want.governor.budget_denials);
  EXPECT_EQ(got.pressure_signals, want.pressure_signals);
  EXPECT_EQ(got.pressure_notices, want.pressure_notices);

  EXPECT_EQ(got_traces, want_traces);
  ASSERT_EQ(got_events.size(), 1u);
  ASSERT_EQ(got_events["velocity"].size(), 2u);
  EXPECT_EQ(got_events["velocity"][0].kind, ev.kind);
  EXPECT_DOUBLE_EQ(got_events["velocity"][0].when, ev.when);
  EXPECT_DOUBLE_EQ(got_events["velocity"][1].a, ev.a);
  EXPECT_DOUBLE_EQ(got_events["velocity"][1].b, ev.b);
  EXPECT_EQ(got_events["velocity"][1].result, ev.result);
}

TEST(ResultCodec, EmptyProcResultRoundTrips) {
  const auto bytes = encode_proc_result(ProcStats{}, {}, {});
  ProcStats got;
  got.exports.push_back(ExportRegionStats{});  // decode must reset, not append
  std::map<std::string, std::string> traces = {{"stale", "stale"}};
  std::map<std::string, std::vector<TraceEvent>> events;
  decode_proc_result(bytes, got, traces, events);
  EXPECT_TRUE(got.exports.empty());
  EXPECT_TRUE(got.imports.empty());
  EXPECT_TRUE(traces.empty());
  EXPECT_TRUE(events.empty());
}

TEST(ResultCodec, RepResultRoundTripsCountersAndAnswers) {
  RepResult want;
  want.requests_forwarded = 10;
  want.answers_sent = 9;
  want.buddy_helps_sent = 2;
  want.responses_received = 9;
  want.duplicates_ignored = 1;
  want.answers_resent = 3;
  want.heartbeats_sent = 20;
  want.meta_resends = 1;
  want.forward_resends = 2;
  want.pressure_signals = 1;
  want.pressure_notices = 2;
  want.pressure_broadcasts = 3;
  want.wire_in = 55;
  want.frames_in = 5;
  want.frame_entries_in = 25;
  want.frames_out = 4;
  want.frame_entries_out = 16;
  AnswerMsg a;
  a.conn = 1;
  a.seq = 7;
  a.requested = 2.5;
  a.result = MatchResult::Match;
  a.matched = 2.0;
  AnswerMsg b;
  b.conn = 1;
  b.seq = 8;
  b.requested = 9.5;
  b.result = MatchResult::NoMatch;
  b.matched = kNeverExported;
  want.answers = {a, b};

  const RepResult got = decode_rep_result(encode_rep_result(want));
  EXPECT_EQ(got.requests_forwarded, want.requests_forwarded);
  EXPECT_EQ(got.answers_sent, want.answers_sent);
  EXPECT_EQ(got.buddy_helps_sent, want.buddy_helps_sent);
  EXPECT_EQ(got.responses_received, want.responses_received);
  EXPECT_EQ(got.duplicates_ignored, want.duplicates_ignored);
  EXPECT_EQ(got.answers_resent, want.answers_resent);
  EXPECT_EQ(got.heartbeats_sent, want.heartbeats_sent);
  EXPECT_EQ(got.meta_resends, want.meta_resends);
  EXPECT_EQ(got.forward_resends, want.forward_resends);
  EXPECT_EQ(got.pressure_signals, want.pressure_signals);
  EXPECT_EQ(got.pressure_notices, want.pressure_notices);
  EXPECT_EQ(got.pressure_broadcasts, want.pressure_broadcasts);
  EXPECT_EQ(got.wire_in, want.wire_in);
  EXPECT_EQ(got.frames_in, want.frames_in);
  EXPECT_EQ(got.frame_entries_in, want.frame_entries_in);
  EXPECT_EQ(got.frames_out, want.frames_out);
  EXPECT_EQ(got.frame_entries_out, want.frame_entries_out);
  ASSERT_EQ(got.answers.size(), 2u);
  EXPECT_EQ(got.answers[0].conn, a.conn);
  EXPECT_EQ(got.answers[0].seq, a.seq);
  EXPECT_DOUBLE_EQ(got.answers[0].requested, a.requested);
  EXPECT_EQ(got.answers[0].result, a.result);
  EXPECT_DOUBLE_EQ(got.answers[0].matched, a.matched);
  EXPECT_EQ(got.answers[1].seq, b.seq);
  EXPECT_EQ(got.answers[1].result, b.result);
}

TEST(ResultCodec, SubRepResultRoundTrips) {
  SubRepResult want;
  want.wire_in = 100;
  want.frames_up = 10;
  want.entries_up = 50;
  want.frames_down = 9;
  want.entries_down = 45;
  const SubRepResult got = decode_subrep_result(encode_subrep_result(want));
  EXPECT_EQ(got.wire_in, want.wire_in);
  EXPECT_EQ(got.frames_up, want.frames_up);
  EXPECT_EQ(got.entries_up, want.entries_up);
  EXPECT_EQ(got.frames_down, want.frames_down);
  EXPECT_EQ(got.entries_down, want.entries_down);
}

TEST(ResultCodec, TruncatedOrTrailingBytesAreRejected) {
  auto bytes = encode_rep_result(RepResult{});
  bytes.push_back(std::byte{0xFF});
  EXPECT_THROW((void)decode_rep_result(bytes), util::Error);

  auto sub = encode_subrep_result(SubRepResult{});
  sub.pop_back();
  EXPECT_THROW((void)decode_subrep_result(sub), util::Error);
}

}  // namespace
}  // namespace ccf::core
