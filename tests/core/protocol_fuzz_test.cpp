// Decode hardening: malformed payloads must raise framework exceptions
// (bounds-checked Reader), never crash or read out of bounds. Random
// truncations and bit flips of valid encodings, plus random byte soup.
#include <gtest/gtest.h>

#include "core/protocol.hpp"
#include "util/rng.hpp"

namespace ccf::core {
namespace {

using transport::Payload;

std::vector<std::byte> bytes_of(const Payload& p) {
  return std::vector<std::byte>(p.begin(), p.end());
}

Payload payload_from(std::vector<std::byte> bytes) {
  return transport::make_payload(std::move(bytes));
}

template <typename Decode>
void expect_no_crash(const std::vector<std::byte>& bytes, Decode&& decode) {
  try {
    decode(payload_from(bytes));
  } catch (const util::Error&) {
    // Exceptions are the contract; crashes/UB are the bug.
  }
}

TEST(ProtocolFuzz, StrictPrefixesAlwaysThrow) {
  // Every strict prefix of a valid encoding must throw when decoded as
  // its own message type (underflow), and every over-long payload must be
  // rejected by the trailing-byte check.
  auto check_prefixes = [](const Payload& original, auto&& decode) {
    const auto full = bytes_of(original);
    for (std::size_t len = 0; len < full.size(); ++len) {
      const std::vector<std::byte> cut(full.begin(),
                                       full.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_THROW((void)decode(payload_from(cut)), util::Error) << "len " << len;
    }
    auto padded = full;
    padded.push_back(std::byte{0});
    EXPECT_THROW((void)decode(payload_from(padded)), util::Error);
  };
  check_prefixes(RequestMsg{3, 17, 42.5}.encode(),
                 [](const Payload& p) { return RequestMsg::decode(p); });
  check_prefixes(ResponseMsg{1, 2, MatchResult::Match, 19.6, 20.6}.encode(),
                 [](const Payload& p) { return ResponseMsg::decode(p); });
  check_prefixes(AnswerMsg{1, 2, 20.0, MatchResult::NoMatch, 0}.encode(),
                 [](const Payload& p) { return AnswerMsg::decode(p); });
  check_prefixes(ConnMsg{9}.encode(), [](const Payload& p) { return ConnMsg::decode(p); });
}

TEST(ProtocolFuzz, BitFlipsNeverCrash) {
  util::Xoshiro256 rng(123);
  const auto full = bytes_of(ResponseMsg{1, 2, MatchResult::Match, 19.6, 20.6}.encode());
  for (int trial = 0; trial < 500; ++trial) {
    auto mutated = full;
    const auto pos = static_cast<std::size_t>(rng.below(mutated.size()));
    mutated[pos] ^= static_cast<std::byte>(1u << rng.below(8));
    expect_no_crash(mutated, [](const Payload& p) { return ResponseMsg::decode(p); });
  }
}

TEST(ProtocolFuzz, RandomByteSoupNeverCrashes) {
  util::Xoshiro256 rng(321);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::byte> soup(rng.below(64));
    for (auto& b : soup) b = static_cast<std::byte>(rng.below(256));
    expect_no_crash(soup, [](const Payload& p) { return RequestMsg::decode(p); });
    expect_no_crash(soup, [](const Payload& p) { return AnswerMsg::decode(p); });
    expect_no_crash(soup, [](const Payload& p) { return ConnMsg::decode(p); });
  }
}

TEST(ProtocolFuzz, RegionMetaHostileStringLength) {
  // A string length prefix far beyond the payload must throw cleanly.
  transport::Writer w;
  w.put<std::uint64_t>(1ull << 40);  // claims a 1 TB name
  w.put_raw("abc", 3);
  transport::Reader r(w.take());
  EXPECT_THROW((void)RegionMeta::decode_from(r), util::Error);
}

}  // namespace
}  // namespace ccf::core
