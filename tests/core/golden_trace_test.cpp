// Golden-listing tests: the Figure 7 / Figure 8 scenarios must produce
// these exact event listings (the textual form of the paper's figures).
// Any behavioural drift in the buffering/skip/supersede rules shows up as
// a diff here.
#include <gtest/gtest.h>

#include "core/export_state.hpp"
#include "runtime/scripted_context.hpp"

namespace ccf::core {
namespace {

std::string run_figure_scenario(bool buddy_help) {
  runtime::ScriptedContext ctx(0);
  dist::BlockDecomposition one(4, 4, 1, 1);
  std::vector<ExportConnConfig> conns;
  conns.push_back(ExportConnConfig{0, MatchPolicy::REGL, 5.0,
                                   dist::RedistSchedule(one, one, one.domain()),
                                   {42}});
  FrameworkOptions options;
  options.trace = true;
  ExportRegionState state("r1", one.domain(), 0, std::move(conns), options, 99);

  std::vector<double> block(16, 0.0);
  auto do_export = [&](double t) {
    std::fill(block.begin(), block.end(), t);
    state.on_export(t, block.data(), ctx);
  };
  for (int k = 1; k <= 3; ++k) do_export(0.6 + k);
  state.on_forwarded_request(RequestMsg{0, 0, 10.0}, ctx);
  if (buddy_help) state.on_buddy_help(AnswerMsg{0, 0, 10.0, MatchResult::Match, 9.6}, ctx);
  for (int k = 4; k <= 11; ++k) do_export(0.6 + k);
  return state.trace().listing();
}

TEST(GoldenTrace, Figure7WithBuddyHelp) {
  const char* expected =
      "1  export D@1.6, call memcpy.\n"
      "2  export D@2.6, call memcpy.\n"
      "3  export D@3.6, call memcpy.\n"
      "4  receive request for D@10.\n"
      "5  remove D@1.6, ..., D@3.6.\n"
      "6  reply {D@10, PENDING, D@3.6}.\n"
      "7  receive buddy-help {D@10, YES, D@9.6}.\n"
      "8  export D@4.6, skip memcpy.\n"
      "9  export D@5.6, skip memcpy.\n"
      "10  export D@6.6, skip memcpy.\n"
      "11  export D@7.6, skip memcpy.\n"
      "12  export D@8.6, skip memcpy.\n"
      "13  export D@9.6, call memcpy.\n"
      "14  send D@9.6 out.\n"
      "15  export D@10.6, call memcpy.\n"
      "16  export D@11.6, call memcpy.\n";
  EXPECT_EQ(run_figure_scenario(true), expected);
}

TEST(GoldenTrace, Figure8WithoutBuddyHelp) {
  const char* expected =
      "1  export D@1.6, call memcpy.\n"
      "2  export D@2.6, call memcpy.\n"
      "3  export D@3.6, call memcpy.\n"
      "4  receive request for D@10.\n"
      "5  remove D@1.6, ..., D@3.6.\n"
      "6  reply {D@10, PENDING, D@3.6}.\n"
      "7  export D@4.6, skip memcpy.\n"
      "8  export D@5.6, call memcpy.\n"
      "9  export D@6.6, call memcpy.\n"
      "10  remove D@5.6.\n"
      "11  export D@7.6, call memcpy.\n"
      "12  remove D@6.6.\n"
      "13  export D@8.6, call memcpy.\n"
      "14  remove D@7.6.\n"
      "15  export D@9.6, call memcpy.\n"
      "16  remove D@8.6.\n"
      "17  export D@10.6, call memcpy.\n"
      "18  decide {D@10, MATCH, D@9.6}.\n"
      "19  send D@9.6 out.\n"
      "20  export D@11.6, call memcpy.\n";
  EXPECT_EQ(run_figure_scenario(false), expected);
}

}  // namespace
}  // namespace ccf::core
