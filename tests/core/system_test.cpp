// CoupledSystem end-to-end tests: data correctness across layouts, both
// execution modes, multiple importers per region, program chains,
// NO-MATCH flows, early misconfiguration detection, unconnected regions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/system.hpp"

namespace ccf::core {
namespace {

using dist::BlockDecomposition;
using dist::DistArray2D;
using runtime::ClusterOptions;
using runtime::ExecutionMode;
using runtime::ProcessContext;

Config two_program_config(int exp_procs, int imp_procs, MatchPolicy policy, double tol) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/bin/e", exp_procs, {}});
  config.add_program(ProgramSpec{"I", "h", "/bin/i", imp_procs, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", policy, tol});
  return config;
}

double cell_value(Timestamp t, dist::Index r, dist::Index c) {
  return t * 1e6 + static_cast<double>(r) * 1000 + static_cast<double>(c);
}

/// Exporter sends versions 1..n; importer requests a subset and verifies
/// the content of every cell of every matched version.
void run_content_check(ExecutionMode mode, int exp_procs, int imp_procs) {
  const dist::Index rows = 24, cols = 24;
  Config config = two_program_config(exp_procs, imp_procs, MatchPolicy::REGL, 0.5);
  ClusterOptions cluster_options;
  cluster_options.mode = mode;
  CoupledSystem system(config, cluster_options, FrameworkOptions{});

  const auto exp_decomp = BlockDecomposition::make_grid(rows, cols, exp_procs);
  const auto imp_decomp = BlockDecomposition::make_grid(rows, cols, imp_procs);

  system.set_program_body("E", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_export_region("r", exp_decomp);
    rt.commit();
    DistArray2D<double> data(exp_decomp, rt.rank());
    for (int k = 1; k <= 10; ++k) {
      const double t = k;
      data.fill([&](dist::Index r, dist::Index c) { return cell_value(t, r, c); });
      rt.export_region("r", t, data);
    }
    rt.finalize();
  });

  std::vector<int> errors(static_cast<std::size_t>(imp_procs), 0);
  system.set_program_body("I", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_import_region("r", imp_decomp);
    rt.commit();
    DistArray2D<double> data(imp_decomp, rt.rank());
    for (double x : {3.0, 7.0, 10.0}) {
      const auto st = rt.import_region("r", x, data);
      if (!st.ok() || st.matched != x) {
        errors[static_cast<std::size_t>(rt.rank())] += 1000;
        continue;
      }
      const dist::Box box = data.local_box();
      for (dist::Index r = box.row_begin; r < box.row_end; ++r) {
        for (dist::Index c = box.col_begin; c < box.col_end; ++c) {
          if (data.at(r, c) != cell_value(x, r, c)) errors[static_cast<std::size_t>(rt.rank())]++;
        }
      }
    }
    rt.finalize();
  });

  system.run();
  for (int r = 0; r < imp_procs; ++r) {
    EXPECT_EQ(errors[static_cast<std::size_t>(r)], 0) << "importer rank " << r;
  }
}

struct ModeLayoutParam {
  ExecutionMode mode;
  int exp_procs;
  int imp_procs;
};

class ContentCheck : public ::testing::TestWithParam<ModeLayoutParam> {};

TEST_P(ContentCheck, MatchedDataArrivesIntact) {
  run_content_check(GetParam().mode, GetParam().exp_procs, GetParam().imp_procs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ContentCheck,
    ::testing::Values(ModeLayoutParam{ExecutionMode::VirtualTime, 1, 1},
                      ModeLayoutParam{ExecutionMode::VirtualTime, 4, 4},
                      ModeLayoutParam{ExecutionMode::VirtualTime, 4, 9},
                      ModeLayoutParam{ExecutionMode::VirtualTime, 6, 2},
                      ModeLayoutParam{ExecutionMode::VirtualTime, 2, 12},
                      ModeLayoutParam{ExecutionMode::RealThreads, 4, 6},
                      ModeLayoutParam{ExecutionMode::RealThreads, 2, 2}),
    [](const ::testing::TestParamInfo<ModeLayoutParam>& info) {
      return std::string(info.param.mode == ExecutionMode::RealThreads ? "Threads" : "Virtual") +
             "_E" + std::to_string(info.param.exp_procs) + "_I" +
             std::to_string(info.param.imp_procs);
    });

TEST(CoupledSystemTest, NoMatchFlowsReturnCleanly) {
  Config config = two_program_config(2, 2, MatchPolicy::REGL, 0.1);
  CoupledSystem system(config, ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);

  system.set_program_body("E", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    rt.export_region("r", 1.0, data);  // only version: t=1
    rt.finalize();
  });
  std::vector<int> no_matches(2, 0);
  system.set_program_body("I", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    // Requests far from the only export: NO MATCH under tol 0.1.
    for (double x : {5.0, 9.0}) {
      const auto st = rt.import_region("r", x, data);
      if (st.result == MatchResult::NoMatch) no_matches[static_cast<std::size_t>(rt.rank())]++;
    }
    rt.finalize();
  });
  system.run();
  EXPECT_EQ(no_matches[0], 2);
  EXPECT_EQ(no_matches[1], 2);
}

TEST(CoupledSystemTest, OneRegionTwoImportingPrograms) {
  Config config;
  config.add_program(ProgramSpec{"E", "h", "/e", 2, {}});
  config.add_program(ProgramSpec{"I1", "h", "/i1", 3, {}});
  config.add_program(ProgramSpec{"I2", "h", "/i2", 2, {}});
  config.add_connection(ConnectionSpec{"E", "r", "I1", "a", MatchPolicy::REGL, 0.5});
  config.add_connection(ConnectionSpec{"E", "r", "I2", "b", MatchPolicy::REG, 1.5});

  CoupledSystem system(config, ClusterOptions{}, FrameworkOptions{});
  const dist::Index rows = 12, cols = 12;
  const auto e_decomp = BlockDecomposition::make_grid(rows, cols, 2);

  system.set_program_body("E", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    for (int k = 1; k <= 8; ++k) {
      data.fill([&](dist::Index, dist::Index) { return static_cast<double>(k); });
      rt.export_region("r", k, data);
    }
    rt.finalize();
  });

  auto importer = [&](int nprocs, std::vector<double> requests,
                      std::vector<double>* matched) {
    return [&, nprocs, requests, matched](CouplingRuntime& rt, ProcessContext&) {
      const auto decomp = BlockDecomposition::make_grid(rows, cols, nprocs);
      rt.define_import_region(rt.program() == "I1" ? "a" : "b", decomp);
      rt.commit();
      DistArray2D<double> data(decomp, rt.rank());
      for (double x : requests) {
        const auto st = rt.import_region(rt.program() == "I1" ? "a" : "b", x, data);
        if (rt.rank() == 0 && st.ok()) matched->push_back(st.matched);
      }
      rt.finalize();
    };
  };
  std::vector<double> m1, m2;
  system.set_program_body("I1", importer(3, {2.0, 5.0}, &m1));
  system.set_program_body("I2", importer(2, {3.5, 7.0}, &m2));
  system.run();
  EXPECT_EQ(m1, (std::vector<double>{2.0, 5.0}));
  // REG picks the closest; 3.5 is equidistant from 3 and 4 and ties
  // prefer the later (more recent) version.
  EXPECT_EQ(m2, (std::vector<double>{4.0, 7.0}));
}

TEST(CoupledSystemTest, ChainOfThreePrograms) {
  // A exports to B; B consumes, transforms, exports to C.
  Config config;
  config.add_program(ProgramSpec{"A", "h", "/a", 2, {}});
  config.add_program(ProgramSpec{"B", "h", "/b", 2, {}});
  config.add_program(ProgramSpec{"C", "h", "/c", 2, {}});
  config.add_connection(ConnectionSpec{"A", "out", "B", "in", MatchPolicy::REGL, 0.5});
  config.add_connection(ConnectionSpec{"B", "out", "C", "in", MatchPolicy::REGL, 0.5});

  CoupledSystem system(config, ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);

  system.set_program_body("A", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_export_region("out", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 4; ++k) {
      data.fill([&](dist::Index, dist::Index) { return k * 10.0; });
      rt.export_region("out", k, data);
    }
    rt.finalize();
  });
  system.set_program_body("B", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_import_region("in", decomp);
    rt.define_export_region("out", decomp);
    rt.commit();
    DistArray2D<double> in(decomp, rt.rank()), out(decomp, rt.rank());
    for (int k = 1; k <= 4; ++k) {
      const auto st = rt.import_region("in", k, in);
      ASSERT_TRUE(st.ok());
      out.fill([&](dist::Index r, dist::Index c) { return in.at(r, c) + 1.0; });
      rt.export_region("out", k, out);
    }
    rt.finalize();
  });
  std::vector<double> seen;
  system.set_program_body("C", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_import_region("in", decomp);
    rt.commit();
    DistArray2D<double> in(decomp, rt.rank());
    for (int k = 1; k <= 4; ++k) {
      const auto st = rt.import_region("in", k, in);
      ASSERT_TRUE(st.ok());
      if (rt.rank() == 0) seen.push_back(in.at(0, 0));
    }
    rt.finalize();
  });
  system.run();
  EXPECT_EQ(seen, (std::vector<double>{11.0, 21.0, 31.0, 41.0}));
}

TEST(CoupledSystemTest, UnconnectedExportRegionIsLowOverhead) {
  Config config = two_program_config(2, 2, MatchPolicy::REGL, 0.5);
  CoupledSystem system(config, ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  system.set_program_body("E", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_export_region("r", decomp);
    rt.define_export_region("diagnostics", decomp);  // nobody imports this
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 3; ++k) {
      rt.export_region("r", k, data);
      rt.export_region("diagnostics", k, data);
    }
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    (void)rt.import_region("r", 2.0, data);
    rt.finalize();
  });
  system.run();
  // The unconnected region performed no buffering at all.
  const ProcStats& stats = system.proc_stats("E", 0);
  ASSERT_EQ(stats.exports.size(), 2u);
  for (const auto& region : stats.exports) {
    if (region.region == "diagnostics") {
      EXPECT_EQ(region.exports, 3u);
      EXPECT_EQ(region.buffer.stores, 0u);
      EXPECT_EQ(region.buffer.skips, 0u);
    }
  }
}

TEST(CoupledSystemTest, MissingRegionDefinitionDetectedEarly) {
  Config config = two_program_config(2, 2, MatchPolicy::REGL, 0.5);
  CoupledSystem system(config, ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(8, 8, 2);
  system.set_program_body("E", [&](CouplingRuntime& rt, ProcessContext&) {
    // Forgets to define the exported region named in the connection.
    rt.commit();
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    rt.finalize();
  });
  try {
    system.run();
    FAIL() << "expected early misconfiguration detection";
  } catch (const util::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("never defined exported region"), std::string::npos);
  }
}

TEST(CoupledSystemTest, RegionDimensionMismatchDetected) {
  Config config = two_program_config(2, 2, MatchPolicy::REGL, 0.5);
  CoupledSystem system(config, ClusterOptions{}, FrameworkOptions{});
  system.set_program_body("E", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_export_region("r", BlockDecomposition::make_grid(8, 8, 2));
    rt.commit();
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_import_region("r", BlockDecomposition::make_grid(16, 16, 2));
    rt.commit();
    rt.finalize();
  });
  EXPECT_THROW(system.run(), util::InvalidArgument);
}

TEST(CoupledSystemTest, ValidatesProgramBodies) {
  Config config = two_program_config(1, 1, MatchPolicy::REGL, 0.5);
  CoupledSystem system(config, ClusterOptions{}, FrameworkOptions{});
  EXPECT_THROW(system.set_program_body("nope", [](CouplingRuntime&, ProcessContext&) {}),
               util::InvalidArgument);
  EXPECT_THROW(system.run(), util::InvalidArgument);  // bodies missing
}

TEST(CoupledSystemTest, ProgramsWithNoConnectionsTerminate) {
  Config config;
  config.add_program(ProgramSpec{"solo", "h", "/s", 3, {}});
  CoupledSystem system(config, ClusterOptions{}, FrameworkOptions{});
  system.set_program_body("solo", [&](CouplingRuntime& rt, ProcessContext& ctx) {
    rt.commit();
    ctx.compute(0.5);
    rt.finalize();
  });
  system.run();
  EXPECT_GE(system.end_time(), 0.5);
}

TEST(CoupledSystemTest, ImportTimestampsMustIncrease) {
  Config config = two_program_config(1, 1, MatchPolicy::REGL, 0.5);
  CoupledSystem system(config, ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(4, 4, 1);
  system.set_program_body("E", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_export_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    for (int k = 1; k <= 5; ++k) rt.export_region("r", k, data);
    rt.finalize();
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, rt.rank());
    (void)rt.import_region("r", 3.0, data);
    EXPECT_THROW((void)rt.import_region("r", 3.0, data), util::InvalidArgument);
    EXPECT_THROW((void)rt.import_region("r", 2.0, data), util::InvalidArgument);
    (void)rt.import_region("r", 4.0, data);
    rt.finalize();
  });
  system.run();
}

TEST(CoupledSystemTest, ApiMisuseIsRejected) {
  Config config = two_program_config(1, 1, MatchPolicy::REGL, 0.5);
  CoupledSystem system(config, ClusterOptions{}, FrameworkOptions{});
  const auto decomp = BlockDecomposition::make_grid(4, 4, 1);
  system.set_program_body("E", [&](CouplingRuntime& rt, ProcessContext&) {
    DistArray2D<double> data(decomp, 0);
    EXPECT_THROW(rt.export_region("r", 1.0, data), util::InvalidArgument);  // before commit
    rt.define_export_region("r", decomp);
    EXPECT_THROW(rt.define_export_region("r", decomp), util::InvalidArgument);  // duplicate
    rt.commit();
    EXPECT_THROW(rt.commit(), util::InvalidArgument);
    EXPECT_THROW(rt.export_region("other", 1.0, data), util::InvalidArgument);  // undefined
    rt.export_region("r", 1.0, data);
    rt.finalize();
    EXPECT_THROW(rt.export_region("r", 2.0, data), util::InvalidArgument);  // after finalize
  });
  system.set_program_body("I", [&](CouplingRuntime& rt, ProcessContext&) {
    rt.define_import_region("r", decomp);
    rt.commit();
    DistArray2D<double> data(decomp, 0);
    (void)rt.import_region("r", 1.0, data);
    rt.finalize();
  });
  system.run();
}

}  // namespace
}  // namespace ccf::core
