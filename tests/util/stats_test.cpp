#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.hpp"

namespace ccf::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.37) * 10;
    (i < 50 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.9), 9.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 1.5), InvalidArgument);
}

TEST(LinearFitTest, ExactLine) {
  std::vector<double> xs{0, 1, 2, 3}, ys{1, 3, 5, 7};
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

TEST(LinearFitTest, DegenerateCases) {
  EXPECT_EQ(linear_fit({}, {}).slope, 0.0);
  EXPECT_EQ(linear_fit({1}, {5}).slope, 0.0);
  // All x equal: denominator zero.
  const LinearFit f = linear_fit({2, 2, 2}, {1, 2, 3});
  EXPECT_EQ(f.slope, 0.0);
}

TEST(LinearFitTest, SizeMismatchThrows) {
  EXPECT_THROW(linear_fit({1, 2}, {1}), InvalidArgument);
}

TEST(MeanOf, RangeSemantics) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_of(v, 0, 4), 2.5);
  EXPECT_DOUBLE_EQ(mean_of(v, 1, 3), 2.5);
  EXPECT_DOUBLE_EQ(mean_of(v, 2, 100), 3.5);  // clamps
  EXPECT_DOUBLE_EQ(mean_of(v, 3, 3), 0.0);    // empty
}

TEST(SettleIndex, FlatSeriesSettlesAtZero) {
  std::vector<double> flat(100, 5.0);
  EXPECT_EQ(settle_index(flat, 10, 0.05), 0u);
}

TEST(SettleIndex, StepDecayFindsKnee) {
  std::vector<double> series;
  for (int i = 0; i < 50; ++i) series.push_back(10.0);
  for (int i = 0; i < 50; ++i) series.push_back(2.0);
  const std::size_t knee = settle_index(series, 5, 0.05);
  EXPECT_GE(knee, 46u);
  EXPECT_LE(knee, 51u);
}

TEST(SettleIndex, NeverSettlingReturnsNearEnd) {
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(100.0 - i);  // linear decay
  const std::size_t knee = settle_index(series, 5, 0.01);
  EXPECT_GT(knee, 90u);
}

TEST(SettleIndex, ShortSeries) {
  std::vector<double> s{1.0, 2.0};
  EXPECT_EQ(settle_index(s, 10, 0.05), 2u);  // shorter than window
  EXPECT_EQ(settle_index(s, 0, 0.05), 2u);   // zero window
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_high(2), 6.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

}  // namespace
}  // namespace ccf::util
