#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ccf::util {
namespace {

std::size_t count_lines(const std::string& s) {
  std::size_t n = 0;
  for (char c : s) {
    if (c == '\n') ++n;
  }
  return n;
}

TEST(AsciiPlot, EmptySeriesRendersPlaceholder) {
  const std::string out = ascii_plot({});
  EXPECT_NE(out.find("empty series"), std::string::npos);
}

TEST(AsciiPlot, FrameGeometry) {
  AsciiPlotOptions options;
  options.width = 40;
  options.height = 10;
  options.y_label = "ms";
  options.x_label = "iter";
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(i);
  const std::string out = ascii_plot(series, options);
  // y label + height rows + axis + x label.
  EXPECT_EQ(count_lines(out), 1u + 10u + 1u + 1u);
  EXPECT_NE(out.find("ms"), std::string::npos);
  EXPECT_NE(out.find("iter"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, MonotoneSeriesPutsExtremesAtCorners) {
  AsciiPlotOptions options;
  options.width = 20;
  options.height = 5;
  std::vector<double> rising{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::string out = ascii_plot(rising, options);
  std::vector<std::string> lines;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  // Top data row contains the max marker near the right edge; bottom data
  // row has the min near the left edge.
  const std::string& top = lines[0];
  const std::string& bottom = lines[4];
  EXPECT_GT(top.rfind('*'), bottom.find('*'));
}

TEST(AsciiPlot, ConstantSeriesSitsOnBaselineWithFixedMin) {
  AsciiPlotOptions options;
  options.width = 10;
  options.height = 4;
  options.y_auto_min = false;  // lower bound 0
  const std::string out = ascii_plot({5, 5, 5, 5}, options);
  // All markers on the top row (value == max) and none below.
  std::istringstream in(out);
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first.find('*'), std::string::npos);
}

TEST(AsciiPlot, ResamplesLongSeries) {
  AsciiPlotOptions options;
  options.width = 8;
  options.height = 4;
  std::vector<double> series(10000, 1.0);
  const std::string out = ascii_plot(series, options);
  // No line longer than axis + width + slack.
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) EXPECT_LE(line.size(), 8u + 12u);
}

TEST(AsciiPlot, OverlayMarksBothSeries) {
  AsciiPlotOptions options;
  options.width = 16;
  options.height = 6;
  std::vector<double> a{1, 1, 1, 1};
  std::vector<double> b{3, 3, 3, 3};
  const std::string out = ascii_plot2(a, b, options);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  // Identical series collide into '#'.
  const std::string both = ascii_plot2(a, a, options);
  EXPECT_NE(both.find('#'), std::string::npos);
}

}  // namespace
}  // namespace ccf::util
