// Tests for check macros, CLI parsing, ring buffer, RNG, tables, work loops.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/work.hpp"

namespace ccf::util {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    CCF_CHECK(1 == 2, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(CCF_REQUIRE(false, "nope"), InvalidArgument);
  EXPECT_NO_THROW(CCF_REQUIRE(true, "fine"));
}

TEST(Check, ExceptionHierarchy) {
  EXPECT_THROW(throw ProtocolViolation("x"), Error);
  EXPECT_THROW(throw InternalError("x"), std::runtime_error);
}

TEST(Cli, DefaultsAndOverrides) {
  CliParser cli("prog", "test");
  cli.add_option("n", "5", "count");
  cli.add_option("name", "abc", "label");
  cli.add_flag("fast", "go fast");
  const char* argv[] = {"prog", "--n=10", "--fast"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_int("n"), 10);
  EXPECT_EQ(cli.get("name"), "abc");
  EXPECT_TRUE(cli.get_bool("fast"));
}

TEST(Cli, UnknownOptionThrows) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
}

TEST(Cli, MalformedNumbersThrow) {
  CliParser cli("prog", "test");
  cli.add_option("n", "5", "count");
  const char* argv[] = {"prog", "--n=abc"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_int("n"), InvalidArgument);
}

TEST(Cli, PositionalArguments) {
  CliParser cli("prog", "test");
  cli.add_option("n", "5", "count");
  const char* argv[] = {"prog", "one", "--n=3", "two"};
  ASSERT_TRUE(cli.parse(4, argv));
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "one");
  EXPECT_EQ(cli.positional()[1], "two");
}

TEST(Cli, ParseLists) {
  const auto ints = parse_int_list("4,8,16,32");
  ASSERT_EQ(ints.size(), 4u);
  EXPECT_EQ(ints[3], 32);
  const auto doubles = parse_double_list("0.5,2.5");
  ASSERT_EQ(doubles.size(), 2u);
  EXPECT_DOUBLE_EQ(doubles[1], 2.5);
  EXPECT_THROW(parse_int_list("1,x"), InvalidArgument);
}

TEST(RingBufferTest, WrapsAndKeepsNewest) {
  RingBuffer<int> ring(3);
  EXPECT_TRUE(ring.empty());
  for (int i = 1; i <= 5; ++i) ring.push(i);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.oldest(), 3);
  EXPECT_EQ(ring.newest(), 5);
  EXPECT_EQ(ring.at(1), 4);
  const auto snap = ring.snapshot();
  EXPECT_EQ(snap, (std::vector<int>{3, 4, 5}));
}

TEST(RingBufferTest, BoundsChecked) {
  RingBuffer<int> ring(2);
  ring.push(1);
  EXPECT_THROW(ring.at(1), InvalidArgument);
  EXPECT_THROW(RingBuffer<int>(0), InvalidArgument);
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
    const auto k = rng.below(10);
    EXPECT_LT(k, 10u);
  }
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Table, AlignsColumns) {
  TableWriter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
  TableWriter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(TableWriter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::fmt(std::size_t{42}), "42");
}

TEST(Work, SpinIsCalibrated) {
  const double rate = spin_iters_per_us();
  EXPECT_GT(rate, 1.0);  // any machine does > 1 iter/us
  // spin_for_us should take roughly the requested time (loose bounds; CI
  // machines are noisy).
  const auto t0 = std::chrono::steady_clock::now();
  spin_for_us(2000);
  const double us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_GT(us, 400.0);
  EXPECT_LT(us, 50000.0);
}

TEST(Work, ZeroAndNegativeAreNoops) {
  spin_for_us(0);
  spin_for_us(-5);
  SUCCEED();
}

}  // namespace
}  // namespace ccf::util
