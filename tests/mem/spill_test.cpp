#include "mem/spill.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <random>
#include <vector>

namespace ccf::mem {
namespace {
namespace fs = std::filesystem;

std::vector<std::byte> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::byte> out(n);
  for (std::byte& b : out) b = static_cast<std::byte>(rng() & 0xFF);
  return out;
}

class SpillStoreTest : public ::testing::Test {
 protected:
  std::string tmp_dir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    fs::path dir = fs::temp_directory_path() /
                   (std::string("ccf_spill_") + info->name());
    fs::remove_all(dir);
    return dir.string();
  }
};

TEST_F(SpillStoreTest, RoundTripIsByteIdentical) {
  SpillStore store(tmp_dir());
  const std::vector<std::byte> payload = random_bytes(4096 + 13, 1);
  const SpillStore::Ticket t = store.put(payload.data(), payload.size());
  EXPECT_EQ(t.bytes, payload.size());
  std::vector<std::byte> back(payload.size());
  store.restore(t, back.data());
  EXPECT_EQ(back, payload);
  EXPECT_EQ(store.stats().spills, 1u);
  EXPECT_EQ(store.stats().restores, 1u);
  EXPECT_EQ(store.stats().live_entries, 0u);
  EXPECT_EQ(store.stats().live_bytes, 0u);
}

TEST_F(SpillStoreTest, CreatesMissingDirectory) {
  const fs::path dir = fs::path(tmp_dir()) / "nested" / "deeper";
  SpillStore store(dir.string());
  EXPECT_TRUE(fs::is_directory(dir));
}

TEST_F(SpillStoreTest, ReleaseDropsWithoutRestore) {
  SpillStore store(tmp_dir());
  const std::vector<std::byte> payload = random_bytes(256, 2);
  const SpillStore::Ticket t = store.put(payload.data(), payload.size());
  EXPECT_EQ(store.stats().live_bytes, 256u);
  store.release(t);
  EXPECT_EQ(store.stats().releases, 1u);
  EXPECT_EQ(store.stats().live_entries, 0u);
  EXPECT_EQ(store.stats().live_bytes, 0u);
  // The backing file is gone.
  EXPECT_TRUE(fs::is_empty(store.directory()));
}

TEST_F(SpillStoreTest, ManyTicketsRestoreIndependently) {
  SpillStore store(tmp_dir());
  std::vector<std::vector<std::byte>> payloads;
  std::vector<SpillStore::Ticket> tickets;
  for (std::uint32_t i = 0; i < 16; ++i) {
    payloads.push_back(random_bytes(64 * (i + 1), 100 + i));
    tickets.push_back(store.put(payloads.back().data(), payloads.back().size()));
  }
  EXPECT_EQ(store.stats().live_entries, 16u);
  // Restore out of order.
  for (int i = 15; i >= 0; --i) {
    std::vector<std::byte> back(tickets[static_cast<std::size_t>(i)].bytes);
    store.restore(tickets[static_cast<std::size_t>(i)], back.data());
    EXPECT_EQ(back, payloads[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(store.stats().live_entries, 0u);
}

TEST_F(SpillStoreTest, PeakLiveBytesTracksHighWater) {
  SpillStore store(tmp_dir());
  const std::vector<std::byte> a = random_bytes(100, 3);
  const std::vector<std::byte> b = random_bytes(300, 4);
  const SpillStore::Ticket ta = store.put(a.data(), a.size());
  const SpillStore::Ticket tb = store.put(b.data(), b.size());
  EXPECT_EQ(store.stats().peak_live_bytes, 400u);
  store.release(ta);
  store.release(tb);
  EXPECT_EQ(store.stats().peak_live_bytes, 400u);
  EXPECT_EQ(store.stats().bytes_spilled, 400u);
}

TEST_F(SpillStoreTest, SharedDirectoryStoresDoNotCollide) {
  const std::string dir = tmp_dir();
  SpillStore a(dir);
  SpillStore b(dir);
  const std::vector<std::byte> pa = random_bytes(128, 5);
  const std::vector<std::byte> pb = random_bytes(128, 6);
  const SpillStore::Ticket ta = a.put(pa.data(), pa.size());
  const SpillStore::Ticket tb = b.put(pb.data(), pb.size());
  std::vector<std::byte> back(128);
  a.restore(ta, back.data());
  EXPECT_EQ(back, pa);
  b.restore(tb, back.data());
  EXPECT_EQ(back, pb);
}

TEST_F(SpillStoreTest, DestructorCleansUpLiveFiles) {
  const std::string dir = tmp_dir();
  {
    SpillStore store(dir);
    const std::vector<std::byte> payload = random_bytes(512, 7);
    (void)store.put(payload.data(), payload.size());
    (void)store.put(payload.data(), payload.size());
    EXPECT_FALSE(fs::is_empty(dir));
  }
  EXPECT_TRUE(fs::is_empty(dir));
}

TEST_F(SpillStoreTest, EmptyDirectoryRejected) {
  EXPECT_THROW(SpillStore(""), std::runtime_error);
}

}  // namespace
}  // namespace ccf::mem
