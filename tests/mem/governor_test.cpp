#include "mem/governor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ccf::mem {
namespace {

TEST(MemoryGovernor, ChargesAndReleasesTrackPeak) {
  MemoryGovernor gov(1000, 0.5, 0.9);
  EXPECT_EQ(gov.budget_bytes(), 1000u);
  gov.charge(300);
  gov.charge(400);
  EXPECT_EQ(gov.stats().charged_bytes, 700u);
  EXPECT_EQ(gov.stats().peak_charged_bytes, 700u);
  gov.release(500);
  EXPECT_EQ(gov.stats().charged_bytes, 200u);
  EXPECT_EQ(gov.stats().peak_charged_bytes, 700u);
  gov.charge(100);
  EXPECT_EQ(gov.stats().peak_charged_bytes, 700u);
}

TEST(MemoryGovernor, WouldFitAndShortfall) {
  MemoryGovernor gov(1000, 0.5, 0.9);
  gov.charge(800);
  EXPECT_TRUE(gov.would_fit(200));
  EXPECT_FALSE(gov.would_fit(201));
  EXPECT_EQ(gov.stats().budget_denials, 1u);
  EXPECT_EQ(gov.shortfall(200), 0u);
  EXPECT_EQ(gov.shortfall(500), 300u);
}

TEST(MemoryGovernor, ChargeMayExceedBudget) {
  // The runtime soft-exceeds rather than deadlocking the collective
  // protocol; the governor must account for it, not forbid it.
  MemoryGovernor gov(100, 0.5, 0.9);
  gov.charge(250);
  EXPECT_EQ(gov.stats().charged_bytes, 250u);
  EXPECT_EQ(gov.stats().peak_charged_bytes, 250u);
  EXPECT_TRUE(gov.under_pressure());
  gov.release(250);
  EXPECT_FALSE(gov.under_pressure());
}

TEST(MemoryGovernor, PressureHysteresis) {
  MemoryGovernor gov(1000, 0.5, 0.9);
  gov.charge(899);
  EXPECT_FALSE(gov.under_pressure());
  gov.charge(1);  // hits the high watermark
  EXPECT_TRUE(gov.under_pressure());
  EXPECT_EQ(gov.stats().pressure_raises, 1u);
  // Dropping into the hysteresis band does not clear pressure.
  gov.release(300);
  EXPECT_TRUE(gov.under_pressure());
  // Climbing back up within the band raises nothing new.
  gov.charge(200);
  EXPECT_TRUE(gov.under_pressure());
  EXPECT_EQ(gov.stats().pressure_raises, 1u);
  // Only the low watermark clears.
  gov.release(300);
  EXPECT_FALSE(gov.under_pressure());
  EXPECT_EQ(gov.stats().pressure_clears, 1u);
}

TEST(MemoryGovernor, PressureEdgeFiresOncePerTransition) {
  MemoryGovernor gov(1000, 0.5, 0.9);
  EXPECT_FALSE(gov.consume_pressure_edge());
  gov.charge(950);
  EXPECT_TRUE(gov.consume_pressure_edge());
  EXPECT_FALSE(gov.consume_pressure_edge());  // already signaled
  gov.release(500);
  EXPECT_TRUE(gov.consume_pressure_edge());
  EXPECT_FALSE(gov.consume_pressure_edge());
}

TEST(MemoryGovernor, RapidFlapWithinOnePollCoalesces) {
  // Raise and clear between two polls: no edge is visible because the
  // level returned to what was last signaled.
  MemoryGovernor gov(1000, 0.5, 0.9);
  gov.charge(950);
  gov.release(600);
  EXPECT_FALSE(gov.consume_pressure_edge());
  EXPECT_EQ(gov.stats().pressure_raises, 1u);
  EXPECT_EQ(gov.stats().pressure_clears, 1u);
}

TEST(MemoryGovernor, RejectsInvalidConfig) {
  EXPECT_THROW(MemoryGovernor(0, 0.5, 0.9), std::runtime_error);
  EXPECT_THROW(MemoryGovernor(100, 0.9, 0.5), std::runtime_error);
  EXPECT_THROW(MemoryGovernor(100, 0.5, 1.5), std::runtime_error);
  EXPECT_THROW(MemoryGovernor(100, -0.1, 0.9), std::runtime_error);
}

TEST(MemoryGovernor, ReleaseUnderflowThrows) {
  MemoryGovernor gov(1000, 0.5, 0.9);
  gov.charge(10);
  EXPECT_THROW(gov.release(11), std::runtime_error);
}

}  // namespace
}  // namespace ccf::mem
