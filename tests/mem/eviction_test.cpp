#include "mem/eviction.hpp"

#include <gtest/gtest.h>

namespace ccf::mem {
namespace {

EvictionCandidate cand(double t, std::size_t bytes, EvictClass cls) {
  return EvictionCandidate{t, bytes, cls};
}

TEST(EvictionPlanner, NeverMatchGoesBeforeMatchableClasses) {
  const EvictionPlan plan = plan_evictions(
      {
          cand(5.0, 100, EvictClass::FutureOnly),
          cand(1.0, 100, EvictClass::Candidate),
          cand(9.0, 100, EvictClass::NeverMatch),
      },
      150);
  ASSERT_EQ(plan.victims.size(), 2u);
  EXPECT_EQ(plan.victims[0].cls, EvictClass::NeverMatch);
  EXPECT_EQ(plan.victims[1].cls, EvictClass::FutureOnly);
  EXPECT_EQ(plan.planned_bytes, 200u);
}

TEST(EvictionPlanner, FutureOnlyEvictsColdestFirst) {
  const EvictionPlan plan = plan_evictions(
      {
          cand(3.0, 10, EvictClass::FutureOnly),
          cand(1.0, 10, EvictClass::FutureOnly),
          cand(2.0, 10, EvictClass::FutureOnly),
      },
      20);
  ASSERT_EQ(plan.victims.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.victims[0].t, 1.0);
  EXPECT_DOUBLE_EQ(plan.victims[1].t, 2.0);
}

TEST(EvictionPlanner, CandidatesEvictLatestResolvingFirst) {
  // A candidate for a later request resolves later — it is the better
  // victim because its send is further away.
  const EvictionPlan plan = plan_evictions(
      {
          cand(1.0, 10, EvictClass::Candidate),
          cand(4.0, 10, EvictClass::Candidate),
          cand(2.0, 10, EvictClass::Candidate),
      },
      20);
  ASSERT_EQ(plan.victims.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.victims[0].t, 4.0);
  EXPECT_DOUBLE_EQ(plan.victims[1].t, 2.0);
}

TEST(EvictionPlanner, PinnedNeverSelectedEvenWhenShort) {
  const EvictionPlan plan = plan_evictions(
      {
          cand(1.0, 10, EvictClass::Pinned),
          cand(2.0, 10, EvictClass::FutureOnly),
          cand(3.0, 10, EvictClass::Pinned),
      },
      100);
  ASSERT_EQ(plan.victims.size(), 1u);
  EXPECT_EQ(plan.victims[0].cls, EvictClass::FutureOnly);
  // Plan falls short: the caller must degrade to backpressure, not free
  // pinned frames.
  EXPECT_EQ(plan.planned_bytes, 10u);
}

TEST(EvictionPlanner, StopsOnceBytesCovered) {
  const EvictionPlan plan = plan_evictions(
      {
          cand(1.0, 100, EvictClass::FutureOnly),
          cand(2.0, 100, EvictClass::FutureOnly),
          cand(3.0, 100, EvictClass::FutureOnly),
      },
      100);
  EXPECT_EQ(plan.victims.size(), 1u);
  EXPECT_EQ(plan.planned_bytes, 100u);
}

TEST(EvictionPlanner, ZeroNeedYieldsEmptyPlan) {
  const EvictionPlan plan =
      plan_evictions({cand(1.0, 100, EvictClass::NeverMatch)}, 0);
  EXPECT_TRUE(plan.victims.empty());
  EXPECT_EQ(plan.planned_bytes, 0u);
}

}  // namespace
}  // namespace ccf::mem
