// Distributed 2-D array: each process stores the block assigned to it by a
// BlockDecomposition. Supports global-index access to the local block and
// packing/unpacking of arbitrary sub-boxes for redistribution.
#pragma once

#include <cstddef>
#include <cstring>
#include <vector>

#include "dist/decomposition.hpp"
#include "util/check.hpp"

namespace ccf::dist {

template <typename T>
class DistArray2D {
 public:
  DistArray2D(const BlockDecomposition& decomp, int rank)
      : decomp_(decomp), rank_(rank), local_(decomp.box_of(rank)) {
    storage_.assign(static_cast<std::size_t>(local_.count()), T{});
  }

  const BlockDecomposition& decomposition() const { return decomp_; }
  int rank() const { return rank_; }
  const Box& local_box() const { return local_; }
  std::size_t local_count() const { return storage_.size(); }
  std::size_t local_bytes() const { return storage_.size() * sizeof(T); }

  T* data() { return storage_.data(); }
  const T* data() const { return storage_.data(); }

  /// Access by *global* index; (r, c) must be inside the local box.
  T& at(Index r, Index c) {
    CCF_CHECK(local_.contains(r, c), "global (" << r << "," << c << ") not in local box " << local_);
    return storage_[offset(r, c)];
  }
  const T& at(Index r, Index c) const {
    CCF_CHECK(local_.contains(r, c), "global (" << r << "," << c << ") not in local box " << local_);
    return storage_[offset(r, c)];
  }

  /// Fills the local block from a function of global indices.
  template <typename Fn>
  void fill(Fn&& fn) {
    for (Index r = local_.row_begin; r < local_.row_end; ++r) {
      for (Index c = local_.col_begin; c < local_.col_end; ++c) {
        storage_[offset(r, c)] = fn(r, c);
      }
    }
  }

  /// Copies the elements of `box` (global indices, must be inside the local
  /// box) into a dense row-major buffer.
  std::vector<T> pack(const Box& box) const {
    CCF_REQUIRE(local_.contains(box), "pack box " << box << " escapes local box " << local_);
    std::vector<T> out;
    out.reserve(static_cast<std::size_t>(box.count()));
    for (Index r = box.row_begin; r < box.row_end; ++r) {
      const std::size_t base = offset(r, box.col_begin);
      out.insert(out.end(), storage_.begin() + static_cast<std::ptrdiff_t>(base),
                 storage_.begin() + static_cast<std::ptrdiff_t>(base + static_cast<std::size_t>(box.cols())));
    }
    return out;
  }

  /// Inverse of pack(): writes a dense row-major buffer into `box`.
  void unpack(const Box& box, const std::vector<T>& buf) {
    CCF_REQUIRE(buf.size() == static_cast<std::size_t>(box.count()),
                "unpack buffer has " << buf.size() << " elements, box needs " << box.count());
    unpack_bytes(box, reinterpret_cast<const std::byte*>(buf.data()));
  }

  /// Writes `box.count()` row-major elements from raw bytes into `box` —
  /// one strided memcpy per row. `src` need not be aligned (it typically
  /// points into the middle of a received payload).
  void unpack_bytes(const Box& box, const std::byte* src) {
    CCF_REQUIRE(local_.contains(box), "unpack box " << box << " escapes local box " << local_);
    const std::size_t row_bytes = static_cast<std::size_t>(box.cols()) * sizeof(T);
    if (row_bytes == 0) return;
    for (Index r = box.row_begin; r < box.row_end; ++r) {
      std::memcpy(storage_.data() + offset(r, box.col_begin), src, row_bytes);
      src += row_bytes;
    }
  }

 private:
  std::size_t offset(Index r, Index c) const {
    return static_cast<std::size_t>((r - local_.row_begin) * local_.cols() +
                                    (c - local_.col_begin));
  }

  BlockDecomposition decomp_;
  int rank_;
  Box local_;
  std::vector<T> storage_;
};

}  // namespace ccf::dist
