// Block decompositions of a 2-D global domain over a process grid.
//
// Every process computes the full decomposition from (rows, cols, pr, pc)
// metadata alone, so exporter and importer programs can independently
// derive each other's data layout from the connection metadata — no
// layout messages are needed to build a redistribution schedule.
#pragma once

#include <utility>
#include <vector>

#include "dist/box.hpp"

namespace ccf::dist {

class BlockDecomposition {
 public:
  /// Splits rows x cols over a pr x pc grid, block-wise in both dimensions.
  /// Remainder rows/cols go to the leading blocks (MPI_Dims-style).
  BlockDecomposition(Index rows, Index cols, int pr, int pc);

  /// Convenience: chooses a near-square pr x pc grid for nprocs.
  static BlockDecomposition make_grid(Index rows, Index cols, int nprocs);

  /// 1-D row-block decomposition (pc == 1).
  static BlockDecomposition make_row_blocks(Index rows, Index cols, int nprocs);

  int nprocs() const { return pr_ * pc_; }
  int proc_rows() const { return pr_; }
  int proc_cols() const { return pc_; }
  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Box domain() const { return Box{0, rows_, 0, cols_}; }

  /// Local box owned by `rank` (row-major rank order over the grid).
  Box box_of(int rank) const;

  /// Rank owning global element (r, c).
  int owner_of(Index r, Index c) const;

  /// All ranks whose boxes overlap `region`.
  std::vector<int> ranks_overlapping(const Box& region) const;

  friend bool operator==(const BlockDecomposition& a, const BlockDecomposition& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.pr_ == b.pr_ && a.pc_ == b.pc_;
  }

 private:
  /// Extent of block `i` of `n` blocks over `total` elements.
  static std::pair<Index, Index> block_range(Index total, int n, int i);
  static int block_index(Index total, int n, Index x);

  Index rows_;
  Index cols_;
  int pr_;
  int pc_;
};

}  // namespace ccf::dist
