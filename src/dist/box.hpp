// Rectangular index regions (half-open boxes) over a 2-D global domain.
//
// Boxes are the metadata currency of the MxN redistribution machinery:
// decompositions map ranks to boxes, and communication schedules are built
// from pairwise box intersections (the Meta-Chaos/InterComm approach).
#pragma once

#include <cstdint>
#include <ostream>

namespace ccf::dist {

using Index = std::int64_t;

struct Box {
  Index row_begin = 0;
  Index row_end = 0;  ///< exclusive
  Index col_begin = 0;
  Index col_end = 0;  ///< exclusive

  Index rows() const { return row_end > row_begin ? row_end - row_begin : 0; }
  Index cols() const { return col_end > col_begin ? col_end - col_begin : 0; }
  Index count() const { return rows() * cols(); }
  bool empty() const { return count() == 0; }

  bool contains(Index r, Index c) const {
    return r >= row_begin && r < row_end && c >= col_begin && c < col_end;
  }

  bool contains(const Box& other) const {
    return other.empty() ||
           (other.row_begin >= row_begin && other.row_end <= row_end &&
            other.col_begin >= col_begin && other.col_end <= col_end);
  }

  friend bool operator==(const Box& a, const Box& b) {
    return a.row_begin == b.row_begin && a.row_end == b.row_end &&
           a.col_begin == b.col_begin && a.col_end == b.col_end;
  }

  friend std::ostream& operator<<(std::ostream& os, const Box& b) {
    return os << "[" << b.row_begin << "," << b.row_end << ")x[" << b.col_begin << ","
              << b.col_end << ")";
  }
};

/// Intersection of two boxes; empty (all-zero) when disjoint.
inline Box intersect(const Box& a, const Box& b) {
  Box out;
  out.row_begin = a.row_begin > b.row_begin ? a.row_begin : b.row_begin;
  out.row_end = a.row_end < b.row_end ? a.row_end : b.row_end;
  out.col_begin = a.col_begin > b.col_begin ? a.col_begin : b.col_begin;
  out.col_end = a.col_end < b.col_end ? a.col_end : b.col_end;
  if (out.row_begin >= out.row_end || out.col_begin >= out.col_end) return Box{};
  return out;
}

inline bool overlaps(const Box& a, const Box& b) { return !intersect(a, b).empty(); }

}  // namespace ccf::dist
