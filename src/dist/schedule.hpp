// MxN redistribution schedules.
//
// Given the exporter's decomposition, the importer's decomposition, and a
// transfer region, the schedule lists — per exporter rank — which sub-box
// goes to which importer rank, and symmetrically per importer rank. Both
// sides compute the schedule independently from metadata (deterministic,
// no negotiation traffic), the approach used by Meta-Chaos / InterComm /
// the CCA MxN working group the paper builds on.
#pragma once

#include <vector>

#include "dist/decomposition.hpp"

namespace ccf::dist {

/// One hop of a redistribution: `box` (global indices) travels between
/// exporter rank `src_rank` and importer rank `dst_rank`.
struct TransferPiece {
  int src_rank = 0;
  int dst_rank = 0;
  Box box;

  friend bool operator==(const TransferPiece& a, const TransferPiece& b) {
    return a.src_rank == b.src_rank && a.dst_rank == b.dst_rank && a.box == b.box;
  }
};

class RedistSchedule {
 public:
  /// Builds the full piece list for moving `region` from `src` to `dst`
  /// layouts. Both decompositions must cover `region`.
  RedistSchedule(const BlockDecomposition& src, const BlockDecomposition& dst, const Box& region);

  /// Windowed variant: the destination's domain maps onto the sub-box of
  /// the source domain whose origin is (dst_row_offset, dst_col_offset) —
  /// i.e., dst global index (r, c) corresponds to source index
  /// (r + dst_row_offset, c + dst_col_offset). `region` is given in
  /// SOURCE coordinates and must lie inside both the source domain and
  /// the translated destination domain. Piece boxes are recorded in
  /// source coordinates; receivers translate back when unpacking (see
  /// execute_recvs' offset parameters).
  RedistSchedule(const BlockDecomposition& src, const BlockDecomposition& dst, const Box& region,
                 Index dst_row_offset, Index dst_col_offset);

  Index dst_row_offset() const { return dst_row_offset_; }
  Index dst_col_offset() const { return dst_col_offset_; }

  const Box& region() const { return region_; }
  const std::vector<TransferPiece>& pieces() const { return pieces_; }

  /// Pieces this exporter rank must send, in deterministic order.
  std::vector<TransferPiece> sends_of(int src_rank) const;

  /// Pieces this importer rank must receive, in deterministic order.
  std::vector<TransferPiece> recvs_of(int dst_rank) const;

  /// Total elements moved (== region.count() when src/dst cover region).
  Index total_elements() const;

  /// Number of distinct (src, dst) pairs that exchange a message.
  std::size_t message_count() const { return pieces_.size(); }

 private:
  Box region_;
  Index dst_row_offset_ = 0;
  Index dst_col_offset_ = 0;
  std::vector<TransferPiece> pieces_;
};

}  // namespace ccf::dist
