// Copy accounting for the redistribution data plane (docs/PERF.md).
//
// Counts, per executed schedule, how many payload bytes were delivered and
// how many extra copies producing them cost beyond the export-side
// snapshot memcpy (the one copy the paper's Eq. 1 models) and the
// importer's final unpack into its block. A full-box aliased send costs 0
// extra copies (the pooled snapshot frame is the payload); a partial piece
// costs exactly 1 (the strided pack into its wire frame).
#pragma once

#include <cstdint>

namespace ccf::dist {

struct TransferStats {
  std::uint64_t bytes_delivered = 0;    ///< payload element bytes shipped
  std::uint64_t bytes_pack_copied = 0;  ///< extra pack-copy bytes (partial pieces)
  std::uint64_t sends_aliased = 0;      ///< full-box sends aliasing the pooled frame
  std::uint64_t sends_packed = 0;       ///< partial pieces packed into a fresh frame

  /// Extra copies per delivered byte on the transfer path: 0 when every
  /// send aliased a pooled frame, 1 when every send was a packed partial
  /// piece, in between for a mix.
  double copies_per_delivered_byte() const {
    if (bytes_delivered == 0) return 0.0;
    return static_cast<double>(bytes_pack_copied) / static_cast<double>(bytes_delivered);
  }
};

}  // namespace ccf::dist
