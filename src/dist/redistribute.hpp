// Executes an MxN redistribution schedule over the transport.
//
// The exporter side sends each scheduled piece (packed row-major) to the
// destination process; the importer side receives and unpacks into its
// local block. Sends can source either a live DistArray2D or a packed
// snapshot buffer — the coupling framework transfers *buffered* exports,
// which are snapshots taken at export time, not live arrays.
//
// Per transfer instance the caller supplies a unique tag; block-to-block
// intersections are single rectangles, so (src, dst, tag) uniquely
// identifies every message of a transfer.
#pragma once

#include <vector>

#include "dist/dist_array.hpp"
#include "dist/schedule.hpp"
#include "runtime/process_context.hpp"
#include "transport/serialize.hpp"
#include "util/check.hpp"

namespace ccf::dist {

using runtime::ProcessContext;
using runtime::ProcId;
using runtime::Tag;

/// Extracts `piece` (global indices) from a packed row-major buffer whose
/// extent is `buf_box`. `piece` must lie inside `buf_box`.
template <typename T>
std::vector<T> pack_from_packed(const Box& buf_box, const std::vector<T>& buf, const Box& piece) {
  CCF_REQUIRE(buf_box.contains(piece), "piece " << piece << " escapes buffer box " << buf_box);
  CCF_REQUIRE(buf.size() == static_cast<std::size_t>(buf_box.count()),
              "buffer has " << buf.size() << " elements, box needs " << buf_box.count());
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(piece.count()));
  for (Index r = piece.row_begin; r < piece.row_end; ++r) {
    const auto base = static_cast<std::size_t>((r - buf_box.row_begin) * buf_box.cols() +
                                               (piece.col_begin - buf_box.col_begin));
    out.insert(out.end(), buf.begin() + static_cast<std::ptrdiff_t>(base),
               buf.begin() + static_cast<std::ptrdiff_t>(base + static_cast<std::size_t>(piece.cols())));
  }
  return out;
}

/// Sends this exporter rank's pieces from a packed snapshot.
/// `dst_procs[r]` is the global ProcId of importer rank r.
template <typename T>
void execute_sends_packed(ProcessContext& ctx, const RedistSchedule& sched, int my_src_rank,
                          const std::vector<ProcId>& dst_procs, Tag tag, const Box& snapshot_box,
                          const std::vector<T>& snapshot) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const auto& piece : sched.sends_of(my_src_rank)) {
    std::vector<T> payload = pack_from_packed(snapshot_box, snapshot, piece.box);
    transport::Writer w;
    w.put_vector(payload);
    ctx.send(dst_procs.at(static_cast<std::size_t>(piece.dst_rank)), tag, w.take());
  }
}

/// Sends this exporter rank's pieces directly from a live array.
template <typename T>
void execute_sends(ProcessContext& ctx, const RedistSchedule& sched, int my_src_rank,
                   const std::vector<ProcId>& dst_procs, Tag tag, const DistArray2D<T>& array) {
  execute_sends_packed(ctx, sched, my_src_rank, dst_procs, tag, array.local_box(),
                       array.pack(array.local_box()));
}

/// Receives this importer rank's pieces and unpacks them into `array`.
/// `src_procs[r]` is the global ProcId of exporter rank r. Piece boxes are
/// in source coordinates; the schedule's destination offset translates
/// them into the destination's index space (0 for same-domain transfers).
template <typename T>
void execute_recvs(ProcessContext& ctx, const RedistSchedule& sched, int my_dst_rank,
                   const std::vector<ProcId>& src_procs, Tag tag, DistArray2D<T>& array) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const auto& piece : sched.recvs_of(my_dst_rank)) {
    runtime::Message m = ctx.recv(runtime::MatchSpec{
        src_procs.at(static_cast<std::size_t>(piece.src_rank)), tag});
    transport::Reader r(m.payload);
    std::vector<T> payload = r.get_vector<T>();
    CCF_CHECK(payload.size() == static_cast<std::size_t>(piece.box.count()),
              "piece payload size mismatch for box " << piece.box);
    Box local = piece.box;
    local.row_begin -= sched.dst_row_offset();
    local.row_end -= sched.dst_row_offset();
    local.col_begin -= sched.dst_col_offset();
    local.col_end -= sched.dst_col_offset();
    array.unpack(local, payload);
  }
}

}  // namespace ccf::dist
