// Executes an MxN redistribution schedule over the transport.
//
// The exporter side sends each scheduled piece (packed row-major) to the
// destination process; the importer side receives and unpacks into its
// local block. Sends can source either a live DistArray2D or a packed
// snapshot buffer — the coupling framework transfers *buffered* exports,
// which are snapshots taken at export time, not live arrays.
//
// Data plane copy budget (docs/PERF.md): a partial piece is packed with
// one strided copy directly into an exact-size wire frame (no
// intermediate vector, no serializer growth); a piece covering the
// exporter's full snapshot box aliases the caller-provided snapshot frame
// as the payload — zero copies, and the same refcounted frame is shared
// across every destination rank (and, via BufferPool::wire_payload,
// across connections). The receive side unpacks straight from payload
// bytes into the destination block with one strided copy per row.
//
// Wire format of every data message: [u64 element count][row-major
// elements] — exactly Writer::put_vector framing, so aliased and packed
// sends are byte-identical on the wire and Reader::get_vector can always
// parse a data message.
//
// Per transfer instance the caller supplies a unique tag; block-to-block
// intersections are single rectangles, so (src, dst, tag) uniquely
// identifies every message of a transfer.
#pragma once

#include <vector>

#include "dist/dist_array.hpp"
#include "dist/schedule.hpp"
#include "dist/transfer_stats.hpp"
#include "runtime/process_context.hpp"
#include "transport/serialize.hpp"
#include "util/check.hpp"

namespace ccf::dist {

using runtime::Payload;
using runtime::ProcessContext;
using runtime::ProcId;
using runtime::Tag;

/// Extracts `piece` (global indices) from a packed row-major buffer whose
/// extent is `buf_box`. `piece` must lie inside `buf_box`.
template <typename T>
std::vector<T> pack_from_packed(const Box& buf_box, const std::vector<T>& buf, const Box& piece) {
  CCF_REQUIRE(buf_box.contains(piece), "piece " << piece << " escapes buffer box " << buf_box);
  CCF_REQUIRE(buf.size() == static_cast<std::size_t>(buf_box.count()),
              "buffer has " << buf.size() << " elements, box needs " << buf_box.count());
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(piece.count()));
  for (Index r = piece.row_begin; r < piece.row_end; ++r) {
    const auto base = static_cast<std::size_t>((r - buf_box.row_begin) * buf_box.cols() +
                                               (piece.col_begin - buf_box.col_begin));
    out.insert(out.end(), buf.begin() + static_cast<std::ptrdiff_t>(base),
               buf.begin() + static_cast<std::ptrdiff_t>(base + static_cast<std::size_t>(piece.cols())));
  }
  return out;
}

/// Builds the wire frame for `piece` in one pass: a single exact-size
/// allocation and one strided copy out of the packed snapshot `buf`
/// (extent `buf_box`). Byte-identical to Writer::put_vector over the
/// packed piece, without the intermediate element vector.
template <typename T>
Payload pack_wire_payload(const Box& buf_box, const T* buf, const Box& piece) {
  static_assert(std::is_trivially_copyable_v<T>);
  CCF_REQUIRE(buf_box.contains(piece), "piece " << piece << " escapes buffer box " << buf_box);
  const auto count = static_cast<std::uint64_t>(piece.count());
  const std::size_t row_bytes = static_cast<std::size_t>(piece.cols()) * sizeof(T);
  transport::Writer w(transport::kLengthPrefixBytes + static_cast<std::size_t>(count) * sizeof(T));
  w.put<std::uint64_t>(count);
  for (Index r = piece.row_begin; r < piece.row_end; ++r) {
    const auto base = static_cast<std::size_t>((r - buf_box.row_begin) * buf_box.cols() +
                                               (piece.col_begin - buf_box.col_begin));
    w.put_raw(buf + base, row_bytes);
  }
  return w.take();
}

/// Sends this exporter rank's pieces from a packed snapshot.
/// `dst_procs[r]` is the global ProcId of importer rank r.
///
/// When `snapshot_frame` is a valid payload holding the snapshot's wire
/// frame ([u64 count][snapshot bytes], e.g. BufferPool::wire_payload), a
/// piece covering the full `snapshot_box` is sent by aliasing that frame —
/// zero copies, one refcounted buffer shared across all destinations.
/// `stats`, if non-null, accrues the copy accounting.
template <typename T>
void execute_sends_packed(ProcessContext& ctx, const RedistSchedule& sched, int my_src_rank,
                          const std::vector<ProcId>& dst_procs, Tag tag, const Box& snapshot_box,
                          const T* snapshot, TransferStats* stats = nullptr,
                          Payload snapshot_frame = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (snapshot_frame) {
    CCF_REQUIRE(snapshot_frame.size() ==
                    transport::kLengthPrefixBytes +
                        static_cast<std::size_t>(snapshot_box.count()) * sizeof(T),
                "snapshot frame has " << snapshot_frame.size() << " bytes, box "
                                      << snapshot_box << " needs "
                                      << snapshot_box.count() * sizeof(T) << " + prefix");
  }
  for (const auto& piece : sched.sends_of(my_src_rank)) {
    const auto piece_bytes = static_cast<std::uint64_t>(piece.box.count()) * sizeof(T);
    Payload payload;
    if (snapshot_frame && piece.box == snapshot_box) {
      payload = snapshot_frame;
      if (stats != nullptr) ++stats->sends_aliased;
    } else {
      payload = pack_wire_payload(snapshot_box, snapshot, piece.box);
      if (stats != nullptr) {
        ++stats->sends_packed;
        stats->bytes_pack_copied += piece_bytes;
      }
    }
    if (stats != nullptr) stats->bytes_delivered += piece_bytes;
    ctx.send(dst_procs.at(static_cast<std::size_t>(piece.dst_rank)), tag, std::move(payload));
  }
}

/// Vector-snapshot convenience overload (no aliasable frame).
template <typename T>
void execute_sends_packed(ProcessContext& ctx, const RedistSchedule& sched, int my_src_rank,
                          const std::vector<ProcId>& dst_procs, Tag tag, const Box& snapshot_box,
                          const std::vector<T>& snapshot, TransferStats* stats = nullptr) {
  CCF_REQUIRE(snapshot.size() == static_cast<std::size_t>(snapshot_box.count()),
              "snapshot has " << snapshot.size() << " elements, box needs "
                              << snapshot_box.count());
  execute_sends_packed(ctx, sched, my_src_rank, dst_procs, tag, snapshot_box, snapshot.data(),
                       stats);
}

/// Sends this exporter rank's pieces directly from a live array.
template <typename T>
void execute_sends(ProcessContext& ctx, const RedistSchedule& sched, int my_src_rank,
                   const std::vector<ProcId>& dst_procs, Tag tag, const DistArray2D<T>& array) {
  execute_sends_packed(ctx, sched, my_src_rank, dst_procs, tag, array.local_box(), array.data());
}

/// Receives this importer rank's pieces and unpacks them into `array`.
/// `src_procs[r]` is the global ProcId of exporter rank r. Piece boxes are
/// in source coordinates; the schedule's destination offset translates
/// them into the destination's index space (0 for same-domain transfers).
/// Elements are copied straight from payload bytes into the local block —
/// one strided memcpy per row, no intermediate vector.
template <typename T>
void execute_recvs(ProcessContext& ctx, const RedistSchedule& sched, int my_dst_rank,
                   const std::vector<ProcId>& src_procs, Tag tag, DistArray2D<T>& array) {
  static_assert(std::is_trivially_copyable_v<T>);
  for (const auto& piece : sched.recvs_of(my_dst_rank)) {
    runtime::Message m = ctx.recv(runtime::MatchSpec{
        src_procs.at(static_cast<std::size_t>(piece.src_rank)), tag});
    transport::Reader r(m.payload);
    const auto n = r.get<std::uint64_t>();
    CCF_CHECK(n == static_cast<std::uint64_t>(piece.box.count()),
              "piece payload has " << n << " elements, box " << piece.box << " needs "
                                   << piece.box.count());
    const Payload body = r.view(static_cast<std::size_t>(n) * sizeof(T));
    Box local = piece.box;
    local.row_begin -= sched.dst_row_offset();
    local.row_end -= sched.dst_row_offset();
    local.col_begin -= sched.dst_col_offset();
    local.col_end -= sched.dst_col_offset();
    array.unpack_bytes(local, body.data());
  }
}

}  // namespace ccf::dist
