#include "dist/schedule.hpp"

#include "util/check.hpp"

namespace ccf::dist {

RedistSchedule::RedistSchedule(const BlockDecomposition& src, const BlockDecomposition& dst,
                               const Box& region)
    : RedistSchedule(src, dst, region, 0, 0) {}

RedistSchedule::RedistSchedule(const BlockDecomposition& src, const BlockDecomposition& dst,
                               const Box& region, Index dst_row_offset, Index dst_col_offset)
    : region_(region), dst_row_offset_(dst_row_offset), dst_col_offset_(dst_col_offset) {
  CCF_REQUIRE(!region.empty(), "redistribution region is empty");
  CCF_REQUIRE((Box{0, src.rows(), 0, src.cols()}.contains(region)),
              "region " << region << " escapes exporter domain");
  const Box dst_domain_in_src{dst_row_offset, dst_row_offset + dst.rows(), dst_col_offset,
                              dst_col_offset + dst.cols()};
  CCF_REQUIRE(dst_domain_in_src.contains(region),
              "region " << region << " escapes importer domain " << dst_domain_in_src);

  // Pairwise intersection of source blocks and (translated) destination
  // blocks, clipped to the transfer region. Iteration order (src-major,
  // then dst) fixes the deterministic send/recv orders both sides rely on.
  for (int s = 0; s < src.nprocs(); ++s) {
    const Box src_part = intersect(src.box_of(s), region);
    if (src_part.empty()) continue;
    for (int d = 0; d < dst.nprocs(); ++d) {
      Box dst_box = dst.box_of(d);
      dst_box.row_begin += dst_row_offset;
      dst_box.row_end += dst_row_offset;
      dst_box.col_begin += dst_col_offset;
      dst_box.col_end += dst_col_offset;
      const Box piece = intersect(src_part, dst_box);
      if (piece.empty()) continue;
      pieces_.push_back(TransferPiece{s, d, piece});
    }
  }
  CCF_CHECK(total_elements() == region.count(),
            "schedule covers " << total_elements() << " elements, region has " << region.count());
}

std::vector<TransferPiece> RedistSchedule::sends_of(int src_rank) const {
  std::vector<TransferPiece> out;
  for (const auto& p : pieces_) {
    if (p.src_rank == src_rank) out.push_back(p);
  }
  return out;
}

std::vector<TransferPiece> RedistSchedule::recvs_of(int dst_rank) const {
  std::vector<TransferPiece> out;
  for (const auto& p : pieces_) {
    if (p.dst_rank == dst_rank) out.push_back(p);
  }
  return out;
}

Index RedistSchedule::total_elements() const {
  Index total = 0;
  for (const auto& p : pieces_) total += p.box.count();
  return total;
}

}  // namespace ccf::dist
