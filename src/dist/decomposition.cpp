#include "dist/decomposition.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ccf::dist {

BlockDecomposition::BlockDecomposition(Index rows, Index cols, int pr, int pc)
    : rows_(rows), cols_(cols), pr_(pr), pc_(pc) {
  CCF_REQUIRE(rows > 0 && cols > 0, "domain " << rows << "x" << cols << " is empty");
  CCF_REQUIRE(pr > 0 && pc > 0, "process grid " << pr << "x" << pc << " is empty");
  CCF_REQUIRE(pr <= rows, "more process rows (" << pr << ") than domain rows (" << rows << ")");
  CCF_REQUIRE(pc <= cols, "more process cols (" << pc << ") than domain cols (" << cols << ")");
}

BlockDecomposition BlockDecomposition::make_grid(Index rows, Index cols, int nprocs) {
  CCF_REQUIRE(nprocs > 0, "need at least one process");
  // Choose the factorization pr*pc == nprocs with pr closest to sqrt and
  // blocks as square as the domain aspect allows.
  int best_pr = 1;
  double best_score = -1.0;
  for (int pr = 1; pr <= nprocs; ++pr) {
    if (nprocs % pr != 0) continue;
    const int pc = nprocs / pr;
    if (pr > rows || pc > cols) continue;
    const double block_r = static_cast<double>(rows) / pr;
    const double block_c = static_cast<double>(cols) / pc;
    // Score favors square-ish blocks (minimizes redistribution perimeter).
    const double score = -std::abs(std::log(block_r / block_c));
    if (score > best_score) {
      best_score = score;
      best_pr = pr;
    }
  }
  CCF_REQUIRE(best_score > -1e300, "cannot fit " << nprocs << " processes on " << rows << "x" << cols);
  return BlockDecomposition(rows, cols, best_pr, nprocs / best_pr);
}

BlockDecomposition BlockDecomposition::make_row_blocks(Index rows, Index cols, int nprocs) {
  return BlockDecomposition(rows, cols, nprocs, 1);
}

std::pair<Index, Index> BlockDecomposition::block_range(Index total, int n, int i) {
  // First (total % n) blocks get one extra element.
  const Index base = total / n;
  const Index extra = total % n;
  const Index begin = static_cast<Index>(i) * base + std::min<Index>(i, extra);
  const Index len = base + (i < extra ? 1 : 0);
  return {begin, begin + len};
}

int BlockDecomposition::block_index(Index total, int n, Index x) {
  const Index base = total / n;
  const Index extra = total % n;
  const Index fat_end = (base + 1) * extra;  // end of the fat blocks
  if (x < fat_end) return static_cast<int>(x / (base + 1));
  return static_cast<int>(extra + (x - fat_end) / base);
}

Box BlockDecomposition::box_of(int rank) const {
  CCF_REQUIRE(rank >= 0 && rank < nprocs(), "rank " << rank << " outside [0," << nprocs() << ")");
  const int gr = rank / pc_;
  const int gc = rank % pc_;
  const auto [rb, re] = block_range(rows_, pr_, gr);
  const auto [cb, ce] = block_range(cols_, pc_, gc);
  return Box{rb, re, cb, ce};
}

int BlockDecomposition::owner_of(Index r, Index c) const {
  CCF_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_,
              "(" << r << "," << c << ") outside " << rows_ << "x" << cols_);
  const int gr = block_index(rows_, pr_, r);
  const int gc = block_index(cols_, pc_, c);
  return gr * pc_ + gc;
}

std::vector<int> BlockDecomposition::ranks_overlapping(const Box& region) const {
  std::vector<int> out;
  for (int rank = 0; rank < nprocs(); ++rank) {
    if (overlaps(box_of(rank), region)) out.push_back(rank);
  }
  return out;
}

}  // namespace ccf::dist
