#include "modelcheck/scale.hpp"

#include <map>
#include <optional>
#include <sstream>

#include "core/export_state.hpp"
#include "core/options.hpp"
#include "core/protocol.hpp"
#include "dist/decomposition.hpp"
#include "modelcheck/oracle.hpp"
#include "runtime/scripted_context.hpp"
#include "util/rng.hpp"

namespace ccf::modelcheck {

namespace {

using core::ExportConnConfig;
using core::ExportRegionState;
using core::MatchResult;
using core::RequestMsg;
using core::ResponseMsg;

constexpr runtime::ProcId kRep = 999;
constexpr runtime::ProcId kImporter = 42;

struct RegionStreams {
  MatchPolicy policy = MatchPolicy::REGL;
  double tolerance = 0;
  std::vector<Timestamp> exports;
  std::vector<Timestamp> requests;
  std::vector<double> leads;  ///< request i is issued at virtual time x_i - lead_i
};

RegionStreams generate_streams(util::Xoshiro256& rng, const ScaleConfig& config) {
  RegionStreams s;
  s.policy = static_cast<MatchPolicy>(rng.below(3));
  s.tolerance = rng.uniform(0.5, 4.0);
  Timestamp t = 0;
  for (int i = 0; i < config.exports_per_region; ++i) {
    t += rng.uniform(0.5, 1.5);
    s.exports.push_back(t);
  }
  // Requests span the same virtual-time range as the exports so most
  // resolve mid-stream (the stragglers are decided by finalize).
  const double span = t + 4.0;
  const double mean_step = span / static_cast<double>(config.requests_per_region);
  Timestamp x = 0;
  for (int i = 0; i < config.requests_per_region; ++i) {
    x += rng.uniform(0.2 * mean_step, 1.8 * mean_step);
    s.requests.push_back(x);
    s.leads.push_back(rng.uniform(0.0, 2.0 * config.mean_lead));
  }
  return s;
}

void check_region(int region, const RegionStreams& s,
                  const std::map<std::uint32_t, ResponseMsg>& decisive, std::uint64_t answered,
                  ScaleReport& report) {
  const OracleResult oracle = run_oracle(s.exports, s.requests, s.policy, s.tolerance);
  if (answered != s.requests.size()) {
    std::ostringstream os;
    os << "region " << region << ": " << answered << " decisive answers for "
       << s.requests.size() << " requests";
    report.violations.push_back(os.str());
  }
  for (std::size_t i = 0; i < s.requests.size(); ++i) {
    const auto it = decisive.find(static_cast<std::uint32_t>(i));
    if (it == decisive.end()) continue;
    const OracleAnswer& want = oracle.answers[i];
    const ResponseMsg& got = it->second;
    if (got.result != want.result ||
        (want.result == MatchResult::Match && got.matched != want.matched)) {
      std::ostringstream os;
      os << "region " << region << " request " << i << " (x=" << s.requests[i] << "): got "
         << core::to_string(got.result) << "@" << got.matched << ", oracle says "
         << core::to_string(want.result) << "@" << want.matched;
      report.violations.push_back(os.str());
      if (report.violations.size() > 32) return;  // enough to diagnose
    }
  }
}

}  // namespace

ScaleReport run_scale(const ScaleConfig& config) {
  ScaleReport report;
  util::Xoshiro256 rng(config.seed);

  // Tiny block: the scale axis is protocol state (history depth, pending
  // queue length), not payload bandwidth.
  dist::BlockDecomposition one(2, 2, 1, 1);
  core::FrameworkOptions options;

  for (int r = 0; r < config.regions; ++r) {
    const RegionStreams s = generate_streams(rng, config);
    runtime::ScriptedContext ctx(0);

    std::vector<ExportConnConfig> conns;
    conns.push_back(ExportConnConfig{0, s.policy, s.tolerance,
                                     dist::RedistSchedule(one, one, one.domain()),
                                     {kImporter}});
    ExportRegionState state("scale" + std::to_string(r), one.domain(), 0, std::move(conns),
                            options, kRep);

    // Merge the two streams: request i fires once the export stream has
    // reached x_i - lead_i, so requests outrun the exports and pile up
    // pending until later exports (or finalize) resolve them in batches.
    // A protocol invariant tripping mid-run (e.g. under a mutated
    // matcher) is a caught violation, same as an oracle mismatch.
    try {
      std::vector<double> block(4, 0.0);
      std::size_t e = 0, q = 0;
      Timestamp exported = core::kNeverExported;
      while (e < s.exports.size() || q < s.requests.size()) {
        const bool fire_request =
            q < s.requests.size() &&
            (e >= s.exports.size() || s.requests[q] - s.leads[q] <= exported);
        if (fire_request) {
          state.on_forwarded_request(
              RequestMsg{0, static_cast<std::uint32_t>(q), s.requests[q]}, ctx);
          ++q;
        } else {
          exported = s.exports[e];
          block.assign(4, exported);
          state.on_export(exported, block.data(), ctx);
          ++e;
        }
      }
      state.finalize(ctx);
    } catch (const std::exception& ex) {
      report.violations.push_back("region " + std::to_string(r) + ": run aborted: " +
                                  ex.what());
      continue;
    }

    // Collect the decisive answer of every request; a request whose first
    // response was PENDING was resolved later by an export sweep (or
    // finalize) — the batch-resolution path under test.
    std::map<std::uint32_t, ResponseMsg> decisive;
    std::map<std::uint32_t, std::uint64_t> responses_per_seq;
    std::uint64_t answered = 0;
    for (const auto& m : ctx.sent_with_tag(core::kTagProcResponse)) {
      const ResponseMsg resp = ResponseMsg::decode(m.payload);
      ++responses_per_seq[resp.seq];
      if (resp.result == MatchResult::Pending) continue;
      ++answered;
      decisive.emplace(resp.seq, resp);
    }
    for (const auto& [seq, n] : responses_per_seq) {
      if (n > 1) ++report.batch_resolutions;
    }

    check_region(r, s, decisive, answered, report);

    const auto stats = state.stats_snapshot();
    report.exports += stats.exports;
    report.requests += s.requests.size();
    report.evaluations += stats.matcher_evaluations;
    report.pending_evals += stats.matcher_pending;
    if (report.violations.size() > 32) break;
  }
  return report;
}

}  // namespace ccf::modelcheck
