#include "modelcheck/harness.hpp"

#include <sstream>

namespace ccf::modelcheck {

CheckedRun replay_seed(std::uint64_t seed) { return check_scenario(generate_scenario(seed)); }

std::string failure_message(std::uint64_t seed, const Scenario& shrunk, const CheckedRun& run,
                            int shrink_attempts) {
  std::ostringstream os;
  os << "modelcheck: seed " << seed << " does not conform (" << run.violations.size()
     << " violation" << (run.violations.size() == 1 ? "" : "s");
  if (shrink_attempts > 0) os << " after shrinking, " << shrink_attempts << " attempts";
  os << ")\n";
  for (const std::string& v : run.violations) os << "  violation: " << v << "\n";
  os << "  scenario:  " << describe(shrunk) << "\n";
  os << "  replay:    modelcheck_explore --replay=" << seed << "\n";
  os << "  replay:    CCF_MC_REPLAY=" << seed << " ctest -R modelcheck_conformance\n";
  return os.str();
}

ExploreResult explore(const ExploreOptions& options) {
  ExploreResult result;
  for (int i = 0; i < options.runs; ++i) {
    const std::uint64_t seed = options.seed0 + static_cast<std::uint64_t>(i);
    const Scenario scenario = generate_scenario(seed);
    CheckedRun run = check_scenario(scenario);
    ++result.runs;
    if (run.ok()) continue;

    result.ok = false;
    result.failing_seed = seed;
    int attempts = 0;
    Scenario reported = scenario;
    if (options.shrink_failures) {
      ShrinkResult s = shrink(scenario, run, options.max_shrink_attempts);
      reported = s.scenario;
      run = s.run;
      attempts = s.attempts;
    }
    result.failure_message = failure_message(seed, reported, run, attempts);
    return result;
  }
  return result;
}

}  // namespace ccf::modelcheck
