// modelcheck_explore: command-line front end for the model-checking
// harness.
//
//   modelcheck_explore --runs=500 --seed0=1     explore a seed block
//   modelcheck_explore --replay=123456          re-run one failing seed
//   modelcheck_explore --replay=123 --verbose   ... and dump the scenario
//
// Exit status 0 iff every executed scenario conforms, so the tool drops
// straight into CI or a bisection script.
#include <cstdio>
#include <cstdlib>

#include "modelcheck/harness.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace ccf::modelcheck;
  if (std::getenv("CCF_MC_DEBUG")) ccf::util::Log::set_level(ccf::util::LogLevel::Trace);

  ccf::util::CliParser cli("modelcheck_explore",
                           "Random coupling scenarios cross-checked against the sequential "
                           "protocol oracle; failures shrink to a minimal replayable seed.");
  cli.add_option("runs", "500", "number of seeds to explore");
  cli.add_option("seed0", "1", "first seed of the block");
  cli.add_option("replay", "", "re-check exactly this seed and exit");
  cli.add_option("shrink-attempts", "250", "max candidate runs while shrinking (0 disables)");
  cli.add_flag("verbose", "print each scenario before running it");
  if (!cli.parse(argc, argv)) return 0;

  if (!cli.get("replay").empty()) {
    const auto seed = static_cast<std::uint64_t>(cli.get_int("replay"));
    const Scenario scenario = generate_scenario(seed);
    if (cli.get_bool("verbose")) std::printf("%s\n", describe(scenario).c_str());
    const CheckedRun run = check_scenario(scenario);
    if (run.ok()) {
      std::printf("seed %llu conforms\n", static_cast<unsigned long long>(seed));
      return 0;
    }
    std::printf("%s", failure_message(seed, scenario, run, 0).c_str());
    return 1;
  }

  ExploreOptions options;
  options.runs = static_cast<int>(cli.get_int("runs"));
  options.seed0 = static_cast<std::uint64_t>(cli.get_int("seed0"));
  options.max_shrink_attempts = static_cast<int>(cli.get_int("shrink-attempts"));
  options.shrink_failures = options.max_shrink_attempts > 0;

  if (cli.get_bool("verbose")) {
    for (int i = 0; i < options.runs; ++i) {
      const std::uint64_t seed = options.seed0 + static_cast<std::uint64_t>(i);
      std::printf("%s\n", describe(generate_scenario(seed)).c_str());
    }
  }

  const ExploreResult result = explore(options);
  if (!result.ok) {
    std::printf("%s", result.failure_message.c_str());
    return 1;
  }
  std::printf("explored %d scenarios (seeds %llu..%llu): all conform\n", result.runs,
              static_cast<unsigned long long>(options.seed0),
              static_cast<unsigned long long>(options.seed0 + static_cast<std::uint64_t>(result.runs) - 1));
  return 0;
}
