// Conformance checking: every observable of a real run against the
// sequential oracle.
//
// Checks (labels appear verbatim in violation messages):
//   answers      every importer rank produced exactly the oracle's answer
//                sequence, and each matched payload is the matched version
//                (the shipped snapshot is the right one);
//   rep-log      the exporter rep's determined answers, ordered by request
//                sequence number, equal the oracle's (Property 1: exactly
//                one collective answer per request);
//   monotone     matched timestamps increase strictly across requests;
//   skip-sound   no exporter rank ever skipped the buffering memcpy for a
//                timestamp in the oracle's minimal copy set (a skipped
//                version can never be shipped, so skipping a match would
//                wedge or corrupt the transfer);
//   copy-min     every oracle match was copied (and shipped exactly once)
//                by every contributing exporter rank — the minimal
//                buffering set is a lower bound no schedule can beat;
//   buffer-life  fault-free runs end with zero live snapshots: every
//                store was eventually freed (buffered-object lifetimes
//                are finite). Skipped under faults, where a dropped
//                final ConnClosed legitimately strands snapshots until
//                process shutdown;
//   buddy-help   with buddy-help off, no help is ever sent or received;
//                on a lossless fabric, helps received equal helps sent;
//                under faults, received <= sent (drops lose hints, never
//                semantics).
//
// An empty return means the run conforms.
#pragma once

#include <string>
#include <vector>

#include "modelcheck/explorer.hpp"
#include "modelcheck/oracle.hpp"
#include "modelcheck/scenario.hpp"

namespace ccf::modelcheck {

std::vector<std::string> check_conformance(const Scenario& s, const Observation& obs);

/// Convenience: run + check. A run that threw contributes its exception
/// text as the single violation.
struct CheckedRun {
  Observation obs;
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};
CheckedRun check_scenario(const Scenario& s);

}  // namespace ccf::modelcheck
