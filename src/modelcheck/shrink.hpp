// Greedy input shrinking (delta debugging over Scenario structure).
//
// Given a failing scenario, shrink() searches for a smaller scenario that
// still fails conformance, so the failure message the harness prints is a
// minimal human-readable reproduction rather than a 25-export fault soup.
//
// The search is deterministic and purely reductive:
//   1. structural passes — disable faults, collapse to one exporter /
//      one importer rank, flatten per-rank compute steps to a uniform
//      value, toggle buddy-help off; each kept only if the scenario still
//      fails;
//   2. list minimization — chunked ddmin over the export and request
//      sequences (drop halves, then quarters, ... then single elements),
//      keeping every removal that preserves the failure.
//
// Every candidate costs one full virtual-time run, so attempts are capped;
// the best scenario found so far is returned when the budget runs out.
#pragma once

#include <cstdint>

#include "modelcheck/conformance.hpp"
#include "modelcheck/scenario.hpp"

namespace ccf::modelcheck {

struct ShrinkResult {
  Scenario scenario;   ///< smallest failing scenario found
  CheckedRun run;      ///< its (failing) checked run
  int attempts = 0;    ///< candidate runs spent
};

/// Shrinks a failing scenario. `original` must fail check_scenario (the
/// caller has already paid for that run and passes it in as `first`).
ShrinkResult shrink(const Scenario& original, const CheckedRun& first,
                    int max_attempts = 250);

}  // namespace ccf::modelcheck
