// Schedule explorer: drives the real coupled system through a Scenario
// under the deterministic virtual-time executor and collects every
// observable the conformance checker needs.
//
// One run builds a two-program system (exporter "E", importer "I", one
// connection "r"), installs SPMD bodies whose per-rank compute times come
// from the Scenario, optionally wires a seeded FaultInjector into the
// fabric, runs to completion, and returns per-rank answers (with the
// shipped payload version), per-rank stats, structured exporter trace
// events, and both rep results. Exceptions (protocol violations,
// deadlocks, timeouts) are captured into the Observation rather than
// thrown: a crash is a conformance failure like any other, and must
// shrink and replay the same way.
#pragma once

#include <string>
#include <vector>

#include "core/rep.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"
#include "modelcheck/scenario.hpp"

namespace ccf::modelcheck {

/// One importer rank's outcome for one request.
struct RankAnswer {
  bool matched = false;
  Timestamp version = 0;  ///< matched timestamp (valid when matched)
  double payload = 0;     ///< first element of the received block (valid when matched)
};

struct Observation {
  bool completed = false;  ///< run() returned without throwing
  std::string error;       ///< exception text when !completed

  std::vector<std::vector<RankAnswer>> importer_answers;  ///< [rank][request]
  std::vector<core::ProcStats> exporter_stats;            ///< [rank]
  std::vector<core::ProcStats> importer_stats;            ///< [rank]
  std::vector<std::vector<core::TraceEvent>> exporter_events;  ///< [rank], region "r"
  core::RepResult exporter_rep;
  core::RepResult importer_rep;
  std::uint64_t faults_injected = 0;
};

/// Runs the Scenario once. Deterministic: identical scenarios produce
/// identical observations (virtual time + seeded faults).
Observation run_scenario(const Scenario& s);

}  // namespace ccf::modelcheck
