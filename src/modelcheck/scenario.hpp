// Randomized coupling scenarios for the model-checking harness.
//
// A Scenario is a complete, self-contained description of one coupled
// run: match policy and tolerance, rank counts on both sides, the
// collective export and request timestamp sequences, per-rank compute
// speeds (the knob that produces fast/slow rank mixtures and therefore
// PENDING+MATCH aggregates and buddy-help traffic), buddy-help on/off,
// and an optional control-plane fault schedule (PR 1's FaultInjector).
//
// generate_scenario(seed) is a pure function: the same seed always yields
// the same Scenario, and virtual-time execution makes the run of a
// Scenario deterministic — so a failing seed printed by the harness
// replays byte-for-byte (--replay=<seed> on the modelcheck_explore tool,
// or CCF_MC_REPLAY=<seed> on the conformance test).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/match_policy.hpp"
#include "core/timestamp.hpp"

namespace ccf::modelcheck {

using core::MatchPolicy;
using core::Timestamp;

struct FaultSpec {
  bool enabled = false;
  std::uint64_t seed = 0;
  double drop_prob = 0;
  double duplicate_prob = 0;
  double delay_prob = 0;
  double delay_min_seconds = 0;
  double delay_max_seconds = 0;
};

struct Scenario {
  std::uint64_t seed = 0;  ///< generator seed (0 for hand-built scenarios)
  MatchPolicy policy = core::MatchPolicy::REGL;
  double tolerance = 0;
  int exporter_procs = 1;
  int importer_procs = 1;
  std::vector<Timestamp> exports;   ///< strictly increasing
  std::vector<Timestamp> requests;  ///< strictly increasing
  /// Per-rank seconds of compute before each export/import call; the
  /// spread across ranks drives the interleaving.
  std::vector<double> exporter_step_seconds;
  std::vector<double> importer_step_seconds;
  bool buddy_help = true;
  FaultSpec faults;
  /// Problem geometry (kept small: the harness checks protocol semantics,
  /// not bandwidth).
  long rows = 6;
  long cols = 6;
  double latency_seconds = 1e-3;
  /// Buffer governance (src/mem): when > 0, every exporter process runs
  /// with a memory budget of this many snapshots of its largest block and
  /// a spill store, exercising eviction/restore under the conformance
  /// oracle — governance must never change a collective answer.
  int budget_snapshots = 0;
  /// Hierarchical-representative topology (docs/PROTOCOL.md) applied to
  /// both programs. 0/1 is the flat pre-tree layout; fan-in >= 2 routes
  /// all control traffic through batching sub-reps, and shards > 1 splits
  /// connection ownership across sibling rep shards — neither may change
  /// any collective answer.
  int rep_fanin = 0;
  int rep_shards = 1;
};

/// Deterministically derives a Scenario from a seed: mixed policies,
/// 1–4 ranks per side, 0–24 exports, 0–8 requests, tolerances from exact
/// (0) to region-overlapping, ~50% of scenarios with a seeded
/// control-plane fault schedule, ~20% with buddy-help disabled.
Scenario generate_scenario(std::uint64_t seed);

/// One-line human-readable form, printed in failure messages so a shrunk
/// scenario can be read (and re-typed as a hand-built regression test).
std::string describe(const Scenario& s);

}  // namespace ccf::modelcheck
