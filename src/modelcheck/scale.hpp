// Many-region / deep-history scale scenarios for the matching engine.
//
// The randomized explorer (scenario.hpp) keeps scenarios tiny — a handful
// of exports and requests — so its 500-seed gate finishes in seconds. That
// never pushes the interval-indexed matcher into the regime it exists
// for: many regions, thousands of exports each, and bursts of outstanding
// requests resolved in batches. ScaleScenario fills that gap: a seeded
// generator drives one ExportRegionState per region (single exporter
// rank, tiny blocks — this stresses protocol state, not bandwidth)
// through a ScriptedContext, with request streams deliberately running
// *ahead* of the export stream so pending queues build up and each export
// resolves several requests in one sweep. Every decisive response is then
// compared against the sequential oracle (oracle.hpp), which remains the
// naive reference implementation.
//
// The report also carries the structural proof of sublinearity: with
// batch resolution every request costs exactly one evaluation on arrival
// and one when it resolves, so total evaluations must stay <= 2 x
// requests regardless of history depth — the scale test pins that bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/match_policy.hpp"
#include "core/timestamp.hpp"

namespace ccf::modelcheck {

struct ScaleConfig {
  std::uint64_t seed = 1;
  int regions = 64;             ///< independent exported regions
  int exports_per_region = 1000;
  int requests_per_region = 120;
  /// Mean virtual-time lead of a request over the export stream; larger
  /// leads mean deeper pending queues and bigger batch resolutions.
  double mean_lead = 6.0;
};

struct ScaleReport {
  std::uint64_t exports = 0;
  std::uint64_t requests = 0;
  std::uint64_t evaluations = 0;      ///< matcher evaluate() calls, all regions
  std::uint64_t pending_evals = 0;    ///< evaluations that answered PENDING
  std::uint64_t batch_resolutions = 0;  ///< requests resolved by export sweeps
  std::vector<std::string> violations;  ///< empty iff every answer matched the oracle

  bool ok() const { return violations.empty(); }
};

/// Runs one scale scenario; deterministic in the seed.
ScaleReport run_scale(const ScaleConfig& config);

}  // namespace ccf::modelcheck
