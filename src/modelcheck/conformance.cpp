#include "modelcheck/conformance.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace ccf::modelcheck {

namespace {

using core::MatchResult;
using core::TraceEvent;
using core::TraceKind;

std::string fmt_answer(bool matched, Timestamp version) {
  std::ostringstream os;
  if (matched) os << "MATCH@" << version;
  else os << "NO_MATCH";
  return os.str();
}

void check_answers(const Scenario& s, const Observation& obs, const OracleResult& oracle,
                   std::vector<std::string>& out) {
  for (std::size_t rank = 0; rank < obs.importer_answers.size(); ++rank) {
    const auto& answers = obs.importer_answers[rank];
    if (answers.size() != s.requests.size()) {
      std::ostringstream os;
      os << "answers: importer rank " << rank << " produced " << answers.size()
         << " answers for " << s.requests.size() << " requests";
      out.push_back(os.str());
      continue;
    }
    for (std::size_t i = 0; i < answers.size(); ++i) {
      const OracleAnswer& want = oracle.answers[i];
      const RankAnswer& got = answers[i];
      const bool want_match = want.result == MatchResult::Match;
      if (got.matched != want_match || (want_match && got.version != want.matched)) {
        std::ostringstream os;
        os << "answers: rank " << rank << " request " << i << " (x=" << s.requests[i]
           << "): got " << fmt_answer(got.matched, got.version) << ", oracle says "
           << fmt_answer(want_match, want.matched);
        out.push_back(os.str());
      } else if (got.matched && got.payload != want.matched) {
        std::ostringstream os;
        os << "answers: rank " << rank << " request " << i << " matched " << got.version
           << " but received payload of version " << got.payload;
        out.push_back(os.str());
      }
    }
  }
}

void check_rep_log(const Scenario& s, const Observation& obs, const OracleResult& oracle,
                   std::vector<std::string>& out) {
  std::vector<core::AnswerMsg> log = obs.exporter_rep.answers;
  std::sort(log.begin(), log.end(),
            [](const core::AnswerMsg& a, const core::AnswerMsg& b) { return a.seq < b.seq; });
  if (log.size() != s.requests.size()) {
    std::ostringstream os;
    os << "rep-log: exporter rep determined " << log.size() << " answers for "
       << s.requests.size() << " requests";
    out.push_back(os.str());
    return;
  }
  for (std::size_t i = 0; i < log.size(); ++i) {
    const OracleAnswer& want = oracle.answers[i];
    const core::AnswerMsg& got = log[i];
    const bool want_match = want.result == MatchResult::Match;
    if (got.seq != i || got.requested != s.requests[i] || got.result != want.result ||
        (want_match && got.matched != want.matched)) {
      std::ostringstream os;
      os << "rep-log: seq " << got.seq << " answered {x=" << got.requested << ", "
         << core::to_string(got.result) << "@" << got.matched << "}, oracle for request " << i
         << " (x=" << s.requests[i] << ") says " << fmt_answer(want_match, want.matched);
      out.push_back(os.str());
    }
  }
}

void check_monotone(const Observation& obs, std::vector<std::string>& out) {
  for (std::size_t rank = 0; rank < obs.importer_answers.size(); ++rank) {
    Timestamp last = core::kNeverExported;
    for (std::size_t i = 0; i < obs.importer_answers[rank].size(); ++i) {
      const RankAnswer& a = obs.importer_answers[rank][i];
      if (!a.matched) continue;
      if (a.version <= last) {
        std::ostringstream os;
        os << "monotone: rank " << rank << " request " << i << " matched " << a.version
           << " after earlier match " << last;
        out.push_back(os.str());
      }
      last = a.version;
    }
  }
}

void check_exporter_events(const Scenario& s, const Observation& obs,
                           const OracleResult& oracle, std::vector<std::string>& out) {
  for (std::size_t rank = 0; rank < obs.exporter_events.size(); ++rank) {
    std::set<Timestamp> copied, skipped, shipped;
    for (const TraceEvent& e : obs.exporter_events[rank]) {
      if (e.kind == TraceKind::ExportCopy) copied.insert(e.a);
      else if (e.kind == TraceKind::ExportSkip) skipped.insert(e.a);
      else if (e.kind == TraceKind::SendData) shipped.insert(e.a);
    }
    for (Timestamp t : skipped) {
      if (oracle.is_match(t)) {
        std::ostringstream os;
        os << "skip-sound: exporter rank " << rank << " skipped the memcpy for " << t
           << ", which the oracle says is a match";
        out.push_back(os.str());
      }
    }
    for (Timestamp t : oracle.minimal_copies) {
      if (!copied.count(t)) {
        std::ostringstream os;
        os << "copy-min: exporter rank " << rank << " never copied match " << t;
        out.push_back(os.str());
      }
      if (!shipped.count(t)) {
        std::ostringstream os;
        os << "copy-min: exporter rank " << rank << " never shipped match " << t;
        out.push_back(os.str());
      }
    }
    for (Timestamp t : shipped) {
      if (!oracle.is_match(t)) {
        std::ostringstream os;
        os << "copy-min: exporter rank " << rank << " shipped " << t
           << ", which the oracle says is never a match";
        out.push_back(os.str());
      }
    }
    // Every export was either copied or skipped, never both.
    for (Timestamp t : s.exports) {
      const bool c = copied.count(t) > 0, k = skipped.count(t) > 0;
      if (c == k) {
        std::ostringstream os;
        os << "skip-sound: exporter rank " << rank << " export " << t
           << (c ? " both copied and skipped" : " neither copied nor skipped");
        out.push_back(os.str());
      }
    }
  }
}

void check_buffer_lifetimes(const Scenario& s, const Observation& obs,
                            std::vector<std::string>& out) {
  if (s.faults.enabled) return;  // a dropped final ConnClosed may strand snapshots
  for (std::size_t rank = 0; rank < obs.exporter_stats.size(); ++rank) {
    for (const auto& es : obs.exporter_stats[rank].exports) {
      if (es.buffer.live_entries != 0 ||
          es.buffer.stores != es.buffer.frees_unsent + es.buffer.frees_sent) {
        std::ostringstream os;
        os << "buffer-life: exporter rank " << rank << " region " << es.region << " ended with "
           << es.buffer.live_entries << " live snapshots (" << es.buffer.stores << " stores, "
           << es.buffer.frees_unsent << "+" << es.buffer.frees_sent << " frees)";
        out.push_back(os.str());
      }
    }
  }
}

void check_memory(const Scenario& s, const Observation& obs, std::vector<std::string>& out) {
  for (std::size_t rank = 0; rank < obs.exporter_stats.size(); ++rank) {
    for (const auto& es : obs.exporter_stats[rank].exports) {
      const auto& b = es.buffer;
      if (s.budget_snapshots == 0) {
        if (b.evictions != 0 || b.restores != 0 || b.spill_bytes != 0) {
          std::ostringstream os;
          os << "memory: ungoverned exporter rank " << rank << " evicted (" << b.evictions
             << " evictions, " << b.spill_bytes << " spill bytes)";
          out.push_back(os.str());
        }
        continue;
      }
      // Spill books: every demoted snapshot is eventually restored (late
      // MATCH), freed on disk (proven non-matchable), or still live —
      // and nothing may remain on disk once the run completed.
      if (b.evictions != b.restores + b.spill_frees + b.live_spilled_entries) {
        std::ostringstream os;
        os << "memory: exporter rank " << rank << " spill books do not balance ("
           << b.evictions << " evictions != " << b.restores << " restores + " << b.spill_frees
           << " spill-frees + " << b.live_spilled_entries << " live)";
        out.push_back(os.str());
      }
      if (!s.faults.enabled && b.live_spilled_entries != 0) {
        std::ostringstream os;
        os << "memory: exporter rank " << rank << " ended with " << b.live_spilled_entries
           << " snapshots still in the spill tier";
        out.push_back(os.str());
      }
    }
  }
}

void check_buddy_help(const Scenario& s, const Observation& obs,
                      std::vector<std::string>& out) {
  std::uint64_t received = 0;
  for (const auto& stats : obs.exporter_stats) {
    for (const auto& es : stats.exports) received += es.buddy_helps_received;
  }
  const std::uint64_t sent = obs.exporter_rep.buddy_helps_sent;
  if (!s.buddy_help) {
    if (sent != 0 || received != 0) {
      std::ostringstream os;
      os << "buddy-help: disabled, yet rep sent " << sent << " and ranks received " << received;
      out.push_back(os.str());
    }
    return;
  }
  // Faults may drop (lose) or duplicate (multiply) help messages; on a
  // lossless fabric the books must balance exactly.
  if (!s.faults.enabled && received != sent) {
    std::ostringstream os;
    os << "buddy-help: rep sent " << sent << " helps but ranks received " << received;
    out.push_back(os.str());
  }
}

}  // namespace

std::vector<std::string> check_conformance(const Scenario& s, const Observation& obs) {
  std::vector<std::string> out;
  if (!obs.completed) {
    out.push_back("run: " + (obs.error.empty() ? std::string("did not complete") : obs.error));
    return out;
  }
  const OracleResult oracle = run_oracle(s.exports, s.requests, s.policy, s.tolerance);
  check_answers(s, obs, oracle, out);
  check_rep_log(s, obs, oracle, out);
  check_monotone(obs, out);
  check_exporter_events(s, obs, oracle, out);
  check_buffer_lifetimes(s, obs, out);
  check_memory(s, obs, out);
  check_buddy_help(s, obs, out);
  return out;
}

CheckedRun check_scenario(const Scenario& s) {
  CheckedRun r;
  r.obs = run_scenario(s);
  r.violations = check_conformance(s, r.obs);
  return r;
}

}  // namespace ccf::modelcheck
