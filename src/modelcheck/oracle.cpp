#include "modelcheck/oracle.hpp"

#include <algorithm>
#include <optional>

#include "util/check.hpp"

namespace ccf::modelcheck {

bool OracleResult::is_match(Timestamp t) const {
  return std::binary_search(minimal_copies.begin(), minimal_copies.end(), t);
}

OracleResult run_oracle(const std::vector<Timestamp>& exports,
                        const std::vector<Timestamp>& requests, MatchPolicy policy,
                        double tolerance) {
  CCF_REQUIRE(tolerance >= 0, "oracle tolerance must be >= 0, got " << tolerance);
  for (std::size_t i = 1; i < exports.size(); ++i) {
    CCF_REQUIRE(exports[i] > exports[i - 1], "oracle exports must be strictly increasing: "
                                                 << exports[i] << " after " << exports[i - 1]);
  }
  for (std::size_t i = 1; i < requests.size(); ++i) {
    CCF_REQUIRE(requests[i] > requests[i - 1],
                "oracle requests must be strictly increasing: " << requests[i] << " after "
                                                                << requests[i - 1]);
  }

  OracleResult out;
  // Last successful match; later matches must lie strictly above it
  // (the implementation's prune_through after a consumed match).
  Timestamp consumed = core::kNeverExported;
  for (Timestamp x : requests) {
    OracleAnswer answer;
    answer.region = core::acceptable_region(policy, x, tolerance);
    std::optional<Timestamp> best;
    for (Timestamp t : exports) {
      if (t <= consumed || !answer.region.contains(t)) continue;
      if (!best || core::better_match(t, *best, x)) best = t;
    }
    if (best) {
      answer.result = MatchResult::Match;
      answer.matched = *best;
      consumed = *best;
      out.minimal_copies.push_back(*best);
    }
    out.answers.push_back(answer);
  }
  // minimal_copies is ascending by construction (matches increase).
  for (Timestamp t : exports) {
    if (!out.is_match(t)) out.skippable.push_back(t);
  }
  return out;
}

}  // namespace ccf::modelcheck
