#include "modelcheck/shrink.hpp"

#include <algorithm>

namespace ccf::modelcheck {

namespace {

/// Scenario-size metric the shrinker drives downward: event-list length
/// first, then rank count, then fault machinery.
std::size_t weight(const Scenario& s) {
  return s.exports.size() + s.requests.size() +
         static_cast<std::size_t>(s.exporter_procs + s.importer_procs) +
         (s.faults.enabled ? 1 : 0) + (s.buddy_help ? 1 : 0) +
         (s.budget_snapshots > 0 ? 1 : 0) + (s.rep_fanin > 0 ? 1 : 0) +
         (s.rep_shards > 1 ? 1 : 0);
}

struct Search {
  ShrinkResult best;
  int budget;

  /// Runs the candidate; adopts it as the new best if it still fails and
  /// is no heavier. Returns true when adopted.
  bool try_candidate(const Scenario& candidate) {
    if (budget <= 0) return false;
    --budget;
    ++best.attempts;
    CheckedRun run = check_scenario(candidate);
    if (run.ok() || weight(candidate) > weight(best.scenario)) return false;
    best.scenario = candidate;
    best.run = std::move(run);
    return true;
  }
};

void structural_passes(Search& search) {
  {
    Scenario c = search.best.scenario;
    if (c.faults.enabled) {
      c.faults = FaultSpec{};
      search.try_candidate(c);
    }
  }
  {
    Scenario c = search.best.scenario;
    if (c.exporter_procs > 1) {
      c.exporter_procs = 1;
      c.exporter_step_seconds.resize(1);
      search.try_candidate(c);
    }
  }
  {
    Scenario c = search.best.scenario;
    if (c.importer_procs > 1) {
      c.importer_procs = 1;
      c.importer_step_seconds.resize(1);
      search.try_candidate(c);
    }
  }
  {
    Scenario c = search.best.scenario;
    std::fill(c.exporter_step_seconds.begin(), c.exporter_step_seconds.end(), 1e-4);
    std::fill(c.importer_step_seconds.begin(), c.importer_step_seconds.end(), 1e-4);
    if (c.exporter_step_seconds != search.best.scenario.exporter_step_seconds ||
        c.importer_step_seconds != search.best.scenario.importer_step_seconds) {
      search.try_candidate(c);
    }
  }
  {
    Scenario c = search.best.scenario;
    if (c.buddy_help) {
      c.buddy_help = false;
      search.try_candidate(c);
    }
  }
  {
    // Governance must be answer-invisible, so most failures reproduce
    // without it — dropping it first makes the shrunk scenario readable.
    Scenario c = search.best.scenario;
    if (c.budget_snapshots > 0) {
      c.budget_snapshots = 0;
      search.try_candidate(c);
    }
  }
  {
    // Same for the representative topology: if the failure reproduces on
    // the flat single-shard layout, report that — and if it does not, the
    // surviving fanin/shards fields point straight at the tree layer.
    Scenario c = search.best.scenario;
    if (c.rep_fanin > 0) {
      c.rep_fanin = 0;
      search.try_candidate(c);
    }
  }
  {
    Scenario c = search.best.scenario;
    if (c.rep_shards > 1) {
      c.rep_shards = 1;
      search.try_candidate(c);
    }
  }
}

/// Chunked ddmin over one timestamp list (selected by `get`). Dropping a
/// contiguous chunk always preserves strict monotonicity.
void ddmin_list(Search& search, std::vector<Timestamp> Scenario::* list) {
  for (std::size_t chunk = std::max<std::size_t>(1, (search.best.scenario.*list).size() / 2);
       chunk >= 1; chunk /= 2) {
    bool removed = true;
    while (removed && search.budget > 0) {
      removed = false;
      const std::size_t n = (search.best.scenario.*list).size();
      for (std::size_t start = 0; start + chunk <= n && search.budget > 0; ++start) {
        Scenario c = search.best.scenario;
        auto& v = c.*list;
        if (start + chunk > v.size()) break;
        v.erase(v.begin() + static_cast<std::ptrdiff_t>(start),
                v.begin() + static_cast<std::ptrdiff_t>(start + chunk));
        if (search.try_candidate(c)) {
          removed = true;
          break;  // restart the scan against the new, shorter best
        }
      }
    }
    if (chunk == 1) break;
  }
}

}  // namespace

ShrinkResult shrink(const Scenario& original, const CheckedRun& first, int max_attempts) {
  Search search;
  search.best.scenario = original;
  search.best.run = first;
  search.budget = max_attempts;

  structural_passes(search);
  ddmin_list(search, &Scenario::exports);
  ddmin_list(search, &Scenario::requests);
  // Structural reductions often unlock further list removals (and vice
  // versa), so run one more combined round if budget remains.
  if (search.budget > 0) {
    structural_passes(search);
    ddmin_list(search, &Scenario::exports);
    ddmin_list(search, &Scenario::requests);
  }
  return search.best;
}

}  // namespace ccf::modelcheck
