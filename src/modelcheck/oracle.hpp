// Sequential executable specification of the coupling protocol's matching
// semantics (paper §3.1, §4, Eq. 1–2).
//
// The distributed implementation spreads the approximate-matching decision
// across exporter processes, a rep aggregator, buddy-help forwarding, and
// buffering state machines. The oracle collapses all of that into ~100
// lines of obviously-correct sequential code: given the collective export
// timestamp sequence and the import request sequence of one connection, it
// computes
//   * the exact MATCH / NO-MATCH answer of every request (final answers
//     are always decisive because the exporter finalizes at end-of-run;
//     PENDING is a transient the protocol must resolve, never an outcome),
//   * the minimal buffering set — the versions ANY conforming
//     implementation must memcpy, namely exactly the matched timestamps
//     (a match must be snapshotted to be shipped), and
//   * the maximal buddy-help skip set — every other export, which a
//     perfectly informed process (one that learns each answer before
//     producing the data, the buddy-help ideal of §4.1) never buffers.
//
// Rules (the paper's semantics, as also asserted by the integration
// oracle test):
//   m_k = the export inside acceptable_region(policy, x_k, tol) closest
//         to x_k (ties prefer the later timestamp), among exports
//         strictly greater than the last successful match m_{k-1}
//         (consumption monotonicity: prune_through), or NO MATCH if no
//         such export exists.
//
// The conformance checker (conformance.hpp) compares every observable of
// a real run — importer answers, rep answer log, per-rank copy/skip/ship
// trace events, buffer lifetimes — against this oracle.
#pragma once

#include <vector>

#include "core/match_policy.hpp"
#include "core/matcher.hpp"
#include "core/timestamp.hpp"

namespace ccf::modelcheck {

using core::Interval;
using core::MatchPolicy;
using core::MatchResult;
using core::Timestamp;

struct OracleAnswer {
  MatchResult result = core::MatchResult::NoMatch;
  Timestamp matched = core::kNeverExported;  ///< valid when result == Match
  Interval region;                           ///< the request's acceptable region
};

struct OracleResult {
  std::vector<OracleAnswer> answers;       ///< one per request, in order
  std::vector<Timestamp> minimal_copies;   ///< matched timestamps, ascending
  std::vector<Timestamp> skippable;        ///< exports - matches, ascending

  bool is_match(Timestamp t) const;  ///< t in minimal_copies?
};

/// Computes the oracle for one connection. `exports` and `requests` must
/// be strictly increasing (the framework enforces the same of the real
/// system); `tolerance` must be >= 0. Throws util::InvalidArgument
/// otherwise.
OracleResult run_oracle(const std::vector<Timestamp>& exports,
                        const std::vector<Timestamp>& requests, MatchPolicy policy,
                        double tolerance);

}  // namespace ccf::modelcheck
