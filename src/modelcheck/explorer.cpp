#include "modelcheck/explorer.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>

#include "core/system.hpp"
#include "transport/fault.hpp"
#include "transport/latency.hpp"

namespace ccf::modelcheck {

namespace {

using core::Config;
using core::ConnectionSpec;
using core::CoupledSystem;
using core::CouplingRuntime;
using core::FrameworkOptions;
using core::ProgramSpec;
using dist::BlockDecomposition;
using dist::DistArray2D;
using transport::FaultInjector;
using transport::FaultPlan;

/// Only the control plane is faulted (as in the chaos harness): the
/// failure-tolerance protocol recovers control losses end-to-end, while
/// payload reassembly is not the subject under test.
bool control_plane_only(transport::ProcId, transport::ProcId, transport::Tag tag) {
  return tag >= core::kTagImportRequest && tag < core::kTagDataBase;
}

FrameworkOptions framework_options(const Scenario& s) {
  FrameworkOptions fw;
  fw.buddy_help = s.buddy_help;
  fw.trace = true;  // structured events are the conformance observable
  if (s.faults.enabled) {
    fw.retry_timeout_seconds = 0.05;
    fw.retry_backoff_factor = 2.0;
    fw.max_retries = 64;
    fw.heartbeat_interval_seconds = 0.5;
    fw.departure_timeout_seconds = 10.0;
  }
  return fw;
}

}  // namespace

Observation run_scenario(const Scenario& s) {
  Config config;
  ProgramSpec e_spec{"E", "h", "/e", s.exporter_procs, {}};
  ProgramSpec i_spec{"I", "h", "/i", s.importer_procs, {}};
  e_spec.rep_fanin = i_spec.rep_fanin = s.rep_fanin;
  e_spec.rep_shards = i_spec.rep_shards = s.rep_shards;
  config.add_program(e_spec);
  config.add_program(i_spec);
  config.add_connection(ConnectionSpec{"E", "r", "I", "r", s.policy, s.tolerance, {}});

  const auto rows = static_cast<dist::Index>(s.rows);
  const auto cols = static_cast<dist::Index>(s.cols);
  const auto e_decomp = BlockDecomposition::make_grid(rows, cols, s.exporter_procs);
  const auto i_decomp = BlockDecomposition::make_grid(rows, cols, s.importer_procs);

  FrameworkOptions fw = framework_options(s);
  std::filesystem::path spill_dir;
  if (s.budget_snapshots > 0) {
    // Budget in units of the largest exporter block, so a budget of N
    // snapshots means the same degree of eviction pressure on every rank.
    std::size_t max_block_bytes = 0;
    for (int r = 0; r < s.exporter_procs; ++r) {
      max_block_bytes = std::max(
          max_block_bytes,
          static_cast<std::size_t>(e_decomp.box_of(r).count()) * sizeof(double));
    }
    fw.memory.budget_bytes = static_cast<std::size_t>(s.budget_snapshots) * max_block_bytes;
    spill_dir = std::filesystem::temp_directory_path() /
                ("ccf_mc_spill_" + std::to_string(s.seed));
    fw.memory.spill_directory = spill_dir.string();
  }

  runtime::ClusterOptions cluster_options;
  cluster_options.mode = runtime::ExecutionMode::VirtualTime;
  cluster_options.latency = std::make_shared<const transport::FixedLatency>(s.latency_seconds);
  // Scenarios are tiny (<= a few thousand protocol messages); anything in
  // the millions is a livelock. Bounding it keeps shrink candidates from
  // spinning for minutes — they throw and count as a failing run instead.
  cluster_options.max_events = 2'000'000;
  std::shared_ptr<FaultInjector> faults;
  if (s.faults.enabled) {
    FaultPlan plan;
    plan.seed = s.faults.seed;
    plan.drop_prob = s.faults.drop_prob;
    plan.duplicate_prob = s.faults.duplicate_prob;
    plan.delay_prob = s.faults.delay_prob;
    plan.delay_min_seconds = s.faults.delay_min_seconds;
    plan.delay_max_seconds = s.faults.delay_max_seconds;
    plan.eligible = control_plane_only;
    faults = std::make_shared<FaultInjector>(plan);
    cluster_options.faults = faults;
  }
  CoupledSystem system(config, cluster_options, fw);

  system.set_program_body("E", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r", e_decomp);
    rt.commit();
    DistArray2D<double> data(e_decomp, rt.rank());
    const double step = s.exporter_step_seconds[static_cast<std::size_t>(rt.rank())];
    for (Timestamp t : s.exports) {
      ctx.compute(step);
      // The payload carries the version so the importer can verify the
      // shipped snapshot is exactly the matched one.
      data.fill([&](dist::Index, dist::Index) { return t; });
      rt.export_region("r", t, data);
    }
    rt.finalize();
  });

  Observation obs;
  obs.importer_answers.resize(static_cast<std::size_t>(s.importer_procs));
  system.set_program_body("I", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r", i_decomp);
    rt.commit();
    DistArray2D<double> data(i_decomp, rt.rank());
    auto& answers = obs.importer_answers[static_cast<std::size_t>(rt.rank())];
    const double step = s.importer_step_seconds[static_cast<std::size_t>(rt.rank())];
    for (Timestamp x : s.requests) {
      ctx.compute(step);
      const auto status = rt.import_region("r", x, data);
      RankAnswer a;
      a.matched = status.ok();
      if (a.matched) {
        a.version = status.matched;
        a.payload = data.data()[0];
      }
      answers.push_back(a);
    }
    rt.finalize();
  });

  try {
    system.run();
    obs.completed = true;
  } catch (const std::exception& e) {
    obs.error = e.what();
    if (!spill_dir.empty()) std::filesystem::remove_all(spill_dir);
    return obs;  // stats/traces are unreliable after a failed run
  }
  // Spill files themselves are cleaned up by each SpillStore's destructor
  // when the runtimes die; only the per-scenario directory remains.
  if (!spill_dir.empty()) std::filesystem::remove_all(spill_dir);

  for (int r = 0; r < s.exporter_procs; ++r) {
    obs.exporter_stats.push_back(system.proc_stats("E", r));
    obs.exporter_events.push_back(system.trace_events("E", r, "r"));
  }
  for (int r = 0; r < s.importer_procs; ++r) {
    obs.importer_stats.push_back(system.proc_stats("I", r));
  }
  obs.exporter_rep = system.rep_result("E");
  obs.importer_rep = system.rep_result("I");
  if (faults) {
    const auto fs = faults->stats();
    obs.faults_injected = fs.dropped + fs.duplicated + fs.delayed;
  }
  return obs;
}

}  // namespace ccf::modelcheck
