// The explore loop: generate -> run -> check -> (on failure) shrink ->
// report, over a contiguous block of seeds.
//
// Exploration stops at the first non-conforming seed. The failure message
// is self-contained: it names the violated checks, prints the shrunk
// scenario in describe() form, and always embeds the exact replay
// commands (`modelcheck_explore --replay=<seed>` and
// `CCF_MC_REPLAY=<seed>` for the gtest runner), so any failure seen in CI
// reproduces locally from the message alone.
#pragma once

#include <cstdint>
#include <string>

#include "modelcheck/conformance.hpp"
#include "modelcheck/scenario.hpp"
#include "modelcheck/shrink.hpp"

namespace ccf::modelcheck {

struct ExploreOptions {
  std::uint64_t seed0 = 1;       ///< first seed; seeds seed0..seed0+runs-1
  int runs = 500;
  bool shrink_failures = true;
  int max_shrink_attempts = 250;
};

struct ExploreResult {
  int runs = 0;                 ///< scenarios executed (<= options.runs on failure)
  bool ok = true;
  std::uint64_t failing_seed = 0;
  std::string failure_message;  ///< empty when ok; contains "--replay=<seed>"
};

/// Checks one seed end-to-end (generate + run + conformance).
CheckedRun replay_seed(std::uint64_t seed);

/// Runs the explore loop; returns on the first failure or after `runs`
/// conforming scenarios.
ExploreResult explore(const ExploreOptions& options);

/// Formats the failure report for a non-conforming seed (used by explore
/// and by the gtest wrapper so both print identical reproductions).
std::string failure_message(std::uint64_t seed, const Scenario& shrunk,
                            const CheckedRun& run, int shrink_attempts);

}  // namespace ccf::modelcheck
