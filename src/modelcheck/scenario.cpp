#include "modelcheck/scenario.hpp"

#include <cmath>
#include <sstream>

#include "util/rng.hpp"

namespace ccf::modelcheck {

Scenario generate_scenario(std::uint64_t seed) {
  util::Xoshiro256 rng(seed ^ 0x6d6f64656c636b31ULL);  // decorrelate from fault seeds
  Scenario s;
  s.seed = seed;

  switch (rng.below(3)) {
    case 0: s.policy = MatchPolicy::REGL; break;
    case 1: s.policy = MatchPolicy::REGU; break;
    default: s.policy = MatchPolicy::REG; break;
  }
  // Tolerance regimes: exact matching (boundary behaviour), the paper's
  // moderate windows, and wide overlapping regions (request stride below
  // the tolerance exercises the deferred low-water / superseding paths).
  const double tol_mode = rng.uniform();
  if (tol_mode < 0.1) s.tolerance = 0;
  else if (tol_mode < 0.85) s.tolerance = rng.uniform(0.2, 3.0);
  else s.tolerance = rng.uniform(3.0, 8.0);

  s.exporter_procs = 1 + static_cast<int>(rng.below(4));
  s.importer_procs = 1 + static_cast<int>(rng.below(4));

  // Export sequence: random positive strides; ~4% of scenarios export
  // nothing at all (every request then resolves at finalize).
  const std::size_t n_exports = rng.uniform() < 0.04 ? 0 : 2 + rng.below(23);
  Timestamp t = rng.uniform(0.1, 2.0);
  for (std::size_t i = 0; i < n_exports; ++i) {
    s.exports.push_back(t);
    t += rng.uniform(0.05, 2.0);
  }

  // Request sequence: strides chosen so requests sometimes trail, overlap,
  // and overshoot the export span; ~8% of scenarios never import.
  const std::size_t n_requests = rng.uniform() < 0.08 ? 0 : 1 + rng.below(8);
  Timestamp x = rng.uniform(0.2, 3.0);
  for (std::size_t i = 0; i < n_requests; ++i) {
    s.requests.push_back(x);
    x += rng.uniform(0.2, 3.0);
  }

  // Per-rank compute speeds spanning ~2 orders of magnitude: slow ranks
  // answer PENDING while fast ranks decide, producing the PENDING+MATCH /
  // PENDING+NO-MATCH aggregates buddy-help exists for.
  for (int r = 0; r < s.exporter_procs; ++r) {
    s.exporter_step_seconds.push_back(std::pow(10.0, rng.uniform(-5.0, -2.5)));
  }
  for (int r = 0; r < s.importer_procs; ++r) {
    s.importer_step_seconds.push_back(std::pow(10.0, rng.uniform(-5.0, -2.5)));
  }

  s.buddy_help = rng.uniform() >= 0.2;

  if (rng.uniform() < 0.5) {
    s.faults.enabled = true;
    s.faults.seed = seed * 0x9e3779b97f4a7c15ULL + 1;
    s.faults.drop_prob = rng.uniform(0, 0.12);
    s.faults.duplicate_prob = rng.uniform(0, 0.12);
    s.faults.delay_prob = rng.uniform(0, 0.12);
    s.faults.delay_min_seconds = 0.02;
    s.faults.delay_max_seconds = 0.2;
  }

  // Memory-governance knob, drawn last so every earlier field of a given
  // seed is identical to what pre-governance builds generated (failing
  // seeds stay replayable across versions). Tight budgets (1 snapshot)
  // force eviction on nearly every buffered export.
  if (rng.uniform() < 0.4) s.budget_snapshots = 1 + static_cast<int>(rng.below(4));

  // Hierarchical-representative knobs, drawn after every earlier field for
  // the same replayability reason. Fan-in 2 with 3-4 ranks builds real
  // sub-rep layers; fan-in >= nprocs degenerates to direct attachment,
  // which must behave identically to the flat layout.
  if (rng.uniform() < 0.35) s.rep_fanin = 2 + static_cast<int>(rng.below(2));
  if (rng.uniform() < 0.2) s.rep_shards = 2;
  return s;
}

std::string describe(const Scenario& s) {
  std::ostringstream os;
  os << "seed=" << s.seed << " policy=" << core::to_string(s.policy) << " tol=" << s.tolerance
     << " eprocs=" << s.exporter_procs << " iprocs=" << s.importer_procs
     << " buddy_help=" << (s.buddy_help ? 1 : 0)
     << " budget_snapshots=" << s.budget_snapshots
     << " rep_fanin=" << s.rep_fanin << " rep_shards=" << s.rep_shards;
  os << " exports=[";
  for (std::size_t i = 0; i < s.exports.size(); ++i) os << (i ? " " : "") << s.exports[i];
  os << "] requests=[";
  for (std::size_t i = 0; i < s.requests.size(); ++i) os << (i ? " " : "") << s.requests[i];
  os << "]";
  if (s.faults.enabled) {
    os << " faults{seed=" << s.faults.seed << " drop=" << s.faults.drop_prob
       << " dup=" << s.faults.duplicate_prob << " delay=" << s.faults.delay_prob << "}";
  } else {
    os << " faults=none";
  }
  return os.str();
}

}  // namespace ccf::modelcheck
