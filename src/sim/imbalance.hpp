// Load-imbalance models for the micro-benchmark's slow process.
//
// The paper attributes slow processes to "imperfect load balancing within
// the component or other application-specific reasons" (§1) and slows one
// process by a constant factor in §5. These models generalize that: the
// per-iteration compute time of each rank is drawn from a configurable
// pattern, letting the ablations ask how buddy-help behaves when the
// straggler identity is noisy or time-varying (e.g. AMR-style load waves).
#pragma once

#include <cstdint>
#include <string>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ccf::sim {

enum class ImbalanceKind {
  Constant,   ///< rank `slow_rank` always pays `slow_factor`, others 1.0 (the paper)
  Jitter,     ///< every rank pays 1.0 + uniform[0, amplitude) each iteration
  SlowJitter, ///< constant straggler plus jitter on every rank
  Rotating,   ///< the straggler role rotates across ranks every `period` iterations
  Burst,      ///< the straggler pays `slow_factor` only during periodic bursts
};

ImbalanceKind parse_imbalance(const std::string& text);
std::string to_string(ImbalanceKind kind);

struct ImbalanceModel {
  ImbalanceKind kind = ImbalanceKind::Constant;
  int slow_rank = -1;        ///< -1: last rank
  double slow_factor = 3.57 / 1.43;  ///< straggler multiplier over the base
  double amplitude = 0.5;    ///< jitter amplitude (fraction of base)
  int period = 50;           ///< rotation/burst period in iterations
  double duty = 0.5;         ///< burst duty cycle
  std::uint64_t seed = 42;

  /// Compute-time multiplier (>= 1) for `rank` of `nprocs` at iteration
  /// `iter`. Deterministic in (seed, rank, iter).
  double factor(int rank, int nprocs, int iter) const;
};

}  // namespace ccf::sim
