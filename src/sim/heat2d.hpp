// Parallel explicit solver for the 2-D diffusion (heat) equation
//     u_t = alpha (u_xx + u_yy) + f(t, x, y)
// — the equation family the paper's micro-benchmark names (§5). Forward
// Euler in time, 5-point Laplacian, Dirichlet-0 boundaries, halo exchange
// per step. Complements WaveSolver2D (the hyperbolic u_tt form) so both
// interpretations of the paper's model problem are available as coupled
// components.
#pragma once

#include <vector>

#include "dist/dist_array.hpp"
#include "runtime/process_context.hpp"

namespace ccf::sim {

class HeatSolver2D {
 public:
  /// Stability (unit grid spacing) requires dt <= 1 / (4 alpha); the
  /// constructor enforces it. `peers[r]` is the global id of rank r.
  HeatSolver2D(const dist::BlockDecomposition& decomp, int rank,
               std::vector<runtime::ProcId> peers, double alpha, double dt,
               runtime::Tag tag_base = 0x2000);

  template <typename Fn>
  void set_initial(Fn&& fn) {
    curr_.fill(fn);
  }

  /// Advances one step with the forcing field (same decomposition).
  void step(runtime::ProcessContext& ctx, const dist::DistArray2D<double>& f);

  const dist::DistArray2D<double>& u() const { return curr_; }
  int steps_taken() const { return steps_; }
  double time() const { return static_cast<double>(steps_) * dt_; }

  double local_sum() const;     ///< sum of u over the local block
  double local_max_abs() const; ///< max |u| over the local block

 private:
  void exchange_halos(runtime::ProcessContext& ctx);
  double u_at(dist::Index r, dist::Index c) const;

  dist::BlockDecomposition decomp_;
  int rank_;
  std::vector<runtime::ProcId> peers_;
  double alpha_;
  double dt_;
  runtime::Tag tag_base_;
  dist::Box box_;
  dist::DistArray2D<double> curr_;
  dist::DistArray2D<double> next_;
  std::vector<double> halo_north_, halo_south_, halo_west_, halo_east_;
  int steps_ = 0;
};

}  // namespace ccf::sim
