// The forcing-function component f(t, x, y) (program F in the paper's
// micro-benchmark, §5).
//
// f is an analytic travelling Gaussian pulse — an external input source for
// the wave/diffusion component. fill() evaluates the full local block
// (used by the examples and correctness tests); touch() performs a cheap
// per-timestep update that still makes every version distinguishable
// (used by the long timing benchmark, where a full analytic fill per
// iteration would dominate host CPU without affecting the modeled times).
#pragma once

#include "dist/dist_array.hpp"

namespace ccf::sim {

class ForcingField {
 public:
  ForcingField(const dist::BlockDecomposition& decomp, int rank)
      : field_(decomp, rank) {}

  /// Full analytic evaluation of f(t, x, y) on the local block.
  void fill(double t);

  /// Cheap per-step refresh: stamps the timestamp into the block so every
  /// exported version has distinct, verifiable content.
  void touch(double t);

  /// The analytic forcing function itself.
  static double value(double t, double x, double y, double rows, double cols);

  const dist::DistArray2D<double>& field() const { return field_; }
  dist::DistArray2D<double>& field() { return field_; }

 private:
  dist::DistArray2D<double> field_;
};

}  // namespace ccf::sim
