// The paper's §5 micro-benchmark: program F (4 processes, one slowed)exports
// f(t,x,y) snapshots; program U (4/8/16/32 processes) imports 1-in-20 of
// them under REGL matching. Reproduces Figure 4's per-iteration export
// times of the slowest exporter process, and (with tracing) the Figure
// 5/7/8 listings.
//
// Compute costs are expressed as multiples of one export-buffering copy
// (the local block memcpy cost under the cluster's CopyCostModel), so the
// regime — which side is faster, where the knee lands — is invariant to
// the configured array size. Defaults reproduce the paper's regimes:
//   U=4,8  -> importer slower, every export buffered (Fig 4a/4b, flat);
//   U=16   -> importer catches up slowly (Fig 4c, knee ~hundreds of iters);
//   U=32   -> importer much faster (Fig 4d, knee within tens of iters).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/system.hpp"
#include "runtime/cluster.hpp"
#include "sim/imbalance.hpp"

namespace ccf::sim {

struct MicrobenchParams {
  int importer_procs = 16;
  int exporter_procs = 4;
  dist::Index rows = 1024;
  dist::Index cols = 1024;

  int num_exports = 1001;
  double export_t0 = 0.6;       ///< first export at t0 + dt (paper: 1.6)
  double export_dt = 1.0;
  double request_stride = 20.0; ///< import x = stride, 2*stride, ... (1-in-20 matched)
  double tolerance = 2.5;
  core::MatchPolicy policy = core::MatchPolicy::REGL;

  /// Per-iteration compute of the fast exporter processes, as a multiple
  /// of one buffering copy cost C.
  double fast_compute_factor = 1.43;
  /// Per-iteration compute of the slow process p_s (ranks-1), in C.
  double slow_compute_factor = 3.57;
  /// Optional load-imbalance pattern. When set it overrides the
  /// fast/slow pair: each rank's per-iteration compute is
  /// fast_compute_factor * imbalance->factor(rank, nprocs, iter) * C.
  std::optional<ImbalanceModel> imbalance;
  /// Importer program's total per-iteration work in C (divided evenly
  /// among its processes — more processes, faster importer, as in §5).
  double importer_work_factor = 1143.0;
  /// One-time importer initialization work in C (setting up the initial
  /// condition before the first import), same per-process division.
  double importer_init_factor = 1143.0;

  bool buddy_help = true;
  bool trace = false;                ///< record p_s's event listing
  std::size_t trace_max_events = 4096;

  /// Finite buffer space: cap per exporter process, in snapshots of its
  /// local block (0 = unlimited). See FrameworkOptions::max_buffered_bytes.
  std::size_t buffer_cap_snapshots = 0;

  /// Bounded-memory governance (MemoryOptions): resident-snapshot budget
  /// per exporter process, in snapshots of its local block (0 = off).
  /// Unlike buffer_cap_snapshots — which stalls the exporter at the cap —
  /// the governor demotes cold snapshots to the spill tier and keeps the
  /// exporter running.
  std::size_t memory_budget_snapshots = 0;
  /// Spill-tier directory ("" = no spill tier: stall or soft-exceed).
  std::string spill_directory;

  runtime::ExecutionMode mode = runtime::ExecutionMode::VirtualTime;
  /// Per-message network latency as a multiple of the copy cost C. On the
  /// paper's testbed (2 MB blocks, GigE) latency was ~0.036 C; expressing
  /// it relative to C keeps the regime boundaries invariant when the
  /// benchmark is run at reduced array sizes.
  double net_latency_factor = 0.04;
  double net_bandwidth = 110e6;  ///< bytes/s for data pieces (GigE-class)
};

struct MicrobenchResult {
  MicrobenchParams params;

  /// Slowest exporter process's per-iteration export durations (Fig 4
  /// y-axis) and their timestamps.
  std::vector<double> slow_export_seconds;
  std::vector<double> slow_export_timestamps;

  core::ExportRegionStats slow_stats;                ///< p_s, region r1
  std::vector<core::ExportRegionStats> exporter_stats;  ///< all F ranks
  mem::GovernorStats slow_governor;  ///< p_s's process-wide governor accounting
  core::ImportRegionStats importer_rank0_stats;
  core::RepResult exporter_rep;

  std::string slow_trace;  ///< Fig 5-style listing (when params.trace)

  double end_time = 0;          ///< cluster end time (virtual seconds)
  double copy_cost_seconds = 0; ///< the cost unit C used for the factors

  /// Mean export time per request-period block (stride/dt iterations per
  /// block), computed over the analysed prefix (tail artifact trimmed).
  std::vector<double> block_mean_seconds;
  std::size_t block_iterations = 0;  ///< iterations per block

  /// First iteration index after which the export-time series stays on
  /// its final plateau (the paper's "iterations to reach optimal state").
  /// Computed over request-period blocks so the one matched (and thus
  /// buffered) export per block does not read as noise.
  std::size_t settle_iteration = 0;

  /// Mean export seconds over the first/last `window` iterations.
  double initial_mean = 0;
  double plateau_mean = 0;
};

MicrobenchResult run_microbench(const MicrobenchParams& params);

}  // namespace ccf::sim
