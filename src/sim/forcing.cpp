#include "sim/forcing.hpp"

#include <cmath>

namespace ccf::sim {

double ForcingField::value(double t, double x, double y, double rows, double cols) {
  // A Gaussian source orbiting the domain center: smooth in space and
  // time, never identically zero, period ~200 time units.
  const double cx = 0.5 * rows + 0.25 * rows * std::cos(t * 0.031415926);
  const double cy = 0.5 * cols + 0.25 * cols * std::sin(t * 0.031415926);
  const double sigma2 = 0.01 * rows * cols + 1.0;
  const double dx = x - cx;
  const double dy = y - cy;
  return std::exp(-(dx * dx + dy * dy) / sigma2);
}

void ForcingField::fill(double t) {
  const auto rows = static_cast<double>(field_.decomposition().rows());
  const auto cols = static_cast<double>(field_.decomposition().cols());
  field_.fill([&](dist::Index r, dist::Index c) {
    return value(t, static_cast<double>(r), static_cast<double>(c), rows, cols);
  });
}

void ForcingField::touch(double t) {
  // Stamp the first row of the local block with (t, global row/col), so
  // exported versions differ and receivers can verify which timestamp they
  // got without paying a full analytic fill per step.
  const dist::Box& box = field_.local_box();
  double* data = field_.data();
  data[0] = t;
  if (box.count() > 1) data[1] = static_cast<double>(box.row_begin);
  if (box.count() > 2) data[2] = static_cast<double>(box.col_begin);
}

}  // namespace ccf::sim
