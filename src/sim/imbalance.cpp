#include "sim/imbalance.hpp"

namespace ccf::sim {

ImbalanceKind parse_imbalance(const std::string& text) {
  if (text == "constant") return ImbalanceKind::Constant;
  if (text == "jitter") return ImbalanceKind::Jitter;
  if (text == "slowjitter") return ImbalanceKind::SlowJitter;
  if (text == "rotating") return ImbalanceKind::Rotating;
  if (text == "burst") return ImbalanceKind::Burst;
  throw util::InvalidArgument("unknown imbalance model '" + text +
                              "' (constant/jitter/slowjitter/rotating/burst)");
}

std::string to_string(ImbalanceKind kind) {
  switch (kind) {
    case ImbalanceKind::Constant: return "constant";
    case ImbalanceKind::Jitter: return "jitter";
    case ImbalanceKind::SlowJitter: return "slowjitter";
    case ImbalanceKind::Rotating: return "rotating";
    case ImbalanceKind::Burst: return "burst";
  }
  return "?";
}

namespace {
/// Deterministic per-(seed, rank, iter) uniform in [0, 1).
double hash_uniform(std::uint64_t seed, int rank, int iter) {
  util::SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(rank) << 32) ^
                      static_cast<std::uint64_t>(iter));
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}
}  // namespace

double ImbalanceModel::factor(int rank, int nprocs, int iter) const {
  CCF_REQUIRE(nprocs > 0 && rank >= 0 && rank < nprocs, "bad rank/nprocs");
  CCF_REQUIRE(slow_factor >= 1.0, "slow factor must be >= 1");
  CCF_REQUIRE(amplitude >= 0.0, "amplitude must be >= 0");
  const int straggler = slow_rank < 0 ? nprocs - 1 : slow_rank;
  switch (kind) {
    case ImbalanceKind::Constant:
      return rank == straggler ? slow_factor : 1.0;
    case ImbalanceKind::Jitter:
      return 1.0 + amplitude * hash_uniform(seed, rank, iter);
    case ImbalanceKind::SlowJitter:
      return (rank == straggler ? slow_factor : 1.0) +
             amplitude * hash_uniform(seed, rank, iter);
    case ImbalanceKind::Rotating: {
      CCF_REQUIRE(period > 0, "rotation period must be positive");
      const int active = (iter / period) % nprocs;
      return rank == active ? slow_factor : 1.0;
    }
    case ImbalanceKind::Burst: {
      CCF_REQUIRE(period > 0, "burst period must be positive");
      const bool in_burst =
          (iter % period) < static_cast<int>(duty * static_cast<double>(period));
      return (rank == straggler && in_burst) ? slow_factor : 1.0;
    }
  }
  throw util::InternalError("unhandled imbalance kind");
}

}  // namespace ccf::sim
