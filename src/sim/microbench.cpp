#include "sim/microbench.hpp"

#include <cmath>

#include "sim/forcing.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace ccf::sim {

using core::Config;
using core::ConnectionSpec;
using core::CouplingRuntime;
using core::ProgramSpec;

MicrobenchResult run_microbench(const MicrobenchParams& params) {
  CCF_REQUIRE(params.exporter_procs >= 1, "need at least one exporter process");
  CCF_REQUIRE(params.importer_procs >= 1, "need at least one importer process");
  CCF_REQUIRE(params.num_exports >= 1, "need at least one export");
  CCF_REQUIRE(params.request_stride > 0 && params.export_dt > 0, "positive steps required");

  Config config;
  config.add_program(ProgramSpec{"F", "cluster0", "/bin/F", params.exporter_procs, {}});
  config.add_program(ProgramSpec{"U", "cluster1", "/bin/U", params.importer_procs, {}});
  config.add_connection(ConnectionSpec{"F", "r1", "U", "r1", params.policy, params.tolerance});

  runtime::ClusterOptions cluster_options;
  cluster_options.mode = params.mode;

  core::FrameworkOptions fw;
  fw.buddy_help = params.buddy_help;
  fw.trace = params.trace;
  fw.trace_max_events = params.trace_max_events;
  // Resolved below once the exporter block size is known.

  const dist::BlockDecomposition decomp_f =
      dist::BlockDecomposition::make_grid(params.rows, params.cols, params.exporter_procs);
  const dist::BlockDecomposition decomp_u =
      dist::BlockDecomposition::make_grid(params.rows, params.cols, params.importer_procs);

  // The cost unit C: buffering one exporter-local block snapshot.
  const int slow_rank = params.exporter_procs - 1;
  const std::size_t slow_block_bytes =
      static_cast<std::size_t>(decomp_f.box_of(slow_rank).count()) * sizeof(double);
  const double unit = cluster_options.copy_cost.cost_seconds(slow_block_bytes);
  cluster_options.latency = std::make_shared<const transport::BandwidthLatency>(
      params.net_latency_factor * unit, params.net_bandwidth);
  if (params.buffer_cap_snapshots > 0) {
    fw.max_buffered_bytes = params.buffer_cap_snapshots * slow_block_bytes;
  }
  if (params.memory_budget_snapshots > 0) {
    fw.memory.budget_bytes = params.memory_budget_snapshots * slow_block_bytes;
    fw.memory.spill_directory = params.spill_directory;
  }

  const int num_requests = static_cast<int>(std::floor(
      (params.export_t0 + params.num_exports * params.export_dt) / params.request_stride));

  core::CoupledSystem system(config, cluster_options, fw);

  system.set_program_body("F", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_export_region("r1", decomp_f);
    rt.commit();
    ForcingField forcing(decomp_f, rt.rank());
    forcing.fill(params.export_t0);
    const bool slow = rt.rank() == slow_rank;
    const double base_seconds =
        unit * (slow ? params.slow_compute_factor : params.fast_compute_factor);
    for (int k = 1; k <= params.num_exports; ++k) {
      const double t = params.export_t0 + k * params.export_dt;
      double compute_seconds = base_seconds;
      if (params.imbalance) {
        compute_seconds = unit * params.fast_compute_factor *
                          params.imbalance->factor(rt.rank(), params.exporter_procs, k);
      }
      ctx.compute(compute_seconds);  // the per-iteration computational task
      forcing.touch(t);
      rt.export_region("r1", t, forcing.field());
    }
    rt.finalize();
  });

  system.set_program_body("U", [&](CouplingRuntime& rt, runtime::ProcessContext& ctx) {
    rt.define_import_region("r1", decomp_u);
    rt.commit();
    dist::DistArray2D<double> input(decomp_u, rt.rank());
    const double per_proc_work =
        unit * params.importer_work_factor / params.importer_procs;
    ctx.compute(unit * params.importer_init_factor / params.importer_procs);
    for (int j = 1; j <= num_requests; ++j) {
      (void)rt.import_region("r1", params.request_stride * j, input);
      ctx.compute(per_proc_work);  // the solver's time step
    }
    rt.finalize();
  });

  system.run();

  MicrobenchResult result;
  result.params = params;
  result.copy_cost_seconds = unit;
  result.end_time = system.end_time();
  result.exporter_rep = system.rep_result("F");

  for (int r = 0; r < params.exporter_procs; ++r) {
    const core::ProcStats& stats = system.proc_stats("F", r);
    CCF_CHECK(stats.exports.size() == 1, "exporter should have exactly one region");
    result.exporter_stats.push_back(stats.exports[0]);
  }
  result.slow_stats = result.exporter_stats[static_cast<std::size_t>(slow_rank)];
  result.slow_governor = system.proc_stats("F", slow_rank).governor;
  result.slow_export_seconds = result.slow_stats.export_seconds;
  result.slow_export_timestamps = result.slow_stats.export_timestamps;
  result.slow_trace = system.trace_listing("F", slow_rank, "r1");

  const core::ProcStats& u0 = system.proc_stats("U", 0);
  CCF_CHECK(u0.imports.size() == 1, "importer should have exactly one region");
  result.importer_rank0_stats = u0.imports[0];

  // Analyse only exports up to the last request's timestamp: everything
  // after it is necessarily buffered again (no request information exists
  // beyond the final region), a tail artifact of the finite run.
  const double last_request_t = num_requests * params.request_stride;
  std::vector<double> analysed = result.slow_export_seconds;
  for (std::size_t i = 0; i < result.slow_export_timestamps.size(); ++i) {
    if (result.slow_export_timestamps[i] > last_request_t) {
      analysed.resize(i);
      break;
    }
  }
  // Aggregate into request-period blocks: each block holds exactly one
  // matched (buffered + transferred) export, so block means isolate the
  // trend from the periodic matched-copy spike.
  const std::size_t block =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   std::lround(params.request_stride / params.export_dt)));
  result.block_iterations = block;
  for (std::size_t start = 0; start + block <= analysed.size(); start += block) {
    result.block_mean_seconds.push_back(util::mean_of(analysed, start, start + block));
  }
  const std::size_t window = std::min<std::size_t>(3, std::max<std::size_t>(
                                                          result.block_mean_seconds.size(), 1));
  result.settle_iteration =
      util::settle_index(result.block_mean_seconds, window, 0.10) * block;
  result.initial_mean = util::mean_of(analysed, 0, std::min(block, analysed.size()));
  const std::size_t tail = window * block;
  result.plateau_mean = util::mean_of(
      analysed, analysed.size() > tail ? analysed.size() - tail : 0, analysed.size());
  return result;
}

}  // namespace ccf::sim
