#include "sim/heat2d.hpp"

#include <cmath>

#include "transport/serialize.hpp"
#include "util/check.hpp"

namespace ccf::sim {

namespace {
enum Dir : runtime::Tag { North = 0, South = 1, West = 2, East = 3 };
}

HeatSolver2D::HeatSolver2D(const dist::BlockDecomposition& decomp, int rank,
                           std::vector<runtime::ProcId> peers, double alpha, double dt,
                           runtime::Tag tag_base)
    : decomp_(decomp),
      rank_(rank),
      peers_(std::move(peers)),
      alpha_(alpha),
      dt_(dt),
      tag_base_(tag_base),
      box_(decomp.box_of(rank)),
      curr_(decomp, rank),
      next_(decomp, rank) {
  CCF_REQUIRE(peers_.size() == static_cast<std::size_t>(decomp.nprocs()),
              "peer list size " << peers_.size() << " != nprocs " << decomp.nprocs());
  CCF_REQUIRE(alpha > 0, "diffusivity must be positive");
  CCF_REQUIRE(dt > 0, "time step must be positive");
  CCF_REQUIRE(dt <= 1.0 / (4.0 * alpha),
              "explicit diffusion unstable: dt " << dt << " > 1/(4 alpha) = "
                                                 << 1.0 / (4.0 * alpha));
  halo_north_.assign(static_cast<std::size_t>(box_.cols()), 0.0);
  halo_south_.assign(static_cast<std::size_t>(box_.cols()), 0.0);
  halo_west_.assign(static_cast<std::size_t>(box_.rows()), 0.0);
  halo_east_.assign(static_cast<std::size_t>(box_.rows()), 0.0);
}

void HeatSolver2D::exchange_halos(runtime::ProcessContext& ctx) {
  const int pc = decomp_.proc_cols();
  const int gr = rank_ / pc;
  const int gc = rank_ % pc;

  struct Neighbour {
    bool exists;
    int rank;
    Dir send_dir;  ///< direction label at the receiver
  };
  const Neighbour north{gr > 0, rank_ - pc, South};
  const Neighbour south{gr + 1 < decomp_.proc_rows(), rank_ + pc, North};
  const Neighbour west{gc > 0, rank_ - 1, East};
  const Neighbour east{gc + 1 < pc, rank_ + 1, West};

  auto pack_row = [&](dist::Index r) {
    std::vector<double> row(static_cast<std::size_t>(box_.cols()));
    for (dist::Index c = box_.col_begin; c < box_.col_end; ++c) {
      row[static_cast<std::size_t>(c - box_.col_begin)] = curr_.at(r, c);
    }
    return row;
  };
  auto pack_col = [&](dist::Index c) {
    std::vector<double> col(static_cast<std::size_t>(box_.rows()));
    for (dist::Index r = box_.row_begin; r < box_.row_end; ++r) {
      col[static_cast<std::size_t>(r - box_.row_begin)] = curr_.at(r, c);
    }
    return col;
  };
  auto send_edge = [&](const Neighbour& n, std::vector<double> edge) {
    if (!n.exists) return;
    transport::Writer w;
    w.put_vector(edge);
    ctx.send(peers_[static_cast<std::size_t>(n.rank)], tag_base_ + n.send_dir, w.take());
  };
  send_edge(north, pack_row(box_.row_begin));
  send_edge(south, pack_row(box_.row_end - 1));
  send_edge(west, pack_col(box_.col_begin));
  send_edge(east, pack_col(box_.col_end - 1));

  auto recv_edge = [&](const Neighbour& n, Dir my_dir, std::vector<double>& halo) {
    if (!n.exists) {
      std::fill(halo.begin(), halo.end(), 0.0);
      return;
    }
    runtime::Message m = ctx.recv(
        runtime::MatchSpec{peers_[static_cast<std::size_t>(n.rank)], tag_base_ + my_dir});
    transport::Reader r(m.payload);
    halo = r.get_vector<double>();
  };
  recv_edge(north, North, halo_north_);
  recv_edge(south, South, halo_south_);
  recv_edge(west, West, halo_west_);
  recv_edge(east, East, halo_east_);
}

double HeatSolver2D::u_at(dist::Index r, dist::Index c) const {
  if (box_.contains(r, c)) return curr_.at(r, c);
  if (r < 0 || r >= decomp_.rows() || c < 0 || c >= decomp_.cols()) return 0.0;
  if (r == box_.row_begin - 1) return halo_north_[static_cast<std::size_t>(c - box_.col_begin)];
  if (r == box_.row_end) return halo_south_[static_cast<std::size_t>(c - box_.col_begin)];
  if (c == box_.col_begin - 1) return halo_west_[static_cast<std::size_t>(r - box_.row_begin)];
  if (c == box_.col_end) return halo_east_[static_cast<std::size_t>(r - box_.row_begin)];
  throw util::InternalError("stencil reached beyond the one-cell halo");
}

void HeatSolver2D::step(runtime::ProcessContext& ctx, const dist::DistArray2D<double>& f) {
  CCF_REQUIRE(f.local_box() == box_, "forcing field layout mismatch");
  exchange_halos(ctx);
  for (dist::Index r = box_.row_begin; r < box_.row_end; ++r) {
    for (dist::Index c = box_.col_begin; c < box_.col_end; ++c) {
      const double lap = u_at(r - 1, c) + u_at(r + 1, c) + u_at(r, c - 1) + u_at(r, c + 1) -
                         4.0 * curr_.at(r, c);
      next_.at(r, c) = curr_.at(r, c) + dt_ * (alpha_ * lap + f.at(r, c));
    }
  }
  std::swap(curr_, next_);
  ++steps_;
}

double HeatSolver2D::local_sum() const {
  double s = 0;
  const double* data = curr_.data();
  for (std::size_t i = 0; i < curr_.local_count(); ++i) s += data[i];
  return s;
}

double HeatSolver2D::local_max_abs() const {
  double m = 0;
  const double* data = curr_.data();
  for (std::size_t i = 0; i < curr_.local_count(); ++i) m = std::max(m, std::abs(data[i]));
  return m;
}

}  // namespace ccf::sim
