// Parallel solver for u_tt = u_xx + u_yy + f(t, x, y) — the receiving
// component (program U) of the paper's micro-benchmark (§5).
//
// Explicit leapfrog in time, 5-point Laplacian in space, Dirichlet-0
// boundaries; halo rows/columns are exchanged with grid neighbours through
// the ProcessContext transport each step (the intra-program communication
// that loosely synchronizes an SPMD component's processes, paper §5 end).
#pragma once

#include <vector>

#include "dist/dist_array.hpp"
#include "runtime/process_context.hpp"

namespace ccf::sim {

using runtime::ProcessContext;
using runtime::ProcId;
using runtime::Tag;

class WaveSolver2D {
 public:
  /// `peers[r]` is the global ProcId of program rank r. Halo messages use
  /// tags [tag_base, tag_base + 4).
  WaveSolver2D(const dist::BlockDecomposition& decomp, int rank, std::vector<ProcId> peers,
               double dt, Tag tag_base = 0x1000);

  /// Sets u(0) = u(-dt) = fn(r, c) (starts at rest).
  template <typename Fn>
  void set_initial(Fn&& fn) {
    curr_.fill(fn);
    prev_.fill(fn);
  }

  /// Advances one time step using the forcing field (same decomposition).
  void step(ProcessContext& ctx, const dist::DistArray2D<double>& f);

  const dist::DistArray2D<double>& u() const { return curr_; }
  int steps_taken() const { return steps_; }
  double time() const { return static_cast<double>(steps_) * dt_; }

  /// Sum of u^2 over the local block (combine with all_reduce for the
  /// global energy diagnostic).
  double local_energy() const;

 private:
  /// Exchanges edge rows/cols with the four grid neighbours.
  void exchange_halos(ProcessContext& ctx);

  /// u value at (r, c) looking through halos; global-boundary cells are 0.
  double u_at(dist::Index r, dist::Index c) const;

  dist::BlockDecomposition decomp_;
  int rank_;
  std::vector<ProcId> peers_;
  double dt_;
  Tag tag_base_;
  dist::Box box_;
  dist::DistArray2D<double> prev_;
  dist::DistArray2D<double> curr_;
  dist::DistArray2D<double> next_;
  std::vector<double> halo_north_, halo_south_, halo_west_, halo_east_;
  int steps_ = 0;
};

}  // namespace ccf::sim
