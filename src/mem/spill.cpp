#include "mem/spill.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "util/check.hpp"

namespace ccf::mem {
namespace fs = std::filesystem;

namespace {
// Several in-process "processes" (threads) may be configured with the same
// spill directory; a global token keeps their file names disjoint.
std::atomic<std::uint64_t> g_store_tokens{0};
}  // namespace

SpillStore::SpillStore(std::string directory)
    : dir_(std::move(directory)),
      store_token_(g_store_tokens.fetch_add(1, std::memory_order_relaxed)) {
  CCF_REQUIRE(!dir_.empty(), "spill directory must be non-empty");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  CCF_REQUIRE(!ec, "cannot create spill directory '" << dir_ << "': " << ec.message());
}

SpillStore::~SpillStore() {
  // Best-effort cleanup of files this store still owns; the directory itself
  // may be shared, so it is left in place.
  std::error_code ec;
  for (std::uint64_t id = 0; id < next_id_; ++id) {
    fs::remove(path_of(id), ec);
  }
}

std::string SpillStore::path_of(std::uint64_t id) const {
  return (fs::path(dir_) /
          ("s" + std::to_string(store_token_) + "_" + std::to_string(id) + ".spill"))
      .string();
}

SpillStore::Ticket SpillStore::put(const std::byte* data, std::size_t bytes) {
  Ticket ticket{next_id_++, bytes};
  const std::string path = path_of(ticket.id);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  CCF_CHECK(f != nullptr, "cannot open spill file '" << path << "' for writing");
  const std::size_t written = bytes == 0 ? 0 : std::fwrite(data, 1, bytes, f);
  const bool flushed = std::fclose(f) == 0;
  CCF_CHECK(written == bytes && flushed,
            "short write to spill file '" << path << "' (" << written << "/" << bytes
                                          << " bytes)");
  ++stats_.spills;
  stats_.bytes_spilled += bytes;
  ++stats_.live_entries;
  stats_.live_bytes += bytes;
  if (stats_.live_bytes > stats_.peak_live_bytes) stats_.peak_live_bytes = stats_.live_bytes;
  return ticket;
}

void SpillStore::restore(const Ticket& ticket, std::byte* dst) {
  const std::string path = path_of(ticket.id);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  CCF_CHECK(f != nullptr, "cannot open spill file '" << path << "' for reading");
  const std::size_t read = ticket.bytes == 0 ? 0 : std::fread(dst, 1, ticket.bytes, f);
  std::fclose(f);
  CCF_CHECK(read == ticket.bytes,
            "short read from spill file '" << path << "' (" << read << "/" << ticket.bytes
                                           << " bytes)");
  ++stats_.restores;
  erase(ticket);
}

void SpillStore::release(const Ticket& ticket) {
  ++stats_.releases;
  erase(ticket);
}

void SpillStore::erase(const Ticket& ticket) {
  std::error_code ec;
  fs::remove(path_of(ticket.id), ec);
  CCF_CHECK(stats_.live_entries > 0 && stats_.live_bytes >= ticket.bytes,
            "spill ticket accounting underflow");
  --stats_.live_entries;
  stats_.live_bytes -= ticket.bytes;
}

}  // namespace ccf::mem
