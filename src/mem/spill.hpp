// File-backed spill tier for cold-but-still-matchable snapshots.
//
// A governed exporter that cannot free a snapshot (the matcher cannot yet
// prove it non-matchable) demotes it here instead of holding it resident:
// the frame's bytes are written to a per-ticket file and the memory is
// reclaimed. On a late MATCH the bytes are restored verbatim — spilling is
// invisible to the protocol and to the wire (the restored frame is
// byte-identical, so aliased sends still ship exactly the snapshot the
// importer expects).
//
// One file per ticket keeps the store trivially correct under the
// framework's threaded execution modes: several in-process "processes"
// may share one spill directory, so filenames carry a per-store token.
// Tickets are released either on restore (the snapshot became a match) or
// directly (a buddy-help answer or low-water advance proved it can never
// match — the paper's minimal-copy set at work, one tier down).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ccf::mem {

struct SpillStats {
  std::uint64_t spills = 0;         ///< tickets written
  std::uint64_t restores = 0;       ///< tickets read back (late MATCH)
  std::uint64_t releases = 0;       ///< tickets dropped without a restore
  std::uint64_t bytes_spilled = 0;  ///< cumulative bytes written
  std::size_t live_entries = 0;
  std::size_t live_bytes = 0;
  std::size_t peak_live_bytes = 0;
};

class SpillStore {
 public:
  /// Creates (if needed) `directory` and anchors all spill files there.
  explicit SpillStore(std::string directory);

  /// Removes every still-live spill file (best effort).
  ~SpillStore();

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  struct Ticket {
    std::uint64_t id = 0;
    std::size_t bytes = 0;
  };

  /// Writes `bytes` of `data` to a fresh spill file. Throws util::Error on
  /// I/O failure (a full disk must fail loudly, not corrupt a snapshot).
  Ticket put(const std::byte* data, std::size_t bytes);

  /// Reads a ticket's bytes back into `dst` (byte-identical to what was
  /// written) and deletes the file.
  void restore(const Ticket& ticket, std::byte* dst);

  /// Deletes a ticket's file without reading it (the snapshot was proven
  /// non-matchable while spilled).
  void release(const Ticket& ticket);

  const std::string& directory() const { return dir_; }
  const SpillStats& stats() const { return stats_; }

 private:
  std::string path_of(std::uint64_t id) const;
  void erase(const Ticket& ticket);

  std::string dir_;
  std::uint64_t store_token_;  ///< disambiguates stores sharing a directory
  std::uint64_t next_id_ = 0;
  SpillStats stats_;
};

}  // namespace ccf::mem
