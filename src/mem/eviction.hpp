// Decidability-driven eviction planning (mirrors the paper's minimal-copy
// reasoning, §4.1).
//
// When a governed exporter must reclaim resident bytes, not all buffered
// snapshots are equal. The export-side state machine classifies each
// resident snapshot by what the REGL/REGU/REG evaluator (plus buddy-help
// answers) can prove about it:
//
//   NeverMatch — provably non-matchable by any current or future request.
//                The eager free paths normally reclaim these on the spot;
//                the planner lists the class first as a safety net, and
//                these are *freed*, not spilled.
//   FutureOnly — kept only because a hypothetical future request's region
//                could still reach down to it. Requests advance
//                monotonically, so the lowest timestamps are the least
//                likely to ever be named: spilled first, coldest first.
//   Candidate  — the current best candidate of an outstanding request; it
//                ships the moment the request resolves MATCH. Spilled only
//                as a last resort; candidates of *later* requests resolve
//                later, so higher timestamps go first.
//   Pinned     — an announced match awaiting shipment. Never evicted: the
//                send is imminent and a spill round-trip would only add a
//                copy.
//
// The planner is a pure function over this classification so the ranking
// is unit-testable without a running protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/timestamp.hpp"

namespace ccf::mem {

enum class EvictClass : std::uint8_t {
  NeverMatch = 0,
  FutureOnly = 1,
  Candidate = 2,
  Pinned = 3,
};

struct EvictionCandidate {
  core::Timestamp t = 0;
  std::size_t bytes = 0;
  EvictClass cls = EvictClass::FutureOnly;
};

struct EvictionPlan {
  /// Victims in eviction order; never contains a Pinned entry.
  std::vector<EvictionCandidate> victims;
  /// Total bytes the victims reclaim (may fall short of the request when
  /// too much is pinned — the caller then falls back to backpressure).
  std::size_t planned_bytes = 0;
};

/// Ranks `candidates` and selects victims until `bytes_needed` is covered
/// (or the evictable classes are exhausted).
EvictionPlan plan_evictions(std::vector<EvictionCandidate> candidates,
                            std::size_t bytes_needed);

/// Classifies one resident snapshot of one connection directly from the
/// matcher's pending-request interval index: Pinned when an announced
/// match awaits shipment, Candidate when the index holds the timestamp as
/// some outstanding request's best candidate (an O(log k) probe instead
/// of a scan over the outstanding queue), FutureOnly otherwise. A
/// template over the index type so mem/ stays below core/ in the
/// layering; the caller folds per-connection classes with the strictest
/// (highest) one winning.
template <class PendingIndex>
EvictClass classify_resident(const PendingIndex& pending, core::Timestamp t,
                             bool awaiting_shipment) {
  if (awaiting_shipment) return EvictClass::Pinned;
  if (pending.is_candidate(t)) return EvictClass::Candidate;
  return EvictClass::FutureOnly;
}

}  // namespace ccf::mem
