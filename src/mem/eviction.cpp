#include "mem/eviction.hpp"

#include <algorithm>

namespace ccf::mem {

EvictionPlan plan_evictions(std::vector<EvictionCandidate> candidates,
                            std::size_t bytes_needed) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const EvictionCandidate& a, const EvictionCandidate& b) {
                     if (a.cls != b.cls) return a.cls < b.cls;
                     // FutureOnly: coldest (lowest) timestamps first.
                     // Candidate: latest-resolving (highest) timestamps first.
                     if (a.cls == EvictClass::Candidate) return a.t > b.t;
                     return a.t < b.t;
                   });
  EvictionPlan plan;
  for (const EvictionCandidate& c : candidates) {
    if (plan.planned_bytes >= bytes_needed) break;
    if (c.cls == EvictClass::Pinned) continue;
    plan.victims.push_back(c);
    plan.planned_bytes += c.bytes;
  }
  return plan;
}

}  // namespace ccf::mem
