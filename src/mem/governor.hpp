// Per-process buffer-memory governance (ROADMAP: bounded-memory exporting).
//
// The paper's cost model makes export-side buffering the dominant cost of
// loose coupling, but the seed implementation buffers without any budget:
// a slow or stalled importer grows exporter memory without bound. The
// MemoryGovernor gives each exporting process a byte budget for resident
// snapshot frames, with low/high watermarks that drive the collective
// BufferPressure protocol (see docs/MEMORY.md):
//
//   * every BufferPool charges its resident snapshot bytes here, so the
//     budget spans all exported regions of the process;
//   * crossing the high watermark raises "pressure" (the process tells its
//     rep, which aggregates across ranks and notifies connected importing
//     programs so they throttle request rates);
//   * pressure clears only once usage falls back below the low watermark —
//     the hysteresis band keeps the control traffic from flapping.
//
// The governor is pure accounting: it never blocks and never frees
// anything itself. Deciding *what* to reclaim is the eviction planner's
// job (mem/eviction.hpp); deciding *when* to stall is the runtime's.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/check.hpp"

namespace ccf::mem {

struct GovernorStats {
  std::size_t charged_bytes = 0;       ///< currently resident (charged) bytes
  std::size_t peak_charged_bytes = 0;  ///< high-water mark over the run
  std::uint64_t pressure_raises = 0;   ///< off -> on transitions
  std::uint64_t pressure_clears = 0;   ///< on -> off transitions
  std::uint64_t budget_denials = 0;    ///< would_fit() calls answered "no"
};

class MemoryGovernor {
 public:
  /// `budget_bytes` caps resident snapshot bytes across the process's
  /// regions. Watermarks are fractions of the budget with low <= high.
  MemoryGovernor(std::size_t budget_bytes, double low_watermark, double high_watermark)
      : budget_(budget_bytes),
        low_bytes_(static_cast<std::size_t>(low_watermark * static_cast<double>(budget_bytes))),
        high_bytes_(
            static_cast<std::size_t>(high_watermark * static_cast<double>(budget_bytes))) {
    CCF_REQUIRE(budget_bytes > 0, "memory budget must be positive");
    CCF_REQUIRE(low_watermark >= 0 && low_watermark <= high_watermark && high_watermark <= 1.0,
                "watermarks must satisfy 0 <= low <= high <= 1, got low="
                    << low_watermark << " high=" << high_watermark);
  }

  std::size_t budget_bytes() const { return budget_; }

  /// True when a new resident allocation of `bytes` stays within budget.
  bool would_fit(std::size_t bytes) {
    if (stats_.charged_bytes + bytes <= budget_) return true;
    ++stats_.budget_denials;
    return false;
  }

  /// Bytes that must be reclaimed before `bytes` more can become resident
  /// (0 when it already fits).
  std::size_t shortfall(std::size_t bytes) const {
    const std::size_t want = stats_.charged_bytes + bytes;
    return want > budget_ ? want - budget_ : 0;
  }

  /// Accounts `bytes` becoming resident. Charging may exceed the budget:
  /// the runtime deliberately soft-exceeds when stalling would deadlock
  /// the collective protocol (see CouplingRuntime::export_region).
  void charge(std::size_t bytes) {
    stats_.charged_bytes += bytes;
    if (stats_.charged_bytes > stats_.peak_charged_bytes) {
      stats_.peak_charged_bytes = stats_.charged_bytes;
    }
    update_pressure();
  }

  /// Accounts `bytes` leaving residency (freed or spilled).
  void release(std::size_t bytes) {
    CCF_CHECK(bytes <= stats_.charged_bytes,
              "governor release of " << bytes << " bytes exceeds charged "
                                     << stats_.charged_bytes);
    stats_.charged_bytes -= bytes;
    update_pressure();
  }

  /// Current pressure level (with hysteresis): raised at the high
  /// watermark, cleared at the low watermark.
  bool under_pressure() const { return pressure_; }

  /// True when the pressure level changed since the last call — the
  /// runtime polls this to emit exactly one control message per edge.
  bool consume_pressure_edge() {
    const bool edge = pressure_ != signaled_pressure_;
    signaled_pressure_ = pressure_;
    return edge;
  }

  const GovernorStats& stats() const { return stats_; }

 private:
  void update_pressure() {
    if (!pressure_ && stats_.charged_bytes >= high_bytes_) {
      pressure_ = true;
      ++stats_.pressure_raises;
    } else if (pressure_ && stats_.charged_bytes <= low_bytes_) {
      pressure_ = false;
      ++stats_.pressure_clears;
    }
  }

  std::size_t budget_;
  std::size_t low_bytes_;
  std::size_t high_bytes_;
  bool pressure_ = false;
  bool signaled_pressure_ = false;
  GovernorStats stats_;
};

}  // namespace ccf::mem
