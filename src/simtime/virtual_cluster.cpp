#include "simtime/virtual_cluster.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"
#include "util/log.hpp"

namespace ccf::simtime {

namespace {
/// Internal unwind signal used to tear down process threads when the
/// cluster aborts (deadlock or another process threw). Never escapes run().
struct ClusterAborted {};
}  // namespace

// ---------------------------------------------------------------------------
// SimContext thin forwarding layer
// ---------------------------------------------------------------------------

SimTime SimContext::now() const { return cluster_->ctx_now(id_); }
void SimContext::advance(SimTime dt) { cluster_->ctx_advance(id_, dt); }
void SimContext::send(ProcId dst, Tag tag, Payload payload) {
  cluster_->ctx_send(id_, dst, tag, std::move(payload));
}
Message SimContext::recv(const MatchSpec& spec) { return cluster_->ctx_recv(id_, spec); }
std::optional<Message> SimContext::try_recv(const MatchSpec& spec) {
  return cluster_->ctx_try_recv(id_, spec);
}
bool SimContext::probe(const MatchSpec& spec) { return cluster_->ctx_probe(id_, spec); }
std::optional<Message> SimContext::recv_until(const MatchSpec& spec, SimTime deadline) {
  return cluster_->ctx_recv_until(id_, spec, deadline);
}

// ---------------------------------------------------------------------------
// VirtualCluster
// ---------------------------------------------------------------------------

VirtualCluster::VirtualCluster(Options options) : options_(std::move(options)) {
  CCF_REQUIRE(options_.latency != nullptr, "cluster needs a latency model");
}

VirtualCluster::~VirtualCluster() {
  // run() always joins; but if run() was never called, no threads exist.
}

void VirtualCluster::add_process(ProcId id, std::function<void(SimContext&)> body) {
  std::lock_guard<std::mutex> lock(mutex_);
  CCF_REQUIRE(!started_, "cannot add processes after run()");
  CCF_REQUIRE(id >= 0, "process id must be non-negative, got " << id);
  CCF_REQUIRE(!procs_.count(id), "duplicate process id " << id);
  CCF_REQUIRE(body != nullptr, "process body must be callable");
  auto proc = std::make_unique<Proc>();
  proc->id = id;
  proc->body = std::move(body);
  procs_.emplace(id, std::move(proc));
  proc_order_.push_back(id);
}

VirtualCluster::Proc& VirtualCluster::proc_of(ProcId id) {
  auto it = procs_.find(id);
  CCF_CHECK(it != procs_.end(), "unknown proc id " << id);
  return *it->second;
}

void VirtualCluster::push_event_locked(Event e) {
  e.seq = next_seq_++;
  events_.push(std::move(e));
}

std::optional<Message> VirtualCluster::take_from_inbox_locked(Proc& proc, const MatchSpec& spec) {
  for (auto it = proc.inbox.begin(); it != proc.inbox.end(); ++it) {
    if (spec.matches(*it)) {
      Message m = std::move(*it);
      proc.inbox.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

void VirtualCluster::yield_locked(std::unique_lock<std::mutex>& lock, Proc& proc) {
  proc.can_run = false;
  scheduler_cv_.notify_all();
  proc.cv.wait(lock, [&] { return proc.can_run || aborting_; });
  if (aborting_) throw ClusterAborted{};
}

// --- SimContext backends (called on process threads) -----------------------

SimTime VirtualCluster::ctx_now(ProcId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  return proc_of(id).now;
}

void VirtualCluster::ctx_advance(ProcId id, SimTime dt) {
  CCF_REQUIRE(dt >= 0.0, "advance by negative time " << dt);
  std::unique_lock<std::mutex> lock(mutex_);
  Proc& proc = proc_of(id);
  proc.state = ProcState::Yielded;
  push_event_locked(Event{proc.now + dt, 0, Event::Kind::Resume, id, {}});
  yield_locked(lock, proc);
}

void VirtualCluster::ctx_send(ProcId src, ProcId dst, Tag tag, Payload payload) {
  std::unique_lock<std::mutex> lock(mutex_);
  CCF_REQUIRE(procs_.count(dst), "send to unknown process id " << dst);
  Proc& sender = proc_of(src);
  Message m;
  m.src = src;
  m.dst = dst;
  m.tag = tag;
  m.payload = payload ? std::move(payload) : transport::empty_payload();
  double delay = options_.latency->delay_seconds(m.size_bytes());
  if (options_.faults) {
    const transport::FaultDecision d = options_.faults->decide(src, dst, tag);
    if (d.drop) return;  // vanishes in flight
    delay += d.extra_delay_seconds;  // may reorder past later sends
    if (d.duplicate) {
      Message copy = m;
      push_event_locked(Event{sender.now + delay, 0, Event::Kind::Delivery, dst, std::move(copy)});
    }
  }
  push_event_locked(Event{sender.now + delay, 0, Event::Kind::Delivery, dst, std::move(m)});
}

Message VirtualCluster::ctx_recv(ProcId id, const MatchSpec& spec) {
  std::unique_lock<std::mutex> lock(mutex_);
  Proc& proc = proc_of(id);
  for (;;) {
    if (auto m = take_from_inbox_locked(proc, spec)) return std::move(*m);
    proc.state = ProcState::WaitingRecv;
    proc.wait_spec = spec;
    proc.has_deadline = false;
    yield_locked(lock, proc);
  }
}

std::optional<Message> VirtualCluster::ctx_try_recv(ProcId id, const MatchSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Proc& proc = proc_of(id);
  for (auto it = proc.inbox.begin(); it != proc.inbox.end(); ++it) {
    if (spec.matches(*it)) {
      Message m = std::move(*it);
      proc.inbox.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

bool VirtualCluster::ctx_probe(ProcId id, const MatchSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Proc& proc = proc_of(id);
  return std::any_of(proc.inbox.begin(), proc.inbox.end(),
                     [&](const Message& m) { return spec.matches(m); });
}

std::optional<Message> VirtualCluster::ctx_recv_until(ProcId id, const MatchSpec& spec,
                                                      SimTime deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  Proc& proc = proc_of(id);
  for (;;) {
    if (auto m = take_from_inbox_locked(proc, spec)) return std::move(*m);
    if (proc.now >= deadline) return std::nullopt;
    proc.state = ProcState::WaitingRecv;
    proc.wait_spec = spec;
    proc.has_deadline = true;
    proc.deadline = deadline;
    proc.woke_by_deadline = false;
    Event e{deadline, 0, Event::Kind::Deadline, id, {}};
    e.gen = ++proc.deadline_gen;
    push_event_locked(std::move(e));
    yield_locked(lock, proc);
    if (proc.woke_by_deadline) {
      // One more scan: a message may have been delivered exactly at the
      // deadline tick before our resume.
      if (auto m = take_from_inbox_locked(proc, spec)) return std::move(*m);
      return std::nullopt;
    }
  }
}

// --- scheduler --------------------------------------------------------------

void VirtualCluster::resume_and_wait(Proc& proc, SimTime at_time) {
  // mutex_ is held by the caller (scheduler_loop) via unique_lock; we are
  // called with the lock held. Transfer control to the process thread and
  // wait until it yields/blocks/finishes.
  proc.now = std::max(proc.now, at_time);
  end_time_ = std::max(end_time_, proc.now);
  proc.state = ProcState::Running;
  proc.can_run = true;
  proc.cv.notify_all();
}

std::string VirtualCluster::deadlock_report_locked() const {
  std::ostringstream os;
  os << "virtual cluster deadlock: no events pending, blocked processes:";
  for (ProcId id : proc_order_) {
    const Proc& p = *procs_.at(id);
    if (p.state == ProcState::WaitingRecv) {
      os << " [proc " << id << " waiting at t=" << p.now << " for src="
         << p.wait_spec.src << " tag=" << p.wait_spec.tag << "]";
    }
  }
  return os.str();
}

void VirtualCluster::run() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CCF_REQUIRE(!started_, "run() called twice");
    CCF_REQUIRE(!procs_.empty(), "no processes registered");
    started_ = true;
    // Seed: every process becomes runnable at t=0 in registration order.
    for (ProcId id : proc_order_) {
      push_event_locked(Event{0.0, 0, Event::Kind::Resume, id, {}});
    }
  }

  // Spawn process threads; each waits for its first resume.
  for (ProcId id : proc_order_) {
    Proc& proc = proc_of(id);
    proc.thread = std::thread([this, &proc] {
      SimContext ctx(this, proc.id);
      {
        std::unique_lock<std::mutex> lock(mutex_);
        proc.cv.wait(lock, [&] { return proc.can_run || aborting_; });
        if (aborting_) {
          proc.state = ProcState::Finished;
          ++finished_count_;
          scheduler_cv_.notify_all();
          return;
        }
      }
      try {
        proc.body(ctx);
      } catch (const ClusterAborted&) {
        // normal teardown path
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
        aborting_ = true;
        for (ProcId other : proc_order_) procs_.at(other)->cv.notify_all();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      proc.state = ProcState::Finished;
      ++finished_count_;
      scheduler_cv_.notify_all();
    });
  }

  // Scheduler loop (on the caller's thread).
  {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!aborting_ && finished_count_ < procs_.size()) {
      if (events_.empty()) {
        // Nothing scheduled: either all remaining procs are waiting on
        // messages that will never arrive (deadlock), or a proc is mid-
        // transition. All transitions happen under the mutex, so empty
        // queue + nobody Running/Yielded == deadlock.
        bool any_active = false;
        for (ProcId id : proc_order_) {
          const auto st = procs_.at(id)->state;
          if (st == ProcState::Running || st == ProcState::Yielded) any_active = true;
        }
        if (!any_active) {
          const std::string report = deadlock_report_locked();
          aborting_ = true;
          for (ProcId id : proc_order_) procs_.at(id)->cv.notify_all();
          lock.unlock();
          for (ProcId id : proc_order_) {
            auto& t = procs_.at(id)->thread;
            if (t.joinable()) t.join();
          }
          throw DeadlockError(report);
        }
        // A process yielded but its resume event is not yet pushed — cannot
        // happen (push precedes yield); defensive wait.
        scheduler_cv_.wait(lock);
        continue;
      }

      if (++events_processed_ > options_.max_events) {
        aborting_ = true;
        for (ProcId id : proc_order_) procs_.at(id)->cv.notify_all();
        lock.unlock();
        for (ProcId id : proc_order_) {
          auto& t = procs_.at(id)->thread;
          if (t.joinable()) t.join();
        }
        throw util::InternalError("virtual cluster exceeded max_events (" +
                                  std::to_string(options_.max_events) + ")");
      }

      Event ev = events_.top();
      events_.pop();

      if (options_.journal && journal_.size() < options_.journal_max) {
        JournalEntry entry;
        entry.time = ev.time;
        entry.proc = ev.proc;
        switch (ev.kind) {
          case Event::Kind::Resume: entry.kind = JournalEntry::Kind::Resume; break;
          case Event::Kind::Deadline: entry.kind = JournalEntry::Kind::Deadline; break;
          case Event::Kind::Delivery:
            entry.kind = JournalEntry::Kind::Delivery;
            entry.src = ev.message.src;
            entry.tag = ev.message.tag;
            entry.bytes = ev.message.size_bytes();
            break;
        }
        journal_.push_back(entry);
      }

      switch (ev.kind) {
        case Event::Kind::Delivery: {
          Proc& dst = proc_of(ev.proc);
          if (dst.state == ProcState::Finished) break;  // late message, drop
          ++messages_delivered_;
          const bool was_waiting_match =
              dst.state == ProcState::WaitingRecv && dst.wait_spec.matches(ev.message);
          dst.inbox.push_back(std::move(ev.message));
          if (was_waiting_match) {
            dst.state = ProcState::Yielded;
            push_event_locked(Event{std::max(dst.now, ev.time), 0, Event::Kind::Resume,
                                    dst.id, {}});
          }
          break;
        }
        case Event::Kind::Deadline: {
          Proc& p = proc_of(ev.proc);
          if (p.state == ProcState::WaitingRecv && p.has_deadline &&
              p.deadline_gen == ev.gen) {
            p.woke_by_deadline = true;
            p.state = ProcState::Yielded;
            push_event_locked(Event{std::max(p.now, ev.time), 0, Event::Kind::Resume,
                                    p.id, {}});
          }
          break;
        }
        case Event::Kind::Resume: {
          Proc& p = proc_of(ev.proc);
          if (p.state == ProcState::Finished) break;
          CCF_CHECK(p.state == ProcState::Yielded || p.state == ProcState::NotStarted,
                    "resume of proc " << p.id << " in unexpected state");
          resume_and_wait(p, ev.time);
          // Wait until the process gives control back.
          scheduler_cv_.wait(lock, [&] {
            return p.state != ProcState::Running || aborting_;
          });
          break;
        }
      }
    }

    if (aborting_) {
      for (ProcId id : proc_order_) procs_.at(id)->cv.notify_all();
    }
  }

  for (ProcId id : proc_order_) {
    auto& t = procs_.at(id)->thread;
    if (t.joinable()) t.join();
  }

  if (first_error_) std::rethrow_exception(first_error_);
}

std::string VirtualCluster::journal_listing() const {
  std::ostringstream os;
  for (const auto& e : journal_) {
    os << e.time << " ";
    switch (e.kind) {
      case JournalEntry::Kind::Resume:
        os << "resume proc " << e.proc;
        break;
      case JournalEntry::Kind::Delivery:
        os << "deliver " << e.src << " -> " << e.proc << " tag " << e.tag << " (" << e.bytes
           << " B)";
        break;
      case JournalEntry::Kind::Deadline:
        os << "deadline proc " << e.proc;
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ccf::simtime
