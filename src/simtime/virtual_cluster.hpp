// Deterministic virtual-time execution of a simulated cluster.
//
// Every simulated process runs on its own OS thread, but the scheduler
// enforces *sequential, time-ordered* execution: exactly one process thread
// is runnable at any instant, always the one with the smallest virtual
// timestamp (ties broken by insertion order). Virtual time only advances
// when a process calls advance(); messages are delivered after a delay
// charged by the cluster's LatencyModel. The result is a conservative
// discrete-event simulation whose event order — and therefore every
// experiment built on it — is bit-for-bit reproducible, independent of the
// host's core count or load.
//
// This is the substitution for the paper's physical cluster (see DESIGN.md):
// buddy-help's benefit depends only on relative process progress rates,
// buffering costs, and message latencies, all of which are modeled here.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "transport/fault.hpp"
#include "transport/latency.hpp"
#include "transport/message.hpp"
#include "util/check.hpp"

namespace ccf::simtime {

using SimTime = double;  ///< virtual seconds
using transport::MatchSpec;
using transport::Message;
using transport::Payload;
using transport::ProcId;
using transport::Tag;

class VirtualCluster;

/// Handle a simulated process body uses to interact with virtual time and
/// the network. Only valid on the thread running that process body.
class SimContext {
 public:
  ProcId id() const { return id_; }
  SimTime now() const;

  /// Consumes `dt` virtual seconds of computation and yields to any process
  /// whose next event is earlier.
  void advance(SimTime dt);

  /// Non-blocking send. The message is delivered to `dst` after the
  /// cluster latency model's delay (payload-size dependent).
  void send(ProcId dst, Tag tag, Payload payload);

  /// Blocks (in virtual time) until a matching message has been delivered;
  /// the process resumes no earlier than the message's delivery time.
  Message recv(const MatchSpec& spec);

  /// Takes a matching message already delivered by now(), else nullopt.
  std::optional<Message> try_recv(const MatchSpec& spec);

  /// True if a matching message has been delivered by now().
  bool probe(const MatchSpec& spec);

  /// Blocks until either a matching message is available (returned) or the
  /// virtual deadline passes (nullopt). Used for rep polling loops.
  std::optional<Message> recv_until(const MatchSpec& spec, SimTime deadline);

 private:
  friend class VirtualCluster;
  SimContext(VirtualCluster* cluster, ProcId id) : cluster_(cluster), id_(id) {}

  VirtualCluster* cluster_;
  ProcId id_;
};

/// Thrown by run() when all remaining processes are blocked in recv() and
/// no deliveries are in flight.
class DeadlockError : public util::Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

class VirtualCluster {
 public:
  struct Options {
    std::shared_ptr<const transport::LatencyModel> latency = transport::zero_model();
    /// Optional seeded fault injector: sends may be dropped, duplicated,
    /// or delayed (a delay in virtual time realises reordering).
    std::shared_ptr<transport::FaultInjector> faults;
    /// Hard cap on total events processed; guards against runaway loops.
    std::uint64_t max_events = 500'000'000;
    /// Record every processed event into an inspectable journal (bounded
    /// by journal_max). Two runs of the same deterministic workload
    /// produce identical journals — diffing them localizes divergence.
    bool journal = false;
    std::size_t journal_max = 1 << 20;
  };

  /// One processed scheduler event (journaling enabled via Options).
  struct JournalEntry {
    SimTime time = 0;
    enum class Kind : std::uint8_t { Resume, Delivery, Deadline } kind = Kind::Resume;
    ProcId proc = -1;  ///< resumed/receiving process
    ProcId src = -1;   ///< sender (Delivery only)
    Tag tag = 0;       ///< message tag (Delivery only)
    std::size_t bytes = 0;

    friend bool operator==(const JournalEntry& a, const JournalEntry& b) {
      return a.time == b.time && a.kind == b.kind && a.proc == b.proc && a.src == b.src &&
             a.tag == b.tag && a.bytes == b.bytes;
    }
  };

  VirtualCluster() : VirtualCluster(Options{}) {}
  explicit VirtualCluster(Options options);
  ~VirtualCluster();

  VirtualCluster(const VirtualCluster&) = delete;
  VirtualCluster& operator=(const VirtualCluster&) = delete;

  /// Registers a process; bodies start executing when run() is called.
  void add_process(ProcId id, std::function<void(SimContext&)> body);

  /// Runs every process to completion in deterministic virtual-time order.
  /// Rethrows the first exception a process body threw; throws
  /// DeadlockError if processes are mutually blocked.
  void run();

  /// Largest virtual time any process reached (valid after run()).
  SimTime end_time() const { return end_time_; }

  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }

  /// Recorded events (empty unless Options::journal). Valid after run().
  const std::vector<JournalEntry>& journal() const { return journal_; }

  /// Human-readable journal rendering (one line per event).
  std::string journal_listing() const;

 private:
  friend class SimContext;

  enum class ProcState { NotStarted, Running, Yielded, WaitingRecv, Finished };

  struct Proc {
    ProcId id;
    std::function<void(SimContext&)> body;
    std::thread thread;
    SimTime now = 0.0;
    ProcState state = ProcState::NotStarted;
    MatchSpec wait_spec;  ///< valid while WaitingRecv
    bool has_deadline = false;
    SimTime deadline = 0.0;
    bool woke_by_deadline = false;
    std::uint64_t deadline_gen = 0;  ///< invalidates stale Deadline events
    std::deque<Message> inbox;  ///< messages already delivered (<= proc time)
    std::condition_variable cv;
    bool can_run = false;  ///< handed control by the scheduler
  };

  struct Event {
    SimTime time;
    std::uint64_t seq;  ///< tie-breaker: insertion order
    enum class Kind { Resume, Delivery, Deadline } kind;
    ProcId proc;      ///< Resume/Deadline target
    Message message;  ///< Delivery payload
    std::uint64_t gen = 0;  ///< Deadline generation (see Proc::deadline_gen)

    struct Later {
      bool operator()(const Event& a, const Event& b) const {
        if (a.time != b.time) return a.time > b.time;
        return a.seq > b.seq;
      }
    };
  };

  // --- called from process threads (hold mutex_) ---
  void yield_locked(std::unique_lock<std::mutex>& lock, Proc& proc);
  void push_event_locked(Event e);
  Proc& proc_of(ProcId id);
  std::optional<Message> take_from_inbox_locked(Proc& proc, const MatchSpec& spec);

  // SimContext backends
  SimTime ctx_now(ProcId id);
  void ctx_advance(ProcId id, SimTime dt);
  void ctx_send(ProcId src, ProcId dst, Tag tag, Payload payload);
  Message ctx_recv(ProcId id, const MatchSpec& spec);
  std::optional<Message> ctx_try_recv(ProcId id, const MatchSpec& spec);
  bool ctx_probe(ProcId id, const MatchSpec& spec);
  std::optional<Message> ctx_recv_until(ProcId id, const MatchSpec& spec, SimTime deadline);

  // --- scheduler side ---
  void scheduler_loop();
  void resume_and_wait(Proc& proc, SimTime at_time);
  std::string deadlock_report_locked() const;

  Options options_;
  std::mutex mutex_;
  std::condition_variable scheduler_cv_;
  std::unordered_map<ProcId, std::unique_ptr<Proc>> procs_;
  std::vector<ProcId> proc_order_;
  std::priority_queue<Event, std::vector<Event>, Event::Later> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::vector<JournalEntry> journal_;
  SimTime end_time_ = 0.0;
  bool started_ = false;
  bool aborting_ = false;
  std::exception_ptr first_error_;
  std::size_t finished_count_ = 0;
};

}  // namespace ccf::simtime
