// Run-report formatting: renders a completed CoupledSystem's per-process
// statistics (exports, buffering behaviour, buddy-help activity, imports)
// as aligned tables, and optionally as CSV for downstream analysis.
#pragma once

#include <iosfwd>
#include <string>

#include "core/system.hpp"

namespace ccf::core {

/// Prints one table per program: export rows (region, exports, memcpys,
/// skips, transfers, helps, stalls, T_ub) and import rows (region,
/// imports, matches, no-matches).
void print_run_report(const CoupledSystem& system, std::ostream& os);

/// Writes the same data as CSV rows:
///   program,rank,kind,region,exports,memcpys,skips,transfers,helps,
///   stalls,t_ub_seconds,imports,matches,no_matches,...
/// plus one kind=rep row per program (rank -1) carrying the control
/// plane's per-message-class totals: rep_requests, rep_answers,
/// rep_helps, rep_pressure (summed across rep shards). Every row ends
/// with a `transport` column naming the fabric the program's traffic
/// rode: sim (modeled), shm, or tcp (CoupledSystem::transport_kind).
void write_run_report_csv(const CoupledSystem& system, const std::string& path);

}  // namespace ccf::core
