#include "core/system.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/result_codec.hpp"
#include "util/check.hpp"

namespace ccf::core {

namespace {

/// Folds per-shard rep results into one program-wide view: counters are
/// summed and answers re-grouped by connection (each shard already lists
/// its owned connections' answers in determination order, so a stable sort
/// by connection reproduces the single-shard ordering).
RepResult merge_rep_shards(std::vector<RepResult>& shards) {
  if (shards.size() == 1) return std::move(shards.front());
  RepResult merged;
  for (RepResult& s : shards) {
    merged.requests_forwarded += s.requests_forwarded;
    merged.answers_sent += s.answers_sent;
    merged.buddy_helps_sent += s.buddy_helps_sent;
    merged.responses_received += s.responses_received;
    merged.duplicates_ignored += s.duplicates_ignored;
    merged.answers_resent += s.answers_resent;
    merged.heartbeats_sent += s.heartbeats_sent;
    merged.meta_resends += s.meta_resends;
    merged.forward_resends += s.forward_resends;
    merged.pressure_signals += s.pressure_signals;
    merged.pressure_notices += s.pressure_notices;
    merged.pressure_broadcasts += s.pressure_broadcasts;
    merged.wire_in += s.wire_in;
    merged.frames_in += s.frames_in;
    merged.frame_entries_in += s.frame_entries_in;
    merged.frames_out += s.frames_out;
    merged.frame_entries_out += s.frame_entries_out;
    merged.answers.insert(merged.answers.end(), s.answers.begin(), s.answers.end());
  }
  std::stable_sort(merged.answers.begin(), merged.answers.end(),
                   [](const AnswerMsg& a, const AnswerMsg& b) { return a.conn < b.conn; });
  return merged;
}

}  // namespace

CoupledSystem::CoupledSystem(Config config, runtime::ClusterOptions cluster_options,
                             FrameworkOptions framework_options)
    : config_(std::move(config)),
      cluster_options_(cluster_options),
      framework_options_(framework_options),
      layout_(config_) {
  config_.validate();
  runtime::apply_env_overrides(cluster_options_);
  configure_transport();
  for (const auto& prog : config_.programs()) {
    slots_[prog.name].resize(static_cast<std::size_t>(prog.nprocs));
    rep_results_[prog.name] = RepResult{};
    subrep_results_[prog.name] = SubRepResult{};
  }
}

void CoupledSystem::configure_transport() {
  // Forked children cannot share the in-memory fabric; make the selection
  // visible here so transport_kind() and the maps below agree with what
  // ProcessCluster will actually run.
  if (cluster_options_.mode == runtime::ExecutionMode::RealProcesses) {
    cluster_options_.transport.kind = transport::TransportKind::Real;
  }

  // Node assignment (docs/DEPLOY.md): CCF_NODES=split puts every program
  // on its own node; the default ("hosts") maps each distinct config host
  // string to one node, so the config's deployment section chooses which
  // pairs ride SHM and which ride TCP.
  const char* env = std::getenv("CCF_NODES");
  const std::string nodes = env == nullptr ? "" : env;
  CCF_REQUIRE(nodes.empty() || nodes == "hosts" || nodes == "split",
              "CCF_NODES must be 'hosts' or 'split', got '" << nodes << "'");
  const bool split = nodes == "split";

  std::map<std::string, int> host_node;
  auto& t = cluster_options_.transport;
  for (std::size_t i = 0; i < config_.programs().size(); ++i) {
    const ProgramSpec& prog = config_.programs()[i];
    int node = 0;
    if (split) {
      node = static_cast<int>(i);
    } else {
      node = host_node.try_emplace(prog.host, static_cast<int>(host_node.size())).first->second;
    }
    program_node_[prog.name] = node;

    const ProgramLayout& pl = layout_.program(prog.name);
    for (int rank = 0; rank < pl.nprocs; ++rank) {
      t.node_of.try_emplace(pl.proc(rank), node);
      t.identity.try_emplace(pl.proc(rank), prog.name + "/" + std::to_string(rank));
    }
    for (int s = 0; s < pl.shards; ++s) {
      t.node_of.try_emplace(pl.shard_id(s), node);
      t.identity.try_emplace(pl.shard_id(s), prog.name + "/rep" + std::to_string(s));
    }
    for (std::size_t tn = 0; tn < pl.tree.size(); ++tn) {
      const ProcId id = pl.subrep(static_cast<int>(tn));
      t.node_of.try_emplace(id, node);
      t.identity.try_emplace(id, prog.name + "/sub" + std::to_string(tn));
    }
  }
}

std::string CoupledSystem::transport_kind(const std::string& program) const {
  CCF_REQUIRE(config_.has_program(program), "unknown program '" << program << "'");
  const bool modeled =
      cluster_options_.mode == runtime::ExecutionMode::VirtualTime ||
      cluster_options_.transport.kind == transport::TransportKind::InMemory;
  if (modeled) return "sim";
  const int node = program_node_.at(program);
  for (int c : config_.connections_of_exporter_program(program)) {
    if (program_node_.at(config_.connections()[static_cast<std::size_t>(c)].importer_program) !=
        node) {
      return "tcp";
    }
  }
  for (int c : config_.connections_of_importer_program(program)) {
    if (program_node_.at(config_.connections()[static_cast<std::size_t>(c)].exporter_program) !=
        node) {
      return "tcp";
    }
  }
  return "shm";
}

void CoupledSystem::set_program_body(const std::string& program, ProgramBody body) {
  CCF_REQUIRE(config_.has_program(program), "no program '" << program << "' in config");
  CCF_REQUIRE(body != nullptr, "program body must be callable");
  bodies_[program] = std::move(body);
}

void CoupledSystem::run() {
  CCF_REQUIRE(!ran_, "run() called twice");
  for (const auto& prog : config_.programs()) {
    CCF_REQUIRE(bodies_.count(prog.name), "program '" << prog.name << "' has no body");
  }
  ran_ = true;

  auto cluster = runtime::make_cluster(cluster_options_);
  for (const auto& prog : config_.programs()) {
    const ProgramLayout& pl = layout_.program(prog.name);
    for (int rank = 0; rank < pl.nprocs; ++rank) {
      const std::string name = prog.name;
      ProcSlot* slot = &slots_[name][static_cast<std::size_t>(rank)];
      ProgramBody* body = &bodies_[name];
      cluster->add_process(
          pl.proc(rank),
          [this, name, rank, slot, body](runtime::ProcessContext& ctx) {
            CouplingRuntime rt(ctx, config_, layout_, name, rank, framework_options_);
            (*body)(rt, ctx);
            slot->stats = rt.stats_snapshot();
            for (const auto& stats : slot->stats.exports) {
              slot->traces[stats.region] = rt.trace_listing(stats.region);
              slot->events[stats.region] = rt.trace_events(stats.region);
            }
          },
          runtime::ResultChannel{
              [slot] { return encode_proc_result(slot->stats, slot->traces, slot->events); },
              [slot](const std::vector<std::byte>& bytes) {
                decode_proc_result(bytes, slot->stats, slot->traces, slot->events);
              }});
    }
    const std::string name = prog.name;
    auto& shard_slots = rep_shard_results_[name];
    shard_slots.resize(static_cast<std::size_t>(pl.shards));
    for (int s = 0; s < pl.shards; ++s) {
      RepResult* shard_slot = &shard_slots[static_cast<std::size_t>(s)];
      cluster->add_process(
          pl.shard_id(s),
          [this, name, s, shard_slot](runtime::ProcessContext& ctx) {
            *shard_slot = run_rep(ctx, config_, layout_, name, framework_options_, s);
          },
          runtime::ResultChannel{
              [shard_slot] { return encode_rep_result(*shard_slot); },
              [shard_slot](const std::vector<std::byte>& bytes) {
                *shard_slot = decode_rep_result(bytes);
              }});
    }
    auto& node_slots = subrep_node_results_[name];
    node_slots.resize(pl.tree.size());
    for (std::size_t node = 0; node < pl.tree.size(); ++node) {
      SubRepResult* node_slot = &node_slots[node];
      cluster->add_process(
          pl.subrep(static_cast<int>(node)),
          [this, name, node, node_slot](runtime::ProcessContext& ctx) {
            *node_slot = run_subrep(ctx, config_, layout_, name, static_cast<int>(node),
                                    framework_options_);
          },
          runtime::ResultChannel{
              [node_slot] { return encode_subrep_result(*node_slot); },
              [node_slot](const std::vector<std::byte>& bytes) {
                *node_slot = decode_subrep_result(bytes);
              }});
    }
  }
  cluster->run();
  end_time_ = cluster->end_time();
  transport_counters_ = cluster->transport_counters();
  for (auto& [name, shards] : rep_shard_results_) {
    rep_results_[name] = merge_rep_shards(shards);
  }
  for (auto& [name, nodes] : subrep_node_results_) {
    SubRepResult& total = subrep_results_[name];
    for (const SubRepResult& n : nodes) {
      total.wire_in += n.wire_in;
      total.frames_up += n.frames_up;
      total.entries_up += n.entries_up;
      total.frames_down += n.frames_down;
      total.entries_down += n.entries_down;
    }
  }
}

const ProcStats& CoupledSystem::proc_stats(const std::string& program, int rank) const {
  auto it = slots_.find(program);
  CCF_REQUIRE(it != slots_.end(), "unknown program '" << program << "'");
  CCF_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < it->second.size(),
              "rank " << rank << " outside program " << program);
  return it->second[static_cast<std::size_t>(rank)].stats;
}

const std::string& CoupledSystem::trace_listing(const std::string& program, int rank,
                                                const std::string& region) const {
  static const std::string kEmpty;
  auto it = slots_.find(program);
  CCF_REQUIRE(it != slots_.end(), "unknown program '" << program << "'");
  CCF_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < it->second.size(),
              "rank " << rank << " outside program " << program);
  const auto& traces = it->second[static_cast<std::size_t>(rank)].traces;
  auto t = traces.find(region);
  return t == traces.end() ? kEmpty : t->second;
}

const std::vector<TraceEvent>& CoupledSystem::trace_events(const std::string& program, int rank,
                                                           const std::string& region) const {
  static const std::vector<TraceEvent> kEmpty;
  auto it = slots_.find(program);
  CCF_REQUIRE(it != slots_.end(), "unknown program '" << program << "'");
  CCF_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < it->second.size(),
              "rank " << rank << " outside program " << program);
  const auto& events = it->second[static_cast<std::size_t>(rank)].events;
  auto t = events.find(region);
  return t == events.end() ? kEmpty : t->second;
}

const RepResult& CoupledSystem::rep_result(const std::string& program) const {
  auto it = rep_results_.find(program);
  CCF_REQUIRE(it != rep_results_.end(), "unknown program '" << program << "'");
  return it->second;
}

const SubRepResult& CoupledSystem::subrep_result(const std::string& program) const {
  auto it = subrep_results_.find(program);
  CCF_REQUIRE(it != subrep_results_.end(), "unknown program '" << program << "'");
  return it->second;
}

}  // namespace ccf::core
