#include "core/system.hpp"

#include "util/check.hpp"

namespace ccf::core {

CoupledSystem::CoupledSystem(Config config, runtime::ClusterOptions cluster_options,
                             FrameworkOptions framework_options)
    : config_(std::move(config)),
      cluster_options_(cluster_options),
      framework_options_(framework_options),
      layout_(config_) {
  config_.validate();
  for (const auto& prog : config_.programs()) {
    slots_[prog.name].resize(static_cast<std::size_t>(prog.nprocs));
    rep_results_[prog.name] = RepResult{};
  }
}

void CoupledSystem::set_program_body(const std::string& program, ProgramBody body) {
  CCF_REQUIRE(config_.has_program(program), "no program '" << program << "' in config");
  CCF_REQUIRE(body != nullptr, "program body must be callable");
  bodies_[program] = std::move(body);
}

void CoupledSystem::run() {
  CCF_REQUIRE(!ran_, "run() called twice");
  for (const auto& prog : config_.programs()) {
    CCF_REQUIRE(bodies_.count(prog.name), "program '" << prog.name << "' has no body");
  }
  ran_ = true;

  auto cluster = runtime::make_cluster(cluster_options_);
  for (const auto& prog : config_.programs()) {
    const ProgramLayout& pl = layout_.program(prog.name);
    for (int rank = 0; rank < pl.nprocs; ++rank) {
      const std::string name = prog.name;
      ProcSlot* slot = &slots_[name][static_cast<std::size_t>(rank)];
      ProgramBody* body = &bodies_[name];
      cluster->add_process(pl.proc(rank), [this, name, rank, slot,
                                           body](runtime::ProcessContext& ctx) {
        CouplingRuntime rt(ctx, config_, layout_, name, rank, framework_options_);
        (*body)(rt, ctx);
        slot->stats = rt.stats_snapshot();
        for (const auto& stats : slot->stats.exports) {
          slot->traces[stats.region] = rt.trace_listing(stats.region);
          slot->events[stats.region] = rt.trace_events(stats.region);
        }
      });
    }
    RepResult* rep_slot = &rep_results_[prog.name];
    const std::string name = prog.name;
    cluster->add_process(pl.rep, [this, name, rep_slot](runtime::ProcessContext& ctx) {
      *rep_slot = run_rep(ctx, config_, layout_, name, framework_options_);
    });
  }
  cluster->run();
  end_time_ = cluster->end_time();
}

const ProcStats& CoupledSystem::proc_stats(const std::string& program, int rank) const {
  auto it = slots_.find(program);
  CCF_REQUIRE(it != slots_.end(), "unknown program '" << program << "'");
  CCF_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < it->second.size(),
              "rank " << rank << " outside program " << program);
  return it->second[static_cast<std::size_t>(rank)].stats;
}

const std::string& CoupledSystem::trace_listing(const std::string& program, int rank,
                                                const std::string& region) const {
  static const std::string kEmpty;
  auto it = slots_.find(program);
  CCF_REQUIRE(it != slots_.end(), "unknown program '" << program << "'");
  CCF_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < it->second.size(),
              "rank " << rank << " outside program " << program);
  const auto& traces = it->second[static_cast<std::size_t>(rank)].traces;
  auto t = traces.find(region);
  return t == traces.end() ? kEmpty : t->second;
}

const std::vector<TraceEvent>& CoupledSystem::trace_events(const std::string& program, int rank,
                                                           const std::string& region) const {
  static const std::vector<TraceEvent> kEmpty;
  auto it = slots_.find(program);
  CCF_REQUIRE(it != slots_.end(), "unknown program '" << program << "'");
  CCF_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < it->second.size(),
              "rank " << rank << " outside program " << program);
  const auto& events = it->second[static_cast<std::size_t>(rank)].events;
  auto t = events.find(region);
  return t == events.end() ? kEmpty : t->second;
}

const RepResult& CoupledSystem::rep_result(const std::string& program) const {
  auto it = rep_results_.find(program);
  CCF_REQUIRE(it != rep_results_.end(), "unknown program '" << program << "'");
  return it->second;
}

}  // namespace ccf::core
