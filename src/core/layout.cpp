#include "core/layout.hpp"

#include "util/check.hpp"

namespace ccf::core {

ProcId ProgramLayout::proc(int rank) const {
  CCF_REQUIRE(rank >= 0 && rank < nprocs,
              "rank " << rank << " outside program " << name << " (nprocs " << nprocs << ")");
  return first + rank;
}

std::vector<ProcId> ProgramLayout::proc_ids() const {
  std::vector<ProcId> ids;
  ids.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) ids.push_back(first + r);
  return ids;
}

DeploymentLayout::DeploymentLayout(const Config& config) {
  for (const auto& spec : config.programs()) {
    ProgramLayout layout;
    layout.name = spec.name;
    layout.nprocs = spec.nprocs;
    layout.first = next_id_;
    layout.rep = next_id_ + spec.nprocs;
    next_id_ += spec.nprocs + 1;
    programs_.push_back(std::move(layout));
  }
}

const ProgramLayout& DeploymentLayout::program(const std::string& name) const {
  for (const auto& p : programs_) {
    if (p.name == name) return p;
  }
  throw util::InvalidArgument("unknown program '" + name + "' in layout");
}

DeploymentLayout::Owner DeploymentLayout::owner_of(ProcId id) const {
  for (const auto& p : programs_) {
    if (id >= p.first && id < p.first + p.nprocs) return Owner{p.name, static_cast<int>(id - p.first)};
    if (id == p.rep) return Owner{p.name, -1};
  }
  throw util::InvalidArgument("process id " + std::to_string(id) + " not in layout");
}

}  // namespace ccf::core
