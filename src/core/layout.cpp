#include "core/layout.hpp"

#include "util/check.hpp"

namespace ccf::core {

ProcId ProgramLayout::proc(int rank) const {
  CCF_REQUIRE(rank >= 0 && rank < nprocs,
              "rank " << rank << " outside program " << name << " (nprocs " << nprocs << ")");
  return first + rank;
}

std::vector<ProcId> ProgramLayout::proc_ids() const {
  std::vector<ProcId> ids;
  ids.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) ids.push_back(first + r);
  return ids;
}

int ProgramLayout::parent_of_rank(int rank) const {
  if (tree.empty()) return -1;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (!tree[i].leaf_level) continue;
    for (int c : tree[i].children) {
      if (c == rank) return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<int> ProgramLayout::top_nodes() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (tree[i].parent == -1) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> ProgramLayout::subtree_ranks(int node) const {
  std::vector<int> out;
  std::vector<int> stack{node};
  while (!stack.empty()) {
    const TreeNode& n = tree[static_cast<std::size_t>(stack.back())];
    stack.pop_back();
    if (n.leaf_level) {
      out.insert(out.end(), n.children.begin(), n.children.end());
    } else {
      stack.insert(stack.end(), n.children.begin(), n.children.end());
    }
  }
  return out;
}

std::vector<TreeNode> ProgramLayout::build_tree(int nprocs, int fanin) {
  std::vector<TreeNode> tree;
  if (fanin < 2 || nprocs <= fanin) return tree;

  // Bottom layer: group worker ranks into ceil(nprocs / fanin) leaf-level
  // sub-reps of at most `fanin` consecutive ranks each.
  std::vector<int> layer;  // node indices of the layer just built
  for (int base = 0; base < nprocs; base += fanin) {
    TreeNode node;
    node.leaf_level = true;
    for (int r = base; r < nprocs && r < base + fanin; ++r) node.children.push_back(r);
    layer.push_back(static_cast<int>(tree.size()));
    tree.push_back(std::move(node));
  }

  // Interior layers: contract until at most `fanin` nodes remain, which
  // attach to the rep shards directly (parent == -1).
  while (static_cast<int>(layer.size()) > fanin) {
    std::vector<int> next;
    for (std::size_t base = 0; base < layer.size(); base += static_cast<std::size_t>(fanin)) {
      TreeNode node;
      for (std::size_t j = base; j < layer.size() && j < base + static_cast<std::size_t>(fanin);
           ++j) {
        node.children.push_back(layer[j]);
      }
      const int idx = static_cast<int>(tree.size());
      for (int c : node.children) tree[static_cast<std::size_t>(c)].parent = idx;
      next.push_back(idx);
      tree.push_back(std::move(node));
    }
    layer = std::move(next);
  }
  return tree;
}

DeploymentLayout::DeploymentLayout(const Config& config) {
  for (const auto& spec : config.programs()) {
    ProgramLayout layout;
    layout.name = spec.name;
    layout.nprocs = spec.nprocs;
    layout.shards = spec.rep_shards;
    layout.fanin = spec.rep_fanin;
    layout.flush_count = spec.tree_flush_count;
    layout.flush_bytes = spec.tree_flush_bytes;
    layout.first = next_id_;
    layout.rep = next_id_ + spec.nprocs;
    layout.tree = ProgramLayout::build_tree(spec.nprocs, spec.rep_fanin);
    layout.subrep_first = layout.rep + layout.shards;
    next_id_ = layout.subrep_first + static_cast<ProcId>(layout.tree.size());
    programs_.push_back(std::move(layout));
  }
}

const ProgramLayout& DeploymentLayout::program(const std::string& name) const {
  for (const auto& p : programs_) {
    if (p.name == name) return p;
  }
  throw util::InvalidArgument("unknown program '" + name + "' in layout");
}

DeploymentLayout::Owner DeploymentLayout::owner_of(ProcId id) const {
  for (const auto& p : programs_) {
    if (id >= p.first && id < p.first + p.nprocs) return Owner{p.name, static_cast<int>(id - p.first)};
    if (id >= p.rep && id < p.rep + p.shards) return Owner{p.name, -1};
    if (id >= p.subrep_first && id < p.subrep_first + static_cast<ProcId>(p.tree.size())) {
      return Owner{p.name, -2};
    }
  }
  throw util::InvalidArgument("process id " + std::to_string(id) + " not in layout");
}

}  // namespace ccf::core
