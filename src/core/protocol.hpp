// Wire protocol of the coupling framework.
//
// Control traffic flows through the per-program representative processes
// (paper §4): import requests travel importer-proc -> importer-rep ->
// exporter-rep -> exporter-procs; responses travel back the same path; the
// buddy-help answer goes exporter-rep -> slow exporter procs. Data pieces
// travel proc-to-proc with per-(connection, request) tags.
//
// Tag layout (framework tags stay below the collectives tag base 1<<24):
//   0x100000..0x10000F  control messages (kind in the tag)
//   0x200000..0x23FFFF  data pieces: 0x200000 + conn*4096 + (seq mod 4096)
#pragma once

#include <cstdint>
#include <vector>

#include "core/matcher.hpp"
#include "transport/message.hpp"
#include "transport/serialize.hpp"

namespace ccf::core {

using transport::Payload;
using transport::Tag;

inline constexpr Tag kTagImportRequest = 0x100000;   ///< importer rank0 -> own rep
inline constexpr Tag kTagRequestForward = 0x100001;  ///< importer rep -> exporter rep
inline constexpr Tag kTagProcForward = 0x100002;     ///< exporter rep -> exporter procs
inline constexpr Tag kTagProcResponse = 0x100003;    ///< exporter proc -> own rep
inline constexpr Tag kTagRepAnswer = 0x100004;       ///< exporter rep -> importer rep
inline constexpr Tag kTagConnFinishedAck = 0x100005;  ///< exporter rep -> importer rep
                                                      ///< (failure-tolerant mode only)
inline constexpr Tag kTagImportAnswerBase = 0x110000;  ///< +conn: importer rep -> procs
inline constexpr Tag kTagBuddyHelp = 0x100006;       ///< exporter rep -> pending procs
inline constexpr Tag kTagConnFinished = 0x100007;    ///< importer rep -> exporter rep
inline constexpr Tag kTagImporterConnDone = 0x100008;  ///< importer rank0 -> own rep
inline constexpr Tag kTagShutdownProc = 0x100009;    ///< rep -> own procs
inline constexpr Tag kTagConnClosed = 0x10000D;      ///< rep -> own procs: importer left
inline constexpr Tag kTagRegionDefs = 0x10000A;      ///< rank0 -> own rep
inline constexpr Tag kTagPeerRegionMeta = 0x10000B;  ///< rep -> peer rep
inline constexpr Tag kTagRegionMetaBcast = 0x10000C; ///< rep -> own procs
inline constexpr Tag kTagRepHeartbeat = 0x10000E;    ///< rep -> own procs: liveness beacon
inline constexpr Tag kTagMetaNudge = 0x10000F;       ///< proc -> own rep: resend meta bcast
inline constexpr Tag kTagMetaAck = 0x100010;         ///< proc -> own rep: meta bcast received
inline constexpr Tag kTagPeerMetaAck = 0x100011;     ///< rep -> peer rep: peer meta received
// BufferPressure (docs/MEMORY.md; collective backpressure, Property 1
// aggregation): exporter procs report watermark crossings to their rep,
// which aggregates program-wide (any rank over the high watermark puts the
// program under pressure) and notifies the importer side per connection.
inline constexpr Tag kTagProcPressure = 0x100012;    ///< exporter proc -> own rep
inline constexpr Tag kTagPressure = 0x100013;        ///< exporter rep -> importer rep
inline constexpr Tag kTagPressureBcast = 0x100014;   ///< importer rep -> own procs
// Aggregation tree (docs/PROTOCOL.md, "Hierarchical representatives"):
// batched control frames carrying many per-rank entries in one wire
// message. Up-frames travel child -> sub-rep -> rep, down-frames travel
// rep -> sub-rep -> procs. Deliberately placed inside the control-tag
// window [kTagImportRequest, kTagDataBase) so chaos schedules restricted
// to the control plane fault them too.
inline constexpr Tag kTagTreeUp = 0x100015;          ///< sub-rep -> parent/rep: batched frame
inline constexpr Tag kTagTreeDown = 0x100016;        ///< rep -> sub-rep: batched frame

inline constexpr Tag kTagDataBase = 0x200000;

/// Tag of the data pieces for request `seq` on connection `conn`.
inline Tag data_tag(int conn, std::uint32_t seq) {
  return kTagDataBase + static_cast<Tag>(conn) * 4096 + static_cast<Tag>(seq % 4096);
}

/// Tag of the final import answer broadcast for connection `conn`.
inline Tag import_answer_tag(int conn) { return kTagImportAnswerBase + static_cast<Tag>(conn); }

/// An import request / its forwarded forms.
struct RequestMsg {
  std::uint32_t conn = 0;
  std::uint32_t seq = 0;  ///< per-connection, assigned by the importer
  Timestamp requested = 0;

  Payload encode() const;
  static RequestMsg decode(const Payload& p);
};

/// One process's answer to a forwarded request. A process may answer the
/// same request twice: first PENDING, later a decisive update.
struct ResponseMsg {
  std::uint32_t conn = 0;
  std::uint32_t seq = 0;
  MatchResult result = MatchResult::Pending;
  Timestamp matched = kNeverExported;
  Timestamp latest_exported = kNeverExported;

  Payload encode() const;
  static ResponseMsg decode(const Payload& p);
};

/// Final answer (rep -> importer rep, rep -> importer procs) and the
/// buddy-help message (rep -> pending exporter procs) share one shape.
struct AnswerMsg {
  std::uint32_t conn = 0;
  std::uint32_t seq = 0;
  Timestamp requested = 0;
  MatchResult result = MatchResult::NoMatch;
  Timestamp matched = kNeverExported;

  Payload encode() const;
  static AnswerMsg decode(const Payload& p);
};

/// Connection lifecycle notifications (ConnFinished / ImporterConnDone).
struct ConnMsg {
  std::uint32_t conn = 0;

  Payload encode() const;
  static ConnMsg decode(const Payload& p);
};

/// BufferPressure level change. proc -> rep: `conn` is unused (pressure is
/// per-process, spanning regions) and set to 0. rep -> rep and rep ->
/// procs: `conn` names the connection whose exporter changed level.
struct PressureMsg {
  std::uint32_t conn = 0;
  std::uint8_t level = 0;  ///< 1 = under pressure, 0 = cleared

  Payload encode() const;
  static PressureMsg decode(const Payload& p);
};

/// Entry of a batched tree control frame. `rank` is the originating worker
/// rank (up-frames) or the target worker rank / kFrameBroadcast
/// (down-frames); `tag` and `payload` are the plain control message the
/// entry stands for. Decoded payloads are zero-copy slices of the frame.
inline constexpr std::int32_t kFrameBroadcast = -1;

struct FrameEntry {
  std::int32_t rank = 0;
  Tag tag = 0;
  Payload payload;
};

/// Packs entries into one wire frame: [u32 n] then per entry
/// [i32 rank][u32 tag][u32 len][len bytes].
Payload encode_frame(const std::vector<FrameEntry>& entries);

/// Unpacks a frame; each entry's payload aliases `p` (no copies).
std::vector<FrameEntry> decode_frame(const Payload& p);

/// Region geometry, exchanged between reps at commit time so each side can
/// build the redistribution schedule from metadata alone.
struct RegionMeta {
  std::string name;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int32_t proc_rows = 0;
  std::int32_t proc_cols = 0;

  void encode_into(transport::Writer& w) const;
  static RegionMeta decode_from(transport::Reader& r);
};

}  // namespace ccf::core
