// The process-side coupling API (paper §3, Figure 1).
//
// A program's worker processes construct one CouplingRuntime each, define
// their regions once, commit() (a collective that exchanges region
// geometry between programs through the reps), and then export/import as
// often as they like. finalize() declares end-of-stream and enters the
// framework service loop until the rep shuts the process down.
//
//   CouplingRuntime rt(ctx, config, layout, "F", rank);
//   rt.define_export_region("r1", decomp);
//   rt.commit();
//   for (...) { compute(); rt.export_region("r1", t, data); }
//   rt.finalize();
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/config.hpp"
#include "core/control_route.hpp"
#include "core/export_state.hpp"
#include "core/layout.hpp"
#include "core/options.hpp"
#include "core/stats.hpp"
#include "dist/dist_array.hpp"
#include "dist/redistribute.hpp"
#include "mem/governor.hpp"
#include "mem/spill.hpp"

namespace ccf::core {

class CouplingRuntime {
 public:
  CouplingRuntime(runtime::ProcessContext& ctx, const Config& config,
                  const DeploymentLayout& layout, std::string program_name, int rank,
                  FrameworkOptions options = {});

  /// Declares a region this process will export. The decomposition's rank
  /// `rank()` block is this process's contribution.
  void define_export_region(const std::string& name, const dist::BlockDecomposition& decomp);

  /// Declares a region this process will import into.
  void define_import_region(const std::string& name, const dist::BlockDecomposition& decomp);

  /// Collective: exchanges region geometry with all connected programs
  /// via the reps and builds the redistribution schedules. Must be called
  /// once, after all define_* calls and before any export/import.
  void commit();

  /// Collective export of a new version of the region at timestamp `t`
  /// (strictly increasing per region). `data` must use the decomposition
  /// the region was defined with. Unconnected regions are a near-no-op
  /// (the paper's low-overhead case).
  void export_region(const std::string& name, Timestamp t, const dist::DistArray2D<double>& data);

  struct ImportStatus {
    MatchResult result = MatchResult::NoMatch;
    Timestamp matched = kNeverExported;
    bool ok() const { return result == MatchResult::Match; }
  };

  /// Collective import request for timestamp `x` (strictly increasing per
  /// region). On a match, `out` is filled with the matched version.
  ImportStatus import_region(const std::string& name, Timestamp x,
                             dist::DistArray2D<double>& out);

  /// Non-blocking import (paper §6): issues the request and returns
  /// immediately, letting the importer overlap computation with the
  /// matching/transfer. Requests may be pipelined; import_wait() must be
  /// called once per ticket, in issue order per region (collectively).
  struct ImportTicket {
    std::string region;
    std::uint32_t seq = 0;
    Timestamp requested = 0;
  };

  ImportTicket import_request(const std::string& name, Timestamp x);

  /// Completes a pipelined import: blocks for the answer (and, on a
  /// match, the data) of the oldest unfinished ticket of the region.
  ImportStatus import_wait(const ImportTicket& ticket, dist::DistArray2D<double>& out);

  /// Unfinished pipelined requests on a region.
  std::size_t pending_imports(const std::string& name) const;

  /// Collective teardown: answers outstanding requests decisively, then
  /// serves framework traffic until the rep's shutdown message.
  void finalize();

  int rank() const { return rank_; }
  const std::string& program() const { return program_; }

  /// Per-process statistics (valid any time; complete after finalize()).
  ProcStats stats_snapshot() const;

  /// Event-trace listing for an exported region ("" if tracing is off or
  /// the region is unconnected).
  std::string trace_listing(const std::string& region) const;

  /// Structured trace events of an exported region (empty if tracing is
  /// off or the region is unconnected). The model-checking conformance
  /// checker consumes these instead of parsing listings.
  std::vector<TraceEvent> trace_events(const std::string& region) const;

 private:
  struct ExportRegion {
    dist::BlockDecomposition decomp;
    std::unique_ptr<ExportRegionState> state;  ///< null when unconnected
    std::uint64_t unconnected_exports = 0;
  };

  struct ImportRegion {
    explicit ImportRegion(dist::BlockDecomposition d) : decomp(std::move(d)) {}
    dist::BlockDecomposition decomp;
    int conn_id = -1;
    std::unique_ptr<dist::RedistSchedule> schedule;  ///< exporter -> importer
    std::vector<ProcId> exporter_procs;
    std::uint32_t next_seq = 0;
    Timestamp last_request = kNeverExported;
    std::uint32_t next_wait_seq = 0;  ///< oldest ticket not yet waited on
    ImportRegionStats stats;
  };

  /// Processes all queued rep->proc control traffic in arrival order.
  void drain_control();
  void handle_control(const runtime::Message& m);
  ExportRegionState* state_for_conn(std::uint32_t conn);

  /// Parks an answer for a later import_wait; duplicates and answers for
  /// already-consumed sequence numbers are discarded (counted as stale).
  void stash_answer(const AnswerMsg& answer);

  /// Emits one ProcPressure control message to the rep per watermark
  /// transition of the governor (no-op when ungoverned or level-stable).
  void signal_pressure();

  /// Tree fallback (docs/PROTOCOL.md): when nothing — not even a relayed
  /// heartbeat — has arrived from the parent sub-rep for a whole departure
  /// window, the sub-rep is presumed dead. The route drops to the direct
  /// shard layer and a MetaNudge announces the switch to every shard (the
  /// rep marks the rank as direct and bypasses the tree for it from then
  /// on). No-op when already direct or departure detection is off.
  void maybe_reparent();

  /// Records one ShutdownProc from a rep shard; with a sharded rep the
  /// payload names the shard and shutdown_seen_ flips only once every
  /// shard has reported.
  void note_shutdown(const transport::Payload& payload);

  /// Acknowledges (or re-acknowledges) shard `shard`'s geometry broadcast.
  void send_meta_ack(int shard);

  /// Blocks for the answer to request `seq` on `region`, serving framework
  /// control traffic meanwhile (deadlock freedom for bidirectional
  /// couplings) and stashing answers that belong to other requests or
  /// connections. In failure-tolerant mode the wait times out and re-sends
  /// the request with exponential backoff (every rank retries, staggered).
  AnswerMsg await_answer(ImportRegion& region, std::uint32_t seq, Timestamp requested);

  runtime::ProcessContext& ctx_;
  const Config& config_;
  const DeploymentLayout& layout_;
  std::string program_;
  int rank_;
  FrameworkOptions options_;
  ProcId rep_;          ///< shard 0 id (route_.base)
  ControlRoute route_;  ///< where control traffic goes: parent sub-rep or shards
  bool committed_ = false;
  bool finalized_ = false;
  bool shutdown_seen_ = false;
  std::set<int> shutdown_shards_;  ///< shards whose ShutdownProc arrived (S > 1)
  std::map<std::string, ExportRegion> export_regions_;
  std::map<std::string, ImportRegion> import_regions_;
  /// Answers parked per connection, keyed by request seq (the fabric may
  /// deliver them out of order; import_wait consumes them in issue order).
  std::map<int, std::map<std::uint32_t, AnswerMsg>> stashed_answers_;
  FaultToleranceStats ft_;
  double last_rep_seen_ = 0;  ///< ctx.now() of the last message from the rep
  double finished_at_ = 0;

  // Buffer governance (src/mem; both null with the default MemoryOptions).
  std::unique_ptr<mem::MemoryGovernor> governor_;
  std::unique_ptr<mem::SpillStore> spill_;
  std::uint64_t pressure_signals_ = 0;
  std::uint64_t pressure_notices_ = 0;
  /// Last process-level pressure state signalled to the rep: the OR of
  /// the governor's level and the transport's egress congestion. With the
  /// modeled fabrics transport pressure is constant false, making this
  /// exactly the governor's signaled level (the pre-transport behavior).
  bool sent_pressure_level_ = false;
  /// Import connections whose exporter announced BufferPressure.
  std::set<int> pressured_conns_;
};

}  // namespace ccf::core
