#include "core/rep.hpp"

#include <map>
#include <set>

#include "core/protocol.hpp"
#include "core/rep_state.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace ccf::core {

using runtime::MatchSpec;
using runtime::Message;
using transport::kAnyProc;
using transport::kAnyTag;
using transport::Reader;
using transport::Writer;

RepResult run_rep(runtime::ProcessContext& ctx, const Config& config,
                  const DeploymentLayout& layout, const std::string& program_name,
                  FrameworkOptions options) {
  const ProgramLayout& pl = layout.program(program_name);
  CCF_REQUIRE(ctx.id() == pl.rep, "rep body running on wrong process id");

  const std::vector<int> export_conns = config.connections_of_exporter_program(program_name);
  const std::vector<int> import_conns = config.connections_of_importer_program(program_name);

  auto peer_rep_of = [&](int conn) -> ProcId {
    const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
    const std::string& peer =
        spec.exporter_program == program_name ? spec.importer_program : spec.exporter_program;
    return layout.program(peer).rep;
  };

  RepResult result;
  std::map<int, RequestAggregator> aggregators;
  for (int conn : export_conns) {
    aggregators.emplace(conn, RequestAggregator(pl.nprocs, options.buddy_help));
  }

  // --- startup: region geometry exchange -----------------------------------
  bool defs_received = false;
  bool meta_broadcast = false;
  std::map<std::string, RegionMeta> own_exports;
  std::map<std::string, RegionMeta> own_imports;
  std::map<int, RegionMeta> peer_meta;
  const std::size_t participated = export_conns.size() + import_conns.size();

  // --- shutdown bookkeeping -------------------------------------------------
  std::set<int> import_conns_done;   ///< own rank0 said "done importing"
  std::set<int> export_conns_finished;  ///< peer rep said "done requesting"

  auto maybe_broadcast_meta = [&] {
    if (meta_broadcast || !defs_received || peer_meta.size() != participated) return;
    Writer w;
    w.put<std::uint32_t>(static_cast<std::uint32_t>(peer_meta.size()));
    for (const auto& [conn, meta] : peer_meta) {
      // Validate geometry agreement for conns this program imports on:
      // the imported region must match the exporter's transfer window
      // (or, without a window, the exporter's whole domain).
      const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
      if (spec.importer_program == program_name) {
        const RegionMeta& mine = own_imports.at(spec.importer_region);
        const dist::Box window =
            spec.exporter_window.value_or(dist::Box{0, meta.rows, 0, meta.cols});
        CCF_REQUIRE((dist::Box{0, meta.rows, 0, meta.cols}.contains(window)),
                    "connection " << conn << ": transfer window " << window
                                  << " escapes the exporter's " << meta.rows << "x"
                                  << meta.cols << " domain");
        CCF_REQUIRE(mine.rows == window.rows() && mine.cols == window.cols(),
                    "connection " << conn << ": imported region " << spec.importer_region
                                  << " is " << mine.rows << "x" << mine.cols
                                  << " but the exporter window provides " << window.rows()
                                  << "x" << window.cols());
      }
      w.put<std::uint32_t>(static_cast<std::uint32_t>(conn));
      meta.encode_into(w);
    }
    const transport::Payload payload = w.take();
    for (ProcId proc : pl.proc_ids()) ctx.send(proc, kTagRegionMetaBcast, payload);
    meta_broadcast = true;
  };

  auto all_finished = [&] {
    return meta_broadcast && import_conns_done.size() == import_conns.size() &&
           export_conns_finished.size() == export_conns.size();
  };

  // A program with no connections still performs the geometry phase, then
  // shuts its processes down immediately.
  while (!all_finished()) {
    Message m = ctx.recv(MatchSpec{kAnyProc, kAnyTag});
    switch (m.tag) {
      case kTagRegionDefs: {
        CCF_CHECK(!defs_received, "duplicate region definitions");
        defs_received = true;
        Reader r(m.payload);
        const auto n_exp = r.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < n_exp; ++i) {
          RegionMeta meta = RegionMeta::decode_from(r);
          own_exports.emplace(meta.name, std::move(meta));
        }
        const auto n_imp = r.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < n_imp; ++i) {
          RegionMeta meta = RegionMeta::decode_from(r);
          own_imports.emplace(meta.name, std::move(meta));
        }
        // Early detection of incorrect coupling specifications (paper
        // §3.1): every connected region must have been defined.
        for (int conn : export_conns) {
          const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
          CCF_REQUIRE(own_exports.count(spec.exporter_region),
                      "program " << program_name << " never defined exported region '"
                                 << spec.exporter_region << "' required by connection "
                                 << conn);
        }
        for (int conn : import_conns) {
          const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
          CCF_REQUIRE(own_imports.count(spec.importer_region),
                      "program " << program_name << " never defined imported region '"
                                 << spec.importer_region << "' required by connection "
                                 << conn);
        }
        // Ship our geometry to every peer rep.
        for (int conn : export_conns) {
          const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
          Writer w;
          w.put<std::uint32_t>(static_cast<std::uint32_t>(conn));
          own_exports.at(spec.exporter_region).encode_into(w);
          ctx.send(peer_rep_of(conn), kTagPeerRegionMeta, w.take());
        }
        for (int conn : import_conns) {
          const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
          Writer w;
          w.put<std::uint32_t>(static_cast<std::uint32_t>(conn));
          own_imports.at(spec.importer_region).encode_into(w);
          ctx.send(peer_rep_of(conn), kTagPeerRegionMeta, w.take());
        }
        maybe_broadcast_meta();
        break;
      }
      case kTagPeerRegionMeta: {
        Reader r(m.payload);
        const auto conn = r.get<std::uint32_t>();
        peer_meta.emplace(static_cast<int>(conn), RegionMeta::decode_from(r));
        maybe_broadcast_meta();
        break;
      }
      case kTagImportRequest: {
        const RequestMsg req = RequestMsg::decode(m.payload);
        ctx.send(peer_rep_of(static_cast<int>(req.conn)), kTagRequestForward, req.encode());
        break;
      }
      case kTagRequestForward: {
        const RequestMsg req = RequestMsg::decode(m.payload);
        auto agg = aggregators.find(static_cast<int>(req.conn));
        CCF_CHECK(agg != aggregators.end(),
                  "request forwarded to non-exporter of connection " << req.conn);
        agg->second.open(req);
        const transport::Payload payload = req.encode();
        for (ProcId proc : pl.proc_ids()) ctx.send(proc, kTagProcForward, payload);
        ++result.requests_forwarded;
        break;
      }
      case kTagProcResponse: {
        const ResponseMsg resp = ResponseMsg::decode(m.payload);
        const int rank = static_cast<int>(m.src - pl.first);
        auto agg = aggregators.find(static_cast<int>(resp.conn));
        CCF_CHECK(agg != aggregators.end(), "response for unknown connection " << resp.conn);
        ++result.responses_received;
        const RequestAggregator::Actions actions = agg->second.on_response(rank, resp);
        if (actions.answer_importer) {
          ctx.send(peer_rep_of(static_cast<int>(resp.conn)), kTagRepAnswer,
                   actions.answer_importer->encode());
          ++result.answers_sent;
        }
        if (!actions.buddy_help_ranks.empty()) {
          const AnswerMsg& answer = agg->second.answer_of(resp.seq);
          const transport::Payload payload = answer.encode();
          for (int r : actions.buddy_help_ranks) {
            ctx.send(pl.proc(r), kTagBuddyHelp, payload);
            ++result.buddy_helps_sent;
          }
        }
        break;
      }
      case kTagRepAnswer: {
        const AnswerMsg answer = AnswerMsg::decode(m.payload);
        const transport::Payload payload = answer.encode();
        for (ProcId proc : pl.proc_ids()) {
          ctx.send(proc, import_answer_tag(static_cast<int>(answer.conn)), payload);
        }
        break;
      }
      case kTagImporterConnDone: {
        const ConnMsg msg = ConnMsg::decode(m.payload);
        import_conns_done.insert(static_cast<int>(msg.conn));
        ctx.send(peer_rep_of(static_cast<int>(msg.conn)), kTagConnFinished, msg.encode());
        break;
      }
      case kTagConnFinished: {
        const ConnMsg msg = ConnMsg::decode(m.payload);
        export_conns_finished.insert(static_cast<int>(msg.conn));
        // Tell the worker processes the importer left: they release every
        // snapshot held for this connection and stop buffering for it.
        const transport::Payload payload = msg.encode();
        for (ProcId proc : pl.proc_ids()) ctx.send(proc, kTagConnClosed, payload);
        break;
      }
      default:
        throw util::InternalError("rep of " + program_name + " got unexpected tag " +
                                  std::to_string(m.tag));
    }
  }

  for (ProcId proc : pl.proc_ids()) {
    ctx.send(proc, kTagShutdownProc, transport::empty_payload());
  }
  return result;
}

}  // namespace ccf::core
