#include "core/rep.hpp"

#include <map>
#include <set>
#include <utility>

#include "core/protocol.hpp"
#include "core/rep_state.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace ccf::core {

using runtime::MatchSpec;
using runtime::Message;
using transport::kAnyProc;
using transport::kAnyTag;
using transport::Reader;
using transport::Writer;

namespace {

/// Downward fan-out of one rep shard. Flat layout: every send goes straight
/// to the worker (the pre-tree wire traffic, byte for byte). Tree layout:
/// sends are buffered as frame entries, one frame per top-level sub-rep per
/// processed wave — so a collective broadcast costs the rep O(fan-in) wire
/// messages instead of O(nprocs). With pipelined aggregation (the layout's
/// flush_count/flush_bytes knobs) a destination's partial frame ships as
/// soon as the threshold fills, overlapping the sub-rep's unwrapping with
/// the rest of the rep's wave. Ranks known to have re-parented (their
/// sub-rep died) are served directly in addition to the tree.
struct DownLink {
  runtime::ProcessContext& ctx;
  const ProgramLayout& pl;
  RepResult& result;
  const bool enabled;
  std::vector<int> tops;                      ///< top-level tree node indices
  std::vector<int> rank_to_top;               ///< rank -> index into tops
  std::vector<std::vector<FrameEntry>> buf;   ///< pending entries per top node
  std::vector<std::size_t> buf_bytes;         ///< payload bytes pending per top node
  std::set<int> direct_ranks;                 ///< re-parented: bypass the tree

  DownLink(runtime::ProcessContext& c, const ProgramLayout& p, RepResult& r)
      : ctx(c), pl(p), result(r), enabled(!p.tree.empty()) {
    if (!enabled) return;
    tops = pl.top_nodes();
    rank_to_top.assign(static_cast<std::size_t>(pl.nprocs), 0);
    for (std::size_t i = 0; i < tops.size(); ++i) {
      for (int rank : pl.subtree_ranks(tops[i])) {
        rank_to_top[static_cast<std::size_t>(rank)] = static_cast<int>(i);
      }
    }
    buf.resize(tops.size());
    buf_bytes.assign(tops.size(), 0);
  }

  void flush_one(std::size_t i) {
    if (buf[i].empty()) return;
    ctx.send(pl.subrep(tops[i]), kTagTreeDown, encode_frame(buf[i]));
    ++result.frames_out;
    result.frame_entries_out += buf[i].size();
    buf[i].clear();
    buf_bytes[i] = 0;
  }

  void push(std::size_t i, FrameEntry e) {
    buf_bytes[i] += e.payload.size();
    buf[i].push_back(std::move(e));
    if ((pl.flush_count > 0 && buf[i].size() >= static_cast<std::size_t>(pl.flush_count)) ||
        (pl.flush_bytes > 0 && buf_bytes[i] >= static_cast<std::size_t>(pl.flush_bytes))) {
      flush_one(i);
    }
  }

  void bcast(transport::Tag tag, const transport::Payload& p) {
    if (!enabled) {
      for (ProcId proc : pl.proc_ids()) ctx.send(proc, tag, p);
      return;
    }
    for (std::size_t i = 0; i < buf.size(); ++i) {
      push(i, FrameEntry{kFrameBroadcast, tag, p});
    }
    for (int r : direct_ranks) ctx.send(pl.proc(r), tag, p);
  }

  void to_rank(int rank, transport::Tag tag, const transport::Payload& p) {
    if (!enabled || direct_ranks.count(rank)) {
      ctx.send(pl.proc(rank), tag, p);
      return;
    }
    push(static_cast<std::size_t>(rank_to_top[static_cast<std::size_t>(rank)]),
         FrameEntry{rank, tag, p});
  }

  void flush() {
    if (!enabled) return;
    for (std::size_t i = 0; i < buf.size(); ++i) flush_one(i);
  }
};

}  // namespace

RepResult run_rep(runtime::ProcessContext& ctx, const Config& config,
                  const DeploymentLayout& layout, const std::string& program_name,
                  FrameworkOptions options, int shard) {
  const ProgramLayout& pl = layout.program(program_name);
  CCF_REQUIRE(shard >= 0 && shard < pl.shards, "rep shard index outside layout");
  CCF_REQUIRE(ctx.id() == pl.shard_id(shard), "rep body running on wrong process id");

  // This shard owns the connections with conn % shards == shard; peers
  // address it the same way (ProgramLayout::control_target).
  auto owned = [&](int conn) { return pl.shards <= 1 || conn % pl.shards == shard; };
  std::vector<int> export_conns, import_conns;
  for (int conn : config.connections_of_exporter_program(program_name)) {
    if (owned(conn)) export_conns.push_back(conn);
  }
  for (int conn : config.connections_of_importer_program(program_name)) {
    if (owned(conn)) import_conns.push_back(conn);
  }

  auto peer_rep_of = [&](int conn) -> ProcId {
    const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
    const std::string& peer =
        spec.exporter_program == program_name ? spec.importer_program : spec.exporter_program;
    return layout.program(peer).control_target(conn);
  };

  auto is_own_proc = [&](ProcId id) { return id >= pl.first && id < pl.first + pl.nprocs; };

  RepResult result;
  DownLink down(ctx, pl, result);
  std::map<int, RequestAggregator> aggregators;
  for (int conn : export_conns) {
    aggregators.emplace(conn, RequestAggregator(pl.nprocs, options.buddy_help));
  }

  // --- startup: region geometry exchange -----------------------------------
  bool defs_received = false;
  bool meta_broadcast = false;
  std::map<std::string, RegionMeta> own_exports;
  std::map<std::string, RegionMeta> own_imports;
  std::map<int, RegionMeta> peer_meta;
  transport::Payload meta_payload;  ///< kept for nudge-triggered resends
  const std::size_t participated = export_conns.size() + import_conns.size();
  // Tolerant mode: workers acknowledge the meta broadcast, and the rep may
  // not exit while any worker still lacks the geometry — a peer program
  // finishing early would otherwise kill the rep mid-recovery and strand a
  // worker whose broadcast was dropped in an unanswerable commit() retry
  // loop. Un-acked workers are re-broadcast to on heartbeat ticks; after
  // max_retries delivery is presumed (termination stays guaranteed).
  std::set<ProcId> meta_acked;
  std::map<ProcId, int> meta_resends;
  // The rep-to-rep geometry shipment needs the same treatment: a peer
  // program can run to completion (zero imports) and take its rep down
  // while our PeerRegionMeta to it — or, worse, its shipment to us — is
  // still lost in flight. Each shipment is therefore acknowledged per
  // connection, re-shipped on heartbeat ticks, and gates this rep's exit.
  std::set<int> peer_meta_acked;
  std::map<int, int> peer_meta_resends;

  // --- shutdown bookkeeping -------------------------------------------------
  std::set<int> import_conns_done;   ///< own rank(s) said "done importing"
  std::map<int, std::set<int>> conn_done_ranks;  ///< which ranks reported, per conn
  std::set<int> export_conns_finished;  ///< peer rep said "done requesting"
  // Failure-tolerant mode only: ConnFinished is retried (on the heartbeat
  // tick) until the exporter rep acknowledges it, so a lost rep-to-rep
  // notification cannot wedge the exporter program. Bounded retries keep
  // termination guaranteed even if every ack is lost.
  const bool reliable_finish = options.failure_tolerance();
  std::set<int> conn_finished_acked;
  std::map<int, int> conn_finished_resends;

  // A rank that never responded to a forwarded request may never have
  // received it — and a contributing silent rank never ships its data
  // piece, wedging the importer's transfer even though the collective
  // answer was decided by the other ranks. In failure-tolerant mode the
  // rep re-forwards to exactly the silent ranks on heartbeat ticks and
  // refuses to shut down while any remain (bounded by max_retries).
  std::map<std::pair<int, std::uint32_t>, int> forward_resends;
  std::set<std::pair<int, std::uint32_t>> forward_abandoned;
  auto silent_ranks_remain = [&] {
    for (const auto& [conn, agg] : aggregators) {
      for (const auto& u : agg.unresponsive_ranks()) {
        if (!forward_abandoned.count({conn, u.request.seq})) return true;
      }
    }
    return false;
  };

  // ConnClosed is withheld per rank until that rank has responded to every
  // request ever forwarded on the connection. Fabric-level FIFO normally
  // guarantees a worker sees all forwards before ConnClosed, but a delay
  // fault can reorder them — and a worker that closes the connection first
  // frees snapshots, then resolves the late request MATCH on a version it
  // can no longer ship, wedging the importer's transfer forever. A response
  // (even PENDING) proves the worker holds the request as a protected
  // obligation, making closure safe. Deferred ranks are notified from the
  // ProcResponse handler once their elicited (re-forwarded) response lands.
  std::set<int> conn_closed_pending;
  auto notify_conn_closed = [&](int conn) {
    const transport::Payload payload = ConnMsg{static_cast<std::uint32_t>(conn)}.encode();
    auto agg = aggregators.find(conn);
    bool deferred = false;
    for (int rank = 0; rank < pl.nprocs; ++rank) {
      if (reliable_finish && agg != aggregators.end() &&
          !agg->second.rank_answered_all(rank)) {
        deferred = true;
        continue;
      }
      down.to_rank(rank, kTagConnClosed, payload);
    }
    if (deferred) conn_closed_pending.insert(conn);
  };

  // --- collective BufferPressure (docs/MEMORY.md) ---------------------------
  // Property-1-style aggregation over the program's ranks: any rank over
  // its high watermark puts the whole program under pressure (its part of
  // every snapshot must be buffered for the collective export to stay
  // shippable). Only *transitions* of the aggregate are propagated, one
  // Pressure note per exporting connection. Pressure is advisory — a lost
  // note merely costs throttling accuracy, never correctness — so the
  // notes ride the fabric without retry machinery. With an aggregation
  // tree, the per-rank signals ride up-frames (any-raised/all-clear is
  // evaluated here over the leaf-rank origins) and the importer-side
  // broadcast fans out down the peer's tree.
  std::set<int> pressured_ranks;
  bool program_pressure = false;
  auto on_proc_pressure = [&](ProcId src, const transport::Payload& payload) {
    const PressureMsg msg = PressureMsg::decode(payload);
    const int rank = static_cast<int>(src - pl.first);
    ++result.pressure_signals;
    if (msg.level != 0) {
      pressured_ranks.insert(rank);
    } else {
      pressured_ranks.erase(rank);
    }
    const bool now = !pressured_ranks.empty();
    if (now == program_pressure) return;
    program_pressure = now;
    for (int conn : export_conns) {
      ctx.send(peer_rep_of(conn),
               kTagPressure,
               PressureMsg{static_cast<std::uint32_t>(conn),
                           static_cast<std::uint8_t>(now ? 1 : 0)}
                   .encode());
      ++result.pressure_notices;
    }
  };

  // Importer-side answer cache: replays the ImportAnswer broadcast when a
  // proc retries a request whose answer already came back (the original
  // broadcast — or the proc's request — was lost). Grows with the number
  // of requests, like the exporter-side aggregator state.
  std::map<std::pair<std::uint32_t, std::uint32_t>, AnswerMsg> import_answers;

  auto ship_conn_meta = [&](int conn) {
    const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
    Writer w;
    w.put<std::uint32_t>(static_cast<std::uint32_t>(conn));
    if (spec.exporter_program == program_name) {
      own_exports.at(spec.exporter_region).encode_into(w);
    } else {
      own_imports.at(spec.importer_region).encode_into(w);
    }
    ctx.send(peer_rep_of(conn), kTagPeerRegionMeta, w.take());
  };

  auto ship_peer_meta = [&] {
    for (int conn : export_conns) ship_conn_meta(conn);
    for (int conn : import_conns) ship_conn_meta(conn);
  };

  auto maybe_broadcast_meta = [&] {
    if (meta_broadcast || !defs_received || peer_meta.size() != participated) return;
    Writer w;
    // Multi-shard layouts prefix the shard id so workers can collect and
    // merge every shard's broadcast; the single-shard payload stays
    // byte-identical to the pre-shard wire format.
    if (pl.shards > 1) w.put<std::uint32_t>(static_cast<std::uint32_t>(shard));
    w.put<std::uint32_t>(static_cast<std::uint32_t>(peer_meta.size()));
    for (const auto& [conn, meta] : peer_meta) {
      // Validate geometry agreement for conns this program imports on:
      // the imported region must match the exporter's transfer window
      // (or, without a window, the exporter's whole domain).
      const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
      if (spec.importer_program == program_name) {
        const RegionMeta& mine = own_imports.at(spec.importer_region);
        const dist::Box window =
            spec.exporter_window.value_or(dist::Box{0, meta.rows, 0, meta.cols});
        CCF_REQUIRE((dist::Box{0, meta.rows, 0, meta.cols}.contains(window)),
                    "connection " << conn << ": transfer window " << window
                                  << " escapes the exporter's " << meta.rows << "x"
                                  << meta.cols << " domain");
        CCF_REQUIRE(mine.rows == window.rows() && mine.cols == window.cols(),
                    "connection " << conn << ": imported region " << spec.importer_region
                                  << " is " << mine.rows << "x" << mine.cols
                                  << " but the exporter window provides " << window.rows()
                                  << "x" << window.cols());
      }
      w.put<std::uint32_t>(static_cast<std::uint32_t>(conn));
      meta.encode_into(w);
    }
    meta_payload = w.take();
    down.bcast(kTagRegionMetaBcast, meta_payload);
    meta_broadcast = true;
  };

  auto import_side_done = [&] {
    if (import_conns_done.size() != import_conns.size()) return false;
    if (!reliable_finish) return true;
    // Tolerant mode: every rank must have reported completion. A dropped
    // ImportAnswer broadcast can strand any single rank, and only a live
    // rep can replay the answer when that rank's retry arrives.
    for (int conn : import_conns) {
      auto it = conn_done_ranks.find(conn);
      if (it == conn_done_ranks.end() || static_cast<int>(it->second.size()) < pl.nprocs) {
        return false;
      }
    }
    return true;
  };

  auto all_finished = [&] {
    if (reliable_finish && conn_finished_acked.size() < import_conns_done.size()) return false;
    // Only gate on silent ranks when heartbeat ticks exist to repair them.
    if (reliable_finish && options.heartbeat_interval_seconds > 0 && silent_ranks_remain()) {
      return false;
    }
    if (reliable_finish && options.heartbeat_interval_seconds > 0 &&
        static_cast<int>(meta_acked.size()) < pl.nprocs) {
      return false;
    }
    if (reliable_finish && options.heartbeat_interval_seconds > 0 &&
        peer_meta_acked.size() < participated) {
      return false;
    }
    return meta_broadcast && import_side_done() &&
           export_conns_finished.size() == export_conns.size();
  };

  // One control message, plain or reconstructed from an up-frame entry
  // (`src` is then the entry's leaf-rank origin mapped back to its ProcId,
  // so all per-rank bookkeeping stays exact through the tree).
  auto handle = [&](ProcId src, transport::Tag tag, const transport::Payload& payload) {
    switch (tag) {
      case kTagRegionDefs: {
        if (defs_received) {
          // Rank0 timed out waiting for the meta broadcast and re-sent its
          // definitions. Our own shipment (or the peer's) may have been
          // lost: re-ship ours and nudge every peer rep to re-ship theirs.
          ++result.duplicates_ignored;
          ship_peer_meta();
          std::set<ProcId> peers;
          for (int conn : export_conns) peers.insert(peer_rep_of(conn));
          for (int conn : import_conns) peers.insert(peer_rep_of(conn));
          for (ProcId peer : peers) {
            ctx.send(peer, kTagMetaNudge, transport::empty_payload());
          }
          break;
        }
        defs_received = true;
        Reader r(payload);
        const auto n_exp = r.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < n_exp; ++i) {
          RegionMeta meta = RegionMeta::decode_from(r);
          own_exports.emplace(meta.name, std::move(meta));
        }
        const auto n_imp = r.get<std::uint32_t>();
        for (std::uint32_t i = 0; i < n_imp; ++i) {
          RegionMeta meta = RegionMeta::decode_from(r);
          own_imports.emplace(meta.name, std::move(meta));
        }
        // Early detection of incorrect coupling specifications (paper
        // §3.1): every connected region must have been defined.
        for (int conn : export_conns) {
          const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
          CCF_REQUIRE(own_exports.count(spec.exporter_region),
                      "program " << program_name << " never defined exported region '"
                                 << spec.exporter_region << "' required by connection "
                                 << conn);
        }
        for (int conn : import_conns) {
          const ConnectionSpec& spec = config.connections()[static_cast<std::size_t>(conn)];
          CCF_REQUIRE(own_imports.count(spec.importer_region),
                      "program " << program_name << " never defined imported region '"
                                 << spec.importer_region << "' required by connection "
                                 << conn);
        }
        // Ship our geometry to every peer rep.
        ship_peer_meta();
        maybe_broadcast_meta();
        break;
      }
      case kTagPeerRegionMeta: {
        Reader r(payload);
        const auto conn = r.get<std::uint32_t>();
        // emplace ignores duplicates (a peer re-shipped after a nudge).
        peer_meta.emplace(static_cast<int>(conn), RegionMeta::decode_from(r));
        // Acknowledge every receipt (duplicates included): the peer rep
        // re-ships until acked, so a lost ack is repaired by re-acking the
        // re-shipment.
        if (reliable_finish) {
          ctx.send(src, kTagPeerMetaAck, ConnMsg{conn}.encode());
        }
        maybe_broadcast_meta();
        break;
      }
      case kTagPeerMetaAck: {
        const ConnMsg msg = ConnMsg::decode(payload);
        peer_meta_acked.insert(static_cast<int>(msg.conn));
        break;
      }
      case kTagMetaNudge: {
        if (is_own_proc(src)) {
          // A worker never saw the meta broadcast: replay it to that
          // worker alone once it exists.
          if (meta_broadcast) {
            down.to_rank(static_cast<int>(src - pl.first), kTagRegionMetaBcast, meta_payload);
            ++result.meta_resends;
          }
        } else if (defs_received) {
          // A peer rep is missing our geometry: re-ship everything bound
          // for that rep (cheap, idempotent on the receiving side).
          ship_peer_meta();
          ++result.meta_resends;
        }
        break;
      }
      case kTagImportRequest: {
        const RequestMsg req = RequestMsg::decode(payload);
        const auto cached = import_answers.find({req.conn, req.seq});
        if (cached != import_answers.end()) {
          // Retried request whose answer already exists: replay the
          // broadcast instead of bothering the exporter again.
          down.bcast(import_answer_tag(static_cast<int>(req.conn)), cached->second.encode());
          ++result.answers_resent;
          break;
        }
        ctx.send(peer_rep_of(static_cast<int>(req.conn)), kTagRequestForward, req.encode());
        break;
      }
      case kTagRequestForward: {
        const RequestMsg req = RequestMsg::decode(payload);
        auto agg = aggregators.find(static_cast<int>(req.conn));
        CCF_CHECK(agg != aggregators.end(),
                  "request forwarded to non-exporter of connection " << req.conn);
        if (agg->second.is_answered(req.seq)) {
          // Duplicate of an answered request: the RepAnswer may have been
          // lost on the way back — resend it from the aggregator's cache.
          ctx.send(peer_rep_of(static_cast<int>(req.conn)), kTagRepAnswer,
                   agg->second.answer_of(req.seq).encode());
          ++result.answers_resent;
          break;
        }
        const bool duplicate = agg->second.is_open(req.seq);
        if (!duplicate) agg->second.open(req);
        else ++result.duplicates_ignored;
        // (Re-)forward to the workers. On the duplicate path this re-elicits
        // responses in case the first ProcForward or the responses were
        // lost; workers dedup by request seq and replay what they answered.
        down.bcast(kTagProcForward, req.encode());
        if (!duplicate) ++result.requests_forwarded;
        break;
      }
      case kTagProcResponse: {
        const ResponseMsg resp = ResponseMsg::decode(payload);
        const int rank = static_cast<int>(src - pl.first);
        auto agg = aggregators.find(static_cast<int>(resp.conn));
        CCF_CHECK(agg != aggregators.end(), "response for unknown connection " << resp.conn);
        ++result.responses_received;
        const RequestAggregator::Actions actions = agg->second.on_response(rank, resp);
        if (actions.answer_importer) {
          ctx.send(peer_rep_of(static_cast<int>(resp.conn)), kTagRepAnswer,
                   actions.answer_importer->encode());
          ++result.answers_sent;
        }
        if (!actions.buddy_help_ranks.empty()) {
          const AnswerMsg& answer = agg->second.answer_of(resp.seq);
          const transport::Payload help_payload = answer.encode();
          for (int r : actions.buddy_help_ranks) {
            down.to_rank(r, kTagBuddyHelp, help_payload);
            ++result.buddy_helps_sent;
          }
        }
        // A withheld ConnClosed becomes deliverable once this rank has
        // responded to every forwarded request (see notify_conn_closed).
        if (conn_closed_pending.count(static_cast<int>(resp.conn)) &&
            agg->second.rank_answered_all(rank)) {
          down.to_rank(rank, kTagConnClosed, ConnMsg{resp.conn}.encode());
          if ([&] {
                for (int r = 0; r < pl.nprocs; ++r) {
                  if (!agg->second.rank_answered_all(r)) return false;
                }
                return true;
              }()) {
            conn_closed_pending.erase(static_cast<int>(resp.conn));
          }
        }
        break;
      }
      case kTagRepAnswer: {
        const AnswerMsg answer = AnswerMsg::decode(payload);
        const auto [it, fresh] = import_answers.emplace(
            std::make_pair(answer.conn, answer.seq), answer);
        if (!fresh) ++result.duplicates_ignored;
        // (Re-)broadcast either way: a duplicate RepAnswer means the
        // exporter saw a retry, so some proc is still waiting.
        down.bcast(import_answer_tag(static_cast<int>(answer.conn)), it->second.encode());
        break;
      }
      case kTagImporterConnDone: {
        const ConnMsg msg = ConnMsg::decode(payload);
        conn_done_ranks[static_cast<int>(msg.conn)].insert(static_cast<int>(src - pl.first));
        if (!import_conns_done.insert(static_cast<int>(msg.conn)).second) {
          ++result.duplicates_ignored;
        }
        // Relay every time: the previous ConnFinished may have been lost.
        ctx.send(peer_rep_of(static_cast<int>(msg.conn)), kTagConnFinished, msg.encode());
        break;
      }
      case kTagConnFinished: {
        const ConnMsg msg = ConnMsg::decode(payload);
        if (!export_conns_finished.insert(static_cast<int>(msg.conn)).second) {
          ++result.duplicates_ignored;
        }
        // Tell the worker processes the importer left: they release every
        // snapshot held for this connection and stop buffering for it.
        // Re-broadcast on duplicates (idempotent at the workers).
        notify_conn_closed(static_cast<int>(msg.conn));
        if (reliable_finish) {
          ctx.send(src, kTagConnFinishedAck, msg.encode());
        }
        break;
      }
      case kTagConnFinishedAck: {
        const ConnMsg msg = ConnMsg::decode(payload);
        conn_finished_acked.insert(static_cast<int>(msg.conn));
        break;
      }
      case kTagMetaAck:
        meta_acked.insert(src);
        break;
      case kTagProcPressure:
        on_proc_pressure(src, payload);
        break;
      case kTagPressure: {
        // The exporter side of one of our import connections changed
        // pressure level: relay to our procs so they throttle requests.
        const PressureMsg msg = PressureMsg::decode(payload);
        down.bcast(kTagPressureBcast, msg.encode());
        ++result.pressure_broadcasts;
        break;
      }
      default:
        throw util::InternalError("rep of " + program_name + " got unexpected tag " +
                                  std::to_string(tag));
    }
  };

  auto process = [&](const Message& m) {
    ++result.wire_in;
    if (m.tag == kTagTreeUp) {
      ++result.frames_in;
      const std::vector<FrameEntry> entries = decode_frame(m.payload);
      // Dispatch cost scales with the entries carried, not the frames they
      // ride in: batching changes the framing, never the modeled work —
      // and partial frames let this per-entry work start before the
      // sub-reps finish draining their wave.
      if (options.rep_dispatch_seconds > 0 && !entries.empty()) {
        ctx.compute(options.rep_dispatch_seconds * static_cast<double>(entries.size()));
      }
      for (const FrameEntry& e : entries) {
        ++result.frame_entries_in;
        handle(pl.first + e.rank, e.tag, e.payload);
      }
      return;
    }
    if (options.rep_dispatch_seconds > 0) ctx.compute(options.rep_dispatch_seconds);
    if (down.enabled && is_own_proc(m.src)) {
      // With a tree up, a worker only ever speaks to us directly after
      // re-parenting (its sub-rep stopped relaying): serve it directly
      // from now on — tree frames toward it may be black-holed.
      down.direct_ranks.insert(static_cast<int>(m.src - pl.first));
    }
    handle(m.src, m.tag, m.payload);
  };

  const bool beats = options.heartbeat_interval_seconds > 0;
  double next_beat = beats ? ctx.now() + options.heartbeat_interval_seconds : 0;

  // A program with no connections still performs the geometry phase, then
  // shuts its processes down immediately.
  while (!all_finished()) {
    Message m;
    if (beats) {
      auto maybe = ctx.recv_until(MatchSpec{kAnyProc, kAnyTag}, next_beat);
      if (!maybe) {
        down.bcast(kTagRepHeartbeat, transport::empty_payload());
        ++result.heartbeats_sent;
        // Re-send un-acked ConnFinished notifications on the same tick;
        // after max_retries presume delivery (the odds of that many
        // independent losses are negligible) so shutdown always completes.
        if (reliable_finish) {
          if (meta_broadcast && static_cast<int>(meta_acked.size()) < pl.nprocs) {
            for (ProcId proc : pl.proc_ids()) {
              if (meta_acked.count(proc)) continue;
              if (++meta_resends[proc] > options.max_retries) {
                meta_acked.insert(proc);
                continue;
              }
              down.to_rank(static_cast<int>(proc - pl.first), kTagRegionMetaBcast,
                           meta_payload);
              ++result.meta_resends;
            }
          }
          if (defs_received && peer_meta_acked.size() < participated) {
            for (int conn : export_conns) {
              if (peer_meta_acked.count(conn)) continue;
              if (++peer_meta_resends[conn] > options.max_retries) {
                peer_meta_acked.insert(conn);
                continue;
              }
              ship_conn_meta(conn);
              ++result.meta_resends;
            }
            for (int conn : import_conns) {
              if (peer_meta_acked.count(conn)) continue;
              if (++peer_meta_resends[conn] > options.max_retries) {
                peer_meta_acked.insert(conn);
                continue;
              }
              ship_conn_meta(conn);
              ++result.meta_resends;
            }
          }
          for (int conn : import_conns_done) {
            if (conn_finished_acked.count(conn)) continue;
            if (++conn_finished_resends[conn] > options.max_retries) {
              conn_finished_acked.insert(conn);
              continue;
            }
            ctx.send(peer_rep_of(conn), kTagConnFinished,
                     ConnMsg{static_cast<std::uint32_t>(conn)}.encode());
          }
          for (const auto& [conn, agg] : aggregators) {
            for (const auto& u : agg.unresponsive_ranks()) {
              const std::pair<int, std::uint32_t> key{conn, u.request.seq};
              if (forward_abandoned.count(key)) continue;
              if (++forward_resends[key] > options.max_retries) {
                forward_abandoned.insert(key);
                continue;
              }
              const transport::Payload payload = u.request.encode();
              for (int rank : u.ranks) down.to_rank(rank, kTagProcForward, payload);
              ++result.forward_resends;
            }
          }
        }
        down.flush();
        next_beat = ctx.now() + options.heartbeat_interval_seconds;
        continue;
      }
      m = std::move(*maybe);
    } else {
      m = ctx.recv(MatchSpec{kAnyProc, kAnyTag});
    }
    process(m);
    if (down.enabled) {
      // Drain the rest of the wave so simultaneous arrivals coalesce into
      // one down-frame per top-level sub-rep. (Flat layouts keep the
      // strict one-message-per-iteration loop — byte-identical traffic.)
      while (auto more = ctx.try_recv(MatchSpec{kAnyProc, kAnyTag})) process(*more);
      down.flush();
    }
  }

  transport::Payload shutdown_payload = transport::empty_payload();
  if (pl.shards > 1) {
    Writer w;
    w.put<std::uint32_t>(static_cast<std::uint32_t>(shard));
    shutdown_payload = w.take();
  }
  down.bcast(kTagShutdownProc, shutdown_payload);
  down.flush();
  for (const auto& [conn, agg] : aggregators) {
    const auto& log = agg.answer_log();
    result.answers.insert(result.answers.end(), log.begin(), log.end());
  }
  return result;
}

}  // namespace ccf::core
