// The approximate matcher (paper §3.1, §4).
//
// Each export-side process keeps the history of timestamps it has exported
// for a region. Given an import request, evaluate() yields:
//   MATCH    — the best candidate is final (with the matched timestamp),
//   NO_MATCH — no exported timestamp can ever fall in the region,
//   PENDING  — a future export might still be (or beat) the best match.
//
// Exports arrive in strictly increasing timestamp order, so the outcome is
// decidable exactly when the latest export has reached the requested
// timestamp x (for every policy the best candidate can only improve while
// exports are still below x), or when the history is finalized (the
// program declared end-of-stream, so no future export exists).
#pragma once

#include <optional>
#include <vector>

#include "core/match_policy.hpp"
#include "core/timestamp.hpp"

namespace ccf::core {

enum class MatchResult : std::uint8_t { Match = 1, NoMatch = 2, Pending = 3 };

std::string to_string(MatchResult r);

/// A request against one region/connection.
struct MatchQuery {
  Timestamp requested = 0;
  MatchPolicy policy = MatchPolicy::REGL;
  double tolerance = 0;

  Interval region() const { return acceptable_region(policy, requested, tolerance); }
};

struct MatchAnswer {
  MatchResult result = MatchResult::Pending;
  Timestamp matched = kNeverExported;      ///< valid when result == Match
  Timestamp latest_exported = kNeverExported;

  bool decisive() const { return result != MatchResult::Pending; }
};

class ExportHistory {
 public:
  /// Pure observation counters over evaluate() calls (model-checking /
  /// stats interface; recording them never changes behaviour).
  struct EvalCounters {
    std::uint64_t evaluations = 0;  ///< evaluate() calls
    std::uint64_t pending = 0;      ///< answers that were PENDING
    std::uint64_t matches = 0;      ///< answers that were MATCH
    std::uint64_t no_matches = 0;   ///< answers that were NO_MATCH
  };

  /// Records an export; timestamps must be strictly increasing. The
  /// latest-export watermark always advances; the timestamp is kept as a
  /// match candidate only if it lies above the prune clip (a pruned-away
  /// timestamp can never be requested again, see prune_below()).
  void record(Timestamp t);

  /// Declares end-of-stream: every future evaluate() is decisive.
  void finalize();
  bool finalized() const { return finalized_; }

  Timestamp latest() const;
  std::size_t count() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }

  /// Evaluates a request against the history (see file header).
  MatchAnswer evaluate(const MatchQuery& query) const;

  /// Best candidate currently inside `region` for request x, if any —
  /// regardless of decidability (used to track the provisional candidate
  /// the non-buddy-help baseline keeps buffered, Fig. 8).
  std::optional<Timestamp> best_candidate(const MatchQuery& query) const;

  /// Drops history entries strictly below `t` (they can never match any
  /// future request once the request sequence has passed them). Evaluation
  /// correctness requires callers to prune only below resolved regions.
  void prune_below(Timestamp t);

  /// Drops entries <= t (used after a match at t is consumed: matched
  /// timestamps increase strictly, so t itself is also done).
  void prune_through(Timestamp t);

  const std::vector<Timestamp>& timestamps() const { return timestamps_; }

  const EvalCounters& eval_counters() const { return eval_counters_; }

 private:
  std::vector<Timestamp> timestamps_;  ///< candidate list, strictly increasing
  Timestamp latest_ = kNeverExported;  ///< true latest export (never pruned)
  Timestamp clip_ = kNeverExported;    ///< candidates must be above the clip
  bool clip_exclusive_ = false;        ///< true: > clip_; false: >= clip_
  bool finalized_ = false;
  mutable EvalCounters eval_counters_;
};

/// Testing-only semantic mutation point, read once from the environment
/// variable CCF_MC_MUTATE_MATCHER. When set, best_candidate() deliberately
/// returns the lowest in-region candidate instead of the closest one — a
/// realistic matcher bug the model-checking harness must catch (see
/// docs/TESTING.md, "Mutation catch"). Never set in production; the lazy
/// static makes the default path one predictable branch.
bool matcher_mutation_enabled();

}  // namespace ccf::core
