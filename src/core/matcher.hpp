// The approximate matcher (paper §3.1, §4) — interval-indexed engine.
//
// Each export-side process keeps the history of timestamps it has exported
// for a region. Given an import request, evaluate() yields:
//   MATCH    — the best candidate is final (with the matched timestamp),
//   NO_MATCH — no exported timestamp can ever fall in the region,
//   PENDING  — a future export might still be (or beat) the best match.
//
// Exports arrive in strictly increasing timestamp order, so the outcome is
// decidable exactly when the latest export has reached the requested
// timestamp x (for every policy the best candidate can only improve while
// exports are still below x), or when the history is finalized (the
// program declared end-of-stream, so no future export exists).
//
// Engine structure (sort-based matching, after Marzolla & D'Angelo):
//   * the candidate history is a timestamp-sorted vector, so the best
//     in-region candidate of a query is found by binary search in
//     O(log n) — the closest candidate to x is either the largest
//     candidate <= x or the smallest candidate >= x inside the region;
//   * outstanding (still-PENDING) requests are registered in an
//     IntervalIndex: an endpoint-sorted list of their acceptable regions
//     plus, per request, the cached best candidate and the resulting
//     decidability threshold (region.hi, or the REG mirror point
//     2x - best when a below-request best exists). Recording one export
//     then resolves every newly-decidable request in a single
//     O(log k + covered) sweep instead of re-evaluating each request;
//   * prune_below()/prune_through() keep the index consistent: entries
//     whose cached best was pruned away get their best re-derived by
//     binary search before any further decidability test.
//
// The naive reference implementation (linear window scans, per-request
// re-evaluation) is preserved verbatim as NaiveHistory
// (core/naive_matcher.hpp) and differentially fuzzed against this engine
// in tests/core/matcher_fuzz_test.cpp.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <vector>

#include "core/match_policy.hpp"
#include "core/timestamp.hpp"
#include "util/check.hpp"

namespace ccf::core {

enum class MatchResult : std::uint8_t { Match = 1, NoMatch = 2, Pending = 3 };

std::string to_string(MatchResult r);

/// A request against one region/connection.
struct MatchQuery {
  Timestamp requested = 0;
  MatchPolicy policy = MatchPolicy::REGL;
  double tolerance = 0;

  Interval region() const { return acceptable_region(policy, requested, tolerance); }
};

struct MatchAnswer {
  MatchResult result = MatchResult::Pending;
  Timestamp matched = kNeverExported;      ///< valid when result == Match
  Timestamp latest_exported = kNeverExported;

  bool decisive() const { return result != MatchResult::Pending; }
};

/// Index over the pending (not-yet-decisive) requests of one export
/// history. Requests are registered FIFO; because request timestamps
/// increase strictly per connection and the policy/tolerance are fixed,
/// the acceptable regions are monotone — each new request's [lo, hi] lies
/// at or above the previous one's. insert() asserts this, and every query
/// against the index exploits it: the set of regions containing a
/// timestamp is a contiguous FIFO range found by binary search.
///
/// Per entry the index caches the best in-region candidate and the
/// decidability threshold derived from it:
///     threshold = best ? min(region.hi, 2x - best) : region.hi
/// so `latest >= threshold` is exactly ExportHistory::evaluate()'s
/// decidability condition (a best at/above x makes 2x - best <= x <=
/// latest, i.e. immediately decidable; a below-x best stays beatable until
/// exports pass its mirror point; with no best only the region's upper
/// edge decides). The cache is maintained by the owning history's
/// record/prune hooks; a fresh export updates only the covered entries
/// (one sweep), and pruning re-derives only the bests it invalidated.
class IntervalIndex {
 public:
  struct Entry {
    std::uint64_t id = 0;
    MatchQuery query;
    Interval region;
    std::optional<Timestamp> best;  ///< == best_candidate(query), maintained
    Timestamp threshold = 0;        ///< decidable once latest >= threshold
  };

  /// Contiguous FIFO range [first, first + count) of entries.
  struct Span {
    std::size_t first = 0;
    std::size_t count = 0;
  };

  /// Pure observation counters over index maintenance (bench/model-check
  /// structural interface; recording them never changes behaviour).
  struct Counters {
    std::uint64_t inserts = 0;
    std::uint64_t record_sweeps = 0;  ///< on_record() calls with entries present
    std::uint64_t swept_entries = 0;  ///< covered entries visited across sweeps
    std::uint64_t best_updates = 0;   ///< cached bests improved by a new export
    std::uint64_t recomputes = 0;     ///< bests re-derived after a prune
  };

  /// Registers a pending query with its current best candidate. The
  /// query's region must be monotone w.r.t. the last registered entry.
  std::uint64_t insert(const MatchQuery& query, std::optional<Timestamp> best);

  /// Drops an entry (O(1) for the FIFO front, the engine's only case).
  void erase(std::uint64_t id);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const Entry* front() const { return entries_.empty() ? nullptr : &entries_.front(); }
  const Entry& at(std::size_t fifo_offset) const { return entries_[fifo_offset]; }
  const Entry* find(std::uint64_t id) const;

  /// The FIFO range of entries whose region contains t — O(log k).
  Span covering(Timestamp t) const;

  /// True when t is the cached best candidate of any entry — O(log k).
  /// The eviction planner (mem/eviction.hpp) consumes this to rank
  /// resident snapshots by decidability.
  bool is_candidate(Timestamp t) const { return bests_.find(t) != bests_.end(); }

  /// Record hook: a new export t (the new latest, above the candidate
  /// clip) entered the history. Updates the cached bests and thresholds
  /// of the covered entries in one sweep.
  void on_record(Timestamp t);

  /// Prune hook: candidates below `clip` (strictly below when
  /// `through` is false, at-or-below when true) were erased from the
  /// history. Re-derives the best of every entry whose cached best was
  /// invalidated; `recompute(query)` must return the history's current
  /// best_candidate(query).
  template <class RecomputeFn>
  void on_prune(Timestamp clip, bool through, RecomputeFn&& recompute) {
    for (Entry& e : entries_) {
      if (!e.best) continue;
      if (*e.best < clip || (through && *e.best == clip)) {
        ++counters_.recomputes;
        set_best(e, recompute(e.query));
      }
    }
  }

  const Counters& counters() const { return counters_; }

 private:
  void set_best(Entry& e, std::optional<Timestamp> best);

  std::deque<Entry> entries_;        ///< FIFO; ids and regions both monotone
  std::multiset<Timestamp> bests_;   ///< cached bests, for is_candidate()
  std::uint64_t next_id_ = 1;
  Counters counters_;
};

class ExportHistory {
 public:
  /// Pure observation counters over evaluate() calls (model-checking /
  /// stats interface; recording them never changes behaviour).
  struct EvalCounters {
    std::uint64_t evaluations = 0;  ///< evaluate() calls
    std::uint64_t pending = 0;      ///< answers that were PENDING
    std::uint64_t matches = 0;      ///< answers that were MATCH
    std::uint64_t no_matches = 0;   ///< answers that were NO_MATCH
  };

  /// Records an export; timestamps must be strictly increasing. The
  /// latest-export watermark always advances; the timestamp is kept as a
  /// match candidate only if it lies above the prune clip (a pruned-away
  /// timestamp can never be requested again, see prune_below()). Sweeps
  /// the pending-request index: covered entries' bests and decidability
  /// thresholds are updated in place.
  void record(Timestamp t);

  /// Declares end-of-stream: every future evaluate() is decisive.
  void finalize();
  bool finalized() const { return finalized_; }

  Timestamp latest() const;
  std::size_t count() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }

  /// Evaluates a request against the history (see file header). O(log n).
  MatchAnswer evaluate(const MatchQuery& query) const;

  /// Best candidate currently inside `region` for request x, if any —
  /// regardless of decidability (used to track the provisional candidate
  /// the non-buddy-help baseline keeps buffered, Fig. 8). O(log n): the
  /// best is the closer of the nearest candidates on either side of x.
  std::optional<Timestamp> best_candidate(const MatchQuery& query) const;

  /// Drops history entries strictly below `t` (they can never match any
  /// future request once the request sequence has passed them). Evaluation
  /// correctness requires callers to prune only below resolved regions.
  /// Pending-index entries whose cached best was dropped are re-derived.
  void prune_below(Timestamp t);

  /// Drops entries <= t (used after a match at t is consumed: matched
  /// timestamps increase strictly, so t itself is also done).
  void prune_through(Timestamp t);

  const std::vector<Timestamp>& timestamps() const { return timestamps_; }

  const EvalCounters& eval_counters() const { return eval_counters_; }

  // --- Pending-request index (batch resolution) ------------------------

  /// Registers a still-undecided query with the pending index; its best
  /// candidate is derived once by binary search. Returns the entry id.
  std::uint64_t index_pending(const MatchQuery& query);

  /// Unregisters a resolved query.
  void unindex_pending(std::uint64_t id) { pending_.erase(id); }

  const IntervalIndex& pending() const { return pending_; }
  std::size_t pending_count() const { return pending_.size(); }

  /// FIFO range of indexed requests whose region contains t — O(log k).
  IntervalIndex::Span pending_covering(Timestamp t) const { return pending_.covering(t); }

  /// O(1) decidability test of the oldest indexed request: true exactly
  /// when evaluate() on it would be decisive.
  bool front_pending_decidable() const {
    const IntervalIndex::Entry* e = pending_.front();
    return e != nullptr && (finalized_ || latest_ >= e->threshold);
  }

  /// Batch sweep: evaluates indexed requests in FIFO order while the
  /// front is decidable, invoking `resolve(id, answer)` for each. The
  /// resolver must unindex the entry (resolution may also prune the
  /// history; the index tracks it, so the next front's decidability is
  /// judged against the post-prune state exactly as per-request
  /// re-evaluation would). Each decided request costs one evaluate()
  /// (same counter semantics as the naive engine's decisive answers);
  /// still-pending requests are not evaluated at all — that is the
  /// batch-resolution saving. Returns the number of requests resolved.
  template <class ResolveFn>
  std::size_t evaluate_all(ResolveFn&& resolve) {
    std::size_t resolved = 0;
    while (const IntervalIndex::Entry* e = pending_.front()) {
      if (!(finalized_ || latest_ >= e->threshold)) break;
      const std::uint64_t id = e->id;
      const MatchAnswer answer = evaluate(e->query);
      CCF_CHECK(answer.decisive(),
                "indexed front was threshold-decidable but evaluate() stayed PENDING");
      resolve(id, answer);
      CCF_CHECK(pending_.front() == nullptr || pending_.front()->id != id,
                "evaluate_all() resolver must unindex the resolved request");
      ++resolved;
    }
    return resolved;
  }

 private:
  std::vector<Timestamp> timestamps_;  ///< candidate list, strictly increasing
  Timestamp latest_ = kNeverExported;  ///< true latest export (never pruned)
  Timestamp clip_ = kNeverExported;    ///< candidates must be above the clip
  bool clip_exclusive_ = false;        ///< true: > clip_; false: >= clip_
  bool finalized_ = false;
  IntervalIndex pending_;              ///< outstanding requests, FIFO
  mutable EvalCounters eval_counters_;
};

/// Testing-only semantic mutation point, read once from the environment
/// variable CCF_MC_MUTATE_MATCHER. When set, best_candidate() deliberately
/// returns the lowest in-region candidate instead of the closest one — a
/// realistic matcher bug the model-checking harness must catch (see
/// docs/TESTING.md, "Mutation catch"). Never set in production; the lazy
/// static makes the default path one predictable branch. The index caches
/// the same mutated bests, so the indexed engine stays self-consistent —
/// and consistently wrong, which is what conformance must detect.
bool matcher_mutation_enabled();

}  // namespace ccf::core
