// Sub-representative: one node of a program's control aggregation tree
// (docs/PROTOCOL.md, "Hierarchical representatives").
//
// A sub-rep is a stateless batching relay. Upward, it drains the control
// messages of its children after each blocking receive (in virtual time,
// collective responses arrive in simultaneous waves) and coalesces them
// into one batched frame per destination — so the rep's inbound wire
// traffic per collective wave is bounded by its fan-in, not the program's
// rank count. Entries keep their originating worker rank, so the rep's
// per-rank aggregation state (silent-rank tracking, meta acks, shutdown
// gating) stays exact. Downward, it splits batched frames along the tree
// and unwraps them into plain per-proc control messages at the leaf level;
// workers never see frames.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"
#include "core/layout.hpp"
#include "core/options.hpp"
#include "runtime/process_context.hpp"

namespace ccf::core {

struct SubRepResult {
  std::uint64_t wire_in = 0;       ///< inbound wire messages
  std::uint64_t frames_up = 0;     ///< batched frames sent toward the rep
  std::uint64_t entries_up = 0;    ///< entries carried in those frames
  std::uint64_t frames_down = 0;   ///< frames relayed/unwrapped downward
  std::uint64_t entries_down = 0;  ///< entries delivered downward
};

/// Runs tree node `node_index` of `program_name` to completion. Exits after
/// relaying the ShutdownProc broadcast of every rep shard, on sustained
/// silence from above (failure-tolerant mode; its children re-parent), or
/// at the configured debug kill time.
SubRepResult run_subrep(runtime::ProcessContext& ctx, const Config& config,
                        const DeploymentLayout& layout, const std::string& program_name,
                        int node_index, FrameworkOptions options = {});

}  // namespace ccf::core
