// Pure request-aggregation logic of the representative process (paper §4).
//
// For each forwarded import request the rep collects one response per
// exporter process. The legal aggregates are: all MATCH, all NO-MATCH, all
// PENDING, PENDING+MATCH, PENDING+NO-MATCH — and all decisive answers must
// agree (same result, same matched timestamp). Anything else violates the
// collective-operation contract (Property 1) and raises ProtocolViolation.
//
// The final answer is the first decisive response. When buddy-help is
// enabled, the answer is also forwarded to every process that has not
// itself produced a decisive response — immediately for processes that
// already answered PENDING, and reactively when a late PENDING arrives
// after the answer was determined.
//
// This class is pure state (no I/O) so the aggregation and legality rules
// are unit-testable in isolation; rep.cpp wires it to messages.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/protocol.hpp"

namespace ccf::core {

class RequestAggregator {
 public:
  RequestAggregator(int nprocs, bool buddy_help);

  /// Side effects the caller (the rep) must perform after an event.
  struct Actions {
    std::optional<AnswerMsg> answer_importer;  ///< send to the importer rep
    std::vector<int> buddy_help_ranks;         ///< forward the answer to these ranks
  };

  /// A new request was forwarded to the processes.
  void open(const RequestMsg& request);

  /// Response from exporter process `rank`. Throws ProtocolViolation on an
  /// illegal aggregate.
  Actions on_response(int rank, const ResponseMsg& response);

  bool is_open(std::uint32_t seq) const;
  bool is_answered(std::uint32_t seq) const;
  const AnswerMsg& answer_of(std::uint32_t seq) const;

  /// Requests with ranks that have not responded at all — the ProcForward
  /// (or the response) may have been lost. Even for answered requests a
  /// silent rank matters: a contributing rank that never saw the request
  /// never ships its data piece, wedging the importer's transfer. The rep
  /// re-forwards to exactly these ranks in failure-tolerant mode.
  struct Unresponsive {
    RequestMsg request;
    std::vector<int> ranks;
  };
  std::vector<Unresponsive> unresponsive_ranks() const;

  /// True when `rank` has responded (PENDING or decisive) to every request
  /// ever forwarded on this connection. Only then is it safe to tell the
  /// rank the connection closed: a response proves the rank holds the
  /// request as a local obligation, so closing cannot free a snapshot a
  /// still-in-flight (delayed) forward would later need.
  bool rank_answered_all(int rank) const;

  std::uint64_t buddy_helps_issued() const { return buddy_helps_issued_; }

  /// Observation hook: every collective answer this aggregator determined,
  /// in determination order (model-checking conformance interface; append-
  /// only, never consulted by the protocol itself).
  const std::vector<AnswerMsg>& answer_log() const { return answer_log_; }

 private:
  struct RequestState {
    Timestamp requested = 0;
    std::uint32_t conn = 0;
    std::set<int> pending_ranks;   ///< answered PENDING, no decisive yet
    std::set<int> decisive_ranks;  ///< produced a decisive answer
    std::set<int> helped_ranks;    ///< buddy-help sent
    std::optional<AnswerMsg> answer;
  };

  int nprocs_;
  bool buddy_help_;
  std::map<std::uint32_t, RequestState> requests_;
  std::uint64_t buddy_helps_issued_ = 0;
  std::vector<AnswerMsg> answer_log_;
};

}  // namespace ccf::core
