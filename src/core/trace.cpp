#include "core/trace.hpp"

#include <cstdio>
#include <sstream>

namespace ccf::core {

namespace {
std::string ts(Timestamp t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", t);
  return buf;
}
}  // namespace

std::string Trace::line(const TraceEvent& e) const {
  std::ostringstream os;
  switch (e.kind) {
    case TraceKind::ExportCopy:
      os << "export " << name_ << "@" << ts(e.a) << ", call memcpy.";
      break;
    case TraceKind::ExportSkip:
      os << "export " << name_ << "@" << ts(e.a) << ", skip memcpy.";
      break;
    case TraceKind::Request:
      os << "receive request for " << name_ << "@" << ts(e.a) << ".";
      break;
    case TraceKind::Reply:
      os << "reply {" << name_ << "@" << ts(e.a) << ", " << to_string(e.result) << ", "
         << name_ << "@" << ts(e.b) << "}.";
      break;
    case TraceKind::BuddyHelp:
      os << "receive buddy-help {" << name_ << "@" << ts(e.a) << ", "
         << (e.result == MatchResult::Match ? "YES" : "NO") << ", " << name_ << "@"
         << ts(e.b) << "}.";
      break;
    case TraceKind::Remove:
      if (e.a == e.b) {
        os << "remove " << name_ << "@" << ts(e.a) << ".";
      } else {
        os << "remove " << name_ << "@" << ts(e.a) << ", ..., " << name_ << "@" << ts(e.b)
           << ".";
      }
      break;
    case TraceKind::SendData:
      os << "send " << name_ << "@" << ts(e.a) << " out.";
      break;
    case TraceKind::LocalDecision:
      os << "decide {" << name_ << "@" << ts(e.a) << ", " << to_string(e.result) << ", "
         << name_ << "@" << ts(e.b) << "}.";
      break;
  }
  return os.str();
}

std::string Trace::listing() const {
  std::ostringstream os;
  std::size_t n = 1;
  for (const auto& e : events_) {
    os << n++ << "  " << line(e) << "\n";
  }
  return os.str();
}

}  // namespace ccf::core
