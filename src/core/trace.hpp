// Event tracing for export-side processes.
//
// Captures the exact event sequences the paper prints as Figures 5, 7 and
// 8 ("export D@1.6, call memcpy." / "export D@15.6, skip memcpy." /
// "receive buddy-help {D@20, YES, D@19.6}." ...), so the reproduction can
// be compared line-by-line against the paper's listings.
#pragma once

#include <string>
#include <vector>

#include "core/matcher.hpp"
#include "core/timestamp.hpp"

namespace ccf::core {

enum class TraceKind : std::uint8_t {
  ExportCopy,    ///< export t, call memcpy
  ExportSkip,    ///< export t, skip memcpy
  Request,       ///< receive request for x
  Reply,         ///< reply {x, result, latest}
  BuddyHelp,     ///< receive buddy-help {x, result, match}
  Remove,        ///< remove buffered range [a, b] (a == b for one entry)
  SendData,      ///< send t out
  LocalDecision, ///< this process decided {x, result, match} itself
};

struct TraceEvent {
  TraceKind kind;
  double when = 0;      ///< ctx.now()
  Timestamp a = 0;      ///< primary timestamp (export t / request x / range lo)
  Timestamp b = 0;      ///< secondary (match / latest / range hi)
  MatchResult result = MatchResult::Pending;
};

/// Bounded, per-process event recorder. Disabled recorders cost one branch
/// per emit.
class Trace {
 public:
  explicit Trace(std::string object_name = "D", bool enabled = false,
                 std::size_t max_events = 1 << 20)
      : name_(std::move(object_name)), enabled_(enabled), max_events_(max_events) {}

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void emit(TraceKind kind, double when, Timestamp a, Timestamp b = 0,
            MatchResult result = MatchResult::Pending) {
    if (!enabled_ || events_.size() >= max_events_) return;
    events_.push_back(TraceEvent{kind, when, a, b, result});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Renders the numbered listing in the paper's Figure 5/7/8 style.
  std::string listing() const;

  /// Renders one event line (without the line number).
  std::string line(const TraceEvent& e) const;

 private:
  std::string name_;
  bool enabled_;
  std::size_t max_events_;
  std::vector<TraceEvent> events_;
};

}  // namespace ccf::core
