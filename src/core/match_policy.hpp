// Approximate-match policies and acceptable regions (paper §3.1).
//
// Given a requested timestamp x and a per-connection tolerance tol, the
// policy defines the acceptable region:
//   REGL -> [x - tol, x]      (lower window; the paper's experiments)
//   REGU -> [x, x + tol]      (upper window)
//   REG  -> [x - tol, x + tol] (symmetric window)
// Among exported timestamps inside the region, the match is the one
// closest to x; REG ties (equidistant below/above) prefer the later
// timestamp (more recent data).
#pragma once

#include <string>

#include "core/timestamp.hpp"

namespace ccf::core {

enum class MatchPolicy { REGL, REGU, REG };

MatchPolicy parse_match_policy(const std::string& text);
std::string to_string(MatchPolicy policy);

/// Closed interval [lo, hi].
struct Interval {
  Timestamp lo = 0;
  Timestamp hi = 0;

  bool contains(Timestamp t) const { return t >= lo && t <= hi; }
  bool below(Timestamp t) const { return t < lo; }   ///< t precedes the interval
  bool above(Timestamp t) const { return t > hi; }   ///< t passed the interval

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// The acceptable region for request x under (policy, tol).
Interval acceptable_region(MatchPolicy policy, Timestamp x, double tol);

/// True if candidate `a` is a strictly better match than `b` for request x
/// (closer to x; ties prefer the later timestamp).
bool better_match(Timestamp a, Timestamp b, Timestamp x);

}  // namespace ccf::core
