// Where a worker process sends its control traffic (docs/PROTOCOL.md,
// "Hierarchical representatives").
//
// Flat layout (no tree): straight to the owning rep shard — connection c
// is owned by shard c % shards, and with shards == 1 this is exactly the
// single pre-tree rep. Aggregation tree: everything goes to the worker's
// leaf sub-rep (`parent`), which batches entries into control frames and
// routes them to the right shard at the top of the tree (whole waves by
// default; partial frames when the layout's flush_count/flush_bytes
// pipelining knobs are set — the routing is identical either way). A
// worker whose sub-rep stops relaying (departure detection) re-parents by
// clearing `has_parent`, falling back to the direct shard layer.
#pragma once

#include "transport/message.hpp"

namespace ccf::core {

using transport::ProcId;

struct ControlRoute {
  ProcId base = 0;     ///< id of rep shard 0
  int shards = 1;      ///< shard count; shard s has id base + s
  ProcId parent = 0;   ///< leaf sub-rep id, valid when has_parent
  bool has_parent = false;

  bool via_parent() const { return has_parent; }

  /// Destination for a control message scoped to connection `conn`.
  ProcId up_conn(int conn) const {
    if (has_parent) return parent;
    return base + (shards > 1 ? conn % shards : 0);
  }

  /// Destination for a message bound for shard `s` specifically.
  ProcId up_shard(int s) const { return has_parent ? parent : base + s; }

  /// Receive filter for rep->proc control traffic: the parent sub-rep, or
  /// the whole contiguous shard range.
  transport::MatchSpec control_match() const {
    if (has_parent) return transport::MatchSpec{parent, transport::kAnyTag};
    return transport::MatchSpec{base, transport::kAnyTag, shards};
  }
};

}  // namespace ccf::core
