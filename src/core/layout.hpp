// Deployment layout: assigns global ProcIds to every program's processes
// and its representative (rep) process.
//
// Program i's worker processes occupy a contiguous id block followed by
// the rep's id, in config order. Every participant derives the same layout
// from the shared Config, so no id exchange is needed at startup.
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "transport/message.hpp"

namespace ccf::core {

using transport::ProcId;

struct ProgramLayout {
  std::string name;
  int nprocs = 0;
  ProcId first = 0;  ///< id of rank 0
  ProcId rep = 0;    ///< id of the representative process

  ProcId proc(int rank) const;
  std::vector<ProcId> proc_ids() const;
};

class DeploymentLayout {
 public:
  explicit DeploymentLayout(const Config& config);

  const ProgramLayout& program(const std::string& name) const;
  const std::vector<ProgramLayout>& programs() const { return programs_; }

  /// Total ids consumed (workers + reps); ids are [0, total).
  ProcId total_processes() const { return next_id_; }

  /// Name of the program owning `id` and whether it is the rep.
  struct Owner {
    std::string program;
    int rank = -1;  ///< -1 for the rep
  };
  Owner owner_of(ProcId id) const;

 private:
  std::vector<ProgramLayout> programs_;
  ProcId next_id_ = 0;
};

}  // namespace ccf::core
