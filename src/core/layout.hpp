// Deployment layout: assigns global ProcIds to every program's processes,
// its representative (rep) shards, and its aggregation-tree sub-reps.
//
// Program i's worker processes occupy a contiguous id block followed by its
// S rep shard ids and then its T sub-rep ids, in config order. Every
// participant derives the same layout from the shared Config, so no id
// exchange is needed at startup. With the defaults (rep_shards == 1,
// rep_fanin == 0) the allocation is [workers][rep] — identical to the
// pre-tree layout.
//
// Aggregation tree (rep_fanin == F >= 2, docs/PROTOCOL.md): worker ranks
// are grouped bottom-up into sub-reps of at most F children; sub-rep
// layers repeat until one layer has at most F nodes, which attach directly
// to the rep shards. No tree is built when nprocs <= F (all workers attach
// directly to the rep, which then already has <= F children).
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "transport/message.hpp"

namespace ccf::core {

using transport::ProcId;

/// One sub-rep node of a program's aggregation tree. `children` are worker
/// ranks when `leaf_level`, else indices of tree nodes one level down.
struct TreeNode {
  bool leaf_level = false;
  std::vector<int> children;
  int parent = -1;  ///< index of the parent tree node, -1 for top level
};

struct ProgramLayout {
  std::string name;
  int nprocs = 0;
  ProcId first = 0;  ///< id of rank 0
  ProcId rep = 0;    ///< id of the representative process (shard 0)
  int shards = 1;    ///< rep shard count; shard s has id rep + s
  int fanin = 0;     ///< aggregation-tree fan-in, 0 = flat (no tree)
  int flush_count = 0;  ///< partial-frame flush after N entries, 0 = per wave
  int flush_bytes = 0;  ///< partial-frame flush after B payload bytes, 0 = per wave
  ProcId subrep_first = 0;       ///< id of tree node 0 (when !tree.empty())
  std::vector<TreeNode> tree;    ///< aggregation tree, empty when flat

  ProcId proc(int rank) const;
  std::vector<ProcId> proc_ids() const;

  ProcId shard_id(int s) const { return rep + s; }
  ProcId subrep(int node) const { return subrep_first + node; }

  /// The rep shard owning connection `conn` (conn % shards).
  ProcId control_target(int conn) const { return rep + (shards > 1 ? conn % shards : 0); }

  /// Tree node a worker rank reports to, or -1 when the tree is empty
  /// (the rank talks to the rep shards directly).
  int parent_of_rank(int rank) const;

  /// Tree nodes whose parent is the rep layer (parent == -1).
  std::vector<int> top_nodes() const;

  /// Worker ranks in the subtree rooted at tree node `node`.
  std::vector<int> subtree_ranks(int node) const;

  /// Builds the bottom-up fan-in tree for `nprocs` ranks; empty when
  /// fanin < 2 or nprocs <= fanin.
  static std::vector<TreeNode> build_tree(int nprocs, int fanin);
};

class DeploymentLayout {
 public:
  explicit DeploymentLayout(const Config& config);

  const ProgramLayout& program(const std::string& name) const;
  const std::vector<ProgramLayout>& programs() const { return programs_; }

  /// Total ids consumed (workers + rep shards + sub-reps); ids are [0, total).
  ProcId total_processes() const { return next_id_; }

  /// Name of the program owning `id` and whether it is a rep shard (-1)
  /// or a sub-rep (-2).
  struct Owner {
    std::string program;
    int rank = -1;  ///< -1 for a rep shard, -2 for a sub-rep
  };
  Owner owner_of(ProcId id) const;

 private:
  std::vector<ProgramLayout> programs_;
  ProcId next_id_ = 0;
};

}  // namespace ccf::core
