// Serialization of per-process run results for multi-process execution.
//
// Under runtime::ProcessCluster the process bodies run in forked children,
// so their writes into the launcher's result slots land in copy-on-write
// memory. These codecs turn one slot's results into bytes in the child
// (ResultChannel::encode) and apply them to the real slot in the launcher
// (ResultChannel::decode). In-process execution modes never use them —
// the body's direct writes remain the canonical path.
//
// The encoding rides the same Writer/Reader as every wire payload; both
// ends are forks of one binary, so trivially-copyable aggregates travel
// as raw bytes.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/rep.hpp"
#include "core/stats.hpp"
#include "core/subrep.hpp"
#include "core/trace.hpp"

namespace ccf::core {

std::vector<std::byte> encode_proc_result(
    const ProcStats& stats, const std::map<std::string, std::string>& traces,
    const std::map<std::string, std::vector<TraceEvent>>& events);

void decode_proc_result(const std::vector<std::byte>& bytes, ProcStats& stats,
                        std::map<std::string, std::string>& traces,
                        std::map<std::string, std::vector<TraceEvent>>& events);

std::vector<std::byte> encode_rep_result(const RepResult& result);
RepResult decode_rep_result(const std::vector<std::byte>& bytes);

std::vector<std::byte> encode_subrep_result(const SubRepResult& result);
SubRepResult decode_subrep_result(const std::vector<std::byte>& bytes);

}  // namespace ccf::core
