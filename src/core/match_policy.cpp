#include "core/match_policy.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ccf::core {

MatchPolicy parse_match_policy(const std::string& text) {
  if (text == "REGL") return MatchPolicy::REGL;
  if (text == "REGU") return MatchPolicy::REGU;
  if (text == "REG") return MatchPolicy::REG;
  throw util::InvalidArgument("unknown match policy '" + text + "' (expected REGL/REGU/REG)");
}

std::string to_string(MatchPolicy policy) {
  switch (policy) {
    case MatchPolicy::REGL: return "REGL";
    case MatchPolicy::REGU: return "REGU";
    case MatchPolicy::REG: return "REG";
  }
  return "?";
}

Interval acceptable_region(MatchPolicy policy, Timestamp x, double tol) {
  CCF_REQUIRE(tol >= 0.0, "negative match tolerance " << tol);
  switch (policy) {
    case MatchPolicy::REGL: return Interval{x - tol, x};
    case MatchPolicy::REGU: return Interval{x, x + tol};
    case MatchPolicy::REG: return Interval{x - tol, x + tol};
  }
  throw util::InternalError("unhandled match policy");
}

bool better_match(Timestamp a, Timestamp b, Timestamp x) {
  const double da = std::abs(a - x);
  const double db = std::abs(b - x);
  if (da != db) return da < db;
  return a > b;  // equidistant: prefer the more recent timestamp
}

}  // namespace ccf::core
