#include "core/matcher.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/check.hpp"

namespace ccf::core {

bool matcher_mutation_enabled() {
  static const bool on = std::getenv("CCF_MC_MUTATE_MATCHER") != nullptr;
  return on;
}

std::string to_string(MatchResult r) {
  switch (r) {
    case MatchResult::Match: return "MATCH";
    case MatchResult::NoMatch: return "NO_MATCH";
    case MatchResult::Pending: return "PENDING";
  }
  return "?";
}

// --- IntervalIndex ---------------------------------------------------------

namespace {

Timestamp threshold_for(const MatchQuery& query, const Interval& region,
                        const std::optional<Timestamp>& best) {
  if (!best) return region.hi;
  // latest >= min(hi, 2x - best)  ⟺  latest >= hi || latest >= 2x - best,
  // i.e. exactly evaluate()'s decidability disjunction.
  return std::min(region.hi, 2 * query.requested - *best);
}

}  // namespace

std::uint64_t IntervalIndex::insert(const MatchQuery& query, std::optional<Timestamp> best) {
  Entry e;
  e.id = next_id_++;
  e.query = query;
  e.region = query.region();
  if (!entries_.empty()) {
    const Entry& back = entries_.back();
    CCF_REQUIRE(e.region.lo >= back.region.lo && e.region.hi >= back.region.hi,
                "pending regions must be monotone: [" << e.region.lo << ", " << e.region.hi
                                                      << "] after [" << back.region.lo << ", "
                                                      << back.region.hi << "]");
  }
  entries_.push_back(e);
  set_best(entries_.back(), best);
  ++counters_.inserts;
  return entries_.back().id;
}

const IntervalIndex::Entry* IntervalIndex::find(std::uint64_t id) const {
  // Ids are assigned monotonically, so the FIFO deque is sorted by id.
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, std::uint64_t want) { return e.id < want; });
  if (it == entries_.end() || it->id != id) return nullptr;
  return &*it;
}

void IntervalIndex::erase(std::uint64_t id) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, std::uint64_t want) { return e.id < want; });
  CCF_REQUIRE(it != entries_.end() && it->id == id, "erase of unknown index entry " << id);
  if (it->best) {
    const auto bit = bests_.find(*it->best);
    CCF_CHECK(bit != bests_.end(), "index bests_ out of sync with entry bests");
    bests_.erase(bit);
  }
  entries_.erase(it);
}

IntervalIndex::Span IntervalIndex::covering(Timestamp t) const {
  // Monotone regions: entries with hi >= t are a suffix, entries with
  // lo <= t a prefix — their intersection is the contiguous covering run.
  const auto first = std::partition_point(entries_.begin(), entries_.end(),
                                          [t](const Entry& e) { return e.region.hi < t; });
  const auto last =
      std::partition_point(first, entries_.end(),
                           [t](const Entry& e) { return e.region.lo <= t; });
  Span span;
  span.first = static_cast<std::size_t>(first - entries_.begin());
  span.count = static_cast<std::size_t>(last - first);
  return span;
}

void IntervalIndex::on_record(Timestamp t) {
  if (entries_.empty()) return;
  ++counters_.record_sweeps;
  const Span span = covering(t);
  for (std::size_t i = 0; i < span.count; ++i) {
    Entry& e = entries_[span.first + i];
    ++counters_.swept_entries;
    if (matcher_mutation_enabled()) {
      // Mirror the mutated best_candidate(): first-in-region wins, so a
      // new export only becomes the best of a so-far-empty region (t is
      // the largest timestamp, hence lowest-in-region only when alone).
      if (!e.best) {
        set_best(e, t);
        ++counters_.best_updates;
      }
      continue;
    }
    if (!e.best || better_match(t, *e.best, e.query.requested)) {
      set_best(e, t);
      ++counters_.best_updates;
    }
  }
}

void IntervalIndex::set_best(Entry& e, std::optional<Timestamp> best) {
  if (e.best) {
    const auto it = bests_.find(*e.best);
    CCF_CHECK(it != bests_.end(), "index bests_ out of sync with entry bests");
    bests_.erase(it);
  }
  e.best = best;
  if (e.best) bests_.insert(*e.best);
  e.threshold = threshold_for(e.query, e.region, e.best);
}

// --- ExportHistory ---------------------------------------------------------

void ExportHistory::record(Timestamp t) {
  CCF_REQUIRE(!finalized_, "record() after finalize()");
  CCF_REQUIRE(t > latest_, "export timestamps must be strictly increasing: " << t << " after "
                                                                             << latest_);
  latest_ = t;
  const bool above_clip = clip_exclusive_ ? t > clip_ : t >= clip_;
  if (above_clip) {
    timestamps_.push_back(t);
    // Below-clip exports never become candidates, so only an above-clip
    // export can improve an indexed request's best.
    pending_.on_record(t);
  }
}

void ExportHistory::finalize() { finalized_ = true; }

Timestamp ExportHistory::latest() const { return latest_; }

std::optional<Timestamp> ExportHistory::best_candidate(const MatchQuery& query) const {
  const Interval region = query.region();
  const auto end = timestamps_.end();
  // First candidate at/above the region's lower edge.
  const auto lo_it = std::lower_bound(timestamps_.begin(), end, region.lo);
  if (matcher_mutation_enabled()) {
    // Deliberate bug (harness conformance target): first-in-region wins.
    if (lo_it != end && *lo_it <= region.hi) return *lo_it;
    return std::nullopt;
  }
  // The history is sorted, so the closest candidate to x is one of the
  // two neighbours of x inside the region: the largest candidate below x
  // or the smallest at/above it (x always lies inside its own region, so
  // the at/above neighbour needs only the upper-edge check).
  const auto x_it = std::lower_bound(lo_it, end, query.requested);
  std::optional<Timestamp> best;
  if (x_it != lo_it) best = *(x_it - 1);
  if (x_it != end && *x_it <= region.hi) {
    if (!best || better_match(*x_it, *best, query.requested)) best = *x_it;
  }
  return best;
}

MatchAnswer ExportHistory::evaluate(const MatchQuery& query) const {
  ++eval_counters_.evaluations;
  MatchAnswer answer;
  answer.latest_exported = latest();

  // Decidable when no future export can change the outcome: at
  // end-of-stream, once exports passed the region's upper edge, or once
  // the current best is unbeatable. A best at/above the request wins
  // outright (later exports are farther). A best below the request (REG)
  // stays beatable until exports pass its mirror point 2x - best: an
  // export there ties on distance and the tie prefers the later
  // timestamp. For REGL the region ends at the request, so the upper-edge
  // test reduces to the paper's latest >= requested rule.
  const Interval region = query.region();
  const std::optional<Timestamp> best = best_candidate(query);
  bool decidable = finalized_ || answer.latest_exported >= region.hi;
  if (!decidable && best) {
    decidable = answer.latest_exported >= 2 * query.requested - *best;
  }
  if (!decidable) {
    answer.result = MatchResult::Pending;
    ++eval_counters_.pending;
    return answer;
  }
  if (best) {
    answer.result = MatchResult::Match;
    answer.matched = *best;
    ++eval_counters_.matches;
  } else {
    answer.result = MatchResult::NoMatch;
    ++eval_counters_.no_matches;
  }
  return answer;
}

void ExportHistory::prune_below(Timestamp t) {
  const auto it = std::lower_bound(timestamps_.begin(), timestamps_.end(), t);
  timestamps_.erase(timestamps_.begin(), it);
  if (t > clip_ || (t == clip_ && clip_exclusive_)) {
    clip_ = t;
    clip_exclusive_ = false;  // future records >= t stay eligible
  }
  pending_.on_prune(t, /*through=*/false,
                    [this](const MatchQuery& q) { return best_candidate(q); });
}

void ExportHistory::prune_through(Timestamp t) {
  const auto it = std::upper_bound(timestamps_.begin(), timestamps_.end(), t);
  timestamps_.erase(timestamps_.begin(), it);
  if (t >= clip_) {
    clip_ = t;
    clip_exclusive_ = true;  // future records must exceed t
  }
  pending_.on_prune(t, /*through=*/true,
                    [this](const MatchQuery& q) { return best_candidate(q); });
}

std::uint64_t ExportHistory::index_pending(const MatchQuery& query) {
  return pending_.insert(query, best_candidate(query));
}

}  // namespace ccf::core
