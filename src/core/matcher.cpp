#include "core/matcher.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccf::core {

std::string to_string(MatchResult r) {
  switch (r) {
    case MatchResult::Match: return "MATCH";
    case MatchResult::NoMatch: return "NO_MATCH";
    case MatchResult::Pending: return "PENDING";
  }
  return "?";
}

void ExportHistory::record(Timestamp t) {
  CCF_REQUIRE(!finalized_, "record() after finalize()");
  CCF_REQUIRE(t > latest_, "export timestamps must be strictly increasing: " << t << " after "
                                                                             << latest_);
  latest_ = t;
  const bool above_clip = clip_exclusive_ ? t > clip_ : t >= clip_;
  if (above_clip) timestamps_.push_back(t);
}

void ExportHistory::finalize() { finalized_ = true; }

Timestamp ExportHistory::latest() const { return latest_; }

std::optional<Timestamp> ExportHistory::best_candidate(const MatchQuery& query) const {
  const Interval region = query.region();
  // Candidates inside [lo, hi]; history is sorted, so scan the window.
  const auto lo_it = std::lower_bound(timestamps_.begin(), timestamps_.end(), region.lo);
  std::optional<Timestamp> best;
  for (auto it = lo_it; it != timestamps_.end() && *it <= region.hi; ++it) {
    if (!best || better_match(*it, *best, query.requested)) best = *it;
  }
  return best;
}

MatchAnswer ExportHistory::evaluate(const MatchQuery& query) const {
  MatchAnswer answer;
  answer.latest_exported = latest();

  // Decidable once exports reached the requested timestamp (no future
  // export can beat the current best for any policy), or at end-of-stream.
  const bool decidable = finalized_ || answer.latest_exported >= query.requested;
  if (!decidable) {
    answer.result = MatchResult::Pending;
    return answer;
  }
  if (auto best = best_candidate(query)) {
    answer.result = MatchResult::Match;
    answer.matched = *best;
  } else {
    answer.result = MatchResult::NoMatch;
  }
  return answer;
}

void ExportHistory::prune_below(Timestamp t) {
  const auto it = std::lower_bound(timestamps_.begin(), timestamps_.end(), t);
  timestamps_.erase(timestamps_.begin(), it);
  if (t > clip_ || (t == clip_ && clip_exclusive_)) {
    clip_ = t;
    clip_exclusive_ = false;  // future records >= t stay eligible
  }
}

void ExportHistory::prune_through(Timestamp t) {
  const auto it = std::upper_bound(timestamps_.begin(), timestamps_.end(), t);
  timestamps_.erase(timestamps_.begin(), it);
  if (t >= clip_) {
    clip_ = t;
    clip_exclusive_ = true;  // future records must exceed t
  }
}

}  // namespace ccf::core
