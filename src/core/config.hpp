// Framework-level configuration (paper §3.1, Figure 2).
//
// The configuration is separate from all user programs: it lists the
// participating programs (name, host, executable, process count) and the
// directed connections between exported and imported regions, each with a
// match policy and tolerance:
//
//   P0 cluster0 /home/meou/bin/P0 16
//   P1 cluster1 /home/meou/bin/P1 8
//   #
//   P0.r1 P1.r1 REGL 0.2
//
// Lines that are exactly "#" separate the two sections; lines starting
// with "#" otherwise are comments. Validation detects incorrect coupling
// specifications early (e.g. a connection naming an undeclared program, or
// two exporters feeding one imported region).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/match_policy.hpp"
#include "dist/box.hpp"

namespace ccf::core {

struct ProgramSpec {
  std::string name;
  std::string host;
  std::string executable;
  int nprocs = 0;
  std::vector<std::string> extra_args;

  /// Representative aggregation-tree fan-in (docs/PROTOCOL.md, "Hierarchical
  /// representatives"). 0 keeps the single flat representative — the exact
  /// pre-tree topology and wire traffic, byte for byte. A value F >= 2
  /// interposes sub-representative relays between the workers and the rep:
  /// every tree node has at most F children, so the rep's inbound control
  /// traffic is bounded by F wire messages per collective wave instead of
  /// one per rank. Config file syntax: a `fanin=F` token on the program
  /// line. F == 1 is rejected (a one-child tree never contracts).
  int rep_fanin = 0;

  /// Number of sibling representative shards. Connection c is owned by
  /// shard `c % rep_shards`, so no single process serializes every peer of
  /// a hub program. 1 (the default) keeps today's single rep. Config file
  /// syntax: a `shards=S` token on the program line.
  int rep_shards = 1;

  /// Pipelined tree aggregation (docs/PROTOCOL.md, "Partial tree frames").
  /// Sub-reps and rep shards normally buffer a whole drained wave before
  /// emitting one TreeUp/TreeDown frame per destination. A nonzero
  /// tree_flush_count flushes a destination's frame early once it holds
  /// that many entries; a nonzero tree_flush_bytes flushes once the
  /// buffered payload bytes reach the threshold. Either trigger fires
  /// independently; the wave-end flush always remains, so 0/0 (the
  /// default) reproduces today's one-frame-per-wave traffic byte for
  /// byte. Config file syntax: `flush_count=N` / `flush_bytes=B` tokens
  /// on the program line.
  int tree_flush_count = 0;
  int tree_flush_bytes = 0;
};

struct ConnectionSpec {
  std::string exporter_program;
  std::string exporter_region;
  std::string importer_program;
  std::string importer_region;
  MatchPolicy policy = MatchPolicy::REGL;
  double tolerance = 0;

  /// Optional sub-region of the exporter's domain carried by this
  /// connection (the paper's "shared boundaries or overlapped regions"):
  /// the importer's whole region maps onto this window, so the window's
  /// dimensions must equal the imported region's dimensions. Config file
  /// syntax appends 4 integers: row_begin row_end col_begin col_end.
  /// Absent -> the whole exporter domain is transferred (dims must match).
  std::optional<dist::Box> exporter_window;
};

class Config {
 public:
  static Config parse_string(const std::string& text);
  static Config parse_file(const std::string& path);

  /// Programmatic construction (used by tests and benches).
  void add_program(ProgramSpec spec);
  void add_connection(ConnectionSpec spec);

  /// Cross-checks the specification; throws InvalidArgument on problems.
  void validate() const;

  const std::vector<ProgramSpec>& programs() const { return programs_; }
  const std::vector<ConnectionSpec>& connections() const { return connections_; }

  const ProgramSpec& program(const std::string& name) const;
  bool has_program(const std::string& name) const;

  /// Connection index in connections() order; used as the wire conn id.
  std::vector<int> connections_exporting(const std::string& program,
                                         const std::string& region) const;
  std::optional<int> connection_importing(const std::string& program,
                                          const std::string& region) const;
  std::vector<int> connections_of_exporter_program(const std::string& program) const;
  std::vector<int> connections_of_importer_program(const std::string& program) const;

  std::string summary() const;

 private:
  std::vector<ProgramSpec> programs_;
  std::vector<ConnectionSpec> connections_;
};

}  // namespace ccf::core
