// Export-side versioned data buffering (paper §3, §4.1).
//
// The temporal-consistency model requires an exporting process to keep a
// snapshot of each exported data object until the framework can prove no
// importer request can ever match it. BufferPool holds those snapshots,
// keyed by timestamp, with a per-connection "may still be needed" bitmask
// (one region can feed several importing programs; a snapshot is freed
// when no connection needs it).
//
// Snapshots are stored pre-framed for the wire: each buffer begins with
// the u64 element-count prefix Writer::put_vector would emit, followed by
// the raw doubles. wire_payload() aliases that frame as a refcounted
// transport::Payload, so a full-box transfer ships the pooled snapshot
// itself — zero extra copies, one buffer shared across every destination
// rank and connection. Freed frames are recycled through a small arena
// free list, so steady-state exporting performs no heap allocation at all.
//
// The pool charges the modeled copy cost through ProcessContext::copy, so
// the virtual-time experiments see the same buffering cost structure the
// paper measures, and tracks Eq.(1)/(2) accounting: the cost of snapshots
// that were freed without ever being transferred is the "unnecessary
// buffering time" T_ub that buddy-help attacks. All byte accounting
// (bytes_copied, live_bytes, peak_bytes) counts snapshot *data* bytes;
// the 8-byte frame prefix is framing, not buffered data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/timestamp.hpp"
#include "mem/governor.hpp"
#include "mem/spill.hpp"
#include "runtime/process_context.hpp"
#include "transport/message.hpp"

namespace ccf::core {

using ConnMask = std::uint32_t;

struct BufferStats {
  std::uint64_t stores = 0;         ///< snapshots copied into the pool
  std::uint64_t skips = 0;          ///< exports that avoided the copy entirely
  std::uint64_t frees_unsent = 0;   ///< snapshots freed without any transfer
  std::uint64_t frees_sent = 0;     ///< snapshots freed after >= 1 transfer
  std::uint64_t sends = 0;          ///< per-connection transfers served
  std::uint64_t bytes_copied = 0;
  std::uint64_t arena_allocs = 0;   ///< frames newly heap-allocated
  std::uint64_t arena_reuses = 0;   ///< frames recycled from the free list
  double seconds_buffering = 0;     ///< modeled cost of all stores
  double seconds_unnecessary = 0;   ///< modeled cost of unsent stores (T_ub)
  std::size_t peak_entries = 0;
  std::size_t peak_bytes = 0;       ///< peak *resident* snapshot bytes

  std::size_t live_entries = 0;  ///< maintained by the pool
  std::size_t live_bytes = 0;    ///< resident bytes (excludes spilled)

  // Spill tier (mem::SpillStore; zero everywhere unless governance is on).
  std::uint64_t evictions = 0;    ///< snapshots demoted to the spill tier
  std::uint64_t restores = 0;     ///< spilled snapshots restored (late MATCH)
  std::uint64_t spill_bytes = 0;  ///< cumulative data bytes written to spill
  std::uint64_t spill_frees = 0;  ///< spilled snapshots freed without restore
  std::size_t live_spilled_entries = 0;
  std::size_t live_spilled_bytes = 0;
};

class BufferPool {
 public:
  /// Snapshots `count` doubles from `src` for timestamp `t`, needed by the
  /// connections in `needed`. Charges the copy through `ctx`. Returns the
  /// modeled cost in seconds.
  double store(Timestamp t, const double* src, std::size_t count, ConnMask needed,
               runtime::ProcessContext& ctx);

  /// Records an export that skipped buffering (for the stats only).
  void note_skip() { ++stats_.skips; }

  bool has(Timestamp t) const { return entries_.count(t) > 0; }
  std::size_t size() const { return entries_.size(); }

  /// Read-only view over a buffered snapshot's elements (no copy; points
  /// past the frame's wire prefix into the stored doubles).
  class SnapshotView {
   public:
    SnapshotView(const double* data, std::size_t size) : data_(data), size_(size) {}
    const double* data() const { return data_; }
    std::size_t size() const { return size_; }
    double operator[](std::size_t i) const { return data_[i]; }
    const double* begin() const { return data_; }
    const double* end() const { return data_ + size_; }

   private:
    const double* data_;
    std::size_t size_;
  };

  /// Snapshot data for a transfer; throws if absent.
  SnapshotView snapshot(Timestamp t) const;

  /// The snapshot's wire frame ([u64 count][doubles] — Writer::put_vector
  /// framing) as a payload aliasing the pooled buffer. Sending it copies
  /// nothing; the frame stays alive (and out of the arena) while any
  /// in-flight payload still references it.
  transport::Payload wire_payload(Timestamp t) const;

  /// Marks a per-connection transfer of entry `t` as performed.
  void mark_sent(Timestamp t, int conn_index);

  /// Details of an entry fully freed by a drop call; used by the exporter
  /// state for Eq.(1) attribution and trace emission.
  struct Freed {
    Timestamp t = 0;
    double cost_seconds = 0;
    bool was_sent = false;
  };

  /// Connection `conn_index` no longer needs entry `t`; frees the entry
  /// when no connection needs it (returned). No-op if absent.
  std::optional<Freed> drop(Timestamp t, int conn_index);

  /// Connection no longer needs any entry with timestamp < `t`. Returns
  /// the entries that became fully free, ascending.
  std::vector<Freed> drop_below(Timestamp t, int conn_index);

  /// Timestamps currently buffered (ascending).
  std::vector<Timestamp> buffered_timestamps() const;

  /// Timestamps < t buffered and still needed by `conn_index` (ascending).
  std::vector<Timestamp> buffered_below(Timestamp t, int conn_index) const;

  // --- buffer governance (src/mem; all no-ops until attached) ------------

  /// Routes residency accounting through `governor` (may be null) and
  /// demotions through `spill` (may be null). Call before the first store.
  void attach_memory(mem::MemoryGovernor* governor, mem::SpillStore* spill);

  /// Caps the recycling arena at `max_frames` parked frames and (when
  /// `max_bytes` > 0) `max_bytes` parked bytes.
  void set_arena_limits(std::size_t max_frames, std::size_t max_bytes);

  std::size_t arena_frames() const { return arena_.size(); }
  std::size_t arena_bytes() const { return arena_bytes_; }

  bool can_spill() const { return spill_ != nullptr; }
  bool is_spilled(Timestamp t) const;

  /// Resident (non-spilled) timestamps, ascending.
  std::vector<Timestamp> resident_timestamps() const;

  /// True when entry `t` is resident and its frame is not aliased by an
  /// in-flight payload (spilling an aliased frame reclaims nothing).
  bool spillable(Timestamp t) const;

  /// Snapshot data bytes of entry `t` (excluding the wire prefix).
  std::size_t data_bytes(Timestamp t) const;

  /// Demotes entry `t` to the spill tier, releasing its resident frame.
  /// Returns the data bytes reclaimed (0 when `t` is not spillable).
  std::size_t spill_out(Timestamp t);

  /// Restores entry `t` from the spill tier if it was demoted, so
  /// snapshot()/wire_payload() can serve it. Byte-identical round trip.
  void ensure_resident(Timestamp t);

  /// Bytes the governor is short of to restore spilled entry `t` within
  /// budget (0 when `t` is resident or the pool is ungoverned). Lets the
  /// caller shed other snapshots before the restore charges the budget.
  std::size_t restore_shortfall(Timestamp t) const;

  const BufferStats& stats() const { return stats_; }

 private:
  /// One wire-framed snapshot buffer: [u64 count][count doubles].
  /// Heap-allocated once, then cycled pool -> payload refs -> arena.
  struct SnapshotFrame {
    std::unique_ptr<std::byte[]> bytes;
    std::size_t capacity = 0;  ///< allocated bytes (>= size)
    std::size_t size = 0;      ///< frame bytes in use (prefix + data)
  };

  struct Entry {
    std::shared_ptr<SnapshotFrame> frame;  ///< null while spilled
    std::size_t count = 0;  ///< element count (frame holds prefix + these)
    ConnMask needed = 0;
    bool ever_sent = false;
    double cost_seconds = 0;
    mem::SpillStore::Ticket ticket;  ///< valid only while frame is null
  };

  /// Default cap on frames parked on the free list awaiting reuse
  /// (overridable via set_arena_limits / MemoryOptions::arena_capacity).
  static constexpr std::size_t kArenaCapacity = 8;

  std::shared_ptr<SnapshotFrame> acquire_frame(std::size_t frame_bytes);
  void park_frame(std::shared_ptr<SnapshotFrame> frame);
  void free_entry_locked(std::map<Timestamp, Entry>::iterator it);

  std::map<Timestamp, Entry> entries_;
  std::vector<std::shared_ptr<SnapshotFrame>> arena_;
  std::size_t arena_bytes_ = 0;  ///< capacity bytes parked across arena_
  std::size_t arena_max_frames_ = kArenaCapacity;
  std::size_t arena_max_bytes_ = 0;  ///< 0 = no byte cap
  mem::MemoryGovernor* governor_ = nullptr;
  mem::SpillStore* spill_ = nullptr;
  BufferStats stats_;
};

}  // namespace ccf::core
