#include "core/report.hpp"

#include <ostream>

#include "util/table.hpp"

namespace ccf::core {

void print_run_report(const CoupledSystem& system, std::ostream& os) {
  for (const auto& prog : system.config().programs()) {
    os << "program " << prog.name << " (" << prog.nprocs << " processes";
    const RepResult& rep = system.rep_result(prog.name);
    if (rep.requests_forwarded > 0 || rep.buddy_helps_sent > 0) {
      os << "; rep: " << rep.requests_forwarded << " requests, " << rep.answers_sent
         << " answers, " << rep.buddy_helps_sent << " buddy-helps";
    }
    if (rep.frames_in > 0 || rep.frames_out > 0) {
      os << "; tree: " << rep.frames_in << " frames in (" << rep.frame_entries_in
         << " entries), " << rep.frames_out << " frames out (" << rep.frame_entries_out
         << " entries)";
    }
    os << ")\n";

    bool any_exports = false, any_imports = false;
    for (int r = 0; r < prog.nprocs; ++r) {
      const ProcStats& stats = system.proc_stats(prog.name, r);
      any_exports |= !stats.exports.empty();
      any_imports |= !stats.imports.empty();
    }

    if (any_exports) {
      util::TableWriter table({"rank", "region", "exports", "memcpys", "skips", "transfers",
                               "helps", "stalls", "T_ub ms", "cp/B", "peakB", "evict",
                               "spillB"});
      for (int r = 0; r < prog.nprocs; ++r) {
        for (const auto& e : system.proc_stats(prog.name, r).exports) {
          table.add_row({std::to_string(r), e.region, std::to_string(e.exports),
                         std::to_string(e.buffer.stores), std::to_string(e.buffer.skips),
                         std::to_string(e.transfers), std::to_string(e.buddy_helps_received),
                         std::to_string(e.stalls), util::TableWriter::fmt(e.t_ub() * 1e3, 3),
                         util::TableWriter::fmt(e.copies_per_delivered_byte(), 2),
                         std::to_string(e.buffer.peak_bytes),
                         std::to_string(e.buffer.evictions),
                         std::to_string(e.buffer.spill_bytes)});
        }
      }
      if (table.rows() > 0) table.print(os);
    }
    if (any_imports) {
      util::TableWriter table({"rank", "region", "imports", "matches", "no-match"});
      for (int r = 0; r < prog.nprocs; ++r) {
        for (const auto& i : system.proc_stats(prog.name, r).imports) {
          table.add_row({std::to_string(r), i.region, std::to_string(i.imports),
                         std::to_string(i.matches), std::to_string(i.no_matches)});
        }
      }
      if (table.rows() > 0) table.print(os);
    }

    // Failure-tolerance accounting: printed only when something actually
    // happened, so lossless runs keep the exact report layout.
    std::uint64_t retries = 0, stale = 0, commit_retries = 0, done_retries = 0;
    std::uint64_t dup_req = 0, reordered = 0, degraded = 0, departed = 0;
    for (int r = 0; r < prog.nprocs; ++r) {
      const ProcStats& stats = system.proc_stats(prog.name, r);
      retries += stats.ft.request_retries;
      stale += stats.ft.stale_answers;
      commit_retries += stats.ft.commit_retries;
      done_retries += stats.ft.conn_done_retries;
      departed += stats.ft.rep_departed ? 1 : 0;
      for (const auto& e : stats.exports) {
        dup_req += e.duplicate_requests;
        reordered += e.reordered_requests;
        degraded += e.degraded_conns;
      }
    }
    if (retries + stale + commit_retries + done_retries + dup_req + reordered + degraded +
            departed >
        0) {
      os << "  fault tolerance: " << retries << " request retries, " << stale
         << " stale answers, " << commit_retries << " commit retries, " << done_retries
         << " conn-done retries, " << dup_req << " duplicate requests, " << reordered
         << " reordered requests, " << degraded << " degraded conns, " << departed
         << " departed procs\n";
    }
    os << "\n";
  }
  os << "end time: " << system.end_time() << " s\n";
}

void write_run_report_csv(const CoupledSystem& system, const std::string& path) {
  util::CsvWriter csv(path);
  csv.write_row({"program", "rank", "kind", "region", "exports", "memcpys", "skips",
                 "transfers", "helps", "stalls", "t_ub_seconds", "imports", "matches",
                 "no_matches", "dup_requests", "reordered_requests", "degraded_conns",
                 "request_retries", "stale_answers", "bytes_delivered", "bytes_pack_copied",
                 "copies_per_byte", "sends_aliased", "sends_packed", "peak_buffered_bytes",
                 "evictions", "spill_bytes", "restores", "rep_requests", "rep_answers",
                 "rep_helps", "rep_pressure", "transport"});
  for (const auto& prog : system.config().programs()) {
    // Fabric the program's traffic rode (sim|shm|tcp), repeated on every
    // one of its rows so the CSV is self-describing per program.
    const std::string transport = system.transport_kind(prog.name);
    // One control-plane row per program: the rep layer's per-message-class
    // totals (summed across shards). rank -1 marks the row as belonging to
    // the representative, not any worker process.
    const RepResult& rep = system.rep_result(prog.name);
    csv.write_row({prog.name, "-1", "rep", "-", "0", "0", "0", "0", "0", "0", "0", "0", "0",
                   "0", "0", "0", "0", "0", "0", "0", "0", "0", "0", "0", "0", "0", "0", "0",
                   std::to_string(rep.requests_forwarded), std::to_string(rep.answers_sent),
                   std::to_string(rep.buddy_helps_sent),
                   std::to_string(rep.pressure_signals + rep.pressure_notices +
                                  rep.pressure_broadcasts),
                   transport});
    for (int r = 0; r < prog.nprocs; ++r) {
      const ProcStats& stats = system.proc_stats(prog.name, r);
      for (const auto& e : stats.exports) {
        csv.write_row({prog.name, std::to_string(r), "export", e.region,
                       std::to_string(e.exports), std::to_string(e.buffer.stores),
                       std::to_string(e.buffer.skips), std::to_string(e.transfers),
                       std::to_string(e.buddy_helps_received), std::to_string(e.stalls),
                       util::TableWriter::fmt(e.t_ub(), 9), "0", "0", "0",
                       std::to_string(e.duplicate_requests),
                       std::to_string(e.reordered_requests),
                       std::to_string(e.degraded_conns), "0", "0",
                       std::to_string(e.bytes_delivered), std::to_string(e.bytes_pack_copied),
                       util::TableWriter::fmt(e.copies_per_delivered_byte(), 4),
                       std::to_string(e.sends_aliased), std::to_string(e.sends_packed),
                       std::to_string(e.buffer.peak_bytes),
                       std::to_string(e.buffer.evictions),
                       std::to_string(e.buffer.spill_bytes),
                       std::to_string(e.buffer.restores), "0", "0", "0", "0", transport});
      }
      for (const auto& i : stats.imports) {
        csv.write_row({prog.name, std::to_string(r), "import", i.region, "0", "0", "0", "0",
                       "0", "0", "0", std::to_string(i.imports), std::to_string(i.matches),
                       std::to_string(i.no_matches), "0", "0", "0",
                       std::to_string(stats.ft.request_retries),
                       std::to_string(stats.ft.stale_answers), "0", "0", "0", "0", "0", "0",
                       "0", "0", "0", "0", "0", "0", "0", transport});
      }
    }
  }
  csv.flush();
}

}  // namespace ccf::core
