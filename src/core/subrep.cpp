#include "core/subrep.hpp"

#include <cstdlib>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "core/protocol.hpp"
#include "util/check.hpp"

namespace ccf::core {

using runtime::MatchSpec;
using runtime::Message;
using transport::kAnyProc;
using transport::kAnyTag;
using transport::Reader;

namespace {

/// Mutation-catch hook (tests/modelcheck): when set, the relay silently
/// drops every 3rd upward entry, breaking batched-answer coalescing. The
/// conformance gate must flag the resulting divergence.
bool mutate_tree() {
  static const bool on = std::getenv("CCF_MC_MUTATE_TREE") != nullptr;
  return on;
}

/// First u32 of a payload, 0 for payloads too short to carry one. All
/// conn-scoped control messages lead with their u32 conn; MetaAck leads
/// with its target shard.
std::uint32_t leading_u32(const transport::Payload& p) {
  if (p.size() < sizeof(std::uint32_t)) return 0;
  Reader r(p);
  return r.get<std::uint32_t>();
}

/// True for upward tags every shard needs a copy of (not scoped to one
/// connection): region definitions, meta nudges, and per-process pressure
/// level changes.
bool all_shard_tag(transport::Tag tag) {
  return tag == kTagRegionDefs || tag == kTagMetaNudge || tag == kTagProcPressure;
}

}  // namespace

SubRepResult run_subrep(runtime::ProcessContext& ctx, const Config& config,
                        const DeploymentLayout& layout, const std::string& program_name,
                        int node_index, FrameworkOptions options) {
  (void)config;
  const ProgramLayout& pl = layout.program(program_name);
  CCF_REQUIRE(node_index >= 0 && node_index < static_cast<int>(pl.tree.size()),
              "sub-rep node " << node_index << " outside tree of " << program_name);
  const TreeNode& node = pl.tree[static_cast<std::size_t>(node_index)];
  CCF_REQUIRE(ctx.id() == pl.subrep(node_index), "sub-rep body running on wrong process id");
  const bool top = node.parent == -1;

  // Child process ids, and — for interior nodes — which child subtree each
  // worker rank lives in (down-frame splitting).
  std::vector<ProcId> child_ids;
  std::vector<std::vector<int>> child_ranks;  ///< ranks per child, index-aligned
  std::vector<int> rank_to_child(static_cast<std::size_t>(pl.nprocs), -1);
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const int c = node.children[i];
    child_ids.push_back(node.leaf_level ? pl.proc(c) : pl.subrep(c));
    std::vector<int> ranks = node.leaf_level ? std::vector<int>{c} : pl.subtree_ranks(c);
    for (int r : ranks) rank_to_child[static_cast<std::size_t>(r)] = static_cast<int>(i);
    child_ranks.push_back(std::move(ranks));
  }

  const bool tolerant =
      options.failure_tolerance() && options.departure_timeout_seconds > 0;
  const bool kill_me = options.debug_kill_subrep == node_index &&
                       options.debug_kill_subrep_program == program_name;

  SubRepResult res;
  std::uint64_t up_seq = 0;  ///< mutation hook counter
  std::set<int> shutdown_shards;
  double last_down_seen = ctx.now();

  // Upward coalescing buffers: one frame per destination per wave. Interior
  // nodes have a single destination (the parent node); top nodes route
  // per rep shard. With pipelined aggregation (flush_count/flush_bytes) a
  // destination's partial frame ships as soon as the threshold fills, so
  // the parent starts dispatching entries while this node is still
  // draining its wave; the wave-end flush keeps liveness.
  const std::size_t up_dests = top ? static_cast<std::size_t>(pl.shards) : 1;
  std::vector<std::vector<FrameEntry>> up(up_dests);
  std::vector<std::size_t> up_bytes(up_dests, 0);

  auto flush_dest = [&](std::size_t d) {
    if (up[d].empty()) return;
    const ProcId dest = top ? pl.shard_id(static_cast<int>(d)) : pl.subrep(node.parent);
    ctx.send(dest, kTagTreeUp, encode_frame(up[d]));
    ++res.frames_up;
    res.entries_up += up[d].size();
    up[d].clear();
    up_bytes[d] = 0;
  };

  auto threshold_hit = [&](std::size_t d) {
    return (pl.flush_count > 0 &&
            up[d].size() >= static_cast<std::size_t>(pl.flush_count)) ||
           (pl.flush_bytes > 0 && up_bytes[d] >= static_cast<std::size_t>(pl.flush_bytes));
  };

  auto push_up = [&](FrameEntry e) {
    if (mutate_tree() && (++up_seq % 3 == 0)) return;  // drop every 3rd entry
    if (top && pl.shards > 1 && all_shard_tag(e.tag)) {
      for (std::size_t d = 0; d < up.size(); ++d) {
        up[d].push_back(e);  // payload shared, zero-copy
        up_bytes[d] += e.payload.size();
        if (threshold_hit(d)) flush_dest(d);
      }
      return;
    }
    const int shard = top && pl.shards > 1
                          ? static_cast<int>(leading_u32(e.payload)) % pl.shards
                          : 0;
    const auto d = static_cast<std::size_t>(shard);
    up_bytes[d] += e.payload.size();
    up[d].push_back(std::move(e));
    if (threshold_hit(d)) flush_dest(d);
  };

  auto flush_up = [&] {
    for (std::size_t d = 0; d < up.size(); ++d) flush_dest(d);
  };

  auto relay_down = [&](const Message& m) {
    last_down_seen = ctx.now();
    const std::vector<FrameEntry> entries = decode_frame(m.payload);
    ++res.frames_down;
    // Dispatch cost scales with the entries carried, not the wire frames
    // they ride in: batching changes the framing, never the modeled work.
    if (options.rep_dispatch_seconds > 0 && !entries.empty()) {
      ctx.compute(options.rep_dispatch_seconds * static_cast<double>(entries.size()));
    }
    std::vector<std::vector<FrameEntry>> per_child;
    if (!node.leaf_level) per_child.resize(child_ids.size());
    for (const FrameEntry& e : entries) {
      if (e.tag == kTagShutdownProc && e.rank == kFrameBroadcast) {
        shutdown_shards.insert(pl.shards > 1 ? static_cast<int>(leading_u32(e.payload)) : 0);
      }
      if (node.leaf_level) {
        if (e.rank == kFrameBroadcast) {
          for (int r : node.children) ctx.send(pl.proc(r), e.tag, e.payload);
          res.entries_down += node.children.size();
        } else if (e.rank >= 0 && e.rank < pl.nprocs &&
                   rank_to_child[static_cast<std::size_t>(e.rank)] >= 0) {
          ctx.send(pl.proc(e.rank), e.tag, e.payload);
          ++res.entries_down;
        }
        continue;
      }
      if (e.rank == kFrameBroadcast) {
        for (auto& dest : per_child) dest.push_back(e);
      } else if (e.rank >= 0 && e.rank < pl.nprocs &&
                 rank_to_child[static_cast<std::size_t>(e.rank)] >= 0) {
        per_child[static_cast<std::size_t>(rank_to_child[static_cast<std::size_t>(e.rank)])]
            .push_back(e);
      }
    }
    for (std::size_t i = 0; i < per_child.size(); ++i) {
      if (per_child[i].empty()) continue;
      ctx.send(child_ids[i], kTagTreeDown, encode_frame(per_child[i]));
      res.entries_down += per_child[i].size();
    }
  };

  auto process = [&](const Message& m) {
    ++res.wire_in;
    if (m.tag == kTagTreeDown) {
      relay_down(m);  // charges dispatch per entry after decoding
    } else if (m.tag == kTagTreeUp) {
      // A child sub-rep's batch: re-route its entries (merging waves).
      std::vector<FrameEntry> entries = decode_frame(m.payload);
      if (options.rep_dispatch_seconds > 0 && !entries.empty()) {
        ctx.compute(options.rep_dispatch_seconds * static_cast<double>(entries.size()));
      }
      for (FrameEntry& e : entries) push_up(std::move(e));
    } else {
      if (options.rep_dispatch_seconds > 0) ctx.compute(options.rep_dispatch_seconds);
      // Plain control message from one of our worker children.
      CCF_CHECK(m.src >= pl.first && m.src < pl.first + pl.nprocs,
                "sub-rep of " << program_name << " got tag " << m.tag
                              << " from non-child process " << m.src);
      push_up(FrameEntry{static_cast<std::int32_t>(m.src - pl.first), m.tag, m.payload});
    }
  };

  while (static_cast<int>(shutdown_shards.size()) < pl.shards) {
    std::optional<Message> m;
    if (tolerant || kill_me) {
      double deadline = tolerant ? last_down_seen + options.departure_timeout_seconds : 1e300;
      if (kill_me && options.debug_kill_subrep_at < deadline) {
        deadline = options.debug_kill_subrep_at;
      }
      m = ctx.recv_until(MatchSpec{kAnyProc, kAnyTag}, deadline);
      if (!m) {
        if (kill_me && ctx.now() >= options.debug_kill_subrep_at) return res;  // silent death
        // Nothing from above for a whole departure window: the rep layer
        // is gone (or this node was partitioned off). Exit; the children
        // detect the same silence and re-parent onto the shards.
        return res;
      }
    } else {
      m = ctx.recv(MatchSpec{kAnyProc, kAnyTag});
    }
    process(*m);
    // Drain the rest of the wave before flushing: simultaneous arrivals
    // coalesce into one frame per destination.
    while (auto more = ctx.try_recv(MatchSpec{kAnyProc, kAnyTag})) process(*more);
    flush_up();
  }
  return res;
}

}  // namespace ccf::core
