// Simulation timestamps.
//
// Every exported/imported data object carries an increasing simulation
// timestamp; import requests name a timestamp and the framework performs
// approximate matching against the exported sequence (paper §3.1).
#pragma once

#include <limits>

namespace ccf::core {

using Timestamp = double;

inline constexpr Timestamp kNeverExported = -std::numeric_limits<Timestamp>::infinity();

}  // namespace ccf::core
