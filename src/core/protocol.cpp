#include "core/protocol.hpp"

#include "util/check.hpp"

namespace ccf::core {

using transport::Reader;
using transport::Writer;

Payload RequestMsg::encode() const {
  Writer w;
  w.put(conn);
  w.put(seq);
  w.put(requested);
  return w.take();
}

RequestMsg RequestMsg::decode(const Payload& p) {
  Reader r(p);
  RequestMsg m;
  m.conn = r.get<std::uint32_t>();
  m.seq = r.get<std::uint32_t>();
  m.requested = r.get<Timestamp>();
  CCF_CHECK(r.exhausted(), "trailing bytes in RequestMsg");
  return m;
}

Payload ResponseMsg::encode() const {
  Writer w;
  w.put(conn);
  w.put(seq);
  w.put(static_cast<std::uint8_t>(result));
  w.put(matched);
  w.put(latest_exported);
  return w.take();
}

ResponseMsg ResponseMsg::decode(const Payload& p) {
  Reader r(p);
  ResponseMsg m;
  m.conn = r.get<std::uint32_t>();
  m.seq = r.get<std::uint32_t>();
  m.result = static_cast<MatchResult>(r.get<std::uint8_t>());
  m.matched = r.get<Timestamp>();
  m.latest_exported = r.get<Timestamp>();
  CCF_CHECK(r.exhausted(), "trailing bytes in ResponseMsg");
  return m;
}

Payload AnswerMsg::encode() const {
  Writer w;
  w.put(conn);
  w.put(seq);
  w.put(requested);
  w.put(static_cast<std::uint8_t>(result));
  w.put(matched);
  return w.take();
}

AnswerMsg AnswerMsg::decode(const Payload& p) {
  Reader r(p);
  AnswerMsg m;
  m.conn = r.get<std::uint32_t>();
  m.seq = r.get<std::uint32_t>();
  m.requested = r.get<Timestamp>();
  m.result = static_cast<MatchResult>(r.get<std::uint8_t>());
  m.matched = r.get<Timestamp>();
  CCF_CHECK(r.exhausted(), "trailing bytes in AnswerMsg");
  return m;
}

Payload ConnMsg::encode() const {
  Writer w;
  w.put(conn);
  return w.take();
}

ConnMsg ConnMsg::decode(const Payload& p) {
  Reader r(p);
  ConnMsg m;
  m.conn = r.get<std::uint32_t>();
  CCF_CHECK(r.exhausted(), "trailing bytes in ConnMsg");
  return m;
}

Payload PressureMsg::encode() const {
  Writer w;
  w.put(conn);
  w.put(level);
  return w.take();
}

PressureMsg PressureMsg::decode(const Payload& p) {
  Reader r(p);
  PressureMsg m;
  m.conn = r.get<std::uint32_t>();
  m.level = r.get<std::uint8_t>();
  CCF_CHECK(r.exhausted(), "trailing bytes in PressureMsg");
  return m;
}

Payload encode_frame(const std::vector<FrameEntry>& entries) {
  std::size_t bytes = sizeof(std::uint32_t);
  for (const auto& e : entries) {
    bytes += sizeof(std::int32_t) + sizeof(std::uint32_t) * 2 + e.payload.size();
  }
  Writer w(bytes);
  w.put(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.put(e.rank);
    w.put(static_cast<std::uint32_t>(e.tag));
    w.put(static_cast<std::uint32_t>(e.payload.size()));
    w.put_raw(e.payload.data(), e.payload.size());
  }
  return w.take();
}

std::vector<FrameEntry> decode_frame(const Payload& p) {
  Reader r(p);
  const auto n = r.get<std::uint32_t>();
  std::vector<FrameEntry> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    FrameEntry e;
    e.rank = r.get<std::int32_t>();
    e.tag = static_cast<Tag>(r.get<std::uint32_t>());
    const auto len = r.get<std::uint32_t>();
    e.payload = r.view(len);
    entries.push_back(std::move(e));
  }
  CCF_CHECK(r.exhausted(), "trailing bytes in tree frame");
  return entries;
}

void RegionMeta::encode_into(Writer& w) const {
  w.put_string(name);
  w.put(rows);
  w.put(cols);
  w.put(proc_rows);
  w.put(proc_cols);
}

RegionMeta RegionMeta::decode_from(Reader& r) {
  RegionMeta m;
  m.name = r.get_string();
  m.rows = r.get<std::int64_t>();
  m.cols = r.get<std::int64_t>();
  m.proc_rows = r.get<std::int32_t>();
  m.proc_cols = r.get<std::int32_t>();
  return m;
}

}  // namespace ccf::core
