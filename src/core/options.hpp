// Framework-level behaviour switches.
#pragma once

#include <cstddef>

namespace ccf::core {

struct FrameworkOptions {
  /// The paper's optimization (§4.1). When the rep answers a request from
  /// a mixture of PENDING and decisive responses, it forwards the final
  /// answer to the still-PENDING processes so they can skip buffering
  /// data that can never be the match. Disable to get the baseline the
  /// paper compares against (Figure 8).
  bool buddy_help = true;

  /// Record per-process event traces (Figures 5/7/8 listings).
  bool trace = false;

  /// Cap on recorded trace events per process.
  std::size_t trace_max_events = 1 << 20;

  /// Finite buffer space (paper §6 future work): per-process, per-region
  /// cap on buffered snapshot bytes. 0 = unlimited. When an export would
  /// exceed the cap, the exporting process *stalls*, serving framework
  /// control traffic (requests advance the low-water mark and free
  /// snapshots; importer departures release whole connections) until the
  /// new snapshot fits. Stall counts/time are recorded in the stats.
  std::size_t max_buffered_bytes = 0;
};

}  // namespace ccf::core
