// Framework-level behaviour switches.
#pragma once

#include <cstddef>
#include <string>

namespace ccf::core {

/// Buffer-governance knobs (src/mem, docs/MEMORY.md). With the defaults
/// every knob is off and the framework buffers exactly as the ungoverned
/// baseline — byte for byte.
struct MemoryOptions {
  /// Per-process byte budget for resident snapshot frames, spanning all
  /// of the process's exported regions. 0 = governance off.
  std::size_t budget_bytes = 0;

  /// Watermarks as fractions of the budget (0 <= low <= high <= 1).
  /// Crossing `high` raises collective BufferPressure (PROTOCOL.md);
  /// pressure clears once usage falls back to `low` — the hysteresis band
  /// keeps the control traffic from flapping.
  double low_watermark = 0.5;
  double high_watermark = 0.9;

  /// Directory for the file-backed spill tier. When set, cold-but-still-
  /// matchable snapshots are demoted to disk instead of stalling the
  /// exporter, and restored byte-identically on a late MATCH. "" = no
  /// spill tier (the exporter stalls or soft-exceeds instead).
  std::string spill_directory;

  /// Extra modeled compute an importing process performs before issuing a
  /// request on a connection whose exporter announced BufferPressure.
  /// 0 = pressure notices are recorded but do not throttle.
  double importer_throttle_seconds = 0;

  /// Max frames parked on the BufferPool free-list arena awaiting reuse
  /// (the PR 3 recycling arena). Frames beyond the cap are released to
  /// the heap instead of parked.
  std::size_t arena_capacity = 8;

  /// Byte cap across all parked arena frames; 0 = no byte cap. Bounds the
  /// arena across phase changes, where snapshot sizes grow and best-fit
  /// would otherwise accumulate the largest frames forever.
  std::size_t arena_max_bytes = 0;

  /// True when the budget (and with it the governor) is active.
  bool governed() const { return budget_bytes > 0; }
};

struct FrameworkOptions {
  /// The paper's optimization (§4.1). When the rep answers a request from
  /// a mixture of PENDING and decisive responses, it forwards the final
  /// answer to the still-PENDING processes so they can skip buffering
  /// data that can never be the match. Disable to get the baseline the
  /// paper compares against (Figure 8).
  bool buddy_help = true;

  /// Record per-process event traces (Figures 5/7/8 listings).
  bool trace = false;

  /// Cap on recorded trace events per process.
  std::size_t trace_max_events = 1 << 20;

  /// Finite buffer space (paper §6 future work): per-process, per-region
  /// cap on buffered snapshot bytes. 0 = unlimited. When an export would
  /// exceed the cap, the exporting process *stalls*, serving framework
  /// control traffic (requests advance the low-water mark and free
  /// snapshots; importer departures release whole connections) until the
  /// new snapshot fits. Stall counts/time are recorded in the stats.
  std::size_t max_buffered_bytes = 0;

  /// Buffer governance: budget, watermarks, spill tier, backpressure
  /// throttle, and arena caps. All off by default.
  MemoryOptions memory;

  /// Modeled dispatch cost charged by rep shards and sub-reps per unit of
  /// control work: once per plain inbound wire message, and once per
  /// *entry* of a batched TreeUp/TreeDown frame — so the charge is
  /// framing-neutral and pipelined partial frames (ProgramSpec::
  /// tree_flush_count) overlap rather than shrink it. 0 (default) charges
  /// nothing — virtual end times stay identical to the pre-tree runtime.
  /// Nonzero makes the single-rep funnel serialization visible in virtual
  /// time, which is what `bench_rep_scale` sweeps (docs/PERF.md).
  double rep_dispatch_seconds = 0;

  /// Chaos hook: sub-rep `debug_kill_subrep` of program
  /// `debug_kill_subrep_program` exits silently at virtual time
  /// `debug_kill_subrep_at`, simulating a mid-run aggregator death. Its
  /// children detect the silence via departure_timeout_seconds and
  /// re-parent onto the rep shards directly. -1 = disabled.
  int debug_kill_subrep = -1;
  double debug_kill_subrep_at = 0;
  std::string debug_kill_subrep_program;

  // --- failure tolerance -------------------------------------------------
  // Everything below defaults to "off": with the defaults, the protocol
  // behaves exactly as the lossless baseline (zero happy-path drift). The
  // machinery only matters on a faulty fabric (see transport::FaultInjector).

  /// Base timeout for a proc waiting on its rep (import answers, the
  /// commit-time geometry broadcast, shutdown). On expiry the proc
  /// re-sends its request; the protocol's sequence numbers make the
  /// duplicates idempotent end-to-end. 0 disables retries entirely
  /// (plain blocking receives).
  double retry_timeout_seconds = 0;

  /// Exponential backoff: each successive retry waits `backoff_factor`
  /// times longer, capped at `retry_backoff_max_seconds` (0 = cap at
  /// 16x the base timeout).
  double retry_backoff_factor = 2.0;
  double retry_backoff_max_seconds = 0;

  /// Retries per blocking wait before giving up with util::TimeoutError.
  int max_retries = 64;

  /// Reps emit a heartbeat to their own procs every interval while idle,
  /// so workers in timeout loops can distinguish "rep is slow" from "rep
  /// is gone". 0 disables heartbeats.
  double heartbeat_interval_seconds = 0;

  /// A worker in its shutdown service loop that has heard nothing from
  /// its rep for this long presumes the rep departed and finishes
  /// degraded instead of blocking forever. Requires heartbeats to be
  /// meaningful. 0 = wait forever.
  double departure_timeout_seconds = 0;

  /// An exporter stalled on max_buffered_bytes for this long with no
  /// request traffic force-closes its connections (degraded, unconnected
  /// mode: later exports skip send/buffer work) instead of waiting
  /// forever on a dead importer. 0 = wait forever.
  double stall_timeout_seconds = 0;

  /// True when the retry/liveness machinery is active.
  bool failure_tolerance() const { return retry_timeout_seconds > 0; }

  /// Effective backoff cap (resolves the 0 = "16x base" default).
  double backoff_cap_seconds() const {
    return retry_backoff_max_seconds > 0 ? retry_backoff_max_seconds
                                         : 16 * retry_timeout_seconds;
  }
};

}  // namespace ccf::core
