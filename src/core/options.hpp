// Framework-level behaviour switches.
#pragma once

#include <cstddef>

namespace ccf::core {

struct FrameworkOptions {
  /// The paper's optimization (§4.1). When the rep answers a request from
  /// a mixture of PENDING and decisive responses, it forwards the final
  /// answer to the still-PENDING processes so they can skip buffering
  /// data that can never be the match. Disable to get the baseline the
  /// paper compares against (Figure 8).
  bool buddy_help = true;

  /// Record per-process event traces (Figures 5/7/8 listings).
  bool trace = false;

  /// Cap on recorded trace events per process.
  std::size_t trace_max_events = 1 << 20;

  /// Finite buffer space (paper §6 future work): per-process, per-region
  /// cap on buffered snapshot bytes. 0 = unlimited. When an export would
  /// exceed the cap, the exporting process *stalls*, serving framework
  /// control traffic (requests advance the low-water mark and free
  /// snapshots; importer departures release whole connections) until the
  /// new snapshot fits. Stall counts/time are recorded in the stats.
  std::size_t max_buffered_bytes = 0;

  // --- failure tolerance -------------------------------------------------
  // Everything below defaults to "off": with the defaults, the protocol
  // behaves exactly as the lossless baseline (zero happy-path drift). The
  // machinery only matters on a faulty fabric (see transport::FaultInjector).

  /// Base timeout for a proc waiting on its rep (import answers, the
  /// commit-time geometry broadcast, shutdown). On expiry the proc
  /// re-sends its request; the protocol's sequence numbers make the
  /// duplicates idempotent end-to-end. 0 disables retries entirely
  /// (plain blocking receives).
  double retry_timeout_seconds = 0;

  /// Exponential backoff: each successive retry waits `backoff_factor`
  /// times longer, capped at `retry_backoff_max_seconds` (0 = cap at
  /// 16x the base timeout).
  double retry_backoff_factor = 2.0;
  double retry_backoff_max_seconds = 0;

  /// Retries per blocking wait before giving up with util::TimeoutError.
  int max_retries = 64;

  /// Reps emit a heartbeat to their own procs every interval while idle,
  /// so workers in timeout loops can distinguish "rep is slow" from "rep
  /// is gone". 0 disables heartbeats.
  double heartbeat_interval_seconds = 0;

  /// A worker in its shutdown service loop that has heard nothing from
  /// its rep for this long presumes the rep departed and finishes
  /// degraded instead of blocking forever. Requires heartbeats to be
  /// meaningful. 0 = wait forever.
  double departure_timeout_seconds = 0;

  /// An exporter stalled on max_buffered_bytes for this long with no
  /// request traffic force-closes its connections (degraded, unconnected
  /// mode: later exports skip send/buffer work) instead of waiting
  /// forever on a dead importer. 0 = wait forever.
  double stall_timeout_seconds = 0;

  /// True when the retry/liveness machinery is active.
  bool failure_tolerance() const { return retry_timeout_seconds > 0; }

  /// Effective backoff cap (resolves the 0 = "16x base" default).
  double backoff_cap_seconds() const {
    return retry_backoff_max_seconds > 0 ? retry_backoff_max_seconds
                                         : 16 * retry_timeout_seconds;
  }
};

}  // namespace ccf::core
