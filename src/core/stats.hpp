// Per-process statistics collected by the coupling runtime.
//
// The Figure-4 reproduction needs the per-iteration export durations of
// the slowest exporter process; Eq.(1)/(2) need the per-request
// unnecessary-buffering times T_i and their total T_ub. Stats objects are
// owned by the harness (one slot per process) and filled in by the
// process bodies, which run in the same address space in both execution
// modes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/buffer_pool.hpp"
#include "core/timestamp.hpp"
#include "mem/governor.hpp"

namespace ccf::core {

struct ExportRegionStats {
  std::string region;
  std::uint64_t exports = 0;
  std::uint64_t transfers = 0;  ///< matched snapshots actually shipped
  BufferStats buffer;

  // Data-plane copy accounting (dist::TransferStats, folded in by the
  // exporter state; see docs/PERF.md).
  std::uint64_t bytes_delivered = 0;    ///< payload element bytes shipped
  std::uint64_t bytes_pack_copied = 0;  ///< extra pack-copy bytes (partial pieces)
  std::uint64_t sends_aliased = 0;      ///< full-box sends aliasing the pooled frame
  std::uint64_t sends_packed = 0;       ///< partial pieces packed into a wire frame

  /// Extra copies per delivered byte beyond the snapshot memcpy and the
  /// importer's final unpack: 0 when every send aliased the pooled frame,
  /// 1 when every send was a packed partial piece.
  double copies_per_delivered_byte() const {
    if (bytes_delivered == 0) return 0.0;
    return static_cast<double>(bytes_pack_copied) / static_cast<double>(bytes_delivered);
  }

  /// Duration of each export call (paper Fig. 4 y-axis), in ctx.now() secs.
  std::vector<double> export_seconds;

  /// Timestamp of each export, aligned with export_seconds.
  std::vector<Timestamp> export_timestamps;

  /// Per-request unnecessary buffering time T_i (Eq. 1), in request order.
  std::vector<double> t_i;

  /// Total unnecessary buffering time T_ub (Eq. 2).
  double t_ub() const {
    double s = 0;
    for (double v : t_i) s += v;
    return s;
  }

  std::uint64_t buddy_helps_received = 0;
  std::uint64_t local_decisions = 0;  ///< requests this process decided itself

  /// Matcher observation counters, summed over the region's connections
  /// (ExportHistory::EvalCounters; model-checking conformance interface).
  std::uint64_t matcher_evaluations = 0;
  std::uint64_t matcher_pending = 0;

  /// Finite-buffer backpressure (FrameworkOptions::max_buffered_bytes).
  std::uint64_t stalls = 0;
  double stall_seconds = 0;

  // Failure tolerance (all zero on a lossless fabric).
  std::uint64_t duplicate_requests = 0;  ///< retried/duplicated requests replayed
  std::uint64_t reordered_requests = 0;  ///< requests parked until a gap filled
  std::uint64_t degraded_conns = 0;      ///< connections force-closed by stall timeout
};

struct ImportRegionStats {
  std::string region;
  std::uint64_t imports = 0;
  std::uint64_t matches = 0;
  std::uint64_t no_matches = 0;
  std::vector<double> import_seconds;
  std::vector<Timestamp> matched_timestamps;

  /// Collective BufferPressure response (MemoryOptions::
  /// importer_throttle_seconds; zero unless the exporter is governed).
  std::uint64_t pressure_throttles = 0;
  double throttle_seconds = 0;
};

/// Per-process failure-tolerance accounting (see FrameworkOptions).
/// Everything stays zero/false on a lossless fabric.
struct FaultToleranceStats {
  std::uint64_t request_retries = 0;   ///< re-sent import requests after timeout
  std::uint64_t stale_answers = 0;     ///< duplicate/out-of-date answers discarded
  std::uint64_t heartbeats = 0;        ///< rep heartbeats consumed
  std::uint64_t commit_retries = 0;    ///< startup geometry handshake retries
  std::uint64_t conn_done_retries = 0; ///< re-sent shutdown notifications
  std::uint64_t reparents = 0;         ///< tree fallbacks: dead sub-rep, now direct
  bool rep_departed = false;           ///< finished via departure timeout
};

struct ProcStats {
  std::vector<ExportRegionStats> exports;
  std::vector<ImportRegionStats> imports;
  FaultToleranceStats ft;
  double finished_at = 0;  ///< ctx.now() when the process body completed

  /// Process-wide memory-governor accounting (zero when ungoverned).
  mem::GovernorStats governor;
  std::uint64_t pressure_signals = 0;  ///< ProcPressure edges sent to the rep
  std::uint64_t pressure_notices = 0;  ///< PressureBcast level changes received
};

}  // namespace ccf::core
