#include "core/export_state.hpp"

#include <algorithm>
#include <limits>

#include "dist/redistribute.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace ccf::core {

ExportRegionState::ExportRegionState(std::string region_name, dist::Box local_box, int my_rank,
                                     std::vector<ExportConnConfig> conns,
                                     const FrameworkOptions& options, ProcId rep_id)
    : name_(std::move(region_name)),
      local_box_(local_box),
      my_rank_(my_rank),
      options_(options),
      rep_id_(rep_id),
      default_route_{rep_id, 1, 0, false},
      route_(&default_route_),
      trace_("D", options.trace, options.trace_max_events) {
  stats_.region = name_;
  pool_.set_arena_limits(options.memory.arena_capacity, options.memory.arena_max_bytes);
  conns_.reserve(conns.size());
  for (auto& cfg : conns) {
    CCF_REQUIRE(cfg.conn_id >= 0 && cfg.conn_id < 32, "connection id out of mask range");
    conns_.emplace_back(std::move(cfg));
  }
}

bool ExportRegionState::handles_conn(std::uint32_t conn_id) const {
  for (const auto& c : conns_) {
    if (static_cast<std::uint32_t>(c.cfg.conn_id) == conn_id) return true;
  }
  return false;
}

std::size_t ExportRegionState::outstanding_requests() const {
  std::size_t n = 0;
  for (const auto& c : conns_) n += c.outstanding.size();
  return n;
}

ExportRegionState::Conn& ExportRegionState::conn_of(std::uint32_t conn_id) {
  for (auto& c : conns_) {
    if (static_cast<std::uint32_t>(c.cfg.conn_id) == conn_id) return c;
  }
  throw util::InternalError("region " + name_ + " does not handle connection " +
                            std::to_string(conn_id));
}

void ExportRegionState::trace_removed(const std::vector<BufferPool::Freed>& freed,
                                      ProcessContext& ctx) {
  if (freed.empty() || !trace_.enabled()) return;
  trace_.emit(TraceKind::Remove, ctx.now(), freed.front().t, freed.back().t);
}

void ExportRegionState::on_export(Timestamp t, const double* local_block, ProcessContext& ctx) {
  ++stats_.exports;

  // Phase 1: decide, per connection, whether this version must be kept.
  ConnMask needed = 0;
  struct Supersede {
    Conn* conn;
    Timestamp old_candidate;
    Outstanding* request;
  };
  std::vector<Supersede> superseded;

  for (auto& c : conns_) {
    c.history.record(t);
    bool need = false;
    if (!c.cfg.contributes) {
      // Outside this connection's transfer window: nothing of this
      // process's block can ever be shipped on it.
      need = false;
    } else if (!c.pending_sends.empty() && c.pending_sends.front().match == t) {
      // This is the announced match we have been waiting to produce
      // (buddy-help told us before the export happened, Fig. 5 line 14).
      need = true;
    } else if (t < c.low_water) {
      // Below every region any current or future request can name.
      need = false;
    } else {
      // The pending-request index and the outstanding queue are
      // FIFO-aligned, so the first index entry covering t is the first
      // outstanding request whose region contains t — O(log k) instead of
      // a queue scan.
      const IntervalIndex::Span span = c.history.pending_covering(t);
      Outstanding* covering = nullptr;
      if (span.count > 0) {
        covering = &c.outstanding[span.first];
        CCF_CHECK(covering->index_id == c.history.pending().at(span.first).id,
                  "pending index out of step with the outstanding queue");
      }
      if (covering != nullptr) {
        // Inside an unresolved region: a candidate. A newly exported
        // better candidate supersedes (frees) the previous one (Fig. 8
        // lines 9-18).
        need = true;
        if (!covering->candidate ||
            better_match(t, *covering->candidate, covering->query.requested)) {
          if (covering->candidate) superseded.push_back({&c, *covering->candidate, covering});
          covering->candidate = t;
        }
      } else if (!c.closed && t > c.last_region_lo) {
        // Above the newest request's region floor: a future request's
        // region can still reach down to (just above) that floor, so the
        // temporal model requires keeping this version (Fig. 3(a), and the
        // REG case where versions above a resolved match remain eligible).
        // A closed connection (the importing program finished) can never
        // request anything again, so nothing new is kept for it.
        need = true;
      } else {
        // At or below the newest region's floor and not inside any
        // unresolved region: request timestamps increase monotonically, so
        // every future region lies strictly above this version.
        need = false;
      }
    }
    if (need) needed |= ConnMask{1} << c.cfg.conn_id;
  }

  // Phase 2: snapshot (the memcpy the paper measures) or skip.
  if (needed != 0) {
    pool_.store(t, local_block, static_cast<std::size_t>(local_box_.count()), needed, ctx);
    trace_.emit(TraceKind::ExportCopy, ctx.now(), t);
  } else {
    pool_.note_skip();
    trace_.emit(TraceKind::ExportSkip, ctx.now(), t);
  }
  CCF_LOG_TRACE("export", "proc " << ctx.id() << " export " << t
                                  << (needed ? " copy" : " skip"));

  // Phase 3: free superseded candidates (Fig. 8 lines 9-18) and attribute
  // their buffering cost to the request they belonged to (Eq. 1). When
  // acceptable regions overlap (request stride below the tolerance), a
  // version superseded for one request can still be another outstanding
  // request's candidate — or its eventual match — so it must be kept.
  for (const auto& s : superseded) {
    // The covering span of the old candidate is exactly the set of
    // outstanding requests whose region contains it (FIFO-aligned with
    // the index); it is needed elsewhere when any of them is not the
    // request that just superseded it.
    const IntervalIndex::Span span = s.conn->history.pending_covering(s.old_candidate);
    bool needed_elsewhere = false;
    for (std::size_t i = 0; i < span.count; ++i) {
      if (&s.conn->outstanding[span.first + i] != s.request) {
        needed_elsewhere = true;
        break;
      }
    }
    if (needed_elsewhere) continue;
    if (auto freed = pool_.drop(s.old_candidate, s.conn->cfg.conn_id)) {
      if (!freed->was_sent) s.request->unnecessary_seconds += freed->cost_seconds;
      trace_.emit(TraceKind::Remove, ctx.now(), freed->t, freed->t);
    }
  }

  // Phase 4: ship a transfer whose match we just produced.
  for (auto& c : conns_) {
    if (!c.pending_sends.empty() && c.pending_sends.front().match == t) {
      const PendingSend ps = c.pending_sends.front();
      c.pending_sends.pop_front();
      send_data(c, ps.seq, ps.match, ctx);
      pool_.mark_sent(ps.match, c.cfg.conn_id);
      pool_.drop(ps.match, c.cfg.conn_id);
    }
  }

  // Phase 5: the new export may make outstanding requests decidable.
  for (auto& c : conns_) check_local_decisions(c, ctx);
}

void ExportRegionState::send_response(Conn& conn, std::uint32_t seq, const MatchAnswer& answer,
                                      ProcessContext& ctx) {
  CCF_LOG_DEBUG("export", "proc " << ctx.id() << " region " << name_ << " conn "
                                  << conn.cfg.conn_id << " seq " << seq << " -> "
                                  << to_string(answer.result) << " matched=" << answer.matched
                                  << " latest=" << answer.latest_exported);
  ResponseMsg resp;
  resp.conn = static_cast<std::uint32_t>(conn.cfg.conn_id);
  resp.seq = seq;
  resp.result = answer.result;
  resp.matched = answer.matched;
  resp.latest_exported = answer.latest_exported;
  ctx.send(route_->up_conn(static_cast<int>(resp.conn)), kTagProcResponse, resp.encode());
}

void ExportRegionState::send_data(Conn& conn, std::uint32_t seq, Timestamp match,
                                  ProcessContext& ctx) {
  // A snapshot demoted to the spill tier comes back byte-identically
  // before shipping — spilling is invisible on the wire. Shedding other
  // snapshots first keeps the restore within the governor's budget.
  if (const std::size_t need = pool_.restore_shortfall(match); need > 0) shed(need);
  pool_.ensure_resident(match);
  // Sends source the pooled snapshot directly; a piece covering the whole
  // local box aliases the pooled wire frame (zero-copy fan-out).
  const BufferPool::SnapshotView snapshot = pool_.snapshot(match);
  dist::execute_sends_packed(ctx, conn.cfg.schedule, my_rank_, conn.cfg.importer_procs,
                             data_tag(conn.cfg.conn_id, seq), local_box_, snapshot.data(),
                             &xfer_, pool_.wire_payload(match));
  ++stats_.transfers;
  trace_.emit(TraceKind::SendData, ctx.now(), match);
}

void ExportRegionState::resolve_front(Conn& conn, MatchResult result, Timestamp matched,
                                      ProcessContext& ctx) {
  CCF_CHECK(!conn.outstanding.empty(), "resolve with no outstanding request");
  CCF_CHECK(result != MatchResult::Pending, "resolving with a PENDING result");
  Outstanding o = conn.outstanding.front();
  // Unindex before the prunes below so the resolved request's cached best
  // is not pointlessly re-derived; later entries whose best the prunes
  // invalidate are re-derived by the index's prune hook.
  if (o.index_id != 0) conn.history.unindex_pending(o.index_id);

  if (result == MatchResult::Match) {
    // Everything below the match can never be requested again: matched
    // timestamps increase strictly across requests.
    auto freed = pool_.drop_below(matched, conn.cfg.conn_id);
    for (const auto& f : freed) {
      if (!f.was_sent && o.region.contains(f.t)) o.unnecessary_seconds += f.cost_seconds;
    }
    trace_removed(freed, ctx);
    conn.low_water = std::max(conn.low_water, matched);
    conn.history.prune_through(matched);

    if (!conn.cfg.contributes) {
      // Nothing of this process's block travels on this connection.
    } else if (pool_.has(matched)) {
      send_data(conn, o.seq, matched, ctx);
      pool_.mark_sent(matched, conn.cfg.conn_id);
      pool_.drop(matched, conn.cfg.conn_id);
    } else {
      CCF_LOG_DEBUG("export", "proc " << ctx.id() << " pending-send seq " << o.seq << " match "
                                      << matched << " latest " << conn.history.latest());
      conn.pending_sends.push_back(PendingSend{o.seq, matched});
    }
  } else {
    // NO MATCH: nothing in the region exists (collectively), so only the
    // below-region threshold moves — which on_forwarded_request already
    // raised. Defensive max() keeps the invariant explicit.
    conn.low_water = std::max(conn.low_water, o.region.lo);
    conn.history.prune_below(conn.low_water);
  }

  stats_.t_i.push_back(o.unnecessary_seconds);

  AnswerMsg resolved;
  resolved.conn = static_cast<std::uint32_t>(conn.cfg.conn_id);
  resolved.seq = o.seq;
  resolved.requested = o.query.requested;
  resolved.result = result;
  resolved.matched = matched;
  conn.resolved.emplace(o.seq, resolved);
  while (conn.resolved.size() > 64) conn.resolved.erase(conn.resolved.begin());

  conn.outstanding.pop_front();

  // A later request's region floor was deferred while this request was
  // unresolved (its candidates had to stay buffered); apply it now.
  if (!conn.outstanding.empty()) {
    raise_low_water(conn, conn.outstanding.front().region.lo, nullptr, ctx);
  }
}

void ExportRegionState::check_local_decisions(Conn& conn, ProcessContext& ctx) {
  // Batch sweep: the index's per-entry decidability thresholds let the
  // history drain every newly-decidable front request without evaluating
  // the ones that stay PENDING — the per-export cost drops from
  // O(outstanding) evaluations to O(resolved).
  conn.history.evaluate_all([&](std::uint64_t id, const MatchAnswer& answer) {
    CCF_CHECK(!conn.outstanding.empty() && conn.outstanding.front().index_id == id,
              "pending index out of step with the outstanding queue");
    Outstanding& o = conn.outstanding.front();
    if (!o.responded_decisive) {
      send_response(conn, o.seq, answer, ctx);
      o.responded_decisive = true;
      ++stats_.local_decisions;
      trace_.emit(TraceKind::LocalDecision, ctx.now(), o.query.requested, answer.matched,
                  answer.result);
    }
    resolve_front(conn, answer.result, answer.matched, ctx);
  });
}

void ExportRegionState::raise_low_water(Conn& conn, Timestamp threshold,
                                        Outstanding* attribute_to, ProcessContext& ctx) {
  if (threshold <= conn.low_water) return;
  auto freed = pool_.drop_below(threshold, conn.cfg.conn_id);
  if (attribute_to != nullptr) {
    for (const auto& f : freed) {
      if (!f.was_sent && attribute_to->region.contains(f.t)) {
        attribute_to->unnecessary_seconds += f.cost_seconds;
      }
    }
  }
  trace_removed(freed, ctx);
  conn.low_water = threshold;
  conn.history.prune_below(threshold);
}

void ExportRegionState::replay_response(Conn& conn, std::uint32_t seq, ProcessContext& ctx) {
  ++stats_.duplicate_requests;
  // Resolved within the retained window: replay the decisive answer.
  auto it = conn.resolved.find(seq);
  if (it != conn.resolved.end()) {
    ResponseMsg resp;
    resp.conn = static_cast<std::uint32_t>(conn.cfg.conn_id);
    resp.seq = seq;
    resp.result = it->second.result;
    resp.matched = it->second.matched;
    resp.latest_exported = conn.history.latest();
    ctx.send(route_->up_conn(static_cast<int>(resp.conn)), kTagProcResponse, resp.encode());
    return;
  }
  // Still unresolved here: PENDING is always a legal (re)answer, and the
  // eventual decisive response follows through the normal path.
  for (const auto& o : conn.outstanding) {
    if (o.seq != seq) continue;
    ResponseMsg resp;
    resp.conn = static_cast<std::uint32_t>(conn.cfg.conn_id);
    resp.seq = seq;
    resp.result = MatchResult::Pending;
    resp.matched = kNeverExported;
    resp.latest_exported = conn.history.latest();
    ctx.send(route_->up_conn(static_cast<int>(resp.conn)), kTagProcResponse, resp.encode());
    return;
  }
  // Ancient (evicted from the resolved window): the collective answer was
  // consumed long ago; nothing useful to replay.
}

void ExportRegionState::on_forwarded_request(const RequestMsg& msg, ProcessContext& ctx) {
  Conn& conn = conn_of(msg.conn);
  if (msg.seq < conn.next_request_seq) {
    // Duplicate of an already-accepted request (a retry, or a fabric
    // duplicate): never process twice, only replay what we answered.
    replay_response(conn, msg.seq, ctx);
    return;
  }
  if (msg.seq > conn.next_request_seq) {
    // Arrived ahead of an undelivered predecessor: park until the gap
    // fills. emplace dedups repeated copies of the same parked seq.
    ++stats_.reordered_requests;
    conn.parked_requests.emplace(msg.seq, msg);
    return;
  }
  process_request(conn, msg, ctx);
  ++conn.next_request_seq;
  while (!conn.parked_requests.empty() &&
         conn.parked_requests.begin()->first == conn.next_request_seq) {
    const RequestMsg next = conn.parked_requests.begin()->second;
    conn.parked_requests.erase(conn.parked_requests.begin());
    process_request(conn, next, ctx);
    ++conn.next_request_seq;
  }
}

void ExportRegionState::process_request(Conn& conn, const RequestMsg& msg,
                                        ProcessContext& ctx) {
  CCF_REQUIRE(msg.requested > conn.last_request,
              "import request timestamps must increase: " << msg.requested << " after "
                                                          << conn.last_request);
  conn.last_request = msg.requested;

  MatchQuery query{msg.requested, conn.cfg.policy, conn.cfg.tolerance};
  const Interval region = query.region();
  trace_.emit(TraceKind::Request, ctx.now(), msg.requested);
  CCF_LOG_TRACE("export", "proc " << ctx.id() << " request seq " << msg.seq << " x "
                                  << msg.requested << " latest " << conn.history.latest()
                                  << " outstanding " << conn.outstanding.size());
  conn.last_region_lo = std::max(conn.last_region_lo, region.lo);

  // The request's region lower bound frees everything below it (Fig. 5
  // line 7): no current or future request can name those versions. When
  // earlier requests are still unresolved, the raise is deferred until
  // they resolve (their candidates must survive, see resolve_front).
  if (conn.outstanding.empty()) raise_low_water(conn, region.lo, nullptr, ctx);

  const MatchAnswer answer = conn.history.evaluate(query);
  send_response(conn, msg.seq, answer, ctx);
  trace_.emit(TraceKind::Reply, ctx.now(), msg.requested, answer.latest_exported, answer.result);

  Outstanding o;
  o.seq = msg.seq;
  o.query = query;
  o.region = region;
  o.candidate = conn.history.best_candidate(query);
  o.responded_decisive = answer.decisive();

  if (answer.decisive()) {
    // An immediately decidable request implies every earlier request was
    // already decidable (requests increase), so the queue must be empty.
    // Never indexed: it resolves before any export could sweep it.
    CCF_CHECK(conn.outstanding.empty(),
              "decisive request arrived while earlier requests are unresolved");
    ++stats_.local_decisions;
    conn.outstanding.push_back(std::move(o));
    resolve_front(conn, answer.result, answer.matched, ctx);
  } else {
    o.index_id = conn.history.index_pending(query);
    conn.outstanding.push_back(std::move(o));
  }
}

void ExportRegionState::on_buddy_help(const AnswerMsg& msg, ProcessContext& ctx) {
  Conn& conn = conn_of(msg.conn);
  ++stats_.buddy_helps_received;
  trace_.emit(TraceKind::BuddyHelp, ctx.now(), msg.requested, msg.matched, msg.result);

  if (conn.outstanding.empty() || conn.outstanding.front().seq != msg.seq) {
    // We already resolved this request locally (our decisive response and
    // the rep's help crossed on the wire). Validate consistency.
    auto it = conn.resolved.find(msg.seq);
    if (it == conn.resolved.end() && options_.failure_tolerance()) {
      // Help is a best-effort hint. On a faulty fabric it can arrive
      // duplicated past the resolved window or reordered ahead of the
      // request it answers; dropping it degrades to the paper's baseline
      // (this process keeps buffering until it decides locally) without
      // affecting which timestamp matches.
      return;
    }
    CCF_CHECK(it != conn.resolved.end(), "buddy-help for unknown request seq " << msg.seq);
    CCF_CHECK(it->second.result == msg.result &&
                  (msg.result != MatchResult::Match || it->second.matched == msg.matched),
              "buddy-help answer disagrees with local decision for seq " << msg.seq);
    return;
  }
  conn.outstanding.front().responded_decisive = true;  // rep already has the answer
  resolve_front(conn, msg.result, msg.matched, ctx);
  // Help may unblock later queued requests too, if the new low-water mark
  // made them decidable — it cannot (decidability depends on exports), but
  // a finalized history can; keep the invariant uniform.
  check_local_decisions(conn, ctx);
}

void ExportRegionState::on_conn_closed(std::uint32_t conn_id, ProcessContext& ctx) {
  Conn& conn = conn_of(conn_id);
  if (conn.closed) return;
  conn.closed = true;
  // "Closed" only promises that no *future* request arrives: the
  // importer's rank 0 may finish while other importer ranks still await
  // data from this (slower) process, so outstanding requests and
  // announced-but-unproduced matches remain obligations. Everything else
  // — snapshots kept only for hypothetical future requests — is released.
  std::vector<BufferPool::Freed> freed;
  for (Timestamp ts :
       pool_.buffered_below(std::numeric_limits<Timestamp>::infinity(), conn.cfg.conn_id)) {
    bool needed = conn.history.pending_covering(ts).count > 0;
    for (const auto& ps : conn.pending_sends) {
      if (ps.match == ts) needed = true;
    }
    if (needed) continue;
    if (auto f = pool_.drop(ts, conn.cfg.conn_id)) freed.push_back(*f);
  }
  trace_removed(freed, ctx);
}

std::size_t ExportRegionState::degrade_open_conns(ProcessContext& ctx) {
  std::size_t n = 0;
  for (const auto& c : conns_) {
    if (c.closed) continue;
    on_conn_closed(static_cast<std::uint32_t>(c.cfg.conn_id), ctx);
    ++n;
  }
  stats_.degraded_conns += n;
  return n;
}

bool ExportRegionState::all_conns_closed() const {
  for (const auto& c : conns_) {
    if (!c.closed) return false;
  }
  return true;
}

std::size_t ExportRegionState::shed(std::size_t bytes_needed) {
  if (bytes_needed == 0 || !pool_.can_spill()) return 0;
  // Classify every spillable resident snapshot by what the matcher state
  // can prove about it (mem/eviction.hpp). The eager free paths already
  // reclaimed everything provably non-matchable, so the classes seen here
  // are FutureOnly / Candidate / Pinned.
  std::vector<mem::EvictionCandidate> candidates;
  for (Timestamp t : pool_.resident_timestamps()) {
    if (!pool_.spillable(t)) continue;
    mem::EvictClass cls = mem::EvictClass::FutureOnly;
    for (const auto& c : conns_) {
      bool awaiting_shipment = false;
      for (const auto& ps : c.pending_sends) {
        if (ps.match == t) awaiting_shipment = true;
      }
      // Candidate status comes from the matcher's pending-request index
      // (an O(log k) probe of its cached bests) instead of a queue scan.
      cls = std::max(cls,
                     mem::classify_resident(c.history.pending(), t, awaiting_shipment));
      if (cls == mem::EvictClass::Pinned) break;
    }
    candidates.push_back(mem::EvictionCandidate{t, pool_.data_bytes(t), cls});
  }
  const mem::EvictionPlan plan = mem::plan_evictions(std::move(candidates), bytes_needed);
  std::size_t reclaimed = 0;
  for (const auto& v : plan.victims) reclaimed += pool_.spill_out(v.t);
  return reclaimed;
}

bool ExportRegionState::safe_to_stall() const {
  if (all_conns_closed()) return false;  // nothing will ever be freed by waiting
  for (const auto& c : conns_) {
    if (!c.outstanding.empty() || !c.pending_sends.empty()) return false;
  }
  return true;
}

void ExportRegionState::finalize(ProcessContext& ctx) {
  for (auto& conn : conns_) {
    if (!conn.history.finalized()) conn.history.finalize();
    // A finalized history makes every front decidable, so the batch sweep
    // drains the whole queue.
    check_local_decisions(conn, ctx);
    CCF_CHECK(conn.outstanding.empty(), "finalized history must decide every request");
    // Property 1: the matched timestamp is part of the collective export
    // sequence, so a process may only finish after producing it.
    CCF_CHECK(conn.pending_sends.empty(),
              "process finished before exporting an announced match (collective "
              "contract violation) on region "
                  << name_);
  }
}

}  // namespace ccf::core
