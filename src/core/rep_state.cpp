#include "core/rep_state.hpp"

#include <sstream>

#include "util/check.hpp"

namespace ccf::core {

RequestAggregator::RequestAggregator(int nprocs, bool buddy_help)
    : nprocs_(nprocs), buddy_help_(buddy_help) {
  CCF_REQUIRE(nprocs > 0, "aggregator needs at least one process");
}

void RequestAggregator::open(const RequestMsg& request) {
  CCF_REQUIRE(!requests_.count(request.seq),
              "request seq " << request.seq << " already open");
  RequestState state;
  state.requested = request.requested;
  state.conn = request.conn;
  requests_.emplace(request.seq, std::move(state));
}

RequestAggregator::Actions RequestAggregator::on_response(int rank, const ResponseMsg& response) {
  CCF_REQUIRE(rank >= 0 && rank < nprocs_, "response from rank " << rank << " outside program");
  auto it = requests_.find(response.seq);
  CCF_CHECK(it != requests_.end(),
            "response for unknown request seq " << response.seq << " on conn " << response.conn);
  RequestState& state = it->second;

  Actions actions;
  if (response.result == MatchResult::Pending) {
    state.pending_ranks.insert(rank);
    // A PENDING after the request was answered: this is exactly the
    // straggler buddy-help exists for — help it right away.
    if (buddy_help_ && state.answer && !state.decisive_ranks.count(rank) &&
        !state.helped_ranks.count(rank)) {
      state.helped_ranks.insert(rank);
      ++buddy_helps_issued_;
      actions.buddy_help_ranks.push_back(rank);
    }
    return actions;
  }

  // Decisive response: validate the collective contract.
  if (state.answer) {
    const AnswerMsg& a = *state.answer;
    if (a.result != response.result ||
        (a.result == MatchResult::Match && a.matched != response.matched)) {
      std::ostringstream os;
      os << "Property 1 violated on conn " << response.conn << " seq " << response.seq
         << ": rank " << rank << " answered " << to_string(response.result);
      if (response.result == MatchResult::Match) os << " @" << response.matched;
      os << " but the collective answer is " << to_string(a.result);
      if (a.result == MatchResult::Match) os << " @" << a.matched;
      throw util::ProtocolViolation(os.str());
    }
    state.pending_ranks.erase(rank);
    state.decisive_ranks.insert(rank);
    return actions;
  }

  // First decisive response determines the collective answer.
  AnswerMsg answer;
  answer.conn = response.conn;
  answer.seq = response.seq;
  answer.requested = state.requested;
  answer.result = response.result;
  answer.matched = response.matched;
  state.answer = answer;
  answer_log_.push_back(answer);
  state.pending_ranks.erase(rank);
  state.decisive_ranks.insert(rank);
  actions.answer_importer = answer;

  if (buddy_help_) {
    // Help everyone who answered PENDING so far; ranks that have not
    // responded yet get helped when their PENDING arrives (see above).
    for (int r : state.pending_ranks) {
      if (!state.helped_ranks.count(r)) {
        state.helped_ranks.insert(r);
        ++buddy_helps_issued_;
        actions.buddy_help_ranks.push_back(r);
      }
    }
  }
  return actions;
}

std::vector<RequestAggregator::Unresponsive> RequestAggregator::unresponsive_ranks() const {
  std::vector<Unresponsive> out;
  for (const auto& [seq, state] : requests_) {
    Unresponsive u;
    for (int rank = 0; rank < nprocs_; ++rank) {
      if (!state.pending_ranks.count(rank) && !state.decisive_ranks.count(rank)) {
        u.ranks.push_back(rank);
      }
    }
    if (u.ranks.empty()) continue;
    u.request = RequestMsg{state.conn, seq, state.requested};
    out.push_back(std::move(u));
  }
  return out;
}

bool RequestAggregator::rank_answered_all(int rank) const {
  for (const auto& [seq, state] : requests_) {
    if (!state.pending_ranks.count(rank) && !state.decisive_ranks.count(rank)) return false;
  }
  return true;
}

bool RequestAggregator::is_open(std::uint32_t seq) const { return requests_.count(seq) > 0; }

bool RequestAggregator::is_answered(std::uint32_t seq) const {
  auto it = requests_.find(seq);
  return it != requests_.end() && it->second.answer.has_value();
}

const AnswerMsg& RequestAggregator::answer_of(std::uint32_t seq) const {
  auto it = requests_.find(seq);
  CCF_CHECK(it != requests_.end() && it->second.answer, "no answer for seq " << seq);
  return *it->second.answer;
}

}  // namespace ccf::core
