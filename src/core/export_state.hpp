// Export-side per-region runtime state: buffering decisions, local match
// decisions, buddy-help handling, and data shipment (paper §4, §4.1).
//
// One instance lives in each exporter process per exported region. Every
// connected importing program is a "connection" with its own matcher
// history, request queue and skip thresholds; snapshots live in a shared
// BufferPool with per-connection need bits.
//
// The skip rules implemented here are exactly the paper's:
//  * a request for x (policy/tol -> region [lo, hi]) lets the process
//    discard and skip everything below lo (Fig. 5 line 7, Fig. 8 line 7);
//  * a resolved match m (decided locally or learned via buddy-help)
//    lets the process skip every export below m — even exports it has not
//    produced yet, which is buddy-help's whole benefit (Fig. 5 lines
//    10-13, Fig. 7 lines 8-11);
//  * inside an unresolved region, a newly exported better candidate
//    supersedes (frees) the previous one (Fig. 8 lines 9-18);
//  * everything else above the thresholds is buffered, because a future
//    request could still name it (Fig. 3 scenarios).
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/buffer_pool.hpp"
#include "core/control_route.hpp"
#include "core/matcher.hpp"
#include "core/options.hpp"
#include "core/protocol.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"
#include "dist/schedule.hpp"
#include "dist/transfer_stats.hpp"
#include "mem/eviction.hpp"
#include "runtime/process_context.hpp"

namespace ccf::core {

using runtime::ProcessContext;
using runtime::ProcId;

/// Static description of one outgoing connection of an exported region.
struct ExportConnConfig {
  int conn_id = 0;  ///< global connection index (also the buffer-pool bit)
  MatchPolicy policy = MatchPolicy::REGL;
  double tolerance = 0;
  dist::RedistSchedule schedule;       ///< exporter layout -> importer layout
  std::vector<ProcId> importer_procs;  ///< importer ranks' global ids
  /// False when this process's block lies outside the connection's
  /// transfer window: it still participates in the collective matching
  /// protocol (Property 1) but never buffers or ships data for the
  /// connection.
  bool contributes = true;
};

class ExportRegionState {
 public:
  ExportRegionState(std::string region_name, dist::Box local_box, int my_rank,
                    std::vector<ExportConnConfig> conns, const FrameworkOptions& options,
                    ProcId rep_id);

  /// The collective export call: decides buffer/skip per connection,
  /// snapshots if needed, ships any now-satisfiable matched transfer, and
  /// re-evaluates outstanding requests against the new history.
  void on_export(Timestamp t, const double* local_block, ProcessContext& ctx);

  /// A request forwarded by the rep. Sends this process's response
  /// (possibly PENDING) back to the rep via `ctx`. Requests are processed
  /// exactly once per sequence number: duplicates get their original
  /// response replayed, and requests arriving ahead of a gap are parked
  /// until the gap fills (the fabric may duplicate or reorder).
  void on_forwarded_request(const RequestMsg& msg, ProcessContext& ctx);

  /// The rep's buddy-help answer for a request this process had PENDING.
  void on_buddy_help(const AnswerMsg& msg, ProcessContext& ctx);

  /// End-of-stream: answers all outstanding requests decisively and
  /// resolves them. After this, forwarded requests are answered
  /// immediately (the matcher is frozen) and buffered matches can still
  /// be shipped.
  void finalize(ProcessContext& ctx);

  /// The importing program of `conn_id` finished: release every snapshot
  /// held for it and skip all future buffering on that connection.
  void on_conn_closed(std::uint32_t conn_id, ProcessContext& ctx);

  /// Liveness escape hatch (failure-tolerant mode): force-close every
  /// still-open connection so a process stalled on a finite buffer against
  /// a dead importer releases its snapshots and continues in degraded,
  /// unconnected mode. Returns the number of connections closed.
  std::size_t degrade_open_conns(ProcessContext& ctx);

  /// Redirects this region's rep-bound control messages (ProcResponse)
  /// through a shared route — the aggregation tree's leaf sub-rep or the
  /// owning rep shard (docs/PROTOCOL.md). `route` must outlive this object;
  /// null restores the default direct route to the ctor's rep id. Called by
  /// the runtime right after construction.
  void set_control_route(const ControlRoute* route) {
    route_ = route != nullptr ? route : &default_route_;
  }

  /// Wires the process-wide memory governor and spill store into this
  /// region's pool (both may be null). Called by the runtime right after
  /// construction, before any export.
  void attach_memory(mem::MemoryGovernor* governor, mem::SpillStore* spill) {
    pool_.attach_memory(governor, spill);
  }

  /// Demotes resident snapshots to the spill tier (decidability-ranked;
  /// see mem/eviction.hpp) until `bytes_needed` resident bytes are
  /// reclaimed or nothing spillable remains. Returns bytes reclaimed.
  /// No-op without a spill store.
  std::size_t shed(std::size_t bytes_needed);

  /// Live *resident* buffered bytes in this region's pool.
  std::size_t buffered_bytes() const { return pool_.stats().live_bytes; }

  /// Bytes one snapshot of this process's block occupies.
  std::size_t snapshot_bytes() const {
    return static_cast<std::size_t>(local_box_.count()) * sizeof(double);
  }

  /// True when every connection of this region has been closed.
  bool all_conns_closed() const;

  /// Whether blocking on framework traffic can make progress: stalling is
  /// only sound while no request is outstanding and no announced match is
  /// waiting to be produced (otherwise this process itself must advance
  /// to unblock the system — the cap is then exceeded softly).
  bool safe_to_stall() const;

  /// Accounts one backpressure stall of `seconds` (finite-buffer mode).
  void record_stall(double seconds) {
    ++stats_.stalls;
    stats_.stall_seconds += seconds;
  }

  bool handles_conn(std::uint32_t conn_id) const;

  const std::string& region_name() const { return name_; }

  /// Stats with the buffer-pool, data-plane, and matcher counters folded in.
  ExportRegionStats stats_snapshot() const {
    ExportRegionStats s = stats_;
    s.buffer = pool_.stats();
    s.bytes_delivered = xfer_.bytes_delivered;
    s.bytes_pack_copied = xfer_.bytes_pack_copied;
    s.sends_aliased = xfer_.sends_aliased;
    s.sends_packed = xfer_.sends_packed;
    for (const auto& c : conns_) {
      const ExportHistory::EvalCounters& ec = c.history.eval_counters();
      s.matcher_evaluations += ec.evaluations;
      s.matcher_pending += ec.pending;
    }
    return s;
  }

  /// Called by the runtime with the measured duration of each export call
  /// (drain + buffering + sends) — the Figure 4 series.
  void record_export_duration(Timestamp t, double seconds) {
    stats_.export_timestamps.push_back(t);
    stats_.export_seconds.push_back(seconds);
  }

  Trace& trace() { return trace_; }
  const BufferPool& pool() const { return pool_; }
  std::size_t outstanding_requests() const;

 private:
  struct Outstanding {
    std::uint32_t seq = 0;
    MatchQuery query;
    Interval region;
    std::optional<Timestamp> candidate;  ///< best buffered candidate so far
    double unnecessary_seconds = 0;      ///< Eq.(1) accumulator for this request
    bool responded_decisive = false;
    /// Entry id in the history's pending-request interval index; 0 when
    /// the request resolved decisively on arrival and was never indexed.
    /// The index and the outstanding queue stay FIFO-aligned: entry i of
    /// one is entry i of the other.
    std::uint64_t index_id = 0;
  };

  struct PendingSend {
    std::uint32_t seq = 0;
    Timestamp match = 0;
  };

  struct Conn {
    explicit Conn(ExportConnConfig c) : cfg(std::move(c)) {}
    ExportConnConfig cfg;
    ExportHistory history;
    std::deque<Outstanding> outstanding;
    std::deque<PendingSend> pending_sends;
    Timestamp low_water = kNeverExported;  ///< skip/free strictly below this
    Timestamp last_request = kNeverExported;
    bool closed = false;  ///< importer program finished; never buffer again
    Timestamp last_region_lo = kNeverExported;  ///< lo of the newest request's region
    /// Recently resolved requests, for validating racy buddy-help
    /// duplicates and replaying responses to retried requests (bounded;
    /// see resolve_front).
    std::map<std::uint32_t, AnswerMsg> resolved;
    /// Next request sequence number this process will accept; lower seqs
    /// are duplicates, higher ones are parked until the gap fills.
    std::uint32_t next_request_seq = 0;
    std::map<std::uint32_t, RequestMsg> parked_requests;
  };

  Conn& conn_of(std::uint32_t conn_id);
  void process_request(Conn& conn, const RequestMsg& msg, ProcessContext& ctx);
  void replay_response(Conn& conn, std::uint32_t seq, ProcessContext& ctx);
  void send_response(Conn& conn, std::uint32_t seq, const MatchAnswer& answer,
                     ProcessContext& ctx);
  void resolve_front(Conn& conn, MatchResult result, Timestamp matched, ProcessContext& ctx);
  void send_data(Conn& conn, std::uint32_t seq, Timestamp match, ProcessContext& ctx);
  void check_local_decisions(Conn& conn, ProcessContext& ctx);
  void raise_low_water(Conn& conn, Timestamp threshold, Outstanding* attribute_to,
                       ProcessContext& ctx);
  void trace_removed(const std::vector<BufferPool::Freed>& freed, ProcessContext& ctx);

  std::string name_;
  dist::Box local_box_;
  int my_rank_;
  std::vector<Conn> conns_;
  FrameworkOptions options_;
  ProcId rep_id_;
  ControlRoute default_route_;  ///< direct to rep_id_, single shard
  const ControlRoute* route_ = nullptr;
  BufferPool pool_;
  ExportRegionStats stats_;
  dist::TransferStats xfer_;  ///< data-plane copy accounting across all sends
  Trace trace_;
};

}  // namespace ccf::core
