#include "core/naive_matcher.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ccf::core {

void NaiveHistory::record(Timestamp t) {
  CCF_REQUIRE(!finalized_, "record() after finalize()");
  CCF_REQUIRE(t > latest_, "export timestamps must be strictly increasing: " << t << " after "
                                                                             << latest_);
  latest_ = t;
  const bool above_clip = clip_exclusive_ ? t > clip_ : t >= clip_;
  if (above_clip) timestamps_.push_back(t);
}

void NaiveHistory::finalize() { finalized_ = true; }

std::optional<Timestamp> NaiveHistory::best_candidate(const MatchQuery& query) const {
  const Interval region = query.region();
  // Candidates inside [lo, hi]; history is sorted, so scan the window.
  const auto lo_it = std::lower_bound(timestamps_.begin(), timestamps_.end(), region.lo);
  std::optional<Timestamp> best;
  for (auto it = lo_it; it != timestamps_.end() && *it <= region.hi; ++it) {
    if (matcher_mutation_enabled()) {
      // Deliberate bug (harness conformance target): first-in-region wins.
      if (!best) best = *it;
      continue;
    }
    if (!best || better_match(*it, *best, query.requested)) best = *it;
  }
  return best;
}

MatchAnswer NaiveHistory::evaluate(const MatchQuery& query) const {
  ++eval_counters_.evaluations;
  MatchAnswer answer;
  answer.latest_exported = latest();

  // Decidable when no future export can change the outcome: at
  // end-of-stream, once exports passed the region's upper edge, or once
  // the current best is unbeatable. A best at/above the request wins
  // outright (later exports are farther). A best below the request (REG)
  // stays beatable until exports pass its mirror point 2x - best: an
  // export there ties on distance and the tie prefers the later
  // timestamp. For REGL the region ends at the request, so the upper-edge
  // test reduces to the paper's latest >= requested rule.
  const Interval region = query.region();
  const std::optional<Timestamp> best = best_candidate(query);
  bool decidable = finalized_ || answer.latest_exported >= region.hi;
  if (!decidable && best) {
    decidable = answer.latest_exported >= 2 * query.requested - *best;
  }
  if (!decidable) {
    answer.result = MatchResult::Pending;
    ++eval_counters_.pending;
    return answer;
  }
  if (best) {
    answer.result = MatchResult::Match;
    answer.matched = *best;
    ++eval_counters_.matches;
  } else {
    answer.result = MatchResult::NoMatch;
    ++eval_counters_.no_matches;
  }
  return answer;
}

void NaiveHistory::prune_below(Timestamp t) {
  const auto it = std::lower_bound(timestamps_.begin(), timestamps_.end(), t);
  timestamps_.erase(timestamps_.begin(), it);
  if (t > clip_ || (t == clip_ && clip_exclusive_)) {
    clip_ = t;
    clip_exclusive_ = false;  // future records >= t stay eligible
  }
}

void NaiveHistory::prune_through(Timestamp t) {
  const auto it = std::upper_bound(timestamps_.begin(), timestamps_.end(), t);
  timestamps_.erase(timestamps_.begin(), it);
  if (t >= clip_) {
    clip_ = t;
    clip_exclusive_ = true;  // future records must exceed t
  }
}

}  // namespace ccf::core
