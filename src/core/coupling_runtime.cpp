#include "core/coupling_runtime.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace ccf::core {

using runtime::MatchSpec;
using runtime::Message;
using transport::kAnyTag;
using transport::Reader;
using transport::Writer;

CouplingRuntime::CouplingRuntime(runtime::ProcessContext& ctx, const Config& config,
                                 const DeploymentLayout& layout, std::string program_name,
                                 int rank, FrameworkOptions options)
    : ctx_(ctx),
      config_(config),
      layout_(layout),
      program_(std::move(program_name)),
      rank_(rank),
      options_(options) {
  const ProgramLayout& pl = layout_.program(program_);
  CCF_REQUIRE(rank_ >= 0 && rank_ < pl.nprocs,
              "rank " << rank_ << " outside program " << program_);
  CCF_REQUIRE(ctx_.id() == pl.proc(rank_),
              "process id " << ctx_.id() << " does not match layout for " << program_
                            << " rank " << rank_);
  rep_ = pl.rep;
}

void CouplingRuntime::define_export_region(const std::string& name,
                                           const dist::BlockDecomposition& decomp) {
  CCF_REQUIRE(!committed_, "define_export_region after commit()");
  CCF_REQUIRE(!export_regions_.count(name) && !import_regions_.count(name),
              "region '" << name << "' defined twice");
  CCF_REQUIRE(decomp.nprocs() == layout_.program(program_).nprocs,
              "region decomposition uses " << decomp.nprocs() << " processes, program has "
                                           << layout_.program(program_).nprocs);
  export_regions_.emplace(name, ExportRegion{decomp, nullptr, 0});
}

void CouplingRuntime::define_import_region(const std::string& name,
                                           const dist::BlockDecomposition& decomp) {
  CCF_REQUIRE(!committed_, "define_import_region after commit()");
  CCF_REQUIRE(!export_regions_.count(name) && !import_regions_.count(name),
              "region '" << name << "' defined twice");
  CCF_REQUIRE(decomp.nprocs() == layout_.program(program_).nprocs,
              "region decomposition uses " << decomp.nprocs() << " processes, program has "
                                           << layout_.program(program_).nprocs);
  ImportRegion region(decomp);
  region.stats.region = name;
  import_regions_.emplace(name, std::move(region));
}

void CouplingRuntime::commit() {
  CCF_REQUIRE(!committed_, "commit() called twice");
  committed_ = true;

  // Rank 0 ships the program's region definitions to the rep, which
  // validates them against the configuration and swaps geometry with the
  // connected programs' reps.
  if (rank_ == 0) {
    Writer w;
    w.put<std::uint32_t>(static_cast<std::uint32_t>(export_regions_.size()));
    for (const auto& [name, region] : export_regions_) {
      RegionMeta meta{name, region.decomp.rows(), region.decomp.cols(),
                      region.decomp.proc_rows(), region.decomp.proc_cols()};
      meta.encode_into(w);
    }
    w.put<std::uint32_t>(static_cast<std::uint32_t>(import_regions_.size()));
    for (const auto& [name, region] : import_regions_) {
      RegionMeta meta{name, region.decomp.rows(), region.decomp.cols(),
                      region.decomp.proc_rows(), region.decomp.proc_cols()};
      meta.encode_into(w);
    }
    ctx_.send(rep_, kTagRegionDefs, w.take());
  }

  // Every process receives the peer-geometry broadcast:
  //   u32 n; n x { u32 conn, RegionMeta peer } (export conns then import
  //   conns of this program, any order — keyed by conn id).
  Message m = ctx_.recv(MatchSpec{rep_, kTagRegionMetaBcast});
  Reader r(m.payload);
  std::map<std::uint32_t, RegionMeta> peer_meta;
  const auto n = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto conn = r.get<std::uint32_t>();
    peer_meta.emplace(conn, RegionMeta::decode_from(r));
  }

  // Build export-side state machines.
  for (auto& [name, region] : export_regions_) {
    const auto conn_ids = config_.connections_exporting(program_, name);
    if (conn_ids.empty()) continue;  // unconnected: stays a no-op region
    std::vector<ExportConnConfig> conn_configs;
    for (int conn_id : conn_ids) {
      const ConnectionSpec& spec = config_.connections()[static_cast<std::size_t>(conn_id)];
      auto it = peer_meta.find(static_cast<std::uint32_t>(conn_id));
      CCF_CHECK(it != peer_meta.end(), "missing peer metadata for connection " << conn_id);
      const RegionMeta& peer = it->second;
      // The transferred window: a sub-box of the exporter domain the
      // importer's whole region maps onto (default: the whole domain).
      const dist::Box window = spec.exporter_window.value_or(region.decomp.domain());
      CCF_REQUIRE(region.decomp.domain().contains(window),
                  "connection " << conn_id << ": transfer window " << window
                                << " escapes the exported region's domain");
      CCF_REQUIRE(peer.rows == window.rows() && peer.cols == window.cols(),
                  "region dimension mismatch on connection " << conn_id << ": window "
                      << window.rows() << "x" << window.cols() << ", importer " << peer.rows
                      << "x" << peer.cols);
      dist::BlockDecomposition importer_decomp(peer.rows, peer.cols, peer.proc_rows,
                                               peer.proc_cols);
      ExportConnConfig cfg{conn_id, spec.policy, spec.tolerance,
                           dist::RedistSchedule(region.decomp, importer_decomp, window,
                                                window.row_begin, window.col_begin),
                           layout_.program(spec.importer_program).proc_ids()};
      cfg.contributes = !cfg.schedule.sends_of(rank_).empty();
      conn_configs.push_back(std::move(cfg));
    }
    region.state = std::make_unique<ExportRegionState>(
        name, region.decomp.box_of(rank_), rank_, std::move(conn_configs), options_, rep_);
  }

  // Build import-side schedules.
  for (auto& [name, region] : import_regions_) {
    const auto conn = config_.connection_importing(program_, name);
    CCF_CHECK(conn.has_value(),
              "import region '" << name << "' survived validation without an exporter");
    region.conn_id = *conn;
    const ConnectionSpec& spec = config_.connections()[static_cast<std::size_t>(*conn)];
    auto it = peer_meta.find(static_cast<std::uint32_t>(*conn));
    CCF_CHECK(it != peer_meta.end(), "missing peer metadata for connection " << *conn);
    const RegionMeta& peer = it->second;
    dist::BlockDecomposition exporter_decomp(peer.rows, peer.cols, peer.proc_rows,
                                             peer.proc_cols);
    const dist::Box window =
        spec.exporter_window.value_or(dist::Box{0, peer.rows, 0, peer.cols});
    CCF_REQUIRE((dist::Box{0, peer.rows, 0, peer.cols}.contains(window)),
                "connection " << *conn << ": transfer window " << window
                              << " escapes the exporter's domain");
    CCF_REQUIRE(window.rows() == region.decomp.rows() && window.cols() == region.decomp.cols(),
                "region dimension mismatch on connection " << *conn << ": window "
                    << window.rows() << "x" << window.cols() << ", imported region "
                    << region.decomp.rows() << "x" << region.decomp.cols());
    region.schedule = std::make_unique<dist::RedistSchedule>(
        exporter_decomp, region.decomp, window, window.row_begin, window.col_begin);
    region.exporter_procs = layout_.program(spec.exporter_program).proc_ids();
  }
}

AnswerMsg CouplingRuntime::await_answer(int conn_id) {
  // Check answers parked by earlier waits on other connections.
  auto stash = stashed_answers_.find(conn_id);
  if (stash != stashed_answers_.end() && !stash->second.empty()) {
    AnswerMsg answer = stash->second.front();
    stash->second.pop_front();
    return answer;
  }
  // While blocked on our own import we keep serving framework traffic —
  // in bidirectional couplings the peer's request may need this very
  // process's response before the peer can produce the data we wait for.
  for (;;) {
    Message m = ctx_.recv(MatchSpec{rep_, transport::kAnyTag});
    if (m.tag == import_answer_tag(conn_id)) return AnswerMsg::decode(m.payload);
    if (m.tag >= kTagImportAnswerBase && m.tag < kTagDataBase) {
      const AnswerMsg other = AnswerMsg::decode(m.payload);
      stashed_answers_[static_cast<int>(other.conn)].push_back(other);
      continue;
    }
    if (m.tag == kTagShutdownProc) {
      // Cannot happen while an import is outstanding on a live system;
      // remember it defensively for finalize().
      shutdown_seen_ = true;
      continue;
    }
    handle_control(m);
  }
}

ExportRegionState* CouplingRuntime::state_for_conn(std::uint32_t conn) {
  for (auto& [name, region] : export_regions_) {
    if (region.state && region.state->handles_conn(conn)) return region.state.get();
  }
  return nullptr;
}

void CouplingRuntime::handle_control(const Message& m) {
  switch (m.tag) {
    case kTagProcForward: {
      const RequestMsg req = RequestMsg::decode(m.payload);
      ExportRegionState* state = state_for_conn(req.conn);
      CCF_CHECK(state != nullptr, "forwarded request for unknown connection " << req.conn);
      state->on_forwarded_request(req, ctx_);
      break;
    }
    case kTagBuddyHelp: {
      const AnswerMsg help = AnswerMsg::decode(m.payload);
      ExportRegionState* state = state_for_conn(help.conn);
      CCF_CHECK(state != nullptr, "buddy-help for unknown connection " << help.conn);
      state->on_buddy_help(help, ctx_);
      break;
    }
    case kTagConnClosed: {
      const ConnMsg msg = ConnMsg::decode(m.payload);
      ExportRegionState* state = state_for_conn(msg.conn);
      CCF_CHECK(state != nullptr, "conn-closed for unknown connection " << msg.conn);
      state->on_conn_closed(msg.conn, ctx_);
      break;
    }
    default:
      throw util::InternalError("unexpected control tag " + std::to_string(m.tag) +
                                " at process " + std::to_string(ctx_.id()));
  }
}

void CouplingRuntime::drain_control() {
  // Consume rep->proc traffic in arrival order; tag wildcarding preserves
  // the FIFO the skip rules rely on (a request's buddy-help precedes the
  // next forwarded request in the rep's send order).
  while (auto m = ctx_.try_recv(MatchSpec{rep_, kAnyTag})) {
    if (m->tag == kTagShutdownProc) {
      // All connected programs already finished; remember it for
      // finalize()'s service loop and keep exporting.
      shutdown_seen_ = true;
      continue;
    }
    handle_control(*m);
  }
}

void CouplingRuntime::export_region(const std::string& name, Timestamp t,
                                    const dist::DistArray2D<double>& data) {
  CCF_REQUIRE(committed_, "export before commit()");
  CCF_REQUIRE(!finalized_, "export after finalize()");
  auto it = export_regions_.find(name);
  CCF_REQUIRE(it != export_regions_.end(), "export of undefined region '" << name << "'");
  ExportRegion& region = it->second;
  CCF_REQUIRE(data.decomposition() == region.decomp && data.rank() == rank_,
              "exported array layout does not match region '" << name << "'");

  const double start = ctx_.now();
  if (region.state == nullptr) {
    // Exported region nobody imports: the framework does no buffering at
    // all (the paper's low-overhead path).
    ++region.unconnected_exports;
    return;
  }
  drain_control();

  // Finite buffer space (paper §6): when the next snapshot would exceed
  // the cap, block on framework traffic — an import request advances the
  // low-water mark and frees snapshots; an importer departure releases a
  // whole connection. Stalling is skipped when this process itself must
  // advance to unblock the system (see ExportRegionState::safe_to_stall).
  if (options_.max_buffered_bytes > 0) {
    while (region.state->buffered_bytes() + region.state->snapshot_bytes() >
               options_.max_buffered_bytes &&
           region.state->safe_to_stall() && !shutdown_seen_) {
      const double stall_start = ctx_.now();
      Message m = ctx_.recv(MatchSpec{rep_, kAnyTag});
      if (m.tag == kTagShutdownProc) {
        shutdown_seen_ = true;
      } else {
        handle_control(m);
      }
      region.state->record_stall(ctx_.now() - stall_start);
    }
  }

  region.state->on_export(t, data.data(), ctx_);
  region.state->record_export_duration(t, ctx_.now() - start);
}

CouplingRuntime::ImportTicket CouplingRuntime::import_request(const std::string& name,
                                                              Timestamp x) {
  CCF_REQUIRE(committed_, "import before commit()");
  CCF_REQUIRE(!finalized_, "import after finalize()");
  auto it = import_regions_.find(name);
  CCF_REQUIRE(it != import_regions_.end(), "import of undefined region '" << name << "'");
  ImportRegion& region = it->second;
  CCF_REQUIRE(x > region.last_request,
              "import request timestamps must increase: " << x << " after "
                                                          << region.last_request);
  region.last_request = x;

  const std::uint32_t seq = region.next_seq++;
  if (rank_ == 0) {
    RequestMsg req{static_cast<std::uint32_t>(region.conn_id), seq, x};
    ctx_.send(rep_, kTagImportRequest, req.encode());
  }
  return ImportTicket{name, seq, x};
}

CouplingRuntime::ImportStatus CouplingRuntime::import_wait(const ImportTicket& ticket,
                                                           dist::DistArray2D<double>& out) {
  auto it = import_regions_.find(ticket.region);
  CCF_REQUIRE(it != import_regions_.end(),
              "import_wait on undefined region '" << ticket.region << "'");
  ImportRegion& region = it->second;
  CCF_REQUIRE(out.decomposition() == region.decomp && out.rank() == rank_,
              "import target layout does not match region '" << ticket.region << "'");
  CCF_REQUIRE(ticket.seq == region.next_wait_seq,
              "import_wait out of order on region '"
                  << ticket.region << "': ticket seq " << ticket.seq << ", expected "
                  << region.next_wait_seq << " (waits must follow issue order)");
  CCF_REQUIRE(ticket.seq < region.next_seq, "import_wait on a ticket never issued");
  ++region.next_wait_seq;

  const double start = ctx_.now();
  const AnswerMsg answer = await_answer(region.conn_id);
  CCF_CHECK(answer.conn == static_cast<std::uint32_t>(region.conn_id) &&
                answer.seq == ticket.seq,
            "import answer out of order: got conn " << answer.conn << " seq " << answer.seq
                                                    << ", expected seq " << ticket.seq);

  ImportStatus status;
  status.result = answer.result;
  status.matched = answer.matched;
  ++region.stats.imports;
  if (answer.result == MatchResult::Match) {
    dist::execute_recvs(ctx_, *region.schedule, rank_, region.exporter_procs,
                        data_tag(region.conn_id, ticket.seq), out);
    ++region.stats.matches;
    region.stats.matched_timestamps.push_back(answer.matched);
  } else {
    ++region.stats.no_matches;
  }
  region.stats.import_seconds.push_back(ctx_.now() - start);
  return status;
}

CouplingRuntime::ImportStatus CouplingRuntime::import_region(const std::string& name,
                                                             Timestamp x,
                                                             dist::DistArray2D<double>& out) {
  const ImportTicket ticket = import_request(name, x);
  return import_wait(ticket, out);
}

std::size_t CouplingRuntime::pending_imports(const std::string& name) const {
  auto it = import_regions_.find(name);
  CCF_REQUIRE(it != import_regions_.end(), "unknown import region '" << name << "'");
  return it->second.next_seq - it->second.next_wait_seq;
}

void CouplingRuntime::finalize() {
  CCF_REQUIRE(committed_, "finalize before commit()");
  CCF_REQUIRE(!finalized_, "finalize() called twice");
  for (const auto& [name, region] : import_regions_) {
    CCF_REQUIRE(region.next_wait_seq == region.next_seq,
                "finalize with " << (region.next_seq - region.next_wait_seq)
                                 << " unfinished pipelined imports on region '" << name << "'");
  }
  finalized_ = true;

  for (auto& [name, region] : export_regions_) {
    if (region.state) region.state->finalize(ctx_);
  }
  if (rank_ == 0) {
    for (int conn : config_.connections_of_importer_program(program_)) {
      ConnMsg msg{static_cast<std::uint32_t>(conn)};
      ctx_.send(rep_, kTagImporterConnDone, msg.encode());
    }
  }

  // Service loop: this process's part of the region data may still be
  // requested (a slower importer catching up); keep answering until the
  // rep confirms every connected program finished.
  while (!shutdown_seen_) {
    Message m = ctx_.recv(MatchSpec{rep_, kAnyTag});
    if (m.tag == kTagShutdownProc) break;
    handle_control(m);
  }
  finished_at_ = ctx_.now();
}

ProcStats CouplingRuntime::stats_snapshot() const {
  ProcStats stats;
  for (const auto& [name, region] : export_regions_) {
    if (region.state) {
      stats.exports.push_back(region.state->stats_snapshot());
    } else {
      ExportRegionStats s;
      s.region = name;
      s.exports = region.unconnected_exports;
      stats.exports.push_back(std::move(s));
    }
  }
  for (const auto& [name, region] : import_regions_) stats.imports.push_back(region.stats);
  stats.finished_at = finished_at_;
  return stats;
}

std::string CouplingRuntime::trace_listing(const std::string& region) const {
  auto it = export_regions_.find(region);
  if (it == export_regions_.end() || !it->second.state) return "";
  return it->second.state->trace().listing();
}

}  // namespace ccf::core
