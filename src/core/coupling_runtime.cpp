#include "core/coupling_runtime.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace ccf::core {

using runtime::MatchSpec;
using runtime::Message;
using transport::kAnyTag;
using transport::Reader;
using transport::Writer;

namespace {

// One logical proc->rep control send for program-wide (not per-connection)
// tags: once to the parent sub-rep when the aggregation tree is on (the
// top-level sub-rep duplicates program-wide tags to every shard), else
// directly to each rep shard. With the default flat single-shard layout
// this is exactly one send to the rep — byte-identical to the pre-tree
// protocol.
void send_up_all(runtime::ProcessContext& ctx, const ControlRoute& route, Tag tag,
                 const transport::Payload& payload) {
  if (route.via_parent()) {
    ctx.send(route.parent, tag, payload);
    return;
  }
  for (int s = 0; s < route.shards; ++s) ctx.send(route.base + s, tag, payload);
}

}  // namespace

CouplingRuntime::CouplingRuntime(runtime::ProcessContext& ctx, const Config& config,
                                 const DeploymentLayout& layout, std::string program_name,
                                 int rank, FrameworkOptions options)
    : ctx_(ctx),
      config_(config),
      layout_(layout),
      program_(std::move(program_name)),
      rank_(rank),
      options_(options) {
  const ProgramLayout& pl = layout_.program(program_);
  CCF_REQUIRE(rank_ >= 0 && rank_ < pl.nprocs,
              "rank " << rank_ << " outside program " << program_);
  CCF_REQUIRE(ctx_.id() == pl.proc(rank_),
              "process id " << ctx_.id() << " does not match layout for " << program_
                            << " rank " << rank_);
  rep_ = pl.rep;
  route_.base = pl.rep;
  route_.shards = pl.shards;
  if (const int parent = pl.parent_of_rank(rank_); parent >= 0) {
    route_.parent = pl.subrep(parent);
    route_.has_parent = true;
  }
  if (options_.memory.governed()) {
    governor_ = std::make_unique<mem::MemoryGovernor>(options_.memory.budget_bytes,
                                                      options_.memory.low_watermark,
                                                      options_.memory.high_watermark);
    if (!options_.memory.spill_directory.empty()) {
      spill_ = std::make_unique<mem::SpillStore>(options_.memory.spill_directory);
    }
  }
}

void CouplingRuntime::define_export_region(const std::string& name,
                                           const dist::BlockDecomposition& decomp) {
  CCF_REQUIRE(!committed_, "define_export_region after commit()");
  CCF_REQUIRE(!export_regions_.count(name) && !import_regions_.count(name),
              "region '" << name << "' defined twice");
  CCF_REQUIRE(decomp.nprocs() == layout_.program(program_).nprocs,
              "region decomposition uses " << decomp.nprocs() << " processes, program has "
                                           << layout_.program(program_).nprocs);
  export_regions_.emplace(name, ExportRegion{decomp, nullptr, 0});
}

void CouplingRuntime::define_import_region(const std::string& name,
                                           const dist::BlockDecomposition& decomp) {
  CCF_REQUIRE(!committed_, "define_import_region after commit()");
  CCF_REQUIRE(!export_regions_.count(name) && !import_regions_.count(name),
              "region '" << name << "' defined twice");
  CCF_REQUIRE(decomp.nprocs() == layout_.program(program_).nprocs,
              "region decomposition uses " << decomp.nprocs() << " processes, program has "
                                           << layout_.program(program_).nprocs);
  ImportRegion region(decomp);
  region.stats.region = name;
  import_regions_.emplace(name, std::move(region));
}

void CouplingRuntime::commit() {
  CCF_REQUIRE(!committed_, "commit() called twice");
  committed_ = true;

  // Rank 0 ships the program's region definitions to the rep, which
  // validates them against the configuration and swaps geometry with the
  // connected programs' reps.
  transport::Payload defs_payload;
  if (rank_ == 0) {
    Writer w;
    w.put<std::uint32_t>(static_cast<std::uint32_t>(export_regions_.size()));
    for (const auto& [name, region] : export_regions_) {
      RegionMeta meta{name, region.decomp.rows(), region.decomp.cols(),
                      region.decomp.proc_rows(), region.decomp.proc_cols()};
      meta.encode_into(w);
    }
    w.put<std::uint32_t>(static_cast<std::uint32_t>(import_regions_.size()));
    for (const auto& [name, region] : import_regions_) {
      RegionMeta meta{name, region.decomp.rows(), region.decomp.cols(),
                      region.decomp.proc_rows(), region.decomp.proc_cols()};
      meta.encode_into(w);
    }
    defs_payload = w.take();
    send_up_all(ctx_, route_, kTagRegionDefs, defs_payload);
  }

  // Every rep shard broadcasts the peer geometry of the connections it
  // owns:
  //   [u32 shard — sharded reps only] u32 n; n x { u32 conn, RegionMeta }.
  // A process is committed once it holds all shards' pieces; the default
  // single-shard deployment receives exactly the one pre-tree broadcast.
  std::map<std::uint32_t, RegionMeta> peer_meta;
  std::set<int> meta_seen;
  auto meta_spec = [&] {
    MatchSpec spec = route_.control_match();
    spec.tag = kTagRegionMetaBcast;
    return spec;
  };
  auto absorb_meta = [&](const Message& m) {
    Reader r(m.payload);
    int shard = 0;
    if (route_.shards > 1) shard = static_cast<int>(r.get<std::uint32_t>());
    const auto n = r.get<std::uint32_t>();
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto conn = r.get<std::uint32_t>();
      peer_meta.emplace(conn, RegionMeta::decode_from(r));
    }
    meta_seen.insert(shard);
    last_rep_seen_ = ctx_.now();
    // In tolerant mode the rep must not shut down until every worker holds
    // the geometry (a peer program may finish — and trigger rep exit —
    // before a dropped broadcast was recovered), so receipt is acknowledged.
    if (options_.failure_tolerance()) send_meta_ack(shard);
  };
  if (!options_.failure_tolerance()) {
    while (static_cast<int>(meta_seen.size()) < route_.shards) {
      absorb_meta(ctx_.recv(meta_spec()));
    }
  } else {
    // The definitions, the rep-to-rep geometry shipment, or a broadcast
    // itself may have been lost: time out, re-send what we own, and nudge
    // every shard to replay its broadcast. Timeouts are staggered by rank.
    double timeout = options_.retry_timeout_seconds * (1.0 + 0.1 * rank_);
    int retries = 0;
    while (static_cast<int>(meta_seen.size()) < route_.shards) {
      auto maybe = ctx_.recv_until(meta_spec(), ctx_.now() + timeout);
      if (maybe) {
        absorb_meta(*maybe);
        continue;
      }
      if (++retries > options_.max_retries) {
        throw util::TimeoutError("commit(): no region-geometry broadcast after " +
                                 std::to_string(retries - 1) + " retries at process " +
                                 std::to_string(ctx_.id()));
      }
      ++ft_.commit_retries;
      maybe_reparent();
      if (rank_ == 0) send_up_all(ctx_, route_, kTagRegionDefs, defs_payload);
      send_up_all(ctx_, route_, kTagMetaNudge, transport::empty_payload());
      timeout = std::min(timeout * options_.retry_backoff_factor,
                         options_.backoff_cap_seconds());
    }
  }

  // Build export-side state machines.
  for (auto& [name, region] : export_regions_) {
    const auto conn_ids = config_.connections_exporting(program_, name);
    if (conn_ids.empty()) continue;  // unconnected: stays a no-op region
    std::vector<ExportConnConfig> conn_configs;
    for (int conn_id : conn_ids) {
      const ConnectionSpec& spec = config_.connections()[static_cast<std::size_t>(conn_id)];
      auto it = peer_meta.find(static_cast<std::uint32_t>(conn_id));
      CCF_CHECK(it != peer_meta.end(), "missing peer metadata for connection " << conn_id);
      const RegionMeta& peer = it->second;
      // The transferred window: a sub-box of the exporter domain the
      // importer's whole region maps onto (default: the whole domain).
      const dist::Box window = spec.exporter_window.value_or(region.decomp.domain());
      CCF_REQUIRE(region.decomp.domain().contains(window),
                  "connection " << conn_id << ": transfer window " << window
                                << " escapes the exported region's domain");
      CCF_REQUIRE(peer.rows == window.rows() && peer.cols == window.cols(),
                  "region dimension mismatch on connection " << conn_id << ": window "
                      << window.rows() << "x" << window.cols() << ", importer " << peer.rows
                      << "x" << peer.cols);
      dist::BlockDecomposition importer_decomp(peer.rows, peer.cols, peer.proc_rows,
                                               peer.proc_cols);
      ExportConnConfig cfg{conn_id, spec.policy, spec.tolerance,
                           dist::RedistSchedule(region.decomp, importer_decomp, window,
                                                window.row_begin, window.col_begin),
                           layout_.program(spec.importer_program).proc_ids()};
      cfg.contributes = !cfg.schedule.sends_of(rank_).empty();
      conn_configs.push_back(std::move(cfg));
    }
    region.state = std::make_unique<ExportRegionState>(
        name, region.decomp.box_of(rank_), rank_, std::move(conn_configs), options_, rep_);
    region.state->set_control_route(&route_);
    region.state->attach_memory(governor_.get(), spill_.get());
  }

  // Build import-side schedules.
  for (auto& [name, region] : import_regions_) {
    const auto conn = config_.connection_importing(program_, name);
    CCF_CHECK(conn.has_value(),
              "import region '" << name << "' survived validation without an exporter");
    region.conn_id = *conn;
    const ConnectionSpec& spec = config_.connections()[static_cast<std::size_t>(*conn)];
    auto it = peer_meta.find(static_cast<std::uint32_t>(*conn));
    CCF_CHECK(it != peer_meta.end(), "missing peer metadata for connection " << *conn);
    const RegionMeta& peer = it->second;
    dist::BlockDecomposition exporter_decomp(peer.rows, peer.cols, peer.proc_rows,
                                             peer.proc_cols);
    const dist::Box window =
        spec.exporter_window.value_or(dist::Box{0, peer.rows, 0, peer.cols});
    CCF_REQUIRE((dist::Box{0, peer.rows, 0, peer.cols}.contains(window)),
                "connection " << *conn << ": transfer window " << window
                              << " escapes the exporter's domain");
    CCF_REQUIRE(window.rows() == region.decomp.rows() && window.cols() == region.decomp.cols(),
                "region dimension mismatch on connection " << *conn << ": window "
                    << window.rows() << "x" << window.cols() << ", imported region "
                    << region.decomp.rows() << "x" << region.decomp.cols());
    region.schedule = std::make_unique<dist::RedistSchedule>(
        exporter_decomp, region.decomp, window, window.row_begin, window.col_begin);
    region.exporter_procs = layout_.program(spec.exporter_program).proc_ids();
  }
}

void CouplingRuntime::signal_pressure() {
  // Process-level pressure is the OR of local memory pressure and the
  // transport's egress congestion (real backend only); one ProcPressure
  // edge is sent per change of the combined level. The governor's own
  // edge bookkeeping is still consumed so its accounting stays exact.
  const bool governed = governor_ != nullptr && governor_->under_pressure();
  if (governor_ != nullptr) governor_->consume_pressure_edge();
  const bool level = governed || ctx_.transport_pressure();
  if (level == sent_pressure_level_) return;
  sent_pressure_level_ = level;
  const PressureMsg msg{0, static_cast<std::uint8_t>(level ? 1 : 0)};
  send_up_all(ctx_, route_, kTagProcPressure, msg.encode());
  ++pressure_signals_;
}

void CouplingRuntime::stash_answer(const AnswerMsg& answer) {
  const int conn_id = static_cast<int>(answer.conn);
  for (const auto& [name, region] : import_regions_) {
    if (region.conn_id != conn_id) continue;
    if (answer.seq < region.next_wait_seq) {
      // Answer to a request already completed: a fabric duplicate or the
      // answer to a retry whose original got through after all.
      ++ft_.stale_answers;
      return;
    }
    break;
  }
  auto [it, fresh] = stashed_answers_[conn_id].emplace(answer.seq, answer);
  (void)it;
  if (!fresh) ++ft_.stale_answers;
}

AnswerMsg CouplingRuntime::await_answer(ImportRegion& region, std::uint32_t seq,
                                        Timestamp requested) {
  const int conn_id = region.conn_id;
  auto consume_stashed = [&]() -> std::optional<AnswerMsg> {
    auto stash = stashed_answers_.find(conn_id);
    if (stash == stashed_answers_.end()) return std::nullopt;
    auto hit = stash->second.find(seq);
    if (hit == stash->second.end()) return std::nullopt;
    AnswerMsg answer = hit->second;
    stash->second.erase(hit);
    return answer;
  };
  if (auto stashed = consume_stashed()) return *stashed;

  // While blocked on our own import we keep serving framework traffic —
  // in bidirectional couplings the peer's request may need this very
  // process's response before the peer can produce the data we wait for.
  const bool tolerant = options_.failure_tolerance();
  double timeout = options_.retry_timeout_seconds * (1.0 + 0.1 * rank_);
  int retries = 0;
  for (;;) {
    std::optional<Message> maybe;
    if (!tolerant) {
      maybe = ctx_.recv(route_.control_match());
    } else {
      maybe = ctx_.recv_until(route_.control_match(), ctx_.now() + timeout);
      if (!maybe) {
        // The request, a rep relay, or the answer broadcast was lost (or
        // the exporter is just slow). Re-sending is idempotent end to end:
        // reps and workers replay cached answers, so every rank may retry
        // — which also covers the loss of rank 0's original request.
        if (++retries > options_.max_retries) {
          throw util::TimeoutError("import on connection " + std::to_string(conn_id) +
                                   " seq " + std::to_string(seq) + ": no answer after " +
                                   std::to_string(retries - 1) + " retries at process " +
                                   std::to_string(ctx_.id()));
        }
        ++ft_.request_retries;
        maybe_reparent();
        RequestMsg req{static_cast<std::uint32_t>(conn_id), seq, requested};
        ctx_.send(route_.up_conn(conn_id), kTagImportRequest, req.encode());
        timeout = std::min(timeout * options_.retry_backoff_factor,
                           options_.backoff_cap_seconds());
        continue;
      }
    }
    const Message& m = *maybe;
    last_rep_seen_ = ctx_.now();
    if (m.tag >= kTagImportAnswerBase && m.tag < kTagDataBase) {
      stash_answer(AnswerMsg::decode(m.payload));
      if (auto stashed = consume_stashed()) return *stashed;
      continue;
    }
    if (m.tag == kTagShutdownProc) {
      // Cannot happen while an import is outstanding on a live system;
      // remember it defensively for finalize().
      note_shutdown(m.payload);
      continue;
    }
    handle_control(m);
  }
}

ExportRegionState* CouplingRuntime::state_for_conn(std::uint32_t conn) {
  for (auto& [name, region] : export_regions_) {
    if (region.state && region.state->handles_conn(conn)) return region.state.get();
  }
  return nullptr;
}

void CouplingRuntime::handle_control(const Message& m) {
  switch (m.tag) {
    case kTagProcForward: {
      const RequestMsg req = RequestMsg::decode(m.payload);
      ExportRegionState* state = state_for_conn(req.conn);
      CCF_CHECK(state != nullptr, "forwarded request for unknown connection " << req.conn);
      state->on_forwarded_request(req, ctx_);
      break;
    }
    case kTagBuddyHelp: {
      const AnswerMsg help = AnswerMsg::decode(m.payload);
      ExportRegionState* state = state_for_conn(help.conn);
      CCF_CHECK(state != nullptr, "buddy-help for unknown connection " << help.conn);
      state->on_buddy_help(help, ctx_);
      break;
    }
    case kTagConnClosed: {
      const ConnMsg msg = ConnMsg::decode(m.payload);
      ExportRegionState* state = state_for_conn(msg.conn);
      CCF_CHECK(state != nullptr, "conn-closed for unknown connection " << msg.conn);
      state->on_conn_closed(msg.conn, ctx_);
      break;
    }
    case kTagRepHeartbeat:
      ++ft_.heartbeats;
      break;
    case kTagPressureBcast: {
      // The exporter side of one of our import connections crossed a
      // buffer watermark: remember the level so import_request throttles
      // (or stops throttling) on that connection.
      const PressureMsg msg = PressureMsg::decode(m.payload);
      ++pressure_notices_;
      if (msg.level != 0) {
        pressured_conns_.insert(static_cast<int>(msg.conn));
      } else {
        pressured_conns_.erase(static_cast<int>(msg.conn));
      }
      break;
    }
    case kTagRegionMetaBcast:
      // Late duplicate of the startup geometry broadcast (a commit-retry
      // nudge raced with the original broadcast's delivery, or the rep is
      // re-broadcasting because our ack was lost): re-acknowledge.
      if (options_.failure_tolerance()) {
        int shard = 0;
        if (route_.shards > 1) {
          Reader r(m.payload);
          shard = static_cast<int>(r.get<std::uint32_t>());
        }
        send_meta_ack(shard);
      }
      break;
    default:
      if (m.tag >= kTagImportAnswerBase && m.tag < kTagDataBase) {
        // Answer broadcast arriving outside an import_wait (e.g. a retried
        // request answered after the original already completed).
        stash_answer(AnswerMsg::decode(m.payload));
        break;
      }
      throw util::InternalError("unexpected control tag " + std::to_string(m.tag) +
                                " at process " + std::to_string(ctx_.id()));
  }
  // Requests, buddy-help, and connection closures all free snapshots, so
  // any control message can clear (or, via parked requests, raise) the
  // governor's pressure level.
  signal_pressure();
}

void CouplingRuntime::drain_control() {
  // Consume rep->proc traffic in arrival order; tag wildcarding preserves
  // the FIFO the skip rules rely on (a request's buddy-help precedes the
  // next forwarded request in the rep's send order).
  while (auto m = ctx_.try_recv(route_.control_match())) {
    last_rep_seen_ = ctx_.now();
    if (m->tag == kTagShutdownProc) {
      // All connected programs already finished; remember it for
      // finalize()'s service loop and keep exporting.
      note_shutdown(m->payload);
      continue;
    }
    handle_control(*m);
  }
}

void CouplingRuntime::maybe_reparent() {
  if (!route_.has_parent || options_.departure_timeout_seconds <= 0) return;
  if (ctx_.now() - last_rep_seen_ <= options_.departure_timeout_seconds) return;
  // Nothing — not even a relayed heartbeat — for a whole departure window:
  // the leaf sub-rep is presumed dead. Fall back to the direct shard layer
  // and announce the switch; any plain own-proc message makes the rep mark
  // this rank direct, so the nudge doubles as that announcement.
  route_.has_parent = false;
  ++ft_.reparents;
  for (int s = 0; s < route_.shards; ++s) {
    ctx_.send(route_.base + s, kTagMetaNudge, transport::empty_payload());
  }
  last_rep_seen_ = ctx_.now();  // restart the window before declaring the rep dead
}

void CouplingRuntime::note_shutdown(const transport::Payload& payload) {
  if (route_.shards <= 1) {
    shutdown_seen_ = true;
    return;
  }
  Reader r(payload);
  shutdown_shards_.insert(static_cast<int>(r.get<std::uint32_t>()));
  if (static_cast<int>(shutdown_shards_.size()) >= route_.shards) shutdown_seen_ = true;
}

void CouplingRuntime::send_meta_ack(int shard) {
  const ProcId dest = route_.up_shard(shard);
  if (route_.shards == 1 && !route_.has_parent) {
    // Flat single-shard layout: the pre-tree empty-payload ack, unchanged.
    ctx_.send(dest, kTagMetaAck, transport::empty_payload());
    return;
  }
  Writer w;
  w.put<std::uint32_t>(static_cast<std::uint32_t>(shard));
  ctx_.send(dest, kTagMetaAck, w.take());
}

void CouplingRuntime::export_region(const std::string& name, Timestamp t,
                                    const dist::DistArray2D<double>& data) {
  CCF_REQUIRE(committed_, "export before commit()");
  CCF_REQUIRE(!finalized_, "export after finalize()");
  auto it = export_regions_.find(name);
  CCF_REQUIRE(it != export_regions_.end(), "export of undefined region '" << name << "'");
  ExportRegion& region = it->second;
  CCF_REQUIRE(data.decomposition() == region.decomp && data.rank() == rank_,
              "exported array layout does not match region '" << name << "'");

  const double start = ctx_.now();
  if (region.state == nullptr) {
    // Exported region nobody imports: the framework does no buffering at
    // all (the paper's low-overhead path).
    ++region.unconnected_exports;
    return;
  }
  drain_control();

  // Finite buffer space (paper §6) and buffer governance (src/mem): when
  // the next snapshot would exceed the per-region cap or the process-wide
  // budget, first demote cold-but-matchable snapshots to the spill tier
  // (decidability-ranked, no protocol effect), then block on framework
  // traffic — an import request advances the low-water mark and frees
  // snapshots; an importer departure releases a whole connection.
  // Stalling is skipped when this process itself must advance to unblock
  // the system (see ExportRegionState::safe_to_stall), and when waiting
  // cannot possibly create room (the snapshot alone exceeds the budget):
  // then the budget is exceeded softly, with pressure raised — the
  // degraded bounded-buffering mode — rather than deadlocking the
  // collective protocol.
  const std::size_t snap_bytes = region.state->snapshot_bytes();
  auto shed_shortfall = [&] {
    if (governor_ == nullptr) return;
    const std::size_t need = governor_->shortfall(snap_bytes);
    if (need > 0) region.state->shed(need);
  };
  auto over_limit = [&]() -> bool {
    if (options_.max_buffered_bytes > 0 &&
        region.state->buffered_bytes() + snap_bytes > options_.max_buffered_bytes) {
      return true;
    }
    if (governor_ != nullptr) {
      const std::size_t need = governor_->shortfall(snap_bytes);
      // Stall only while freeing/spilling what is charged could cover the
      // shortfall; otherwise no amount of waiting makes this snapshot fit.
      if (need > 0 && need <= governor_->stats().charged_bytes) return true;
    }
    return false;
  };
  if (options_.max_buffered_bytes > 0 || governor_ != nullptr) {
    shed_shortfall();
    // In failure-tolerant mode the stall is bounded: past the deadline we
    // assume the importing program died without a departure notice,
    // force-close its connections (releasing the snapshots it pinned) and
    // continue in degraded mode. The deadline is absolute from stall
    // entry — heartbeats prove the rep is alive, not that buffer space
    // will ever be freed.
    const bool bounded = options_.failure_tolerance() && options_.stall_timeout_seconds > 0;
    const double stall_deadline = ctx_.now() + options_.stall_timeout_seconds;
    while (over_limit() && region.state->safe_to_stall() && !shutdown_seen_) {
      signal_pressure();
      const double stall_start = ctx_.now();
      std::optional<Message> m;
      if (bounded) {
        m = ctx_.recv_until(route_.control_match(), stall_deadline);
        if (!m) {
          region.state->record_stall(ctx_.now() - stall_start);
          region.state->degrade_open_conns(ctx_);
          break;
        }
      } else {
        m = ctx_.recv(route_.control_match());
      }
      last_rep_seen_ = ctx_.now();
      if (m->tag == kTagShutdownProc) {
        note_shutdown(m->payload);
      } else {
        handle_control(*m);
      }
      region.state->record_stall(ctx_.now() - stall_start);
      shed_shortfall();
    }
  }

  region.state->on_export(t, data.data(), ctx_);
  region.state->record_export_duration(t, ctx_.now() - start);
  signal_pressure();
}

CouplingRuntime::ImportTicket CouplingRuntime::import_request(const std::string& name,
                                                              Timestamp x) {
  CCF_REQUIRE(committed_, "import before commit()");
  CCF_REQUIRE(!finalized_, "import after finalize()");
  auto it = import_regions_.find(name);
  CCF_REQUIRE(it != import_regions_.end(), "import of undefined region '" << name << "'");
  ImportRegion& region = it->second;
  CCF_REQUIRE(x > region.last_request,
              "import request timestamps must increase: " << x << " after "
                                                          << region.last_request);
  region.last_request = x;

  // Collective backpressure response: the exporter announced it is over
  // its buffer high watermark, so give it breathing room before asking
  // for more (every rank throttles identically — the request itself stays
  // collective and the answer unchanged).
  if (options_.memory.importer_throttle_seconds > 0 &&
      pressured_conns_.count(region.conn_id) > 0) {
    ctx_.compute(options_.memory.importer_throttle_seconds);
    ++region.stats.pressure_throttles;
    region.stats.throttle_seconds += options_.memory.importer_throttle_seconds;
  }

  const std::uint32_t seq = region.next_seq++;
  if (rank_ == 0) {
    RequestMsg req{static_cast<std::uint32_t>(region.conn_id), seq, x};
    ctx_.send(route_.up_conn(region.conn_id), kTagImportRequest, req.encode());
  }
  return ImportTicket{name, seq, x};
}

CouplingRuntime::ImportStatus CouplingRuntime::import_wait(const ImportTicket& ticket,
                                                           dist::DistArray2D<double>& out) {
  auto it = import_regions_.find(ticket.region);
  CCF_REQUIRE(it != import_regions_.end(),
              "import_wait on undefined region '" << ticket.region << "'");
  ImportRegion& region = it->second;
  CCF_REQUIRE(out.decomposition() == region.decomp && out.rank() == rank_,
              "import target layout does not match region '" << ticket.region << "'");
  CCF_REQUIRE(ticket.seq == region.next_wait_seq,
              "import_wait out of order on region '"
                  << ticket.region << "': ticket seq " << ticket.seq << ", expected "
                  << region.next_wait_seq << " (waits must follow issue order)");
  CCF_REQUIRE(ticket.seq < region.next_seq, "import_wait on a ticket never issued");

  const double start = ctx_.now();
  const AnswerMsg answer = await_answer(region, ticket.seq, ticket.requested);
  // Bumped only after the answer arrives: stash_answer treats seqs below
  // this as stale and must not discard the in-flight one.
  ++region.next_wait_seq;
  CCF_CHECK(answer.conn == static_cast<std::uint32_t>(region.conn_id) &&
                answer.seq == ticket.seq,
            "import answer out of order: got conn " << answer.conn << " seq " << answer.seq
                                                    << ", expected seq " << ticket.seq);

  ImportStatus status;
  status.result = answer.result;
  status.matched = answer.matched;
  ++region.stats.imports;
  if (answer.result == MatchResult::Match) {
    dist::execute_recvs(ctx_, *region.schedule, rank_, region.exporter_procs,
                        data_tag(region.conn_id, ticket.seq), out);
    ++region.stats.matches;
    region.stats.matched_timestamps.push_back(answer.matched);
  } else {
    ++region.stats.no_matches;
  }
  region.stats.import_seconds.push_back(ctx_.now() - start);
  return status;
}

CouplingRuntime::ImportStatus CouplingRuntime::import_region(const std::string& name,
                                                             Timestamp x,
                                                             dist::DistArray2D<double>& out) {
  const ImportTicket ticket = import_request(name, x);
  return import_wait(ticket, out);
}

std::size_t CouplingRuntime::pending_imports(const std::string& name) const {
  auto it = import_regions_.find(name);
  CCF_REQUIRE(it != import_regions_.end(), "unknown import region '" << name << "'");
  return it->second.next_seq - it->second.next_wait_seq;
}

void CouplingRuntime::finalize() {
  CCF_REQUIRE(committed_, "finalize before commit()");
  CCF_REQUIRE(!finalized_, "finalize() called twice");
  for (const auto& [name, region] : import_regions_) {
    CCF_REQUIRE(region.next_wait_seq == region.next_seq,
                "finalize with " << (region.next_seq - region.next_wait_seq)
                                 << " unfinished pipelined imports on region '" << name << "'");
  }
  finalized_ = true;

  for (auto& [name, region] : export_regions_) {
    if (region.state) region.state->finalize(ctx_);
  }
  auto send_conn_done = [&] {
    // Lossless fabric: rank 0 speaks for the program (requests are
    // collective, so rank 0 finishing means every answer was broadcast
    // and the remaining ranks finish from their mailboxes). Under faults
    // any single rank's answer copy may have been dropped, and only a
    // live rep can replay it — so every rank reports its own completion
    // and the rep waits for all of them.
    if (rank_ != 0 && !options_.failure_tolerance()) return;
    for (int conn : config_.connections_of_importer_program(program_)) {
      ConnMsg msg{static_cast<std::uint32_t>(conn)};
      ctx_.send(route_.up_conn(conn), kTagImporterConnDone, msg.encode());
    }
  };
  send_conn_done();

  // Service loop: this process's part of the region data may still be
  // requested (a slower importer catching up); keep answering until the
  // rep confirms every connected program finished.
  if (!options_.failure_tolerance()) {
    while (!shutdown_seen_) {
      Message m = ctx_.recv(route_.control_match());
      if (m.tag == kTagShutdownProc) {
        note_shutdown(m.payload);
        continue;
      }
      handle_control(m);
    }
  } else {
    // Failure-tolerant service loop: tick periodically to (a) re-send our
    // end-of-stream notice in case it was lost and (b) detect that the rep
    // itself went away (no traffic — not even heartbeats — for the
    // departure window), in which case we give up waiting for the global
    // shutdown and finish degraded rather than hang forever.
    double tick = options_.retry_timeout_seconds * (1.0 + 0.1 * rank_);
    while (!shutdown_seen_) {
      auto m = ctx_.recv_until(route_.control_match(), ctx_.now() + tick);
      if (!m) {
        // Re-parent before the departure check: silence from a dead leaf
        // sub-rep must not read as the rep itself having departed.
        maybe_reparent();
        if (options_.departure_timeout_seconds > 0 &&
            ctx_.now() - last_rep_seen_ > options_.departure_timeout_seconds) {
          ft_.rep_departed = true;
          break;
        }
        ++ft_.conn_done_retries;
        send_conn_done();
        tick = std::min(tick * options_.retry_backoff_factor, options_.backoff_cap_seconds());
        continue;
      }
      last_rep_seen_ = ctx_.now();
      if (m->tag == kTagShutdownProc) {
        note_shutdown(m->payload);
        continue;
      }
      handle_control(*m);
    }
  }
  finished_at_ = ctx_.now();
}

ProcStats CouplingRuntime::stats_snapshot() const {
  ProcStats stats;
  for (const auto& [name, region] : export_regions_) {
    if (region.state) {
      stats.exports.push_back(region.state->stats_snapshot());
    } else {
      ExportRegionStats s;
      s.region = name;
      s.exports = region.unconnected_exports;
      stats.exports.push_back(std::move(s));
    }
  }
  for (const auto& [name, region] : import_regions_) stats.imports.push_back(region.stats);
  stats.ft = ft_;
  stats.finished_at = finished_at_;
  if (governor_ != nullptr) stats.governor = governor_->stats();
  stats.pressure_signals = pressure_signals_;
  stats.pressure_notices = pressure_notices_;
  return stats;
}

std::string CouplingRuntime::trace_listing(const std::string& region) const {
  auto it = export_regions_.find(region);
  if (it == export_regions_.end() || !it->second.state) return "";
  return it->second.state->trace().listing();
}

std::vector<TraceEvent> CouplingRuntime::trace_events(const std::string& region) const {
  auto it = export_regions_.find(region);
  if (it == export_regions_.end() || !it->second.state) return {};
  return it->second.state->trace().events();
}

}  // namespace ccf::core
